// Benchmarks regenerating each of the paper's tables and figures at fixed
// representative sizes. Run everything with:
//
//	go test -bench=. -benchmem
//
// The full parameter sweeps (with CSV output) live in cmd/amop-bench; these
// testing.B entry points pin one size per series so `go test -bench` gives a
// complete, quick cross-section of every experiment.
package amop_test

import (
	"math"
	"sync"
	"testing"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/cachesim"
	"github.com/nlstencil/amop/internal/energy"
	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
	"github.com/nlstencil/amop/internal/topm"
	"github.com/nlstencil/amop/internal/trace"
)

const (
	benchT     = 1 << 14 // wall-clock series (Figure 5)
	benchScalT = 1 << 15 // Table 5 worker-scaling series
	benchSimT  = 1 << 11 // simulated-counter series (Figures 6, 7, 10)
)

// --- Figure 5(a): BOPM running time -----------------------------------------

func BenchmarkFig5aFFTBopm(b *testing.B) {
	m := mustBOPM(b, benchT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PriceFast(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aQlBopm(b *testing.B) {
	m := mustBOPM(b, benchT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PriceNaiveParallel(option.Call)
	}
}

func BenchmarkFig5aZbBopm(b *testing.B) {
	m := mustBOPM(b, benchT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PriceTiled(option.Call, 0, 0)
	}
}

func BenchmarkTable2RecursiveBopm(b *testing.B) {
	m := mustBOPM(b, benchT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PriceRecursive(option.Call)
	}
}

func BenchmarkTable2SerialNaiveBopm(b *testing.B) {
	m := mustBOPM(b, benchT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PriceNaive(option.Call)
	}
}

// --- Figure 5(b): TOPM -------------------------------------------------------

func BenchmarkFig5bFFTTopm(b *testing.B) {
	m, err := topm.New(option.Default(), benchT)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PriceFast(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5bVanillaTopm(b *testing.B) {
	m, err := topm.New(option.Default(), benchT)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PriceNaiveParallel(option.Call)
	}
}

// --- Figure 5(c): BSM --------------------------------------------------------

func BenchmarkFig5cFFTBsm(b *testing.B) {
	m, err := bsm.New(option.Default(), benchT, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PriceFast(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5cVanillaBsm(b *testing.B) {
	m, err := bsm.New(option.Default(), benchT, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PriceNaiveParallel()
	}
}

// --- Table 5: scaling with worker count p ------------------------------------

func benchWorkers(b *testing.B, p int) {
	m := mustBOPM(b, benchScalT)
	prev := par.SetWorkers(p)
	defer par.SetWorkers(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PriceFast(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5FFTBopmP1(b *testing.B) { benchWorkers(b, 1) }
func BenchmarkTable5FFTBopmP2(b *testing.B) { benchWorkers(b, 2) }
func BenchmarkTable5FFTBopmP4(b *testing.B) { benchWorkers(b, 4) }
func BenchmarkTable5FFTBopmP8(b *testing.B) { benchWorkers(b, 8) }

func BenchmarkTable5QlBopmP1(b *testing.B) {
	m := mustBOPM(b, benchScalT)
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PriceNaiveParallel(option.Call)
	}
}

// --- Figures 6, 7, 10: simulated counters + energy model ---------------------

func benchTraced(b *testing.B, run func(h *cachesim.Hierarchy)) {
	em := energy.Skylake()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := cachesim.NewSKX()
		run(h)
		c := h.Snapshot()
		br := em.Energy(c, 0)
		b.ReportMetric(float64(c.L1Misses), "L1miss")
		b.ReportMetric(float64(c.L2Misses), "L2miss")
		b.ReportMetric(br.Total*1e3, "mJ(dyn)")
	}
}

func BenchmarkFig67TracedFFTBopm(b *testing.B) {
	spec := trace.BOPMSpec(mustBOPM(b, benchSimT))
	benchTraced(b, func(h *cachesim.Hierarchy) { trace.FastGR(h, spec) })
}

func BenchmarkFig67TracedQlBopm(b *testing.B) {
	spec := trace.BOPMSpec(mustBOPM(b, benchSimT))
	benchTraced(b, func(h *cachesim.Hierarchy) { trace.NaiveGR(h, spec) })
}

func BenchmarkFig67TracedZbBopm(b *testing.B) {
	spec := trace.BOPMSpec(mustBOPM(b, benchSimT))
	benchTraced(b, func(h *cachesim.Hierarchy) { trace.TiledGR(h, spec, 0, 0) })
}

func BenchmarkFig67TracedFFTTopm(b *testing.B) {
	m, err := topm.New(option.Default(), benchSimT)
	if err != nil {
		b.Fatal(err)
	}
	spec := trace.TOPMSpec(m)
	benchTraced(b, func(h *cachesim.Hierarchy) { trace.FastGR(h, spec) })
}

func BenchmarkFig67TracedVanillaTopm(b *testing.B) {
	m, err := topm.New(option.Default(), benchSimT)
	if err != nil {
		b.Fatal(err)
	}
	spec := trace.TOPMSpec(m)
	benchTraced(b, func(h *cachesim.Hierarchy) { trace.NaiveGR(h, spec) })
}

func BenchmarkFig67TracedFFTBsm(b *testing.B) {
	m, err := bsm.New(option.Default(), benchSimT, 0)
	if err != nil {
		b.Fatal(err)
	}
	spec := trace.BSMSpec(m)
	benchTraced(b, func(h *cachesim.Hierarchy) { trace.FastGL(h, spec) })
}

func BenchmarkFig67TracedVanillaBsm(b *testing.B) {
	m, err := bsm.New(option.Default(), benchSimT, 0)
	if err != nil {
		b.Fatal(err)
	}
	spec := trace.BSMSpec(m)
	benchTraced(b, func(h *cachesim.Hierarchy) { trace.NaiveGL(h, spec) })
}

// --- Extensions --------------------------------------------------------------

func BenchmarkBermudanQuarterly(b *testing.B) {
	o := amop.Option{Type: amop.Put, S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := amop.PriceBermudan(o, benchT, benchT/4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEuropeanFFT(b *testing.B) {
	m := mustBOPM(b, benchT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PriceEuropean(option.Call)
	}
}

func BenchmarkGreeks(b *testing.B) {
	o := amop.Option{Type: amop.Call, S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := amop.GreeksAmerican(o, 1<<12); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fast-path micro-benchmarks ----------------------------------------------
//
// The real-input FFT and the kernel-spectrum cache are the two levers behind
// the fast solvers' constants; these pin their time and allocation behavior
// at a representative size so wins (or regressions) in either show up in
// `go test -bench` directly, next to the solver-level numbers they feed.

// BenchmarkEvolveCone measures one 64K-row, 16K-step linear evolution — the
// exact call shape the trapezoid recursion issues — on the real-input cached
// path, recycling the result row as the solvers do.
func BenchmarkEvolveCone(b *testing.B) {
	s := linstencil.Stencil{MinOff: 0, W: []float64{0.48, 0.51}}
	n := 1 << 16
	row := make([]float64, n)
	for i := range row {
		row[i] = math.Sin(float64(i))
	}
	b.SetBytes(int64(8 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := linstencil.EvolveCone(row, s, n/4)
		scratch.PutFloats(out)
	}
}

// BenchmarkEvolveConeComplex is the legacy full-complex, uncached path on the
// same instance, kept benchmarked so the fast path's margin is tracked rather
// than asserted.
func BenchmarkEvolveConeComplex(b *testing.B) {
	s := linstencil.Stencil{MinOff: 0, W: []float64{0.48, 0.51}}
	n := 1 << 16
	row := make([]float64, n)
	for i := range row {
		row[i] = math.Sin(float64(i))
	}
	b.SetBytes(int64(8 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linstencil.EvolveConeComplex(row, s, n/4)
	}
}

// BenchmarkRealFFT measures a forward+inverse real round trip at 256K;
// compare against BenchmarkComplexFFT for the half-transform win.
func BenchmarkRealFFT(b *testing.B) {
	n := 1 << 18
	rp := fft.RPlanFor(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	spec := make([]complex128, rp.HalfLen())
	b.SetBytes(int64(8 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.Forward(x, spec)
		rp.Inverse(spec, x)
	}
}

// BenchmarkComplexFFT is the complex-plan round trip at the same size.
func BenchmarkComplexFFT(b *testing.B) {
	n := 1 << 18
	p := fft.PlanFor(n)
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(math.Cos(float64(i)), 0)
	}
	b.SetBytes(int64(16 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(a)
		p.Inverse(a)
	}
}

// BenchmarkRealFFTSoAPlanes is BenchmarkRealFFT's workload through the
// plane-native SoA entry points (the path the stencil evolution takes when
// the SoA kernel is enabled); BenchmarkRealFFTComplexKernel pins the same
// complex-spectrum round trip with the SoA kernel disabled, so the three
// real-FFT benchmarks bracket both the kernel switch and the plane-API win.
func BenchmarkRealFFTSoAPlanes(b *testing.B) {
	n := 1 << 18
	prev := fft.SetSoA(true)
	defer fft.SetSoA(prev)
	rp := fft.RPlanFor(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	sr := make([]float64, rp.HalfLen())
	si := make([]float64, rp.HalfLen())
	b.SetBytes(int64(8 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.ForwardSoA(x, sr, si)
		rp.InverseSoA(sr, si, x)
	}
}

func BenchmarkRealFFTComplexKernel(b *testing.B) {
	n := 1 << 18
	prev := fft.SetSoA(false)
	defer fft.SetSoA(prev)
	rp := fft.RPlanFor(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	spec := make([]complex128, rp.HalfLen())
	b.SetBytes(int64(8 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.Forward(x, spec)
		rp.Inverse(spec, x)
	}
}

// --- Batch engine: a 45-contract chain (9 strikes x 5 expiries, T=20k) ------
//
// BenchmarkBatchEngine prices the chain through the bounded-pool batch
// engine; BenchmarkBatchNaiveFanout is the ad-hoc baseline examples/chain
// used to hand-roll — one goroutine per contract on top of the internally
// parallel pricers. The engine must be no slower while keeping the worker
// count bounded and aborting nothing.

func chainRequests() []amop.Request {
	underlying := amop.Option{Type: amop.Call, S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163}
	strikes := []float64{100, 110, 120, 125, 130, 135, 140, 150, 160}
	expiries := []float64{1.0 / 12, 0.25, 0.5, 1.0, 2.0}
	reqs := make([]amop.Request, 0, len(strikes)*len(expiries))
	for _, k := range strikes {
		for _, e := range expiries {
			o := underlying
			o.K, o.E = k, e
			reqs = append(reqs, amop.Request{
				Option: o, Model: amop.AutoModel, Config: amop.Config{Steps: 20_000},
			})
		}
	}
	return reqs
}

func BenchmarkBatchEngine(b *testing.B) {
	reqs := chainRequests()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, r := range amop.PriceBatch(reqs, amop.BatchOptions{}) {
			if r.Err != nil {
				b.Fatalf("request %d: %v", j, r.Err)
			}
		}
	}
}

func BenchmarkBatchNaiveFanout(b *testing.B) {
	reqs := chainRequests()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prices := make([]float64, len(reqs))
		errs := make([]error, len(reqs))
		var wg sync.WaitGroup
		for j, req := range reqs {
			wg.Add(1)
			go func(j int, req amop.Request) {
				defer wg.Done()
				prices[j], errs[j] = amop.PriceAmerican(req.Option, req.Config.Steps)
			}(j, req)
		}
		wg.Wait()
		for j, err := range errs {
			if err != nil {
				b.Fatalf("request %d: %v", j, err)
			}
		}
	}
}

// BenchmarkChainGreeksIV prices a 12-quote chain with Greeks and round-trip
// implied vols — the workload the repricing memo and the Newton-seeded IV
// solver amortize. BenchmarkChainGreeksIVNoMemo is the same chain with the
// memo disabled, so the amortization margin is tracked per run.
func BenchmarkChainGreeksIV(b *testing.B)       { benchChainGreeksIV(b, false) }
func BenchmarkChainGreeksIVNoMemo(b *testing.B) { benchChainGreeksIV(b, true) }

func benchChainGreeksIV(b *testing.B, disableMemo bool) {
	underlying := amop.Option{Type: amop.Call, S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163}
	strikes := []float64{110, 120, 125, 130, 135, 140}
	expiries := []float64{0.5, 1.0}
	opts := amop.ChainOptions{Steps: 4000, DisableMemo: disableMemo}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, q := range amop.Chain(underlying, strikes, expiries, opts) {
			if q.Err != nil {
				b.Fatalf("quote %d: %v", j, q.Err)
			}
		}
	}
}

// BenchmarkScenarioSweep and BenchmarkScenarioNaiveFanout track the
// scenario-sweep engine against the per-scenario PriceBatch fan-out it
// replaces, on a reduced cut of the harness's 45x25 risk grid (9 contracts x
// 9 scenarios so one iteration stays benchtime-friendly). The full grid runs
// in cmd/amop-bench -experiment sweep-scenarios.
func benchSweepInputs() ([]amop.Request, []amop.Scenario) {
	base := amop.Option{S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163, E: 0.75}
	var reqs []amop.Request
	for i := 0; i < 9; i++ {
		o := base
		o.K = 112 + 4*float64(i)
		if i%3 == 2 {
			o.Type = amop.Put
		}
		reqs = append(reqs, amop.Request{Option: o, Model: amop.AutoModel, Config: amop.Config{Steps: 2000}})
	}
	scenarios := amop.ScenarioGrid{
		SpotBumps: []float64{-0.05, 0, 0.05},
		VolBumps:  []float64{-0.02, 0, 0.02},
	}.Scenarios()
	return reqs, scenarios
}

func BenchmarkScenarioSweep(b *testing.B) {
	reqs, scenarios := benchSweepInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw := amop.ScenarioSweep(reqs, scenarios, amop.SweepOptions{})
		for j, r := range sw.Results {
			if r.Err != nil {
				b.Fatalf("cell %d: %v", j, r.Err)
			}
		}
	}
}

func BenchmarkScenarioNaiveFanout(b *testing.B) {
	reqs, scenarios := benchSweepInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sc := range scenarios {
			bumped := make([]amop.Request, len(reqs))
			for c, req := range reqs {
				req.Option = sc.Apply(req.Option)
				bumped[c] = req
			}
			for j, r := range amop.PriceBatch(bumped, amop.BatchOptions{}) {
				if r.Err != nil {
					b.Fatalf("scenario %v contract %d: %v", sc.Label(), j, r.Err)
				}
			}
		}
	}
}

func mustBOPM(b *testing.B, T int) *bopm.Model {
	b.Helper()
	m, err := bopm.New(option.Default(), T)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- live pricing server ----------------------------------------------------

func benchServer(b *testing.B) *amop.Server {
	b.Helper()
	reqs, _ := benchSweepInputs()
	entries := make([]amop.BookEntry, len(reqs))
	for i, r := range reqs {
		entries[i] = amop.BookEntry{Option: r.Option, Model: r.Model, Config: r.Config}
	}
	s, err := amop.NewServer(entries, amop.ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkServerQuoteCached is the serving fast path: a quote answered
// straight from the clean surface.
func BenchmarkServerQuoteCached(b *testing.B) {
	s := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Quote(i % s.Contracts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerTickSkip is the incremental no-op: a tick whose inputs stay
// inside every quantization bucket re-solves nothing.
func BenchmarkServerTickSkip(b *testing.B) {
	s := benchServer(b)
	m, _ := s.Market("")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Spot += 1e-9 // wanders inside the 0.25 spot bucket
		if _, err := s.Tick("", m); err != nil {
			b.Fatal(err)
		}
	}
}
