// Package amop prices American (and European) options with the fast
// FFT-based nonlinear-stencil algorithms of Ahmad, Browne, Chowdhury, Das,
// Huang and Zhu, "Fast American Option Pricing using Nonlinear Stencils"
// (PPoPP 2024), together with the complete ladder of classical baseline
// algorithms the paper benchmarks against.
//
// The headline algorithms run in O(T log^2 T) work and O(T) span for a
// T-step discretization, versus Theta(T^2) for every classical method:
//
//   - American calls under the binomial model (BOPM, Cox-Ross-Rubinstein);
//   - American calls under the trinomial model (TOPM, Boyle);
//   - American puts under the Black-Scholes-Merton model via an explicit
//     projected finite-difference scheme.
//
// Quick start:
//
//	opt := amop.Option{Type: amop.Call, S: 127.62, K: 130, R: 0.00163,
//		V: 0.2, Y: 0.0163, E: 1.0}
//	price, err := amop.PriceAmerican(opt, 10000)
//
// For control over the model and algorithm use Price with a Config. The
// generic stencil machinery itself (linear FFT stencils and free-boundary
// nonlinear stencils) is exposed in the stencil subpackage for applications
// beyond finance.
package amop

import (
	"context"
	"fmt"

	"github.com/nlstencil/amop/internal/option"
)

// OptionType distinguishes calls from puts.
type OptionType int

const (
	// Call is the right to buy the underlying at the strike.
	Call OptionType = iota
	// Put is the right to sell the underlying at the strike.
	Put
)

// String returns "call" or "put".
func (t OptionType) String() string { return option.Kind(t).String() }

// Option describes an option contract and its market environment. Rates are
// annualized with continuous compounding; E is the time to expiry in years.
type Option struct {
	Type OptionType
	S    float64 // spot price of the underlying
	K    float64 // strike price
	R    float64 // risk-free rate
	V    float64 // volatility
	Y    float64 // continuous dividend yield
	E    float64 // time to expiry (years)
}

func (o Option) params() option.Params {
	return option.Params{S: o.S, K: o.K, R: o.R, V: o.V, Y: o.Y, E: o.E}
}

// Model selects the discretization.
type Model int

const (
	// Binomial is the Cox-Ross-Rubinstein binomial tree (paper Section 2).
	Binomial Model = iota
	// Trinomial is Boyle's trinomial tree (paper Section 3).
	Trinomial
	// BlackScholesFD is the explicit finite-difference discretization of
	// the Black-Scholes-Merton PDE (paper Section 4). American pricing is
	// supported for puts only under this model.
	BlackScholesFD
)

// String names the model as in the paper's legends.
func (m Model) String() string {
	switch m {
	case Binomial:
		return "bopm"
	case Trinomial:
		return "topm"
	case BlackScholesFD:
		return "bsm"
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// Algorithm selects the pricing algorithm.
type Algorithm int

const (
	// Fast is the paper's FFT-based nonlinear-stencil algorithm:
	// O(T log^2 T) work, O(T) span.
	Fast Algorithm = iota
	// Naive is the standard serial nested loop (Figure 1), Theta(T^2).
	Naive
	// NaiveParallel is the row-parallel nested loop (the paper's ql-bopm /
	// vanilla baselines).
	NaiveParallel
	// Tiled is the cache-aware split-tiled loop (the paper's zb-bopm
	// baseline). Binomial and trinomial models only.
	Tiled
	// Recursive is the cache-oblivious recursive-tiling sweep (Table 2).
	// Binomial and trinomial models only.
	Recursive
	// Analytic is the spectral-collocation fast path (internal/analytic):
	// vanilla American options inside its validity envelope are priced from
	// a cached exercise-boundary solve in microseconds, cross-validated
	// against the lattice to 1e-6 relative; European requests get the
	// closed-form Black-Scholes-Merton value. The Model and Config.Steps are
	// ignored (there is no lattice), and contracts outside the envelope fail
	// rather than degrade — see TierMode for automatic routing with lattice
	// fallback.
	Analytic
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Fast:
		return "fast"
	case Naive:
		return "naive"
	case NaiveParallel:
		return "naive-parallel"
	case Tiled:
		return "tiled"
	case Recursive:
		return "recursive"
	case Analytic:
		return "analytic"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// Config controls Price.
type Config struct {
	// Steps is the number of time steps T (required, >= 1), except under
	// Algorithm Analytic, which has no lattice and ignores it.
	Steps     int
	Algorithm Algorithm // defaults to Fast
	European  bool      // drop the early-exercise right
	// TileW and TileH configure the Tiled algorithm; zero selects
	// L1-cache-sized defaults.
	TileW, TileH int
	// Lambda is the FD ratio dtau/ds^2 for BlackScholesFD; zero selects
	// the default 1/3.
	Lambda float64
	// BaseCase overrides the fast solver's recursion cutoff (ablations);
	// zero selects the paper's tuned default.
	BaseCase int
}

// Price prices the option under the given model and configuration.
func Price(o Option, m Model, cfg Config) (float64, error) {
	return priceModel(o, m, cfg, nil, nil)
}

// PriceCtx is Price with a context: the Fast solvers poll ctx at trapezoid
// granularity and return ctx.Err() when it is done, so an expired deadline
// or a dropped client stops burning cores within one trapezoid of work. The
// Theta(T^2) baseline algorithms run to completion regardless — they exist
// for benchmarking, not serving.
func PriceCtx(ctx context.Context, o Option, m Model, cfg Config) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return priceModel(o, m, cfg, nil, ctx.Err)
}

// priceModel is Price with an optional cache of constructed lattice models
// and an optional cancellation hook polled by the Fast solvers; the batch
// engine passes both so that requests sharing lattice parameters reuse a
// single model instance and in-flight solves observe cancellation. A nil
// cache constructs models directly; a nil cancel never cancels.
func priceModel(o Option, m Model, cfg Config, cache *modelCache, cancel func() error) (float64, error) {
	if cfg.Algorithm == Analytic {
		// The analytic tier has no lattice: Model and Steps are irrelevant,
		// so the Steps >= 1 rule does not apply.
		return priceAnalytic(o, cfg)
	}
	if cfg.Steps < 1 {
		return 0, fmt.Errorf("amop: Config.Steps = %d must be >= 1", cfg.Steps)
	}
	kind := option.Kind(o.Type)
	switch m {
	case Binomial:
		mdl, err := cache.bopm(o.params(), cfg)
		if err != nil {
			return 0, err
		}
		if cfg.European {
			return priceEuropeanLattice(cfg, kind,
				mdl.PriceEuropean, mdl.PriceEuropeanNaive)
		}
		return priceAmericanLattice(cfg, kind, cancel,
			mdl.PriceFastCancel, mdl.PriceFastPutCancel, mdl.PriceNaive, mdl.PriceNaiveParallel, mdl.PriceTiled, mdl.PriceRecursive)
	case Trinomial:
		mdl, err := cache.topm(o.params(), cfg)
		if err != nil {
			return 0, err
		}
		if cfg.European {
			return priceEuropeanLattice(cfg, kind,
				mdl.PriceEuropean, mdl.PriceEuropeanNaive)
		}
		return priceAmericanLattice(cfg, kind, cancel,
			mdl.PriceFastCancel, mdl.PriceFastPutCancel, mdl.PriceNaive, mdl.PriceNaiveParallel, mdl.PriceTiled, mdl.PriceRecursive)
	case BlackScholesFD:
		mdl, err := cache.bsm(o.params(), cfg)
		if err != nil {
			return 0, err
		}
		if cfg.European {
			if kind != option.Put {
				return 0, fmt.Errorf("amop: the BlackScholesFD grid prices puts; use BlackScholes for European calls or a lattice model")
			}
			switch cfg.Algorithm {
			case Fast:
				return mdl.PriceEuropean(), nil
			case Naive, NaiveParallel:
				return mdl.PriceEuropeanNaive(), nil
			default:
				return 0, fmt.Errorf("amop: algorithm %v not available for European %v", cfg.Algorithm, m)
			}
		}
		if kind != option.Put {
			return 0, fmt.Errorf("amop: American pricing under BlackScholesFD supports puts only (the paper's Section 4); use Binomial or Trinomial for calls")
		}
		switch cfg.Algorithm {
		case Fast:
			return mdl.PriceFastCancel(cancel)
		case Naive:
			return mdl.PriceNaive(), nil
		case NaiveParallel:
			return mdl.PriceNaiveParallel(), nil
		default:
			return 0, fmt.Errorf("amop: algorithm %v not available for model %v", cfg.Algorithm, m)
		}
	default:
		return 0, fmt.Errorf("amop: unknown model %v", m)
	}
}

// priceAmericanLattice dispatches an American lattice pricing request to the
// concrete algorithm implementations. Fast calls are the paper's algorithm;
// fast puts are this library's experimental extension (empirically validated
// green-left boundary structure — see internal/fbstencil/greenleftos.go).
func priceAmericanLattice(
	cfg Config, kind option.Kind, cancel func() error,
	fast func(func() error) (float64, error),
	fastPut func(func() error) (float64, error),
	naive, naivePar func(option.Kind) float64,
	tiled func(option.Kind, int, int) float64,
	recursive func(option.Kind) float64,
) (float64, error) {
	switch cfg.Algorithm {
	case Fast:
		if kind == option.Put {
			return fastPut(cancel)
		}
		return fast(cancel)
	case Naive:
		return naive(kind), nil
	case NaiveParallel:
		return naivePar(kind), nil
	case Tiled:
		return tiled(kind, cfg.TileW, cfg.TileH), nil
	case Recursive:
		return recursive(kind), nil
	default:
		return 0, fmt.Errorf("amop: unknown algorithm %v", cfg.Algorithm)
	}
}

func priceEuropeanLattice(
	cfg Config, kind option.Kind,
	fast func(option.Kind) float64,
	naive func(option.Kind) float64,
) (float64, error) {
	switch cfg.Algorithm {
	case Fast:
		return fast(kind), nil
	case Naive, NaiveParallel:
		return naive(kind), nil
	default:
		return 0, fmt.Errorf("amop: algorithm %v not available for European lattice pricing", cfg.Algorithm)
	}
}

// PriceAmerican prices an American option with the fast algorithm under the
// natural model for its type: binomial for calls (Section 2 of the paper),
// Black-Scholes-Merton finite differences for puts (Section 4). (Fast puts
// directly on the binomial lattice are also available through Price as an
// experimental extension.)
func PriceAmerican(o Option, steps int) (float64, error) {
	m := Binomial
	if o.Type == Put {
		m = BlackScholesFD
	}
	return Price(o, m, Config{Steps: steps})
}

// PriceEuropean prices a European option on the binomial lattice with a
// single T-step FFT evolution, O(T log T).
func PriceEuropean(o Option, steps int) (float64, error) {
	return Price(o, Binomial, Config{Steps: steps, European: true})
}

// BlackScholes returns the closed-form European Black-Scholes-Merton value
// (with continuous dividend yield).
func BlackScholes(o Option) (float64, error) {
	p := o.params()
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return option.BlackScholes(p, option.Kind(o.Type)), nil
}
