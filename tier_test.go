package amop

import (
	"errors"
	"math"
	"os"
	"sort"
	"testing"
	"time"

	"github.com/nlstencil/amop/internal/analytic"
)

// tierBook is an in-envelope vanilla American book: a strikes x expiries
// chain of puts and calls on one underlying, every contract eligible for the
// analytic tier.
func tierBook(steps int) []Request {
	var reqs []Request
	for _, kind := range []OptionType{Put, Call} {
		for _, k := range []float64{85, 95, 100, 105, 115} {
			for _, e := range []float64{0.25, 0.5, 1, 2} {
				reqs = append(reqs, Request{
					Option: Option{Type: kind, S: 100, K: k, R: 0.045, V: 0.22, Y: 0.015, E: e},
					Model:  AutoModel,
					Config: Config{Steps: steps},
				})
			}
		}
	}
	return reqs
}

// latticeRef is a Richardson-extrapolated fast-lattice reference under the
// natural model, accurate enough to judge the analytic tier at 1e-5.
func latticeRef(t *testing.T, o Option) float64 {
	t.Helper()
	price := func(n int) float64 {
		v, err := PriceAmerican(o, n)
		if err != nil {
			t.Fatalf("PriceAmerican(%+v, %d): %v", o, n, err)
		}
		return v
	}
	return 2*price(16000) - price(8000)
}

// TestAlgorithmAnalytic pins the forced fast path: Config.Algorithm =
// Analytic prices without a step count and agrees with the extrapolated
// lattice for both kinds; European requests get the closed form exactly.
func TestAlgorithmAnalytic(t *testing.T) {
	for _, kind := range []OptionType{Put, Call} {
		o := Option{Type: kind, S: 127.62, K: 130, R: 0.05, V: 0.2, Y: 0.0163, E: 1}
		got, err := Price(o, AutoModel, Config{Algorithm: Analytic})
		if err != nil {
			t.Fatalf("forced analytic %v: %v", kind, err)
		}
		ref := latticeRef(t, o)
		if d := math.Abs(got - ref); d > 1e-5*(1+math.Abs(ref)) {
			t.Errorf("%v: analytic %.8f vs extrapolated lattice %.8f (diff %.3g)", kind, got, ref, d)
		}

		eur, err := Price(o, AutoModel, Config{Algorithm: Analytic, European: true})
		if err != nil {
			t.Fatalf("forced analytic European %v: %v", kind, err)
		}
		bs, err := BlackScholes(o)
		if err != nil {
			t.Fatal(err)
		}
		if eur != bs {
			t.Errorf("%v European: analytic %.12g != closed form %.12g", kind, eur, bs)
		}
	}
}

// TestAnalyticEnvelopeRefusal: a forced-analytic request outside the
// validity envelope fails with the envelope error instead of degrading.
func TestAnalyticEnvelopeRefusal(t *testing.T) {
	o := Option{Type: Put, S: 100, K: 100, R: 0.4, V: 0.05, Y: 0, E: 1} // stiffness 320
	if _, err := Price(o, AutoModel, Config{Algorithm: Analytic}); !errors.Is(err, analytic.ErrEnvelope) {
		t.Fatalf("out-of-envelope forced analytic: got %v, want ErrEnvelope", err)
	}
}

// TestTierAutoPromotesAndFallsBack: under TierAuto an eligible contract is
// served analytically (bit-identical to the forced path) and counted in
// AnalyticServes; an out-of-envelope contract silently falls back to the
// lattice (bit-identical to the TierLattice batch) and counts a fallback.
func TestTierAutoPromotesAndFallsBack(t *testing.T) {
	in := Request{
		Option: Option{Type: Put, S: 100, K: 105, R: 0.05, V: 0.25, Y: 0.01, E: 1.5},
		Model:  AutoModel,
		Config: Config{Steps: 512},
	}
	out := in
	out.Option.V = 0.05
	out.Option.R = 0.4 // stiffness 320: outside the envelope

	before := ReadPerfCounters()
	res := PriceBatch([]Request{in, out}, BatchOptions{Tier: TierAuto})
	after := ReadPerfCounters()
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}

	forced, err := Price(in.Option, AutoModel, Config{Algorithm: Analytic})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Price != forced {
		t.Errorf("promoted price %.17g != forced analytic %.17g", res[0].Price, forced)
	}
	lattice := PriceBatch([]Request{out}, BatchOptions{})[0]
	if lattice.Err != nil {
		t.Fatal(lattice.Err)
	}
	if res[1].Price != lattice.Price {
		t.Errorf("fallback price %.17g != lattice price %.17g", res[1].Price, lattice.Price)
	}

	if after.AnalyticServes <= before.AnalyticServes {
		t.Error("TierAuto promotion did not count in AnalyticServes")
	}
	if after.TierFallbacks <= before.TierFallbacks {
		t.Error("TierAuto fallback did not count in TierFallbacks")
	}
}

// TestTierAnalyticForced: TierAnalytic serves eligible contracts and
// surfaces the envelope error for ineligible ones instead of falling back.
func TestTierAnalyticForced(t *testing.T) {
	in := Request{
		Option: Option{Type: Call, S: 110, K: 100, R: 0.03, V: 0.3, Y: 0.02, E: 0.75},
		Model:  AutoModel,
		Config: Config{Steps: 512},
	}
	out := in
	out.Option.E = 40 // expiry beyond the envelope
	res := PriceBatch([]Request{in, out}, BatchOptions{Tier: TierAnalytic})
	if res[0].Err != nil {
		t.Fatalf("eligible contract under TierAnalytic: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, analytic.ErrEnvelope) {
		t.Fatalf("ineligible contract under TierAnalytic: got %v, want ErrEnvelope", res[1].Err)
	}
}

// TestTierAutoLeavesForcedAlgorithmsAlone: a request that forces a lattice
// algorithm (here Naive) is benchmarking that code path; TierAuto must not
// promote it.
func TestTierAutoLeavesForcedAlgorithmsAlone(t *testing.T) {
	req := Request{
		Option: Option{Type: Put, S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.01, E: 1},
		Model:  AutoModel,
		Config: Config{Steps: 256, Algorithm: Naive},
	}
	auto := PriceBatch([]Request{req}, BatchOptions{Tier: TierAuto})[0]
	plain := PriceBatch([]Request{req}, BatchOptions{})[0]
	if auto.Err != nil || plain.Err != nil {
		t.Fatalf("errs: %v, %v", auto.Err, plain.Err)
	}
	if auto.Price != plain.Price {
		t.Errorf("TierAuto changed a forced-Naive request: %.17g != %.17g", auto.Price, plain.Price)
	}
}

// TestChainAnalyticTier: a chain under TierAuto prices, differentiates and
// round-trips implied vols entirely on the analytic fast path — every cell
// must agree with the forced analytic price, carry finite Greeks, and
// recover its vol mark from the implied-vol round trip.
func TestChainAnalyticTier(t *testing.T) {
	u := Option{Type: Put, S: 100, R: 0.04, V: 0.3, Y: 0.012}
	strikes := []float64{90, 100, 110}
	expiries := []float64{0.5, 1.5}
	quotes := Chain(u, strikes, expiries, ChainOptions{Tier: TierAuto, Steps: 512})
	for _, q := range quotes {
		if q.Err != nil {
			t.Fatalf("cell K=%g E=%g: %v", q.Strike, q.Expiry, q.Err)
		}
		o := u
		o.K, o.E = q.Strike, q.Expiry
		forced, err := Price(o, AutoModel, Config{Algorithm: Analytic})
		if err != nil {
			t.Fatal(err)
		}
		if q.Price != forced {
			t.Errorf("cell K=%g E=%g: chain price %.17g != forced analytic %.17g", q.Strike, q.Expiry, q.Price, forced)
		}
		for name, v := range map[string]float64{
			"delta": q.Greeks.Delta, "gamma": q.Greeks.Gamma, "theta": q.Greeks.Theta,
			"vega": q.Greeks.Vega, "rho": q.Greeks.Rho,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("cell K=%g E=%g: %s = %v", q.Strike, q.Expiry, name, v)
			}
		}
		if math.Abs(q.ImpliedVol-u.V) > 1e-6 {
			t.Errorf("cell K=%g E=%g: implied vol %.8f does not recover mark %.8f", q.Strike, q.Expiry, q.ImpliedVol, u.V)
		}
	}
}

// TestGreeksAnalytic: the boundary-solve Greeks agree with bump-and-reprice
// finite differences of the forced analytic price.
func TestGreeksAnalytic(t *testing.T) {
	for _, kind := range []OptionType{Put, Call} {
		o := Option{Type: kind, S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.02, E: 1}
		v, g, err := GreeksAnalytic(o)
		if err != nil {
			t.Fatalf("GreeksAnalytic(%v): %v", kind, err)
		}
		fd, err := greeks(o, func(oo Option) (float64, error) {
			return Price(oo, AutoModel, Config{Algorithm: Analytic})
		})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Price(o, AutoModel, Config{Algorithm: Analytic})
		if err != nil {
			t.Fatal(err)
		}
		if v != direct {
			t.Errorf("%v: GreeksAnalytic value %.17g != Price %.17g", kind, v, direct)
		}
		check := func(name string, got, want, tol float64) {
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Errorf("%v %s: analytic %.8g vs bump-and-reprice %.8g", kind, name, got, want)
			}
		}
		// The root bumps are coarse (1% spot, 1 vol point), so the
		// comparison tolerances reflect finite-difference truncation, not
		// the Greeks' own accuracy (internal/analytic pins those at 1e-4).
		check("delta", g.Delta, fd.Delta, 1e-3)
		check("gamma", g.Gamma, fd.Gamma, 1e-2)
		check("vega", g.Vega, fd.Vega, 1e-2)
		check("rho", g.Rho, fd.Rho, 1e-3)
		check("theta", g.Theta, fd.Theta, 1e-3)
	}
}

// TestServerAnalyticTier: a live server under TierAuto serves its whole book
// from the analytic tier — forced-analytic book entries need no step count —
// and the tier counters observe the flight.
func TestServerAnalyticTier(t *testing.T) {
	book := []BookEntry{
		{Symbol: "A", Option: Option{Type: Put, S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.01, E: 1}, Model: AutoModel, Config: Config{Steps: 512}},
		{Symbol: "A", Option: Option{Type: Call, S: 100, K: 110, R: 0.05, V: 0.2, Y: 0.01, E: 0.5}, Model: AutoModel, Config: Config{Algorithm: Analytic}},
	}
	before := ReadPerfCounters()
	s, err := NewServer(book, ServerOptions{Tier: TierAuto})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < s.Contracts(); id++ {
		q, err := s.Quote(id)
		if err != nil {
			t.Fatalf("quote %d: %v", id, err)
		}
		if math.IsNaN(q.Price) || q.Price < 0 {
			t.Fatalf("quote %d: price %v", id, q.Price)
		}
	}
	if after := ReadPerfCounters(); after.AnalyticServes <= before.AnalyticServes {
		t.Error("server flight under TierAuto recorded no analytic serves")
	}
}

// TestXvalCheck: the cross-validation primitive produces a tight pair for an
// in-envelope contract and counts in XvalChecks.
func TestXvalCheck(t *testing.T) {
	before := ReadPerfCounters()
	pair, err := XvalCheck(Option{Type: Put, S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.01, E: 1}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	// At 8000 steps the lattice still carries ~1e-5 discretization error;
	// the pair just has to be sane here, the tight gate lives in amop-xval.
	if pair.RelErr > 1e-4 {
		t.Errorf("analytic %.8f vs lattice %.8f: rel %.3g implausibly large", pair.Analytic, pair.Lattice, pair.RelErr)
	}
	if after := ReadPerfCounters(); after.XvalChecks <= before.XvalChecks {
		t.Error("XvalCheck did not count")
	}
}

// TestBatchAnalyticTierConcurrent races a whole TierAuto book through the
// batch engine's pool (all workers share the analytic tier's process-wide
// boundary and Chebyshev caches) and checks the result is bit-identical to a
// serial repricing. Run under -race this is the tier's cache-coherence gate
// at the batch level.
func TestBatchAnalyticTierConcurrent(t *testing.T) {
	reqs := tierBook(512)
	concurrent := PriceBatch(reqs, BatchOptions{Tier: TierAuto, Workers: 16})
	serial := PriceBatch(reqs, BatchOptions{Tier: TierAuto, Workers: 1})
	for i := range reqs {
		if concurrent[i].Err != nil || serial[i].Err != nil {
			t.Fatalf("request %d: %v / %v", i, concurrent[i].Err, serial[i].Err)
		}
		if concurrent[i].Price != serial[i].Price {
			t.Errorf("request %d: concurrent %.17g != serial %.17g", i, concurrent[i].Price, serial[i].Price)
		}
	}
}

// TestAnalyticNotSlowerSmoke is the CI bench-smoke gate for the analytic
// tier: on an in-envelope vanilla chain it must beat the lattice by at least
// 10x (the measured gap is orders of magnitude larger once boundaries are
// cached — see BENCH_analytic.json). Median of several rounds, opt-in via
// AMOP_BENCH_SMOKE=1 like the other wall-clock gates.
func TestAnalyticNotSlowerSmoke(t *testing.T) {
	if os.Getenv("AMOP_BENCH_SMOKE") == "" {
		t.Skip("set AMOP_BENCH_SMOKE=1 to run the analytic vs lattice timing gate")
	}
	const steps = 4000
	reqs := tierBook(steps)
	check := func(res []Result) {
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("request %d: %v", i, r.Err)
			}
		}
	}
	// Warm both arms: boundary cache for the analytic tier, FFT plans and
	// kernel spectra for the lattice.
	check(PriceBatch(reqs, BatchOptions{Tier: TierAuto}))
	check(PriceBatch(reqs, BatchOptions{}))
	median := func(run func()) float64 {
		times := make([]float64, 0, 5)
		for round := 0; round < 5; round++ {
			start := time.Now()
			run()
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		return times[len(times)/2]
	}
	analyticT := median(func() { check(PriceBatch(reqs, BatchOptions{Tier: TierAuto})) })
	latticeT := median(func() { check(PriceBatch(reqs, BatchOptions{})) })
	t.Logf("analytic tier %.4gs, lattice %.4gs (%.0fx) on %d contracts at T=%d",
		analyticT, latticeT, latticeT/analyticT, len(reqs), steps)
	if analyticT*10 > latticeT {
		t.Errorf("analytic tier not >=10x faster: %.4gs vs lattice %.4gs", analyticT, latticeT)
	}
}
