package amop

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nlstencil/amop/internal/faultinject"
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/serve"
)

// withFaults arms the given fault-injection rules for one test and guarantees
// a clean slate afterwards (the gate is process-global).
func withFaults(t *testing.T, rules ...faultinject.Rule) {
	t.Helper()
	faultinject.Reset()
	for _, r := range rules {
		faultinject.Inject(r)
	}
	faultinject.Enable()
	t.Cleanup(faultinject.Reset)
}

// distinctCalls returns n call requests with distinct strikes, so none of
// them share a repricing-memo entry.
func distinctCalls(n, steps int, tag string) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		o := defaultCall()
		o.K = 100 + 5*float64(i)
		reqs[i] = Request{Option: o, Config: Config{Steps: steps}, Tag: tag}
	}
	return reqs
}

// Canceling a batch mid-run: items already priced keep their results, items
// not yet started fail with the context's error, and the spawn budget comes
// back whole.
func TestPriceBatchCtxCancelMidBatch(t *testing.T) {
	reqs := distinctCalls(8, 400, "")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res := PriceBatchCtx(ctx, reqs, BatchOptions{
		// Cancel as soon as the first result lands: everything still queued
		// must be shed by the admission check without solving.
		OnResult: func(int, Result) { cancel() },
	})
	if len(res) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(res), len(reqs))
	}
	ok, canceled := 0, 0
	for i, r := range res {
		switch {
		case r.Err == nil:
			if r.Price <= 0 {
				t.Errorf("item %d: healthy result with price %v", i, r.Price)
			}
			ok++
		case errors.Is(r.Err, context.Canceled):
			canceled++
		default:
			t.Errorf("item %d: got %v, want nil or context.Canceled", i, r.Err)
		}
	}
	if ok == 0 {
		t.Error("no item completed before the cancellation")
	}
	if canceled == 0 {
		t.Error("no item was shed by the cancellation")
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("%d spawn tokens leaked across the canceled batch", got)
	}
}

// An already-expired deadline sheds the whole batch without pricing anything.
func TestPriceBatchCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	before := ReadPerfCounters()
	res := PriceBatchCtx(ctx, distinctCalls(4, 400, ""), BatchOptions{})
	for i, r := range res {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("item %d: got %v, want context.DeadlineExceeded", i, r.Err)
		}
	}
	after := ReadPerfCounters()
	if d := after.CtxCancels - before.CtxCancels; d < int64(len(res)) {
		t.Errorf("CtxCancels moved by %d, want >= %d", d, len(res))
	}
}

// A solver panic is confined to its item: the result carries a
// *SolvePanicError with the captured stack, the siblings price normally, and
// the spawn budget is fully restored.
func TestPriceBatchPanicIsolationRestoresBudget(t *testing.T) {
	withFaults(t, faultinject.Rule{Kind: faultinject.SolvePanic, Match: "KABOOM"})
	reqs := distinctCalls(4, 400, "")
	boom := defaultCall()
	boom.K = 150
	reqs = append(reqs, Request{Option: boom, Config: Config{Steps: 400}, Tag: "KABOOM"})

	before := ReadPerfCounters()
	res := PriceBatch(reqs, BatchOptions{})
	for i := 0; i < 4; i++ {
		if res[i].Err != nil {
			t.Errorf("sibling %d failed: %v", i, res[i].Err)
		}
	}
	var spe *SolvePanicError
	if !errors.As(res[4].Err, &spe) {
		t.Fatalf("panicking item: got %T (%v), want *SolvePanicError", res[4].Err, res[4].Err)
	}
	if s, ok := spe.Value.(string); !ok || !strings.Contains(s, "faultinject") {
		t.Errorf("panic value %v does not identify the injected fault", spe.Value)
	}
	if len(spe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	after := ReadPerfCounters()
	if after.PanicsRecovered-before.PanicsRecovered < 1 {
		t.Error("PanicsRecovered did not move")
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("%d spawn tokens leaked across the panic", got)
	}
}

// Canceling a scenario sweep mid-run returns promptly — in-flight solves stop
// within one trapezoid, queued tasks are shed at admission — with the spawn
// budget fully restored.
func TestScenarioSweepCtxCancelMidRun(t *testing.T) {
	// Stretch every solve by a fixed delay so the cancellation lands
	// mid-sweep deterministically, independent of how fast the box prices.
	const perSolve = 40 * time.Millisecond
	withFaults(t, faultinject.Rule{Kind: faultinject.SolveDelay, Delay: perSolve})

	reqs := sweepBook(400)
	var scenarios []Scenario
	for _, b := range []float64{-0.10, -0.05, -0.02, 0.02, 0.05, 0.10} {
		scenarios = append(scenarios, Scenario{Name: fmt.Sprintf("spot%+g", b), Spot: b})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *Sweep, 1)
	start := time.Now()
	go func() { done <- ScenarioSweepCtx(ctx, reqs, scenarios, SweepOptions{}) }()
	time.Sleep(100 * time.Millisecond) // a couple of solves in
	cancel()

	var sw *Sweep
	select {
	case sw = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled sweep did not return")
	}
	// The full sweep is dozens of delayed solves; a prompt cancel returns in
	// roughly the remainder of one solve. The bound is deliberately loose.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("canceled sweep took %v to return", elapsed)
	}
	canceled := 0
	for _, r := range sw.Results {
		if errors.Is(r.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("no cell carries the cancellation")
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("%d spawn tokens leaked across the canceled sweep", got)
	}
}

// robustBook builds a two-symbol book (one contract per symbol) and a warmed
// server with the given options; faults must not be armed yet.
func robustBook(t *testing.T, opts ServerOptions) (*Server, int, int) {
	t.Helper()
	good := defaultCall()
	bad := defaultCall()
	bad.K = 140
	entries := []BookEntry{
		{Symbol: "GOOD", Option: good, Config: Config{Steps: 400}},
		{Symbol: "BAD", Option: bad, Config: Config{Steps: 400}},
	}
	s, err := NewServer(entries, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, 0, 1
}

// The circuit-breaker lifecycle over a live server: a failing symbol's
// breaker opens (quotes degrade onto the pinned last-good price), the healthy
// symbol is untouched, and after the backoff a probe flight closes the
// breaker again.
func TestServerBreakerLifecycle(t *testing.T) {
	faultinject.Reset() // warm the book healthy
	s, goodID, badID := robustBook(t, ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
		BreakerThreshold: 1, BreakerBackoff: 50 * time.Millisecond,
	})
	clock := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return clock }
	warm, err := s.Quote(badID)
	if err != nil {
		t.Fatal(err)
	}

	// Poison every BAD solve with NaN: the health gate must reject it and
	// trip the breaker on the first failed flight (threshold 1).
	withFaults(t, faultinject.Rule{Kind: faultinject.SolveNaN, Match: "BAD"})
	before := ReadPerfCounters()
	base := Market{Spot: defaultCall().S, Vol: defaultCall().V, Rate: defaultCall().R}
	moved := base
	moved.Spot += 0.30
	if _, err := s.Tick("BAD", moved); err != nil {
		t.Fatal(err)
	}
	q, err := s.Quote(badID)
	if err != nil {
		t.Fatalf("quote under an open breaker must degrade, got error %v", err)
	}
	if !q.Degraded || !q.Stale {
		t.Fatalf("got Degraded=%v Stale=%v, want both true", q.Degraded, q.Stale)
	}
	if q.Price != warm.Price {
		t.Errorf("degraded quote %v is not the pinned last-good price %v", q.Price, warm.Price)
	}
	if st, ok := s.BreakerState("BAD"); !ok || st != serve.BreakerOpen {
		t.Fatalf("BAD breaker state %v, want open", st)
	}
	after := ReadPerfCounters()
	if after.CircuitOpens-before.CircuitOpens < 1 {
		t.Error("CircuitOpens did not move")
	}
	if after.DegradedServes-before.DegradedServes < 1 {
		t.Error("DegradedServes did not move")
	}

	// Fault isolation: the healthy symbol reprices and serves normally while
	// its neighbor's breaker is open.
	movedGood := base
	movedGood.Spot += 0.30
	if _, err := s.Tick("GOOD", movedGood); err != nil {
		t.Fatal(err)
	}
	if q, err := s.Quote(goodID); err != nil || q.Degraded {
		t.Fatalf("healthy symbol: got (%+v, %v), want a clean serve", q, err)
	}
	if st, _ := s.BreakerState("GOOD"); st != serve.BreakerClosed {
		t.Fatalf("GOOD breaker state %v, want closed", st)
	}

	// Heal the solver and let the backoff elapse: the next quote rides the
	// half-open probe flight, the solve succeeds, and the breaker closes.
	faultinject.Reset()
	clock = clock.Add(200 * time.Millisecond)
	q, err = s.Quote(badID)
	if err != nil {
		t.Fatal(err)
	}
	if q.Degraded || q.Stale {
		t.Fatalf("got Degraded=%v Stale=%v after the probe healed, want a fresh serve", q.Degraded, q.Stale)
	}
	if st, _ := s.BreakerState("BAD"); st != serve.BreakerClosed {
		t.Fatalf("BAD breaker state %v after a successful probe, want closed", st)
	}
}

// A panicking contract is quarantined — served degraded from its pinned
// last-good price, excluded from further flights, stack preserved — until a
// tick moves its cell, which clears the quarantine and reprices it.
func TestServerQuarantineAndRecovery(t *testing.T) {
	faultinject.Reset() // warm the book healthy
	s, _, badID := robustBook(t, ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	warm, err := s.Quote(badID)
	if err != nil {
		t.Fatal(err)
	}

	withFaults(t, faultinject.Rule{Kind: faultinject.SolvePanic, Match: "BAD"})
	before := ReadPerfCounters()
	base := Market{Spot: defaultCall().S, Vol: defaultCall().V, Rate: defaultCall().R}
	moved := base
	moved.Spot += 0.30
	if _, err := s.Tick("BAD", moved); err != nil {
		t.Fatal(err)
	}
	q, err := s.Quote(badID)
	if err != nil {
		t.Fatalf("quote for a quarantined contract must degrade, got error %v", err)
	}
	if !q.Degraded {
		t.Fatal("quote after a solver panic is not Degraded")
	}
	if q.Price != warm.Price {
		t.Errorf("degraded quote %v is not the pinned last-good price %v", q.Price, warm.Price)
	}
	recs := s.Quarantined()
	if len(recs) != 1 {
		t.Fatalf("quarantined %d contracts, want 1", len(recs))
	}
	r := recs[0]
	if r.Contract != badID || r.Symbol != "BAD" {
		t.Errorf("quarantine record %+v, want contract %d symbol BAD", r, badID)
	}
	var spe *SolvePanicError
	if !errors.As(r.Err, &spe) {
		t.Fatalf("quarantine error %T (%v), want *SolvePanicError", r.Err, r.Err)
	}
	if len(r.Stack) == 0 {
		t.Error("quarantine record carries no stack")
	}
	// One panic is below the default breaker threshold: the quarantine, not
	// the breaker, is what holds the contract out of flights.
	if st, _ := s.BreakerState("BAD"); st != serve.BreakerClosed {
		t.Fatalf("BAD breaker state %v after one panic, want closed", st)
	}
	if after := ReadPerfCounters(); after.PanicsRecovered-before.PanicsRecovered < 1 {
		t.Error("PanicsRecovered did not move")
	}

	// Heal the solver and move the cell: a new pricing problem is worth
	// retrying, so the tick lifts the quarantine and the next quote solves.
	faultinject.Reset()
	moved.Spot += 0.30
	if _, err := s.Tick("BAD", moved); err != nil {
		t.Fatal(err)
	}
	q, err = s.Quote(badID)
	if err != nil {
		t.Fatal(err)
	}
	if q.Degraded || q.Stale {
		t.Fatalf("got Degraded=%v Stale=%v after recovery, want a fresh serve", q.Degraded, q.Stale)
	}
	if recs := s.Quarantined(); len(recs) != 0 {
		t.Fatalf("%d contracts still quarantined after the cell moved", len(recs))
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("%d spawn tokens leaked", got)
	}
}

// A canceled quote stops waiting without poisoning the shared repricing
// flight: the flight completes for everyone else and the next quote serves
// from the repriced surface.
func TestServerQuoteCtxCanceledMidFlight(t *testing.T) {
	faultinject.Reset()
	s, _, badID := robustBook(t, ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.flightBarrier = func() {
		once.Do(func() { close(inFlight) })
		<-release
	}
	base := Market{Spot: defaultCall().S, Vol: defaultCall().V, Rate: defaultCall().R}
	moved := base
	moved.Spot += 0.30
	if _, err := s.Tick("BAD", moved); err != nil {
		t.Fatal(err)
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.Quote(badID)
		leaderDone <- err
	}()
	<-inFlight // the leader's flight has solved and is parked pre-write-back

	ctx, cancel := context.WithCancel(context.Background())
	joinerDone := make(chan error, 1)
	go func() {
		_, err := s.QuoteCtx(ctx, badID)
		joinerDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the joiner park on the flight
	cancel()
	select {
	case err := <-joinerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled joiner: got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled joiner kept waiting on the flight")
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader after a joiner canceled: %v", err)
	}
	s.flightBarrier = nil
	if q, err := s.Quote(badID); err != nil || q.Stale || q.Degraded {
		t.Fatalf("surface after the abandoned flight: got (%+v, %v), want a fresh serve", q, err)
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("%d spawn tokens leaked", got)
	}
}

// TestServeChaosSmoke is the CI chaos gate: a live server over a three-symbol
// book where every solve for one symbol panics and every solve for another is
// slowed, driven through tick/quote rounds. Every quote must be answered —
// degraded where the faults land, fresh elsewhere — with no spawn-budget
// leak. Opt-in via AMOP_BENCH_SMOKE=1 (wall-clock-sensitive; the full replay
// lives in the serve-chaos harness experiment).
func TestServeChaosSmoke(t *testing.T) {
	if os.Getenv("AMOP_BENCH_SMOKE") == "" {
		t.Skip("set AMOP_BENCH_SMOKE=1 to run the chaos smoke gate")
	}
	const steps = 400
	syms := []string{"CHAOS-GOOD", "CHAOS-PANIC", "CHAOS-SLOW"}
	reqs := sweepBook(steps)
	entries := make([]BookEntry, 0, len(reqs)*len(syms))
	for _, sym := range syms {
		for _, r := range reqs {
			entries = append(entries, BookEntry{Symbol: sym, Option: r.Option, Model: r.Model, Config: r.Config})
		}
	}
	faultinject.Reset() // warm healthy: degraded mode needs a last-good price
	s, err := NewServer(entries, ServerOptions{SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	withFaults(t,
		faultinject.Rule{Kind: faultinject.SolvePanic, Match: "CHAOS-PANIC"},
		faultinject.Rule{Kind: faultinject.SolveDelay, Match: "CHAOS-SLOW", Delay: 5 * time.Millisecond},
	)

	before := ReadPerfCounters()
	base := Market{Spot: defaultCall().S, Vol: defaultCall().V, Rate: defaultCall().R}
	degraded := map[string]int{}
	sawQuarantine := false
	for round := 0; round < 5; round++ {
		base.Spot += 0.30
		for _, sym := range syms {
			if _, err := s.Tick(sym, base); err != nil {
				t.Fatalf("round %d: tick %s: %v", round, sym, err)
			}
		}
		for id := range entries {
			q, err := s.Quote(id)
			if err != nil {
				t.Fatalf("round %d: quote %d (%s): %v", round, id, entries[id].Symbol, err)
			}
			if q.Degraded {
				degraded[entries[id].Symbol]++
			}
		}
		// Quarantine is transient by design — the next round's tick moves the
		// cell and lifts it, and once the breaker opens no flight panics at
		// all — so observe it inside the round, not at the end.
		sawQuarantine = sawQuarantine || len(s.Quarantined()) > 0
	}
	if degraded["CHAOS-PANIC"] == 0 {
		t.Error("the panicking symbol never served degraded")
	}
	if degraded["CHAOS-GOOD"] != 0 {
		t.Errorf("the healthy symbol served degraded %d times", degraded["CHAOS-GOOD"])
	}
	if degraded["CHAOS-SLOW"] != 0 {
		t.Errorf("the slow symbol served degraded %d times", degraded["CHAOS-SLOW"])
	}
	if !sawQuarantine {
		t.Error("no contract was ever quarantined under injected panics")
	}
	if after := ReadPerfCounters(); after.PanicsRecovered-before.PanicsRecovered < 1 {
		t.Error("PanicsRecovered did not move")
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("%d spawn tokens leaked across the chaos replay", got)
	}
}
