package amop

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/par"
)

func defaultCall() Option {
	return Option{Type: Call, S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1.0}
}

// PriceBatch must agree with sequential Price for every item, across models
// and configs.
func TestPriceBatchMatchesSequential(t *testing.T) {
	o := defaultCall()
	put := o
	put.Type = Put
	reqs := []Request{
		{Option: o, Model: Binomial, Config: Config{Steps: 800}},
		{Option: o, Model: Trinomial, Config: Config{Steps: 800}},
		{Option: put, Model: BlackScholesFD, Config: Config{Steps: 800}},
		{Option: o, Model: AutoModel, Config: Config{Steps: 600}},
		{Option: put, Model: AutoModel, Config: Config{Steps: 600}},
		{Option: o, Model: Binomial, Config: Config{Steps: 500, Algorithm: Naive}},
		{Option: o, Model: Binomial, Config: Config{Steps: 500, European: true}},
	}
	got := PriceBatch(reqs, BatchOptions{})
	if len(got) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(got), len(reqs))
	}
	for i, req := range reqs {
		want, err := Price(req.Option, resolveModel(req.Option, req.Model, req.Config), req.Config)
		if err != nil {
			t.Fatalf("request %d: sequential price failed: %v", i, err)
		}
		if got[i].Err != nil {
			t.Errorf("request %d: batch error %v", i, got[i].Err)
			continue
		}
		if got[i].Price != want {
			t.Errorf("request %d: batch price %v != sequential %v", i, got[i].Price, want)
		}
	}
}

// One bad contract must never abort the batch: valid items price, invalid
// items carry their own errors.
func TestPriceBatchPartialFailure(t *testing.T) {
	good := defaultCall()
	badSpot := good
	badSpot.S = -1
	badVol := good
	badVol.V = 0
	reqs := []Request{
		{Option: good, Config: Config{Steps: 400}},
		{Option: badSpot, Config: Config{Steps: 400}},                        // invalid market data
		{Option: good, Config: Config{Steps: 0}},                             // invalid steps
		{Option: good, Model: Model(99), Config: Config{Steps: 400}},         // unknown model
		{Option: good, Config: Config{Steps: 400, Algorithm: Algorithm(99)}}, // unknown algorithm
		{Option: badVol, Config: Config{Steps: 400}},                         // invalid vol
		{Option: good, Model: Trinomial, Config: Config{Steps: 400}},         // valid again
	}
	res := PriceBatch(reqs, BatchOptions{})
	wantErr := []bool{false, true, true, true, true, true, false}
	nErr := 0
	for i, r := range res {
		if (r.Err != nil) != wantErr[i] {
			t.Errorf("request %d: err = %v, want error: %v", i, r.Err, wantErr[i])
		}
		if r.Err != nil {
			nErr++
			continue
		}
		if r.Price <= 0 {
			t.Errorf("request %d: non-positive price %v for a valid contract", i, r.Price)
		}
	}
	if nErr != 5 {
		t.Errorf("aggregated %d item errors, want 5", nErr)
	}
}

// Duplicate contracts are priced once and shared through the memo, and
// identical lattice parameters hit the model cache.
func TestBatchEngineMemoAndModelCache(t *testing.T) {
	eng := newEngine()
	o := defaultCall()
	cfg := Config{Steps: 512}
	p1, err := eng.price(o, Binomial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eng.price(o, Binomial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("memoized duplicate priced differently: %v vs %v", p1, p2)
	}
	if len(eng.memo) != 1 {
		t.Errorf("memo holds %d entries after a duplicate request, want 1", len(eng.memo))
	}
	// A different algorithm on the same lattice reuses the constructed model.
	before := eng.models.Hits()
	if _, err := eng.price(o, Binomial, Config{Steps: 512, Algorithm: Naive}); err != nil {
		t.Fatal(err)
	}
	if eng.models.Hits() != before+1 {
		t.Errorf("model cache hits %d, want %d: same lattice parameters should share the model", eng.models.Hits(), before+1)
	}
}

// The pool must stay bounded at the requested width even with many jobs.
func TestRunPoolBoundedWorkers(t *testing.T) {
	var live, peak atomic.Int64
	runPool(64, 3, false, nil, func(i int) {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for k := 0; k < 1000; k++ {
			_ = k * k
		}
		live.Add(-1)
	})
	if p := peak.Load(); p > 3 {
		t.Errorf("peak pool concurrency %d exceeds Workers=3", p)
	}
}

// When the outer batch claims the whole spawn budget, inner pricers must run
// serially rather than oversubscribe.
func TestBatchSaturationForcesSerialInner(t *testing.T) {
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Option: defaultCall(), Config: Config{Steps: 1024}}
	}
	res := PriceBatch(reqs, BatchOptions{})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	// The real assertion is structural: with 4 workers the batch claims 3
	// spawn tokens, so par.TryAcquire from inner loops can only ever see a
	// zero budget while the pool is saturated. Verify the budget drained
	// and was restored.
	if got := par.TryAcquire(3); got != 3 {
		t.Errorf("spawn budget after batch = %d free tokens, want 3 (leak?)", got)
	} else {
		par.Release(3)
	}
}

// OnResult streams every item exactly once.
func TestPriceBatchOnResultStreams(t *testing.T) {
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{Option: defaultCall(), Config: Config{Steps: 128 + i}}
	}
	seen := make([]int, len(reqs))
	res := PriceBatch(reqs, BatchOptions{Workers: 4, OnResult: func(i int, r Result) {
		seen[i]++ // serialized by the engine
		if r.Err != nil {
			t.Errorf("request %d: %v", i, r.Err)
		}
	}})
	for i := range seen {
		if seen[i] != 1 {
			t.Errorf("request %d delivered %d times, want 1", i, seen[i])
		}
		if res[i].Price <= 0 {
			t.Errorf("request %d: price %v", i, res[i].Price)
		}
	}
}

func TestPriceBatchEmpty(t *testing.T) {
	if res := PriceBatch(nil, BatchOptions{}); len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}

// Chain: prices match the single-option API, Greeks are sensible, and the
// implied-vol round trip recovers the vol mark.
func TestChainRoundTrip(t *testing.T) {
	underlying := Option{Type: Call, S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163}
	strikes := []float64{120, 130}
	expiries := []float64{0.5, 1.0}
	opts := ChainOptions{Steps: 2000}
	quotes := Chain(underlying, strikes, expiries, opts)
	if len(quotes) != 4 {
		t.Fatalf("got %d quotes, want 4", len(quotes))
	}
	for idx, q := range quotes {
		i, j := idx/len(expiries), idx%len(expiries)
		if q.Strike != strikes[i] || q.Expiry != expiries[j] {
			t.Errorf("quote %d: labeled (K=%v, E=%v), want (%v, %v)", idx, q.Strike, q.Expiry, strikes[i], expiries[j])
		}
		if q.Err != nil {
			t.Fatalf("quote %d: %v", idx, q.Err)
		}
		o := underlying
		o.K, o.E = q.Strike, q.Expiry
		want, err := PriceAmerican(o, opts.Steps)
		if err != nil {
			t.Fatal(err)
		}
		if q.Price != want {
			t.Errorf("quote %d: price %v != PriceAmerican %v", idx, q.Price, want)
		}
		if q.Greeks.Delta <= 0 || q.Greeks.Delta > 1 {
			t.Errorf("quote %d: call delta %v outside (0, 1]", idx, q.Greeks.Delta)
		}
		if math.Abs(q.ImpliedVol-underlying.V) > 0.02 {
			t.Errorf("quote %d: implied vol %v does not round-trip the %v mark", idx, q.ImpliedVol, underlying.V)
		}
	}
}

// A chain cell with impossible parameters fails alone; its neighbors price.
func TestChainPartialFailure(t *testing.T) {
	underlying := Option{Type: Call, S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163}
	quotes := Chain(underlying, []float64{130, -5}, []float64{1.0}, ChainOptions{
		Steps: 500, SkipGreeks: true, SkipImpliedVol: true,
	})
	if quotes[0].Err != nil {
		t.Errorf("valid cell failed: %v", quotes[0].Err)
	}
	if quotes[1].Err == nil {
		t.Error("negative-strike cell did not report an error")
	}
}

// --- satellite: error-path coverage ------------------------------------------

func TestPriceBermudanBadInterval(t *testing.T) {
	o := defaultCall()
	for _, every := range []int{0, -3} {
		if _, err := PriceBermudan(o, 256, every); err == nil {
			t.Errorf("PriceBermudan(every=%d) returned no error", every)
		} else if !strings.Contains(err.Error(), "must be >= 1") {
			t.Errorf("PriceBermudan(every=%d) error %q does not explain the constraint", every, err)
		}
	}
	if _, err := PriceBermudan(o, 0, 1); err == nil {
		t.Error("PriceBermudan(steps=0) returned no error")
	}
}

func TestPriceUnknownModelAndAlgorithm(t *testing.T) {
	o := defaultCall()
	if _, err := Price(o, Model(42), Config{Steps: 64}); err == nil {
		t.Error("Price with unknown model returned no error")
	}
	if _, err := Price(o, Binomial, Config{Steps: 64, Algorithm: Algorithm(42)}); err == nil {
		t.Error("Price with unknown algorithm returned no error")
	}
	if _, err := Price(o, Binomial, Config{Steps: 64, European: true, Algorithm: Tiled}); err == nil {
		t.Error("European lattice pricing with Tiled returned no error")
	}
	if _, err := Price(o, Binomial, Config{Steps: 0}); err == nil {
		t.Error("Price with zero steps returned no error")
	}
}

// --- satellite: ImpliedVol bracket regression --------------------------------

// A target below intrinsic value is unattainable at any volatility. The
// error must report the bracket the search actually used: under the default
// dividend yield the binomial lattice degenerates at the initial lo=1e-4, so
// the lower bound is silently raised before the range check — the old
// message presented the raised bracket's price as if it held for the full
// [1e-4, 5] range.
func TestImpliedVolTargetBelowIntrinsic(t *testing.T) {
	o := defaultCall()
	o.K = 100 // deep ITM call: intrinsic = 27.62
	const steps = 1000
	_, err := ImpliedVol(o, steps, 1.0) // far below intrinsic
	if err == nil {
		t.Fatal("ImpliedVol for a target below intrinsic returned no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "volatility in [") {
		t.Errorf("error %q does not state the volatility bracket actually used", msg)
	}
	// The default parameters have Y > R, so lo=1e-4 degenerates the tree
	// and the bracket must have been raised; the error must not imply the
	// range was computed at 1e-4.
	if strings.Contains(msg, "[0.0001,") {
		t.Errorf("error %q reports the unraised bracket, want the raised one", msg)
	}
}

func TestImpliedVolRecoversVol(t *testing.T) {
	o := defaultCall()
	const steps = 1000
	price, err := PriceAmerican(o, steps)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := ImpliedVol(o, steps, price)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv-o.V) > 1e-3 {
		t.Errorf("implied vol %v, want %v", iv, o.V)
	}
}

// TestChainRepricingMemoHits drives a Greeks+IV chain and asserts the
// repricing memo is actually exercised: the implied-vol solver's seed and
// first slope evaluations land on the same (option, steps) keys as the
// Greeks' base price and vega bumps, so every cell must produce memo hits.
func TestChainRepricingMemoHits(t *testing.T) {
	underlying := Option{Type: Call, S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163}
	before := ReadPerfCounters()
	quotes := Chain(underlying, []float64{120, 130}, []float64{1.0}, ChainOptions{Steps: 800})
	after := ReadPerfCounters()
	for i, q := range quotes {
		if q.Err != nil {
			t.Fatalf("quote %d: %v", i, q.Err)
		}
		if q.ImpliedVol == 0 || q.Greeks.Vega == 0 {
			t.Fatalf("quote %d: Greeks+IV not computed (vega=%v, iv=%v)", i, q.Greeks.Vega, q.ImpliedVol)
		}
	}
	hits := after.RepricingMemoHits - before.RepricingMemoHits
	if hits <= 0 {
		t.Errorf("repricing memo hits did not advance on a Greeks+IV chain: %d -> %d",
			before.RepricingMemoHits, after.RepricingMemoHits)
	}
	if misses := after.RepricingMemoMisses - before.RepricingMemoMisses; misses <= 0 {
		t.Errorf("repricing memo misses did not advance: %d -> %d",
			before.RepricingMemoMisses, after.RepricingMemoMisses)
	}
}

// DisableMemo must leave prices unchanged while bypassing the memo entirely.
func TestPriceBatchDisableMemo(t *testing.T) {
	reqs := []Request{
		{Option: defaultCall(), Config: Config{Steps: 400}},
		{Option: defaultCall(), Config: Config{Steps: 400}}, // duplicate
	}
	before := ReadPerfCounters()
	res := PriceBatch(reqs, BatchOptions{DisableMemo: true})
	after := ReadPerfCounters()
	if res[0].Err != nil || res[1].Err != nil {
		t.Fatalf("errors: %v, %v", res[0].Err, res[1].Err)
	}
	if res[0].Price != res[1].Price {
		t.Errorf("duplicate requests priced differently without the memo: %v vs %v", res[0].Price, res[1].Price)
	}
	if d := (after.RepricingMemoHits + after.RepricingMemoMisses) - (before.RepricingMemoHits + before.RepricingMemoMisses); d != 0 {
		t.Errorf("memo counters advanced by %d with DisableMemo set", d)
	}
}

// The Newton fast path must also solve from a seed far from the answer (the
// quote's vol mark is a hint, not a requirement).
func TestImpliedVolFarSeed(t *testing.T) {
	o := defaultCall()
	const steps = 1000
	truth := o
	truth.V = 0.45
	target, err := PriceAmerican(truth, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Solve with the mark still at 0.2: the solver must walk to 0.45.
	iv, err := ImpliedVol(o, steps, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv-0.45) > 1e-3 {
		t.Errorf("implied vol %v from a far seed, want 0.45", iv)
	}
}

// TestPriceBatchSharesSpectrumCache runs a batch whose contracts differ only
// by strike, so every worker needs the same kernel spectra, concurrently.
// All pricings must succeed, the shared spectrum cache must be exercised
// (hits strictly increase), and results must equal a sequential repricing.
// Run with -race: this is the intended stress of the process-wide cache.
func TestPriceBatchSharesSpectrumCache(t *testing.T) {
	base := defaultCall()
	var reqs []Request
	for i := 0; i < 24; i++ {
		o := base
		o.K = 100 + float64(i%6) // repeated strikes: same lattices, shared spectra
		reqs = append(reqs, Request{Option: o, Model: Binomial, Config: Config{Steps: 3000}})
	}
	before := ReadPerfCounters()
	res := PriceBatch(reqs, BatchOptions{Workers: 8})
	after := ReadPerfCounters()

	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		want, err := Price(reqs[i].Option, Binomial, reqs[i].Config)
		if err != nil {
			t.Fatalf("request %d sequential: %v", i, err)
		}
		if r.Price != want {
			t.Errorf("request %d: batch price %v != sequential %v", i, r.Price, want)
		}
	}
	if after.SpectrumCacheHits <= before.SpectrumCacheHits {
		t.Errorf("spectrum cache hits did not advance: %d -> %d",
			before.SpectrumCacheHits, after.SpectrumCacheHits)
	}
	if after.FFTBytesTransformed <= before.FFTBytesTransformed {
		t.Error("FFT transform traffic counter did not advance")
	}
}

// TestPerfCountersSoATransforms pins the SoA transform counter's plumbing
// through the public snapshot: with the SoA kernel enabled (the default on
// accelerated machines) a lattice solve large enough for the FFT path must
// advance FFTSoATransforms, and the counter never goes backwards.
func TestPerfCountersSoATransforms(t *testing.T) {
	if !fft.SoA() {
		t.Skip("SoA kernel disabled on this machine (no accelerated butterfly kernel)")
	}
	o := defaultCall()
	before := ReadPerfCounters()
	if _, err := Price(o, Binomial, Config{Steps: 3000}); err != nil {
		t.Fatal(err)
	}
	after := ReadPerfCounters()
	if after.FFTSoATransforms <= before.FFTSoATransforms {
		t.Errorf("FFTSoATransforms did not advance across an FFT-path solve: %d -> %d",
			before.FFTSoATransforms, after.FFTSoATransforms)
	}
	if again := ReadPerfCounters(); again.FFTSoATransforms < after.FFTSoATransforms {
		t.Errorf("FFTSoATransforms went backwards: %d -> %d",
			after.FFTSoATransforms, again.FFTSoATransforms)
	}
}
