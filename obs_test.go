package amop

import (
	"os"
	"sort"
	"testing"
	"time"

	"github.com/nlstencil/amop/internal/faultinject"
	"github.com/nlstencil/amop/internal/obs"
)

// Health must flip to not-ready when a contract is quarantined, name the
// degraded symbol, and recover once the quarantine lifts.
func TestServerHealthQuarantine(t *testing.T) {
	faultinject.Reset() // warm the book healthy
	s, _, badID := robustBook(t, ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	if _, err := s.Quote(badID); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if !h.Ready || len(h.OpenBreakers) != 0 || h.QuarantinedContracts != 0 {
		t.Fatalf("healthy book not ready: %+v", h)
	}
	if len(h.Symbols) != 2 || h.Symbols[0].Symbol != "BAD" || h.Symbols[1].Symbol != "GOOD" {
		t.Fatalf("per-symbol breakdown not sorted: %+v", h.Symbols)
	}

	// Panic the BAD solver: the repricing flight quarantines the contract.
	withFaults(t, faultinject.Rule{Kind: faultinject.SolvePanic, Match: "BAD"})
	base := Market{Spot: defaultCall().S, Vol: defaultCall().V, Rate: defaultCall().R}
	moved := base
	moved.Spot += 0.30
	if _, err := s.Tick("BAD", moved); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quote(badID); err != nil {
		t.Fatal(err)
	}
	h = s.Health()
	if h.Ready {
		t.Fatalf("quarantined contract but Ready=true: %+v", h)
	}
	if h.QuarantinedContracts != 1 {
		t.Fatalf("QuarantinedContracts = %d, want 1", h.QuarantinedContracts)
	}
	if len(h.DegradedSymbols) != 1 || h.DegradedSymbols[0] != "BAD" {
		t.Fatalf("DegradedSymbols = %v, want [BAD]", h.DegradedSymbols)
	}
	for _, sh := range h.Symbols {
		switch sh.Symbol {
		case "BAD":
			if sh.Quarantined != 1 || sh.Failing != 1 {
				t.Errorf("BAD health = %+v, want Quarantined=1 Failing=1", sh)
			}
		case "GOOD":
			if sh.Quarantined != 0 || sh.Failing != 0 {
				t.Errorf("GOOD health = %+v, want clean", sh)
			}
		}
	}

	// Heal the solver and move the cell: the quarantine lifts, the next quote
	// solves, and the health view goes green again.
	faultinject.Reset()
	moved.Spot += 0.30
	if _, err := s.Tick("BAD", moved); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quote(badID); err != nil {
		t.Fatal(err)
	}
	if h = s.Health(); !h.Ready || h.QuarantinedContracts != 0 || len(h.DegradedSymbols) != 0 {
		t.Fatalf("health did not recover: %+v", h)
	}
}

// An open circuit breaker must surface in Health as not-ready with the symbol
// listed under OpenBreakers.
func TestServerHealthOpenBreaker(t *testing.T) {
	faultinject.Reset()
	s, _, badID := robustBook(t, ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
		BreakerThreshold: 1, BreakerBackoff: time.Hour,
	})
	if _, err := s.Quote(badID); err != nil {
		t.Fatal(err)
	}
	withFaults(t, faultinject.Rule{Kind: faultinject.SolveNaN, Match: "BAD"})
	base := Market{Spot: defaultCall().S, Vol: defaultCall().V, Rate: defaultCall().R}
	moved := base
	moved.Spot += 0.30
	if _, err := s.Tick("BAD", moved); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quote(badID); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.Ready {
		t.Fatalf("open breaker but Ready=true: %+v", h)
	}
	if len(h.OpenBreakers) != 1 || h.OpenBreakers[0] != "BAD" {
		t.Fatalf("OpenBreakers = %v, want [BAD]", h.OpenBreakers)
	}
	for _, sh := range h.Symbols {
		if sh.Symbol == "BAD" && sh.Breaker != "open" {
			t.Fatalf("BAD breaker state %q, want open", sh.Breaker)
		}
	}
}

// The telemetry layer's price of admission, pinned: the cached-quote fast
// path must stay at 0 allocs/op with telemetry ON, and its p50 latency with
// telemetry on must be within 5% of telemetry off. Opt-in via
// AMOP_BENCH_SMOKE=1 — wall-clock assertions do not belong in the default
// test run.
func TestObsOverheadSmoke(t *testing.T) {
	if os.Getenv("AMOP_BENCH_SMOKE") == "" {
		t.Skip("set AMOP_BENCH_SMOKE=1 to run the telemetry overhead gate")
	}
	faultinject.Reset()
	s, goodID, _ := robustBook(t, ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	if _, err := s.Quote(goodID); err != nil {
		t.Fatal(err)
	}
	prev := obs.Enabled()
	defer obs.SetEnabled(prev)

	// Gate 1: zero allocations on the cached path with telemetry recording.
	obs.SetEnabled(true)
	if allocs := testing.AllocsPerRun(2000, func() {
		if _, err := s.Quote(goodID); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("cached quote with telemetry on: %.2f allocs/op, want 0", allocs)
	}

	// Gate 2: p50 overhead under 5%. Trials are interleaved on/off so clock
	// drift and thermal throttling hit both modes equally, and the median of
	// many batched trials stands in for p50 — a per-call timestamp would
	// dwarf the ~100ns operation being measured.
	const trials = 21
	const perTrial = 20000
	run := func(enabled bool) time.Duration {
		obs.SetEnabled(enabled)
		start := time.Now()
		for i := 0; i < perTrial; i++ {
			if _, err := s.Quote(goodID); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / perTrial
	}
	run(true) // warm both code paths and the branch predictor
	run(false)
	on := make([]time.Duration, 0, trials)
	off := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		on = append(on, run(true))
		off = append(off, run(false))
	}
	p50 := func(d []time.Duration) time.Duration {
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		return d[len(d)/2]
	}
	onP, offP := p50(on), p50(off)
	t.Logf("cached quote p50: telemetry on %v, off %v (%.1f%% overhead)",
		onP, offP, 100*(float64(onP)/float64(offP)-1))
	if float64(onP) > float64(offP)*1.05 {
		t.Errorf("telemetry overhead: p50 on %v vs off %v exceeds the 5%% budget", onP, offP)
	}
}
