package amop

import (
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/nlstencil/amop/internal/linstencil"
)

// sweepBook returns a small mixed book: calls (binomial fast path) and an
// American put (BSM finite differences), with heterogeneous strikes.
func sweepBook(steps int) []Request {
	base := defaultCall()
	var reqs []Request
	for _, k := range []float64{120, 130, 140} {
		o := base
		o.K = k
		reqs = append(reqs, Request{Option: o, Config: Config{Steps: steps}})
	}
	put := base
	put.Type = Put
	reqs = append(reqs, Request{Option: put, Model: AutoModel, Config: Config{Steps: steps}})
	return reqs
}

// naiveFanout is the reference the sweep engine is measured against: one
// independent PriceBatch per scenario, every repricing at full resolution.
func naiveFanout(reqs []Request, scenarios []Scenario, workers int) [][]Result {
	out := make([][]Result, len(scenarios))
	for s, sc := range scenarios {
		bumped := make([]Request, len(reqs))
		for c, req := range reqs {
			req.Option = sc.Apply(req.Option)
			bumped[c] = req
		}
		out[s] = PriceBatch(bumped, BatchOptions{Workers: workers})
	}
	return out
}

func TestScenarioGridExpansion(t *testing.T) {
	g := ScenarioGrid{
		SpotBumps: []float64{-0.05, 0, 0.05},
		VolBumps:  []float64{-0.02, 0, 0.02},
		Stress:    []Scenario{{Name: "crash", Spot: -0.3, Vol: 0.15}},
	}
	scs := g.Scenarios()
	if len(scs) != 10 {
		t.Fatalf("expanded %d scenarios, want 3*3*1 + 1 = 10", len(scs))
	}
	bases := 0
	for _, sc := range scs {
		if sc.IsBase() {
			bases++
		}
	}
	if bases != 1 {
		t.Errorf("%d base scenarios in the grid, want exactly 1", bases)
	}
	if got := scs[len(scs)-1].Label(); got != "crash" {
		t.Errorf("stress label %q, want crash", got)
	}
	if got := (Scenario{}).Label(); got != "base" {
		t.Errorf("zero scenario label %q, want base", got)
	}
	if got := (Scenario{Spot: 0.05, Rate: 0.0025}).Label(); got != "spot+5%/rate+25bp" {
		t.Errorf("derived label %q", got)
	}
	if len(ScenarioGrid{}.Scenarios()) != 1 {
		t.Error("empty grid should expand to the single base scenario")
	}
	if !(ScenarioGrid{}).IsEmpty() || g.IsEmpty() || (ScenarioGrid{Stress: g.Stress}).IsEmpty() {
		t.Error("IsEmpty misclassifies a grid")
	}
}

// At full scenario resolution (ScenarioSteps < 0) the sweep must agree
// exactly with pricing each bumped contract directly — the control variate
// degenerates to the plain scenario price.
func TestScenarioSweepMatchesDirectFullRes(t *testing.T) {
	reqs := sweepBook(600)
	scenarios := ScenarioGrid{SpotBumps: []float64{-0.04, 0, 0.04}, VolBumps: []float64{0, 0.02}}.Scenarios()
	sw := ScenarioSweep(reqs, scenarios, SweepOptions{ScenarioSteps: -1})
	if sw.Stats.Cells != len(reqs)*len(scenarios) {
		t.Fatalf("Stats.Cells = %d", sw.Stats.Cells)
	}
	for c, req := range reqs {
		base, err := Price(req.Option, resolveModel(req.Option, req.Model, req.Config), req.Config)
		if err != nil {
			t.Fatalf("contract %d base: %v", c, err)
		}
		if sw.Base[c].Err != nil || sw.Base[c].Price != base {
			t.Fatalf("contract %d: sweep base %v (err %v), want %v", c, sw.Base[c].Price, sw.Base[c].Err, base)
		}
		for s, sc := range scenarios {
			cell := sw.At(c, s)
			if cell.Err != nil {
				t.Fatalf("cell (%d,%d): %v", c, s, cell.Err)
			}
			want, err := Price(sc.Apply(req.Option), resolveModel(req.Option, req.Model, req.Config), req.Config)
			if err != nil {
				t.Fatalf("cell (%d,%d) direct: %v", c, s, err)
			}
			if cell.Price != want {
				t.Errorf("cell (%d,%d): price %v, want %v", c, s, cell.Price, want)
			}
			if cell.PnL != cell.Price-base {
				t.Errorf("cell (%d,%d): PnL %v != price - base %v", c, s, cell.PnL, cell.Price-base)
			}
		}
	}
}

// At the default reduced resolution the sweep price must equal the
// control-variate formula assembled from three direct Price calls, and the
// zero-bump cell must collapse exactly onto the full-resolution base.
func TestScenarioSweepControlVariate(t *testing.T) {
	steps := 800
	reqs := sweepBook(steps)
	scenarios := []Scenario{{}, {Spot: -0.05}, {Vol: 0.03}}
	sw := ScenarioSweep(reqs, scenarios, SweepOptions{})
	loCfg := Config{Steps: steps / 2}
	for c, req := range reqs {
		m := resolveModel(req.Option, req.Model, req.Config)
		hi, err := Price(req.Option, m, req.Config)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := Price(req.Option, m, loCfg)
		if err != nil {
			t.Fatal(err)
		}
		for s, sc := range scenarios {
			cell := sw.At(c, s)
			if cell.Err != nil {
				t.Fatalf("cell (%d,%d): %v", c, s, cell.Err)
			}
			scen, err := Price(sc.Apply(req.Option), m, loCfg)
			if err != nil {
				t.Fatal(err)
			}
			if want := hi + (scen - lo); cell.Price != want {
				t.Errorf("cell (%d,%d): price %v, want cv %v", c, s, cell.Price, want)
			}
		}
		if zero := sw.At(c, 0); zero.Price != hi || zero.PnL != 0 {
			t.Errorf("contract %d: zero-bump cell (price %v, pnl %v), want (%v, 0)", c, zero.Price, zero.PnL, hi)
		}
	}
}

// One scenario that drives the volatility negative must fail only its own
// column: every other cell, and every base price, stays healthy.
func TestScenarioSweepPartialFailure(t *testing.T) {
	reqs := sweepBook(400)
	scenarios := []Scenario{{Spot: 0.02}, {Name: "poison", Vol: -0.5}, {Rate: 0.001}}
	sw := ScenarioSweep(reqs, scenarios, SweepOptions{})
	for c := range reqs {
		if sw.Base[c].Err != nil {
			t.Fatalf("base %d failed: %v", c, sw.Base[c].Err)
		}
		for s := range scenarios {
			cell := sw.At(c, s)
			if s == 1 {
				if cell.Err == nil {
					t.Errorf("cell (%d,%d): negative-vol scenario did not error", c, s)
				}
				continue
			}
			if cell.Err != nil {
				t.Errorf("cell (%d,%d) poisoned by sibling scenario: %v", c, s, cell.Err)
			}
			if cell.Price <= 0 {
				t.Errorf("cell (%d,%d): price %v", c, s, cell.Price)
			}
		}
	}
}

// The plan must fold duplicate contracts, repeated scenarios and the
// zero-bump point into single repricings, and duplicated cells must carry
// identical results.
func TestScenarioSweepPlanDedup(t *testing.T) {
	req := Request{Option: defaultCall(), Config: Config{Steps: 300}}
	reqs := []Request{req, req} // duplicate contract
	scenarios := []Scenario{{}, {Spot: 0.05}, {Spot: 0.05}}
	sw := ScenarioSweep(reqs, scenarios, SweepOptions{})
	// Unique work: one hi anchor, one lo anchor, one bumped point — the
	// duplicate contract, the repeated scenario, and the zero-bump cell (which
	// coincides with the lo anchor) all dedupe away.
	if sw.Stats.UniqueRepricings != 3 {
		t.Errorf("UniqueRepricings = %d, want 3", sw.Stats.UniqueRepricings)
	}
	if sw.Stats.Cells != 6 {
		t.Errorf("Cells = %d, want 6", sw.Stats.Cells)
	}
	if a, b := sw.At(0, 1), sw.At(1, 2); a != b {
		t.Errorf("duplicated cells disagree: %+v vs %+v", a, b)
	}
}

func TestScenarioSweepOnResultStreams(t *testing.T) {
	reqs := sweepBook(300)
	scenarios := ScenarioGrid{SpotBumps: []float64{-0.02, 0.02}, VolBumps: []float64{-0.01, 0.01}}.Scenarios()
	var mu sync.Mutex
	seen := make(map[[2]int]int)
	inCallback := false
	sw := ScenarioSweep(reqs, scenarios, SweepOptions{
		OnResult: func(c, s int, r ScenarioResult) {
			mu.Lock()
			defer mu.Unlock()
			if inCallback {
				t.Error("OnResult not serialized")
			}
			inCallback = true
			defer func() { inCallback = false }()
			if c < 0 || c >= len(reqs) || s < 0 || s >= len(scenarios) {
				t.Errorf("OnResult out of range: (%d,%d)", c, s)
			}
			seen[[2]int{c, s}]++
		},
	})
	if len(seen) != sw.Stats.Cells {
		t.Fatalf("streamed %d distinct cells, want %d", len(seen), sw.Stats.Cells)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("cell %v streamed %d times", k, n)
		}
	}
}

func TestScenarioSweepGreeks(t *testing.T) {
	reqs := []Request{{Option: defaultCall(), Config: Config{Steps: 500}}}
	scenarios := []Scenario{{}, {Spot: -0.05}}
	sw := ScenarioSweep(reqs, scenarios, SweepOptions{Greeks: true})
	for s := range scenarios {
		cell := sw.At(0, s)
		if cell.Err != nil {
			t.Fatalf("scenario %d: %v", s, cell.Err)
		}
		if cell.Greeks.Delta <= 0 || cell.Greeks.Delta >= 1 {
			t.Errorf("scenario %d: call delta %v outside (0,1)", s, cell.Greeks.Delta)
		}
		if cell.Greeks.Vega <= 0 {
			t.Errorf("scenario %d: vega %v", s, cell.Greeks.Vega)
		}
	}
	// The downward spot scenario must lower the call's delta.
	if d0, d1 := sw.At(0, 0).Greeks.Delta, sw.At(0, 1).Greeks.Delta; d1 >= d0 {
		t.Errorf("delta did not fall under the down-spot scenario: %v -> %v", d0, d1)
	}
}

func TestScenarioSweepEmptyInputs(t *testing.T) {
	if sw := ScenarioSweep(nil, []Scenario{{Spot: 0.1}}, SweepOptions{}); len(sw.Results) != 0 || sw.Stats.UniqueRepricings != 0 {
		t.Errorf("nil requests: %+v", sw.Stats)
	}
	reqs := []Request{{Option: defaultCall(), Config: Config{Steps: 200}}}
	sw := ScenarioSweep(reqs, nil, SweepOptions{})
	if len(sw.Results) != 0 {
		t.Errorf("nil scenarios produced %d cells", len(sw.Results))
	}
	if sw.Base[0].Err != nil || sw.Base[0].Price <= 0 {
		t.Errorf("nil scenarios: base not priced: %+v", sw.Base[0])
	}
	if sw.Stats.UniqueRepricings != 1 {
		t.Errorf("nil scenarios: UniqueRepricings = %d, want 1 (base only)", sw.Stats.UniqueRepricings)
	}
}

// Concurrent sweeps share the process-wide spectrum and symbol caches (and
// their cross-resolution transfer path); run under -race they must still
// produce results identical to a serial sweep.
func TestScenarioSweepConcurrentSharedCache(t *testing.T) {
	reqs := sweepBook(400)
	scenarios := ScenarioGrid{SpotBumps: []float64{-0.03, 0.03}, VolBumps: []float64{-0.01, 0.01}}.Scenarios()
	want := ScenarioSweep(reqs, scenarios, SweepOptions{})
	var wg sync.WaitGroup
	got := make([]*Sweep, 4)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = ScenarioSweep(reqs, scenarios, SweepOptions{Workers: 2})
		}(g)
	}
	wg.Wait()
	for g, sw := range got {
		for i := range want.Results {
			if sw.Results[i] != want.Results[i] {
				t.Fatalf("goroutine %d cell %d: %+v, want %+v", g, i, sw.Results[i], want.Results[i])
			}
		}
	}
}

// Perf counters must be monotone across a sweep, and a default sweep (base
// at full resolution, scenarios at half) must exercise the cross-resolution
// symbol transfer.
func TestSweepPerfCountersMonotoneAndCrossRes(t *testing.T) {
	// Flush the spectrum cache so the sweep below rebuilds its symbol tables
	// even if an earlier test priced the same book.
	linstencil.SetSpectrumCacheLimit(0)
	linstencil.SetSpectrumCacheLimit(linstencil.DefaultSpectrumCacheLimit)
	before := ReadPerfCounters()
	reqs := sweepBook(2048)
	scenarios := ScenarioGrid{SpotBumps: []float64{-0.05, 0.05}, VolBumps: []float64{-0.02, 0.02}}.Scenarios()
	sw := ScenarioSweep(reqs, scenarios, SweepOptions{})
	for i, r := range sw.Results {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
	}
	after := ReadPerfCounters()
	type pair struct {
		name   string
		before int64
		after  int64
	}
	for _, p := range []pair{
		{"SpectrumCacheHits", before.SpectrumCacheHits, after.SpectrumCacheHits},
		{"SpectrumCacheMisses", before.SpectrumCacheMisses, after.SpectrumCacheMisses},
		{"SpectrumSymbolHits", before.SpectrumSymbolHits, after.SpectrumSymbolHits},
		{"SpectrumSymbolMisses", before.SpectrumSymbolMisses, after.SpectrumSymbolMisses},
		{"SpectrumCrossResHits", before.SpectrumCrossResHits, after.SpectrumCrossResHits},
		{"FFTBytesTransformed", before.FFTBytesTransformed, after.FFTBytesTransformed},
		{"RepricingMemoHits", before.RepricingMemoHits, after.RepricingMemoHits},
		{"RepricingMemoMisses", before.RepricingMemoMisses, after.RepricingMemoMisses},
	} {
		if p.after < p.before {
			t.Errorf("%s went backwards: %d -> %d", p.name, p.before, p.after)
		}
	}
	if after.SpectrumCrossResHits == before.SpectrumCrossResHits {
		t.Error("sweep recorded no cross-resolution symbol transfers")
	}
	if after.SpectrumSymbolMisses == before.SpectrumSymbolMisses {
		t.Error("sweep built no symbol tables (cache flush did not take?)")
	}
}

// TestScenarioSweepNotSlowerSmoke is the CI bench-smoke gate: the sweep
// engine must beat (or at worst match) the naive per-scenario PriceBatch
// fan-out it replaces. Median of several back-to-back rounds, 5% tolerance,
// opt-in via AMOP_BENCH_SMOKE=1 — wall-clock assertions do not belong in the
// default tier-1 run.
func TestScenarioSweepNotSlowerSmoke(t *testing.T) {
	if os.Getenv("AMOP_BENCH_SMOKE") == "" {
		t.Skip("set AMOP_BENCH_SMOKE=1 to run the sweep vs naive fan-out timing gate")
	}
	steps := 2000
	reqs := sweepBook(steps)
	scenarios := ScenarioGrid{
		SpotBumps: []float64{-0.05, 0, 0.05},
		VolBumps:  []float64{-0.02, 0, 0.02},
	}.Scenarios()
	check := func(sw *Sweep) {
		for i, r := range sw.Results {
			if r.Err != nil {
				t.Fatalf("cell %d: %v", i, r.Err)
			}
		}
	}
	check(ScenarioSweep(reqs, scenarios, SweepOptions{})) // warm plans, spectra, scratch
	naiveFanout(reqs, scenarios, 0)
	median := func(run func()) float64 {
		times := make([]float64, 0, 5)
		for round := 0; round < 5; round++ {
			start := time.Now()
			run()
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		return times[len(times)/2]
	}
	sweepT := median(func() { check(ScenarioSweep(reqs, scenarios, SweepOptions{})) })
	naiveT := median(func() { naiveFanout(reqs, scenarios, 0) })
	t.Logf("sweep %.4gs, naive fan-out %.4gs (%.2fx) on %d contracts x %d scenarios at T=%d",
		sweepT, naiveT, naiveT/sweepT, len(reqs), len(scenarios), steps)
	if sweepT > naiveT*1.05 {
		t.Errorf("scenario sweep slower than naive fan-out: %.4gs vs %.4gs", sweepT, naiveT)
	}
}
