package amop

import (
	"fmt"
	"math"
)

// Greeks holds the standard first- and second-order price sensitivities.
type Greeks struct {
	Delta float64 // dV/dS
	Gamma float64 // d^2V/dS^2
	Theta float64 // dV/dt (per year; negative for long options, usually)
	Vega  float64 // dV/dVol (per 1.0 of volatility)
	Rho   float64 // dV/dR (per 1.0 of rate)
}

// GreeksAmerican computes the Greeks of an American option by central finite
// differences around the fast pricer. Bump sizes are relative and chosen
// large enough to dominate the O(1/T) lattice discretization noise at
// moderate step counts; results carry the usual bump-and-reprice error.
func GreeksAmerican(o Option, steps int) (Greeks, error) {
	price := func(o Option) (float64, error) { return PriceAmerican(o, steps) }
	return greeks(o, price)
}

// GreeksEuropean computes the Greeks of a European option the same way but
// around the lattice European pricer.
func GreeksEuropean(o Option, steps int) (Greeks, error) {
	price := func(o Option) (float64, error) { return PriceEuropean(o, steps) }
	return greeks(o, price)
}

func greeks(o Option, price func(Option) (float64, error)) (Greeks, error) {
	var g Greeks

	base, err := price(o)
	if err != nil {
		return g, fmt.Errorf("amop: greeks base price: %w", err)
	}

	// Delta and gamma share one pair of spot bumps.
	dS := 0.01 * o.S
	up, dn := o, o
	up.S += dS
	dn.S -= dS
	vUp, err := price(up)
	if err != nil {
		return g, err
	}
	vDn, err := price(dn)
	if err != nil {
		return g, err
	}
	g.Delta = (vUp - vDn) / (2 * dS)
	g.Gamma = (vUp - 2*base + vDn) / (dS * dS)

	// Vega. The bump points are shared with impliedVolNewton's first slope
	// estimate, so a quote computing both Greeks and implied vol through the
	// batch engine prices them once.
	const dV = vegaBump
	up, dn = o, o
	up.V += dV
	dn.V = math.Max(dn.V-dV, volBracketLo)
	vUp, err = price(up)
	if err != nil {
		return g, err
	}
	vDn, err = price(dn)
	if err != nil {
		return g, err
	}
	g.Vega = (vUp - vDn) / (up.V - dn.V)

	// Rho. Keep the rate non-negative (the models require R >= 0).
	dR := 5e-4
	up, dn = o, o
	up.R += dR
	dn.R = math.Max(dn.R-dR, 0)
	vUp, err = price(up)
	if err != nil {
		return g, err
	}
	vDn, err = price(dn)
	if err != nil {
		return g, err
	}
	g.Rho = (vUp - vDn) / (up.R - dn.R)

	// Theta: value decay as calendar time passes (expiry shrinks).
	dE := math.Min(0.01, o.E/4)
	up, dn = o, o
	up.E += dE
	dn.E -= dE
	vUp, err = price(up)
	if err != nil {
		return g, err
	}
	vDn, err = price(dn)
	if err != nil {
		return g, err
	}
	g.Theta = -(vUp - vDn) / (2 * dE)

	return g, nil
}

// ImpliedVol solves for the volatility at which the American option's fast
// model price equals target, by bisection over [lo, hi] = [0.0001, 5].
// American prices are strictly increasing in volatility, so the root is
// unique when it exists; an error is returned when target lies outside the
// attainable range.
func ImpliedVol(o Option, steps int, target float64) (float64, error) {
	return impliedVolWith(o, target, func(oo Option) (float64, error) {
		return PriceAmerican(oo, steps)
	})
}

// impliedVolWith is ImpliedVol around an arbitrary pricer, so the batch
// engine can route the solver's repricings through its caches.
//
// It tries a safeguarded Newton/secant iteration seeded at the option's own
// volatility mark first — for the desk round trip (and any quote whose vol
// mark is near the answer) that converges in a handful of repricings instead
// of bisection's ~30, and its first three evaluations reuse exactly the
// points the Greeks' vega bump prices, so under the batch engine they are
// memo hits rather than new solves. When the fast path cannot certify a root
// (bad seed, degenerate lattice, target out of range) it falls back to the
// original bracketed bisection, which also owns the out-of-range error
// reporting.
func impliedVolWith(o Option, target float64, price func(Option) (float64, error)) (float64, error) {
	if math.IsNaN(target) || target <= 0 {
		return 0, fmt.Errorf("amop: implied vol target %v must be positive", target)
	}
	priceAt := func(v float64) (float64, error) {
		oo := o
		oo.V = v
		return price(oo)
	}
	if iv, ok := impliedVolNewton(o.V, target, priceAt); ok {
		return iv, nil
	}
	lo, hi := volBracketLo, volBracketHi
	// The binomial tree degenerates (q outside (0,1)) when one volatility
	// step cannot cover the drift; raise the lower bracket until the model
	// is well-posed there.
	pLo, err := priceAt(lo)
	for err != nil && lo < 0.2 {
		lo *= 2
		pLo, err = priceAt(lo)
	}
	if err != nil {
		return 0, err
	}
	pHi, err := priceAt(hi)
	if err != nil {
		return 0, err
	}
	if target < pLo || target > pHi {
		// Report the bracket the search actually used: when the lattice
		// degenerated at low vols the lower bound was raised above 1e-4,
		// and pLo is only attainable down to that raised volatility.
		return 0, fmt.Errorf("amop: target price %v outside the attainable range [%v, %v] for volatility in [%v, %v]", target, pLo, pHi, lo, hi)
	}
	for iter := 0; iter < 100 && hi-lo > volTol; iter++ {
		mid := (lo + hi) / 2
		p, err := priceAt(mid)
		if err != nil {
			return 0, err
		}
		if p < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

const (
	// volBracketLo and volBracketHi bound every implied-vol search.
	volBracketLo = 1e-4
	volBracketHi = 5.0
	// volTol is the convergence tolerance on the volatility.
	volTol = 1e-8
	// vegaBump is the absolute volatility bump (in vol points, independent of
	// the quote's vol mark) shared by the Greeks' vega central difference and
	// the implied-vol solver's first slope estimate — the sharing is what
	// makes those repricings memo hits under the batch engine.
	vegaBump = 0.01
)

// impliedVolNewton is the fast implied-vol path: a Newton iteration seeded at
// the quote's volatility mark, with the first slope taken from the same
// central bump the Greeks use for vega and later slopes updated secant-style
// from points already priced. American prices increase strictly in
// volatility, so every evaluation also tightens a root bracket; steps that
// leave the bracket (or follow a non-positive slope estimate) are replaced by
// bisection of it. It reports ok=false — sending the caller to the fully
// validated bracket search — when the seed is unusable, a pricing fails (the
// lattice degenerates at low vols), the iteration budget runs out, or the
// iterate is pinned against a bracket bound, which is how an unattainable
// target manifests.
func impliedVolNewton(seed, target float64, priceAt func(float64) (float64, error)) (float64, bool) {
	if math.IsNaN(seed) || seed <= volBracketLo || seed >= volBracketHi {
		return 0, false
	}
	lo, hi := volBracketLo, volBracketHi
	note := func(v, p float64) {
		if p < target {
			if v > lo {
				lo = v
			}
		} else if v < hi {
			hi = v
		}
	}
	v := seed
	p0, err := priceAt(v)
	if err != nil {
		return 0, false
	}
	note(v, p0)
	up := v + vegaBump
	dn := math.Max(v-vegaBump, volBracketLo)
	pUp, err := priceAt(up)
	if err != nil {
		return 0, false
	}
	pDn, err := priceAt(dn)
	if err != nil {
		return 0, false
	}
	note(up, pUp)
	note(dn, pDn)
	slope := (pUp - pDn) / (up - dn)
	fv := p0 - target
	for iter := 0; iter < 48; iter++ {
		next := v
		if slope > 0 {
			next = v - fv/slope
		}
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2
		}
		if math.Abs(next-v) <= volTol || hi-lo <= volTol {
			if next <= volBracketLo+10*volTol || next >= volBracketHi-10*volTol {
				// Converged onto a bound: the target may be unattainable;
				// let the bracketed search validate (or reject) it.
				return 0, false
			}
			return next, true
		}
		pn, err := priceAt(next)
		if err != nil {
			return 0, false
		}
		note(next, pn)
		fn := pn - target
		if next != v {
			slope = (fn - fv) / (next - v)
		}
		v, fv = next, fn
	}
	return 0, false
}
