package amop

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func paperOption(t OptionType) Option {
	return Option{Type: t, S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1.0}
}

func randOption(rng *rand.Rand, t OptionType) Option {
	return Option{
		Type: t,
		S:    80 + 80*rng.Float64(),
		K:    80 + 80*rng.Float64(),
		R:    0.001 + 0.08*rng.Float64(),
		V:    0.1 + 0.4*rng.Float64(),
		Y:    0.005 + 0.08*rng.Float64(),
		E:    0.25 + 1.5*rng.Float64(),
	}
}

func TestPriceAllModelAlgorithmCombos(t *testing.T) {
	o := paperOption(Call)
	steps := 300

	// Binomial and trinomial: every algorithm must agree on calls.
	for _, m := range []Model{Binomial, Trinomial} {
		ref, err := Price(o, m, Config{Steps: steps, Algorithm: Naive})
		if err != nil {
			t.Fatalf("%v naive: %v", m, err)
		}
		for _, a := range []Algorithm{Fast, NaiveParallel, Tiled, Recursive} {
			v, err := Price(o, m, Config{Steps: steps, Algorithm: a})
			if err != nil {
				t.Fatalf("%v %v: %v", m, a, err)
			}
			if math.Abs(v-ref) > 1e-8*(1+ref) {
				t.Errorf("%v %v: %.12g vs naive %.12g", m, a, v, ref)
			}
		}
	}

	// BSM: put under fast / naive / naive-parallel.
	p := paperOption(Put)
	ref, err := Price(p, BlackScholesFD, Config{Steps: steps, Algorithm: Naive})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []Algorithm{Fast, NaiveParallel} {
		v, err := Price(p, BlackScholesFD, Config{Steps: steps, Algorithm: a})
		if err != nil {
			t.Fatalf("bsm %v: %v", a, err)
		}
		if math.Abs(v-ref) > 1e-8*(1+ref) {
			t.Errorf("bsm %v: %.12g vs naive %.12g", a, v, ref)
		}
	}
}

func TestPriceErrors(t *testing.T) {
	call, put := paperOption(Call), paperOption(Put)
	cases := map[string]func() (float64, error){
		"zero steps": func() (float64, error) { return Price(call, Binomial, Config{}) },
		"call under bsm": func() (float64, error) {
			return Price(call, BlackScholesFD, Config{Steps: 100})
		},
		"tiled under bsm": func() (float64, error) {
			return Price(put, BlackScholesFD, Config{Steps: 100, Algorithm: Tiled})
		},
		"unknown model": func() (float64, error) {
			return Price(call, Model(99), Config{Steps: 100})
		},
		"unknown algorithm": func() (float64, error) {
			return Price(call, Binomial, Config{Steps: 100, Algorithm: Algorithm(99)})
		},
		"invalid vol": func() (float64, error) {
			o := call
			o.V = -1
			return Price(o, Binomial, Config{Steps: 100})
		},
	}
	for name, fn := range cases {
		if _, err := fn(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestFastLatticePuts covers the experimental extension: fast American puts
// directly on the binomial and trinomial lattices.
func TestFastLatticePuts(t *testing.T) {
	put := paperOption(Put)
	for _, m := range []Model{Binomial, Trinomial} {
		fast, err := Price(put, m, Config{Steps: 400, Algorithm: Fast})
		if err != nil {
			t.Fatalf("%v fast put: %v", m, err)
		}
		naive, err := Price(put, m, Config{Steps: 400, Algorithm: Naive})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast-naive) > 1e-9*(1+naive) {
			t.Errorf("%v: fast put %.12g vs naive %.12g", m, fast, naive)
		}
	}
}

func TestPriceAmericanConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 6; trial++ {
		call := randOption(rng, Call)
		v, err := PriceAmerican(call, 500)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Price(call, Binomial, Config{Steps: 500, Algorithm: Naive})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-ref) > 1e-8*(1+ref) {
			t.Errorf("call trial %d: convenience %.12g vs naive %.12g", trial, v, ref)
		}

		put := randOption(rng, Put)
		vp, err := PriceAmerican(put, 500)
		if err != nil {
			t.Fatal(err)
		}
		refP, err := Price(put, BlackScholesFD, Config{Steps: 500, Algorithm: Naive})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vp-refP) > 1e-8*(1+refP) {
			t.Errorf("put trial %d: convenience %.12g vs naive %.12g", trial, vp, refP)
		}
	}
}

func TestBlackScholesParity(t *testing.T) {
	// Put-call parity for the European closed form:
	// C - P = S e^{-YE} - K e^{-RE}.
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		o := randOption(rng, Call)
		c, err := BlackScholes(o)
		if err != nil {
			t.Fatal(err)
		}
		o.Type = Put
		p, err := BlackScholes(o)
		if err != nil {
			t.Fatal(err)
		}
		want := o.S*math.Exp(-o.Y*o.E) - o.K*math.Exp(-o.R*o.E)
		if math.Abs(c-p-want) > 1e-9 {
			t.Errorf("trial %d: parity violated: C-P=%.12g want %.12g", trial, c-p, want)
		}
	}
}

func TestEuropeanLatticeApproachesClosedForm(t *testing.T) {
	o := paperOption(Call)
	bs, err := BlackScholes(o)
	if err != nil {
		t.Fatal(err)
	}
	v, err := PriceEuropean(o, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-bs) > 0.01 {
		t.Errorf("lattice European %.6f vs closed form %.6f", v, bs)
	}
}

func TestGreeksSanity(t *testing.T) {
	o := paperOption(Call)
	g, err := GreeksAmerican(o, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if g.Delta < 0 || g.Delta > 1 {
		t.Errorf("call delta %.4f outside [0,1]", g.Delta)
	}
	if g.Gamma < -1e-3 {
		t.Errorf("gamma %.6f negative", g.Gamma)
	}
	if g.Vega <= 0 {
		t.Errorf("vega %.4f not positive", g.Vega)
	}
	if g.Theta > 1e-6 {
		t.Errorf("theta %.6f positive for an ATM call", g.Theta)
	}

	p := paperOption(Put)
	gp, err := GreeksAmerican(p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Delta > 0 || gp.Delta < -1 {
		t.Errorf("put delta %.4f outside [-1,0]", gp.Delta)
	}
	if gp.Rho >= 0.1 {
		t.Errorf("put rho %.4f too positive", gp.Rho)
	}
}

// TestGreeksMatchBlackScholesEuropean: European lattice Greeks approach the
// closed-form Black-Scholes Greeks.
func TestGreeksMatchBlackScholesEuropean(t *testing.T) {
	o := Option{Type: Call, S: 100, K: 100, R: 0.03, V: 0.25, Y: 0.01, E: 1}
	g, err := GreeksEuropean(o, 4000)
	if err != nil {
		t.Fatal(err)
	}
	sqrtE := math.Sqrt(o.E)
	d1 := (math.Log(o.S/o.K) + (o.R-o.Y+0.5*o.V*o.V)*o.E) / (o.V * sqrtE)
	nd1 := 0.5 * math.Erfc(-d1/math.Sqrt2)
	wantDelta := math.Exp(-o.Y*o.E) * nd1
	if math.Abs(g.Delta-wantDelta) > 0.02 {
		t.Errorf("delta %.4f vs closed form %.4f", g.Delta, wantDelta)
	}
	pdf := math.Exp(-d1*d1/2) / math.Sqrt(2*math.Pi)
	wantVega := o.S * math.Exp(-o.Y*o.E) * pdf * sqrtE
	if math.Abs(g.Vega-wantVega) > 0.05*wantVega+0.5 {
		t.Errorf("vega %.4f vs closed form %.4f", g.Vega, wantVega)
	}
}

func TestImpliedVolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 5; trial++ {
		o := randOption(rng, Call)
		o.V = 0.15 + 0.3*rng.Float64()
		price, err := PriceAmerican(o, 600)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := ImpliedVol(o, 600, price)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(iv-o.V) > 1e-4 {
			t.Errorf("trial %d: implied vol %.6f, true %.6f", trial, iv, o.V)
		}
	}
}

func TestImpliedVolErrors(t *testing.T) {
	o := paperOption(Call)
	if _, err := ImpliedVol(o, 200, -1); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := ImpliedVol(o, 200, o.S*100); err == nil {
		t.Error("unattainable target accepted")
	}
}

func TestBermudan(t *testing.T) {
	o := paperOption(Call)
	steps := 512

	american, err := Price(o, Binomial, Config{Steps: steps, Algorithm: Naive})
	if err != nil {
		t.Fatal(err)
	}
	european, err := PriceEuropean(o, steps)
	if err != nil {
		t.Fatal(err)
	}

	// every=1 is exactly American.
	b1, err := PriceBermudan(o, steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1-american) > 1e-7*(1+american) {
		t.Errorf("Bermudan(1) %.12g != American %.12g", b1, american)
	}

	// Value decreases as exercise dates thin out, staying >= European.
	prev := b1
	for _, every := range []int{2, 4, 8, 32, 128} {
		b, err := PriceBermudan(o, steps, every)
		if err != nil {
			t.Fatal(err)
		}
		if b > prev+1e-9 {
			t.Errorf("Bermudan(%d) %.12g exceeds denser schedule %.12g", every, b, prev)
		}
		if b < european-1e-7 {
			t.Errorf("Bermudan(%d) %.12g below European %.12g", every, b, european)
		}
		prev = b
	}

	// Puts work too (no boundary structure needed).
	p := paperOption(Put)
	bp, err := PriceBermudan(p, steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	amPut, err := Price(p, Binomial, Config{Steps: steps, Algorithm: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bp-amPut) > 1e-7*(1+amPut) {
		t.Errorf("Bermudan put(1) %.12g != American put %.12g", bp, amPut)
	}

	if _, err := PriceBermudan(o, steps, 0); err == nil {
		t.Error("every=0 accepted")
	}
}

func TestStringers(t *testing.T) {
	for val, want := range map[string]string{
		Call.String():           "call",
		Put.String():            "put",
		Binomial.String():       "bopm",
		Trinomial.String():      "topm",
		BlackScholesFD.String(): "bsm",
		Fast.String():           "fast",
		Tiled.String():          "tiled",
	} {
		if val != want {
			t.Errorf("stringer: got %q want %q", val, want)
		}
	}
	if !strings.Contains(Model(42).String(), "42") {
		t.Error("unknown model stringer")
	}
}
