package amop

import (
	"sync"
	"testing"
)

// TestSweepRacesServerTicks drives ScenarioSweep concurrently with a live
// pricing server's tick/quote loop. Both paths reprice through the same
// process-wide machinery — the kernel-spectrum cache, the scratch pools,
// the spawn budget, the perf counters — so under -race this test reaches
// the cross-subsystem interleavings that no single-engine test covers.
// Sizes are deliberately small: the value is the interleaving, not the
// arithmetic.
func TestSweepRacesServerTicks(t *testing.T) {
	const steps = 96
	srv, err := NewServer(serveTestBook(steps), ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := Market{Spot: 127.62, Vol: 0.21, Rate: 0.00163}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Alternate direction so the market keeps crossing bucket
			// boundaries: every other tick marks the symbol dirty and the
			// quote below triggers a repricing flight.
			if i%2 == 0 {
				m.Spot += 0.3
			} else {
				m.Spot -= 0.3
			}
			if _, err := srv.Tick("AAA", m); err != nil {
				t.Errorf("tick %d: %v", i, err)
				return
			}
			if _, err := srv.Quote(0); err != nil {
				t.Errorf("quote after tick %d: %v", i, err)
				return
			}
		}
	}()

	reqs := sweepBook(steps)
	scenarios := []Scenario{{}, {Spot: 0.01}, {Vol: 0.02}, {Rate: 0.001}}
	for round := 0; round < 3; round++ {
		sw := ScenarioSweep(reqs, scenarios, SweepOptions{ScenarioSteps: steps / 2})
		for c := range reqs {
			if err := sw.Base[c].Err; err != nil {
				t.Errorf("round %d: base %d: %v", round, c, err)
			}
			for s := range scenarios {
				if err := sw.At(c, s).Err; err != nil {
					t.Errorf("round %d: cell (%d,%d): %v", round, c, s, err)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
