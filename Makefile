GO ?= go

# RACE_PKGS is the CI race job's package list. Everything: the hand-picked
# fast-path list it used to be kept missing new packages by default, and the
# detector's cost on the non-concurrent remainder is noise. Keep in sync
# with .github/workflows/ci.yml.
RACE_PKGS = ./...

.PHONY: ci fmt vet build test race smoke chaos bench fuzz-smoke xval obs-smoke

# ci is the tier-1 gate: formatting, vet, build, tests.
ci: fmt vet build test

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

# vet runs the standard vet suite, then the project's own analyzers
# (cmd/amop-vet: budgetpair, scratchpair, atomiccounter, nakedgo,
# lockedsolve). Both must be clean.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/amop-vet ./...

# fuzz-smoke gives every fuzz target a short fixed budget — enough to shake
# out parser/merge regressions on every CI run without turning the job into
# a fuzzing campaign.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseContractRow -fuzztime=10s ./internal/cliutil/
	$(GO) test -run='^$$' -fuzz=FuzzTickMerge -fuzztime=10s ./cmd/amop-serve/
	$(GO) test -run='^$$' -fuzz=FuzzForwardInverseRoundTrip -fuzztime=10s ./internal/fft/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race matches the CI race job exactly, so a clean local run means a clean
# CI run.
race:
	$(GO) test -race $(RACE_PKGS)

# smoke mirrors the CI bench-smoke job (minus govulncheck, which downloads
# its tool): every benchmark runs one iteration, then the in-process
# regression gates time the radix-4 kernel against radix-2, the SoA
# split-plane kernel against the complex kernel it replaced as default, the
# scenario sweep against the naive fan-out, the live pricing server's serve
# path (tick skips, request coalescing, cache-serve latency vs cold
# pricing), the analytic tier against the lattice on an in-envelope
# vanilla chain (>= 10x required), and the telemetry layer's overhead on
# the cached-quote path (0 allocs, <5% p50).
smoke: vet
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	AMOP_BENCH_SMOKE=1 $(GO) test -run TestRadix4NotSlowerSmoke -v ./internal/fft/
	AMOP_BENCH_SMOKE=1 $(GO) test -run TestSoANotSlowerSmoke -v ./internal/fft/
	AMOP_BENCH_SMOKE=1 $(GO) test -run TestScenarioSweepNotSlowerSmoke -v .
	AMOP_BENCH_SMOKE=1 $(GO) test -run TestServeLoadSmoke -v .
	AMOP_BENCH_SMOKE=1 $(GO) test -run TestAnalyticNotSlowerSmoke -v .
	AMOP_BENCH_SMOKE=1 $(GO) test -run TestObsOverheadSmoke -v .

# obs-smoke gates the telemetry layer's price of admission: the cached-quote
# fast path must stay at 0 allocs/op with telemetry on and within 5% p50 of
# telemetry off, the project analyzers must pass over internal/obs (its
# counters are all atomics), and the obs-overhead harness experiment records
# the measured numbers to BENCH_obs.json.
obs-smoke:
	$(GO) run ./cmd/amop-vet ./internal/obs/
	AMOP_BENCH_SMOKE=1 $(GO) test -run TestObsOverheadSmoke -v .
	$(GO) test -race -count=1 ./internal/obs/
	$(GO) run ./cmd/amop-bench -experiment obs-overhead -json BENCH_obs.json

# xval mirrors the CI xval job: the pinned-seed cross-validation soak of the
# fast lattice pricers against their quadratic baselines and the analytic
# tier against the Richardson-extrapolated lattice, streaming NDJSON
# worst-offender lines to xval-report.ndjson.
xval:
	$(GO) run ./cmd/amop-xval -trials 100 -maxT 1500 -seed 7 -tol 1e-9 \
		-analytic-trials 30 -analytic-tol 1e-6 -budget 0 \
		-report xval-report.ndjson

# chaos mirrors the CI chaos-smoke job: the fault-injected robustness tests
# (breaker lifecycle, quarantine, canceled flights) under the race detector,
# the gated chaos replay smoke test, and the serve-chaos harness experiment
# (availability + degraded-mode accounting under injected solver panics and
# slowdowns, recorded to BENCH_chaos.json).
chaos:
	$(GO) test -race -count=1 -run 'TestServerBreakerLifecycle|TestServerQuarantineAndRecovery|TestServerQuoteCtxCanceledMidFlight|TestPriceBatchPanicIsolationRestoresBudget|TestScenarioSweepCtxCancelMidRun' .
	AMOP_BENCH_SMOKE=1 $(GO) test -race -count=1 -run TestServeChaosSmoke -v .
	$(GO) run ./cmd/amop-bench -experiment serve-chaos -maxT 1024 -json BENCH_chaos.json

# bench regenerates the quick cross-section of every experiment and records
# the machine-readable perf trajectory (BENCH_all.json).
bench:
	$(GO) run ./cmd/amop-bench -experiment all
