GO ?= go

.PHONY: ci fmt vet build test race bench

# ci is the tier-1 gate: formatting, vet, build, tests.
ci: fmt vet build test

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the quick cross-section of every experiment and records
# the machine-readable perf trajectory (BENCH_all.json).
bench:
	$(GO) run ./cmd/amop-bench -experiment all
