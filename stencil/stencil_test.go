package stencil

import (
	"math"
	"math/rand"
	"testing"
)

// heatObstacle builds an obstacle problem with the monotone free-boundary
// structure: an explicit heat-equation step with decay, floored by the
// stationary obstacle 1 - e^(x). This is the dimensionless form of the
// American-put variational inequality, framed as a generic PDE obstacle
// problem.
func heatObstacle(T int, shift, decay float64) *ObstacleLeft {
	lam := 1.0 / 3
	dtau := 1e-4
	ds := math.Sqrt(dtau / lam)
	a := lam - dtau/(2*ds)
	b := lam + dtau/(2*ds)
	c := 1 - decay*dtau - 2*lam
	x := func(col int) float64 { return shift + float64(col-T)*ds }
	bnd0 := T
	for bnd0 < 2*T && x(bnd0+1) <= 0 {
		bnd0++
	}
	for bnd0 >= 0 && x(bnd0) > 0 {
		bnd0--
	}
	return &ObstacleLeft{
		Stencil:  Linear{MinOffset: -1, Weights: []float64{b, c, a}},
		Steps:    T,
		Lo0:      0,
		Hi0:      2 * T,
		Init:     func(col int) float64 { return math.Max(1-math.Exp(x(col)), 0) },
		Obstacle: func(depth, col int) float64 { return 1 - math.Exp(x(col)) },
		Bnd0:     bnd0,
	}
}

func TestLinearEvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := Linear{MinOffset: -1, Weights: []float64{0.3, 0.35, 0.3}}
	row := make([]float64, 300)
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	vals, first, err := s.Evolve(row, 50)
	if err != nil {
		t.Fatal(err)
	}
	if first != 50 {
		t.Errorf("firstPos = %d, want 50", first)
	}
	// One manual direct evolution for comparison.
	cur := append([]float64(nil), row...)
	for step := 0; step < 50; step++ {
		next := make([]float64, len(cur)-2)
		for j := range next {
			next[j] = 0.3*cur[j] + 0.35*cur[j+1] + 0.3*cur[j+2]
		}
		cur = next
	}
	for i := range vals {
		if math.Abs(vals[i]-cur[i]) > 1e-9 {
			t.Fatalf("mismatch at %d: %g vs %g", i, vals[i], cur[i])
		}
	}
}

func TestLinearEvolveErrors(t *testing.T) {
	s := Linear{MinOffset: 0, Weights: []float64{0.5, 0.5}}
	if _, _, err := s.Evolve(make([]float64, 4), -1); err == nil {
		t.Error("negative steps accepted")
	}
	if _, _, err := s.Evolve(make([]float64, 4), 4); err == nil {
		t.Error("empty cone accepted")
	}
	if _, _, err := (Linear{}).Evolve(make([]float64, 4), 1); err == nil {
		t.Error("empty stencil accepted")
	}
	if _, err := s.EvolvePeriodic(make([]float64, 5), 1); err == nil {
		t.Error("non-power-of-two ring accepted")
	}
}

func TestPeriodicConservation(t *testing.T) {
	s := Linear{MinOffset: -1, Weights: []float64{0.25, 0.5, 0.25}}
	row := make([]float64, 64)
	rng := rand.New(rand.NewSource(62))
	sum := 0.0
	for i := range row {
		row[i] = rng.Float64()
		sum += row[i]
	}
	out, err := s.EvolvePeriodic(row, 100)
	if err != nil {
		t.Fatal(err)
	}
	got := 0.0
	for _, v := range out {
		got += v
	}
	if math.Abs(got-sum) > 1e-9*sum {
		t.Errorf("mass not conserved: %g -> %g", sum, got)
	}
}

func TestObstacleLeftFastMatchesNaive(t *testing.T) {
	for _, shift := range []float64{-0.4, 0, 0.3} {
		for _, decay := range []float64{0.05, 1.0} {
			p := heatObstacle(400, shift, decay)
			fast, err := p.Solve(nil)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := p.SolveNaive()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fast-naive) > 1e-10 {
				t.Errorf("shift=%v decay=%v: fast %.12g naive %.12g", shift, decay, fast, naive)
			}
		}
	}
}

func TestObstacleLeftBoundaryTrace(t *testing.T) {
	p := heatObstacle(300, 0.1, 0.5)
	if _, err := p.BoundaryTrace(); err != nil {
		t.Errorf("structure violated: %v", err)
	}
}

func TestObstacleRight(t *testing.T) {
	// A binomial-call-like instance expressed through the public API.
	T := 300
	u := math.Exp(0.2 * math.Sqrt(1.0/float64(T)))
	d := 1 / u
	q := (math.Exp((0.02-0.04)/float64(T)) - d) / (u - d)
	disc := math.Exp(-0.02 / float64(T))
	green := func(depth, col int) float64 {
		return 100*math.Pow(u, float64(2*col-T+depth)) - 100
	}
	bnd0 := T / 2
	for bnd0 < T && green(0, bnd0+1) <= 0 {
		bnd0++
	}
	for bnd0 >= 0 && green(0, bnd0) > 0 {
		bnd0--
	}
	p := &ObstacleRight{
		Stencil:  Linear{MinOffset: 0, Weights: []float64{disc * (1 - q), disc * q}},
		Steps:    T,
		Hi0:      T,
		Init:     func(col int) float64 { return math.Max(0, green(0, col)) },
		Obstacle: green,
		Bnd0:     bnd0,
	}
	fast, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := p.SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-naive) > 1e-9 {
		t.Errorf("fast %.12g naive %.12g", fast, naive)
	}
	if _, err := p.BoundaryTrace(); err != nil {
		t.Errorf("structure violated: %v", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	p := heatObstacle(2000, 0, 0.5)
	var st Stats
	if _, err := p.Solve(&st); err != nil {
		t.Fatal(err)
	}
	if st.FFTCalls.Load() == 0 {
		t.Error("no FFT calls recorded on a large instance")
	}
	if st.NaiveCells.Load() == 0 {
		t.Error("no naive cells recorded")
	}
}

// TestObstacleLeftOneSided exercises the put-like one-sided engine through
// the public API.
func TestObstacleLeftOneSided(t *testing.T) {
	T := 300
	u := math.Exp(0.25 * math.Sqrt(1.0/float64(T)))
	d := 1 / u
	q := (math.Exp(0.02/float64(T)) - d) / (u - d)
	disc := math.Exp(-0.02 / float64(T))
	obstacle := func(depth, col int) float64 {
		return 105 - 100*math.Pow(u, float64(2*col-T+depth))
	}
	bnd0 := -1
	for j := 0; j <= T; j++ {
		if obstacle(0, j) > 0 {
			bnd0 = j
		}
	}
	p := &ObstacleLeftOneSided{
		Stencil:  Linear{MinOffset: 0, Weights: []float64{disc * (1 - q), disc * q}},
		Steps:    T,
		Hi0:      T,
		Init:     func(col int) float64 { return math.Max(0, obstacle(0, col)) },
		Obstacle: obstacle,
		Bnd0:     bnd0,
	}
	if _, err := p.BoundaryTrace(); err != nil {
		t.Fatalf("structure: %v", err)
	}
	fast, err := p.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := p.SolveNaive()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-naive) > 1e-9 {
		t.Errorf("fast %.12g naive %.12g", fast, naive)
	}
}
