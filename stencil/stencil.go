// Package stencil exposes the generic 1D stencil machinery underlying the
// option pricers, for stencil computations beyond quantitative finance
// (the paper's closing point: nonlinear free-boundary stencils appear in
// obstacle problems, phase-change fronts, and variational inequalities
// generally).
//
// Two layers are provided:
//
//   - Linear stencils: evolve a row k steps at once via the FFT in
//     O(N (log N + log k)) instead of O(N k) (Ahmad et al., SPAA 2021).
//   - Free-boundary ("obstacle") nonlinear stencils: updates of the form
//     max(linear combination, closed-form obstacle), solved in O(T log^2 T)
//     work when the red/green boundary is monotone — the PPoPP 2024 paper's
//     core contribution.
package stencil

import (
	"fmt"

	"github.com/nlstencil/amop/internal/fbstencil"
	"github.com/nlstencil/amop/internal/linstencil"
)

// Linear is a linear 1D stencil: one step computes
// next[j] = sum_i Weights[i] * cur[j + MinOffset + i].
type Linear struct {
	MinOffset int
	Weights   []float64
}

func (s Linear) internal() linstencil.Stencil {
	return linstencil.Stencil{MinOff: s.MinOffset, W: s.Weights}
}

// Validate reports whether the stencil is well formed.
func (s Linear) Validate() error { return s.internal().Validate() }

// Evolve advances row by steps applications of the stencil and returns the
// positions whose dependency cone lies entirely inside the input: vals[i] is
// the value at position firstPos+i of the original indexing.
func (s Linear) Evolve(row []float64, steps int) (vals []float64, firstPos int, err error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	if steps < 0 {
		return nil, 0, fmt.Errorf("stencil: negative step count %d", steps)
	}
	if len(row)-steps*s.internal().Span() <= 0 {
		return nil, 0, fmt.Errorf("stencil: no position is computable from %d cells after %d steps of a span-%d stencil", len(row), steps, s.internal().Span())
	}
	vals, firstPos = linstencil.EvolveCone(row, s.internal(), steps)
	return vals, firstPos, nil
}

// EvolvePeriodic advances a ring of power-of-two size by steps applications
// of the stencil.
func (s Linear) EvolvePeriodic(row []float64, steps int) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if steps < 0 {
		return nil, fmt.Errorf("stencil: negative step count %d", steps)
	}
	if n := len(row); n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("stencil: periodic evolution requires power-of-two length, got %d", len(row))
	}
	return linstencil.EvolvePeriodic(row, s.internal(), steps), nil
}

// Obstacle is the closed-form lower bound ("green" value) of cell
// (depth, col) in a free-boundary problem.
type Obstacle func(depth, col int) float64

// Stats aliases the engine's work counters.
type Stats = fbstencil.Stats

// ObstacleRight describes a free-boundary problem whose stencil has offsets
// 0..r and whose obstacle-active region lies to the right of the linear
// region in every row, with a boundary that moves left by at most one column
// per step between interior rows (the structure of American calls under
// binomial/trinomial trees; Corollaries 2.7 and A.6 of the paper).
//
// Depth 0 holds the initial row on columns [0, Hi0]; at depth d the valid
// columns are [0, Hi0-d*r]; Solve returns the apex value (T, 0).
type ObstacleRight struct {
	Stencil  Linear
	Steps    int
	Hi0      int
	Init     func(col int) float64
	Obstacle Obstacle
	// Bnd0 is the largest column of the initial row where the obstacle is
	// NOT strictly dominant (-1 if none); columns right of it must satisfy
	// Init(col) == Obstacle(0, col).
	Bnd0 int
	// BaseCase overrides the recursion cutoff (0 = default).
	BaseCase int
}

// Solve runs the fast O(T log^2 T) solver. The monotone-boundary structure
// is assumed, not checked; use SolveNaive to cross-validate on new problem
// classes.
func (p *ObstacleRight) Solve(st *Stats) (float64, error) {
	v, _, err := fbstencil.SolveGreenRight(p.problem(), st)
	return v, err
}

// SolveNaive computes the same value by the direct O(T^2) sweep with no
// structural assumptions.
func (p *ObstacleRight) SolveNaive() (float64, error) {
	return fbstencil.SolveGreenRightNaive(p.problem())
}

// BoundaryTrace solves naively while verifying the red/green structure the
// fast solver depends on, returning the boundary column per depth. An error
// identifies the first violated invariant.
func (p *ObstacleRight) BoundaryTrace() ([]int, error) {
	return fbstencil.GreenRightBoundaryTrace(p.problem())
}

func (p *ObstacleRight) problem() *fbstencil.GreenRight {
	return &fbstencil.GreenRight{
		Stencil:  p.Stencil.internal(),
		T:        p.Steps,
		Hi0:      p.Hi0,
		Init:     p.Init,
		Green:    fbstencil.GreenFunc(p.Obstacle),
		Bnd0:     p.Bnd0,
		BaseCase: p.BaseCase,
	}
}

// ObstacleLeft describes a free-boundary problem with a centered 3-point
// stencil (offsets -1..1) whose obstacle-active region lies to the left,
// with a boundary that moves left by at most one column per step between
// interior rows (the structure of American puts under the explicit
// Black-Scholes scheme; Theorem 4.3 of the paper). Cells in the active
// region must equal the obstacle exactly.
//
// Depth 0 holds the initial row on columns [Lo0, Hi0] with Hi0-Lo0 = 2*Steps;
// Solve returns the apex value (Steps, Lo0+Steps).
type ObstacleLeft struct {
	Stencil  Linear
	Steps    int
	Lo0, Hi0 int
	Init     func(col int) float64
	Obstacle Obstacle
	// Bnd0 is the largest initial-row column where the obstacle strictly
	// dominates (Lo0-1 if none).
	Bnd0     int
	BaseCase int
}

// Solve runs the fast O(T log^2 T) solver.
func (p *ObstacleLeft) Solve(st *Stats) (float64, error) {
	v, _, err := fbstencil.SolveGreenLeft(p.problem(), st)
	return v, err
}

// SolveNaive computes the same value by the direct O(T^2) sweep.
func (p *ObstacleLeft) SolveNaive() (float64, error) {
	return fbstencil.SolveGreenLeftNaive(p.problem())
}

// BoundaryTrace verifies the free-boundary structure on this instance.
func (p *ObstacleLeft) BoundaryTrace() ([]int, error) {
	return fbstencil.GreenLeftBoundaryTrace(p.problem())
}

func (p *ObstacleLeft) problem() *fbstencil.GreenLeft {
	return &fbstencil.GreenLeft{
		Stencil:  p.Stencil.internal(),
		T:        p.Steps,
		Lo0:      p.Lo0,
		Hi0:      p.Hi0,
		Init:     p.Init,
		Green:    fbstencil.GreenFunc(p.Obstacle),
		Bnd0:     p.Bnd0,
		BaseCase: p.BaseCase,
	}
}

// ObstacleLeftOneSided describes a free-boundary problem with stencil
// offsets 0..r and the obstacle-active region on the LEFT — the structure of
// American puts on binomial/trinomial lattices (this library's extension
// beyond the paper; the boundary structure is validated empirically, not
// proven — run BoundaryTrace on new problem classes).
//
// Geometry matches ObstacleRight (columns [0, Hi0-d*r] at depth d; Solve
// returns the apex (Steps, 0)). Obstacle-active cells must equal Obstacle
// exactly. MaxDrop bounds how far the boundary may move left per interior
// step (0 means 1; trinomial-like grids need 2).
type ObstacleLeftOneSided struct {
	Stencil  Linear
	Steps    int
	Hi0      int
	Init     func(col int) float64
	Obstacle Obstacle
	// Bnd0 is the largest initial-row column where the obstacle strictly
	// dominates (-1 if none).
	Bnd0     int
	BaseCase int
	MaxDrop  int
}

// Solve runs the fast O(T log^2 T) solver.
func (p *ObstacleLeftOneSided) Solve(st *Stats) (float64, error) {
	v, _, err := fbstencil.SolveGreenLeftOneSided(p.problem(), st)
	return v, err
}

// SolveNaive computes the same value by the direct O(T^2) sweep.
func (p *ObstacleLeftOneSided) SolveNaive() (float64, error) {
	return fbstencil.SolveGreenLeftOneSidedNaive(p.problem())
}

// BoundaryTrace verifies the free-boundary structure (contiguity, no right
// moves, drops bounded by MaxDrop) on this instance.
func (p *ObstacleLeftOneSided) BoundaryTrace() ([]int, error) {
	return fbstencil.GreenLeftOneSidedBoundaryTrace(p.problem())
}

func (p *ObstacleLeftOneSided) problem() *fbstencil.GreenLeftOneSided {
	return &fbstencil.GreenLeftOneSided{
		Stencil:  p.Stencil.internal(),
		T:        p.Steps,
		Hi0:      p.Hi0,
		Init:     p.Init,
		Green:    fbstencil.GreenFunc(p.Obstacle),
		Bnd0:     p.Bnd0,
		BaseCase: p.BaseCase,
		MaxDrop:  p.MaxDrop,
	}
}
