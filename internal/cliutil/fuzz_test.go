package cliutil_test

import (
	"encoding/json"
	"testing"

	"github.com/nlstencil/amop/internal/cliutil"
)

// FuzzParseContractRow drives the shared CLI contract-row surface with
// arbitrary input: a JSON row through the Contract -> Request translation,
// and one CSV cell through Set. The row format faces user-authored book
// files and command lines, so the bar is: never panic, never return a
// half-translated request — a row either becomes a request with a usable
// resolution or fails with a diagnostic.
func FuzzParseContractRow(f *testing.F) {
	f.Add([]byte(`{"type":"call","S":127.62,"K":130,"R":0.00163,"V":0.21,"E":1,"steps":512}`), "K", "105")
	f.Add([]byte(`{"symbol":"AAA","type":"put","model":"bsm","algorithm":"tiled","european":true}`), "vol", "0.33")
	f.Add([]byte(`{"type":"x"}`), "steps", "-3")
	f.Add([]byte(`[]`), "unknown", "1")
	f.Add([]byte(`{"steps":1e9}`), "european", "maybe")
	f.Fuzz(func(t *testing.T, row []byte, col, val string) {
		var c cliutil.Contract
		if err := json.Unmarshal(row, &c); err == nil {
			req, err := c.Request(1000)
			if err == nil && req.Config.Steps == 0 {
				t.Errorf("Request accepted row %s but produced zero steps", row)
			}
		}

		var cell cliutil.Contract
		if err := cell.Set(col, val); err == nil {
			// Whatever the setter accepted must flow through translation
			// without panicking; rejection with a diagnostic is fine.
			if req, err := cell.Request(1000); err == nil && req.Config.Steps == 0 {
				t.Errorf("Set(%q, %q) then Request produced zero steps", col, val)
			}
		}
	})
}
