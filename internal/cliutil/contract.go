// Package cliutil holds the contract-row format shared by the amop
// command-line tools (amop-chain, amop-sweep, amop-serve): one JSON or CSV
// row describing a contract, and its translation into an engine request.
// Keeping the type/model/algorithm spellings in one place means every CLI
// accepts exactly the same rows.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/nlstencil/amop"
)

// Contract is one row of a CLI input file. Symbol is only meaningful to the
// tools that address contracts by underlying (amop-serve); the others
// ignore it.
type Contract struct {
	Symbol    string  `json:"symbol,omitempty"`
	Type      string  `json:"type"`
	S         float64 `json:"S"`
	K         float64 `json:"K"`
	R         float64 `json:"R"`
	V         float64 `json:"V"`
	Y         float64 `json:"Y"`
	E         float64 `json:"E"`
	Steps     int     `json:"steps"`
	Model     string  `json:"model"`
	Algorithm string  `json:"algorithm"`
	European  bool    `json:"european"`
}

// Request translates the row into an engine request; defaultSteps applies
// when the row does not set steps.
func (c Contract) Request(defaultSteps int) (amop.Request, error) {
	req := amop.Request{
		Option: amop.Option{S: c.S, K: c.K, R: c.R, V: c.V, Y: c.Y, E: c.E},
		Config: amop.Config{Steps: c.Steps, European: c.European},
	}
	switch strings.ToLower(c.Type) {
	case "call", "c", "":
		req.Option.Type = amop.Call
	case "put", "p":
		req.Option.Type = amop.Put
	default:
		return req, fmt.Errorf("unknown option type %q", c.Type)
	}
	if req.Config.Steps == 0 {
		req.Config.Steps = defaultSteps
	}
	switch strings.ToLower(c.Model) {
	case "", "auto":
		req.Model = amop.AutoModel
	case "bopm", "binomial":
		req.Model = amop.Binomial
	case "topm", "trinomial":
		req.Model = amop.Trinomial
	case "bsm", "blackscholesfd":
		req.Model = amop.BlackScholesFD
	default:
		return req, fmt.Errorf("unknown model %q", c.Model)
	}
	switch strings.ToLower(c.Algorithm) {
	case "", "fast":
		req.Config.Algorithm = amop.Fast
	case "naive":
		req.Config.Algorithm = amop.Naive
	case "naive-parallel":
		req.Config.Algorithm = amop.NaiveParallel
	case "tiled":
		req.Config.Algorithm = amop.Tiled
	case "recursive":
		req.Config.Algorithm = amop.Recursive
	case "analytic":
		req.Config.Algorithm = amop.Analytic
	default:
		return req, fmt.Errorf("unknown algorithm %q", c.Algorithm)
	}
	return req, nil
}

// ParseTier maps the CLI tier-flag spellings onto amop.TierMode, so every
// tool that grows a -tier flag accepts exactly the same values.
func ParseTier(s string) (amop.TierMode, error) {
	switch strings.ToLower(s) {
	case "", "lattice":
		return amop.TierLattice, nil
	case "auto":
		return amop.TierAuto, nil
	case "analytic":
		return amop.TierAnalytic, nil
	}
	return amop.TierLattice, fmt.Errorf("unknown tier %q (want lattice, auto or analytic)", s)
}

// Set assigns one field by CSV header name.
func (c *Contract) Set(col, val string) error {
	num := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("column %s: %w", col, err)
		}
		*dst = v
		return nil
	}
	switch col {
	case "symbol":
		c.Symbol = val
	case "type":
		c.Type = val
	case "S", "spot":
		return num(&c.S)
	case "K", "strike":
		return num(&c.K)
	case "R", "rate":
		return num(&c.R)
	case "V", "vol", "volatility":
		return num(&c.V)
	case "Y", "yield", "dividend":
		return num(&c.Y)
	case "E", "expiry":
		return num(&c.E)
	case "steps":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("column steps: %w", err)
		}
		c.Steps = v
	case "model":
		c.Model = val
	case "algorithm":
		c.Algorithm = val
	case "european":
		v, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("column european: %w", err)
		}
		c.European = v
	default:
		return fmt.Errorf("unknown column %q", col)
	}
	return nil
}
