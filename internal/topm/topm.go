// Package topm implements American and European option pricing under the
// trinomial option pricing model of Boyle (Section 3 and Appendix A of the
// paper). The trinomial tree of T steps embeds in a (T+1) x (2T+1) grid: the
// children of (depth, col) at the previous depth are col (down move, factor
// d), col+1 (no move) and col+2 (up move, factor u), with u = e^(V*sqrt(2*dt)).
// The asset price at (depth, col) is S * u^(col - T + depth).
//
// The paper's main text and appendix disagree on the weight labels (s0=m*p_u
// vs the value formula putting p_d on the down child); we use the
// martingale-consistent assignment s0=m*p_d, s1=m*p_o, s2=m*p_u, under which
// sum_k s_k u^(k-1) = e^(-Y*dt) as Lemma A.1's algebra requires.
package topm

import (
	"fmt"
	"math"

	"github.com/nlstencil/amop/internal/fbstencil"
	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/sweep"
)

// MaxSteps bounds T so extreme node prices stay finite in float64.
const MaxSteps = 1 << 21

// Model holds the precomputed per-step quantities of a trinomial tree.
type Model struct {
	Prm        option.Params
	T          int
	Dt         float64
	U          float64 // up factor e^(V*sqrt(2*dt))
	Pu, Po, Pd float64 // up / stay / down probabilities
	Disc       float64
	S0, S1, S2 float64 // weights on children col, col+1, col+2
	logU       float64
	baseC      int
}

// New validates the parameters and precomputes the tree quantities.
func New(p option.Params, steps int) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if steps < 1 {
		return nil, fmt.Errorf("topm: steps = %d must be >= 1", steps)
	}
	if steps > MaxSteps {
		return nil, fmt.Errorf("topm: steps = %d exceeds the supported maximum %d", steps, MaxSteps)
	}
	dt := p.E / float64(steps)
	sqU := math.Exp(p.V * math.Sqrt(dt/2)) // sqrt(u)
	sqD := 1 / sqU
	eh := math.Exp((p.R - p.Y) * dt / 2)
	pu := (eh - sqD) / (sqU - sqD)
	pu *= pu
	pd := (sqU - eh) / (sqU - sqD)
	pd *= pd
	po := 1 - pu - pd
	if pu <= 0 || pd <= 0 || po <= 0 {
		return nil, fmt.Errorf("topm: degenerate transition probabilities (pu=%v, po=%v, pd=%v); increase steps or volatility", pu, po, pd)
	}
	disc := math.Exp(-p.R * dt)
	return &Model{
		Prm: p, T: steps, Dt: dt, U: sqU * sqU,
		Pu: pu, Po: po, Pd: pd, Disc: disc,
		S0: disc * pd, S1: disc * po, S2: disc * pu,
		logU: 2 * math.Log(sqU),
	}, nil
}

// SetBaseCase overrides the fast solver's recursion cutoff (ablations).
func (m *Model) SetBaseCase(h int) { m.baseC = h }

// Asset returns the underlying price at cell (depth, col).
func (m *Model) Asset(depth, col int) float64 {
	return m.Prm.S * math.Exp(float64(col-m.T+depth)*m.logU)
}

// Exercise returns the (unclipped) immediate-exercise value at (depth, col).
func (m *Model) Exercise(kind option.Kind, depth, col int) float64 {
	if kind == option.Call {
		return m.Asset(depth, col) - m.Prm.K
	}
	return m.Prm.K - m.Asset(depth, col)
}

// Stencil returns the one-step linear continuation stencil.
func (m *Model) Stencil() linstencil.Stencil {
	return linstencil.Stencil{MinOff: 0, W: []float64{m.S0, m.S1, m.S2}}
}

// leafBoundary returns the largest leaf column with call exercise <= 0.
func (m *Model) leafBoundary() int {
	guess := int(math.Floor(float64(m.T) + math.Log(m.Prm.K/m.Prm.S)/m.logU))
	if guess > 2*m.T {
		guess = 2 * m.T
	}
	if guess < -1 {
		guess = -1
	}
	for guess < 2*m.T && m.Exercise(option.Call, 0, guess+1) <= 0 {
		guess++
	}
	for guess >= 0 && m.Exercise(option.Call, 0, guess) > 0 {
		guess--
	}
	return guess
}

// PriceFast prices the American call with the paper's FFT-based algorithm
// ("fft-topm"): O(T log^2 T) work, O(T) span.
func (m *Model) PriceFast() (float64, error) {
	return m.PriceFastStats(nil)
}

// PriceFastStats is PriceFast with work-counter collection.
func (m *Model) PriceFastStats(st *fbstencil.Stats) (float64, error) {
	return m.priceFast(st, nil)
}

// PriceFastCancel is PriceFast with a cancellation hook, polled at trapezoid
// granularity.
func (m *Model) PriceFastCancel(cancel func() error) (float64, error) {
	return m.priceFast(nil, cancel)
}

func (m *Model) priceFast(st *fbstencil.Stats, cancel func() error) (float64, error) {
	prob := &fbstencil.GreenRight{
		Stencil:  m.Stencil(),
		T:        m.T,
		Hi0:      2 * m.T,
		Init:     func(col int) float64 { return math.Max(0, m.Exercise(option.Call, 0, col)) },
		Green:    func(depth, col int) float64 { return m.Exercise(option.Call, depth, col) },
		Bnd0:     m.leafBoundary(),
		BaseCase: m.baseC,
		Cancel:   cancel,
	}
	v, _, err := fbstencil.SolveGreenRight(prob, st)
	return v, err
}

func (m *Model) sweepProblem(kind option.Kind, american bool) *sweep.Problem {
	p := &sweep.Problem{
		W:    []float64{m.S0, m.S1, m.S2},
		T:    m.T,
		Hi0:  2 * m.T,
		Leaf: func(col int) float64 { return m.Prm.Payoff(kind, m.Asset(0, col)) },
	}
	if american {
		u := m.U
		K := m.Prm.K
		if kind == option.Call {
			p.FillExercise = func(depth, lo, hi int, out []float64) {
				a := m.Asset(depth, lo)
				for i := range out {
					out[i] = a - K
					a *= u
				}
			}
		} else {
			p.FillExercise = func(depth, lo, hi int, out []float64) {
				a := m.Asset(depth, lo)
				for i := range out {
					out[i] = K - a
					a *= u
				}
			}
		}
	}
	return p
}

// PriceNaive is the serial nested loop ("vanilla-topm", serial).
func (m *Model) PriceNaive(kind option.Kind) float64 {
	return sweep.Naive(m.sweepProblem(kind, true))
}

// PriceNaiveParallel is the row-parallel nested loop — the paper's
// vanilla-topm baseline.
func (m *Model) PriceNaiveParallel(kind option.Kind) float64 {
	return sweep.NaiveParallel(m.sweepProblem(kind, true))
}

// PriceTiled is the cache-aware split-tiled sweep.
func (m *Model) PriceTiled(kind option.Kind, tileW, tileH int) float64 {
	return sweep.Tiled(m.sweepProblem(kind, true), tileW, tileH)
}

// PriceRecursive is the cache-oblivious recursive-tiling sweep.
func (m *Model) PriceRecursive(kind option.Kind) float64 {
	return sweep.Recursive(m.sweepProblem(kind, true))
}

// PriceEuropean prices the European option with one T-step FFT evolution.
// As in the binomial model, the transform runs on the bounded put payoff and
// calls come out through exact lattice put-call parity (see
// bopm.PriceEuropean for why transforming the call payoff directly would be
// numerically hopeless at large T).
func (m *Model) PriceEuropean(kind option.Kind) float64 {
	row := make([]float64, 2*m.T+1)
	for j := range row {
		row[j] = m.Prm.Payoff(option.Put, m.Asset(0, j))
	}
	out, _ := linstencil.EvolveCone(row, m.Stencil(), m.T)
	put := out[0]
	if kind == option.Put {
		return put
	}
	return put + m.Prm.S*math.Exp(-m.Prm.Y*m.Prm.E) - m.Prm.K*math.Exp(-m.Prm.R*m.Prm.E)
}

// PriceEuropeanNaive is the serial nested loop without the exercise max.
func (m *Model) PriceEuropeanNaive(kind option.Kind) float64 {
	return sweep.Naive(m.sweepProblem(kind, false))
}

// LeafBoundary exposes the initial red/green boundary for the traced kernels
// and diagnostics.
func (m *Model) LeafBoundary() int { return m.leafBoundary() }
