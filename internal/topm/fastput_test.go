package topm

import (
	"math/rand"
	"testing"

	"github.com/nlstencil/amop/internal/option"
)

func TestPutBoundaryStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 20; trial++ {
		p := randParams(rng)
		if trial%2 == 0 {
			p.Y = 0
		}
		m, err := New(p, 16+rng.Intn(300))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ValidatePutStructure(); err != nil {
			t.Errorf("trial %d (T=%d, %+v): %v", trial, m.T, m.Prm, err)
		}
	}
}

func TestFastPutMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	for trial := 0; trial < 25; trial++ {
		p := randParams(rng)
		if trial%2 == 0 {
			p.Y = 0
		}
		m, err := New(p, 16+rng.Intn(500))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFastPut()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive(option.Put)
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d, %+v): fast %.12g naive %.12g rel %g", trial, m.T, p, fast, naive, d)
		}
	}
}

func TestFastPutPaperParams(t *testing.T) {
	for _, T := range []int{100, 1000, 4000} {
		m, err := New(option.Default(), T)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFastPut()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive(option.Put)
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("T=%d: fast %.12g naive %.12g rel %g", T, fast, naive, d)
		}
	}
}
