package topm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/option"
)

func randParams(rng *rand.Rand) option.Params {
	return option.Params{
		S: 80 + 80*rng.Float64(),
		K: 80 + 80*rng.Float64(),
		R: 0.001 + 0.08*rng.Float64(),
		V: 0.1 + 0.4*rng.Float64(),
		Y: 0.005 + 0.08*rng.Float64(),
		E: 0.25 + 1.5*rng.Float64(),
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(option.Default(), 100); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	for name, c := range map[string]struct {
		prm   option.Params
		steps int
	}{
		"zero steps":      {option.Default(), 0},
		"too many steps":  {option.Default(), MaxSteps + 1},
		"bad vol":         {option.Params{S: 100, K: 100, R: 0.01, V: -0.1, Y: 0, E: 1}, 100},
		"degenerate tree": {option.Params{S: 100, K: 100, R: 5, V: 0.01, Y: 0, E: 1}, 1},
	} {
		if _, err := New(c.prm, c.steps); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		m, err := New(randParams(rng), 10+rng.Intn(500))
		if err != nil {
			t.Fatal(err)
		}
		if s := m.Pu + m.Po + m.Pd; math.Abs(s-1) > 1e-12 {
			t.Errorf("probabilities sum to %v", s)
		}
		// Martingale condition: E[price factor] = e^((R-Y)dt).
		gro := m.Pd/m.U + m.Po + m.Pu*m.U
		want := math.Exp((m.Prm.R - m.Prm.Y) * m.Dt)
		if relDiff(gro, want) > 1e-12 {
			t.Errorf("martingale violated: %v vs %v", gro, want)
		}
	}
}

func TestFastMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 25; trial++ {
		m, err := New(randParams(rng), 16+rng.Intn(400))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive(option.Call)
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d): fast %.12g naive %.12g rel %g", trial, m.T, fast, naive, d)
		}
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		m, err := New(randParams(rng), 30+rng.Intn(300))
		if err != nil {
			t.Fatal(err)
		}
		ref := m.PriceNaive(option.Call)
		for name, v := range map[string]float64{
			"naive-parallel": m.PriceNaiveParallel(option.Call),
			"tiled":          m.PriceTiled(option.Call, 0, 0),
			"tiled-odd":      m.PriceTiled(option.Call, 41, 7),
			"recursive":      m.PriceRecursive(option.Call),
		} {
			if d := relDiff(v, ref); d > 1e-9 {
				t.Errorf("trial %d (T=%d) %s: %.12g vs naive %.12g", trial, m.T, name, v, ref)
			}
		}
	}
}

func TestEuropeanFastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 10; trial++ {
		m, err := New(randParams(rng), 16+rng.Intn(500))
		if err != nil {
			t.Fatal(err)
		}
		// The FFT's absolute error scales with the largest payoff in the
		// row (the deep-ITM leaves), unlike the cancellation-free naive
		// sum; tolerate eps * maxLeaf.
		maxLeaf := m.Asset(0, 2*m.T)
		tol := 1e-12*maxLeaf + 1e-9
		for _, kind := range []option.Kind{option.Call, option.Put} {
			fast := m.PriceEuropean(kind)
			naive := m.PriceEuropeanNaive(kind)
			if d := math.Abs(fast - naive); d > tol {
				t.Errorf("trial %d %v: fft %.12g naive %.12g (tol %g)", trial, kind, fast, naive, tol)
			}
		}
	}
}

// TestEuropeanConvergesToBlackScholes: the trinomial European price
// converges to the closed form; the paper notes TOPM needs about half the
// steps of BOPM for the same accuracy.
func TestEuropeanConvergesToBlackScholes(t *testing.T) {
	p := option.Params{S: 100, K: 110, R: 0.03, V: 0.25, Y: 0.01, E: 1}
	for _, kind := range []option.Kind{option.Call, option.Put} {
		bs := option.BlackScholes(p, kind)
		m, err := New(p, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(m.PriceEuropean(kind) - bs); e > 0.01 {
			t.Errorf("%v: trinomial European at T=4096 off closed form by %g", kind, e)
		}
	}
}

// TestAgreesWithBinomial: binomial and trinomial American call prices
// converge to the same limit.
func TestAgreesWithBinomial(t *testing.T) {
	p := option.Params{S: 127.62, K: 130, R: 0.02, V: 0.2, Y: 0.03, E: 1}
	tm, err := New(p, 2000)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := bopm.New(p, 4000)
	if err != nil {
		t.Fatal(err)
	}
	tv, err := tm.PriceFast()
	if err != nil {
		t.Fatal(err)
	}
	bv, err := bm.PriceFast()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tv-bv) > 0.02 {
		t.Errorf("trinomial %.6f and binomial %.6f disagree beyond discretization error", tv, bv)
	}
}

func TestAmericanDominatesEuropean(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		m, err := New(randParams(rng), 200)
		if err != nil {
			t.Fatal(err)
		}
		am, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		if eu := m.PriceEuropean(option.Call); am < eu-1e-9 {
			t.Errorf("trial %d: American %.12g < European %.12g", trial, am, eu)
		}
	}
}

func TestBaseCaseAblation(t *testing.T) {
	m, err := New(option.Default(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.PriceFast()
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []int{1, 4, 16, 64} {
		m.SetBaseCase(base)
		v, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(v, ref); d > 1e-11 {
			t.Errorf("base %d: %.14g vs %.14g", base, v, ref)
		}
	}
}

func TestLeafBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 20; trial++ {
		m, err := New(randParams(rng), 10+rng.Intn(200))
		if err != nil {
			t.Fatal(err)
		}
		b := m.leafBoundary()
		if b >= 0 && m.Exercise(option.Call, 0, b) > 0 {
			t.Errorf("trial %d: boundary cell %d has positive exercise", trial, b)
		}
		if b < 2*m.T && m.Exercise(option.Call, 0, b+1) <= 0 {
			t.Errorf("trial %d: cell %d right of boundary has exercise <= 0", trial, b+1)
		}
	}
}
