package topm

import (
	"math"

	"github.com/nlstencil/amop/internal/fbstencil"
	"github.com/nlstencil/amop/internal/option"
)

// Experimental fast American PUT under the trinomial model (extension
// beyond the paper; see bopm/fastput.go). The trinomial grid's fixed-price
// lines drift one column left per step — on top of the exercise boundary's
// own leftward drift — so the per-step drop bound here is 2 rather than 1.

// putProblem builds the green-left instance for the American put.
func (m *Model) putProblem() *fbstencil.GreenLeftOneSided {
	green := func(depth, col int) float64 { return m.Exercise(option.Put, depth, col) }
	guess := int(math.Ceil(float64(m.T) + math.Log(m.Prm.K/m.Prm.S)/m.logU))
	if guess > 2*m.T {
		guess = 2 * m.T
	}
	if guess < -1 {
		guess = -1
	}
	for guess < 2*m.T && green(0, guess+1) > 0 {
		guess++
	}
	for guess >= 0 && green(0, guess) <= 0 {
		guess--
	}
	return &fbstencil.GreenLeftOneSided{
		Stencil:  m.Stencil(),
		T:        m.T,
		Hi0:      2 * m.T,
		Init:     func(col int) float64 { return math.Max(0, green(0, col)) },
		Green:    green,
		Bnd0:     guess,
		BaseCase: m.baseC,
		MaxDrop:  2,
	}
}

// PriceFastPut prices the American put with the FFT-based green-left
// solver: O(T log^2 T) work. Experimental — the put boundary structure
// (unit contiguity, drops of at most two columns per interior step) is
// validated empirically, not proven.
func (m *Model) PriceFastPut() (float64, error) {
	return m.PriceFastPutStats(nil)
}

// PriceFastPutStats is PriceFastPut with work-counter collection.
func (m *Model) PriceFastPutStats(st *fbstencil.Stats) (float64, error) {
	v, _, err := fbstencil.SolveGreenLeftOneSided(m.putProblem(), st)
	return v, err
}

// PriceFastPutCancel is PriceFastPut with a cancellation hook, polled at
// trapezoid granularity.
func (m *Model) PriceFastPutCancel(cancel func() error) (float64, error) {
	prob := m.putProblem()
	prob.Cancel = cancel
	v, _, err := fbstencil.SolveGreenLeftOneSided(prob, nil)
	return v, err
}

// ValidatePutStructure runs the O(T^2) structural validator for the put's
// free boundary on this instance.
func (m *Model) ValidatePutStructure() error {
	_, err := fbstencil.GreenLeftOneSidedBoundaryTrace(m.putProblem())
	return err
}
