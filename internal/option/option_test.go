package option

import (
	"math"
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	base := Default()
	cases := map[string]func(*Params){
		"zero spot":    func(p *Params) { p.S = 0 },
		"neg spot":     func(p *Params) { p.S = -3 },
		"zero strike":  func(p *Params) { p.K = 0 },
		"zero vol":     func(p *Params) { p.V = 0 },
		"neg vol":      func(p *Params) { p.V = -0.2 },
		"zero expiry":  func(p *Params) { p.E = 0 },
		"neg rate":     func(p *Params) { p.R = -0.01 },
		"neg dividend": func(p *Params) { p.Y = -0.01 },
		"nan spot":     func(p *Params) { p.S = math.NaN() },
		"inf strike":   func(p *Params) { p.K = math.Inf(1) },
	}
	for name, mutate := range cases {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPayoff(t *testing.T) {
	p := Params{S: 100, K: 90, R: 0.01, V: 0.2, Y: 0, E: 1}
	if got := p.Payoff(Call, 100); got != 10 {
		t.Errorf("call payoff = %v, want 10", got)
	}
	if got := p.Payoff(Call, 50); got != 0 {
		t.Errorf("OTM call payoff = %v, want 0", got)
	}
	if got := p.Payoff(Put, 50); got != 40 {
		t.Errorf("put payoff = %v, want 40", got)
	}
	if got := p.Payoff(Put, 100); got != 0 {
		t.Errorf("OTM put payoff = %v, want 0", got)
	}
}

func TestKindString(t *testing.T) {
	if Call.String() != "call" || Put.String() != "put" {
		t.Error("Kind stringer broken")
	}
}

// TestBlackScholesTextbookValue pins the classic Hull example: S=42, K=40,
// R=10%, V=20%, E=0.5y gives a call near 4.76 and a put near 0.81.
func TestBlackScholesTextbookValue(t *testing.T) {
	p := Params{S: 42, K: 40, R: 0.1, V: 0.2, Y: 0, E: 0.5}
	if c := BlackScholes(p, Call); math.Abs(c-4.7594) > 2e-4 {
		t.Errorf("call = %v, want 4.7594", c)
	}
	if v := BlackScholes(p, Put); math.Abs(v-0.8086) > 2e-4 {
		t.Errorf("put = %v, want 0.8086", v)
	}
}

func TestBlackScholesParityAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 50; i++ {
		p := Params{
			S: 20 + 200*rng.Float64(),
			K: 20 + 200*rng.Float64(),
			R: 0.1 * rng.Float64(),
			V: 0.05 + 0.6*rng.Float64(),
			Y: 0.1 * rng.Float64(),
			E: 0.1 + 3*rng.Float64(),
		}
		c := BlackScholes(p, Call)
		v := BlackScholes(p, Put)
		if c < 0 || v < 0 {
			t.Fatalf("negative price: c=%v p=%v for %+v", c, v, p)
		}
		want := p.S*math.Exp(-p.Y*p.E) - p.K*math.Exp(-p.R*p.E)
		if math.Abs(c-v-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("parity violated: %v vs %v for %+v", c-v, want, p)
		}
		// European call is bounded by the discounted spot.
		if c > p.S*math.Exp(-p.Y*p.E)+1e-9 {
			t.Fatalf("call %v above discounted spot for %+v", c, p)
		}
	}
}

// TestBlackScholesLimits: vol -> 0 collapses to discounted intrinsic of the
// forward.
func TestBlackScholesLimits(t *testing.T) {
	p := Params{S: 150, K: 100, R: 0.02, V: 1e-8, Y: 0, E: 1}
	want := p.S - p.K*math.Exp(-p.R*p.E)
	if c := BlackScholes(p, Call); math.Abs(c-want) > 1e-6 {
		t.Errorf("deep ITM zero-vol call %v, want %v", c, want)
	}
	if v := BlackScholes(p, Put); v > 1e-6 {
		t.Errorf("deep OTM zero-vol put %v, want ~0", v)
	}
}
