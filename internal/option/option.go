// Package option holds the option-contract parameter types shared by the
// three pricing models (BOPM, TOPM, BSM) and the closed-form Black-Scholes
// reference used for cross-validation.
package option

import (
	"fmt"
	"math"
)

// Kind distinguishes calls from puts.
type Kind int

const (
	// Call is the right to buy at the strike.
	Call Kind = iota
	// Put is the right to sell at the strike.
	Put
)

// String returns "call" or "put".
func (k Kind) String() string {
	if k == Put {
		return "put"
	}
	return "call"
}

// Params are the contract and market parameters of Table 1 of the paper.
// Rates are annualized and E is the time to expiry in years (the paper's
// E=252 trading days corresponds to E=1.0 here).
type Params struct {
	S float64 // spot price of the underlying
	K float64 // strike price
	R float64 // risk-free rate (annualized, continuous compounding)
	V float64 // volatility (annualized)
	Y float64 // continuous dividend yield (annualized)
	E float64 // time to expiry in years
}

// Default returns the paper's benchmark parameters (Section 5):
// E=252 days, K=130, S=127.62, R=0.00163, V=0.2, Y=0.0163.
func Default() Params {
	return Params{S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1.0}
}

// Validate checks that the parameters define a well-posed pricing problem.
func (p Params) Validate() error {
	check := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("option: %s = %v is not finite", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"S", p.S}, {"K", p.K}, {"R", p.R}, {"V", p.V}, {"Y", p.Y}, {"E", p.E}} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	if p.S <= 0 {
		return fmt.Errorf("option: spot price S = %v must be positive", p.S)
	}
	if p.K <= 0 {
		return fmt.Errorf("option: strike K = %v must be positive", p.K)
	}
	if p.V <= 0 {
		return fmt.Errorf("option: volatility V = %v must be positive", p.V)
	}
	if p.E <= 0 {
		return fmt.Errorf("option: time to expiry E = %v must be positive", p.E)
	}
	if p.R < 0 {
		return fmt.Errorf("option: negative risk-free rate R = %v is not supported", p.R)
	}
	if p.Y < 0 {
		return fmt.Errorf("option: negative dividend yield Y = %v is not supported", p.Y)
	}
	return nil
}

// Payoff returns the exercise payoff max(S-K, 0) or max(K-S, 0) at the given
// asset price.
func (p Params) Payoff(kind Kind, asset float64) float64 {
	if kind == Call {
		return math.Max(asset-p.K, 0)
	}
	return math.Max(p.K-asset, 0)
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// BlackScholes returns the closed-form European option value under the
// Black-Scholes-Merton model with continuous dividend yield. It is the
// T -> infinity limit of the binomial and trinomial European prices and
// serves as the convergence oracle for those models.
func BlackScholes(p Params, kind Kind) float64 {
	sqrtE := math.Sqrt(p.E)
	d1 := (math.Log(p.S/p.K) + (p.R-p.Y+0.5*p.V*p.V)*p.E) / (p.V * sqrtE)
	d2 := d1 - p.V*sqrtE
	discS := p.S * math.Exp(-p.Y*p.E)
	discK := p.K * math.Exp(-p.R*p.E)
	if kind == Call {
		return discS*normCDF(d1) - discK*normCDF(d2)
	}
	return discK*normCDF(-d2) - discS*normCDF(-d1)
}
