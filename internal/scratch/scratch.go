// Package scratch provides size-classed buffer pools for the fast solver's
// hot loop. The free-boundary recursion and the FFT substrate allocate and
// discard row segments, padded transform inputs, and spectra at every
// recursion level; at T = 10^5+ that is tens of thousands of short-lived
// slices per solve, and under batch traffic the garbage collector becomes a
// measurable fraction of the run. Pooling by power-of-two capacity class
// turns the steady state into zero allocations per solve.
//
// The pools are bounded LIFO freelists guarded by a mutex rather than
// sync.Pool: storing a slice in a sync.Pool boxes the header on every Put,
// which would put one small allocation back on the hot path per recycled
// buffer — exactly the churn the package exists to remove. Each capacity
// class retains at most maxClassBytes of idle buffers (see that constant for
// the process-wide bound); anything beyond the cap is dropped to the GC.
//
// Ownership protocol: Floats/Complexes return a buffer with *undefined
// contents* (callers must overwrite every element they read back) and the
// caller becomes its owner. Ownership transfers with the slice; whoever holds
// the last live reference may return the buffer with PutFloats/PutComplexes.
// Returning a buffer that is still referenced elsewhere is a data race —
// when ownership is unclear, simply drop the buffer and let the GC take it;
// the pools are an optimization, never a requirement.
package scratch

import (
	"math/bits"
	"sync"
)

const (
	// maxClass bounds the pooled capacity classes at 2^maxClass elements;
	// larger requests go straight to the allocator.
	maxClass = 28

	// minClass is the smallest pooled capacity class (2^5 = 32 elements).
	// Smaller slices cost less to allocate than to round-trip through a pool.
	minClass = 5

	// maxClassBytes bounds the idle buffers retained per class; buffers
	// larger than this on their own are never retained at all. The whole
	// package therefore holds at most maxClassBytes per retaining class
	// (float classes up to 2^22 elements, complex up to 2^21) ≈ 1.1 GiB in
	// the degenerate worst case and, in practice, a few dozen MiB shaped
	// like the largest recent solve.
	maxClassBytes = 32 << 20
)

type floatPool struct {
	mu   sync.Mutex
	bufs [][]float64
}

type complexPool struct {
	mu   sync.Mutex
	bufs [][]complex128
}

var (
	floatPools   [maxClass + 1]floatPool
	complexPools [maxClass + 1]complexPool
)

// retain reports how many idle buffers a class of the given element size may
// hold under the maxClassBytes bound. Classes whose single buffer already
// exceeds the bound retain nothing: parking multi-GiB one-off rows for the
// process lifetime costs far more than the one allocation dropping them
// costs the next giant solve.
func retain(c int, elemSize int) int {
	return maxClassBytes / (elemSize << c)
}

// class returns the pool index for a request of n elements, or -1 when the
// request should bypass the pools.
func class(n int) int {
	if n <= 0 || n > 1<<maxClass {
		return -1
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n)), and 0 for n == 1
	if c < minClass {
		c = minClass
	}
	return c
}

// Floats returns a []float64 of length n with undefined contents and,
// for poolable sizes, capacity rounded up to a power of two. Sizes whose
// class can never retain a buffer (a single buffer over maxClassBytes) are
// allocated at exact length: rounding up would pay up to 2x transient memory
// for zero pooling benefit.
func Floats(n int) []float64 {
	c := class(n)
	if c < 0 || retain(c, 8) == 0 {
		return make([]float64, n)
	}
	p := &floatPools[c]
	p.mu.Lock()
	if last := len(p.bufs) - 1; last >= 0 {
		b := p.bufs[last]
		p.bufs[last] = nil
		p.bufs = p.bufs[:last]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]float64, n, 1<<c)
}

// PutFloats returns a buffer obtained from Floats to its pool. Buffers whose
// capacity is not a power of two (foreign allocations, or pool buffers
// re-sliced so their backing array is no longer fully owned) are dropped, as
// are nil, tiny, and over-cap buffers.
func PutFloats(b []float64) {
	c := cap(b)
	if c < 1<<minClass || c > 1<<maxClass || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	p := &floatPools[cls]
	p.mu.Lock()
	if len(p.bufs) < retain(cls, 8) {
		p.bufs = append(p.bufs, b[:0:c])
	}
	p.mu.Unlock()
}

// Complexes returns a []complex128 of length n with undefined contents and,
// for poolable sizes, capacity rounded up to a power of two (see Floats for
// the never-retained exception).
func Complexes(n int) []complex128 {
	c := class(n)
	if c < 0 || retain(c, 16) == 0 {
		return make([]complex128, n)
	}
	p := &complexPools[c]
	p.mu.Lock()
	if last := len(p.bufs) - 1; last >= 0 {
		b := p.bufs[last]
		p.bufs[last] = nil
		p.bufs = p.bufs[:last]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]complex128, n, 1<<c)
}

// PutComplexes returns a buffer obtained from Complexes to its pool, under
// the same rules as PutFloats.
func PutComplexes(b []complex128) {
	c := cap(b)
	if c < 1<<minClass || c > 1<<maxClass || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	p := &complexPools[cls]
	p.mu.Lock()
	if len(p.bufs) < retain(cls, 16) {
		p.bufs = append(p.bufs, b[:0:c])
	}
	p.mu.Unlock()
}
