package scratch

import (
	"sync"
	"testing"
)

func TestClassRounding(t *testing.T) {
	cases := map[int]int{
		1:               minClass,
		31:              minClass,
		32:              minClass,
		33:              6,
		64:              6,
		65:              7,
		1 << maxClass:   maxClass,
		1<<maxClass + 1: -1,
		0:               -1,
		-4:              -1,
	}
	for n, want := range cases {
		if got := class(n); got != want {
			t.Errorf("class(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFloatsLenCap(t *testing.T) {
	for _, n := range []int{1, 5, 32, 33, 100, 4096, 4097} {
		b := Floats(n)
		if len(b) != n {
			t.Fatalf("Floats(%d): len %d", n, len(b))
		}
		if c := cap(b); c&(c-1) != 0 {
			t.Fatalf("Floats(%d): cap %d not a power of two", n, c)
		}
		PutFloats(b)
	}
}

func TestRecycleRoundTrip(t *testing.T) {
	b := Floats(1000)
	b[0], b[999] = 1, 2
	PutFloats(b)
	c := Floats(900)
	if cap(c) != cap(b) || &c[0] != &b[0] {
		t.Error("Floats did not reuse the pooled buffer")
	}
	PutFloats(c)

	z := Complexes(512)
	PutComplexes(z)
	z2 := Complexes(512)
	if &z2[0] != &z[0] {
		t.Error("Complexes did not reuse the pooled buffer")
	}
	PutComplexes(z2)
}

// TestPutRejectsForeign: non-power-of-two capacities (e.g. leafRow buffers
// allocated with plain make) must be silently dropped, not pooled.
func TestPutRejectsForeign(t *testing.T) {
	PutFloats(make([]float64, 100, 100))
	b := Floats(100)
	if cap(b) == 100 {
		t.Error("pool accepted a non-power-of-two buffer")
	}
	PutFloats(nil)
	PutComplexes(nil)
	PutComplexes(make([]complex128, 33, 33))
}

// TestFrontTrimmedPut: a pool buffer re-sliced from the front loses its
// power-of-two capacity and must be dropped rather than corrupting the pool.
func TestFrontTrimmedPut(t *testing.T) {
	b := Floats(64)
	PutFloats(b[3:])
	got := Floats(64)
	if len(got) != 64 {
		t.Fatalf("len %d after trimmed Put", len(got))
	}
	PutFloats(got)
}

func TestRetainBound(t *testing.T) {
	if got := retain(minClass, 8); got != maxClassBytes/(8<<minClass) {
		t.Errorf("retain(minClass) = %d", got)
	}
	// A class whose single buffer exceeds maxClassBytes must retain nothing.
	if got := retain(maxClass, 16); got != 0 {
		t.Errorf("retain(maxClass, 16) = %d, want 0", got)
	}
	// The largest retaining classes sit exactly at the bound.
	if got := retain(22, 8); got != 1 {
		t.Errorf("retain(22, 8) = %d, want 1", got)
	}
	if got := retain(21, 16); got != 1 {
		t.Errorf("retain(21, 16) = %d, want 1", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 32 + (g*31+i*17)%2000
				f := Floats(n)
				for j := range f {
					f[j] = float64(g)
				}
				for j := range f {
					if f[j] != float64(g) {
						t.Errorf("buffer shared between goroutines")
						return
					}
				}
				PutFloats(f)
				z := Complexes(n)
				z[0] = complex(float64(g), 0)
				PutComplexes(z)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkFloatsRecycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := Floats(4096)
		PutFloats(f)
	}
}
