// Package faultinject provides deterministic fault-injection hook points for
// robustness testing: solver panics, slow solves, forced NaN results, and
// spawn-budget exhaustion. The hooks are compiled in unconditionally but sit
// behind a single atomic gate that is off by default, so the production fast
// path pays one atomic load per solve and nothing else.
//
// Faults are armed either programmatically (Enable + Inject, used by the
// chaos tests and the serve-chaos harness experiment) or from the
// environment: AMOP_FAULTINJECT=1 merely opens the gate, while
// AMOP_FAULTINJECT="panic:SYM1;delay:SYM2:50ms;nan:SYM3" arms rules at
// process start (see ParseSpec for the grammar). Rules match solve requests
// by substring of the request tag — the serving layer tags each request with
// its symbol, so a chaos run can break one symbol while its neighbors stay
// healthy.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the hook points.
type Kind int

const (
	// SolvePanic makes the matched solve panic ("solver bug").
	SolvePanic Kind = iota + 1
	// SolveDelay sleeps the matched solve for Rule.Delay ("slow solve").
	SolveDelay
	// SolveNaN forces the matched solve to return NaN ("numerical poison").
	SolveNaN
	// BudgetDeny makes par.TryAcquire report an exhausted spawn budget,
	// forcing serial degradation everywhere.
	BudgetDeny
)

func (k Kind) String() string {
	switch k {
	case SolvePanic:
		return "panic"
	case SolveDelay:
		return "delay"
	case SolveNaN:
		return "nan"
	case BudgetDeny:
		return "budget"
	}
	return fmt.Sprintf("faultinject.Kind(%d)", int(k))
}

// Rule arms one fault.
type Rule struct {
	Kind  Kind
	Match string        // substring of the solve tag; "" matches every solve
	Times int           // firings before the rule disarms itself; <= 0 means unlimited
	Delay time.Duration // sleep length for SolveDelay
}

// Action is the combined effect of every rule matching one solve. Delay is
// applied first, then NaN, then Panic (a rule set pairing delay with panic
// models a solver that burns time before dying).
type Action struct {
	Panic bool
	NaN   bool
	Delay time.Duration
}

// enabled is the global gate. All hook entry points load it first and return
// immediately when it is false.
var enabled atomic.Bool

var (
	mu    sync.Mutex
	rules []*armedRule
)

type armedRule struct {
	Rule
	fired int
}

// Enabled reports whether the injection gate is open.
func Enabled() bool { return enabled.Load() }

// Enable opens the injection gate. Armed rules start firing.
func Enable() { enabled.Store(true) }

// Disable closes the gate without clearing rules.
func Disable() { enabled.Store(false) }

// Reset closes the gate and clears every rule. Tests call it in cleanup.
func Reset() {
	enabled.Store(false)
	mu.Lock()
	rules = nil
	mu.Unlock()
}

// Inject arms a rule. The gate must be opened separately with Enable.
func Inject(r Rule) {
	mu.Lock()
	rules = append(rules, &armedRule{Rule: r})
	mu.Unlock()
}

// OnSolve reports the combined fault action for a solve carrying the given
// tag, consuming one firing from each matched counted rule. The zero Action
// means "no fault".
func OnSolve(tag string) Action {
	var a Action
	if !enabled.Load() {
		return a
	}
	mu.Lock()
	for _, r := range rules {
		if r.Kind == BudgetDeny || !r.matches(tag) {
			continue
		}
		switch r.Kind {
		case SolvePanic:
			a.Panic = true
		case SolveDelay:
			a.Delay += r.Delay
		case SolveNaN:
			a.NaN = true
		}
	}
	mu.Unlock()
	return a
}

// OnBudget reports whether a BudgetDeny rule fires for this budget
// acquisition, consuming one firing from each matched counted rule.
func OnBudget() bool {
	if !enabled.Load() {
		return false
	}
	deny := false
	mu.Lock()
	for _, r := range rules {
		if r.Kind == BudgetDeny && r.matches("") {
			deny = true
		}
	}
	mu.Unlock()
	return deny
}

// matches consumes a firing when the rule applies. Callers hold mu.
func (r *armedRule) matches(tag string) bool {
	if r.Times > 0 && r.fired >= r.Times {
		return false
	}
	if r.Match != "" && !strings.Contains(tag, r.Match) {
		return false
	}
	r.fired++
	return true
}

// ParseSpec parses a semicolon-separated rule list:
//
//	rule      = kind [ ":" match [ ":" arg ] ]
//	kind      = "panic" | "delay" | "nan" | "budget"
//	arg       = duration (delay)  |  count ("x" suffix, e.g. "3x")
//
// Examples: "panic:ACME", "delay:SLOW:50ms", "nan", "panic:ACME:2x".
// The literal "1" (the plain AMOP_FAULTINJECT=1 gate) yields no rules.
func ParseSpec(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "1" {
		return nil, nil
	}
	var out []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, ":", 3)
		var r Rule
		switch fields[0] {
		case "panic":
			r.Kind = SolvePanic
		case "delay":
			r.Kind = SolveDelay
			r.Delay = 10 * time.Millisecond
		case "nan":
			r.Kind = SolveNaN
		case "budget":
			r.Kind = BudgetDeny
		default:
			return nil, fmt.Errorf("faultinject: unknown fault kind %q in %q", fields[0], part)
		}
		if len(fields) > 1 {
			r.Match = fields[1]
		}
		if len(fields) > 2 {
			arg := fields[2]
			if n, ok := strings.CutSuffix(arg, "x"); ok {
				times, err := strconv.Atoi(n)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad count %q in %q", arg, part)
				}
				r.Times = times
			} else {
				d, err := time.ParseDuration(arg)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad duration %q in %q", arg, part)
				}
				r.Delay = d
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// init arms the package from AMOP_FAULTINJECT so chaos behavior can be
// switched on for a whole process (CLI daemons included) with no code
// change. A malformed spec is reported and ignored rather than killing the
// process: fault injection must never be the fault.
func init() {
	spec := os.Getenv("AMOP_FAULTINJECT")
	if spec == "" {
		return
	}
	rs, err := ParseSpec(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amop: ignoring AMOP_FAULTINJECT: %v\n", err)
		return
	}
	for _, r := range rs {
		Inject(r)
	}
	Enable()
}
