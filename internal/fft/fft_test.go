package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nlstencil/amop/internal/par"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(a []complex128, inverse bool) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for f := 0; f < n; f++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j) * float64(f) / float64(n)
			sum += a[j] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[f] = sum
	}
	return out
}

func randVec(rng *rand.Rand, n int) []complex128 {
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		a := randVec(rng, n)
		want := naiveDFT(a, false)
		got := append([]complex128(nil), a...)
		NewPlan(n).Forward(got)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d: forward differs from naive DFT by %g", n, d)
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 64, 256} {
		a := randVec(rng, n)
		want := naiveDFT(a, true)
		got := append([]complex128(nil), a...)
		NewPlan(n).Inverse(got)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d: inverse differs from naive DFT by %g", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 16, 1024, 4096} {
		a := randVec(rng, n)
		got := append([]complex128(nil), a...)
		p := NewPlan(n)
		p.Forward(got)
		p.Inverse(got)
		if d := maxAbsDiff(got, a); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip error %g", n, d)
		}
	}
}

// TestRoundTripQuick is a property test: Forward then Inverse recovers any
// input vector.
func TestRoundTripQuick(t *testing.T) {
	prop := func(re, im [64]float64) bool {
		a := make([]complex128, 64)
		for i := range a {
			a[i] = complex(re[i], im[i])
		}
		got := append([]complex128(nil), a...)
		p := PlanFor(64)
		p.Forward(got)
		p.Inverse(got)
		for i := range a {
			scale := 1 + cmplx.Abs(a[i])
			if cmplx.Abs(got[i]-a[i]) > 1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestLinearity checks DFT(alpha*x + y) == alpha*DFT(x) + DFT(y).
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 512
	p := NewPlan(n)
	x := randVec(rng, n)
	y := randVec(rng, n)
	alpha := complex(1.7, -0.3)

	comb := make([]complex128, n)
	for i := range comb {
		comb[i] = alpha*x[i] + y[i]
	}
	p.Forward(comb)

	fx := append([]complex128(nil), x...)
	fy := append([]complex128(nil), y...)
	p.Forward(fx)
	p.Forward(fy)
	for i := range fx {
		fx[i] = alpha*fx[i] + fy[i]
	}
	if d := maxAbsDiff(comb, fx); d > 1e-9 {
		t.Errorf("linearity violated: max diff %g", d)
	}
}

// TestParseval checks sum |a|^2 == (1/n) sum |A|^2.
func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2048
	a := randVec(rng, n)
	var timeE float64
	for _, v := range a {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	f := append([]complex128(nil), a...)
	NewPlan(n).Forward(f)
	var freqE float64
	for _, v := range f {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= float64(n)
	if math.Abs(timeE-freqE) > 1e-8*timeE {
		t.Errorf("Parseval violated: time %g freq %g", timeE, freqE)
	}
}

// TestImpulse checks that a unit impulse transforms to the all-ones vector.
func TestImpulse(t *testing.T) {
	n := 128
	a := make([]complex128, n)
	a[0] = 1
	NewPlan(n).Forward(a)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse transform at %d = %v, want 1", i, v)
		}
	}
}

// TestShiftTheorem checks DFT(shift(a, s))[f] == DFT(a)[f] * exp(-2*pi*i*s*f/n).
func TestShiftTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 256
	s := 37
	a := randVec(rng, n)
	shifted := make([]complex128, n)
	for i := range a {
		shifted[(i+s)%n] = a[i]
	}
	p := NewPlan(n)
	fa := append([]complex128(nil), a...)
	p.Forward(fa)
	p.Forward(shifted)
	for f := 0; f < n; f++ {
		ang := -2 * math.Pi * float64(s) * float64(f) / float64(n)
		want := fa[f] * cmplx.Exp(complex(0, ang))
		if cmplx.Abs(shifted[f]-want) > 1e-9 {
			t.Fatalf("shift theorem violated at f=%d", f)
		}
	}
}

// TestParallelMatchesSerial verifies the parallel stage code computes exactly
// what the serial path computes on a transform large enough to trigger it.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := parThreshold() * 4
	a := randVec(rng, n)
	p := NewPlan(n)

	serial := append([]complex128(nil), a...)
	prev := par.SetWorkers(1)
	p.Forward(serial)
	par.SetWorkers(prev)

	parallel := append([]complex128(nil), a...)
	p.Forward(parallel)

	if d := maxAbsDiff(serial, parallel); d > 0 {
		// Parallel and serial orderings perform identical arithmetic per
		// butterfly, so results should be bit-identical.
		t.Errorf("parallel transform differs from serial by %g", d)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{
		-5: 1, 0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8,
		1023: 1024, 1024: 1024, 1025: 2048,
	}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNewPlanPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%d) did not panic", n)
				}
			}()
			NewPlan(n)
		}()
	}
}

func TestTransformPanicsOnLengthMismatch(t *testing.T) {
	p := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Error("Forward with wrong length did not panic")
		}
	}()
	p.Forward(make([]complex128, 4))
}

func TestPow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		z := complex(rng.NormFloat64(), rng.NormFloat64())
		// Normalize to avoid overflow for large k; stencil symbols always
		// have modulus <= 1.
		z /= complex(cmplx.Abs(z)+0.1, 0)
		k := rng.Intn(1 << 20)
		got := Pow(z, k)
		want := cmplx.Pow(z, complex(float64(k), 0))
		if cmplx.Abs(got-want) > 1e-8*(1+cmplx.Abs(want)) {
			t.Fatalf("Pow(%v, %d) = %v, want %v", z, k, got, want)
		}
	}
	if got := Pow(complex(2, 3), 0); got != 1 {
		t.Errorf("Pow(z, 0) = %v, want 1", got)
	}
}

func TestPowPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pow with negative exponent did not panic")
		}
	}()
	Pow(1i, -1)
}

func TestPlanForCaches(t *testing.T) {
	a := PlanFor(256)
	b := PlanFor(256)
	if a != b {
		t.Error("PlanFor returned distinct plans for the same size")
	}
}

func BenchmarkForward1K(b *testing.B)   { benchForward(b, 1<<10) }
func BenchmarkForward64K(b *testing.B)  { benchForward(b, 1<<16) }
func BenchmarkForward512K(b *testing.B) { benchForward(b, 1<<19) }

// The Radix2 twins pin the legacy kernel at the same sizes, so the radix-4
// margin is tracked in every `go test -bench` run rather than asserted.
func BenchmarkForward64KRadix2(b *testing.B)  { benchForwardRadix2(b, 1<<16) }
func BenchmarkForward512KRadix2(b *testing.B) { benchForwardRadix2(b, 1<<19) }

func benchForwardRadix2(b *testing.B, n int) {
	prevSoA := SetSoA(false) // the radix toggle is dead while SoA dispatches first
	defer SetSoA(prevSoA)
	prev := SetRadix4(false)
	defer SetRadix4(prev)
	benchForward(b, n)
}

func benchForward(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(9))
	a := randVec(rng, n)
	buf := make([]complex128, n)
	p := PlanFor(n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, a)
		p.Forward(buf)
	}
}
