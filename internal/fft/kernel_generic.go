package fft

// Portable split-plane butterfly kernels. These are compiled on every
// platform: they are the whole kernel when no assembly exists (or under the
// amop_purego build tag), the fallback when the CPU lacks the required
// vector extensions, and the parity oracle the assembly is tested against.
// The loops are written over pre-sliced lanes with the bounds checks
// hoisted, mirroring the complex kernel's butterflies4, so the generic SoA
// path costs what the layout costs — not what naive indexing would add.

// bfly4RangeGeneric applies radix-4 butterflies j in [jLo, jHi) within the
// block of size 4*h starting at base, reading the stage's packed twiddles
// w1 = w^j and w2 = w^2j. The butterfly algebra matches the complex
// kernel's butterflies4 exactly: the inner radix-2 pair uses w^2j, the
// outer pair w^j with the second half folded to -i*w^j via w^h = -i.
func bfly4RangeGeneric(re, im []float64, base int, st *soaStage, jLo, jHi int) {
	h := st.h
	r0 := re[base : base+h]
	r1 := re[base+h : base+2*h]
	r2 := re[base+2*h : base+3*h]
	r3 := re[base+3*h : base+4*h]
	i0 := im[base : base+h]
	i1 := im[base+h : base+2*h]
	i2 := im[base+2*h : base+3*h]
	i3 := im[base+3*h : base+4*h]
	w1r, w1i, w2r, w2i := st.w1r, st.w1i, st.w2r, st.w2i
	_, _, _, _ = r0[jHi-1], r1[jHi-1], r2[jHi-1], r3[jHi-1]
	_, _, _, _ = i0[jHi-1], i1[jHi-1], i2[jHi-1], i3[jHi-1]
	_, _, _, _ = w1r[jHi-1], w1i[jHi-1], w2r[jHi-1], w2i[jHi-1]
	for j := jLo; j < jHi; j++ {
		ar, ai := w2r[j], w2i[j]
		x1r, x1i := r1[j], i1[j]
		t0r := x1r*ar - x1i*ai
		t0i := x1r*ai + x1i*ar
		x0r, x0i := r0[j], i0[j]
		u0r, u0i := x0r+t0r, x0i+t0i
		u1r, u1i := x0r-t0r, x0i-t0i
		x3r, x3i := r3[j], i3[j]
		t1r := x3r*ar - x3i*ai
		t1i := x3r*ai + x3i*ar
		x2r, x2i := r2[j], i2[j]
		u2r, u2i := x2r+t1r, x2i+t1i
		u3r, u3i := x2r-t1r, x2i-t1i
		br, bi := w1r[j], w1i[j]
		t2r := u2r*br - u2i*bi
		t2i := u2r*bi + u2i*br
		vr := u3r*br - u3i*bi
		vi := u3r*bi + u3i*br
		// t3 = -i * v
		r0[j], i0[j] = u0r+t2r, u0i+t2i
		r2[j], i2[j] = u0r-t2r, u0i-t2i
		r1[j], i1[j] = u1r+vi, u1i-vr
		r3[j], i3[j] = u1r-vi, u1i+vr
	}
}

// bfly2RangeGeneric applies the span-n radix-2 butterflies j in [jLo, jHi):
// half is n/2, twiddles are the split base table at unit stride.
func bfly2RangeGeneric(re, im, twRe, twIm []float64, half, jLo, jHi int) {
	r0 := re[:half]
	r1 := re[half : 2*half]
	i0 := im[:half]
	i1 := im[half : 2*half]
	_, _, _, _ = r0[jHi-1], r1[jHi-1], i0[jHi-1], i1[jHi-1]
	_, _ = twRe[jHi-1], twIm[jHi-1]
	for j := jLo; j < jHi; j++ {
		wr, wi := twRe[j], twIm[j]
		x1r, x1i := r1[j], i1[j]
		tr := x1r*wr - x1i*wi
		ti := x1r*wi + x1i*wr
		x0r, x0i := r0[j], i0[j]
		r0[j], i0[j] = x0r+tr, x0i+ti
		r1[j], i1[j] = x0r-tr, x0i-ti
	}
}
