package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// withRadix2 runs fn with the radix-2 kernel selected, restoring the prior
// settings afterwards. The radix toggle only reaches the dispatch when the
// SoA path is off (SoA checks first), so this disables SoA too — otherwise
// the radix-2 arm of every A/B would silently run the SoA kernel.
func withRadix2(fn func()) {
	prevSoA := SetSoA(false)
	defer SetSoA(prevSoA)
	prev := SetRadix4(false)
	defer SetRadix4(prev)
	fn()
}

// radixParitySizes covers the degenerate transforms (1, 2, 4), every odd-log2
// shape up to 512 (which exercises the leading radix-2 stage), and the even
// shapes in between.
var radixParitySizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// TestRadix4MatchesRadix2AndNaive pins the three-way parity of the kernels:
// for each size, forward and inverse transforms under radix-4 must agree with
// the radix-2 kernel and with the O(n^2) DFT within 1e-9, and the radix-4
// round trip must recover the input.
func TestRadix4MatchesRadix2AndNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range radixParitySizes {
		for _, inverse := range []bool{false, true} {
			a := randVec(rng, n)
			want := naiveDFT(a, inverse)
			p := PlanFor(n)

			r4 := append([]complex128(nil), a...)
			withComplexKernel(func() {
				if inverse {
					p.Inverse(r4)
				} else {
					p.Forward(r4)
				}
			})

			r2 := append([]complex128(nil), a...)
			withRadix2(func() {
				if inverse {
					p.Inverse(r2)
				} else {
					p.Forward(r2)
				}
			})

			if d := maxAbsDiff(r4, want); d > 1e-9 {
				t.Errorf("n=%d inverse=%v: radix-4 differs from naive DFT by %g", n, inverse, d)
			}
			if d := maxAbsDiff(r4, r2); d > 1e-9 {
				t.Errorf("n=%d inverse=%v: radix-4 differs from radix-2 by %g", n, inverse, d)
			}
		}

		a := randVec(rng, n)
		rt := append([]complex128(nil), a...)
		p := PlanFor(n)
		withComplexKernel(func() {
			p.Forward(rt)
			p.Inverse(rt)
		})
		if d := maxAbsDiff(rt, a); d > 1e-9 {
			t.Errorf("n=%d: radix-4 round trip error %g", n, d)
		}
	}
}

// TestRadix4RoundTripQuick is the property form: on arbitrary input vectors
// across a mix of even- and odd-log2 sizes, radix-4 forward+inverse recovers
// the input and matches radix-2 bin for bin.
func TestRadix4RoundTripQuick(t *testing.T) {
	sizes := []int{2, 8, 64, 128}
	idx := 0
	prop := func(re, im [128]float64) bool {
		n := sizes[idx%len(sizes)]
		idx++
		a := make([]complex128, n)
		for i := range a {
			// quick generates magnitudes up to MaxFloat64; scale into a range
			// whose partial sums cannot overflow (the property is scale-free).
			a[i] = complex(re[i]/1e300, im[i]/1e300)
		}
		p := PlanFor(n)

		r4 := append([]complex128(nil), a...)
		withComplexKernel(func() { p.Forward(r4) })
		r2 := append([]complex128(nil), a...)
		withRadix2(func() { p.Forward(r2) })
		for i := range r4 {
			scale := 1 + cmplx.Abs(r2[i])
			if cmplx.Abs(r4[i]-r2[i]) > 1e-9*scale {
				return false
			}
		}

		withComplexKernel(func() { p.Inverse(r4) })
		for i := range a {
			scale := 1 + cmplx.Abs(a[i])
			if cmplx.Abs(r4[i]-a[i]) > 1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRadix4RPlanParity pins the real-input path, whose inner complex
// transform runs at n/2: the half spectrum and the real round trip must agree
// between the kernels within 1e-9 across the RPlan packing edge cases — n=1
// (DC only), n=2 (empty recombination loop), n=4 (Nyquist-pair bin only), the
// self-paired-bin sizes, and odd-log2 inner sizes.
func TestRadix4RPlanParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		x := randReal(rng, n)
		rp := RPlanFor(n)

		spec4 := make([]complex128, rp.HalfLen())
		withComplexKernel(func() { rp.Forward(append([]float64(nil), x...), spec4) })
		spec2 := make([]complex128, rp.HalfLen())
		withRadix2(func() { rp.Forward(append([]float64(nil), x...), spec2) })
		if d := maxAbsDiff(spec4, spec2); d > 1e-9 {
			t.Errorf("n=%d: radix-4 half spectrum differs from radix-2 by %g", n, d)
		}

		a := make([]complex128, n)
		for i, v := range x {
			a[i] = complex(v, 0)
		}
		naive := naiveDFT(a, false)
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(spec4[k] - naive[k]); d > 1e-9 {
				t.Errorf("n=%d k=%d: radix-4 half spectrum differs from naive DFT by %g", n, k, d)
			}
		}

		out := make([]float64, n)
		withComplexKernel(func() { rp.Inverse(spec4, out) })
		for i := range x {
			if math.Abs(out[i]-x[i]) > 1e-9 {
				t.Errorf("n=%d: radix-4 real round trip error %g at %d", n, out[i]-x[i], i)
				break
			}
		}
	}
}

// TestRadix4ParallelMatchesSerial verifies the radix-4 parallel staging
// performs bit-identical arithmetic to the serial pass, on both an even- and
// an odd-log2 transform large enough to trigger it.
func TestRadix4ParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	prevThresh := SetParThreshold(1 << 6)
	defer SetParThreshold(prevThresh)
	for _, n := range []int{1 << 8, 1 << 9} {
		for _, inverse := range []bool{false, true} {
			a := randVec(rng, n)
			p := PlanFor(n)

			serial := append([]complex128(nil), a...)
			p.permute(serial)
			p.transform4(serial, inverse)

			parallel := append([]complex128(nil), a...)
			p.permute(parallel)
			p.transformPar4(parallel, inverse)

			if d := maxAbsDiff(parallel, serial); d > 0 {
				t.Errorf("n=%d inverse=%v: parallel radix-4 differs from serial by %g (want bit-identical)", n, inverse, d)
			}
		}
	}
}

// TestSetParThreshold checks the setter returns the previous value, that
// n <= 0 restores the default, and that a tiny threshold (forcing the
// parallel path onto small transforms) preserves parity with the naive DFT.
func TestSetParThreshold(t *testing.T) {
	orig := ParThreshold()
	if prev := SetParThreshold(64); prev != orig {
		t.Errorf("SetParThreshold returned %d, want previous value %d", prev, orig)
	}
	if got := ParThreshold(); got != 64 {
		t.Errorf("ParThreshold() = %d after SetParThreshold(64)", got)
	}
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{128, 256} {
		a := randVec(rng, n)
		got := append([]complex128(nil), a...)
		PlanFor(n).Forward(got)
		if d := maxAbsDiff(got, naiveDFT(a, false)); d > 1e-9 {
			t.Errorf("n=%d with threshold 64: differs from naive DFT by %g", n, d)
		}
	}
	if prev := SetParThreshold(0); prev != 64 {
		t.Errorf("SetParThreshold(0) returned %d, want 64", prev)
	}
	if got := ParThreshold(); got != 1<<13 {
		t.Errorf("ParThreshold() = %d after reset, want default %d", got, 1<<13)
	}
	SetParThreshold(orig)
}

// TestSetRadix4 checks the toggle round-trips its previous value.
func TestSetRadix4(t *testing.T) {
	if !Radix4() {
		t.Fatal("radix-4 must be the default")
	}
	if prev := SetRadix4(false); !prev {
		t.Error("SetRadix4(false) did not report the enabled default")
	}
	if Radix4() {
		t.Error("Radix4() still true after SetRadix4(false)")
	}
	if prev := SetRadix4(true); prev {
		t.Error("SetRadix4(true) did not report the disabled state")
	}
}

// TestRadix4NotSlowerSmoke is the CI bench-smoke gate: the radix-4 kernel
// must not regress below the radix-2 kernel it replaced. It times both
// kernels back to back in-process (median of several rounds, so scheduler
// noise on shared runners does not flake it) and fails if radix-4 is slower
// beyond a 5% tolerance. Opt-in via AMOP_BENCH_SMOKE=1 — wall-clock
// assertions do not belong in the default tier-1 run.
func TestRadix4NotSlowerSmoke(t *testing.T) {
	if os.Getenv("AMOP_BENCH_SMOKE") == "" {
		t.Skip("set AMOP_BENCH_SMOKE=1 to run the radix-4 vs radix-2 timing gate")
	}
	const n = 1 << 16
	// Pin the complex kernels: with SoA on, transform() never consults the
	// radix toggle and both arms would time the same SoA kernel.
	prevSoA := SetSoA(false)
	defer SetSoA(prevSoA)
	rng := rand.New(rand.NewSource(45))
	src := randVec(rng, n)
	buf := make([]complex128, n)
	p := PlanFor(n)
	run := func() {
		copy(buf, src)
		p.Forward(buf)
	}
	run() // warm the plan and the page cache
	median := func() float64 {
		times := make([]float64, 0, 5)
		for round := 0; round < 5; round++ {
			start := time.Now()
			for rep := 0; rep < 8; rep++ {
				run()
			}
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		return times[len(times)/2]
	}
	r4 := median()
	prev := SetRadix4(false)
	r2 := median()
	SetRadix4(prev)
	t.Logf("radix-4 %.4gs, radix-2 %.4gs (%.2fx) at n=%d", r4, r2, r2/r4, n)
	if r4 > r2*1.05 {
		t.Errorf("radix-4 kernel slower than radix-2: %.4gs vs %.4gs", r4, r2)
	}
}

// TestPrewarmPopulatesPlanCaches checks Prewarm installs the whole plan
// ladder, so a later PlanFor/RPlanFor is a pure cache hit.
func TestPrewarmPopulatesPlanCaches(t *testing.T) {
	Prewarm(1000) // ladder up to 1024
	for s := 1; s <= 1024; s <<= 1 {
		if _, ok := planCache.Load(s); !ok {
			t.Errorf("Prewarm(1000) did not cache the complex plan of size %d", s)
		}
		if _, ok := rplanCache.Load(s); !ok {
			t.Errorf("Prewarm(1000) did not cache the real plan of size %d", s)
		}
	}
}
