// Package fft implements the fast Fourier transform substrate used by the
// linear-stencil machinery (Ahmad et al., SPAA 2021 — reference [1] of the
// paper). It is a self-contained, allocation-conscious, parallel radix-2
// implementation over complex128:
//
//   - iterative Cooley-Tukey decimation-in-time with a precomputed twiddle
//     table and bit-reversal permutation;
//   - stage-level parallelism via internal/par for large transforms;
//   - exact complex integer powers by binary exponentiation (used to raise a
//     stencil's symbol to the k-th power with ~log2(k)-ulp error growth);
//   - a process-wide plan cache, since the option-pricing recursion requests
//     many transforms of identical sizes.
//
// Only power-of-two sizes are supported; callers pad with NextPow2.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"github.com/nlstencil/amop/internal/par"
)

// parThreshold is the transform size at or above which stages run in
// parallel. Below it the fork-join overhead exceeds the butterfly work.
const parThreshold = 1 << 13

// Plan holds the precomputed tables for transforms of one fixed size.
// A Plan is safe for concurrent use: all fields are read-only after creation.
type Plan struct {
	n    int
	rev  []int32      // bit-reversal permutation
	tw   []complex128 // tw[k] = exp(-2*pi*i*k/n), k in [0, n/2)
	half int
}

// NewPlan creates a plan for transforms of size n. n must be a power of two
// and at least 1.
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	p := &Plan{n: n, half: n / 2}
	p.rev = make([]int32, n)
	shift := bits.UintSize - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse(uint(i)) >> shift)
	}
	p.tw = make([]complex128, p.half)
	for k := 0; k < p.half; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(c, s)
	}
	return p
}

// Size returns the transform size of the plan.
func (p *Plan) Size() int { return p.n }

var planCache sync.Map // int -> *Plan

// PlanFor returns a cached plan of size n, creating it on first use.
func PlanFor(n int) *Plan {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan)
	}
	p := NewPlan(n)
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan)
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place forward DFT of a:
// A[f] = sum_j a[j] * exp(-2*pi*i*j*f/n).
func (p *Plan) Forward(a []complex128) {
	addTransformed(16 * p.n)
	p.transform(a, false)
}

// Inverse computes the in-place inverse DFT of a, including the 1/n scaling,
// so that Inverse(Forward(a)) == a up to rounding.
func (p *Plan) Inverse(a []complex128) {
	addTransformed(16 * p.n)
	p.transform(a, true)
	inv := complex(1/float64(p.n), 0)
	if p.n >= parThreshold {
		p.scalePar(a, inv)
		return
	}
	for i := range a {
		a[i] *= inv
	}
}

// scalePar lives in its own function so Inverse's hot serial path carries no
// closure: a parameter captured by an escaping func literal is boxed on every
// call, even when the parallel branch is never taken.
func (p *Plan) scalePar(a []complex128, inv complex128) {
	par.For(p.n, 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] *= inv
		}
	})
}

func (p *Plan) transform(a []complex128, inverse bool) {
	n := p.n
	if len(a) != n {
		panic(fmt.Sprintf("fft: input length %d does not match plan size %d", len(a), n))
	}
	if n == 1 {
		return
	}
	p.permute(a)
	if n >= parThreshold && par.Workers() > 1 {
		p.transformPar(a, inverse)
		return
	}
	for size := 2; size <= n; size <<= 1 {
		p.stageSerial(a, 0, n/size, size, size>>1, n/size, inverse)
	}
}

// transformPar runs the stage loop with parallel butterflies. Kept separate
// from transform so the small-transform path allocates nothing (see
// scalePar).
func (p *Plan) transformPar(a []complex128, inverse bool) {
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		blocks := n / size
		switch {
		case blocks >= 2*par.Workers():
			par.For(blocks, 1, func(lo, hi int) {
				p.stageSerial(a, lo, hi, size, half, step, inverse)
			})
		default:
			// Few large blocks: split each block's butterfly range instead.
			for b := 0; b < blocks; b++ {
				base := b * size
				par.For(half, 2048, func(lo, hi int) {
					p.butterflies(a, base, lo, hi, half, step, inverse)
				})
			}
		}
	}
}

// permute applies the bit-reversal permutation in place.
func (p *Plan) permute(a []complex128) {
	for i, r := range p.rev {
		if int32(i) < r {
			a[i], a[r] = a[r], a[i]
		}
	}
}

func (p *Plan) stageSerial(a []complex128, blockLo, blockHi, size, half, step int, inverse bool) {
	for b := blockLo; b < blockHi; b++ {
		p.butterflies(a, b*size, 0, half, half, step, inverse)
	}
}

// butterflies applies butterflies j in [jLo, jHi) within the block starting
// at base. half and step describe the current stage geometry.
func (p *Plan) butterflies(a []complex128, base, jLo, jHi, half, step int, inverse bool) {
	if inverse {
		for j := jLo; j < jHi; j++ {
			w := p.tw[j*step]
			w = complex(real(w), -imag(w))
			lo, hi := base+j, base+j+half
			t := a[hi] * w
			a[hi] = a[lo] - t
			a[lo] += t
		}
		return
	}
	for j := jLo; j < jHi; j++ {
		w := p.tw[j*step]
		lo, hi := base+j, base+j+half
		t := a[hi] * w
		a[hi] = a[lo] - t
		a[lo] += t
	}
}

// Pow returns z raised to the non-negative integer power k by binary
// exponentiation. Unlike polar-form powering (r^k * e^{i*k*theta}), the
// relative error grows only like log2(k) ulps, which matters when k is the
// number of stencil time steps (up to millions).
func Pow(z complex128, k int) complex128 {
	if k < 0 {
		panic("fft: Pow requires k >= 0")
	}
	result := complex(1, 0)
	for k > 0 {
		if k&1 == 1 {
			result *= z
		}
		z *= z
		k >>= 1
	}
	return result
}
