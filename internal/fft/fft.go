// Package fft implements the fast Fourier transform substrate used by the
// linear-stencil machinery (Ahmad et al., SPAA 2021 — reference [1] of the
// paper). It is a self-contained, allocation-conscious, parallel
// implementation over complex128:
//
//   - iterative Cooley-Tukey decimation-in-time over a precomputed twiddle
//     table and bit-reversal permutation, with a mixed radix-4/radix-2
//     kernel: pairs of consecutive radix-2 stages are fused into 4-way
//     butterflies (the first two stages into a trivial-twiddle pass), which
//     halves the number of passes over the data and cuts the twiddle
//     multiplies by a quarter — the plain radix-2 kernel is kept selectable
//     via SetRadix4(false) for A/B comparison;
//   - stage-level parallelism via internal/par for large transforms;
//   - exact complex integer powers by binary exponentiation (used to raise a
//     stencil's symbol to the k-th power with ~log2(k)-ulp error growth);
//   - a process-wide plan cache, since the option-pricing recursion requests
//     many transforms of identical sizes.
//
// Only power-of-two sizes are supported; callers pad with NextPow2.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"github.com/nlstencil/amop/internal/par"
)

// defaultParThreshold is the transform size at or above which stages run in
// parallel. Below it the fork-join overhead exceeds the butterfly work.
const defaultParThreshold = 1 << 13

// parThresholdV holds the current parallel-stage threshold; see
// SetParThreshold.
var parThresholdV atomic.Int64

// radix4Enabled selects the mixed radix-4/radix-2 kernel (the default); see
// SetRadix4.
var radix4Enabled atomic.Bool

func init() {
	parThresholdV.Store(defaultParThreshold)
	radix4Enabled.Store(true)
}

func parThreshold() int { return int(parThresholdV.Load()) }

// ParThreshold reports the transform size at or above which stages run in
// parallel.
func ParThreshold() int { return parThreshold() }

// SetParThreshold sets the transform size at or above which transforms use
// stage-level parallelism and returns the previous value; n <= 0 restores the
// default (1<<13). It exists so the harness's A/B experiments can isolate
// fork-join overhead from kernel speed; leave it at the default in
// production.
func SetParThreshold(n int) int {
	if n <= 0 {
		n = defaultParThreshold
	}
	return int(parThresholdV.Swap(int64(n)))
}

// Radix4 reports whether the mixed radix-4/radix-2 kernel is enabled.
func Radix4() bool { return radix4Enabled.Load() }

// SetRadix4 enables or disables the radix-4 kernel and returns the previous
// setting. The radix-2 kernel is kept for benchmarking and parity testing;
// leave radix-4 enabled in production. Note the SoA path dispatches before
// the radix toggle is consulted, so a radix-4-vs-radix-2 A/B must also pin
// SetSoA(false) to be meaningful.
func SetRadix4(enabled bool) bool { return radix4Enabled.Swap(enabled) }

// Plan holds the precomputed tables for transforms of one fixed size.
// A Plan is safe for concurrent use: the core tables are read-only after
// creation and the lazily-built SoA twiddle tables are guarded by a
// sync.Once (immutable once published).
type Plan struct {
	n    int
	rev  []int32      // bit-reversal permutation
	tw   []complex128 // tw[k] = exp(-2*pi*i*k/n), k in [0, n/2)
	half int

	soaOnce sync.Once
	soaT    *soaTables // split-plane twiddles, built on first SoA transform
}

// NewPlan creates a plan for transforms of size n. n must be a power of two
// and at least 1.
func NewPlan(n int) *Plan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	p := &Plan{n: n, half: n / 2}
	p.rev = make([]int32, n)
	shift := bits.UintSize - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse(uint(i)) >> shift)
	}
	p.tw = make([]complex128, p.half)
	for k := 0; k < p.half; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(c, s)
	}
	return p
}

// Size returns the transform size of the plan.
func (p *Plan) Size() int { return p.n }

var planCache sync.Map // int -> *Plan

// PlanFor returns a cached plan of size n, creating it on first use.
func PlanFor(n int) *Plan {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan)
	}
	p := NewPlan(n)
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan)
}

// Prewarm builds and caches the complex and real-input plans for every
// power-of-two size up to NextPow2(n). The batch engine calls it once per
// batch at the largest transform size its solves can request, so twiddle
// tables are constructed once, up front, instead of racing across the first
// wave of workers (plan-cache losers discard their construction work).
func Prewarm(n int) {
	N := NextPow2(n)
	for s := 1; s <= N; s <<= 1 {
		p := PlanFor(s)
		if soaEnabled.Load() && s >= 4 {
			p.soa()
		}
		RPlanFor(s)
	}
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place forward DFT of a:
// A[f] = sum_j a[j] * exp(-2*pi*i*j*f/n).
func (p *Plan) Forward(a []complex128) {
	addTransformed(16 * p.n)
	p.transform(a, false)
}

// Inverse computes the in-place inverse DFT of a, including the 1/n scaling,
// so that Inverse(Forward(a)) == a up to rounding.
func (p *Plan) Inverse(a []complex128) {
	addTransformed(16 * p.n)
	p.transform(a, true)
	inv := complex(1/float64(p.n), 0)
	if p.n >= parThreshold() {
		p.scalePar(a, inv)
		return
	}
	for i := range a {
		a[i] *= inv
	}
}

// scalePar lives in its own function so Inverse's hot serial path carries no
// closure: a parameter captured by an escaping func literal is boxed on every
// call, even when the parallel branch is never taken.
func (p *Plan) scalePar(a []complex128, inv complex128) {
	par.For(p.n, 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] *= inv
		}
	})
}

func (p *Plan) transform(a []complex128, inverse bool) {
	n := p.n
	if len(a) != n {
		panic(fmt.Sprintf("fft: input length %d does not match plan size %d", len(a), n))
	}
	if n == 1 {
		return
	}
	if p.soaEligible() {
		p.soaTransform(a, inverse)
		return
	}
	p.permute(a)
	r4 := radix4Enabled.Load()
	if n >= parThreshold() && par.Workers() > 1 {
		if r4 {
			p.transformPar4(a, inverse)
		} else {
			p.transformPar(a, inverse)
		}
		return
	}
	if r4 {
		p.transform4(a, inverse)
		return
	}
	for size := 2; size <= n; size <<= 1 {
		p.stageSerial(a, 0, n/size, size, size>>1, n/size, inverse)
	}
}

// transform4 runs the serial mixed radix-4/radix-2 stage loop: an odd number
// of radix-2 stages is led by one trivial-twiddle size-2 sweep, then every
// remaining pair of radix-2 stages is fused into one radix-4 pass, so the
// data makes ~log4(n) trips through memory instead of log2(n).
func (p *Plan) transform4(a []complex128, inverse bool) {
	n := p.n
	h := 1
	if bits.TrailingZeros(uint(n))&1 == 1 {
		stage2(a, 0, n/2)
		h = 2
	}
	for ; h < n; h *= 4 {
		p.stage4Serial(a, 0, n/(4*h), h, n/(4*h), inverse)
	}
}

// transformPar4 is transform4 with parallel passes, mirroring transformPar's
// stage shape: many small blocks parallelize across blocks, few large blocks
// split each block's butterfly range instead.
func (p *Plan) transformPar4(a []complex128, inverse bool) {
	n := p.n
	h := 1
	if bits.TrailingZeros(uint(n))&1 == 1 {
		par.For(n/2, 2048, func(lo, hi int) { stage2(a, lo, hi) })
		h = 2
	}
	for ; h < n; h *= 4 {
		hh := h
		step := n / (4 * hh)
		blocks := step // one twiddle stride per block: both equal n/(4h)
		switch {
		case blocks >= 2*par.Workers():
			par.For(blocks, 1, func(lo, hi int) {
				p.stage4Serial(a, lo, hi, hh, step, inverse)
			})
		default:
			for b := 0; b < blocks; b++ {
				base := b * 4 * hh
				par.For(hh, 2048, func(lo, hi int) {
					p.butterflies4(a, base, lo, hi, hh, step, inverse)
				})
			}
		}
	}
}

// stage2 applies the trivial size-2 stage (twiddle 1, identical forward and
// inverse) to index pairs (2i, 2i+1) for i in [lo, hi).
func stage2(a []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		x, y := a[2*i], a[2*i+1]
		a[2*i], a[2*i+1] = x+y, x-y
	}
}

// stage4Serial applies one radix-4 pass to blocks [blockLo, blockHi), each of
// size 4*h, combining four completed size-h sub-transforms into one of size
// 4*h. The first pass (h == 1, the fusion of the first two radix-2 stages)
// has only trivial twiddles {1, -i} and runs without table loads.
func (p *Plan) stage4Serial(a []complex128, blockLo, blockHi, h, step int, inverse bool) {
	if h == 1 {
		stage4First(a[4*blockLo:4*blockHi], inverse)
		return
	}
	for b := blockLo; b < blockHi; b++ {
		p.butterflies4(a, b*4*h, 0, h, h, step, inverse)
	}
}

// stage4First is the fused first two stages: radix-4 butterflies over
// contiguous quads with twiddles 1 and -i (+i for the inverse), so the pass
// is pure adds plus one component swap.
func stage4First(a []complex128, inverse bool) {
	if inverse {
		for i := 0; i+3 < len(a); i += 4 {
			x0, x1, x2, x3 := a[i], a[i+1], a[i+2], a[i+3]
			u0, u1 := x0+x1, x0-x1
			u2, u3 := x2+x3, x2-x3
			t3 := mulI(u3)
			a[i], a[i+2] = u0+u2, u0-u2
			a[i+1], a[i+3] = u1+t3, u1-t3
		}
		return
	}
	for i := 0; i+3 < len(a); i += 4 {
		x0, x1, x2, x3 := a[i], a[i+1], a[i+2], a[i+3]
		u0, u1 := x0+x1, x0-x1
		u2, u3 := x2+x3, x2-x3
		t3 := mulNegI(u3)
		a[i], a[i+2] = u0+u2, u0-u2
		a[i+1], a[i+3] = u1+t3, u1-t3
	}
}

// butterflies4 applies the fused-pair (radix-4) butterflies j in [jLo, jHi)
// within the block of size 4*h starting at base; step = n/(4*h) is the
// twiddle stride of the combined stage. Each butterfly performs exactly the
// arithmetic of the two underlying radix-2 stages — twiddles w^j and w^2j for
// the inner stage, and the outer stage's w^(j+h) folded to -i*w^j via
// w^h = -i — reading both from the plan's radix-2 twiddle table. The four
// lanes are re-sliced up front so the bounds checks hoist out of the loop.
func (p *Plan) butterflies4(a []complex128, base, jLo, jHi, h, step int, inverse bool) {
	s0 := a[base : base+h]
	s1 := a[base+h : base+2*h]
	s2 := a[base+2*h : base+3*h]
	s3 := a[base+3*h : base+4*h]
	tw := p.tw
	_, _, _, _ = s0[jHi-1], s1[jHi-1], s2[jHi-1], s3[jHi-1]
	_ = tw[2*(jHi-1)*step]
	if inverse {
		for j := jLo; j < jHi; j++ {
			w1 := tw[j*step]
			w1 = complex(real(w1), -imag(w1))
			w2 := tw[2*j*step]
			w2 = complex(real(w2), -imag(w2))
			x0, x1, x2, x3 := s0[j], s1[j], s2[j], s3[j]
			t0 := x1 * w2
			u0, u1 := x0+t0, x0-t0
			t1 := x3 * w2
			u2, u3 := x2+t1, x2-t1
			t2 := u2 * w1
			t3 := mulI(u3 * w1)
			s0[j], s2[j] = u0+t2, u0-t2
			s1[j], s3[j] = u1+t3, u1-t3
		}
		return
	}
	for j := jLo; j < jHi; j++ {
		w1 := tw[j*step]
		w2 := tw[2*j*step]
		x0, x1, x2, x3 := s0[j], s1[j], s2[j], s3[j]
		t0 := x1 * w2
		u0, u1 := x0+t0, x0-t0
		t1 := x3 * w2
		u2, u3 := x2+t1, x2-t1
		t2 := u2 * w1
		t3 := mulNegI(u3 * w1)
		s0[j], s2[j] = u0+t2, u0-t2
		s1[j], s3[j] = u1+t3, u1-t3
	}
}

// transformPar runs the stage loop with parallel butterflies. Kept separate
// from transform so the small-transform path allocates nothing (see
// scalePar).
func (p *Plan) transformPar(a []complex128, inverse bool) {
	n := p.n
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		blocks := n / size
		switch {
		case blocks >= 2*par.Workers():
			par.For(blocks, 1, func(lo, hi int) {
				p.stageSerial(a, lo, hi, size, half, step, inverse)
			})
		default:
			// Few large blocks: split each block's butterfly range instead.
			for b := 0; b < blocks; b++ {
				base := b * size
				par.For(half, 2048, func(lo, hi int) {
					p.butterflies(a, base, lo, hi, half, step, inverse)
				})
			}
		}
	}
}

// permute applies the bit-reversal permutation in place.
func (p *Plan) permute(a []complex128) {
	for i, r := range p.rev {
		if int32(i) < r {
			a[i], a[r] = a[r], a[i]
		}
	}
}

func (p *Plan) stageSerial(a []complex128, blockLo, blockHi, size, half, step int, inverse bool) {
	for b := blockLo; b < blockHi; b++ {
		p.butterflies(a, b*size, 0, half, half, step, inverse)
	}
}

// butterflies applies butterflies j in [jLo, jHi) within the block starting
// at base. half and step describe the current stage geometry.
func (p *Plan) butterflies(a []complex128, base, jLo, jHi, half, step int, inverse bool) {
	if inverse {
		for j := jLo; j < jHi; j++ {
			w := p.tw[j*step]
			w = complex(real(w), -imag(w))
			lo, hi := base+j, base+j+half
			t := a[hi] * w
			a[hi] = a[lo] - t
			a[lo] += t
		}
		return
	}
	for j := jLo; j < jHi; j++ {
		w := p.tw[j*step]
		lo, hi := base+j, base+j+half
		t := a[hi] * w
		a[hi] = a[lo] - t
		a[lo] += t
	}
}

// Pow returns z raised to the non-negative integer power k by binary
// exponentiation. Unlike polar-form powering (r^k * e^{i*k*theta}), the
// relative error grows only like log2(k) ulps, which matters when k is the
// number of stencil time steps (up to millions).
func Pow(z complex128, k int) complex128 {
	if k < 0 {
		panic("fft: Pow requires k >= 0")
	}
	result := complex(1, 0)
	for k > 0 {
		if k&1 == 1 {
			result *= z
		}
		z *= z
		k >>= 1
	}
	return result
}
