//go:build amd64 && !amop_purego

package fft

// amd64 side of the kernel-dispatch seam: runtime CPU feature detection and
// the thin wrappers that route quad-aligned butterfly ranges into the AVX2
// assembly in kernel_amd64.s, falling back to the generic loops for
// misaligned edges, tiny stages, or when tests force the generic kernel.
// Builds with -tags amop_purego exclude this file (and the assembly)
// entirely; kernel_noasm.go then provides the same two entry points.

import "sync"

// kernelArch names the accelerated kernel this build can dispatch to.
const kernelArch = "avx2"

var (
	asmOnce sync.Once
	asmOK   bool
)

// kernelAsmAvailable reports whether the assembly kernel is usable: the
// binary carries it (build tags) and the CPU + OS expose AVX2, FMA, and
// saved YMM state. Detection runs once; the result is immutable.
func kernelAsmAvailable() bool {
	asmOnce.Do(func() { asmOK = detectAVX2() })
	return asmOK
}

// detectAVX2 checks CPUID for AVX2+FMA and XGETBV for OS-managed YMM state
// (the XGETBV read is gated on OSXSAVE, so it can never fault).
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 || ecx1&cpuidFMA == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const cpuidAVX2 = 1 << 5
	return ebx7&cpuidAVX2 != 0
}

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0. Callers must have verified OSXSAVE first.
func xgetbv0() (eax, edx uint32)

// bfly4AVX2 applies n radix-4 butterflies over the eight lane pointers and
// four packed twiddle pointers; n must be a positive multiple of 4.
//
//go:noescape
func bfly4AVX2(r0, r1, r2, r3, i0, i1, i2, i3, w1r, w1i, w2r, w2i *float64, n int)

// bfly2AVX2 applies n radix-2 butterflies over the four lane pointers with
// unit-stride twiddles; n must be a positive multiple of 4.
//
//go:noescape
func bfly2AVX2(r0, r1, i0, i1, wr, wi *float64, n int)

// bfly4Range dispatches radix-4 butterflies j in [jLo, jHi) of the block at
// base. Callers produce quad-aligned ranges for every stage the assembly
// can take (h is a multiple of 4 and parallel chunks are quad-granular);
// anything else lands on the generic kernel.
func bfly4Range(re, im []float64, base int, st *soaStage, jLo, jHi int) {
	n := jHi - jLo
	if n <= 0 {
		return
	}
	if n&3 != 0 || !kernelAsmAvailable() || soaForceGeneric.Load() {
		bfly4RangeGeneric(re, im, base, st, jLo, jHi)
		return
	}
	h := st.h
	bfly4AVX2(
		&re[base+jLo], &re[base+h+jLo], &re[base+2*h+jLo], &re[base+3*h+jLo],
		&im[base+jLo], &im[base+h+jLo], &im[base+2*h+jLo], &im[base+3*h+jLo],
		&st.w1r[jLo], &st.w1i[jLo], &st.w2r[jLo], &st.w2i[jLo], n)
}

// bfly2Range dispatches span-n radix-2 butterflies j in [jLo, jHi); half is
// n/2 and the twiddles are the split base table.
func bfly2Range(re, im, twRe, twIm []float64, half, jLo, jHi int) {
	n := jHi - jLo
	if n <= 0 {
		return
	}
	if n&3 != 0 || !kernelAsmAvailable() || soaForceGeneric.Load() {
		bfly2RangeGeneric(re, im, twRe, twIm, half, jLo, jHi)
		return
	}
	bfly2AVX2(&re[jLo], &re[half+jLo], &im[jLo], &im[half+jLo], &twRe[jLo], &twIm[jLo], n)
}
