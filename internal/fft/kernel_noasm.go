//go:build !amd64 || amop_purego

package fft

// Non-assembly side of the kernel-dispatch seam: platforms without the
// AVX2 kernel (or builds with -tags amop_purego) route every butterfly
// range straight to the portable split-plane loops. The SoA path therefore
// defaults off here (see soaEnabled's init) but remains fully functional
// for parity tests and explicit opt-in.

// kernelArch names the accelerated kernel this build can dispatch to; the
// generic build has none.
const kernelArch = "generic"

// kernelAsmAvailable reports whether an assembly kernel is compiled in.
func kernelAsmAvailable() bool { return false }

func bfly4Range(re, im []float64, base int, st *soaStage, jLo, jHi int) {
	if jHi > jLo {
		bfly4RangeGeneric(re, im, base, st, jLo, jHi)
	}
}

func bfly2Range(re, im, twRe, twIm []float64, half, jLo, jHi int) {
	if jHi > jLo {
		bfly2RangeGeneric(re, im, twRe, twIm, half, jLo, jHi)
	}
}
