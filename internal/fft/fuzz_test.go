package fft

import (
	"encoding/binary"
	"math"
	"math/cmplx"
	"testing"
)

// FuzzForwardInverseRoundTrip drives both transform kernels with arbitrary
// finite inputs. The fuzzer picks the transform size (every power of two up
// to 64, covering the sub-SoA degenerate sizes, the trailing radix-2 shapes,
// and the radix-4 ladder) and the sample values; the properties are:
//
//   - Inverse(Forward(a)) recovers a, under the SoA kernel (both butterfly
//     variants) and the complex kernel;
//   - both kernels' forward transforms agree with the O(n^2) DFT — an
//     absolute oracle, so a kernel bug cannot hide by breaking both
//     directions symmetrically;
//   - the real-input plane path matches the complex half spectrum.
//
// Values are squashed into a bounded range: overflow to Inf is not an
// interesting finding (the transform is linear), but any disagreement
// between kernels on finite data is.
func FuzzForwardInverseRoundTrip(f *testing.F) {
	f.Add(uint8(2), []byte{})
	f.Add(uint8(3), []byte{0x3f, 0xf0, 0, 0, 0, 0, 0, 0, 0x40, 0x08, 0, 0, 0, 0, 0, 0})
	f.Add(uint8(5), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(uint8(6), []byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88})
	f.Add(uint8(0), []byte{0x80})
	f.Fuzz(func(t *testing.T, lg uint8, data []byte) {
		n := 1 << (lg % 7) // 1 .. 64
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(fuzzSample(data, 2*i), fuzzSample(data, 2*i+1))
		}
		p := PlanFor(n)
		want := naiveDFT(a, false)

		check := func(label string) {
			fwd := append([]complex128(nil), a...)
			p.Forward(fwd)
			if d := maxAbsDiff(fwd, want); d > 1e-9 {
				t.Errorf("%s: n=%d forward differs from naive DFT by %g", label, n, d)
			}
			p.Inverse(fwd)
			if d := maxAbsDiff(fwd, a); d > 1e-9 {
				t.Errorf("%s: n=%d round trip error %g", label, n, d)
			}
		}
		withSoAKernel(func() {
			check("soa")
			withGenericSoA(func() { check("soa-generic") })
		})
		withComplexKernel(func() { check("complex") })

		// Real-input plane path vs the complex half spectrum of the same row.
		x := make([]float64, n)
		for i := range x {
			x[i] = real(a[i])
		}
		rp := RPlanFor(n)
		spec := make([]complex128, rp.HalfLen())
		rp.Forward(append([]float64(nil), x...), spec)
		sr := make([]float64, rp.HalfLen())
		si := make([]float64, rp.HalfLen())
		rp.ForwardSoA(append([]float64(nil), x...), sr, si)
		for k := range spec {
			if d := cmplx.Abs(complex(sr[k], si[k]) - spec[k]); d > 1e-9 {
				t.Errorf("rplan: n=%d k=%d plane spectrum differs by %g", n, k, d)
			}
		}
		out := make([]float64, n)
		rp.InverseSoA(sr, si, out)
		for i := range x {
			if math.Abs(out[i]-x[i]) > 1e-9 {
				t.Errorf("rplan: n=%d real round trip error %g at %d", n, out[i]-x[i], i)
				break
			}
		}
	})
}

// fuzzSample derives the idx-th sample from the fuzz payload: 8 bytes
// reinterpreted as a float64, squashed into [-1, 1] so partial sums stay
// finite for any input. Indices past the payload cycle through it (an empty
// payload yields zeros).
func fuzzSample(data []byte, idx int) float64 {
	if len(data) == 0 {
		return 0
	}
	var chunk [8]byte
	for j := range chunk {
		chunk[j] = data[(8*idx+j)%len(data)]
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(chunk[:]))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	// Squash arbitrary magnitudes smoothly; preserves sign and small values.
	return v / (1 + math.Abs(v))
}
