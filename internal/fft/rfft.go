package fft

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/nlstencil/amop/internal/par"
)

// The stencil machinery transforms purely real rows, but the baseline Plan
// runs them through a full complex128 FFT — twice the butterflies and twice
// the memory traffic actually required. RPlan is the real-input fast path:
// a forward real-to-half-spectrum transform and its inverse, built on the
// classic N/2-complex packing trick. The n real samples are viewed as n/2
// complex samples (even samples in the real lane, odd samples in the
// imaginary lane), transformed with the existing size-n/2 complex Plan —
// reusing its twiddle table, bit-reversal staging, and stage-level
// parallelism — and then unpacked into the half spectrum X[0..n/2] via the
// conjugate symmetry X[n-k] = conj(X[k]) of real input. Both directions run
// in place in the caller's buffers: the packing, the inner transform, and
// the symmetric unpacking all reuse the spectrum slice, so a transform
// allocates nothing.

// RPlan holds the precomputed tables for real-input transforms of one fixed
// size. An RPlan is safe for concurrent use: all fields are read-only after
// creation.
type RPlan struct {
	n     int
	half  int   // n / 2
	inner *Plan // complex plan of size n/2 (nil when n == 1)
	// rtw[k] = exp(-2*pi*i*k/n) for k in [0, n/2): the odd/even recombination
	// twiddles, which live on the size-n circle and therefore interleave the
	// inner plan's size-n/2 table.
	rtw []complex128
	// rtwRe/rtwIm are rtw split into planes for the SoA pack/unpack loops
	// (rfft_soa.go), which stay in float64 lanes end to end.
	rtwRe, rtwIm []float64
}

// NewRPlan creates a real-input plan for transforms of size n. n must be a
// power of two and at least 1.
func NewRPlan(n int) *RPlan {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	p := &RPlan{n: n, half: n / 2}
	if n == 1 {
		return p
	}
	p.inner = PlanFor(n / 2)
	p.rtw = make([]complex128, p.half)
	p.rtwRe = make([]float64, p.half)
	p.rtwIm = make([]float64, p.half)
	for k := range p.rtw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.rtw[k] = complex(c, s)
		p.rtwRe[k] = c
		p.rtwIm[k] = s
	}
	return p
}

// Size returns the transform size of the plan.
func (p *RPlan) Size() int { return p.n }

// HalfLen returns the half-spectrum length n/2 + 1.
func (p *RPlan) HalfLen() int { return p.half + 1 }

// Twiddle returns exp(-2*pi*i*k/n) for k in [0, n/2], read from the plan's
// precomputed table. Symbol evaluation at the half-spectrum frequencies uses
// this instead of per-frequency Sincos.
func (p *RPlan) Twiddle(k int) complex128 {
	if k == 0 {
		// Also covers the degenerate n == 1 plan, whose rtw table is empty
		// and whose only frequency is the DC bin.
		return complex(1, 0)
	}
	if k == p.half {
		return complex(-1, 0)
	}
	return p.rtw[k]
}

var rplanCache sync.Map // int -> *RPlan

// RPlanFor returns a cached real-input plan of size n, creating it on first
// use.
func RPlanFor(n int) *RPlan {
	if v, ok := rplanCache.Load(n); ok {
		return v.(*RPlan)
	}
	p := NewRPlan(n)
	actual, _ := rplanCache.LoadOrStore(n, p)
	return actual.(*RPlan)
}

// Forward computes the half spectrum of the real input x:
// spec[k] = sum_j x[j] * exp(-2*pi*i*j*k/n) for k in [0, n/2]. The remaining
// frequencies are determined by conjugate symmetry and are not stored.
// len(x) must be n and len(spec) must be n/2 + 1. spec's prior contents are
// ignored.
func (p *RPlan) Forward(x []float64, spec []complex128) {
	if len(x) != p.n || len(spec) != p.half+1 {
		panic(fmt.Sprintf("fft: RPlan size %d: got input %d, spectrum %d", p.n, len(x), len(spec)))
	}
	addTransformed(8 * p.n)
	if p.n == 1 {
		spec[0] = complex(x[0], 0)
		return
	}
	m := p.half
	// Pack: z[j] = x[2j] + i*x[2j+1] in spec[:m], then transform in place.
	z := spec[:m]
	if m >= parThreshold() {
		p.packPar(x, z)
	} else {
		packRange(x, z, 0, m)
	}
	p.inner.transform(z, false)

	// Unpack in place: for each pair (k, m-k), split Z into the spectra of
	// the even and odd sample streams and recombine on the size-n circle.
	// k = 0 (and the Nyquist bin m) read only z[0]; k = m/2 is self-paired.
	z0 := z[0]
	if lo, hi := 1, (m+1)/2; hi > lo {
		if m >= parThreshold() {
			p.unpackPar(spec, lo, hi)
		} else {
			p.unpackRange(spec, lo, hi)
		}
	}
	if m >= 2 && m%2 == 0 {
		k := m / 2
		zk := z[k]
		ek := (zk + conj(zk)) * 0.5
		ok := mulNegI(zk-conj(zk)) * 0.5
		spec[k] = ek + p.rtw[k]*ok
	}
	re0, im0 := real(z0), imag(z0)
	spec[0] = complex(re0+im0, 0)
	spec[m] = complex(re0-im0, 0)
}

func packRange(x []float64, z []complex128, lo, hi int) {
	for j := lo; j < hi; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
}

// unpackRange recombines spectrum pairs (k, m-k) for k in [lo, hi).
func (p *RPlan) unpackRange(spec []complex128, lo, hi int) {
	m := p.half
	rtw := p.rtw
	_, _ = spec[m-lo], rtw[hi-1]
	for k := lo; k < hi; k++ {
		zk, zmk := spec[k], spec[m-k]
		ek := (zk + conj(zmk)) * 0.5      // E[k], even-sample spectrum
		ok := mulNegI(zk-conj(zmk)) * 0.5 // O[k], odd-sample spectrum
		t := rtw[k] * ok
		spec[k] = ek + t // X[k] = E[k] + w^k O[k]
		// X[m-k] = E[m-k] - conj(w^k) O[m-k] with E[m-k] = conj(E[k]) and
		// O[m-k] = conj(O[k]) (w^(m-k) = -conj(w^k)), which folds to one
		// conjugation of the already-computed product: conj(E[k] - w^k O[k]).
		spec[m-k] = conj(ek - t)
	}
}

// packPar and unpackPar live in their own functions so Forward's serial path
// carries no closures (escaping func literals box their captures per call).
func (p *RPlan) packPar(x []float64, z []complex128) {
	par.For(len(z), 4096, func(lo, hi int) { packRange(x, z, lo, hi) })
}

func (p *RPlan) unpackPar(spec []complex128, lo, hi int) {
	par.For(hi-lo, 2048, func(a, b int) { p.unpackRange(spec, lo+a, lo+b) })
}

// Inverse recovers the real signal from its half spectrum, including the 1/n
// scaling, so that Inverse(Forward(x)) == x up to rounding. len(spec) must be
// n/2 + 1 and len(x) must be n. spec is destroyed in the process.
func (p *RPlan) Inverse(spec []complex128, x []float64) {
	if len(x) != p.n || len(spec) != p.half+1 {
		panic(fmt.Sprintf("fft: RPlan size %d: got input %d, spectrum %d", p.n, len(x), len(spec)))
	}
	addTransformed(8 * p.n)
	if p.n == 1 {
		x[0] = real(spec[0])
		return
	}
	m := p.half
	// Repack in place: Z[k] = E[k] + i*O[k] with E[k] = (X[k]+conj(X[m-k]))/2
	// and O[k] = conj(w^k) * (X[k]-conj(X[m-k]))/2; then one inverse complex
	// transform of size m interleaves the even and odd output samples. The
	// inverse's 1/m normalization is folded into the repack scale, saving the
	// separate scaling sweep Plan.Inverse would perform.
	scale := complex(0.5/float64(m), 0)
	x0, xm := spec[0], spec[m]
	if lo, hi := 1, (m+1)/2; hi > lo {
		if m >= parThreshold() {
			p.repackPar(spec, scale, lo, hi)
		} else {
			p.repackRange(spec, scale, lo, hi)
		}
	}
	if m >= 2 && m%2 == 0 {
		k := m / 2
		xk := spec[k]
		ek := (xk + conj(xk)) * scale
		ok := conj(p.rtw[k]) * (xk - conj(xk)) * scale
		spec[k] = ek + mulI(ok)
	}
	e0 := (real(x0) + real(xm)) * 0.5 / float64(m)
	o0 := (real(x0) - real(xm)) * 0.5 / float64(m)
	spec[0] = complex(e0, o0)

	z := spec[:m]
	p.inner.transform(z, true)
	if m >= parThreshold() {
		unzipPar(z, x)
	} else {
		unzipRange(z, x, 0, m)
	}
}

// repackRange rebuilds the packed spectrum Z for pairs (k, m-k), k in
// [lo, hi), with the inverse's 1/m normalization folded into scale.
func (p *RPlan) repackRange(spec []complex128, scale complex128, lo, hi int) {
	m := p.half
	rtw := p.rtw
	_, _ = spec[m-lo], rtw[hi-1]
	for k := lo; k < hi; k++ {
		xk, xmk := spec[k], spec[m-k]
		ek := (xk + conj(xmk)) * scale
		ok := conj(rtw[k]) * (xk - conj(xmk)) * scale
		spec[k] = ek + mulI(ok)
		// Z[m-k] = conj(E[k]) + i*conj(O[k]) = conj(E[k] - i*O[k]).
		spec[m-k] = conj(ek + mulNegI(ok))
	}
}

func unzipRange(z []complex128, x []float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		x[2*j] = real(z[j])
		x[2*j+1] = imag(z[j])
	}
}

func (p *RPlan) repackPar(spec []complex128, scale complex128, lo, hi int) {
	par.For(hi-lo, 2048, func(a, b int) { p.repackRange(spec, scale, lo+a, lo+b) })
}

func unzipPar(z []complex128, x []float64) {
	par.For(len(z), 4096, func(lo, hi int) { unzipRange(z, x, lo, hi) })
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }

// mulI returns i*z without a complex multiply.
func mulI(z complex128) complex128 { return complex(-imag(z), real(z)) }

// mulNegI returns -i*z without a complex multiply.
func mulNegI(z complex128) complex128 { return complex(imag(z), -real(z)) }

// transformedBytes counts the input bytes moved through every Plan and RPlan
// transform (8 per real sample, 16 per complex sample, one count per
// direction). The harness reads deltas around a solve to report how much
// transform traffic the real-input path saves.
var transformedBytes atomic.Int64

func addTransformed(n int) { transformedBytes.Add(int64(n)) }

// TransformedBytes returns the cumulative transform traffic in bytes.
func TransformedBytes() int64 { return transformedBytes.Load() }
