package fft

// Deinterleaved (structure-of-arrays) float64 kernels. Go's compiler will
// not vectorize complex128 arithmetic — every butterfly in the complex
// kernel runs as scalar MULSD/ADDSD no matter how wide the machine's vector
// units are. Splitting the data into separate re/im planes ("SoA") turns
// each butterfly stage into plain float64 lane arithmetic that a SIMD
// kernel can chew four lanes at a time; on amd64 with AVX2+FMA the
// butterflies run in hand-written assembly behind the dispatch seam in
// kernel_amd64.go / kernel_noasm.go, and everywhere else the portable
// split-plane loops in kernel_generic.go serve as fallback and parity
// oracle.
//
// The SoA transform restructures the stage ladder around the layout change
// rather than translating the complex kernel loop for loop:
//
//   - entry fuses three passes into one: the complex->planes deinterleave,
//     the bit-reversal permutation (a gather a[rev[i]] with sequential
//     writes, which beats the in-place swap walk), and the trivial-twiddle
//     first radix-4 butterfly (twiddles {1, -i}), so the data's first trip
//     through memory already completes two butterfly stages;
//   - the remaining radix-4 stages read their twiddles from per-stage
//     *packed* split tables (w^j and w^2j stored contiguously per j), so
//     the vector kernel issues unit-stride loads instead of the complex
//     kernel's strided tw[j*step] walk, and the conj-folded w^(j+h) = -i*w^j
//     identity is baked into the butterfly exactly as in the complex kernel;
//   - odd-log2 sizes finish with one radix-2 stage at span n (step-1
//     twiddles straight off the split base table) instead of leading with a
//     pairwise pass, keeping every vectorizable stage unit-stride;
//   - the inverse runs the same forward-only kernels under the conjugation
//     identity IDFT(Z) = conj(DFT(conj(Z)))/n, with both conjugations folded
//     into the entry gather and exit reinterleave passes, so only one
//     assembly direction exists;
//   - stages parallelize via internal/par with the same blocks-vs-lanes
//     split as the complex kernel's transformPar4.
//
// Scratch planes come from internal/scratch and are returned on every path.
// SetSoA(false) restores the complex kernel for A/B comparison; the SoA
// path is the default whenever the accelerated kernel is available.

import (
	"math/bits"
	"sync/atomic"

	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
)

// soaEnabled selects the SoA split-plane kernel for Plan transforms and the
// linstencil evolution hot path. It defaults to enabled exactly when the
// accelerated assembly kernel is usable on this machine: the generic SoA
// loops exist for portability and parity, not speed, so platforms without
// the assembly keep the complex kernel unless a caller opts in explicitly.
var soaEnabled atomic.Bool

// soaForceGeneric routes SoA butterflies through the portable generic
// kernel even when assembly is available. Tests use it to cover both sides
// of the dispatch seam on one machine; it is not part of the public API.
var soaForceGeneric atomic.Bool

func init() { soaEnabled.Store(kernelAsmAvailable()) }

// SoA reports whether the SoA split-plane kernel is enabled.
func SoA() bool { return soaEnabled.Load() }

// SetSoA enables or disables the SoA split-plane kernel and returns the
// previous setting. The complex kernel is kept for benchmarking, parity
// testing, and as the portable fallback; on machines with the accelerated
// kernel, leave SoA enabled in production.
func SetSoA(enabled bool) bool { return soaEnabled.Swap(enabled) }

// SoAAccelerated reports whether the assembly SoA kernel is compiled in and
// usable on this CPU. When false, the SoA path (if enabled) runs the
// portable generic kernel.
func SoAAccelerated() bool { return kernelAsmAvailable() }

// KernelName identifies the butterfly kernel the SoA path would use:
// "avx2" when the assembly kernel is active, "generic" otherwise.
func KernelName() string {
	if kernelAsmAvailable() && !soaForceGeneric.Load() {
		return kernelArch
	}
	return "generic"
}

// soaTransforms counts transforms executed by the SoA kernel (Plan
// dispatches and RPlan plane-native calls, one count per direction). The
// bytes those transforms move are counted in transformedBytes by the same
// call sites that count the complex kernel, so the traffic counter never
// silently undercounts when SoA is the default.
var soaTransforms atomic.Int64

// SoATransforms returns the cumulative number of SoA-kernel transforms.
func SoATransforms() int64 { return soaTransforms.Load() }

// soaStage holds one radix-4 stage's packed twiddles: w1[j] = w^j and
// w2[j] = w^2j for w = exp(-2*pi*i/(4h)), stored as split unit-stride
// planes so the vector kernel loads them with plain wide loads.
type soaStage struct {
	h                  int
	w1r, w1i, w2r, w2i []float64
}

// soaTables holds a plan's split-plane twiddle data: the base table split
// into planes (twRe/twIm, n/2 entries, used by the trailing radix-2 stage
// and by scalar edge cases) and the packed per-stage radix-4 tables.
// Tables are immutable after construction and shared by every transform of
// the plan.
type soaTables struct {
	twRe, twIm []float64
	stages     []soaStage // h = 4, 16, 64, ...
	finalR2    bool       // odd log2: one radix-2 stage of span n closes the ladder
	r2Half     int        // n/2 when finalR2
}

// soa returns the plan's SoA tables, building them on first use. The build
// reads the already-computed complex twiddle table — no new Sincos calls —
// so lazily constructing it keeps NewPlan cheap for complex-only callers.
func (p *Plan) soa() *soaTables {
	p.soaOnce.Do(func() {
		n := p.n
		t := &soaTables{}
		t.twRe = make([]float64, p.half)
		t.twIm = make([]float64, p.half)
		for k, w := range p.tw {
			t.twRe[k] = real(w)
			t.twIm[k] = imag(w)
		}
		lg := bits.TrailingZeros(uint(n))
		t.finalR2 = lg%2 == 1 && n >= 2
		t.r2Half = n / 2
		radix4End := n
		if t.finalR2 {
			radix4End = n / 2
		}
		for h := 4; 4*h <= radix4End; h *= 4 {
			st := soaStage{h: h}
			st.w1r = make([]float64, h)
			st.w1i = make([]float64, h)
			st.w2r = make([]float64, h)
			st.w2i = make([]float64, h)
			// The stage combines four size-h sub-transforms into size 4h, so
			// its twiddles live on the circle of size 4h: w^j = tw[j*n/(4h)]
			// on the plan's size-n table. w^2j can run past the table's half
			// circle; w^(m+n/2) = -w^m folds it back.
			stride := n / (4 * h)
			for j := 0; j < h; j++ {
				st.w1r[j] = t.twRe[j*stride]
				st.w1i[j] = t.twIm[j*stride]
				if idx2 := 2 * j * stride; idx2 < p.half {
					st.w2r[j] = t.twRe[idx2]
					st.w2i[j] = t.twIm[idx2]
				} else {
					st.w2r[j] = -t.twRe[idx2-p.half]
					st.w2i[j] = -t.twIm[idx2-p.half]
				}
			}
			t.stages = append(t.stages, st)
		}
		p.soaT = t
	})
	return p.soaT
}

// soaEligible reports whether this transform should run on the SoA kernel.
// Sizes below 4 have no radix-4 structure to exploit; the complex kernel's
// trivial loops handle them.
func (p *Plan) soaEligible() bool { return soaEnabled.Load() && p.n >= 4 }

// soaTransform is the complex-slice entry point: deinterleave a into
// scratch planes (fused with bit reversal and the first butterfly), run the
// split-plane stage ladder, and reinterleave. inverse applies the
// conjugation identity; like the complex transform method, the inverse here
// is unscaled — Plan.Inverse applies the 1/n sweep.
func (p *Plan) soaTransform(a []complex128, inverse bool) {
	n := p.n
	soaTransforms.Add(1)
	re := scratch.Floats(n)
	im := scratch.Floats(n)
	p.soaGather(a, re, im, inverse)
	p.soaStages(re, im)
	if n >= parThreshold() && par.Workers() > 1 {
		interleavePar(a, re, im, inverse)
	} else {
		interleaveRange(a, re, im, 0, n, inverse)
	}
	scratch.PutFloats(re)
	scratch.PutFloats(im)
}

// soaGather runs the fused entry pass: for each output quad it gathers
// a[rev[i]], deinterleaves into the planes, and applies the trivial-twiddle
// first radix-4 butterfly (the fusion of the first two radix-2 stages).
// For the inverse, the conjugation of the input folds into the gather as a
// sign flip on the imaginary lane. Sizes below 4 (no quads) deinterleave
// without a butterfly.
func (p *Plan) soaGather(a []complex128, re, im []float64, inverse bool) {
	n := p.n
	if n < 4 {
		for i, r := range p.rev {
			z := a[r]
			re[i] = real(z)
			if inverse {
				im[i] = -imag(z)
			} else {
				im[i] = imag(z)
			}
		}
		return
	}
	if n >= parThreshold() && par.Workers() > 1 {
		p.soaGatherPar(a, re, im, inverse)
		return
	}
	gatherQuads(a, p.rev, re, im, 0, n/4, inverse)
}

func (p *Plan) soaGatherPar(a []complex128, re, im []float64, inverse bool) {
	par.For(p.n/4, 1024, func(lo, hi int) { gatherQuads(a, p.rev, re, im, lo, hi, inverse) })
}

// gatherQuads processes output quads [qLo, qHi): gather four reversed
// inputs, butterfly with twiddles {1, -i}, store to the planes.
func gatherQuads(a []complex128, rev []int32, re, im []float64, qLo, qHi int, inverse bool) {
	if inverse {
		for q := qLo; q < qHi; q++ {
			i := 4 * q
			z0, z1, z2, z3 := a[rev[i]], a[rev[i+1]], a[rev[i+2]], a[rev[i+3]]
			quadStore(re, im, i,
				real(z0), -imag(z0), real(z1), -imag(z1),
				real(z2), -imag(z2), real(z3), -imag(z3))
		}
		return
	}
	for q := qLo; q < qHi; q++ {
		i := 4 * q
		z0, z1, z2, z3 := a[rev[i]], a[rev[i+1]], a[rev[i+2]], a[rev[i+3]]
		quadStore(re, im, i,
			real(z0), imag(z0), real(z1), imag(z1),
			real(z2), imag(z2), real(z3), imag(z3))
	}
}

// quadStore applies the trivial first radix-4 butterfly to one gathered
// quad and writes the results at planes[i..i+3]. Shared by the complex
// gather and the real-input pack so the butterfly algebra exists once.
func quadStore(re, im []float64, i int, x0r, x0i, x1r, x1i, x2r, x2i, x3r, x3i float64) {
	u0r, u1r := x0r+x1r, x0r-x1r
	u0i, u1i := x0i+x1i, x0i-x1i
	u2r, u3r := x2r+x3r, x2r-x3r
	u2i, u3i := x2i+x3i, x2i-x3i
	// t3 = -i * u3
	t3r, t3i := u3i, -u3r
	re[i], re[i+2] = u0r+u2r, u0r-u2r
	im[i], im[i+2] = u0i+u2i, u0i-u2i
	re[i+1], re[i+3] = u1r+t3r, u1r-t3r
	im[i+1], im[i+3] = u1i+t3i, u1i-t3i
}

// interleaveRange writes planes back into a[lo:hi]; the inverse direction
// conjugates on the way out (second half of the conjugation identity).
func interleaveRange(a []complex128, re, im []float64, lo, hi int, inverse bool) {
	if inverse {
		for i := lo; i < hi; i++ {
			a[i] = complex(re[i], -im[i])
		}
		return
	}
	for i := lo; i < hi; i++ {
		a[i] = complex(re[i], im[i])
	}
}

func interleavePar(a []complex128, re, im []float64, inverse bool) {
	par.For(len(a), 2048, func(lo, hi int) { interleaveRange(a, re, im, lo, hi, inverse) })
}

// soaStages runs the split-plane butterfly ladder over planes that already
// hold the output of the fused entry pass (bit-reversed order, first
// radix-4 butterfly applied). It is the shared engine of the complex-slice
// wrappers and the RPlan plane-native path.
func (p *Plan) soaStages(re, im []float64) {
	t := p.soa()
	n := p.n
	if n >= parThreshold() && par.Workers() > 1 {
		p.soaStagesPar(re, im, t)
		return
	}
	for si := range t.stages {
		st := &t.stages[si]
		h := st.h
		for b := 0; b < n/(4*h); b++ {
			bfly4Range(re, im, b*4*h, st, 0, h)
		}
	}
	if t.finalR2 {
		bfly2Range(re, im, t.twRe, t.twIm, t.r2Half, 0, t.r2Half)
	}
}

// soaStagesPar mirrors the complex kernel's transformPar4 shape: many small
// blocks parallelize across blocks, few large blocks split each block's
// lane range instead. Lane chunks are quad-granular so the vector kernel
// always sees multiples of four.
func (p *Plan) soaStagesPar(re, im []float64, t *soaTables) {
	n := p.n
	for si := range t.stages {
		st := &t.stages[si]
		h := st.h
		blocks := n / (4 * h)
		switch {
		case blocks >= 2*par.Workers():
			par.For(blocks, 1, func(lo, hi int) {
				for b := lo; b < hi; b++ {
					bfly4Range(re, im, b*4*h, st, 0, h)
				}
			})
		default:
			for b := 0; b < blocks; b++ {
				base := b * 4 * h
				par.For(h/4, 512, func(qLo, qHi int) {
					bfly4Range(re, im, base, st, 4*qLo, 4*qHi)
				})
			}
		}
	}
	if t.finalR2 {
		half := t.r2Half
		par.For(half/4, 512, func(qLo, qHi int) {
			bfly2Range(re, im, t.twRe, t.twIm, half, 4*qLo, 4*qHi)
		})
	}
}
