package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
)

// withComplexKernel runs fn with the SoA path disabled (complex kernel),
// restoring the prior setting afterwards.
func withComplexKernel(fn func()) {
	prev := SetSoA(false)
	defer SetSoA(prev)
	fn()
}

// withSoAKernel runs fn with the SoA path force-enabled.
func withSoAKernel(fn func()) {
	prev := SetSoA(true)
	defer SetSoA(prev)
	fn()
}

// withGenericSoA runs fn with the SoA butterflies forced through the
// portable generic kernel, covering the non-assembly side of the dispatch
// seam even on machines where the assembly is active.
func withGenericSoA(fn func()) {
	soaForceGeneric.Store(true)
	defer soaForceGeneric.Store(false)
	fn()
}

// soaKernelVariants runs fn once per available butterfly kernel, labeled.
func soaKernelVariants(t *testing.T, fn func(t *testing.T)) {
	t.Run("generic", func(t *testing.T) { withGenericSoA(func() { fn(t) }) })
	if SoAAccelerated() {
		t.Run(kernelArch, fn)
	}
}

// relDiff returns the max absolute difference between a and b scaled by the
// largest magnitude in b: the parity bound for comparing two kernels whose
// only legitimate divergence is rounding (the assembly contracts multiplies
// and adds into FMAs; the complex kernel does not).
func relDiff(a, b []complex128) float64 {
	norm := 0.0
	for _, z := range b {
		if m := cmplx.Abs(z); m > norm {
			norm = m
		}
	}
	if norm == 0 {
		norm = 1
	}
	return maxAbsDiff(a, b) / norm
}

// soaParitySizes covers the degenerate transforms (1, 2 — below the SoA
// eligibility floor), the smallest eligible size 4, every odd-log2 shape up
// to 512 (which exercises the trailing radix-2 stage), and the even shapes
// in between.
var soaParitySizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// TestSoAMatchesComplexAndNaive pins the three-way parity: for each size and
// direction, the SoA kernel (both butterfly variants) must agree with the
// complex kernel within 1e-12 relative and with the O(n^2) DFT within 1e-9.
func TestSoAMatchesComplexAndNaive(t *testing.T) {
	soaKernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(61))
		for _, n := range soaParitySizes {
			for _, inverse := range []bool{false, true} {
				a := randVec(rng, n)
				want := naiveDFT(a, inverse)
				p := PlanFor(n)

				soa := append([]complex128(nil), a...)
				withSoAKernel(func() {
					if inverse {
						p.Inverse(soa)
					} else {
						p.Forward(soa)
					}
				})

				cpx := append([]complex128(nil), a...)
				withComplexKernel(func() {
					if inverse {
						p.Inverse(cpx)
					} else {
						p.Forward(cpx)
					}
				})

				if d := maxAbsDiff(soa, want); d > 1e-9 {
					t.Errorf("n=%d inverse=%v: SoA differs from naive DFT by %g", n, inverse, d)
				}
				if d := relDiff(soa, cpx); d > 1e-12 {
					t.Errorf("n=%d inverse=%v: SoA differs from complex kernel by %g relative", n, inverse, d)
				}
			}
		}
	})
}

// TestSoALargeParity extends the kernel parity to production-scale sizes up
// to 2^17 (the harness's top transform size, odd log2) with only the
// complex kernel as oracle — the naive DFT is O(n^2).
func TestSoALargeParity(t *testing.T) {
	soaKernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(62))
		for _, n := range []int{1 << 10, 1 << 13, 1 << 16, 1 << 17} {
			for _, inverse := range []bool{false, true} {
				a := randVec(rng, n)
				p := PlanFor(n)

				soa := append([]complex128(nil), a...)
				withSoAKernel(func() {
					if inverse {
						p.Inverse(soa)
					} else {
						p.Forward(soa)
					}
				})

				cpx := append([]complex128(nil), a...)
				withComplexKernel(func() {
					if inverse {
						p.Inverse(cpx)
					} else {
						p.Forward(cpx)
					}
				})

				if d := relDiff(soa, cpx); d > 1e-12 {
					t.Errorf("n=%d inverse=%v: SoA differs from complex kernel by %g relative", n, inverse, d)
				}
			}
		}
	})
}

// TestSoARoundTrip checks Inverse(Forward(a)) == a under the SoA kernel,
// which pins the inverse's conjugation identity and the 1/n scaling.
func TestSoARoundTrip(t *testing.T) {
	soaKernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(63))
		for _, n := range []int{4, 8, 64, 512, 1 << 12} {
			a := randVec(rng, n)
			rt := append([]complex128(nil), a...)
			p := PlanFor(n)
			withSoAKernel(func() {
				p.Forward(rt)
				p.Inverse(rt)
			})
			if d := maxAbsDiff(rt, a); d > 1e-9 {
				t.Errorf("n=%d: SoA round trip error %g", n, d)
			}
		}
	})
}

// TestRPlanSoAPlaneParity pins the plane-native real-input path against the
// complex-spectrum API across the packing edge cases: n=1 (DC only), n=2
// (delegated, no inner plan quads), n=4 and n=8 (delegated, inner size < 4),
// n=16 (smallest plane-native size), self-paired-bin sizes, and odd-log2
// inner sizes.
func TestRPlanSoAPlaneParity(t *testing.T) {
	soaKernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(64))
		for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 256, 1024, 1 << 13} {
			x := randReal(rng, n)
			rp := RPlanFor(n)

			spec := make([]complex128, rp.HalfLen())
			rp.Forward(append([]float64(nil), x...), spec)

			sr := make([]float64, rp.HalfLen())
			si := make([]float64, rp.HalfLen())
			rp.ForwardSoA(append([]float64(nil), x...), sr, si)

			norm := 0.0
			for _, z := range spec {
				if m := cmplx.Abs(z); m > norm {
					norm = m
				}
			}
			if norm == 0 {
				norm = 1
			}
			for k := range spec {
				d := cmplx.Abs(complex(sr[k], si[k]) - spec[k])
				if d/norm > 1e-12 {
					t.Errorf("n=%d k=%d: plane spectrum (%g,%g) differs from complex %v", n, k, sr[k], si[k], spec[k])
				}
			}

			out := make([]float64, n)
			rp.InverseSoA(sr, si, out)
			for i := range x {
				if math.Abs(out[i]-x[i]) > 1e-9 {
					t.Errorf("n=%d: plane round trip error %g at %d", n, out[i]-x[i], i)
					break
				}
			}
		}
	})
}

// TestRPlanSoAPlanePanics checks the plane APIs reject mismatched lengths.
func TestRPlanSoAPlanePanics(t *testing.T) {
	rp := RPlanFor(16)
	for _, fn := range []func(){
		func() { rp.ForwardSoA(make([]float64, 8), make([]float64, 9), make([]float64, 9)) },
		func() { rp.ForwardSoA(make([]float64, 16), make([]float64, 8), make([]float64, 9)) },
		func() { rp.InverseSoA(make([]float64, 9), make([]float64, 8), make([]float64, 16)) },
		func() { rp.InverseSoA(make([]float64, 9), make([]float64, 9), make([]float64, 15)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mismatched plane lengths did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestSoAParallelMatchesSerial verifies the SoA parallel staging performs
// bit-identical arithmetic to the serial pass: the parallel split only
// partitions loop ranges (quad-granular, so the kernel choice per butterfly
// is unchanged), it never reassociates the butterfly algebra.
func TestSoAParallelMatchesSerial(t *testing.T) {
	if par.Workers() <= 1 {
		prev := par.SetWorkers(4)
		defer par.SetWorkers(prev)
	}
	soaKernelVariants(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(65))
		prevThresh := SetParThreshold(1 << 6)
		defer SetParThreshold(prevThresh)
		for _, n := range []int{1 << 8, 1 << 9} {
			for _, inverse := range []bool{false, true} {
				a := randVec(rng, n)
				p := PlanFor(n)

				parallel := append([]complex128(nil), a...)
				withSoAKernel(func() { p.transform(parallel, inverse) })

				SetParThreshold(1 << 30) // force the serial path
				serial := append([]complex128(nil), a...)
				withSoAKernel(func() { p.transform(serial, inverse) })
				SetParThreshold(1 << 6)

				if d := maxAbsDiff(parallel, serial); d > 0 {
					t.Errorf("n=%d inverse=%v: parallel SoA differs from serial by %g (want bit-identical)", n, inverse, d)
				}
			}
		}
	})
}

// TestSetSoA checks the toggle round-trips its previous value and that the
// default matches the accelerated-kernel availability on this machine.
func TestSetSoA(t *testing.T) {
	orig := SoA()
	if orig != SoAAccelerated() {
		t.Errorf("SoA() default %v does not match SoAAccelerated() %v", orig, SoAAccelerated())
	}
	if prev := SetSoA(!orig); prev != orig {
		t.Errorf("SetSoA returned %v, want previous value %v", prev, orig)
	}
	if SoA() == orig {
		t.Error("SoA() unchanged after SetSoA")
	}
	if prev := SetSoA(orig); prev == orig {
		t.Error("SetSoA did not report the toggled state")
	}
}

// TestKernelName checks the kernel label is consistent with availability.
func TestKernelName(t *testing.T) {
	got := KernelName()
	if SoAAccelerated() {
		if got != kernelArch || got == "generic" {
			t.Errorf("KernelName() = %q with accelerated kernel available", got)
		}
		withGenericSoA(func() {
			if name := KernelName(); name != "generic" {
				t.Errorf("KernelName() = %q under forced generic", name)
			}
		})
	} else if got != "generic" {
		t.Errorf("KernelName() = %q without accelerated kernel", got)
	}
}

// TestSoATransformsCounter checks the SoA transform counter advances exactly
// when the SoA path runs, and that transformed-bytes accounting continues to
// tick under the SoA kernel (the traffic counter must not silently go dark
// when the new path became the default).
func TestSoATransformsCounter(t *testing.T) {
	p := PlanFor(64)
	a := randVec(rand.New(rand.NewSource(66)), 64)

	c0, b0 := SoATransforms(), TransformedBytes()
	withSoAKernel(func() { p.Forward(a) })
	c1, b1 := SoATransforms(), TransformedBytes()
	if c1 != c0+1 {
		t.Errorf("SoATransforms went %d -> %d across one SoA transform, want +1", c0, c1)
	}
	if b1-b0 != 16*64 {
		t.Errorf("TransformedBytes advanced %d across one SoA transform, want %d", b1-b0, 16*64)
	}

	withComplexKernel(func() { p.Forward(a) })
	if c2 := SoATransforms(); c2 != c1 {
		t.Errorf("SoATransforms advanced under the complex kernel: %d -> %d", c1, c2)
	}

	// The plane-native real path counts one per direction at 8 bytes/sample.
	rp := RPlanFor(64)
	x := randReal(rand.New(rand.NewSource(67)), 64)
	sr := make([]float64, rp.HalfLen())
	si := make([]float64, rp.HalfLen())
	b2 := TransformedBytes()
	rp.ForwardSoA(x, sr, si)
	rp.InverseSoA(sr, si, x)
	if c3 := SoATransforms(); c3 != c1+2 {
		t.Errorf("SoATransforms went %d -> %d across an RPlan plane round trip, want +2", c1, c3)
	}
	if db := TransformedBytes() - b2; db != 2*8*64 {
		t.Errorf("TransformedBytes advanced %d across an RPlan plane round trip, want %d", db, 2*8*64)
	}
}

// TestSoAConcurrentTransforms hammers one shared plan (and the shared
// scratch pool) from many goroutines under both SoA entry points. Run with
// -race this pins the concurrency contract: the lazily-built SoA tables
// publish through sync.Once, scratch planes are private per transform, and
// no transform state leaks across goroutines.
func TestSoAConcurrentTransforms(t *testing.T) {
	const n = 1 << 10
	p := PlanFor(n)
	rp := RPlanFor(2 * n)
	rng := rand.New(rand.NewSource(68))
	a := randVec(rng, n)
	want := append([]complex128(nil), a...)
	withSoAKernel(func() { p.Forward(want) })
	x := randReal(rng, 2*n)
	wantSr := make([]float64, rp.HalfLen())
	wantSi := make([]float64, rp.HalfLen())
	rp.ForwardSoA(append([]float64(nil), x...), wantSr, wantSi)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				buf := scratch.Complexes(n)
				copy(buf, a)
				withSoAKernel(func() { p.Forward(buf) })
				if d := maxAbsDiff(buf, want); d > 0 {
					errs <- "concurrent SoA transform diverged"
				}
				scratch.PutComplexes(buf)

				sr := scratch.Floats(rp.HalfLen())
				si := scratch.Floats(rp.HalfLen())
				rp.ForwardSoA(x, sr, si)
				for k := range sr {
					if sr[k] != wantSr[k] || si[k] != wantSi[k] {
						errs <- "concurrent RPlan plane transform diverged"
						break
					}
				}
				scratch.PutFloats(sr)
				scratch.PutFloats(si)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestSoANotSlowerSmoke is the CI bench-smoke gate for the SoA kernel: on
// machines with the accelerated kernel it must not regress below the complex
// kernel it replaced as the default. Median-of-rounds timing, 5% tolerance,
// opt-in via AMOP_BENCH_SMOKE=1 — wall-clock assertions do not belong in the
// default tier-1 run.
func TestSoANotSlowerSmoke(t *testing.T) {
	if os.Getenv("AMOP_BENCH_SMOKE") == "" {
		t.Skip("set AMOP_BENCH_SMOKE=1 to run the SoA vs complex timing gate")
	}
	if !SoAAccelerated() {
		t.Skip("no accelerated SoA kernel on this machine; the generic SoA path is not expected to beat the complex kernel")
	}
	const n = 1 << 16
	rng := rand.New(rand.NewSource(69))
	src := randVec(rng, n)
	buf := make([]complex128, n)
	p := PlanFor(n)
	run := func() {
		copy(buf, src)
		p.Forward(buf)
	}
	withSoAKernel(run) // warm the plan, the SoA tables, and the scratch pool
	median := func() float64 {
		times := make([]float64, 0, 5)
		for round := 0; round < 5; round++ {
			start := time.Now()
			for rep := 0; rep < 8; rep++ {
				run()
			}
			times = append(times, time.Since(start).Seconds())
		}
		sort.Float64s(times)
		return times[len(times)/2]
	}
	var soa, cpx float64
	withSoAKernel(func() { soa = median() })
	withComplexKernel(func() { cpx = median() })
	t.Logf("soa(%s) %.4gs, complex %.4gs (%.2fx) at n=%d", KernelName(), soa, cpx, cpx/soa, n)
	if soa > cpx*1.05 {
		t.Errorf("SoA kernel slower than complex: %.4gs vs %.4gs", soa, cpx)
	}
}

func BenchmarkForwardSoA64K(b *testing.B)  { benchForwardSoA(b, 1<<16) }
func BenchmarkForwardSoA128K(b *testing.B) { benchForwardSoA(b, 1<<17) }

func benchForwardSoA(b *testing.B, n int) {
	prev := SetSoA(true)
	defer SetSoA(prev)
	a := randVec(rand.New(rand.NewSource(70)), n)
	p := PlanFor(n)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(a)
	}
}

func BenchmarkRPlanForwardSoA128K(b *testing.B) {
	const n = 1 << 17
	prev := SetSoA(true)
	defer SetSoA(prev)
	x := randReal(rand.New(rand.NewSource(71)), n)
	rp := RPlanFor(n)
	sr := make([]float64, rp.HalfLen())
	si := make([]float64, rp.HalfLen())
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.ForwardSoA(x, sr, si)
	}
}
