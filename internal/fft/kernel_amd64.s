//go:build amd64 && !amop_purego

// AVX2+FMA butterfly kernels over deinterleaved float64 planes. Each loop
// iteration processes four butterflies: the SoA layout makes every load and
// store a plain 256-bit VMOVUPD, and the packed per-stage twiddle tables
// (built in soa.go) make the twiddle streams unit-stride as well. The
// register budget is exactly the sixteen YMM registers: Y0-Y3 cycle as
// scratch, Y4-Y11 hold the u values of the in-flight butterflies, Y12/Y13
// hold the current twiddle pair, Y14/Y15 the u3*w1 product. Only the
// forward direction exists in assembly — the inverse runs through the
// conjugation identity with the sign flips folded into the Go entry/exit
// passes (see soa.go).

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func bfly4AVX2(r0, r1, r2, r3, i0, i1, i2, i3, w1r, w1i, w2r, w2i *float64, n int)
//
// Per butterfly (matching butterflies4 in the complex kernel):
//	t0 = x1*w2;  u0 = x0+t0;  u1 = x0-t0
//	t1 = x3*w2;  u2 = x2+t1;  u3 = x2-t1
//	t2 = u2*w1;  v  = u3*w1;  t3 = -i*v = (v_im, -v_re)
//	out0 = u0+t2;  out2 = u0-t2;  out1 = u1+t3;  out3 = u1-t3
TEXT ·bfly4AVX2(SB), NOSPLIT, $0-104
	MOVQ r0+0(FP), AX
	MOVQ r1+8(FP), BX
	MOVQ r2+16(FP), CX
	MOVQ r3+24(FP), DX
	MOVQ i0+32(FP), SI
	MOVQ i1+40(FP), DI
	MOVQ i2+48(FP), R8
	MOVQ i3+56(FP), R9
	MOVQ w1r+64(FP), R10
	MOVQ w1i+72(FP), R11
	MOVQ w2r+80(FP), R12
	MOVQ w2i+88(FP), R13
	MOVQ n+96(FP), R15
	SHLQ $3, R15       // byte length of each lane
	XORQ R14, R14      // running byte offset

bfly4loop:
	CMPQ R14, R15
	JGE  bfly4done

	// w2 = (Y12, Y13)
	VMOVUPD (R12)(R14*1), Y12
	VMOVUPD (R13)(R14*1), Y13

	// t0 = x1 * w2 -> (Y2, Y3)
	VMOVUPD      (BX)(R14*1), Y0
	VMOVUPD      (DI)(R14*1), Y1
	VMULPD       Y12, Y0, Y2
	VFNMADD231PD Y13, Y1, Y2
	VMULPD       Y13, Y0, Y3
	VFMADD231PD  Y12, Y1, Y3

	// u0 = x0+t0 -> (Y4, Y6); u1 = x0-t0 -> (Y5, Y7)
	VMOVUPD (AX)(R14*1), Y0
	VMOVUPD (SI)(R14*1), Y1
	VADDPD  Y2, Y0, Y4
	VSUBPD  Y2, Y0, Y5
	VADDPD  Y3, Y1, Y6
	VSUBPD  Y3, Y1, Y7

	// t1 = x3 * w2 -> (Y2, Y3)
	VMOVUPD      (DX)(R14*1), Y0
	VMOVUPD      (R9)(R14*1), Y1
	VMULPD       Y12, Y0, Y2
	VFNMADD231PD Y13, Y1, Y2
	VMULPD       Y13, Y0, Y3
	VFMADD231PD  Y12, Y1, Y3

	// u2 = x2+t1 -> (Y8, Y10); u3 = x2-t1 -> (Y9, Y11)
	VMOVUPD (CX)(R14*1), Y0
	VMOVUPD (R8)(R14*1), Y1
	VADDPD  Y2, Y0, Y8
	VSUBPD  Y2, Y0, Y9
	VADDPD  Y3, Y1, Y10
	VSUBPD  Y3, Y1, Y11

	// w1 = (Y12, Y13)
	VMOVUPD (R10)(R14*1), Y12
	VMOVUPD (R11)(R14*1), Y13

	// t2 = u2 * w1 -> (Y2, Y3)
	VMULPD       Y12, Y8, Y2
	VFNMADD231PD Y13, Y10, Y2
	VMULPD       Y13, Y8, Y3
	VFMADD231PD  Y12, Y10, Y3

	// v = u3 * w1 -> (Y14, Y15); t3 = (v_im, -v_re)
	VMULPD       Y12, Y9, Y14
	VFNMADD231PD Y13, Y11, Y14
	VMULPD       Y13, Y9, Y15
	VFMADD231PD  Y12, Y11, Y15

	// out0 = u0+t2; out2 = u0-t2
	VADDPD  Y2, Y4, Y0
	VMOVUPD Y0, (AX)(R14*1)
	VSUBPD  Y2, Y4, Y0
	VMOVUPD Y0, (CX)(R14*1)
	VADDPD  Y3, Y6, Y0
	VMOVUPD Y0, (SI)(R14*1)
	VSUBPD  Y3, Y6, Y0
	VMOVUPD Y0, (R8)(R14*1)

	// out1 = u1+t3; out3 = u1-t3 (t3 = (v_im, -v_re))
	VADDPD  Y15, Y5, Y0
	VMOVUPD Y0, (BX)(R14*1)
	VSUBPD  Y15, Y5, Y0
	VMOVUPD Y0, (DX)(R14*1)
	VSUBPD  Y14, Y7, Y0
	VMOVUPD Y0, (DI)(R14*1)
	VADDPD  Y14, Y7, Y0
	VMOVUPD Y0, (R9)(R14*1)

	ADDQ $32, R14
	JMP  bfly4loop

bfly4done:
	VZEROUPPER
	RET

// func bfly2AVX2(r0, r1, i0, i1, wr, wi *float64, n int)
//
// Per butterfly: t = x1*w; out0 = x0+t; out1 = x0-t.
TEXT ·bfly2AVX2(SB), NOSPLIT, $0-56
	MOVQ r0+0(FP), AX
	MOVQ r1+8(FP), BX
	MOVQ i0+16(FP), SI
	MOVQ i1+24(FP), DI
	MOVQ wr+32(FP), R10
	MOVQ wi+40(FP), R11
	MOVQ n+48(FP), R15
	SHLQ $3, R15
	XORQ R14, R14

bfly2loop:
	CMPQ R14, R15
	JGE  bfly2done

	VMOVUPD (R10)(R14*1), Y12
	VMOVUPD (R11)(R14*1), Y13

	// t = x1 * w -> (Y2, Y3)
	VMOVUPD      (BX)(R14*1), Y0
	VMOVUPD      (DI)(R14*1), Y1
	VMULPD       Y12, Y0, Y2
	VFNMADD231PD Y13, Y1, Y2
	VMULPD       Y13, Y0, Y3
	VFMADD231PD  Y12, Y1, Y3

	VMOVUPD (AX)(R14*1), Y0
	VMOVUPD (SI)(R14*1), Y1

	VADDPD  Y2, Y0, Y4
	VMOVUPD Y4, (AX)(R14*1)
	VSUBPD  Y2, Y0, Y4
	VMOVUPD Y4, (BX)(R14*1)
	VADDPD  Y3, Y1, Y4
	VMOVUPD Y4, (SI)(R14*1)
	VSUBPD  Y3, Y1, Y4
	VMOVUPD Y4, (DI)(R14*1)

	ADDQ $32, R14
	JMP  bfly2loop

bfly2done:
	VZEROUPPER
	RET
