package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"github.com/nlstencil/amop/internal/par"
)

func randReal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// TestRPlanForwardMatchesComplexAndNaive is the three-way golden parity test:
// the real-input half spectrum must match both the complex Plan and the
// O(n^2) naive DFT on the retained frequencies, across sizes including the
// degenerate 1 and 2.
func TestRPlanForwardMatchesComplexAndNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024} {
		x := randReal(rng, n)
		a := make([]complex128, n)
		for i, v := range x {
			a[i] = complex(v, 0)
		}
		naive := naiveDFT(a, false)
		cplx := append([]complex128(nil), a...)
		PlanFor(n).Forward(cplx)

		rp := RPlanFor(n)
		spec := make([]complex128, rp.HalfLen())
		rp.Forward(append([]float64(nil), x...), spec)

		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(spec[k] - naive[k]); d > 1e-9 {
				t.Fatalf("n=%d k=%d: real path differs from naive DFT by %g", n, k, d)
			}
			if d := cmplx.Abs(spec[k] - cplx[k]); d > 1e-9 {
				t.Fatalf("n=%d k=%d: real path differs from complex plan by %g", n, k, d)
			}
		}
	}
}

func TestRPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{1, 2, 4, 16, 256, 4096, 1 << 15} {
		x := randReal(rng, n)
		rp := RPlanFor(n)
		spec := make([]complex128, rp.HalfLen())
		got := append([]float64(nil), x...)
		rp.Forward(got, spec)
		rp.Inverse(spec, got)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-10*(1+math.Abs(x[i]))*float64(n) {
				t.Fatalf("n=%d: round trip error %g at %d", n, got[i]-x[i], i)
			}
		}
	}
}

// TestRPlanInverseMatchesComplex feeds the same conjugate-symmetric spectrum
// through both inverse paths.
func TestRPlanInverseMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{2, 4, 8, 64, 512} {
		// Build a valid half spectrum from a real signal's forward transform.
		x := randReal(rng, n)
		full := make([]complex128, n)
		for i, v := range x {
			full[i] = complex(v, 0)
		}
		p := PlanFor(n)
		p.Forward(full)
		spec := append([]complex128(nil), full[:n/2+1]...)

		p.Inverse(full)
		got := make([]float64, n)
		RPlanFor(n).Inverse(spec, got)
		for i := range got {
			if math.Abs(got[i]-real(full[i])) > 1e-9 {
				t.Fatalf("n=%d: inverse mismatch at %d: %g vs %g", n, i, got[i], real(full[i]))
			}
		}
	}
}

// TestRPlanParallelMatchesSerial checks the parallel pack/unpack staging on a
// transform large enough to trigger it.
func TestRPlanParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := parThreshold() * 4
	x := randReal(rng, n)
	rp := RPlanFor(n)

	serialSpec := make([]complex128, rp.HalfLen())
	prev := par.SetWorkers(1)
	rp.Forward(append([]float64(nil), x...), serialSpec)
	serialOut := make([]float64, n)
	specCopy := append([]complex128(nil), serialSpec...)
	rp.Inverse(specCopy, serialOut)
	par.SetWorkers(prev)

	parSpec := make([]complex128, rp.HalfLen())
	rp.Forward(append([]float64(nil), x...), parSpec)
	if d := maxAbsDiff(serialSpec, parSpec); d > 0 {
		t.Errorf("parallel forward differs from serial by %g", d)
	}
	parOut := make([]float64, n)
	rp.Inverse(parSpec, parOut)
	for i := range parOut {
		if parOut[i] != serialOut[i] {
			t.Errorf("parallel inverse differs from serial at %d", i)
			break
		}
	}
}

func TestRPlanTwiddle(t *testing.T) {
	rp := RPlanFor(16)
	for k := 0; k <= 8; k++ {
		want := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/16))
		if d := cmplx.Abs(rp.Twiddle(k) - want); d > 1e-12 {
			t.Errorf("Twiddle(%d) off by %g", k, d)
		}
	}
}

func TestRPlanPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad size":       func() { NewRPlan(3) },
		"zero size":      func() { NewRPlan(0) },
		"short input":    func() { RPlanFor(8).Forward(make([]float64, 4), make([]complex128, 5)) },
		"short spectrum": func() { RPlanFor(8).Forward(make([]float64, 8), make([]complex128, 4)) },
		"inverse sizes":  func() { RPlanFor(8).Inverse(make([]complex128, 8), make([]float64, 8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRPlanForCaches(t *testing.T) {
	if RPlanFor(128) != RPlanFor(128) {
		t.Error("RPlanFor returned distinct plans for the same size")
	}
}

func TestTransformedBytesAdvances(t *testing.T) {
	before := TransformedBytes()
	n := 256
	rp := RPlanFor(n)
	spec := make([]complex128, rp.HalfLen())
	rp.Forward(make([]float64, n), spec)
	if got := TransformedBytes() - before; got < int64(8*n) {
		t.Errorf("TransformedBytes advanced by %d, want >= %d", got, 8*n)
	}
}

func BenchmarkRealFFT64K(b *testing.B)  { benchRealFFT(b, 1<<16) }
func BenchmarkRealFFT512K(b *testing.B) { benchRealFFT(b, 1<<19) }

// BenchmarkRealFFT512KRadix2 pins the real-input round trip on the legacy
// radix-2 kernel; compare against BenchmarkRealFFT512K for the radix-4 win.
func BenchmarkRealFFT512KRadix2(b *testing.B) {
	prevSoA := SetSoA(false) // the radix toggle is dead while SoA dispatches first
	defer SetSoA(prevSoA)
	prev := SetRadix4(false)
	defer SetRadix4(prev)
	benchRealFFT(b, 1<<19)
}

// benchRealFFT times one forward+inverse real round trip; compare against
// BenchmarkForward* to see the half-transform win.
func benchRealFFT(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(25))
	x := randReal(rng, n)
	buf := make([]float64, n)
	rp := RPlanFor(n)
	spec := make([]complex128, rp.HalfLen())
	b.SetBytes(int64(8 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		rp.Forward(buf, spec)
		rp.Inverse(spec, buf)
	}
}
