package fft

// Plane-native real-input transforms. RPlan.Forward/Inverse already pick up
// the SoA butterfly kernel through the inner Plan's dispatch, but their
// complex-spectrum signatures force a deinterleave on entry and a
// reinterleave on exit of every transform. The stencil evolution hot path
// multiplies spectra element-wise between a forward and an inverse, so it
// never needs the complex128 view at all: ForwardSoA and InverseSoA carry
// the spectrum as split re/im planes end to end — the pack fuses directly
// with the inner plan's bit-reversal gather and first butterfly, the
// unpack/repack recombination runs over float64 lanes, and the only
// complex128 left in the pipeline is the caller's multiplier table.
//
// Layout: sr/si hold the half spectrum, length n/2+1, with the conjugate
// symmetry X[n-k] = conj(X[k]) implied exactly as in RPlan.Forward.

import (
	"fmt"

	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
)

// ForwardSoA computes the half spectrum of the real input x into split
// planes: sr[k] + i*si[k] equals spec[k] of Forward. len(x) must be n;
// len(sr) and len(si) must be n/2 + 1. Prior contents of sr/si are ignored.
func (p *RPlan) ForwardSoA(x, sr, si []float64) {
	if len(x) != p.n || len(sr) != p.half+1 || len(si) != p.half+1 {
		panic(fmt.Sprintf("fft: RPlan size %d: got input %d, spectrum planes %d/%d",
			p.n, len(x), len(sr), len(si)))
	}
	m := p.half
	if m < 4 {
		// Too small for the radix-4 entry pass; delegate to the complex path
		// (which counts its own traffic) and split the result.
		spec := scratch.Complexes(m + 1)
		p.Forward(x, spec)
		for k, z := range spec {
			sr[k], si[k] = real(z), imag(z)
		}
		scratch.PutComplexes(spec)
		return
	}
	addTransformed(8 * p.n)
	soaTransforms.Add(1)

	// Fused entry: view x as m packed complex samples (even samples real,
	// odd samples imaginary), gather them in the inner plan's bit-reversed
	// order, and apply the trivial first radix-4 butterfly — pack, permute,
	// and two butterfly stages in x's single read pass.
	re := scratch.Floats(m)
	im := scratch.Floats(m)
	inner := p.inner
	parallel := m >= parThreshold() && par.Workers() > 1
	if parallel {
		par.For(m/4, 1024, func(qLo, qHi int) { packGatherQuads(x, inner.rev, re, im, qLo, qHi) })
	} else {
		packGatherQuads(x, inner.rev, re, im, 0, m/4)
	}
	inner.soaStages(re, im)

	// Unpack: split each Z[k] into the even/odd sample spectra and recombine
	// on the size-n circle (same algebra as unpackRange, over planes).
	z0r, z0i := re[0], im[0]
	if lo, hi := 1, (m+1)/2; hi > lo {
		if parallel {
			par.For(hi-lo, 2048, func(a, b int) { p.unpackSoARange(sr, si, re, im, lo+a, lo+b) })
		} else {
			p.unpackSoARange(sr, si, re, im, lo, hi)
		}
	}
	if m >= 2 && m%2 == 0 {
		// Self-paired bin: Z[m/2] has E = (Re Z, 0) and O = (Im Z, 0).
		k := m / 2
		sr[k] = re[k] + p.rtwRe[k]*im[k]
		si[k] = p.rtwIm[k] * im[k]
	}
	sr[0], si[0] = z0r+z0i, 0
	sr[m], si[m] = z0r-z0i, 0
	scratch.PutFloats(re)
	scratch.PutFloats(im)
}

// packGatherQuads is the real-input entry pass: gather four packed samples
// z[rev[i]] = (x[2*rev[i]], x[2*rev[i]+1]) per quad and butterfly them with
// the trivial twiddles via quadStore.
func packGatherQuads(x []float64, rev []int32, re, im []float64, qLo, qHi int) {
	for q := qLo; q < qHi; q++ {
		i := 4 * q
		r0, r1, r2, r3 := rev[i], rev[i+1], rev[i+2], rev[i+3]
		quadStore(re, im, i,
			x[2*r0], x[2*r0+1], x[2*r1], x[2*r1+1],
			x[2*r2], x[2*r2+1], x[2*r3], x[2*r3+1])
	}
}

// unpackSoARange recombines spectrum pairs (k, m-k) for k in [lo, hi),
// reading the transformed planes and writing the caller's spectrum planes.
// Mirrors unpackRange: X[k] = E[k] + w^k O[k], X[m-k] = conj(E[k] - w^k O[k]).
func (p *RPlan) unpackSoARange(sr, si, re, im []float64, lo, hi int) {
	m := p.half
	rtwRe, rtwIm := p.rtwRe, p.rtwIm
	_, _, _, _ = re[m-lo], im[m-lo], sr[m-lo], si[m-lo]
	_, _ = rtwRe[hi-1], rtwIm[hi-1]
	for k := lo; k < hi; k++ {
		zkr, zki := re[k], im[k]
		zmr, zmi := re[m-k], im[m-k]
		ekr, eki := (zkr+zmr)*0.5, (zki-zmi)*0.5 // E[k] = (Z[k] + conj(Z[m-k]))/2
		dr, di := (zkr-zmr)*0.5, (zki+zmi)*0.5
		okr, oki := di, -dr // O[k] = -i * (Z[k] - conj(Z[m-k]))/2
		wr, wi := rtwRe[k], rtwIm[k]
		tr := wr*okr - wi*oki
		ti := wr*oki + wi*okr
		sr[k], si[k] = ekr+tr, eki+ti
		sr[m-k], si[m-k] = ekr-tr, ti-eki
	}
}

// InverseSoA recovers the real signal from its half spectrum held as split
// planes, including the 1/n scaling, so that InverseSoA(ForwardSoA(x)) == x
// up to rounding. len(sr) and len(si) must be n/2 + 1 and len(x) must be n.
// The spectrum planes are destroyed in the process.
func (p *RPlan) InverseSoA(sr, si, x []float64) {
	if len(x) != p.n || len(sr) != p.half+1 || len(si) != p.half+1 {
		panic(fmt.Sprintf("fft: RPlan size %d: got input %d, spectrum planes %d/%d",
			p.n, len(x), len(sr), len(si)))
	}
	m := p.half
	if m < 4 {
		spec := scratch.Complexes(m + 1)
		for k := range spec {
			spec[k] = complex(sr[k], si[k])
		}
		p.Inverse(spec, x)
		scratch.PutComplexes(spec)
		return
	}
	addTransformed(8 * p.n)
	soaTransforms.Add(1)

	// Repack in place: rebuild the packed spectrum Z[k] = E[k] + i*O[k] with
	// the 1/m normalization folded into the scale — except that what we store
	// is conj(Z), because the inverse inner transform runs the forward-only
	// kernel under IDFT(Z) = conj(DFT(conj(Z))): the entry conjugation folds
	// into the repack and the exit conjugation into the unzip.
	invm := 1 / float64(m)
	scale := 0.5 * invm
	s0, sm := sr[0], sr[m]
	parallel := m >= parThreshold() && par.Workers() > 1
	if lo, hi := 1, (m+1)/2; hi > lo {
		if parallel {
			par.For(hi-lo, 2048, func(a, b int) { p.repackSoARange(sr, si, scale, lo+a, lo+b) })
		} else {
			p.repackSoARange(sr, si, scale, lo, hi)
		}
	}
	if m >= 2 && m%2 == 0 {
		// Self-paired bin, conjugated: Z[m/2] = E + i*conj(w)*O with
		// E = (sr[k]/m, 0) and (X[k] - conj(X[k]))/2m = (0, si[k]/m).
		k := m / 2
		d := si[k] * invm
		sr[k], si[k] = sr[k]*invm-p.rtwRe[k]*d, -p.rtwIm[k]*d
	}
	sr[0], si[0] = (s0+sm)*scale, -(s0-sm)*scale

	// Gather conj(Z) in bit-reversed order with the fused first butterfly,
	// run the forward stage ladder, and unzip with the exit conjugation:
	// even output samples from the real plane, odd from the negated
	// imaginary plane.
	re := scratch.Floats(m)
	im := scratch.Floats(m)
	inner := p.inner
	if parallel {
		par.For(m/4, 1024, func(qLo, qHi int) { specGatherQuads(sr, si, inner.rev, re, im, qLo, qHi) })
	} else {
		specGatherQuads(sr, si, inner.rev, re, im, 0, m/4)
	}
	inner.soaStages(re, im)
	if parallel {
		par.For(m, 2048, func(lo, hi int) { unzipSoARange(re, im, x, lo, hi) })
	} else {
		unzipSoARange(re, im, x, 0, m)
	}
	scratch.PutFloats(re)
	scratch.PutFloats(im)
}

// repackSoARange rebuilds conj(Z) for pairs (k, m-k), k in [lo, hi), in
// place in the spectrum planes, with the inverse normalization folded into
// scale. Mirrors repackRange (then conjugated): Z[k] = E[k] + i*O[k],
// Z[m-k] = conj(E[k] - i*O[k]), O[k] = conj(w^k)(X[k] - conj(X[m-k]))/2m.
func (p *RPlan) repackSoARange(sr, si []float64, scale float64, lo, hi int) {
	m := p.half
	rtwRe, rtwIm := p.rtwRe, p.rtwIm
	_, _ = sr[m-lo], si[m-lo]
	_, _ = rtwRe[hi-1], rtwIm[hi-1]
	for k := lo; k < hi; k++ {
		xkr, xki := sr[k], si[k]
		xmr, xmi := sr[m-k], si[m-k]
		ekr, eki := (xkr+xmr)*scale, (xki-xmi)*scale
		dr, di := (xkr-xmr)*scale, (xki+xmi)*scale
		wr, wi := rtwRe[k], rtwIm[k]
		okr := wr*dr + wi*di
		oki := wr*di - wi*dr
		sr[k], si[k] = ekr-oki, -(eki + okr)
		sr[m-k], si[m-k] = ekr+oki, eki-okr
	}
}

// specGatherQuads gathers four already-conjugated packed spectrum samples
// per quad in bit-reversed order and applies the trivial first butterfly.
func specGatherQuads(sr, si []float64, rev []int32, re, im []float64, qLo, qHi int) {
	for q := qLo; q < qHi; q++ {
		i := 4 * q
		r0, r1, r2, r3 := rev[i], rev[i+1], rev[i+2], rev[i+3]
		quadStore(re, im, i,
			sr[r0], si[r0], sr[r1], si[r1],
			sr[r2], si[r2], sr[r3], si[r3])
	}
}

// unzipSoARange writes packed time samples j in [lo, hi) to the real output:
// the conjugation of the inverse identity negates the imaginary plane.
func unzipSoARange(re, im, x []float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		x[2*j] = re[j]
		x[2*j+1] = -im[j]
	}
}
