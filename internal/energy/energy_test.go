package energy

import (
	"testing"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/cachesim"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/trace"
)

func TestEnergyComponents(t *testing.T) {
	m := Skylake()
	c := cachesim.Counters{Flops: 1e9, L1Hits: 1e9, L2Hits: 1e6, L2Misses: 1e5}
	b := m.Energy(c, 1.0)
	if b.Pkg <= m.PkgIdleW {
		t.Errorf("pkg energy %g does not exceed idle for heavy counters", b.Pkg)
	}
	if b.RAM <= m.RAMIdleW {
		t.Errorf("ram energy %g does not exceed idle", b.RAM)
	}
	if b.Total != b.Pkg+b.RAM {
		t.Error("total != pkg + ram")
	}
	// Zero counters, zero time: zero energy.
	z := m.Energy(cachesim.Counters{}, 0)
	if z.Total != 0 {
		t.Errorf("zero-input energy %g", z.Total)
	}
}

func TestEnergyMonotoneInCounters(t *testing.T) {
	m := Skylake()
	small := m.Energy(cachesim.Counters{Flops: 1e6}, 0.5)
	big := m.Energy(cachesim.Counters{Flops: 1e9}, 0.5)
	if big.Pkg <= small.Pkg {
		t.Error("pkg energy not monotone in flops")
	}
}

// TestFastSavesEnergy reproduces Figure 6's direction and shape: the fast
// algorithm's modeled dynamic energy is below the quadratic sweep's at
// moderate T (the paper reports ~50-80% savings near T=4000), and the
// saving factor grows with T (toward >99% at the paper's largest sizes).
func TestFastSavesEnergy(t *testing.T) {
	em := Skylake()
	ratio := func(T int) float64 {
		mdl, err := bopm.New(option.Default(), T)
		if err != nil {
			t.Fatal(err)
		}
		spec := trace.BOPMSpec(mdl)
		hN := cachesim.NewSKX()
		trace.NaiveGR(hN, spec)
		hF := cachesim.NewSKX()
		trace.FastGR(hF, spec)
		// Dynamic energy only (zero wall time): machine-independent.
		eN := em.Energy(hN.Snapshot(), 0).Total
		eF := em.Energy(hF.Snapshot(), 0).Total
		return eN / eF
	}
	r12 := ratio(1 << 12)
	r13 := ratio(1 << 13)
	if r13 < 1.5 {
		t.Errorf("fast saves only %.2fx dynamic energy at T=2^13", r13)
	}
	if r13 <= r12 {
		t.Errorf("energy saving factor not growing: %.2fx at 2^12 vs %.2fx at 2^13", r12, r13)
	}
}
