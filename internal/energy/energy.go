// Package energy models package (CPU+caches) and DRAM energy from the event
// counts produced by the traced kernels, replacing the paper's perf/RAPL
// measurements (Figures 6 and 10).
//
// The model is the standard linear event-cost form
//
//	E_pkg = e_flop*flops + e_l1*L1hits + e_l2*L2hits + e_llc*L2misses
//	        + P_pkgIdle * t
//	E_ram = e_dram*L2misses + P_ramIdle * t
//
// with per-event energies in the ranges reported for ~14 nm server parts
// (Horowitz, ISSCC 2014, scaled; Molka et al., ICPADS 2010): a few pJ per
// double-precision flop, ~1 pJ/B for L1, tens of pJ per L2 line, and
// ~10-20 nJ per DRAM line, plus static power integrated over the measured
// wall time. Absolute Joules are model outputs, not measurements; the
// experiments reproduce the paper's *shape* — energy tracks total work, so
// the O(T log^2 T) algorithm's savings grow from ~80% at T~4000 toward >99%
// at large T.
package energy

import "github.com/nlstencil/amop/internal/cachesim"

// Model holds per-event energies (Joules) and static powers (Watts).
type Model struct {
	FlopJ    float64 // per floating-point op
	L1HitJ   float64 // per L1 access that hits
	L2HitJ   float64 // per L1 miss served by L2
	LLCMissJ float64 // per L2 miss (on-package traffic to the memory controller)
	DRAMJ    float64 // per L2 miss served by DRAM (RAM domain)
	PkgIdleW float64 // static package power
	RAMIdleW float64 // static DRAM power
}

// Skylake returns the default model, loosely calibrated to a 2-socket SKX
// node like the paper's Table 3 testbed.
func Skylake() Model {
	return Model{
		FlopJ:    10e-12,
		L1HitJ:   8e-12,
		L2HitJ:   40e-12,
		LLCMissJ: 500e-12,
		DRAMJ:    15e-9,
		PkgIdleW: 60,
		RAMIdleW: 6,
	}
}

// Breakdown is the modeled energy split by RAPL domain.
type Breakdown struct {
	Pkg   float64 // Joules, package domain (cores + caches)
	RAM   float64 // Joules, DRAM domain
	Total float64
}

// Energy converts counters plus the measured wall time into Joules.
func (m Model) Energy(c cachesim.Counters, seconds float64) Breakdown {
	pkg := m.FlopJ*float64(c.Flops) +
		m.L1HitJ*float64(c.L1Hits) +
		m.L2HitJ*float64(c.L2Hits) +
		m.LLCMissJ*float64(c.L2Misses) +
		m.PkgIdleW*seconds
	ram := m.DRAMJ*float64(c.L2Misses) + m.RAMIdleW*seconds
	return Breakdown{Pkg: pkg, RAM: ram, Total: pkg + ram}
}
