package cachesim

import (
	"testing"
	"testing/quick"
)

func TestNewCacheValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"bad line":      {Size: 1024, Ways: 2, LineSize: 48},
		"zero ways":     {Size: 1024, Ways: 0, LineSize: 64},
		"indivisible":   {Size: 1000, Ways: 2, LineSize: 64},
		"non-pow2 sets": {Size: 3 * 64 * 2, Ways: 2, LineSize: 64},
	} {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := NewCache(Config{Size: 32 << 10, Ways: 8, LineSize: 64}); err != nil {
		t.Errorf("SKX L1 config rejected: %v", err)
	}
}

func TestColdMissesThenHits(t *testing.T) {
	c, err := NewCache(Config{Size: 1024, Ways: 2, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Touch 8 distinct lines: all cold misses.
	for i := 0; i < 8; i++ {
		if c.access(uint64(i * 64)) {
			t.Errorf("line %d: unexpected hit on cold cache", i)
		}
	}
	// Re-touch: all hits (8 sets x 2 ways = 16 lines capacity).
	for i := 0; i < 8; i++ {
		if !c.access(uint64(i * 64)) {
			t.Errorf("line %d: unexpected miss on warm cache", i)
		}
	}
	if c.Hits != 8 || c.Misses != 8 {
		t.Errorf("hits=%d misses=%d, want 8/8", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	// One set (2 ways): lines mapping to the same set evict in LRU order.
	c, err := NewCache(Config{Size: 128, Ways: 2, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := uint64(0), uint64(64), uint64(128) // all set 0 (1 set total)
	c.access(a)                                   // miss
	c.access(b)                                   // miss
	c.access(a)                                   // hit, a is MRU
	c.access(d)                                   // miss, evicts b (LRU)
	if !c.access(a) {
		t.Error("a should still be resident")
	}
	if c.access(b) {
		t.Error("b should have been evicted")
	}
}

func TestSameLineHits(t *testing.T) {
	c, _ := NewCache(Config{Size: 1024, Ways: 2, LineSize: 64})
	c.access(0)
	for off := uint64(8); off < 64; off += 8 {
		if !c.access(off) {
			t.Errorf("offset %d: same-line access missed", off)
		}
	}
}

func TestHierarchyInclusionFlow(t *testing.T) {
	h := NewSKX()
	// Stream 1 MB of float64 (128K elements): every line misses L1 once.
	v := h.NewF64(128 << 10)
	for i := 0; i < v.Len(); i++ {
		v.Set(i, float64(i))
	}
	s := h.Snapshot()
	wantLines := uint64(128 << 10 * 8 / 64)
	if s.L1Misses != wantLines {
		t.Errorf("L1 misses %d, want %d (one per line)", s.L1Misses, wantLines)
	}
	if s.L2Misses != wantLines {
		t.Errorf("L2 misses %d, want %d cold misses", s.L2Misses, wantLines)
	}
	// Second sequential pass: 1 MB fits in L2, so L2 hits; L1 (32 KB) misses.
	for i := 0; i < v.Len(); i++ {
		v.Get(i)
	}
	s2 := h.Snapshot()
	if s2.L2Misses != wantLines {
		t.Errorf("re-stream caused %d extra L2 misses; data should fit in L2", s2.L2Misses-wantLines)
	}
	if s2.L1Misses != 2*wantLines {
		t.Errorf("L1 misses %d, want %d (stream twice)", s2.L1Misses, 2*wantLines)
	}
}

func TestSmallWorkingSetStaysInL1(t *testing.T) {
	h := NewSKX()
	v := h.NewF64(1024) // 8 KB
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < v.Len(); i++ {
			v.Get(i)
		}
	}
	s := h.Snapshot()
	if s.L1Misses != 128 { // 8 KB / 64 B cold misses only
		t.Errorf("L1 misses %d, want 128 cold misses only", s.L1Misses)
	}
}

func TestReset(t *testing.T) {
	c, _ := NewCache(Config{Size: 1024, Ways: 2, LineSize: 64})
	c.access(0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("counters survived reset")
	}
	if c.access(0) {
		t.Error("contents survived reset")
	}
}

// TestHitsPlusMissesEqualsAccesses (property): conservation of accesses.
func TestHitsPlusMissesEqualsAccesses(t *testing.T) {
	prop := func(addrs []uint16) bool {
		c, _ := NewCache(Config{Size: 512, Ways: 2, LineSize: 64})
		for _, a := range addrs {
			c.access(uint64(a))
		}
		return c.Hits+c.Misses == uint64(len(addrs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTracedSlicesStoreValues(t *testing.T) {
	h := NewSKX()
	v := h.NewF64(16)
	v.Set(3, 42.5)
	if v.Get(3) != 42.5 {
		t.Error("F64 round trip failed")
	}
	sub := v.Slice(2, 8)
	if sub.Get(1) != 42.5 {
		t.Error("Slice view misaligned")
	}
	c := h.NewC128(8)
	c.Set(2, complex(1, -2))
	if c.Get(2) != complex(1, -2) {
		t.Error("C128 round trip failed")
	}
	h.AddFlops(7)
	if h.Snapshot().Flops != 7 {
		t.Error("flop counter")
	}
}
