// Package cachesim provides a software model of the memory hierarchy used to
// reproduce the paper's cache-miss experiments (Figure 7) without PAPI
// hardware counters. It implements set-associative LRU caches with the
// geometry of the paper's Stampede2 SKX node (Table 3): 32 KB 8-way L1 and
// 1 MB 16-way L2 with 64-byte lines.
//
// Traced variants of each pricing kernel (package trace) replay their exact
// array traffic through a Hierarchy; the resulting miss counts reproduce the
// relative behavior the paper measures — the quadratic algorithms stream the
// whole grid every row while the FFT algorithm's working sets are
// logarithmically sized. Absolute counts differ from hardware (no
// prefetchers, no speculation); EXPERIMENTS.md discusses the gap.
package cachesim

import "fmt"

// Config describes one cache level.
type Config struct {
	Size     int // bytes
	Ways     int
	LineSize int // bytes
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	setMask  uint64
	tags     []uint64 // sets x ways
	stamps   []uint64 // LRU clocks
	valid    []bool
	clock    uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache; Size must be a multiple of Ways*LineSize.
func NewCache(cfg Config) (*Cache, error) {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		return nil, fmt.Errorf("cachesim: line size %d must be a positive power of two", cfg.LineSize)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cachesim: ways %d must be positive", cfg.Ways)
	}
	lines := cfg.Size / cfg.LineSize
	if lines <= 0 || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cachesim: size %d not divisible into %d-way sets of %d-byte lines", cfg.Size, cfg.Ways, cfg.LineSize)
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cachesim: set count %d must be a power of two", sets)
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	return &Cache{
		cfg: cfg, sets: sets, lineBits: lineBits, setMask: uint64(sets - 1),
		tags:   make([]uint64, sets*cfg.Ways),
		stamps: make([]uint64, sets*cfg.Ways),
		valid:  make([]bool, sets*cfg.Ways),
	}, nil
}

// access looks up the line containing addr, returning true on hit. On miss
// the line is filled, evicting the LRU way.
func (c *Cache) access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	c.clock++
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.stamps[base+w] = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	victim := base
	for w := 1; w < c.cfg.Ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.stamps[base+w] < c.stamps[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.stamps[victim] = c.clock
	c.valid[victim] = true
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Hits, c.Misses, c.clock = 0, 0, 0
}

// Hierarchy is an inclusive two-level hierarchy plus operation counters and
// a bump allocator for the traced kernels' address space. It is not safe for
// concurrent use: traced kernels run serially by design.
type Hierarchy struct {
	L1, L2 *Cache
	// Flops counts floating-point operations reported by traced kernels.
	Flops uint64
	// next is the bump-allocation cursor (line-aligned).
	next uint64
}

// SKXConfig returns the paper's Table 3 cache geometry.
func SKXConfig() (l1, l2 Config) {
	return Config{Size: 32 << 10, Ways: 8, LineSize: 64},
		Config{Size: 1 << 20, Ways: 16, LineSize: 64}
}

// NewSKX builds a Hierarchy with the SKX geometry.
func NewSKX() *Hierarchy {
	l1c, l2c := SKXConfig()
	l1, err := NewCache(l1c)
	if err != nil {
		panic(err)
	}
	l2, err := NewCache(l2c)
	if err != nil {
		panic(err)
	}
	return &Hierarchy{L1: l1, L2: l2, next: 1 << 20} // skip the zero page
}

// Access simulates one load or store of a naturally aligned scalar at addr.
func (h *Hierarchy) Access(addr uint64) {
	if !h.L1.access(addr) {
		h.L2.access(addr)
	}
}

// AddFlops accrues floating-point work (for the energy model).
func (h *Hierarchy) AddFlops(n uint64) { h.Flops += n }

// Alloc reserves size bytes of simulated address space, line-aligned, and
// returns the base address. Allocations are never reused; traced kernels
// allocate like the real ones do.
func (h *Hierarchy) Alloc(size int) uint64 {
	const align = 64
	base := h.next
	h.next += (uint64(size) + align - 1) &^ (align - 1)
	return base
}

// Counters is a snapshot of the hierarchy's statistics.
type Counters struct {
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
	Flops            uint64
}

// Snapshot returns the current counters. L1 misses equal L2 accesses, as in
// the paper's Figure 7 caption.
func (h *Hierarchy) Snapshot() Counters {
	return Counters{
		L1Hits: h.L1.Hits, L1Misses: h.L1.Misses,
		L2Hits: h.L2.Hits, L2Misses: h.L2.Misses,
		Flops: h.Flops,
	}
}

// F64 is a traced []float64: every Get/Set replays one 8-byte access.
type F64 struct {
	h    *Hierarchy
	base uint64
	data []float64
}

// NewF64 allocates a traced float64 slice.
func (h *Hierarchy) NewF64(n int) F64 {
	return F64{h: h, base: h.Alloc(8 * n), data: make([]float64, n)}
}

// Len returns the slice length.
func (v F64) Len() int { return len(v.data) }

// Get loads element i.
func (v F64) Get(i int) float64 {
	v.h.Access(v.base + 8*uint64(i))
	return v.data[i]
}

// Set stores element i.
func (v F64) Set(i int, x float64) {
	v.h.Access(v.base + 8*uint64(i))
	v.data[i] = x
}

// Slice returns a traced view of [lo, hi) sharing the same storage.
func (v F64) Slice(lo, hi int) F64 {
	return F64{h: v.h, base: v.base + 8*uint64(lo), data: v.data[lo:hi]}
}

// C128 is a traced []complex128 (16-byte elements).
type C128 struct {
	h    *Hierarchy
	base uint64
	data []complex128
}

// NewC128 allocates a traced complex128 slice.
func (h *Hierarchy) NewC128(n int) C128 {
	return C128{h: h, base: h.Alloc(16 * n), data: make([]complex128, n)}
}

// Len returns the slice length.
func (v C128) Len() int { return len(v.data) }

// Get loads element i.
func (v C128) Get(i int) complex128 {
	v.h.Access(v.base + 16*uint64(i))
	return v.data[i]
}

// Set stores element i.
func (v C128) Set(i int, x complex128) {
	v.h.Access(v.base + 16*uint64(i))
	v.data[i] = x
}
