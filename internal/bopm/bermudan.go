package bopm

import (
	"fmt"

	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/par"
)

// PriceBermudan prices a Bermudan option on the binomial lattice: exercise
// is allowed only at depths that are multiples of every (counting from
// expiry; the valuation date is exercisable iff T is a multiple too, so
// every=1 reproduces the American price exactly).
//
// Between consecutive exercise dates the value function evolves purely
// linearly, so each inter-date block is one multi-step FFT evolution of the
// whole row: O((T/every) * T log T) work in total — this is the paper's
// "Bermudan options" future-work item, solved by the same linear-stencil
// machinery without needing any boundary structure (and therefore valid for
// both calls and puts).
func (m *Model) PriceBermudan(kind option.Kind, every int) (float64, error) {
	if every < 1 {
		return 0, fmt.Errorf("bopm: Bermudan exercise interval %d must be >= 1", every)
	}
	row := make([]float64, m.T+1)
	for j := range row {
		row[j] = m.Prm.Payoff(kind, m.Asset(0, j))
	}
	st := m.Stencil()
	fillEx := m.sweepProblem(kind, true).FillExercise

	depth := 0
	for depth < m.T {
		next := (depth/every + 1) * every
		if next > m.T {
			next = m.T
		}
		row, _ = linstencil.EvolveCone(row, st, next-depth)
		depth = next
		if depth%every == 0 {
			hi := m.T - depth
			par.For(hi+1, 2048, func(lo, hiC int) {
				const chunk = 512
				var ex [chunk]float64
				for c := lo; c < hiC; c += chunk {
					ce := min(c+chunk, hiC) - 1
					fillEx(depth, c, ce, ex[:ce-c+1])
					for j := c; j <= ce; j++ {
						if e := ex[j-c]; e > row[j] {
							row[j] = e
						}
					}
				}
			})
		}
	}
	return row[0], nil
}
