// Package bopm implements American and European option pricing under the
// Cox-Ross-Rubinstein binomial option pricing model (Section 2 of the
// paper), with the full ladder of algorithms the paper benchmarks:
//
//   - PriceFast: the paper's O(T log^2 T) FFT-based nonlinear-stencil
//     algorithm ("fft-bopm"), American calls;
//   - PriceNaive / PriceNaiveParallel: the standard nested loop of Figure 1
//     ("ql-bopm" is the parallel variant);
//   - PriceTiled: cache-aware split tiling ("zb-bopm");
//   - PriceRecursive: cache-oblivious recursive tiling (Table 2);
//   - PriceEuropean / PriceEuropeanNaive: European variants (the linear
//     special case, priced with a single multi-step FFT evolution).
//
// Grid convention follows the paper: the tree of T steps is embedded in a
// (T+1) x (T+1) grid with leaves (expiry) in the top row; we index rows by
// depth = T - i so depth 0 is expiry and depth T is the valuation apex. The
// asset price at (depth, col) is S * u^(2*col - T + depth).
package bopm

import (
	"fmt"
	"math"

	"github.com/nlstencil/amop/internal/fbstencil"
	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/sweep"
)

// MaxSteps bounds T so that the extreme leaf prices S*u^(+-T) stay finite in
// float64 for any reasonable volatility (V*sqrt(E*T) < 700).
const MaxSteps = 1 << 22

// Model holds the precomputed per-step quantities of a binomial tree.
type Model struct {
	Prm   option.Params
	T     int
	Dt    float64 // time per step
	U     float64 // up factor e^(V*sqrt(dt))
	Q     float64 // risk-neutral up-move probability
	Disc  float64 // per-step discount e^(-R*dt)
	S0    float64 // weight on the down child (column j):   Disc*(1-Q)
	S1    float64 // weight on the up child (column j+1):   Disc*Q
	logU  float64
	baseC int // fbstencil recursion cutoff override (0 = default)
}

// New validates the parameters and precomputes the tree quantities.
func New(p option.Params, steps int) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if steps < 1 {
		return nil, fmt.Errorf("bopm: steps = %d must be >= 1", steps)
	}
	if steps > MaxSteps {
		return nil, fmt.Errorf("bopm: steps = %d exceeds the supported maximum %d", steps, MaxSteps)
	}
	dt := p.E / float64(steps)
	u := math.Exp(p.V * math.Sqrt(dt))
	d := 1 / u
	q := (math.Exp((p.R-p.Y)*dt) - d) / (u - d)
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("bopm: risk-neutral probability %v outside (0,1); the drift (R-Y)*dt=%v overwhelms one volatility step — increase steps or volatility", q, (p.R-p.Y)*dt)
	}
	disc := math.Exp(-p.R * dt)
	return &Model{
		Prm: p, T: steps, Dt: dt, U: u, Q: q, Disc: disc,
		S0: disc * (1 - q), S1: disc * q, logU: math.Log(u),
	}, nil
}

// SetBaseCase overrides the fast solver's recursion cutoff (for ablation
// experiments). Zero restores the default.
func (m *Model) SetBaseCase(h int) { m.baseC = h }

// Asset returns the underlying price at cell (depth, col).
func (m *Model) Asset(depth, col int) float64 {
	return m.Prm.S * math.Exp(float64(2*col-m.T+depth)*m.logU)
}

// Exercise returns the (unclipped) immediate-exercise value at (depth, col).
func (m *Model) Exercise(kind option.Kind, depth, col int) float64 {
	if kind == option.Call {
		return m.Asset(depth, col) - m.Prm.K
	}
	return m.Prm.K - m.Asset(depth, col)
}

// Stencil returns the one-step linear continuation stencil
// v(d+1,j) = S0*v(d,j) + S1*v(d,j+1).
func (m *Model) Stencil() linstencil.Stencil {
	return linstencil.Stencil{MinOff: 0, W: []float64{m.S0, m.S1}}
}

// leafBoundary returns the largest leaf column whose call exercise value is
// <= 0 (the initial red/green boundary), or -1 if none.
func (m *Model) leafBoundary() int {
	guess := int(math.Floor((float64(m.T) + math.Log(m.Prm.K/m.Prm.S)/m.logU) / 2))
	if guess > m.T {
		guess = m.T
	}
	if guess < -1 {
		guess = -1
	}
	for guess < m.T && m.Exercise(option.Call, 0, guess+1) <= 0 {
		guess++
	}
	for guess >= 0 && m.Exercise(option.Call, 0, guess) > 0 {
		guess--
	}
	return guess
}

// PriceFast prices the American call with the paper's FFT-based
// nonlinear-stencil algorithm: O(T log^2 T) work, O(T) span.
func (m *Model) PriceFast() (float64, error) {
	return m.PriceFastStats(nil)
}

// PriceFastStats is PriceFast with work-counter collection.
func (m *Model) PriceFastStats(st *fbstencil.Stats) (float64, error) {
	return m.priceFast(st, nil)
}

// PriceFastCancel is PriceFast with a cancellation hook, polled at trapezoid
// granularity (typically ctx.Err of a request context); the first non-nil
// error it returns aborts the solve and is returned.
func (m *Model) PriceFastCancel(cancel func() error) (float64, error) {
	return m.priceFast(nil, cancel)
}

func (m *Model) priceFast(st *fbstencil.Stats, cancel func() error) (float64, error) {
	prob := &fbstencil.GreenRight{
		Stencil:  m.Stencil(),
		T:        m.T,
		Hi0:      m.T,
		Init:     func(col int) float64 { return math.Max(0, m.Exercise(option.Call, 0, col)) },
		Green:    func(depth, col int) float64 { return m.Exercise(option.Call, depth, col) },
		Bnd0:     m.leafBoundary(),
		BaseCase: m.baseC,
		Cancel:   cancel,
	}
	v, _, err := fbstencil.SolveGreenRight(prob, st)
	return v, err
}

// sweepProblem builds the baseline-sweep description for the given option
// kind; american=false drops the exercise comparison (European).
func (m *Model) sweepProblem(kind option.Kind, american bool) *sweep.Problem {
	p := &sweep.Problem{
		W:    []float64{m.S0, m.S1},
		T:    m.T,
		Hi0:  m.T,
		Leaf: func(col int) float64 { return m.Prm.Payoff(kind, m.Asset(0, col)) },
	}
	if american {
		u2 := m.U * m.U
		K := m.Prm.K
		if kind == option.Call {
			p.FillExercise = func(depth, lo, hi int, out []float64) {
				a := m.Asset(depth, lo)
				for i := range out {
					out[i] = a - K
					a *= u2
				}
			}
		} else {
			p.FillExercise = func(depth, lo, hi int, out []float64) {
				a := m.Asset(depth, lo)
				for i := range out {
					out[i] = K - a
					a *= u2
				}
			}
		}
	}
	return p
}

// PriceNaive is the serial nested loop of Figure 1 (American).
func (m *Model) PriceNaive(kind option.Kind) float64 {
	return sweep.Naive(m.sweepProblem(kind, true))
}

// PriceNaiveParallel is the row-parallel nested loop — the structure of the
// paper's ql-bopm baseline.
func (m *Model) PriceNaiveParallel(kind option.Kind) float64 {
	return sweep.NaiveParallel(m.sweepProblem(kind, true))
}

// PriceTiled is the cache-aware split-tiled sweep (zb-bopm analogue).
// tileW/tileH <= 0 select L1-sized defaults.
func (m *Model) PriceTiled(kind option.Kind, tileW, tileH int) float64 {
	return sweep.Tiled(m.sweepProblem(kind, true), tileW, tileH)
}

// PriceRecursive is the cache-oblivious recursive-tiling sweep (Table 2).
func (m *Model) PriceRecursive(kind option.Kind) float64 {
	return sweep.Recursive(m.sweepProblem(kind, true))
}

// PriceEuropean prices the European option with a single T-step FFT
// evolution of the payoff row — the linear special case, O(T log T).
//
// The transform is applied to the put payoff, which is bounded by K; calls
// are recovered through put-call parity, which is exact on the lattice
// because the per-step weights satisfy the discrete martingale identity.
// Transforming the call payoff directly would lose all precision at large T:
// FFT error scales with the largest row entry, and deep-ITM call leaves grow
// like S*u^T.
func (m *Model) PriceEuropean(kind option.Kind) float64 {
	row := make([]float64, m.T+1)
	for j := range row {
		row[j] = m.Prm.Payoff(option.Put, m.Asset(0, j))
	}
	out, _ := linstencil.EvolveCone(row, m.Stencil(), m.T)
	put := out[0]
	if kind == option.Put {
		return put
	}
	return put + m.Prm.S*math.Exp(-m.Prm.Y*m.Prm.E) - m.Prm.K*math.Exp(-m.Prm.R*m.Prm.E)
}

// PriceEuropeanNaive is the serial nested loop without the exercise max.
func (m *Model) PriceEuropeanNaive(kind option.Kind) float64 {
	return sweep.Naive(m.sweepProblem(kind, false))
}

// LeafBoundary exposes the initial red/green boundary for the traced kernels
// and diagnostics.
func (m *Model) LeafBoundary() int { return m.leafBoundary() }
