package bopm

import (
	"math"

	"github.com/nlstencil/amop/internal/fbstencil"
	"github.com/nlstencil/amop/internal/option"
)

// This file implements the experimental fast American PUT under the
// binomial model — an extension beyond the paper, which proves the
// red/green boundary structure for lattice calls only. For puts the
// exercise (green) region sits on the low-price side, i.e. the LEFT of the
// grid, and the one-sided stencil's dependencies point away from it; the
// corresponding solver is fbstencil.SolveGreenLeftOneSided. The structural
// assumptions are verified empirically (see ValidatePutStructure and the
// package tests), not proven.

// putProblem builds the green-left instance for the American put.
func (m *Model) putProblem() *fbstencil.GreenLeftOneSided {
	green := func(depth, col int) float64 { return m.Exercise(option.Put, depth, col) }
	// Largest leaf column with strictly positive put payoff.
	guess := int(math.Ceil((float64(m.T) + math.Log(m.Prm.K/m.Prm.S)/m.logU) / 2))
	if guess > m.T {
		guess = m.T
	}
	if guess < -1 {
		guess = -1
	}
	for guess < m.T && green(0, guess+1) > 0 {
		guess++
	}
	for guess >= 0 && green(0, guess) <= 0 {
		guess--
	}
	return &fbstencil.GreenLeftOneSided{
		Stencil:  m.Stencil(),
		T:        m.T,
		Hi0:      m.T,
		Init:     func(col int) float64 { return math.Max(0, green(0, col)) },
		Green:    green,
		Bnd0:     guess,
		BaseCase: m.baseC,
	}
}

// PriceFastPut prices the American put with the FFT-based green-left
// solver: O(T log^2 T) work. Experimental — the put boundary structure is
// validated empirically, not proven; cross-check against PriceNaive(Put) for
// unusual parameter regimes (ValidatePutStructure automates that check).
func (m *Model) PriceFastPut() (float64, error) {
	return m.PriceFastPutStats(nil)
}

// PriceFastPutStats is PriceFastPut with work-counter collection.
func (m *Model) PriceFastPutStats(st *fbstencil.Stats) (float64, error) {
	v, _, err := fbstencil.SolveGreenLeftOneSided(m.putProblem(), st)
	return v, err
}

// PriceFastPutCancel is PriceFastPut with a cancellation hook, polled at
// trapezoid granularity.
func (m *Model) PriceFastPutCancel(cancel func() error) (float64, error) {
	prob := m.putProblem()
	prob.Cancel = cancel
	v, _, err := fbstencil.SolveGreenLeftOneSided(prob, nil)
	return v, err
}

// ValidatePutStructure runs the O(T^2) structural validator for the put's
// free boundary on this instance (contiguity, monotonicity, unit drops) and
// returns the first violation, if any.
func (m *Model) ValidatePutStructure() error {
	_, err := fbstencil.GreenLeftOneSidedBoundaryTrace(m.putProblem())
	return err
}
