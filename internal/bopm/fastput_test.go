package bopm

import (
	"math/rand"
	"testing"

	"github.com/nlstencil/amop/internal/option"
)

func TestPutBoundaryStructure(t *testing.T) {
	// The empirical basis for the experimental fast put: the green-left
	// structure holds across broad parameters.
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		m, err := New(randParams(rng), 16+rng.Intn(400))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ValidatePutStructure(); err != nil {
			t.Errorf("trial %d (T=%d, %+v): %v", trial, m.T, m.Prm, err)
		}
	}
	// Zero-dividend regime too (the common case for equity puts).
	for trial := 0; trial < 10; trial++ {
		p := randParams(rng)
		p.Y = 0
		m, err := New(p, 16+rng.Intn(400))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ValidatePutStructure(); err != nil {
			t.Errorf("Y=0 trial %d (T=%d): %v", trial, m.T, err)
		}
	}
}

func TestFastPutMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 30; trial++ {
		p := randParams(rng)
		if trial%2 == 0 {
			p.Y = 0
		}
		m, err := New(p, 16+rng.Intn(600))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFastPut()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive(option.Put)
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d, %+v): fast %.12g naive %.12g rel %g", trial, m.T, p, fast, naive, d)
		}
	}
}

func TestFastPutPaperParams(t *testing.T) {
	for _, T := range []int{100, 1000, 5000} {
		m, err := New(option.Default(), T)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFastPut()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive(option.Put)
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("T=%d: fast %.12g naive %.12g rel %g", T, fast, naive, d)
		}
	}
}

func TestFastPutDeepCases(t *testing.T) {
	cases := []option.Params{
		{S: 400, K: 50, R: 0.03, V: 0.2, Y: 0, E: 1},      // deep OTM put: all red
		{S: 10, K: 300, R: 0.03, V: 0.2, Y: 0, E: 1},      // deep ITM put: exercise now
		{S: 100, K: 100, R: 0.0001, V: 0.3, Y: 0.1, E: 2}, // high dividend, tiny rate
	}
	for i, p := range cases {
		m, err := New(p, 600)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFastPut()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive(option.Put)
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("case %d: fast %.12g naive %.12g", i, fast, naive)
		}
	}
}
