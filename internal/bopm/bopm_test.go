package bopm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nlstencil/amop/internal/option"
)

func randParams(rng *rand.Rand) option.Params {
	return option.Params{
		S: 80 + 80*rng.Float64(),
		K: 80 + 80*rng.Float64(),
		R: 0.001 + 0.08*rng.Float64(),
		V: 0.1 + 0.4*rng.Float64(),
		Y: 0.005 + 0.08*rng.Float64(),
		E: 0.25 + 1.5*rng.Float64(),
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewValidation(t *testing.T) {
	good := option.Default()
	if _, err := New(good, 100); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []struct {
		name  string
		prm   option.Params
		steps int
	}{
		{"zero steps", good, 0},
		{"negative steps", good, -4},
		{"too many steps", good, MaxSteps + 1},
		{"bad spot", option.Params{S: -1, K: 100, R: 0.01, V: 0.2, Y: 0, E: 1}, 100},
		{"bad strike", option.Params{S: 100, K: 0, R: 0.01, V: 0.2, Y: 0, E: 1}, 100},
		{"bad vol", option.Params{S: 100, K: 100, R: 0.01, V: 0, Y: 0, E: 1}, 100},
		{"bad expiry", option.Params{S: 100, K: 100, R: 0.01, V: 0.2, Y: 0, E: 0}, 100},
		{"nan rate", option.Params{S: 100, K: 100, R: math.NaN(), V: 0.2, Y: 0, E: 1}, 100},
		// One huge drift step overwhelms the volatility: q > 1.
		{"degenerate tree", option.Params{S: 100, K: 100, R: 3, V: 0.01, Y: 0, E: 1}, 1},
	}
	for _, c := range cases {
		if _, err := New(c.prm, c.steps); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFastMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		m, err := New(randParams(rng), 16+rng.Intn(600))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive(option.Call)
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d): fast %.12g naive %.12g rel %g", trial, m.T, fast, naive, d)
		}
	}
}

func TestFastMatchesNaivePaperParams(t *testing.T) {
	for _, T := range []int{100, 1000, 5000} {
		m, err := New(option.Default(), T)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive(option.Call)
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("T=%d: fast %.12g naive %.12g rel %g", T, fast, naive, d)
		}
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 12; trial++ {
		m, err := New(randParams(rng), 30+rng.Intn(500))
		if err != nil {
			t.Fatal(err)
		}
		ref := m.PriceNaive(option.Call)
		algs := map[string]float64{
			"naive-parallel": m.PriceNaiveParallel(option.Call),
			"tiled-default":  m.PriceTiled(option.Call, 0, 0),
			"tiled-odd":      m.PriceTiled(option.Call, 37, 5),
			"tiled-tiny":     m.PriceTiled(option.Call, 8, 2),
			"recursive":      m.PriceRecursive(option.Call),
		}
		for name, v := range algs {
			if d := relDiff(v, ref); d > 1e-9 {
				t.Errorf("trial %d (T=%d) %s: %.12g vs naive %.12g rel %g", trial, m.T, name, v, ref, d)
			}
		}
	}
}

func TestAllAlgorithmsAgreePut(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		m, err := New(randParams(rng), 30+rng.Intn(400))
		if err != nil {
			t.Fatal(err)
		}
		ref := m.PriceNaive(option.Put)
		for name, v := range map[string]float64{
			"naive-parallel": m.PriceNaiveParallel(option.Put),
			"tiled":          m.PriceTiled(option.Put, 0, 0),
			"recursive":      m.PriceRecursive(option.Put),
		} {
			if d := relDiff(v, ref); d > 1e-9 {
				t.Errorf("trial %d %s: %.12g vs %.12g", trial, name, v, ref)
			}
		}
	}
}

func TestEuropeanFastMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 15; trial++ {
		m, err := New(randParams(rng), 16+rng.Intn(800))
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []option.Kind{option.Call, option.Put} {
			fast := m.PriceEuropean(kind)
			naive := m.PriceEuropeanNaive(kind)
			if d := relDiff(fast, naive); d > 1e-9 {
				t.Errorf("trial %d %v: fft %.12g naive %.12g", trial, kind, fast, naive)
			}
		}
	}
}

// TestEuropeanConvergesToBlackScholes: the binomial European price converges
// to the closed form as T grows.
func TestEuropeanConvergesToBlackScholes(t *testing.T) {
	p := option.Params{S: 100, K: 110, R: 0.03, V: 0.25, Y: 0.01, E: 1}
	for _, kind := range []option.Kind{option.Call, option.Put} {
		bs := option.BlackScholes(p, kind)
		var prevErr float64 = math.Inf(1)
		for _, T := range []int{64, 512, 4096} {
			m, err := New(p, T)
			if err != nil {
				t.Fatal(err)
			}
			e := math.Abs(m.PriceEuropean(kind) - bs)
			if e > prevErr*1.2 { // allow mild oscillation
				t.Errorf("%v: error grew from %g to %g at T=%d", kind, prevErr, e, T)
			}
			prevErr = e
		}
		if prevErr > 0.01 {
			t.Errorf("%v: binomial European at T=4096 off closed form by %g", kind, prevErr)
		}
	}
}

// TestAmericanDominatesEuropean: early exercise can only add value.
func TestAmericanDominatesEuropean(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 15; trial++ {
		m, err := New(randParams(rng), 200)
		if err != nil {
			t.Fatal(err)
		}
		am, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		eu := m.PriceEuropean(option.Call)
		if am < eu-1e-9 {
			t.Errorf("trial %d: American call %.12g < European %.12g", trial, am, eu)
		}
		amPut := m.PriceNaive(option.Put)
		euPut := m.PriceEuropean(option.Put)
		if amPut < euPut-1e-9 {
			t.Errorf("trial %d: American put %.12g < European %.12g", trial, amPut, euPut)
		}
	}
}

// TestZeroDividendCallEqualsEuropean: with Y=0 early exercise of a call is
// never optimal, so American == European.
func TestZeroDividendCallEqualsEuropean(t *testing.T) {
	p := option.Params{S: 100, K: 95, R: 0.04, V: 0.3, Y: 0, E: 1}
	m, err := New(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	am, err := m.PriceFast()
	if err != nil {
		t.Fatal(err)
	}
	eu := m.PriceEuropean(option.Call)
	// The two sides take different FFT paths (chained trapezoid evolutions
	// vs one straight evolution), so agreement is to rounding accumulation.
	if d := relDiff(am, eu); d > 1e-8 {
		t.Errorf("Y=0: American call %.12g != European %.12g", am, eu)
	}
}

// TestPriceAboveIntrinsic: an American option is worth at least its
// immediate exercise value.
func TestPriceAboveIntrinsic(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 15; trial++ {
		p := randParams(rng)
		m, err := New(p, 300)
		if err != nil {
			t.Fatal(err)
		}
		v, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		if intrinsic := math.Max(p.S-p.K, 0); v < intrinsic-1e-9 {
			t.Errorf("trial %d: call %.12g below intrinsic %.12g", trial, v, intrinsic)
		}
	}
}

// TestBaseCaseAblation: the fast price must be invariant to the recursion
// cutoff (the paper tunes it to 8 for speed only).
func TestBaseCaseAblation(t *testing.T) {
	m, err := New(option.Default(), 2048)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.PriceFast()
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []int{1, 4, 16, 100} {
		m.SetBaseCase(base)
		v, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(v, ref); d > 1e-11 {
			t.Errorf("base %d: %.14g vs %.14g", base, v, ref)
		}
	}
}

func TestLeafBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 30; trial++ {
		m, err := New(randParams(rng), 10+rng.Intn(200))
		if err != nil {
			t.Fatal(err)
		}
		b := m.leafBoundary()
		if b >= 0 && m.Exercise(option.Call, 0, b) > 0 {
			t.Errorf("trial %d: boundary cell %d has positive exercise", trial, b)
		}
		if b < m.T && m.Exercise(option.Call, 0, b+1) <= 0 {
			t.Errorf("trial %d: cell %d right of boundary has exercise <= 0", trial, b+1)
		}
	}
}

func TestMonotoneInSpot(t *testing.T) {
	base := option.Default()
	prev := -math.MaxFloat64
	for s := 80.0; s <= 180; s += 10 {
		p := base
		p.S = s
		m, err := New(p, 500)
		if err != nil {
			t.Fatal(err)
		}
		v, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-9 {
			t.Errorf("call price not increasing in spot at S=%v: %g < %g", s, v, prev)
		}
		prev = v
	}
}
