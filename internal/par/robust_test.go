package par

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// withWorkers overrides the worker count for one test (the CI box may be
// single-core, where the spawn budget is empty and every region runs
// serially) and verifies the budget is clean on entry.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(prev) })
	if InUse() != 0 {
		t.Fatalf("budget dirty at test start: %d tokens in use", InUse())
	}
}

// drainBudget claims the entire spawn budget and returns a release function;
// tests use it to force the exhausted-budget paths.
func drainBudget(t *testing.T) func() {
	t.Helper()
	n := TryAcquire(Workers() * 2)
	if n != Workers()-1 {
		Release(n)
		t.Fatalf("drained %d tokens, want the full budget %d", n, Workers()-1)
	}
	return func() { Release(n) }
}

func TestAcquireCtxImmediate(t *testing.T) {
	withWorkers(t, 4)
	n, err := AcquireCtx(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("AcquireCtx returned %d workers on an idle budget, want >= 1", n)
	}
	Release(n)
	if got := InUse(); got != 0 {
		t.Fatalf("%d tokens leaked", got)
	}
}

func TestAcquireCtxSerialBudgetDoesNotBlock(t *testing.T) {
	withWorkers(t, 1)
	// Workers()-1 = 0 tokens: waiting could never succeed, so AcquireCtx
	// must degrade to serial (0, nil) instead of parking forever.
	n, err := AcquireCtx(context.Background(), 4)
	if n != 0 || err != nil {
		t.Fatalf("got (%d, %v), want (0, nil) on a capacityless budget", n, err)
	}
}

func TestAcquireCtxCanceledWhileExhausted(t *testing.T) {
	withWorkers(t, 4)
	release := drainBudget(t)
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		n, err := AcquireCtx(ctx, 1)
		if n != 0 {
			Release(n)
			t.Error("AcquireCtx granted tokens from an exhausted budget")
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the acquirer park on the pulse
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AcquireCtx did not observe cancellation")
	}
}

func TestAcquireCtxWokenByRelease(t *testing.T) {
	withWorkers(t, 4)
	release := drainBudget(t)
	type grant struct {
		n   int
		err error
	}
	done := make(chan grant, 1)
	go func() {
		n, err := AcquireCtx(context.Background(), 1)
		done <- grant{n, err}
	}()
	time.Sleep(10 * time.Millisecond)
	release() // frees the budget; the pulse must wake the waiter
	select {
	case g := <-done:
		if g.err != nil || g.n != 1 {
			t.Fatalf("got (%d, %v), want (1, nil)", g.n, g.err)
		}
		Release(g.n)
	case <-time.After(5 * time.Second):
		t.Fatal("AcquireCtx missed the release pulse")
	}
	if got := InUse(); got != 0 {
		t.Fatalf("%d tokens leaked", got)
	}
}

// A panic in a For worker must reach the caller as a *PanicError carrying
// the panic-site stack, with every spawn token released — never a goroutine
// leak or a deadlock.
func TestForPanicPropagatesAndRestoresBudget(t *testing.T) {
	withWorkers(t, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate out of For")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "worker boom" {
			t.Fatalf("panic value %v, want worker boom", pe.Value)
		}
		if !bytes.Contains(pe.Stack, []byte("TestForPanicPropagatesAndRestoresBudget")) {
			t.Fatal("stack was not captured at the panic site")
		}
		if got := InUse(); got != 0 {
			t.Fatalf("%d spawn tokens leaked across the panic", got)
		}
	}()
	For(1024, 1, func(lo, hi int) {
		if lo <= 512 && 512 < hi { // panic in whichever chunk holds index 512
			panic("worker boom")
		}
	})
}

func TestDoPanicRestoresBudget(t *testing.T) {
	withWorkers(t, 4)
	var ran atomic.Int32
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate out of Do")
		}
		if got := InUse(); got != 0 {
			t.Fatalf("%d spawn tokens leaked across the panic", got)
		}
	}()
	Do(
		func() { ran.Add(1) },
		func() { panic("task boom") },
		func() { ran.Add(1) },
	)
}

// A panicking RowSweep worker must keep crossing the row barriers so its
// peers never deadlock waiting for it, and the panic must still propagate
// with the budget intact. On a single-core box RowSweep clamps to the serial
// path, where the panic surfaces bare; both shapes are acceptable — what is
// not is a hang or a leaked token.
func TestRowSweepPanicNoBarrierDeadlock(t *testing.T) {
	withWorkers(t, 4)
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		RowSweep(64, func(int) int { return 8192 }, func(row, lo, hi int) {
			if row == 3 && lo == 0 {
				panic("row boom")
			}
		})
	}()
	select {
	case r := <-done:
		val := r
		if pe, ok := r.(*PanicError); ok {
			val = pe.Value
		}
		if val != "row boom" {
			t.Fatalf("recovered %v (%T), want row boom", r, r)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RowSweep deadlocked on a panicking worker")
	}
	if got := InUse(); got != 0 {
		t.Fatalf("%d spawn tokens leaked across the panic", got)
	}
}

func TestBulkReserveKeepsInteractiveHeadroom(t *testing.T) {
	withWorkers(t, 4)
	prevReserve := SetBulkReserve(1)
	defer SetBulkReserve(prevReserve)

	bulk := TryAcquireBulk(16)
	if bulk != Workers()-2 { // budget Workers()-1 minus the reserved token
		Release(bulk)
		t.Fatalf("bulk acquired %d of a %d-token budget with reserve 1, want %d", bulk, Workers()-1, Workers()-2)
	}
	// The reserved token is still there for interactive work.
	inter := TryAcquire(16)
	if inter != 1 {
		Release(bulk + inter)
		t.Fatalf("interactive acquired %d, want the 1 reserved token", inter)
	}
	Release(bulk + inter)
	if got := InUse(); got != 0 {
		t.Fatalf("%d tokens leaked", got)
	}
}
