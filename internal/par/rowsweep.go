package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RowSweep runs a dependent sequence of parallel rows: for each row in
// order, body(row, lo, hi) executes over disjoint chunks covering
// [0, width(row)), and all chunks of a row complete before the next row
// starts.
//
// Unlike calling For once per row, RowSweep keeps one persistent worker per
// core and separates rows with a flag barrier (sub-microsecond) instead of
// spawn-and-join (several microseconds per row). That difference is what
// lets the row-parallel nested-loop baselines scale the way the paper's
// OpenMP implementations do: a T=2^15 sweep crosses 2^15 barriers.
//
// The barrier uses one cache-line-padded arrival flag per worker and a
// single release flag written by worker 0, so a barrier crossing costs each
// worker one remote store and one spin on a line that changes exactly once —
// no contended read-modify-writes.
func RowSweep(rows int, width func(row int) int, body func(row, lo, hi int)) {
	if rows <= 0 {
		return
	}
	w := Workers()
	if mx := runtime.GOMAXPROCS(0); w > mx {
		w = mx // busy-waiting beyond real parallelism only hurts
	}
	// The caller only waits, so a sweep with w workers adds w-1 goroutines
	// of net concurrency; claim those from the shared spawn budget so
	// sweeps nested under a saturated outer region run serially.
	tokens := 0
	if w > 1 {
		tokens = TryAcquire(w - 1)
		defer Release(tokens)
		w = tokens + 1
	}
	if w <= 1 {
		for r := 0; r < rows; r++ {
			if n := width(r); n > 0 {
				body(r, 0, n)
			}
		}
		return
	}
	b := &flagBarrier{n: w, arrive: make([]paddedFlag, w)}
	// A panicking body is captured (first panic wins) and re-raised after
	// the join. The panicked worker — and, once the panic is visible, every
	// other worker — keeps walking the row loop and crossing barriers
	// without doing work: a worker that simply stopped arriving would
	// deadlock the flag barrier for everyone else.
	var pe atomic.Pointer[PanicError]
	var wg sync.WaitGroup
	wg.Add(w)
	for id := 0; id < w; id++ {
		go func(id int) {
			defer wg.Done()
			gen := uint32(0)
			for r := 0; r < rows; {
				skip := pe.Load() != nil
				n := width(r)
				if n < serialRowCutoff {
					// A row this narrow costs less to compute than a
					// barrier crossing. Worker 0 runs the whole run of
					// narrow rows alone; everyone skips to the same spot
					// (width is a pure function, so the scan agrees) and
					// meets at a single barrier.
					next := r
					for next < rows && width(next) < serialRowCutoff {
						if id == 0 && !skip {
							if m := width(next); m > 0 {
								capture(&pe, func() { body(next, 0, m) })
								skip = pe.Load() != nil
							}
						}
						next++
					}
					r = next
					gen++
					b.wait(id, gen)
					continue
				}
				chunk := (n + w - 1) / w
				lo := id * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if lo < hi && !skip {
					capture(&pe, func() { body(r, lo, hi) })
				}
				r++
				gen++
				b.wait(id, gen)
			}
		}(id)
	}
	wg.Wait()
	rethrow(&pe)
}

// serialRowCutoff is the row width below which a row is cheaper to compute
// serially than to cross a multi-core barrier (a few microseconds, i.e. a
// few thousand cells).
const serialRowCutoff = 4096

// paddedFlag is an atomic flag alone on its cache line, so spinning on one
// worker's flag never contends with another's store.
type paddedFlag struct {
	v atomic.Uint32
	_ [60]byte
}

// flagBarrier separates rows: workers publish their arrival generation on
// private flags; worker 0 gathers them and publishes the release generation.
type flagBarrier struct {
	n       int
	arrive  []paddedFlag
	release paddedFlag
}

func (b *flagBarrier) wait(id int, gen uint32) {
	if id == 0 {
		for i := 1; i < b.n; i++ {
			spinUntil(&b.arrive[i].v, gen)
		}
		b.release.v.Store(gen)
		return
	}
	b.arrive[id].v.Store(gen)
	spinUntil(&b.release.v, gen)
}

// spinUntil busy-waits for the flag to reach gen, yielding occasionally as a
// safety valve for oversubscribed or GC-assist situations.
func spinUntil(f *atomic.Uint32, gen uint32) {
	for spins := 1; f.Load() != gen; spins++ {
		if spins&(1<<14-1) == 0 {
			runtime.Gosched()
		}
	}
}
