package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1 << 16} {
		var hits []int32
		if n > 0 {
			hits = make([]int32, n)
		}
		For(n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForQuick(t *testing.T) {
	prop := func(nRaw uint16, grainRaw uint8) bool {
		n := int(nRaw) % 2000
		grain := int(grainRaw)
		var total atomic.Int64
		For(n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			total.Add(int64(hi - lo))
		})
		return total.Load() == int64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	calls := 0
	For(100, 1, func(lo, hi int) {
		if lo != 0 || hi != 100 {
			t.Errorf("single worker got chunk [%d,%d)", lo, hi)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("single worker made %d calls, want 1", calls)
	}
}

func TestDoRunsAll(t *testing.T) {
	var count atomic.Int64
	fns := make([]func(), 17)
	for i := range fns {
		fns[i] = func() { count.Add(1) }
	}
	Do(fns...)
	if count.Load() != 17 {
		t.Errorf("Do ran %d of 17 functions", count.Load())
	}
	Do() // no-op must not hang
	Do(func() { count.Add(1) })
	if count.Load() != 18 {
		t.Error("single-function Do did not run")
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS", Workers())
	}
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("negative SetWorkers should mean default")
	}
	SetWorkers(prev)
}

func TestForRespectsGrain(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	var chunks atomic.Int64
	For(10, 100, func(lo, hi int) { // grain larger than n: one chunk
		chunks.Add(1)
	})
	if chunks.Load() != 1 {
		t.Errorf("grain 100 over n=10 produced %d chunks, want 1", chunks.Load())
	}
}

func TestTryAcquireBudget(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	if got := TryAcquire(10); got != 3 {
		t.Fatalf("TryAcquire(10) with 4 workers = %d, want 3", got)
	}
	if got := TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on exhausted budget = %d, want 0", got)
	}
	Release(3)
	if got := TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) after release = %d, want 2", got)
	}
	Release(2)
	if got := TryAcquire(0); got != 0 {
		t.Fatalf("TryAcquire(0) = %d, want 0", got)
	}
}

func TestForRunsSerialWhenBudgetExhausted(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	tokens := TryAcquire(3)
	if tokens != 3 {
		t.Fatalf("setup: acquired %d tokens, want 3", tokens)
	}
	defer Release(tokens)
	calls := 0
	For(100, 1, func(lo, hi int) {
		if lo != 0 || hi != 100 {
			t.Errorf("exhausted budget got chunk [%d,%d), want [0,100)", lo, hi)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("For under exhausted budget made %d calls, want 1 (serial)", calls)
	}
	var count atomic.Int64
	Do(func() { count.Add(1) }, func() { count.Add(1) }, func() { count.Add(1) })
	if count.Load() != 3 {
		t.Errorf("Do under exhausted budget ran %d of 3 functions", count.Load())
	}
}

func TestNestedForStaysWithinBudget(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var live, peak atomic.Int64
	note := func() {
		n := live.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
	}
	For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(64, 1, func(ilo, ihi int) {
				note()
				for j := ilo; j < ihi; j++ {
				}
				live.Add(-1)
			})
		}
	})
	// 4 workers: the outer For plus every nested For together may keep at
	// most Workers() bodies in flight (1 caller + Workers()-1 spawned).
	if p := peak.Load(); p > 4 {
		t.Errorf("peak concurrent loop bodies %d exceeds worker budget 4", p)
	}
}

func TestRowSweepMatchesSerial(t *testing.T) {
	rows := 200
	width := func(r int) int { return 300 - r }
	run := func() []int64 {
		acc := make([]int64, rows)
		RowSweep(rows, width, func(row, lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(row + i)
			}
			atomic.AddInt64(&acc[row], s)
		})
		return acc
	}
	got := run()
	prev := SetWorkers(1)
	want := run()
	SetWorkers(prev)
	for r := range got {
		if got[r] != want[r] {
			t.Fatalf("row %d: parallel %d vs serial %d", r, got[r], want[r])
		}
	}
}

func TestRowSweepOrdering(t *testing.T) {
	// Each row must observe the previous row fully written: a dependent
	// running sum catches barrier violations.
	n := 512
	buf := make([]int64, n)
	for i := range buf {
		buf[i] = 1
	}
	next := make([]int64, n)
	RowSweep(n-1, func(int) int { return n - 1 }, func(row, lo, hi int) {
		for i := lo; i < hi; i++ {
			next[i] = buf[i] + buf[i+1]
		}
		if hi == n-1-0 { // last chunk of the row swaps; all workers see it after the barrier
		}
		if lo == 0 {
			// no-op: swap happens implicitly below via copy in the next row read
		}
		_ = row
	})
	// A weaker but race-detecting property: sums stay consistent.
	var tot int64
	for _, v := range next {
		tot += v
	}
	if tot != int64(2*(n-1)) {
		t.Fatalf("dependent sweep total %d, want %d", tot, 2*(n-1))
	}
}

func TestRowSweepEmpty(t *testing.T) {
	RowSweep(0, func(int) int { return 10 }, func(int, int, int) { t.Fatal("called") })
	RowSweep(3, func(int) int { return 0 }, func(int, int, int) { t.Fatal("called on empty row") })
}
