package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1 << 16} {
		var hits []int32
		if n > 0 {
			hits = make([]int32, n)
		}
		For(n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForQuick(t *testing.T) {
	prop := func(nRaw uint16, grainRaw uint8) bool {
		n := int(nRaw) % 2000
		grain := int(grainRaw)
		var total atomic.Int64
		For(n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			total.Add(int64(hi - lo))
		})
		return total.Load() == int64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	calls := 0
	For(100, 1, func(lo, hi int) {
		if lo != 0 || hi != 100 {
			t.Errorf("single worker got chunk [%d,%d)", lo, hi)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("single worker made %d calls, want 1", calls)
	}
}

func TestDoRunsAll(t *testing.T) {
	var count atomic.Int64
	fns := make([]func(), 17)
	for i := range fns {
		fns[i] = func() { count.Add(1) }
	}
	Do(fns...)
	if count.Load() != 17 {
		t.Errorf("Do ran %d of 17 functions", count.Load())
	}
	Do() // no-op must not hang
	Do(func() { count.Add(1) })
	if count.Load() != 18 {
		t.Error("single-function Do did not run")
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS", Workers())
	}
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("negative SetWorkers should mean default")
	}
	SetWorkers(prev)
}

func TestForRespectsGrain(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	var chunks atomic.Int64
	For(10, 100, func(lo, hi int) { // grain larger than n: one chunk
		chunks.Add(1)
	})
	if chunks.Load() != 1 {
		t.Errorf("grain 100 over n=10 produced %d chunks, want 1", chunks.Load())
	}
}

func TestRowSweepMatchesSerial(t *testing.T) {
	rows := 200
	width := func(r int) int { return 300 - r }
	run := func() []int64 {
		acc := make([]int64, rows)
		RowSweep(rows, width, func(row, lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(row + i)
			}
			atomic.AddInt64(&acc[row], s)
		})
		return acc
	}
	got := run()
	prev := SetWorkers(1)
	want := run()
	SetWorkers(prev)
	for r := range got {
		if got[r] != want[r] {
			t.Fatalf("row %d: parallel %d vs serial %d", r, got[r], want[r])
		}
	}
}

func TestRowSweepOrdering(t *testing.T) {
	// Each row must observe the previous row fully written: a dependent
	// running sum catches barrier violations.
	n := 512
	buf := make([]int64, n)
	for i := range buf {
		buf[i] = 1
	}
	next := make([]int64, n)
	RowSweep(n-1, func(int) int { return n - 1 }, func(row, lo, hi int) {
		for i := lo; i < hi; i++ {
			next[i] = buf[i] + buf[i+1]
		}
		if hi == n-1-0 { // last chunk of the row swaps; all workers see it after the barrier
		}
		if lo == 0 {
			// no-op: swap happens implicitly below via copy in the next row read
		}
		_ = row
	})
	// A weaker but race-detecting property: sums stay consistent.
	var tot int64
	for _, v := range next {
		tot += v
	}
	if tot != int64(2*(n-1)) {
		t.Fatalf("dependent sweep total %d, want %d", tot, 2*(n-1))
	}
}

func TestRowSweepEmpty(t *testing.T) {
	RowSweep(0, func(int) int { return 10 }, func(int, int, int) { t.Fatal("called") })
	RowSweep(3, func(int) int { return 0 }, func(int, int, int) { t.Fatal("called on empty row") })
}
