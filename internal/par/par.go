// Package par provides the small fork-join runtime used by all parallel
// algorithms in this module.
//
// The paper's C++ implementation relies on OpenMP with a greedy scheduler;
// here goroutines play the role of OpenMP tasks. The package supports an
// explicit worker-count override so that the Table 5 experiment (runtime as a
// function of the number of cores p) can be reproduced without restarting the
// process.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nlstencil/amop/internal/faultinject"
	"github.com/nlstencil/amop/internal/obs"
)

// PanicError is a panic captured in a worker goroutine and re-raised on the
// goroutine that forked it. Without this translation a panic in any For/Do/
// RowSweep worker would crash the whole process (no other goroutine can
// recover it); with it, fork-join regions have ordinary panic semantics —
// the panic surfaces at the join point, where the batch engine's and the
// serving layer's recover handlers can isolate the fault to one contract.
// Value is the original panic value and Stack the panicking worker's stack,
// captured at the panic site so quarantine records stay diagnosable.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panic: %v", e.Value)
}

// capture runs f, diverting a panic into pe (first panic wins) instead of
// letting it escape the goroutine. An already-wrapped *PanicError re-raised
// by a nested fork-join region passes through unwrapped, so arbitrarily deep
// nesting surfaces the original site's stack, not a tower of wrappers.
func capture(pe *atomic.Pointer[PanicError], f func()) {
	defer func() {
		if r := recover(); r != nil {
			p, ok := r.(*PanicError)
			if !ok {
				p = &PanicError{Value: r, Stack: debug.Stack()}
			}
			pe.CompareAndSwap(nil, p)
		}
	}()
	f()
}

// rethrow re-raises a panic captured by the workers of a fork-join region,
// after the join (budget tokens released, all workers stopped).
func rethrow(pe *atomic.Pointer[PanicError]) {
	if p := pe.Load(); p != nil {
		panic(p)
	}
}

// workerOverride holds the user-requested parallelism. Zero means "use
// runtime.GOMAXPROCS(0)".
var workerOverride atomic.Int64

// spawned counts worker goroutines currently spawned by For, Do and RowSweep
// across the whole process. Together with TryAcquire it forms a global
// spawn budget of Workers()-1 outstanding workers: callers always run one
// chunk inline, so at most Workers() goroutines make progress at once no
// matter how deeply parallel regions nest. An outer loop that has already
// claimed the whole budget (a saturated batch of option pricings, say)
// makes every inner For/Do run serially instead of oversubscribing the
// machine with len(outer) * Workers() goroutines.
var spawned atomic.Int64

// TryAcquire claims up to max worker tokens from the global spawn budget and
// returns how many it got (possibly zero; never blocks). Each token entitles
// the caller to run one extra worker goroutine; the tokens must be returned
// with Release when those workers have finished. For, Do and RowSweep
// acquire their workers through this budget, so external schedulers (e.g.
// the batch pricing engine) can claim tokens for their own pools and the
// nested pricers degrade gracefully to serial execution.
func TryAcquire(max int) int {
	return tryAcquire(max, 0)
}

// TryAcquireBulk is TryAcquire for bulk work (batches, scenario sweeps): it
// leaves SetBulkReserve tokens of headroom untouched so that interactive
// quote repricing can always fork even while a bulk job saturates the
// machine. Under pressure this is what sheds sweep/batch parallelism before
// quote parallelism — bulk callers degrade to serial execution first.
func TryAcquireBulk(max int) int {
	return tryAcquire(max, bulkReserve.Load())
}

func tryAcquire(max int, reserve int64) int {
	if max <= 0 {
		return 0
	}
	if faultinject.Enabled() && faultinject.OnBudget() {
		return 0
	}
	budget := int64(Workers()-1) - reserve
	for {
		cur := spawned.Load()
		free := budget - cur
		if free <= 0 {
			return 0
		}
		n := int64(max)
		if n > free {
			n = free
		}
		if spawned.CompareAndSwap(cur, cur+n) {
			return int(n)
		}
	}
}

// Release returns n tokens claimed with TryAcquire to the spawn budget.
func Release(n int) {
	if n > 0 {
		spawned.Add(-int64(n))
		// Wake one AcquireCtx waiter. The channel is buffered(1), so a
		// pulse sent between a waiter's failed TryAcquire and its select
		// is not lost — the select finds it already pending.
		select {
		case releasePulse <- struct{}{}:
		default:
		}
	}
}

// releasePulse carries "tokens were just returned" wakeups to AcquireCtx
// waiters. Capacity 1: a pending pulse means "re-check the budget", and one
// pending pulse conveys that as well as many.
var releasePulse = make(chan struct{}, 1)

// AcquireCtx claims between 1 and max tokens, blocking until at least one is
// free or ctx is done. It returns the token count (released with Release) or
// ctx.Err(). Unlike TryAcquire it waits for capacity instead of answering 0,
// so callers that strongly prefer to fork — the batch pool's first worker,
// say — need not busy-retry. The one exception is a budget with no capacity
// at all (a single-worker configuration has Workers()-1 = 0 tokens): waiting
// could never succeed, so AcquireCtx returns (0, nil) immediately and the
// caller runs inline, the same degrade-to-serial contract as TryAcquire.
func AcquireCtx(ctx context.Context, max int) (int, error) {
	if max <= 0 {
		return 0, ctx.Err()
	}
	if obs.Enabled() {
		// Time the whole acquisition, blocked or not: uncontended acquires
		// land in the histogram's bottom bucket, so the budget-wait quantiles
		// reflect how often callers actually queue for tokens.
		defer obs.BudgetWait.RecordSince(time.Now())
	}
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if Workers() <= 1 {
			return 0, nil
		}
		if n := TryAcquire(max); n > 0 {
			return n, nil
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-releasePulse:
		}
	}
}

// InUse reports the number of spawn-budget tokens currently outstanding.
// Leak tests assert it returns to zero after cancellations and panics.
func InUse() int { return int(spawned.Load()) }

// bulkReserve is the headroom TryAcquireBulk leaves for interactive work.
var bulkReserve atomic.Int64

// SetBulkReserve reserves n spawn-budget tokens for non-bulk callers and
// returns the previous reservation. The live pricing server reserves a slice
// of the machine at startup so quote repricing never queues behind a
// saturating ScenarioSweep.
func SetBulkReserve(n int) int {
	if n < 0 {
		n = 0
	}
	return int(bulkReserve.Swap(int64(n)))
}

// SetWorkers sets the number of workers used by For and Do. n <= 0 restores
// the default (GOMAXPROCS). It returns the previous override (0 if none was
// set), so callers can restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// Workers reports the effective parallelism used by For and Do.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For executes body(lo, hi) over disjoint chunks covering [0, n) using up to
// Workers() goroutines. grain is the minimum chunk size; it bounds scheduling
// overhead for fine-grained loops. For runs body inline when the loop is
// small or only one worker is available.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	maxChunks := (n + grain - 1) / grain
	if w > maxChunks {
		w = maxChunks
	}
	if w <= 1 {
		body(0, n)
		return
	}
	tokens := TryAcquire(w - 1)
	if tokens == 0 {
		// The spawn budget is exhausted (an enclosing parallel region
		// already keeps every worker busy): run serially.
		body(0, n)
		return
	}
	defer Release(tokens)
	w = tokens + 1
	// Static partition into w nearly equal chunks, each >= grain except
	// possibly the last. Static scheduling is appropriate here: every loop
	// body in this module is uniform-cost across the index space.
	//
	// A panicking chunk (worker or inline) is captured and re-raised after
	// the join: the wait and the Release defer both still run, so no
	// goroutine outlives the call and the budget stays paired even on the
	// panic path.
	var pe atomic.Pointer[PanicError]
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			capture(&pe, func() { body(lo, hi) })
		}(start, end)
	}
	// The first chunk runs inline: the calling goroutine is itself one of
	// the w workers and holds no token for it.
	capture(&pe, func() { body(0, min(chunk, n)) })
	wg.Wait()
	rethrow(&pe)
}

// Do runs the given functions as a fork-join block: all of them execute (the
// last one inline on the calling goroutine) and Do returns when every one
// has finished. With a single worker they run sequentially.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if Workers() <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	tokens := TryAcquire(len(fns) - 1)
	if tokens == 0 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	defer Release(tokens)
	var pe atomic.Pointer[PanicError]
	var wg sync.WaitGroup
	wg.Add(tokens)
	for _, fn := range fns[:tokens] {
		go func(f func()) {
			defer wg.Done()
			capture(&pe, f)
		}(fn)
	}
	// The inline functions are captured too: a panic in one must not skip
	// the join while forked siblings still run, and the first panic should
	// win deterministically regardless of where it happened.
	for _, fn := range fns[tokens:] {
		capture(&pe, fn)
	}
	wg.Wait()
	rethrow(&pe)
}
