// Package par provides the small fork-join runtime used by all parallel
// algorithms in this module.
//
// The paper's C++ implementation relies on OpenMP with a greedy scheduler;
// here goroutines play the role of OpenMP tasks. The package supports an
// explicit worker-count override so that the Table 5 experiment (runtime as a
// function of the number of cores p) can be reproduced without restarting the
// process.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride holds the user-requested parallelism. Zero means "use
// runtime.GOMAXPROCS(0)".
var workerOverride atomic.Int64

// SetWorkers sets the number of workers used by For and Do. n <= 0 restores
// the default (GOMAXPROCS). It returns the previous override (0 if none was
// set), so callers can restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// Workers reports the effective parallelism used by For and Do.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For executes body(lo, hi) over disjoint chunks covering [0, n) using up to
// Workers() goroutines. grain is the minimum chunk size; it bounds scheduling
// overhead for fine-grained loops. For runs body inline when the loop is
// small or only one worker is available.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	maxChunks := (n + grain - 1) / grain
	if w > maxChunks {
		w = maxChunks
	}
	if w <= 1 {
		body(0, n)
		return
	}
	// Static partition into w nearly equal chunks, each >= grain except
	// possibly the last. Static scheduling is appropriate here: every loop
	// body in this module is uniform-cost across the index space.
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(start, end)
	}
	wg.Wait()
}

// Do runs the given functions as a fork-join block: all of them execute (the
// last one inline on the calling goroutine) and Do returns when every one
// has finished. With a single worker they run sequentially.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if Workers() <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[:len(fns)-1] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[len(fns)-1]()
	wg.Wait()
}
