// Package par provides the small fork-join runtime used by all parallel
// algorithms in this module.
//
// The paper's C++ implementation relies on OpenMP with a greedy scheduler;
// here goroutines play the role of OpenMP tasks. The package supports an
// explicit worker-count override so that the Table 5 experiment (runtime as a
// function of the number of cores p) can be reproduced without restarting the
// process.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerOverride holds the user-requested parallelism. Zero means "use
// runtime.GOMAXPROCS(0)".
var workerOverride atomic.Int64

// spawned counts worker goroutines currently spawned by For, Do and RowSweep
// across the whole process. Together with TryAcquire it forms a global
// spawn budget of Workers()-1 outstanding workers: callers always run one
// chunk inline, so at most Workers() goroutines make progress at once no
// matter how deeply parallel regions nest. An outer loop that has already
// claimed the whole budget (a saturated batch of option pricings, say)
// makes every inner For/Do run serially instead of oversubscribing the
// machine with len(outer) * Workers() goroutines.
var spawned atomic.Int64

// TryAcquire claims up to max worker tokens from the global spawn budget and
// returns how many it got (possibly zero; never blocks). Each token entitles
// the caller to run one extra worker goroutine; the tokens must be returned
// with Release when those workers have finished. For, Do and RowSweep
// acquire their workers through this budget, so external schedulers (e.g.
// the batch pricing engine) can claim tokens for their own pools and the
// nested pricers degrade gracefully to serial execution.
func TryAcquire(max int) int {
	if max <= 0 {
		return 0
	}
	budget := int64(Workers() - 1)
	for {
		cur := spawned.Load()
		free := budget - cur
		if free <= 0 {
			return 0
		}
		n := int64(max)
		if n > free {
			n = free
		}
		if spawned.CompareAndSwap(cur, cur+n) {
			return int(n)
		}
	}
}

// Release returns n tokens claimed with TryAcquire to the spawn budget.
func Release(n int) {
	if n > 0 {
		spawned.Add(-int64(n))
	}
}

// SetWorkers sets the number of workers used by For and Do. n <= 0 restores
// the default (GOMAXPROCS). It returns the previous override (0 if none was
// set), so callers can restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workerOverride.Swap(int64(n)))
}

// Workers reports the effective parallelism used by For and Do.
func Workers() int {
	if n := int(workerOverride.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For executes body(lo, hi) over disjoint chunks covering [0, n) using up to
// Workers() goroutines. grain is the minimum chunk size; it bounds scheduling
// overhead for fine-grained loops. For runs body inline when the loop is
// small or only one worker is available.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	maxChunks := (n + grain - 1) / grain
	if w > maxChunks {
		w = maxChunks
	}
	if w <= 1 {
		body(0, n)
		return
	}
	tokens := TryAcquire(w - 1)
	if tokens == 0 {
		// The spawn budget is exhausted (an enclosing parallel region
		// already keeps every worker busy): run serially.
		body(0, n)
		return
	}
	defer Release(tokens)
	w = tokens + 1
	// Static partition into w nearly equal chunks, each >= grain except
	// possibly the last. Static scheduling is appropriate here: every loop
	// body in this module is uniform-cost across the index space.
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(start, end)
	}
	// The first chunk runs inline: the calling goroutine is itself one of
	// the w workers and holds no token for it.
	body(0, min(chunk, n))
	wg.Wait()
}

// Do runs the given functions as a fork-join block: all of them execute (the
// last one inline on the calling goroutine) and Do returns when every one
// has finished. With a single worker they run sequentially.
func Do(fns ...func()) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	if Workers() <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	tokens := TryAcquire(len(fns) - 1)
	if tokens == 0 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	defer Release(tokens)
	var wg sync.WaitGroup
	wg.Add(tokens)
	for _, fn := range fns[:tokens] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	for _, fn := range fns[tokens:] {
		fn()
	}
	wg.Wait()
}
