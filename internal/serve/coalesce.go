package serve

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOverloaded is the coalescer's backpressure signal: an in-flight refresh
// already has MaxWaiters callers queued behind it, so the new request is shed
// instead of growing the queue without bound. The HTTP layer maps it to 503.
var ErrOverloaded = errors.New("serve: too many requests pending on an in-flight repricing")

// flight is one in-progress refresh; waiters block on done and read err.
// waiters is guarded by the owning Coalescer's mu; keeping the count on the
// flight (not the Coalescer) means callers still draining a finished flight
// are never charged against the next flight's MaxWaiters bound.
type flight struct {
	done    chan struct{}
	err     error
	waiters int
}

// Coalescer folds concurrent invocations of one idempotent refresh function
// into a single flight, singleflight-style: the first caller becomes the
// leader and runs the function; callers arriving while it runs wait for its
// result instead of running their own copy. The refresh must be idempotent
// and self-scoping (it discovers what needs doing when it runs) — a joiner
// whose work item arrived after the leader took its snapshot simply calls Do
// again, which is why Do reports whether the caller joined or led.
type Coalescer struct {
	// MaxWaiters bounds how many callers may queue behind the in-flight
	// refresh; further callers fail fast with ErrOverloaded. Zero means
	// unbounded.
	MaxWaiters int

	mu  sync.Mutex
	cur *flight
}

// Do runs fn, coalescing with a concurrent in-flight run. It reports whether
// this caller joined an existing flight (true) or led its own (false), and
// returns the flight's error.
func (c *Coalescer) Do(fn func() error) (joined bool, err error) {
	c.mu.Lock()
	if f := c.cur; f != nil {
		if c.MaxWaiters > 0 && f.waiters >= c.MaxWaiters {
			c.mu.Unlock()
			return true, ErrOverloaded
		}
		f.waiters++
		c.mu.Unlock()
		<-f.done
		return true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.cur = f
	c.mu.Unlock()

	func() {
		// A panic escaping fn must not leave the flight registered and its
		// done channel unclosed — that would wedge every future caller
		// behind a flight that will never finish. Convert it to the
		// flight's error: the leader and every waiter see it and can retry.
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("serve: coalesced refresh panicked: %v", r)
			}
		}()
		f.err = fn()
	}()

	c.mu.Lock()
	c.cur = nil
	c.mu.Unlock()
	close(f.done)
	return false, f.err
}
