package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// ErrOverloaded is the coalescer's backpressure signal: an in-flight refresh
// already has MaxWaiters callers queued behind it, so the new request is shed
// instead of growing the queue without bound. The HTTP layer maps it to 503.
var ErrOverloaded = errors.New("serve: too many requests pending on an in-flight repricing")

// PanicError is the flight error produced when a coalesced refresh panics:
// it carries the panic value and the stack captured at the panic site, so
// the quarantine record written for a degraded contract is diagnosable. (The
// error used to stringify the value and drop the stack — by the time anyone
// read the log, the only evidence of where the solver died was gone.)
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: coalesced refresh panicked: %v", e.Value)
}

// flight is one in-progress refresh; waiters block on done and read err.
// waiters is guarded by the owning Coalescer's mu; keeping the count on the
// flight (not the Coalescer) means callers still draining a finished flight
// are never charged against the next flight's MaxWaiters bound.
type flight struct {
	done    chan struct{}
	err     error
	waiters int
}

// Coalescer folds concurrent invocations of one idempotent refresh function
// into a single flight, singleflight-style: the first caller becomes the
// leader and runs the function; callers arriving while it runs wait for its
// result instead of running their own copy. The refresh must be idempotent
// and self-scoping (it discovers what needs doing when it runs) — a joiner
// whose work item arrived after the leader took its snapshot simply calls Do
// again, which is why Do reports whether the caller joined or led.
type Coalescer struct {
	// MaxWaiters bounds how many callers may queue behind the in-flight
	// refresh; further callers fail fast with ErrOverloaded. Zero means
	// unbounded.
	MaxWaiters int

	mu  sync.Mutex
	cur *flight

	// inflight counts live flights (0 or 1) and drained wakes Drain; both
	// are guarded by mu.
	inflight int
	drained  *sync.Cond
}

// Do runs fn, coalescing with a concurrent in-flight run. It reports whether
// this caller joined an existing flight (true) or led its own (false), and
// returns the flight's error.
func (c *Coalescer) Do(fn func() error) (joined bool, err error) {
	return c.DoCtx(context.Background(), fn)
}

// DoCtx is Do with a context. A canceled joiner stops waiting and returns
// ctx.Err() immediately; the flight itself keeps running for the waiters
// that remain (it is the leader's — and its own context's — job to stop the
// work), so one impatient caller never poisons the result everyone else is
// waiting for. The leader always runs fn to completion from the coalescer's
// point of view: fn observes cancellation through whatever the caller closed
// over.
func (c *Coalescer) DoCtx(ctx context.Context, fn func() error) (joined bool, err error) {
	c.mu.Lock()
	if f := c.cur; f != nil {
		if c.MaxWaiters > 0 && f.waiters >= c.MaxWaiters {
			c.mu.Unlock()
			return true, ErrOverloaded
		}
		f.waiters++
		c.mu.Unlock()
		select {
		case <-f.done:
			return true, f.err
		case <-ctx.Done():
			return true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.cur = f
	c.inflight++
	c.mu.Unlock()

	func() {
		// A panic escaping fn must not leave the flight registered and its
		// done channel unclosed — that would wedge every future caller
		// behind a flight that will never finish. Convert it to the
		// flight's error, stack attached: the leader and every waiter see
		// it and can retry or quarantine.
		defer func() {
			if r := recover(); r != nil {
				f.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		f.err = fn()
	}()

	c.mu.Lock()
	c.cur = nil
	c.inflight--
	if c.drained != nil && c.inflight == 0 {
		c.drained.Broadcast()
	}
	c.mu.Unlock()
	close(f.done)
	return false, f.err
}

// Drain blocks until no flight is in progress, or until ctx is done. New
// flights may still start after Drain returns — callers that want a real
// quiescent point (graceful shutdown) must stop admitting work first, then
// Drain.
func (c *Coalescer) Drain(ctx context.Context) error {
	c.mu.Lock()
	if c.inflight == 0 {
		c.mu.Unlock()
		return nil
	}
	if c.drained == nil {
		c.drained = sync.NewCond(&c.mu)
	}
	done := make(chan struct{})
	//amop:allow-go shutdown-path watcher: one goroutine per Drain call, exits when the last flight finishes (broadcast below)
	go func() {
		c.mu.Lock()
		for c.inflight > 0 {
			c.drained.Wait()
		}
		c.mu.Unlock()
		close(done)
	}()
	c.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
