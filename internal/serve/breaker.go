package serve

import (
	"sync"
	"time"
)

// BreakerState enumerates the circuit-breaker states.
type BreakerState int

const (
	// BreakerClosed is the healthy state: solves run normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen means the symbol's solves keep failing: fresh solves are
	// refused (serve stale / last-good instead) until the backoff expires.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe solve after the backoff; its
	// outcome closes the breaker or re-opens it with a longer backoff.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "breaker(?)"
}

// Breaker is a per-symbol circuit breaker over solve outcomes. N consecutive
// failures trip it open; while open, callers serve degraded (stale /
// last-good) instead of burning cores on a solve that keeps dying — without
// it, a contract whose solver panics every time would lead a fresh doomed
// repricing flight on every quote and turn one bad symbol into a whole-book
// hot loop. After Backoff, one probe is admitted: success closes the
// breaker, failure re-opens it with the backoff doubled (capped at
// MaxBackoff).
//
// The zero value is ready to use with the default thresholds. Breaker is
// safe for concurrent use.
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the breaker;
	// zero selects DefaultBreakerThreshold.
	Threshold int
	// Backoff is the initial open interval before a probe is admitted; zero
	// selects DefaultBreakerBackoff. Each consecutive re-open doubles it, up
	// to MaxBackoff.
	Backoff time.Duration
	// MaxBackoff caps the doubling; zero selects DefaultBreakerMaxBackoff.
	MaxBackoff time.Duration

	mu       sync.Mutex
	state    BreakerState
	fails    int           // consecutive failures while closed
	wait     time.Duration // current open interval
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    int64
}

// Default breaker knobs: trip after 3 consecutive failures, first probe
// after 100ms, backing off to at most 5s between probes.
const (
	DefaultBreakerThreshold  = 3
	DefaultBreakerBackoff    = 100 * time.Millisecond
	DefaultBreakerMaxBackoff = 5 * time.Second
)

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return DefaultBreakerThreshold
}

func (b *Breaker) backoff() time.Duration {
	if b.Backoff > 0 {
		return b.Backoff
	}
	return DefaultBreakerBackoff
}

func (b *Breaker) maxBackoff() time.Duration {
	if b.MaxBackoff > 0 {
		return b.MaxBackoff
	}
	return DefaultBreakerMaxBackoff
}

// Allow reports whether a fresh solve may run now. In the open state it
// returns false until the backoff has elapsed, then admits a single caller
// as the half-open probe (concurrent callers keep getting false until the
// probe reports). Callers must report the admitted solve's outcome via
// Success or Failure.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.wait {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Success records a healthy solve outcome: it resets the failure run and,
// from half-open, closes the breaker. It reports whether this call closed a
// previously open breaker (callers record the recovery transition on that
// edge, mirroring Failure's opened return).
func (b *Breaker) Success() (closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.state = BreakerClosed
		b.wait = 0
		return true
	}
	return false
}

// Failure records a failed solve outcome (error, panic, or health-gate
// rejection) at the given time. It returns true when this failure tripped
// the breaker open (callers count CircuitOpens on that edge). From
// half-open, the failed probe re-opens with the backoff doubled.
func (b *Breaker) Failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails < b.threshold() {
			return false
		}
		b.state = BreakerOpen
		b.wait = b.backoff()
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.wait = min(b.wait*2, b.maxBackoff())
		if b.wait == 0 {
			b.wait = b.backoff()
		}
	case BreakerOpen:
		// A failure reported by a solve that was already in flight when the
		// breaker opened; keep the existing backoff clock.
		b.probing = false
		return false
	}
	b.probing = false
	b.openedAt = now
	b.fails = 0
	b.opens++
	return true
}

// Blocked reports whether a fresh solve would currently be refused, without
// consuming the half-open probe slot the way Allow does: true while the
// breaker is open inside its backoff window, and while a half-open probe is
// already in flight. Quote paths use it to decide between serving degraded
// and triggering a repricing flight (where Allow runs for real).
func (b *Breaker) Blocked(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return now.Sub(b.openedAt) < b.wait
	case BreakerHalfOpen:
		return b.probing
	}
	return false
}

// State reports the current state, transitioning open -> observable
// half-open is NOT performed here (only Allow advances state); use it for
// monitoring and tests.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens reports how many times this breaker has tripped open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
