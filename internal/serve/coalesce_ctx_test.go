package serve

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// A canceled joiner stops waiting and reports ctx.Err(); the flight keeps
// running for everyone else and the coalescer is not poisoned for the next
// caller.
func TestCoalescerDoCtxCanceledJoiner(t *testing.T) {
	var c Coalescer
	inFlight := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Do(func() error {
			close(inFlight)
			<-release
			return nil
		})
		leaderDone <- err
	}()
	<-inFlight

	ctx, cancel := context.WithCancel(context.Background())
	joinerDone := make(chan error, 1)
	go func() {
		joined, err := c.DoCtx(ctx, func() error { return nil })
		if !joined {
			t.Error("second caller led its own flight instead of joining")
		}
		joinerDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the joiner park on the flight
	cancel()
	select {
	case err := <-joinerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled joiner: got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled joiner kept waiting on the flight")
	}

	// The abandoned flight finishes normally for its leader...
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader after a joiner bailed: %v", err)
	}
	// ...and the coalescer is clean: the next caller leads a fresh flight.
	joined, err := c.Do(func() error { return nil })
	if joined || err != nil {
		t.Fatalf("after canceled joiner: joined=%v err=%v", joined, err)
	}
}

// The panic error must carry the stack captured at the panic site — the
// quarantine record a degraded contract keeps is useless without it.
func TestCoalescerPanicErrorCarriesStack(t *testing.T) {
	var c Coalescer
	_, err := c.Do(func() error { panicForStackTest(); return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *PanicError", err, err)
	}
	if pe.Value != "stack boom" {
		t.Fatalf("panic value %v, want stack boom", pe.Value)
	}
	if !bytes.Contains(pe.Stack, []byte("panicForStackTest")) {
		t.Fatalf("stack does not contain the panic site:\n%s", pe.Stack)
	}
}

func panicForStackTest() { panic("stack boom") }

func TestCoalescerDrain(t *testing.T) {
	var c Coalescer
	// No flight: Drain returns immediately.
	if err := c.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain: %v", err)
	}

	inFlight := make(chan struct{})
	release := make(chan struct{})
	go c.Do(func() error {
		close(inFlight)
		<-release
		return nil
	})
	<-inFlight

	// A bounded Drain gives up with ctx.Err while the flight runs.
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain under a running flight: got %v, want deadline exceeded", err)
	}

	drained := make(chan error, 1)
	go func() { drained <- c.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not observe the flight finishing")
	}
}
