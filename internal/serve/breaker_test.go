package serve

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := &Breaker{Threshold: 3, Backoff: 100 * time.Millisecond}
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if opened := b.Failure(now); opened {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
		if !b.Allow(now) {
			t.Fatalf("closed breaker refused a solve after %d failures", i+1)
		}
	}
	if !b.Failure(now) {
		t.Fatal("third consecutive failure did not open the breaker")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	if b.Allow(now.Add(50 * time.Millisecond)) {
		t.Fatal("open breaker admitted a solve inside the backoff window")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := &Breaker{Threshold: 3}
	now := time.Unix(1000, 0)
	b.Failure(now)
	b.Failure(now)
	b.Success() // run broken: the count starts over
	if b.Failure(now) || b.Failure(now) {
		t.Fatal("breaker opened before a fresh run of 3 failures")
	}
	if !b.Failure(now) {
		t.Fatal("breaker did not open after a fresh run of 3 failures")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := &Breaker{Threshold: 1, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	now := time.Unix(1000, 0)
	if !b.Failure(now) {
		t.Fatal("threshold 1 should open on the first failure")
	}

	// Backoff elapsed: exactly one caller is admitted as the probe.
	probeTime := now.Add(150 * time.Millisecond)
	if !b.Allow(probeTime) {
		t.Fatal("breaker refused the probe after the backoff elapsed")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow(probeTime) {
		t.Fatal("a second caller was admitted while the probe is in flight")
	}
	if !b.Blocked(probeTime) {
		t.Fatal("Blocked must report true while the probe is in flight")
	}

	// Failed probe: re-open with the backoff doubled.
	if !b.Failure(probeTime) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.Allow(probeTime.Add(150 * time.Millisecond)) {
		t.Fatal("re-opened breaker ignored the doubled backoff")
	}
	again := probeTime.Add(250 * time.Millisecond)
	if !b.Allow(again) {
		t.Fatal("breaker refused the probe after the doubled backoff elapsed")
	}

	// Successful probe: closed, failure run reset.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after a successful probe, want closed", b.State())
	}
	if b.Blocked(again) {
		t.Fatal("closed breaker reports Blocked")
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	b := &Breaker{Threshold: 1, Backoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	now := time.Unix(1000, 0)
	b.Failure(now)
	for i := 0; i < 5; i++ {
		now = now.Add(time.Hour) // always past any backoff
		if !b.Allow(now) {
			t.Fatalf("probe %d refused", i)
		}
		b.Failure(now)
	}
	// After many doublings the wait must be capped at MaxBackoff.
	if !b.Allow(now.Add(301 * time.Millisecond)) {
		t.Fatal("backoff exceeded MaxBackoff")
	}
}

func TestBreakerZeroValueDefaults(t *testing.T) {
	b := &Breaker{}
	now := time.Unix(1000, 0)
	if b.Blocked(now) {
		t.Fatal("zero-value breaker starts blocked")
	}
	for i := 0; i < DefaultBreakerThreshold-1; i++ {
		if b.Failure(now) {
			t.Fatalf("opened after %d failures, default threshold is %d", i+1, DefaultBreakerThreshold)
		}
	}
	if !b.Failure(now) {
		t.Fatal("default threshold did not open the breaker")
	}
	if b.Allow(now.Add(DefaultBreakerBackoff / 2)) {
		t.Fatal("default backoff not honored")
	}
	if !b.Allow(now.Add(DefaultBreakerBackoff + time.Millisecond)) {
		t.Fatal("probe refused after the default backoff")
	}
}
