// Package serve holds the market-data side of the live pricing server: the
// input quantizer that keys the server's dirty tracking, the singleflight
// coalescer that folds concurrent repricing requests into one batch, and the
// process-wide serving counters surfaced through amop.ReadPerfCounters.
//
// The package is deliberately free of pricing concerns — it never imports the
// root amop package — so the server proper (amop.Server) can sit at the top
// of the module and reuse the batch engine underneath.
package serve

import "math"

// Quantizer buckets the three live market inputs — spot, volatility, rate —
// into discrete cells. The live server prices each contract at its cell's
// representative point, so two ticks landing in the same cell are, by
// construction, the same pricing problem: the dirty tracker compares cell
// keys, not raw floats, and a tick that stays inside every bucket re-solves
// nothing.
//
// A bucket width of zero (or below) disables quantization on that axis: the
// key is the exact bit pattern of the input and every change, however small,
// moves the key. Bucket widths trade quote accuracy for tick-to-tick reuse;
// the representative point is the bucket center, so the worst-case input
// error is half a bucket per axis.
type Quantizer struct {
	SpotBucket float64 // absolute spot bucket width (price units)
	VolBucket  float64 // absolute volatility bucket width (vol points)
	RateBucket float64 // absolute rate bucket width
}

// Key identifies one quantized market state. Keys are comparable; equal keys
// mean the quantizer maps both inputs to the same representative point.
type Key struct {
	Spot, Vol, Rate int64
}

// Key quantizes a market point.
func (q Quantizer) Key(spot, vol, rate float64) Key {
	return Key{
		Spot: bucket(spot, q.SpotBucket),
		Vol:  bucket(vol, q.VolBucket),
		Rate: bucket(rate, q.RateBucket),
	}
}

// Rep returns the representative point the key's cell prices at: the center
// of each bucketed axis, the exact input on unquantized axes.
func (q Quantizer) Rep(spot, vol, rate float64) (float64, float64, float64) {
	return rep(spot, q.SpotBucket), rep(vol, q.VolBucket), rep(rate, q.RateBucket)
}

// bucket maps x to its cell index with floor semantics: cell k covers
// [k*b, (k+1)*b), so an input landing exactly on a boundary belongs to the
// cell above it. The mapping is deterministic — the same x always lands in
// the same cell — which is all dirty tracking needs.
func bucket(x, b float64) int64 {
	if b <= 0 {
		return int64(math.Float64bits(x))
	}
	return int64(math.Floor(x / b))
}

func rep(x, b float64) float64 {
	if b <= 0 {
		return x
	}
	return (math.Floor(x/b) + 0.5) * b
}
