package serve

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestQuantizerBuckets(t *testing.T) {
	q := Quantizer{SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005}

	// Moves inside a cell keep the key; crossing a cell edge changes it.
	a := q.Key(101.30, 0.2101, 0.00163)
	b := q.Key(101.40, 0.2149, 0.00171)
	if a != b {
		t.Errorf("within-bucket move changed the key: %+v vs %+v", a, b)
	}
	c := q.Key(101.60, 0.2101, 0.00163)
	if a == c {
		t.Errorf("cross-bucket spot move kept the key: %+v", a)
	}

	// A tick landing exactly on a bucket boundary belongs to the cell above:
	// cell k covers [k*b, (k+1)*b). 101.25/0.25 and 101.50/0.25 are exact in
	// binary floating point, so the semantics are testable bit-for-bit.
	lo, edge := q.Key(101.26, 0.21, 0), q.Key(101.50, 0.21, 0)
	if lo == edge {
		t.Errorf("boundary tick did not move to the next cell: %+v", lo)
	}
	if onEdge := q.Key(101.25, 0.21, 0); onEdge != lo {
		t.Errorf("boundary input not in the cell it opens: %+v vs %+v", onEdge, lo)
	}

	// The representative is the cell center, shared by everything in the cell.
	s1, v1, r1 := q.Rep(101.30, 0.2101, 0.00163)
	s2, _, _ := q.Rep(101.49, 0.2101, 0.00163)
	if s1 != s2 || s1 != 101.375 {
		t.Errorf("cell representative: got %v and %v, want 101.375", s1, s2)
	}
	if v1 != 0.215 {
		t.Errorf("vol representative: got %v, want 0.215", v1)
	}
	if r1 != 0.00175 {
		t.Errorf("rate representative: got %v, want 0.00175", r1)
	}
}

func TestQuantizerZeroBucketIsExact(t *testing.T) {
	var q Quantizer // all axes unquantized
	if q.Key(100, 0.2, 0.01) == q.Key(100.0000001, 0.2, 0.01) {
		t.Error("zero bucket should key on the exact bits")
	}
	if q.Key(100, 0.2, 0.01) != q.Key(100, 0.2, 0.01) {
		t.Error("zero-bucket key not deterministic")
	}
	s, v, r := q.Rep(100, 0.2, 0.01)
	if s != 100 || v != 0.2 || r != 0.01 {
		t.Errorf("zero-bucket representative must be the input: got %v %v %v", s, v, r)
	}
}

// curWaiters reads the in-flight call's waiter count (-1 when idle).
func curWaiters(c *Coalescer) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return -1
	}
	return c.cur.waiters
}

func TestCoalescerJoins(t *testing.T) {
	var c Coalescer
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int64

	go c.Do(func() error {
		runs.Add(1)
		close(inFlight)
		<-release
		return nil
	})
	<-inFlight

	const joiners = 4
	var wg sync.WaitGroup
	joinCount := atomic.Int64{}
	for i := 0; i < joiners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			joined, err := c.Do(func() error { runs.Add(1); return nil })
			if err != nil {
				t.Errorf("joiner: %v", err)
			}
			if joined {
				joinCount.Add(1)
			}
		}()
	}
	// Joiners block on the in-flight call; release it once they are queued.
	// (They may also arrive after the release and lead their own flight —
	// the assertion below only needs at least one to have joined, which the
	// barrier guarantees for the ones queued before release.)
	for curWaiters(&c) != joiners {
	}
	close(release)
	wg.Wait()
	if joinCount.Load() != joiners {
		t.Errorf("joined %d of %d queued callers", joinCount.Load(), joiners)
	}
	if runs.Load() != 1 {
		t.Errorf("refresh ran %d times, want 1", runs.Load())
	}
}

func TestCoalescerError(t *testing.T) {
	var c Coalescer
	want := errors.New("boom")
	joined, err := c.Do(func() error { return want })
	if joined || !errors.Is(err, want) {
		t.Errorf("leader: joined=%v err=%v", joined, err)
	}
	// The flight is over; the next caller leads a fresh one.
	joined, err = c.Do(func() error { return nil })
	if joined || err != nil {
		t.Errorf("after error: joined=%v err=%v", joined, err)
	}
}

func TestCoalescerPanicDoesNotWedge(t *testing.T) {
	var c Coalescer
	joined, err := c.Do(func() error { panic("boom") })
	if joined {
		t.Error("leader reported as joiner")
	}
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panicking refresh: got err %v, want a panicked error", err)
	}
	// The flight must be fully torn down: the next caller leads normally.
	joined, err = c.Do(func() error { return nil })
	if joined || err != nil {
		t.Errorf("after panic: joined=%v err=%v", joined, err)
	}
}

func TestCoalescerBackpressure(t *testing.T) {
	c := Coalescer{MaxWaiters: 1}
	inFlight := make(chan struct{})
	release := make(chan struct{})
	go c.Do(func() error {
		close(inFlight)
		<-release
		return nil
	})
	<-inFlight

	joinerQueued := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(joinerQueued)
		_, err := c.Do(func() error { return nil })
		done <- err
	}()
	<-joinerQueued
	for curWaiters(&c) != 1 {
	}
	// The queue is full: the next caller is shed immediately, not blocked.
	if _, err := c.Do(func() error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Errorf("over-limit caller: got %v, want ErrOverloaded", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Errorf("queued joiner: %v", err)
	}
}

func TestCountersAccumulate(t *testing.T) {
	before := ReadStats()
	AddTickReprices(2)
	AddTickSkips(3)
	AddCoalescedRequests(5)
	AddStaleServes(7)
	AddCacheServes(11)
	after := ReadStats()
	deltas := []struct {
		name string
		d    int64
		want int64
	}{
		{"TickReprices", after.TickReprices - before.TickReprices, 2},
		{"TickSkips", after.TickSkips - before.TickSkips, 3},
		{"CoalescedRequests", after.CoalescedRequests - before.CoalescedRequests, 5},
		{"StaleServes", after.StaleServes - before.StaleServes, 7},
		{"CacheServes", after.CacheServes - before.CacheServes, 11},
	}
	for _, d := range deltas {
		if d.d != d.want {
			t.Errorf("%s advanced by %d, want %d", d.name, d.d, d.want)
		}
	}
}
