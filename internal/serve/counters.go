package serve

import "sync/atomic"

// The serving counters are process-wide and cumulative, like the fast-path
// spectrum-cache counters they sit next to in amop.ReadPerfCounters: sample
// before and after a workload and subtract to attribute activity to it.
var (
	tickReprices      atomic.Int64
	tickSkips         atomic.Int64
	coalescedRequests atomic.Int64
	staleServes       atomic.Int64
	cacheServes       atomic.Int64
	panicsRecovered   atomic.Int64
	degradedServes    atomic.Int64
	circuitOpens      atomic.Int64
	ctxCancels        atomic.Int64
)

// AddTickReprices records contracts a tick marked for repricing (their
// quantized market inputs moved to a new cell).
func AddTickReprices(n int64) { tickReprices.Add(n) }

// AddTickSkips records contracts a tick left clean (inputs moved, but not
// out of their quantization cell) — the incremental path's saved work.
func AddTickSkips(n int64) { tickSkips.Add(n) }

// AddCoalescedRequests records quote requests that joined an in-flight
// repricing batch instead of starting their own.
func AddCoalescedRequests(n int64) { coalescedRequests.Add(n) }

// AddStaleServes records quotes answered from a dirty-but-fresh surface
// entry under the server's staleness bound instead of blocking on a
// re-solve.
func AddStaleServes(n int64) { staleServes.Add(n) }

// AddCacheServes records quotes answered directly from a clean surface
// entry — the serving fast path.
func AddCacheServes(n int64) { cacheServes.Add(n) }

// CacheServes reads the cache-serve counter. The serving layer uses it as a
// free sampling tick for quote-latency telemetry: the counter advances once
// per cached serve anyway, so "every Nth serve" costs one atomic load.
func CacheServes() int64 { return cacheServes.Load() }

// AddPanicRecovered records a pricer panic captured and isolated to one
// contract (by the batch engine's per-item recover or a coalesced flight).
func AddPanicRecovered() { panicsRecovered.Add(1) }

// AddDegradedServes records quotes answered in degraded mode: a pinned
// last-good value served because the fresh solve failed the health gate,
// errored, or its symbol's circuit breaker is open.
func AddDegradedServes(n int64) { degradedServes.Add(n) }

// AddCircuitOpen records a per-symbol circuit breaker tripping open after
// consecutive solve failures.
func AddCircuitOpen() { circuitOpens.Add(1) }

// AddCtxCancel records a solve or batch item abandoned because its context
// was canceled or its deadline expired.
func AddCtxCancel() { ctxCancels.Add(1) }

// Stats is a snapshot of the cumulative serving counters.
type Stats struct {
	TickReprices      int64
	TickSkips         int64
	CoalescedRequests int64
	StaleServes       int64
	CacheServes       int64
	PanicsRecovered   int64
	DegradedServes    int64
	CircuitOpens      int64
	CtxCancels        int64
}

// ReadStats returns the current counter snapshot.
func ReadStats() Stats {
	return Stats{
		TickReprices:      tickReprices.Load(),
		TickSkips:         tickSkips.Load(),
		CoalescedRequests: coalescedRequests.Load(),
		StaleServes:       staleServes.Load(),
		CacheServes:       cacheServes.Load(),
		PanicsRecovered:   panicsRecovered.Load(),
		DegradedServes:    degradedServes.Load(),
		CircuitOpens:      circuitOpens.Load(),
		CtxCancels:        ctxCancels.Load(),
	}
}
