// Package sweep stands in for a hot-path module package: raw go statements
// here must be flagged unless carrying a justified directive.
package sweep

func work() {}

func spawnNaked() {
	go work() // want `raw go statement bypasses the internal/par spawn budget`
}

func spawnAllowed() {
	//amop:allow-go load generator deliberately modeling unbudgeted outside traffic
	go work()
}

func spawnAllowedSameLine() {
	go work() //amop:allow-go watchdog outside the budget by design
}

func spawnIgnored() {
	//amop:ignore nakedgo -- reviewed: test seam, runs once at startup
	go work()
}

// A directive without a reason is malformed and suppresses nothing: the
// justification is the point.
func spawnMissingReason() {
	//amop:allow-go
	go work() // want `raw go statement bypasses the internal/par spawn budget`
}
