// Stub at internal/par's import path: the budget implementation is exempt —
// its worker launches ARE the tokens — so nothing here is flagged.
package par

func work() {}

func spawnWorkers(n int) {
	for i := 0; i < n; i++ {
		go work()
	}
}
