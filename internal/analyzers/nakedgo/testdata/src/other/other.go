// Package other sits outside the module: the spawn budget does not govern
// foreign code, so nothing here is flagged.
package other

func work() {}

func spawn() {
	go work()
}
