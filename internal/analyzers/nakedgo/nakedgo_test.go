package nakedgo_test

import (
	"testing"

	"github.com/nlstencil/amop/internal/analyzers/framework/analysistest"
	"github.com/nlstencil/amop/internal/analyzers/nakedgo"
)

func TestNakedGo(t *testing.T) {
	analysistest.Run(t, "testdata", nakedgo.Analyzer,
		"github.com/nlstencil/amop/internal/sweep", // hot-path package: flagged
		"github.com/nlstencil/amop/internal/par",   // budget implementation: exempt
		"other",                                    // outside the module: ignored
	)
}
