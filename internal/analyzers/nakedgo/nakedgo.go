// Package nakedgo defines an analyzer flagging raw `go` statements in the
// packages whose concurrency is supposed to flow through internal/par's
// global spawn budget.
//
// Everything on the solver's hot path — the FFT substrate, the stencil
// evolutions, the batch/sweep/serve engines — parallelizes through par.For,
// par.Do or tokens explicitly claimed with par.TryAcquire, so that nested
// parallel regions degrade to serial execution instead of oversubscribing
// the machine. A raw `go` statement in those packages spawns outside the
// budget: it works in a unit test and melts under batch traffic, when
// len(batch) × GOMAXPROCS goroutines pile onto the scheduler.
//
// Spawns that are deliberately outside the budget (the one-goroutine-per-
// token worker launch itself, a watchdog, a test seam) are annotated in
// place:
//
//	//amop:allow-go <why this spawn is exempt from the budget>
//
// on the `go` statement's line or the line above. The reason is required;
// the directive is the audit trail.
package nakedgo

import (
	"go/ast"
	"strings"

	"github.com/nlstencil/amop/internal/analyzers/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "nakedgo",
	Doc: "flag raw go statements that bypass the internal/par spawn budget\n\n" +
		"Hot-path packages must parallelize via par.For/par.Do/par.TryAcquire\n" +
		"or carry an //amop:allow-go directive explaining the exemption.",
	Run: run,
}

// exempt lists the module packages raw `go` statements are allowed in:
// internal/par is the budget's implementation (its worker launches are the
// tokens), and internal/harness is the benchmark driver whose load
// generators deliberately model unbudgeted outside traffic.
var exempt = map[string]bool{
	framework.ModulePath + "/internal/par":     true,
	framework.ModulePath + "/internal/harness": true,
}

func run(pass *framework.Pass) error {
	path := pass.Pkg.Path()
	if !inModule(path) || exempt[path] || strings.HasPrefix(path, framework.ModulePath+"/internal/analyzers") {
		return nil
	}
	for _, file := range pass.Files {
		// Tests spawn goroutines deliberately — concurrent clients, tick
		// drivers, load generators modeling unbudgeted outside traffic. The
		// budget governs the library's hot paths, not the harnesses around
		// them.
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw go statement bypasses the internal/par spawn budget; use par.Do/par.For, claim tokens with par.TryAcquire, or annotate //amop:allow-go <reason>")
			}
			return true
		})
	}
	return nil
}

func inModule(path string) bool {
	return path == framework.ModulePath || strings.HasPrefix(path, framework.ModulePath+"/")
}
