// Package budgetpair defines an analyzer verifying that every token count
// obtained from internal/par's global spawn budget is returned.
//
// The invariant: par.TryAcquire claims worker tokens from the process-wide
// spawn budget; par.Release must return them on every path, or the budget
// shrinks for the lifetime of the process and every later parallel region
// silently degrades toward serial execution — the leak is invisible to
// tests (nothing crashes, nothing races) and only shows up as a throughput
// cliff under sustained traffic.
//
// Accepted shapes: a Release lexically reaching every exit (direct or via
// defer, the preferred form), a Release inside a function literal the
// tokens are handed to, an early return under a zero-token guard
// (Release(0) is a no-op, so paths proven to hold zero tokens owe
// nothing), and ownership transfer (the count is passed to another
// function, stored, or returned — the obligation moves with it).
package budgetpair

import (
	"go/ast"
	"go/types"

	"github.com/nlstencil/amop/internal/analyzers/framework"
	"github.com/nlstencil/amop/internal/analyzers/pairing"
)

const parPath = framework.ModulePath + "/internal/par"

var Analyzer = &framework.Analyzer{
	Name: "budgetpair",
	Doc: "check that par.TryAcquire tokens always reach par.Release\n\n" +
		"A leaked token permanently shrinks the process-wide spawn budget,\n" +
		"degrading every later parallel region toward serial execution.",
	Run: run,
}

var spec = &pairing.Spec{
	IsAcquire: func(info *types.Info, call *ast.CallExpr) (string, bool) {
		if framework.IsCallTo(info, call, parPath, "TryAcquire") {
			return "par.TryAcquire", true
		}
		return "", false
	},
	IsRelease: func(info *types.Info, call *ast.CallExpr) (string, bool) {
		if framework.IsCallTo(info, call, parPath, "Release") {
			return "par.Release", true
		}
		return "", false
	},
	ReleaseLabel: "par.Release",
	// Token counts handed to another function delegate the release; the
	// callee (or the struct the count is stored in) owns the obligation.
	CallArgEscapes: true,
	// TryAcquire returning 0 means the budget was exhausted; Release(0) is
	// a no-op, so zero-guarded paths owe nothing.
	ZeroExempt: true,
}

func run(pass *framework.Pass) error {
	// internal/par itself is analyzed too: For, Do and RowSweep are the
	// budget's heaviest clients, and their defer-based pairing is exactly
	// what the check protects.
	pairing.Check(pass, spec)
	return nil
}
