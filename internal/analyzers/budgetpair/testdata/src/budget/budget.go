// Package budget exercises the budgetpair analyzer: every shape the repo
// uses to pair par.TryAcquire with par.Release, plus the leaks it must
// catch.
package budget

import "github.com/nlstencil/amop/internal/par"

func cond() bool        { return true }
func work(lo, hi int)   { _ = hi - lo }
func helper(tokens int) { par.Release(tokens) }

type pool struct{ spawn int }

// ---- shapes the analyzer must flag ----

func leakDiscarded() {
	par.TryAcquire(4) // want `result of par\.TryAcquire is discarded`
}

func leakNeverReleased(n int) {
	tokens := par.TryAcquire(n) // want `par\.TryAcquire result "tokens" never reaches par\.Release on any path`
	if tokens > 2 {
		work(0, n)
	}
}

func leakEarlyReturn(n int, fail bool) {
	tokens := par.TryAcquire(n)
	if fail {
		return // want `return leaks par\.TryAcquire result "tokens": no par\.Release on this path`
	}
	par.Release(tokens)
}

func leakLoopFallThrough(n int) {
	for i := 0; i < n; i++ {
		tokens := par.TryAcquire(1) // want `par\.TryAcquire result "tokens" is not released by par\.Release on the fall-through path`
		if tokens > 0 && cond() {
			par.Release(tokens)
		}
	}
}

func leakTierB(w int) {
	spawn := 0
	if w > 1 {
		spawn = par.TryAcquire(w - 1) // want `par\.TryAcquire result "spawn" never reaches par\.Release on any path`
	}
	if spawn > 1 {
		work(0, w)
	}
}

// ---- shapes the analyzer must accept ----

func okDefer(n int) {
	tokens := par.TryAcquire(n)
	defer par.Release(tokens)
	work(0, n)
}

// The canonical par.For prologue: early return under the zero-token guard
// (par.Release(0) is a no-op), deferred release otherwise.
func okZeroGuard(n int) {
	tokens := par.TryAcquire(n - 1)
	if tokens == 0 {
		work(0, n)
		return
	}
	defer par.Release(tokens)
	work(0, n)
}

func okConditionalRelease(n int) {
	tokens := par.TryAcquire(n)
	work(0, n)
	if tokens > 0 {
		par.Release(tokens)
	}
}

// Tokens handed to a goroutine that releases them: ownership rides along.
func okGoroutineHandoff(n int) {
	tokens := par.TryAcquire(1)
	if tokens == 0 {
		work(0, n)
		return
	}
	go func() {
		defer par.Release(tokens)
		work(0, n)
	}()
}

// Passing the count to another function delegates the release obligation.
func okDelegated(n int) {
	tokens := par.TryAcquire(n)
	helper(tokens)
}

// Storing the count transfers ownership to the structure's owner.
func okStored(p *pool, n int) {
	tokens := par.TryAcquire(n)
	p.spawn = tokens
}

// Returning the count transfers ownership to the caller.
func okReturned(n int) int {
	tokens := par.TryAcquire(n)
	return tokens
}

// Acquired straight into a named result: escapes on every return.
func okNamedResult(n int) (tokens int) {
	tokens = par.TryAcquire(n)
	return
}

// The count never binds a variable at all: the obligation moves with the
// expression.
func okImmediate(n int) {
	par.Release(par.TryAcquire(n))
}

// Released on every branch of an exhaustive switch.
func okSwitchAllCases(mode, n int) {
	tokens := par.TryAcquire(n)
	switch mode {
	case 0:
		par.Release(tokens)
	default:
		work(0, n)
		par.Release(tokens)
	}
}

// The Tier B shape from batch.go's runPool: conditional acquire into an
// outer variable, one deferred release downstream.
func okTierBDeferred(w int) {
	spawn := 0
	if w > 1 {
		spawn = par.TryAcquire(w - 1)
	}
	defer par.Release(spawn)
	work(0, w)
}
