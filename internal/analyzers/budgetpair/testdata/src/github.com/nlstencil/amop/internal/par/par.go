// Stub of internal/par for the budgetpair fixtures: the analyzer matches
// callees by import path, so the fixture tree mirrors the real one.
package par

var spawned int

// TryAcquire claims up to max worker tokens; see the real package.
func TryAcquire(max int) int {
	if max < spawned {
		return 0
	}
	spawned += max
	return max
}

// Release returns n tokens.
func Release(n int) { spawned -= n }
