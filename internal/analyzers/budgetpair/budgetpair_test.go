package budgetpair_test

import (
	"testing"

	"github.com/nlstencil/amop/internal/analyzers/budgetpair"
	"github.com/nlstencil/amop/internal/analyzers/framework/analysistest"
)

func TestBudgetPair(t *testing.T) {
	analysistest.Run(t, "testdata", budgetpair.Analyzer, "budget")
}
