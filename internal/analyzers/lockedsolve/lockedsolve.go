// Package lockedsolve defines an analyzer keeping lattice solves (and
// other blocking serving operations) out of mutex-guarded critical
// sections.
//
// The live pricing server's contract is that its mutex protects *state*,
// never *work*: Tick, Quote and the flight write-back hold amop.Server.mu
// for microseconds of bookkeeping, while the solves they schedule run
// outside it. One PriceBatch call under that lock would serialize every
// tick and quote in the process behind a multi-millisecond lattice solve —
// a throughput collapse that no test asserts against and no race detector
// reports, because it is perfectly synchronized.
//
// The analyzer tracks Lock/Unlock (and RLock/RUnlock, and deferred
// unlocks) on sync.Mutex/RWMutex-typed expressions through each function
// body and reports any call to a solver entry point (amop.Price*,
// PriceBatch, Chain, ScenarioSweep) or a blocking serving primitive
// (serve.Coalescer.Do, Server.Flush/Quote/Tick — the last three also
// self-deadlock) made while a lock is held.
package lockedsolve

import (
	"go/ast"
	"go/types"

	"github.com/nlstencil/amop/internal/analyzers/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "lockedsolve",
	Doc: "flag solver and blocking serving calls made while a mutex is held\n\n" +
		"Locks in this codebase guard state, not work: a lattice solve under\n" +
		"a server lock serializes the whole request stream behind it.",
	Run: run,
}

// blocked lists the functions that must not run under a lock: the solver
// entry points and the serving calls that block on them (or on the very
// locks their callers hold).
var blocked = map[string][]string{
	framework.ModulePath: {
		"Price", "PriceAmerican", "PriceEuropean", "PriceBermudan",
		"PriceBatch", "Chain", "ScenarioSweep",
		"Server.Quote", "Server.Flush", "Server.Tick", "Server.TickPartial",
	},
	framework.ModulePath + "/internal/serve": {
		"Coalescer.Do",
	},
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w := &walker{pass: pass}
					w.walkStmts(fn.Body.List, lockSet{})
				}
			case *ast.FuncLit:
				// Function literals are walked independently with no lock
				// held: what the enclosing function holds when it *calls*
				// the literal is beyond this structural analysis, and the
				// repo's literals (flight bodies, pool workers) run outside
				// the locks by construction.
				w := &walker{pass: pass}
				w.walkStmts(fn.Body.List, lockSet{})
				return false
			}
			return true
		})
	}
	return nil
}

// lockSet maps a lock expression's printed form ("s.mu") to true while it
// is held on the current path.
type lockSet map[string]bool

func (ls lockSet) clone() lockSet {
	c := make(lockSet, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func (ls lockSet) any() (string, bool) {
	for k := range ls {
		return k, true
	}
	return "", false
}

type walker struct {
	pass *framework.Pass
}

// walkStmts threads the held-lock set through a statement list, returning
// the fall-through state (nil when the list always terminates).
func (w *walker) walkStmts(stmts []ast.Stmt, held lockSet) lockSet {
	for _, s := range stmts {
		held = w.walkStmt(s, held)
		if held == nil {
			return nil
		}
	}
	return held
}

func (w *walker) walkStmt(s ast.Stmt, held lockSet) lockSet {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.checkExpr(s.X, held)
		if lock, op := lockOp(w.pass.TypesInfo, s.X); lock != "" {
			held = held.clone()
			if op == opLock {
				held[lock] = true
			} else {
				delete(held, lock)
			}
		}
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held through every path below;
		// no state change. But a deferred *blocked* call would run with
		// whatever locks remain — out of scope for the structural model.
		w.checkCall(s.Call, held, "deferred ")
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks.
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, held)
		}
		return nil
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.checkExpr(r, held)
		}
		for _, l := range s.Lhs {
			w.checkExpr(l, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		thenOut := w.walkStmts(s.Body.List, held.clone())
		var elseOut lockSet
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseOut = w.walkStmts(e.List, held.clone())
		case *ast.IfStmt:
			elseOut = w.walkStmt(e, held.clone())
		case nil:
			elseOut = held
		}
		return mergeBranches(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		if s.Body != nil {
			w.walkStmts(s.Body.List, held.clone())
		}
		// Loop bodies that lock/unlock symmetrically leave the after-loop
		// state unchanged; asymmetric bodies are beyond the model.
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		if s.Body != nil {
			w.walkStmts(s.Body.List, held.clone())
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		w.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		w.walkClauses(s.Body, held)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkExpr(e, held)
				return false
			}
			return true
		})
	case *ast.SendStmt:
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	}
	return held
}

func (w *walker) walkClauses(body *ast.BlockStmt, held lockSet) {
	if body == nil {
		return
	}
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			w.walkStmts(cl.Body, held.clone())
		case *ast.CommClause:
			w.walkStmts(cl.Body, held.clone())
		}
	}
}

// mergeBranches joins two fall-through lock states: a lock is held after
// the join if it is held on every branch that can reach it.
func mergeBranches(a, b lockSet) lockSet {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(lockSet)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// checkExpr reports blocked calls anywhere inside e (skipping function
// literals, which run later).
func (w *walker) checkExpr(e ast.Expr, held lockSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.checkCall(call, held, "")
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, held lockSet, qual string) {
	lock, ok := held.any()
	if !ok {
		return
	}
	fn := framework.Callee(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	for pkgPath, names := range blocked {
		for _, name := range names {
			if framework.IsFunc(fn, pkgPath, name) {
				w.pass.Reportf(call.Pos(), "%scall to %s while %s is held: locks guard state, not work — run the solve outside the critical section", qual, name, lock)
				return
			}
		}
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp recognizes X.Lock()/X.RLock() and X.Unlock()/X.RUnlock() calls on
// sync.Mutex/RWMutex-typed expressions, returning X's printed form.
func lockOp(info *types.Info, e ast.Expr) (string, lockOpKind) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	fn := framework.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	return types.ExprString(sel.X), op
}
