package lockedsolve_test

import (
	"testing"

	"github.com/nlstencil/amop/internal/analyzers/framework/analysistest"
	"github.com/nlstencil/amop/internal/analyzers/lockedsolve"
)

func TestLockedSolve(t *testing.T) {
	analysistest.Run(t, "testdata", lockedsolve.Analyzer, "github.com/nlstencil/amop")
}
