// Stub of internal/serve for the lockedsolve fixtures: Coalescer.Do is on
// the analyzer's blocked list (it parks callers behind in-flight solves).
package serve

// Coalescer mirrors the real request coalescer's shape.
type Coalescer struct{ inflight int }

// Do runs fn, folding duplicate concurrent requests into one flight.
func (c *Coalescer) Do(fn func() float64) float64 {
	c.inflight++
	defer func() { c.inflight-- }()
	return fn()
}
