// Stub at the module root's import path: PriceBatch, Chain and the Server
// methods carry the names on lockedsolve's blocked list, so the fixture
// exercises the real lookup keys.
package amop

import (
	"sync"

	"github.com/nlstencil/amop/internal/serve"
)

// Server mirrors the real pricing server's locking shape.
type Server struct {
	mu      sync.Mutex
	cacheMu sync.RWMutex
	state   int
	flights serve.Coalescer
}

// PriceBatch stands in for the multi-millisecond lattice solve.
func PriceBatch(reqs []int) []int { return reqs }

// Chain stands in for the strike-chain solver entry point.
func Chain(n int) int { return n }

// Quote matches the blocked name Server.Quote.
func (s *Server) Quote(id int) int { return id }

// ---- shapes the analyzer must flag ----

func (s *Server) badSolveUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state++
	PriceBatch(nil) // want `call to PriceBatch while s\.mu is held`
}

func (s *Server) badSolveUnderRLock() int {
	s.cacheMu.RLock()
	defer s.cacheMu.RUnlock()
	return Chain(8) // want `call to Chain while s\.cacheMu is held`
}

func (s *Server) badCoalesceUnderLock() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flights.Do(func() float64 { return 0 }) // want `call to Coalescer\.Do while s\.mu is held`
}

// Calling a locking entry point while already holding the lock would also
// self-deadlock; the analyzer catches it as a blocked call.
func (s *Server) badNestedQuote() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Quote(1) // want `call to Server\.Quote while s\.mu is held`
}

// The lock survives the branch merge: held on both arms, held after.
func (s *Server) badAfterBranch(dirty bool) {
	s.mu.Lock()
	if dirty {
		s.state++
	}
	PriceBatch(nil) // want `call to PriceBatch while s\.mu is held`
	s.mu.Unlock()
}

// ---- shapes the analyzer must accept ----

// The repriceDirty pattern: snapshot under the lock, solve outside it.
func (s *Server) okSolveOutsideLock() {
	s.mu.Lock()
	snapshot := s.state
	s.mu.Unlock()
	PriceBatch([]int{snapshot})
}

func (s *Server) okUnlockOnBothBranches(dirty bool) {
	s.mu.Lock()
	if dirty {
		s.mu.Unlock()
		PriceBatch(nil)
		return
	}
	s.mu.Unlock()
	PriceBatch(nil)
}

// A function literal built under the lock but called after release runs
// without it.
func (s *Server) okLiteralCalledLater() {
	s.mu.Lock()
	fn := func() { PriceBatch(nil) }
	s.mu.Unlock()
	fn()
}

// A goroutine does not inherit its spawner's locks.
func (s *Server) okGoroutine() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go PriceBatch(nil)
}
