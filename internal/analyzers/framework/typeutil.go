package framework

import (
	"go/ast"
	"go/types"
)

// Shared type-resolution helpers for the analyzers.

// Callee resolves the statically-known function or method a call invokes,
// or nil for calls through function values, built-ins and conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj() // method or field; fields filter out below
		} else {
			obj = info.Uses[fun.Sel] // package-qualified identifier
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsFunc reports whether fn is the package-level function (or method —
// name may be "Type.Method") at pkgPath.
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		return named.Obj().Name()+"."+fn.Name() == name
	}
	return fn.Name() == name
}

// IsCallTo reports whether call statically invokes pkgPath.name.
func IsCallTo(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	return IsFunc(Callee(info, call), pkgPath, name)
}

// UsedVar resolves an expression to the package-level or local variable it
// names, unwrapping parentheses; nil for anything more structured.
func UsedVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// Mentions reports whether the subtree rooted at n uses the variable v.
func Mentions(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// ModulePath is the import path of this module's root package; the
// analyzers key their package matching off it.
const ModulePath = "github.com/nlstencil/amop"
