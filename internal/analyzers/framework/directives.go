package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding is suppressed by a comment on the flagged line, or on the line
// immediately above it, of the form
//
//	//amop:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory: a suppression is a reviewed decision, and the
// directive is where its justification lives. `//amop:ignore all -- reason`
// suppresses every analyzer on that line.
//
// nakedgo additionally honors its own spelling (see the nakedgo package):
//
//	//amop:allow-go <reason>
//
// which reads better at `go` statements and is equivalent to
// `//amop:ignore nakedgo -- <reason>`.

const (
	ignorePrefix  = "//amop:ignore"
	allowGoPrefix = "//amop:allow-go"
)

// suppressions maps file name -> line -> analyzer names suppressed there
// ("all" suppresses everything).
type suppressions map[string]map[int][]string

// collectSuppressions scans every comment in files for directives.
// Malformed directives (no analyzer list, or no reason) suppress nothing:
// an unjustified suppression must not silently work.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	s := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
			}
		}
	}
	return s
}

// parseDirective recognizes the two directive spellings and returns the
// analyzer names they suppress.
func parseDirective(text string) (names []string, ok bool) {
	switch {
	case strings.HasPrefix(text, allowGoPrefix):
		// //amop:allow-go <reason>; the reason is everything after the tag.
		if strings.TrimSpace(text[len(allowGoPrefix):]) == "" {
			return nil, false
		}
		return []string{"nakedgo"}, true
	case strings.HasPrefix(text, ignorePrefix):
		rest := strings.TrimSpace(text[len(ignorePrefix):])
		list, reason, found := strings.Cut(rest, "--")
		if !found || strings.TrimSpace(reason) == "" {
			return nil, false
		}
		for _, n := range strings.Split(list, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names, len(names) > 0
	}
	return nil, false
}

// suppressed reports whether d is covered by a directive on its line or the
// line above.
func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
