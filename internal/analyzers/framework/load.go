package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Offline package loading.
//
// The standalone runner resolves packages the same way `go vet` does under
// the hood: one `go list -deps -json -export` invocation yields, for every
// package in the build, the compiled export data the go toolchain already
// has in its build cache. Target packages (the ones matching the patterns)
// are then re-parsed from source and type-checked against that export data
// with the standard library's gc importer. No network, no source
// re-typecheck of dependencies, and exact agreement with the compiler on
// types.

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool and returns the matched packages
// parsed and type-checked, sorted by import path. Test files are not
// loaded: the analyzers enforce production invariants, and tests exercise
// goroutines and fixtures in ways the checks deliberately do not model.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-e", "-json", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			target := p
			targets = append(targets, &target)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported by amop-vet", t.ImportPath)
		}
		pkg, err := checkPackage(fset, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles), imp, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func absFiles(dir string, names []string) []string {
	files := make([]string, len(names))
	for i, n := range names {
		files[i] = filepath.Join(dir, n)
	}
	return files
}

// checkPackage parses files and type-checks them as package pkgPath using
// imp for imports. goVersion, when non-empty, pins the language version
// (the unitchecker config supplies it; standalone runs use the toolchain
// default).
func checkPackage(fset *token.FileSet, pkgPath, dir string, files []string, imp types.Importer, goVersion string) (*Package, error) {
	var astFiles []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(pkgPath, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     astFiles,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// newExportImporter returns a types.Importer that resolves import paths
// through compiled export data files (gc format), with an optional import
// map applied first (the unitchecker config's vendor/renaming table).
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// mappedImporter applies an import-path rename table in front of another
// importer.
type mappedImporter struct {
	m    map[string]string
	next types.Importer
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.next.Import(path)
}

// moduleOnly filters pkgs down to the ones inside the module whose path has
// the given prefix; amop-vet analyzes the amop module, not its (empty) set
// of dependencies.
func moduleOnly(pkgs []*Package, modulePath string) []*Package {
	var out []*Package
	for _, p := range pkgs {
		if p.PkgPath == modulePath || strings.HasPrefix(p.PkgPath, modulePath+"/") {
			out = append(out, p)
		}
	}
	return out
}
