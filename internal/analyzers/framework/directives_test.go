package framework

import "testing"

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//amop:ignore budgetpair -- helper releases on exit", []string{"budgetpair"}, true},
		{"//amop:ignore budgetpair,scratchpair -- ownership documented above", []string{"budgetpair", "scratchpair"}, true},
		{"//amop:ignore all -- generated code", []string{"all"}, true},
		{"//amop:allow-go watchdog outside the budget", []string{"nakedgo"}, true},
		// Missing reasons are malformed: an unjustified suppression must not
		// silently work.
		{"//amop:ignore budgetpair", nil, false},
		{"//amop:ignore budgetpair --", nil, false},
		{"//amop:ignore -- reason but no analyzer", nil, false},
		{"//amop:allow-go", nil, false},
		{"//amop:allow-go   ", nil, false},
		// Unrelated comments.
		{"// plain comment", nil, false},
		{"//amop:other thing", nil, false},
	}
	for _, c := range cases {
		names, ok := parseDirective(c.text)
		if ok != c.ok {
			t.Errorf("parseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if len(names) != len(c.names) {
			t.Errorf("parseDirective(%q) = %v, want %v", c.text, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("parseDirective(%q) = %v, want %v", c.text, names, c.names)
				break
			}
		}
	}
}
