// Package framework is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis: just enough of the Analyzer/Pass contract
// to write project-specific vet checks against the standard library's
// go/ast and go/types, load the module's packages offline from `go list
// -export` data, and drive them either standalone (`amop-vet ./...`) or
// under `go vet -vettool=` via the unitchecker .cfg protocol.
//
// The x/tools module is deliberately not imported: this repository builds
// hermetically from the standard library alone, and the five analyzers in
// the neighboring packages need no facts, no SSA and no cross-package
// dependency graph — per-package syntax plus type information covers every
// invariant they enforce. If the repo ever grows an x/tools dependency the
// analyzers port mechanically: the Analyzer, Pass and Diagnostic shapes
// here mirror go/analysis field-for-field.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer (minus facts and requirements,
// which no amop analyzer needs).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//amop:ignore <name>` suppression directives. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: first line summary, then detail.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package, mirroring
// go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report collects a diagnostic; the runner applies suppression
	// directives and sorting afterwards.
	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report records a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.report(Diagnostic{Pos: pos, Message: msg, Analyzer: p.Analyzer.Name})
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// newInfo returns a types.Info with every map analyzers read populated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// RunAnalyzers applies every analyzer to pkg and returns the surviving
// diagnostics: suppression directives (see directives.go) are already
// applied, and the result is sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	supp := collectSuppressions(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.report = func(d Diagnostic) {
			if supp.suppressed(pkg.Fset, d) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	// Insertion sort by (file, line, col, analyzer): diagnostic counts per
	// package are tiny.
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && diagLess(fset, diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func diagLess(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}
