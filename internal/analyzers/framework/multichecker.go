package framework

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"
)

// Main is the amop-vet entry point: a multichecker over the given
// analyzers. It supports two modes:
//
//   - standalone: `amop-vet [packages]` loads the named packages (default
//     ./...) through the go toolchain and reports findings, exiting 2 when
//     any survive suppression — the mode `make vet` and CI use;
//   - vettool: `go vet -vettool=$(which amop-vet) ./...` drives the binary
//     through cmd/go's unitchecker protocol (a -V=full version handshake,
//     then one JSON .cfg file per package), so the suite composes with the
//     standard vet analyzers and go vet's caching.
func Main(analyzers ...*Analyzer) {
	fs := flag.NewFlagSet("amop-vet", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go handshake)")
	flagsFlag := fs.Bool("flags", false, "print flags in JSON and exit (cmd/go handshake)")
	jsonFlag := fs.Bool("json", false, "emit JSON diagnostics (unitchecker protocol)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: amop-vet [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		printFlags(fs)
		return
	}
	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], *jsonFlag, analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, analyzers))
}

// printVersion implements cmd/go's vettool identification handshake: the
// output must name the tool and include a build identifier that changes
// when the binary does, so go vet can cache per-package results keyed on
// the tool's identity.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("amop-vet version devel buildID=%x\n", h.Sum(nil))
}

// printFlags implements cmd/go's flag-discovery handshake (`amop-vet
// -flags`): a JSON description of the tool's flags, which go vet reads to
// learn how to parse and forward command-line options.
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, _ := json.MarshalIndent(out, "", "\t")
	os.Stdout.Write(data)
}

// standalone loads patterns and runs every analyzer over each package.
func standalone(patterns []string, analyzers []*Analyzer) int {
	pkgs, err := Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amop-vet:", err)
		return 1
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amop-vet: %s: %v\n", pkg.PkgPath, err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if found {
		return 2
	}
	return 0
}

// unitcheckerConfig is the JSON cmd/go writes for each package when driving
// a vettool; field names and meanings follow x/tools/go/analysis/unitchecker.
type unitcheckerConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// jsonDiagnostic is one finding in unitchecker's -json output shape.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// unitcheck analyzes the single package described by the cfg file.
func unitcheck(cfgPath string, asJSON bool, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amop-vet:", err)
		return 1
	}
	var cfg unitcheckerConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "amop-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The analyzers carry no facts, but cmd/go requires the facts file to
	// exist after a successful run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "amop-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := &mappedImporter{
		m:    cfg.ImportMap,
		next: newExportImporter(fset, cfg.PackageFile),
	}
	goVersion := strings.TrimPrefix(cfg.GoVersion, "go")
	pkg, err := checkPackage(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp, goVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "amop-vet:", err)
		return 1
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "amop-vet: %s: %v\n", pkg.PkgPath, err)
		return 1
	}
	if asJSON {
		// unitchecker JSON shape: {pkg: {analyzer: [diagnostics]}}.
		byAnalyzer := make(map[string][]jsonDiagnostic)
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
				Posn:    fset.Position(d.Pos).String(),
				Message: d.Message,
			})
		}
		out, _ := json.MarshalIndent(map[string]map[string][]jsonDiagnostic{cfg.ImportPath: byAnalyzer}, "", "\t")
		os.Stdout.Write(append(out, '\n'))
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
