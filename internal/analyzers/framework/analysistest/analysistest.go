// Package analysistest runs an analyzer over golden-file fixture packages,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixtures live
// under <testdata>/src/<importpath>/, and every line that should be flagged
// carries a
//
//	// want "regexp"
//
// comment (several quoted regexps expect several diagnostics on that line).
// The test fails on any diagnostic without a matching want and any want
// without a matching diagnostic, so each fixture proves both directions:
// the analyzer fires where it must and stays silent where it must not.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/nlstencil/amop/internal/analyzers/framework"
)

// Run loads each fixture package and applies a, comparing diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := &loader{
		root: filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loaded),
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)
	for _, path := range pkgpaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := framework.RunAnalyzers(pkg.pkg, []*framework.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, ld.fset, pkg, diags)
	}
}

type loaded struct {
	pkg   *framework.Package
	wants []want
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type loader struct {
	root string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*loaded
}

// load parses and type-checks the fixture package at importpath path,
// resolving imports first against sibling fixture directories and then
// against the standard library (compiled from GOROOT source, so the tests
// run hermetically offline).
func (ld *loader) load(path string) (*loaded, error) {
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		w, err := parseWants(ld.fset, f)
		if err != nil {
			return nil, err
		}
		wants = append(wants, w...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if dep, err := ld.load(ipath); err == nil {
			return dep.pkg.Types, nil
		}
		return ld.std.Import(ipath)
	})}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loaded{
		pkg: &framework.Package{
			PkgPath:   path,
			Dir:       dir,
			Fset:      ld.fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		},
		wants: wants,
	}
	ld.pkgs[path] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRE matches the quoted regexps of a want comment.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants extracts want expectations from f's comments.
func parseWants(fset *token.FileSet, f *ast.File) ([]want, error) {
	var wants []want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "// want ")
			if idx < 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			spec := c.Text[idx+len("// want "):]
			quoted := wantRE.FindAllString(spec, -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
			}
			for _, q := range quoted {
				var pat string
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else {
					var err error
					if pat, err = strconv.Unquote(q); err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants, nil
}

// check matches diagnostics against wants one-to-one.
func check(t *testing.T, fset *token.FileSet, pkg *loaded, diags []framework.Diagnostic) {
	t.Helper()
	wants := make([]*want, len(pkg.wants))
	for i := range pkg.wants {
		wants[i] = &pkg.wants[i]
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
