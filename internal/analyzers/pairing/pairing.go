// Package pairing implements the acquire/release path analysis shared by
// the budgetpair (par.TryAcquire/par.Release) and scratchpair
// (scratch.Floats/PutFloats, scratch.Complexes/PutComplexes) analyzers.
//
// The model: an acquire call produces a resource bound to a local variable;
// the resource must reach a matching release on every path out of the
// variable's scope, either directly, via defer, or inside a function
// literal launched from the scope (a deferred cleanup or a goroutine the
// resource is handed to). Ownership may instead *escape* — the value is
// returned, stored into a longer-lived structure, transferred to another
// variable, or (for budget tokens) passed to another function — in which
// case the pairing obligation moves with it and the analyzer stays silent:
// these checks are precise about what they flag, never about what they
// excuse.
//
// The path analysis is structural rather than CFG-based: it walks the
// scope's statement list in order, tracking whether a release is
// guaranteed yet, recursing into if/for/switch/select bodies. That is
// exact for the shapes this codebase uses (straight-line pairing, deferred
// release, conditional release under a zero-token guard, loop-carried
// buffers) and conservative — silent, not noisy — beyond them.
package pairing

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/nlstencil/amop/internal/analyzers/framework"
)

// Spec parameterizes the analysis for one acquire/release family.
type Spec struct {
	// IsAcquire reports whether call acquires a resource, returning a label
	// for diagnostics (e.g. "par.TryAcquire", "scratch.Floats").
	IsAcquire func(info *types.Info, call *ast.CallExpr) (string, bool)

	// IsRelease reports whether call releases resources of this family,
	// returning a label (e.g. "par.Release").
	IsRelease func(info *types.Info, call *ast.CallExpr) (string, bool)

	// ReleaseLabel names the release operation in diagnostics when no
	// concrete call is available ("par.Release", "scratch.Put*").
	ReleaseLabel string

	// CallArgEscapes, when set, treats passing the resource variable to any
	// non-release function as an ownership transfer (true for budget token
	// counts, which helpers release on the caller's behalf). When clear,
	// passing the variable leaves the caller the owner (true for scratch
	// buffers: callees operate on them, callers put them back).
	CallArgEscapes bool

	// ZeroExempt, when set, recognizes conditions of the form v == 0 /
	// v <= 0 (and negations) as proving the resource is empty, so paths
	// where the guard holds owe no release. par.TryAcquire returns zero
	// tokens when the budget is exhausted; releasing zero is a no-op, and
	// the canonical caller pattern returns early on it.
	ZeroExempt bool
}

// Check runs the analysis over every function in the pass.
func Check(pass *framework.Pass, spec *Spec) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, spec, fn, fn.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, spec, fn, fn.Body)
			}
			return true
		})
	}
}

// checkBody analyzes the acquire sites directly inside body (acquires
// inside nested function literals are analyzed when the walk reaches the
// literal itself).
func checkBody(pass *framework.Pass, spec *Spec, fn ast.Node, body *ast.BlockStmt) {
	c := &checker{pass: pass, spec: spec, parent: make(map[ast.Node]ast.Node)}
	buildParents(c.parent, fn)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if label, ok := spec.IsAcquire(c.info(), call); ok {
			c.checkAcquire(call, label)
		}
		return true
	})
}

type checker struct {
	pass   *framework.Pass
	spec   *Spec
	parent map[ast.Node]ast.Node
}

func (c *checker) info() *types.Info { return c.pass.TypesInfo }

func buildParents(parents map[ast.Node]ast.Node, root ast.Node) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
}

// checkAcquire classifies one acquire site and dispatches the appropriate
// precision tier.
func (c *checker) checkAcquire(call *ast.CallExpr, label string) {
	parent := c.parent[call]
	// Unwrap parens around the call.
	for {
		if p, ok := parent.(*ast.ParenExpr); ok {
			parent = c.parent[p]
			continue
		}
		break
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		// The result is discarded: the resource can never be released.
		c.pass.Reportf(call.Pos(), "result of %s is discarded: the acquired resource can never reach %s", label, c.spec.ReleaseLabel)
	case *ast.AssignStmt:
		c.checkAssign(p, call, label)
	default:
		// The call feeds directly into a larger expression (a release
		// argument, a return value, a struct literal): ownership moves
		// with the value and the obligation moves with it.
	}
}

// checkAssign handles `v := acquire()` and `v = acquire()` forms.
func (c *checker) checkAssign(assign *ast.AssignStmt, call *ast.CallExpr, label string) {
	// Locate which LHS the call's value lands in; only the single-value
	// forms are analyzed.
	if len(assign.Rhs) != 1 || len(assign.Lhs) != 1 || ast.Unparen(assign.Rhs[0]) != call {
		return
	}
	id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		// Stored straight into a field or element: ownership escapes the
		// local frame.
		return
	}
	v := c.varOf(id)
	if v == nil {
		return
	}
	if c.isNamedResult(assign, v) {
		// Acquired straight into a named result: the value escapes to the
		// caller on every return, bare or not.
		return
	}

	// The variable's scope block bounds the analysis region: the statement
	// list the assignment belongs to, from the statement after it onward.
	region, fullMust := c.regionAfter(assign)
	if region == nil {
		return
	}
	ev := c.scanEvidence(region, v, assign)
	if ev.escapes {
		return
	}
	if !ev.released {
		c.pass.Reportf(call.Pos(), "%s result %q never reaches %s on any path (resource leak)", label, id.Name, c.spec.ReleaseLabel)
		return
	}
	if !fullMust {
		// `v = acquire()` into a variable declared elsewhere: presence of a
		// release (checked above) is the contract this tier can verify.
		return
	}
	w := &mustWalker{c: c, v: v, label: label, name: id.Name}
	state := w.walkStmts(region, false)
	if !state.released && !state.terminated {
		c.pass.Reportf(call.Pos(), "%s result %q is not released by %s on the fall-through path out of its scope", label, id.Name, c.spec.ReleaseLabel)
	}
}

// isNamedResult reports whether v is a named result parameter of the
// function enclosing assign.
func (c *checker) isNamedResult(assign ast.Node, v *types.Var) bool {
	for n := c.parent[assign]; n != nil; n = c.parent[n] {
		var ftype *ast.FuncType
		switch fn := n.(type) {
		case *ast.FuncLit:
			ftype = fn.Type
		case *ast.FuncDecl:
			ftype = fn.Type
		default:
			continue
		}
		if ftype.Results == nil {
			return false
		}
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if c.info().Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return false
}

func (c *checker) varOf(id *ast.Ident) *types.Var {
	if v, ok := c.info().Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := c.info().Uses[id].(*types.Var)
	return v
}

// regionAfter returns the statements that execute after assign and can
// discharge (or transfer) the obligation. fullMust reports whether the
// region covers the whole rest of the variable's scope, enabling the
// all-paths walk: that holds for `:=` bindings, whose scope is the
// innermost block. For `=` into a variable declared further out, the
// region instead climbs to the rest of every enclosing block up to the
// function body, and only the presence of a release is verified.
func (c *checker) regionAfter(assign *ast.AssignStmt) (region []ast.Stmt, fullMust bool) {
	if assign.Tok == token.DEFINE {
		switch p := c.parent[assign].(type) {
		case *ast.BlockStmt:
			for i, s := range p.List {
				if s == assign {
					return p.List[i+1:], true
				}
			}
		case *ast.IfStmt:
			if p.Init == assign {
				return []ast.Stmt{p}, true
			}
		}
		// Other := positions (for-init, case bodies) are out of the
		// structural model; stay silent rather than guess.
		return nil, false
	}
	var cur ast.Node = assign
	for n := c.parent[assign]; n != nil; n = c.parent[n] {
		switch p := n.(type) {
		case *ast.BlockStmt:
			region = append(region, after(p.List, cur)...)
		case *ast.CaseClause:
			region = append(region, after(p.Body, cur)...)
		case *ast.CommClause:
			region = append(region, after(p.Body, cur)...)
		case *ast.FuncDecl, *ast.FuncLit:
			return region, false
		}
		cur = n
	}
	return region, false
}

// after returns the statements of list following the one that is (or
// contains) cur.
func after(list []ast.Stmt, cur ast.Node) []ast.Stmt {
	for i, s := range list {
		if ast.Node(s) == cur {
			return list[i+1:]
		}
	}
	return nil
}

// evidence summarizes what the scope does with the resource variable.
type evidence struct {
	released bool
	escapes  bool
}

// scanEvidence walks the region (including nested function literals)
// classifying every use of v.
func (c *checker) scanEvidence(region []ast.Stmt, v *types.Var, binding *ast.AssignStmt) evidence {
	var ev evidence
	for _, stmt := range region {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if ev.escapes {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if _, ok := c.spec.IsRelease(c.info(), n); ok {
					if framework.Mentions(c.info(), n, v) {
						ev.released = true
						// Do not descend: v inside a release call is the
						// release itself, not an escape.
						return false
					}
					return true
				}
				if c.spec.CallArgEscapes && c.argMentions(n, v) {
					ev.escapes = true
					return false
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if framework.Mentions(c.info(), r, v) {
						ev.escapes = true
						return false
					}
				}
			case *ast.AssignStmt:
				if n == binding {
					return true
				}
				// v (or a slice of v) on the RHS: the value itself is
				// transferred to another location — an alias, a field, a
				// slot — and ownership goes with it. Arithmetic or element
				// reads over v (w = tokens + 1, apex = seg[0]) consume
				// data, not ownership, and do not escape. v reassigned on
				// the LHS: tracking of the original value ends; the
				// reassignment shapes in this codebase release or hand off
				// the old value first, and modeling them would trade
				// silence for noise.
				for _, r := range n.Rhs {
					if aliasRoot(c.info(), r) == v {
						ev.escapes = true
						return false
					}
				}
				for _, l := range n.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok && c.info().Uses[id] == v {
						ev.escapes = true
						return false
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && framework.Mentions(c.info(), n.X, v) {
					ev.escapes = true
					return false
				}
			case *ast.CompositeLit:
				if framework.Mentions(c.info(), n, v) {
					ev.escapes = true
					return false
				}
			case *ast.SendStmt:
				if framework.Mentions(c.info(), n.Value, v) {
					ev.escapes = true
					return false
				}
			case *ast.IncDecStmt:
				// Token-count arithmetic mutates the obligation in ways the
				// structural walk cannot follow.
				if framework.Mentions(c.info(), n.X, v) {
					ev.escapes = true
					return false
				}
			}
			return true
		})
	}
	return ev
}

// aliasRoot resolves e to the variable whose storage it aliases: the
// variable itself, or a reslicing of it. Element reads, arithmetic and
// calls alias nothing.
func aliasRoot(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// argMentions reports whether v appears among call's arguments.
func (c *checker) argMentions(call *ast.CallExpr, v *types.Var) bool {
	for _, a := range call.Args {
		if framework.Mentions(c.info(), a, v) {
			return true
		}
	}
	return false
}

// mustWalker is the all-paths release analysis for one tracked variable.
type mustWalker struct {
	c     *checker
	v     *types.Var
	label string
	name  string
}

// pathState flows through the structural walk.
type pathState struct {
	// released: a release (direct, deferred, or handed to a launched
	// function literal) is guaranteed at this point.
	released bool
	// exempt: on this path the resource is proven empty (zero tokens), so
	// no release is owed.
	exempt bool
	// terminated: this path ends in a return (already checked) or panic.
	terminated bool
}

// walkStmts threads state through a statement list.
func (w *mustWalker) walkStmts(stmts []ast.Stmt, released bool) pathState {
	st := pathState{released: released}
	for _, s := range stmts {
		st = w.walkStmt(s, st)
		if st.terminated {
			break
		}
	}
	return st
}

func (w *mustWalker) walkStmt(s ast.Stmt, st pathState) pathState {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.stmtReleases(s.X) {
			st.released = true
		}
	case *ast.DeferStmt:
		if w.callReleases(s.Call) {
			st.released = true
		}
	case *ast.GoStmt:
		if w.callReleases(s.Call) {
			// The release rides in the goroutine: ownership handed off.
			st.released = true
		}
	case *ast.ReturnStmt:
		if !st.released && !st.exempt {
			w.c.pass.Reportf(s.Pos(), "return leaks %s result %q: no %s on this path", w.label, w.name, w.c.spec.ReleaseLabel)
		}
		st.terminated = true
	case *ast.BlockStmt:
		inner := w.walkStmts(s.List, st.released)
		st.released = inner.released
		st.terminated = inner.terminated
	case *ast.LabeledStmt:
		st = w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		st = w.walkIf(s, st)
	case *ast.ForStmt:
		if s.Body != nil {
			w.walkStmts(s.Body.List, st.released)
		}
		// The body may run zero times: its releases are not guaranteed
		// after the loop. An infinite `for {}` with no break would
		// terminate the path, but none of the tracked scopes use it.
	case *ast.RangeStmt:
		if s.Body != nil {
			w.walkStmts(s.Body.List, st.released)
		}
	case *ast.SwitchStmt:
		st.released = w.walkCases(caseBodies(s.Body), s.Body != nil && hasDefault(s.Body), st.released)
	case *ast.TypeSwitchStmt:
		st.released = w.walkCases(caseBodies(s.Body), s.Body != nil && hasDefault(s.Body), st.released)
	case *ast.SelectStmt:
		if s.Body != nil {
			var bodies [][]ast.Stmt
			for _, cl := range s.Body.List {
				bodies = append(bodies, cl.(*ast.CommClause).Body)
			}
			// select blocks until some case runs, so all-cases-release
			// suffices.
			st.released = w.walkCases(bodies, true, st.released)
		}
	}
	return st
}

// walkIf handles conditionals, including the zero-token guards.
func (w *mustWalker) walkIf(s *ast.IfStmt, st pathState) pathState {
	zeroThen, zeroElse := w.zeroGuard(s.Cond)

	thenSt := pathState{released: st.released, exempt: zeroThen}
	if !thenSt.exempt {
		inner := w.walkStmts(s.Body.List, thenSt.released)
		thenSt.released = inner.released
		thenSt.terminated = inner.terminated
	} else {
		// Returns under the guard owe nothing; but if the branch falls
		// through, the exemption ends with it (v may be nonzero on the
		// merged path below the if only when the guard failed — in which
		// case this branch never ran — so fall-through keeps prior state).
		thenSt.terminated = terminates(s.Body.List)
	}

	elseSt := pathState{released: st.released, exempt: zeroElse}
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		if !elseSt.exempt {
			inner := w.walkStmts(e.List, elseSt.released)
			elseSt.released = inner.released
			elseSt.terminated = inner.terminated
		} else {
			elseSt.terminated = terminates(e.List)
		}
	case *ast.IfStmt:
		if !elseSt.exempt {
			elseSt = w.walkIf(e, pathState{released: st.released})
		}
	case nil:
		// No else. `if v > 0 { release }` discharges the obligation: when
		// the guard fails the resource is empty and owes nothing. Every
		// other shape leaves the fall-through state as it was before the
		// if — either the branch did not run, or it ran and terminated
		// (returns inside were already checked).
		if zeroElse && (thenSt.released || thenSt.terminated) {
			st.released = true
		}
		return st
	}

	switch {
	case thenSt.terminated && elseSt.terminated:
		st.terminated = true
	case thenSt.terminated:
		st.released = elseSt.released || elseSt.exempt
	case elseSt.terminated:
		st.released = thenSt.released || thenSt.exempt
	default:
		st.released = (thenSt.released || thenSt.exempt) && (elseSt.released || elseSt.exempt)
	}
	return st
}

// walkCases threads a branch set; the merged path is released only when
// every branch releases and the set covers all inputs.
func (w *mustWalker) walkCases(bodies [][]ast.Stmt, exhaustive bool, released bool) bool {
	if len(bodies) == 0 {
		return released
	}
	all := true
	for _, b := range bodies {
		inner := w.walkStmts(b, released)
		if !inner.released && !inner.terminated {
			all = false
		}
	}
	return released || (all && exhaustive)
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	if body == nil {
		return nil
	}
	var out [][]ast.Stmt
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok {
			out = append(out, c.Body)
		}
	}
	return out
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// terminates reports whether a statement list always exits the function
// (structurally: its last statement is a return or an unconditional panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// stmtReleases reports whether expr is a release of the tracked variable,
// directly or via an immediately-invoked function literal.
func (w *mustWalker) stmtReleases(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	return w.callReleases(call)
}

// callReleases reports whether call releases v: a direct release call, or
// a call whose function literal (deferred cleanup, goroutine body) contains
// one.
func (w *mustWalker) callReleases(call *ast.CallExpr) bool {
	info := w.c.info()
	if _, ok := w.c.spec.IsRelease(info, call); ok {
		return framework.Mentions(info, call, w.v)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if _, ok := w.c.spec.IsRelease(info, c); ok && framework.Mentions(info, c, w.v) {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// zeroGuard classifies cond: zeroThen means the then-branch runs only when
// the resource count is zero (nothing to release there); zeroElse means the
// else/fall-through side is the zero side.
func (w *mustWalker) zeroGuard(cond ast.Expr) (zeroThen, zeroElse bool) {
	if !w.c.spec.ZeroExempt {
		return false, false
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	op := bin.Op
	// Normalize to "v OP literal".
	if isZeroLit(x) || isOneLit(x) {
		x, y = y, x
		switch op {
		case token.LSS:
			op = token.GTR
		case token.GTR:
			op = token.LSS
		case token.LEQ:
			op = token.GEQ
		case token.GEQ:
			op = token.LEQ
		}
	}
	if id, ok := x.(*ast.Ident); !ok || w.c.info().Uses[id] != w.v {
		return false, false
	}
	switch {
	case isZeroLit(y):
		switch op {
		case token.EQL, token.LEQ: // v == 0, v <= 0
			return true, false
		case token.NEQ, token.GTR: // v != 0, v > 0
			return false, true
		}
	case isOneLit(y):
		switch op {
		case token.LSS: // v < 1
			return true, false
		case token.GEQ: // v >= 1
			return false, true
		}
	}
	return false, false
}

func isZeroLit(e ast.Expr) bool { return isIntLit(e, "0") }
func isOneLit(e ast.Expr) bool  { return isIntLit(e, "1") }

func isIntLit(e ast.Expr, text string) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == text
}
