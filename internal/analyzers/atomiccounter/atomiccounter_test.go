package atomiccounter_test

import (
	"testing"

	"github.com/nlstencil/amop/internal/analyzers/atomiccounter"
	"github.com/nlstencil/amop/internal/analyzers/framework/analysistest"
)

func TestAtomicCounter(t *testing.T) {
	analysistest.Run(t, "testdata", atomiccounter.Analyzer, "counters")
}
