// Package atomiccounter defines an analyzer guarding the process-wide
// performance counters surfaced by amop.ReadPerfCounters.
//
// Those counters (spectrum-cache hits, FFT byte traffic, repricing-memo
// and serving counters) are written from every solver goroutine at once;
// they stay trustworthy only if every access goes through sync/atomic. The
// analyzer enforces that mechanically for two counter shapes:
//
//   - atomic-typed counters (package-level sync/atomic.Int64 & friends):
//     every use must be a direct method call (Load, Add, Store, Swap,
//     CompareAndSwap) or an address-of. Copying the value (assignment,
//     value argument, comparison, composite literal) snapshots the counter
//     non-atomically and detaches the copy from the shared variable — on
//     32-bit platforms the copy itself tears.
//
//   - legacy plain-integer counters: a package-level integer variable
//     whose address is passed to a sync/atomic function anywhere in the
//     package is a counter by declaration of intent; every other access
//     must then be atomic too. One plain `v++` next to atomic.AddInt64
//     callers is a lost-update bug and a data race the detector only
//     catches when two writers actually collide under -race.
package atomiccounter

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/nlstencil/amop/internal/analyzers/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "atomiccounter",
	Doc: "check that process-wide counters are only touched via sync/atomic\n\n" +
		"Counters behind ReadPerfCounters are written from every solver\n" +
		"goroutine; a plain load/store or a value copy breaks them.",
	Run: run,
}

// atomicTypes is the set of sync/atomic wrapper types treated as counters
// when declared at package level.
var atomicTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Value": true, "Pointer": true,
}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo

	// Pass 1: find the counter variables and, for legacy counters, the
	// uses that bless them (an &v argument to a sync/atomic call).
	atomicVars := make(map[*types.Var]bool)  // sync/atomic-typed package vars
	legacyVars := make(map[*types.Var]bool)  // plain ints used with atomic.AddXxx(&v)
	blessedUses := make(map[*ast.Ident]bool) // idents appearing inside a sync/atomic call
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if ok && isAtomicType(v.Type()) {
			atomicVars[v] = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				id, ok := ast.Unparen(unary.X).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := info.Uses[id].(*types.Var)
				if !ok || v.Parent() != scope || !isPlainInteger(v.Type()) {
					continue
				}
				legacyVars[v] = true
				blessedUses[id] = true
			}
			return true
		})
	}

	// Pass 2: audit every use of a counter variable.
	for _, file := range pass.Files {
		checkFile(pass, file, atomicVars, legacyVars, blessedUses)
	}
	return nil
}

func checkFile(pass *framework.Pass, file *ast.File, atomicVars, legacyVars map[*types.Var]bool, blessedUses map[*ast.Ident]bool) {
	info := pass.TypesInfo
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		switch {
		case atomicVars[v]:
			if !atomicUseOK(parents, id) {
				pass.Reportf(id.Pos(), "atomic counter %s must be used only through its sync/atomic methods (or by address); copying the value reads it non-atomically and detaches the copy", id.Name)
			}
		case legacyVars[v]:
			if !blessedUses[id] {
				pass.Reportf(id.Pos(), "counter %s is accessed with sync/atomic elsewhere in this package; this plain access is a data race — use the atomic API here too", id.Name)
			}
		}
		return true
	})
}

// atomicUseOK reports whether the use of an atomic-typed counter at id is
// sound: the receiver of a method call, or an address-of (aliasing keeps
// accesses atomic; only value copies break).
func atomicUseOK(parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	p := parents[id]
	for {
		if par, ok := p.(*ast.ParenExpr); ok {
			p = parents[par]
			continue
		}
		break
	}
	switch p := p.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return true // id is the field name of some other selection
		}
		// v.Method(...): the selector must be called.
		call, ok := parents[p].(*ast.CallExpr)
		return ok && call.Fun == p
	case *ast.UnaryExpr:
		return p.Op == token.AND
	}
	return false
}

func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypes[obj.Name()]
}

func isPlainInteger(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := framework.Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
