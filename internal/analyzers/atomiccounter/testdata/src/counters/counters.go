// Package counters exercises the atomiccounter analyzer: sound uses of
// atomic-typed and legacy plain-integer counters, and the copies and plain
// accesses it must flag.
package counters

import "sync/atomic"

// Atomic-typed counters: every use must be a method call or an address-of.
var (
	hits     atomic.Int64
	fftBytes atomic.Uint64
)

// A legacy plain-integer counter: blessed as atomic by the AddInt64 below,
// so every other access must be atomic too.
var legacyHits int64

// A plain package variable never touched by sync/atomic: free to use plainly.
var plainTotal int64

func recordHit() {
	hits.Add(1)
	fftBytes.Add(8)
	atomic.AddInt64(&legacyHits, 1)
	plainTotal++
}

func readStats() (int64, uint64, int64) {
	return hits.Load(), fftBytes.Load(), atomic.LoadInt64(&legacyHits)
}

// Address-of aliases the counter; accesses through the pointer stay atomic.
func alias() *atomic.Int64 { return &hits }

func okPlain() int64 {
	plainTotal += 2
	return plainTotal
}

// ---- shapes the analyzer must flag ----

func badCopy() int64 {
	snapshot := hits // want `atomic counter hits must be used only through its sync/atomic methods`
	return snapshot.Load()
}

func badValueArg() int64 {
	return consume(hits) // want `atomic counter hits must be used only through its sync/atomic methods`
}

func consume(v atomic.Int64) int64 { return v.Load() }

func badLegacyWrite() {
	legacyHits++ // want `counter legacyHits is accessed with sync/atomic elsewhere in this package; this plain access is a data race`
}

func badLegacyRead() int64 {
	return legacyHits // want `counter legacyHits is accessed with sync/atomic elsewhere in this package; this plain access is a data race`
}
