// Package scratchuse exercises the scratchpair analyzer: the pool's
// borrow-and-put protocol, ownership transfers, and the leaks it must catch.
package scratchuse

import "github.com/nlstencil/amop/internal/scratch"

func fill(b []float64) {
	for i := range b {
		b[i] = float64(i)
	}
}

func sum(b []float64) float64 {
	var t float64
	for _, x := range b {
		t += x
	}
	return t
}

func transform(s []complex128) { _ = s }

func done(b []float64, i int) bool { return b[i] == 0 }

type state struct{ buf []float64 }

// ---- shapes the analyzer must flag ----

func leakDiscarded() {
	scratch.Floats(16) // want `result of scratch\.Floats is discarded`
}

// Passing a buffer to another function is a borrow, not a transfer: the
// caller still owes the Put.
func leakNeverPut(n int) float64 {
	buf := scratch.Floats(n) // want `scratch\.Floats result "buf" never reaches scratch\.Put\* on any path`
	fill(buf)
	total := sum(buf)
	return total
}

func leakEarlyReturn(n int, bad bool) float64 {
	buf := scratch.Floats(n)
	fill(buf)
	if bad {
		return 0 // want `return leaks scratch\.Floats result "buf": no scratch\.Put\* on this path`
	}
	total := sum(buf)
	scratch.PutFloats(buf)
	return total
}

func leakLoopExit(n int) {
	buf := scratch.Floats(n)
	fill(buf)
	for i := 0; i < n; i++ {
		if done(buf, i) {
			return // want `return leaks scratch\.Floats result "buf": no scratch\.Put\* on this path`
		}
	}
	scratch.PutFloats(buf)
}

// Reading an element consumes data, not ownership: no escape, still a leak.
func leakElementRead(n int) float64 {
	buf := scratch.Floats(n) // want `scratch\.Floats result "buf" never reaches scratch\.Put\* on any path`
	fill(buf)
	apex := buf[0]
	return apex
}

// ---- shapes the analyzer must accept ----

func okDefer(n int) float64 {
	buf := scratch.Floats(n)
	defer scratch.PutFloats(buf)
	fill(buf)
	return sum(buf)
}

func okLinear(n int) float64 {
	buf := scratch.Floats(n)
	fill(buf)
	total := sum(buf)
	scratch.PutFloats(buf)
	return total
}

func okComplexes(n int) {
	spec := scratch.Complexes(n)
	transform(spec)
	scratch.PutComplexes(spec)
}

// The double-buffer loop from the stencil evolutions: each Put matches the
// previous iteration's buffer, the handoff `cur = next` transfers ownership.
func okLoopCarried(n, steps int) {
	cur := scratch.Floats(n)
	for i := 0; i < steps; i++ {
		next := scratch.Floats(n)
		fill(next)
		scratch.PutFloats(cur)
		cur = next
	}
	scratch.PutFloats(cur)
}

// Returning the buffer transfers ownership to the caller.
func okReturned(n int) []float64 {
	buf := scratch.Floats(n)
	fill(buf)
	return buf
}

// Storing the buffer transfers ownership to the structure's owner.
func okStored(s *state, n int) {
	buf := scratch.Floats(n)
	fill(buf)
	s.buf = buf
}

// Acquired straight into a field: never locally owned.
func okStoredDirect(s *state, n int) {
	s.buf = scratch.Floats(n)
}

// Reslicing aliases the backing array: ownership tracking ends, the alias
// owns the obligation.
func okResliced(n int) {
	buf := scratch.Floats(2 * n)
	head := buf[:n]
	fill(head)
	scratch.PutFloats(buf)
}
