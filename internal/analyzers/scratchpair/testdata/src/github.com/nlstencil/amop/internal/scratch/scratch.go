// Stub of internal/scratch for the scratchpair fixtures: the analyzer
// matches callees by import path, so the fixture tree mirrors the real one.
package scratch

// Floats hands the caller a zeroed buffer; ownership transfers with it.
func Floats(n int) []float64 { return make([]float64, n) }

// PutFloats returns a buffer to the pool.
func PutFloats(b []float64) { _ = b }

// Complexes hands the caller a zeroed complex buffer.
func Complexes(n int) []complex128 { return make([]complex128, n) }

// PutComplexes returns a complex buffer to the pool.
func PutComplexes(b []complex128) { _ = b }
