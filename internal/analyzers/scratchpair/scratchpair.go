// Package scratchpair defines an analyzer verifying that buffers taken
// from internal/scratch's size-classed freelists are returned or
// deliberately handed off.
//
// The invariant: scratch.Floats / scratch.Complexes transfer buffer
// ownership to the caller; the owner either returns the buffer with
// scratch.PutFloats / scratch.PutComplexes or passes ownership on (returns
// it, stores it, hands it to a goroutine). A locally-owned buffer that
// reaches a return statement — or falls out of scope — without a Put is a
// pool leak: correctness survives (the GC collects it) but the freelist
// never recycles it, and the zero-allocation steady state the pools exist
// for erodes one forgotten Put at a time, exactly the regression a test
// suite cannot see.
//
// Passing a buffer to another function is NOT treated as an ownership
// transfer: throughout this codebase callees operate on borrowed buffers
// (FFT transforms, row evolutions) and the caller still puts them back.
// Ownership moves only when the value itself moves — into a return, an
// assignment, a composite literal, a channel send.
package scratchpair

import (
	"go/ast"
	"go/types"

	"github.com/nlstencil/amop/internal/analyzers/framework"
	"github.com/nlstencil/amop/internal/analyzers/pairing"
)

const scratchPath = framework.ModulePath + "/internal/scratch"

var Analyzer = &framework.Analyzer{
	Name: "scratchpair",
	Doc: "check that scratch.Floats/Complexes buffers reach scratch.Put* or escape\n\n" +
		"A locally-owned buffer dropped without a Put silently erodes the\n" +
		"scratch pools' zero-allocation steady state.",
	Run: run,
}

var spec = &pairing.Spec{
	IsAcquire: func(info *types.Info, call *ast.CallExpr) (string, bool) {
		for _, name := range [...]string{"Floats", "Complexes"} {
			if framework.IsCallTo(info, call, scratchPath, name) {
				return "scratch." + name, true
			}
		}
		return "", false
	},
	IsRelease: func(info *types.Info, call *ast.CallExpr) (string, bool) {
		for _, name := range [...]string{"PutFloats", "PutComplexes"} {
			if framework.IsCallTo(info, call, scratchPath, name) {
				return "scratch." + name, true
			}
		}
		return "", false
	},
	ReleaseLabel:   "scratch.Put*",
	CallArgEscapes: false,
	ZeroExempt:     false,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Path() == scratchPath {
		// The pools' own implementation allocates and recycles raw slices;
		// the pairing protocol starts at its API boundary.
		return nil
	}
	pairing.Check(pass, spec)
	return nil
}
