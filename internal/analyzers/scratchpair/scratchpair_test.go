package scratchpair_test

import (
	"testing"

	"github.com/nlstencil/amop/internal/analyzers/framework/analysistest"
	"github.com/nlstencil/amop/internal/analyzers/scratchpair"
)

func TestScratchPair(t *testing.T) {
	analysistest.Run(t, "testdata", scratchpair.Analyzer, "scratchuse")
}
