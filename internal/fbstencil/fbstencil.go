// Package fbstencil implements the paper's core contribution: fast solvers
// for free-boundary ("obstacle") nonlinear 1D stencil computations.
//
// A nonlinear stencil in this class updates a cell as
//
//	value(d+1, j) = max( sum_o w[o]*value(d, j+o),  Green(d+1, j) )
//
// where Green is a closed-form function of the cell coordinates (the exercise
// value in option pricing). Every row then splits into a contiguous *red*
// region, where the linear combination wins, and a contiguous *green* region,
// where the closed form wins; the red/green boundary column moves by at most
// one cell per step and only in one direction (the paper's Corollary 2.7 for
// BOPM, Corollary A.6 for TOPM, Theorem 4.3 for BSM).
//
// The solvers exploit that structure: large all-red trapezoids are advanced
// many steps at once with one FFT-accelerated linear evolution
// (linstencil.EvolveCone), while a geometrically shrinking band around the
// unknown boundary is resolved recursively, giving O(T log^2 T) work and O(T)
// span on a grid of size Theta(T) evolved for T steps.
//
// Two geometries are supported, matching the paper's three models:
//
//   - GreenRight (Section 2.3/3): one-sided stencil with offsets 0..r, green
//     region on the right; used by BOPM (r=1) and TOPM (r=2) American calls.
//   - GreenLeft centered (Section 4.3): 3-point stencil with offsets -1..1,
//     green region on the left; used by the BSM American put.
package fbstencil

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
)

// ErrNonFinite is wrapped by the error a solve returns when its result is
// NaN or Inf: the surface-health gate in the serving layer matches on it to
// pin the last-good quote instead of publishing poison.
var ErrNonFinite = errors.New("non-finite solve result")

// canceled is the sentinel carried by the panic that unwinds a canceled
// solve. The recursion is deep and forks through par.Do, so unwinding by
// panic — recovered at the Solve* entry point, never escaping the package —
// is what keeps the cancellation checkpoints down to one branch instead of
// threading an error return through every level. Scratch buffers in flight
// are abandoned to the GC rather than returned to their pools; that is
// explicitly safe (see the buffer-discipline note above: correctness never
// depends on a Put succeeding), and par's own defers keep the spawn budget
// paired on the panic path.
type canceled struct{ err error }

// checkCancel polls the problem's cancellation hook (nil means
// non-cancelable) and unwinds the solve when it reports an error.
func checkCancel(cancel func() error) {
	if cancel == nil {
		return
	}
	if err := cancel(); err != nil {
		panic(canceled{err})
	}
}

// recoverCancel converts the cancellation sentinel back into an ordinary
// error at a Solve* entry point. A sentinel raised inside a par fork arrives
// wrapped in a *par.PanicError; both shapes are handled. Any other panic is
// genuine and re-raised.
func recoverCancel(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if pe, ok := r.(*par.PanicError); ok {
		if c, ok := pe.Value.(canceled); ok {
			*err = c.err
			return
		}
	}
	if c, ok := r.(canceled); ok {
		*err = c.err
		return
	}
	panic(r)
}

// checkFinite is the solver-level health guard: a solve whose apex value is
// NaN or Inf returns an ErrNonFinite-wrapped error instead of the value.
func checkFinite(v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("fbstencil: %w (apex=%v)", ErrNonFinite, v)
	}
	return nil
}

// Buffer discipline: every row segment, staging window, and zone buffer the
// solvers churn through comes from internal/scratch's size-classed pools and
// is returned there the moment its last reader is done — the recursion used
// to make-and-drop a fresh slice at every level, which at T = 10^5+ made the
// allocator and GC a measurable slice of the solve. The ownership rules are:
//
//   - EvolveCone results, zone outputs, and naiveStep rows are owned by their
//     caller, which recycles them after merging them into the next segment;
//   - functions never recycle their *input* segment — inputs may be
//     subslices of a buffer another parallel branch is still reading (see
//     halfStep) — except for exactFirstStep, which by contract consumes it;
//   - buffers whose front gets trimmed (the boundary ate a prefix) lose
//     their power-of-two capacity and are dropped by scratch.PutFloats
//     automatically; correctness never depends on a Put succeeding.

// DefaultBaseCase is the recursion cutoff height below which trapezoids are
// solved by the direct loop. The paper reports a base case of 8 steps
// performing best; our default is close and can be overridden per problem.
const DefaultBaseCase = 8

// parCutoff is the trapezoid height below which the FFT half and the
// boundary-side recursion run sequentially instead of through par.Do: under
// ~this much work the fork-join costs more — goroutine spawn, plus the
// closure and capture-box allocations the fork forces on every call — than
// the parallelism returns. The deep, numerous small trapezoids all take the
// allocation-free serial path; the few large ones near the top of the
// recursion keep the paper's parallel span.
const parCutoff = 64

// Stats collects work counters from a solve. Counters are updated atomically
// and may be shared between concurrent solves. A nil *Stats disables
// collection.
type Stats struct {
	FFTCalls   atomic.Int64 // linstencil.EvolveCone invocations
	FFTCells   atomic.Int64 // cells produced by FFT evolutions
	NaiveCells atomic.Int64 // cells computed by direct max-loops
	Trapezoids atomic.Int64 // recursive trapezoid solves (including base cases)
}

func (s *Stats) addFFT(cells int) {
	if s != nil {
		s.FFTCalls.Add(1)
		s.FFTCells.Add(int64(cells))
	}
}

func (s *Stats) addNaive(cells int) {
	if s != nil {
		s.NaiveCells.Add(int64(cells))
	}
}

func (s *Stats) addTrap() {
	if s != nil {
		s.Trapezoids.Add(1)
	}
}

// GreenFunc is the closed-form obstacle value of cell (depth, col). depth 0
// is the initial row; the solve advances to depth T.
type GreenFunc func(depth, col int) float64

// ---------------------------------------------------------------------------
// Green-right, one-sided stencils (BOPM and TOPM American calls).
// ---------------------------------------------------------------------------

// GreenRight describes a free-boundary problem whose stencil has offsets
// 0..r (deps point right at the previous depth) and whose green region lies
// to the right of the red region in every row.
//
// Grid geometry: depth 0 holds the initial row on columns [0, Hi0]; at depth
// d the valid columns are [0, Hi0-d*r]. The answer is the value of the apex
// cell (T, 0), which requires Hi0 >= T*r.
type GreenRight struct {
	Stencil linstencil.Stencil // MinOff must be 0
	T       int                // number of steps
	Hi0     int                // last column of the initial row
	Init    func(col int) float64
	Green   GreenFunc
	// Bnd0 is the largest red column of the initial row (-1 if the whole
	// row is green). Cells right of Bnd0 must satisfy Init(col) ==
	// Green(0, col).
	Bnd0     int
	BaseCase int // recursion cutoff; 0 means DefaultBaseCase
	// Cancel, when non-nil, is polled at trapezoid granularity; the first
	// non-nil error it returns unwinds the solve, and SolveGreenRight
	// returns that error. Typically ctx.Err of a request context.
	Cancel func() error
}

func (p *GreenRight) validate() error {
	if err := p.Stencil.Validate(); err != nil {
		return err
	}
	if p.Stencil.MinOff != 0 {
		return fmt.Errorf("fbstencil: GreenRight requires MinOff 0, got %d", p.Stencil.MinOff)
	}
	if p.Stencil.Span() < 1 {
		return fmt.Errorf("fbstencil: stencil must have span >= 1")
	}
	if p.T < 0 {
		return fmt.Errorf("fbstencil: negative step count %d", p.T)
	}
	if p.Hi0 < p.T*p.Stencil.Span() {
		return fmt.Errorf("fbstencil: initial row too narrow: Hi0=%d < T*r=%d", p.Hi0, p.T*p.Stencil.Span())
	}
	if p.Init == nil || p.Green == nil {
		return fmt.Errorf("fbstencil: Init and Green must be set")
	}
	if p.Bnd0 > p.Hi0 {
		return fmt.Errorf("fbstencil: Bnd0=%d beyond row end %d", p.Bnd0, p.Hi0)
	}
	return nil
}

type grEngine struct {
	s      linstencil.Stencil
	r      int // span = max offset
	hi0    int
	green  GreenFunc
	base   int
	stats  *Stats
	cancel func() error
}

// hi returns the last valid column at the given depth.
func (e *grEngine) hi(depth int) int { return e.hi0 - depth*e.r }

// SolveGreenRight runs the fast solver and returns the apex value (depth T,
// column 0) together with the red/green boundary column of the final row
// (-1 when the final row is entirely green). When p.Cancel reports an error
// the solve stops within roughly one trapezoid of work and returns it; a
// non-finite apex returns an ErrNonFinite-wrapped error.
func SolveGreenRight(p *GreenRight, st *Stats) (price float64, boundary int, err error) {
	if err := p.validate(); err != nil {
		return 0, 0, err
	}
	defer recoverCancel(&err)
	e := &grEngine{s: p.Stencil, r: p.Stencil.Span(), hi0: p.Hi0, green: p.Green, base: p.BaseCase, stats: st, cancel: p.Cancel}
	if e.base <= 0 {
		e.base = DefaultBaseCase
	}

	bnd := min(p.Bnd0, p.Hi0)
	var seg []float64 // red values, columns [0, bnd]
	if bnd >= 0 {
		seg = scratch.Floats(bnd + 1)
		for j := range seg {
			seg[j] = p.Init(j)
		}
	}
	d := 0
	if p.T >= 1 {
		// The "boundary never moves right" guarantee (Cor. 2.7/A.6) only
		// covers interior rows: on the initial row "red" means
		// 0 >= exercise value, and with R > Y the red region genuinely
		// widens once at depth 1 (Lemmas 2.3/2.4 need rows with real
		// children). One exact full-width step establishes the true
		// boundary; monotonicity holds from here on.
		seg, bnd = e.exactFirstStep(seg, bnd)
		d = 1
	}
	for d < p.T {
		checkCancel(e.cancel)
		if bnd < 0 {
			// The whole row is green; since the boundary never moves right,
			// every later row (and the apex) is green too. seg here is at
			// most a zero-length stub, but its pooled backing array can be
			// row-sized.
			scratch.PutFloats(seg)
			v := p.Green(p.T, 0)
			return v, -1, checkFinite(v)
		}
		remaining := p.T - d
		old := seg
		h := min((bnd+1)/e.r, remaining)
		if h >= e.base {
			seg, bnd = e.solveTrap(seg, 0, bnd, d, h)
			d += h
		} else {
			// Red strip too short for a trapezoid (or nearly done): one
			// direct step. The strip has fewer than r*base red cells, so
			// this is O(1) per step.
			seg, bnd = e.naiveStep(seg, 0, bnd, d)
			d++
		}
		scratch.PutFloats(old) // both paths return fresh rows, never aliases
	}
	if bnd < 0 {
		scratch.PutFloats(seg)
		v := p.Green(p.T, 0)
		return v, -1, checkFinite(v)
	}
	apex := seg[0]
	scratch.PutFloats(seg)
	return apex, bnd, checkFinite(apex)
}

// exactFirstStep advances the initial row to depth 1 across the full cone
// width, classifying every cell, and returns the depth-1 red prefix and its
// exact boundary. Cost O(Hi0), paid once per solve. It consumes (recycles)
// its input segment.
func (e *grEngine) exactFirstStep(seg []float64, bnd int) ([]float64, int) {
	defer scratch.PutFloats(seg)
	read := e.readRow(seg, 0, bnd, 0)
	hi1 := e.hi(1)
	if hi1 < 0 {
		return nil, -1
	}
	vals := scratch.Floats(hi1 + 1)
	red := make([]bool, hi1+1)
	par.For(hi1+1, 512, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var lin float64
			for i, w := range e.s.W {
				lin += w * read(j+i)
			}
			g := e.green(1, j)
			if lin >= g {
				vals[j] = lin
				red[j] = true
			} else {
				vals[j] = g
			}
		}
	})
	e.stats.addNaive(hi1 + 1)
	newBnd := -1
	for j := hi1; j >= 0; j-- {
		if red[j] {
			newBnd = j
			break
		}
	}
	return vals[:newBnd+1], newBnd
}

// readRow returns an accessor for a row at the given depth whose red values
// [c0, bnd] are stored in seg; anything right of bnd is green closed form.
func (e *grEngine) readRow(seg []float64, c0, bnd, depth int) func(col int) float64 {
	return func(col int) float64 {
		if col <= bnd {
			return seg[col-c0]
		}
		return e.green(depth, col)
	}
}

// at is readRow without the closure: naiveStep runs once per direct step, and
// a per-call closure allocation there is pure overhead.
func (e *grEngine) at(seg []float64, c0, bnd, depth, col int) float64 {
	if col <= bnd {
		return seg[col-c0]
	}
	return e.green(depth, col)
}

// naiveStep advances the red segment [c0, bnd] at depth d by one step,
// returning the red segment at depth d+1 (still starting at c0) and the new
// boundary. The candidate red region never extends beyond min(bnd, hi(d+1)).
func (e *grEngine) naiveStep(seg []float64, c0, bnd, d int) ([]float64, int) {
	cap1 := min(bnd, e.hi(d+1))
	if cap1 < c0 {
		return nil, c0 - 1
	}
	next := scratch.Floats(cap1 - c0 + 1)
	newBnd := c0 - 1
	for j := c0; j <= cap1; j++ {
		var lin float64
		for i, w := range e.s.W {
			lin += w * e.at(seg, c0, bnd, d, j+i)
		}
		g := e.green(d+1, j)
		if lin >= g {
			next[j-c0] = lin
			newBnd = j
		} else {
			next[j-c0] = g
		}
	}
	e.stats.addNaive(cap1 - c0 + 1)
	// Red cells are a prefix by Cor. 2.7/A.6; trim storage to it.
	if newBnd < cap1 {
		next = next[:max(newBnd-c0+1, 0)]
	}
	return next, newBnd
}

// naiveBlock advances the red segment h steps with the direct loop. The
// input segment is the caller's (possibly a shared subslice); intermediate
// rows are recycled as they are consumed.
func (e *grEngine) naiveBlock(seg []float64, c0, bnd, d, h int) ([]float64, int) {
	owned := false
	for t := 0; t < h; t++ {
		next, nb := e.naiveStep(seg, c0, bnd, d+t)
		if owned {
			scratch.PutFloats(seg)
		}
		seg, bnd, owned = next, nb, true
		if bnd < c0 {
			scratch.PutFloats(seg) // possibly a zero-length stub row
			return nil, bnd
		}
	}
	return seg, bnd
}

// solveTrap solves one trapezoid: given the red values seg on [c0, bnd] at
// depth d with bnd-c0+1 >= r*h, it returns the red values [c0, newBnd] and
// newBnd at depth d+h. The FFT half and the boundary-side recursion run in
// parallel, matching the paper's span analysis (Theorem 2.8).
func (e *grEngine) solveTrap(seg []float64, c0, bnd, d, h int) ([]float64, int) {
	checkCancel(e.cancel)
	e.stats.addTrap()
	if h <= e.base {
		return e.naiveBlock(seg, c0, bnd, d, h)
	}
	h1 := (h + 1) / 2
	h2 := h - h1

	mid, midBnd := e.halfStep(seg, c0, bnd, d, h1)
	if midBnd < c0 {
		return nil, midBnd
	}
	var out []float64
	var outBnd int
	// Defensive: theory guarantees midBnd >= bnd-h1, so the invariant
	// (red count >= r*h2) holds; fall back to the always-correct direct
	// loop if floating-point ties ever break it.
	if midBnd-c0+1 < e.r*h2 {
		out, outBnd = e.naiveBlock(mid, c0, midBnd, d+h1, h2)
	} else {
		out, outBnd = e.halfStep(mid, c0, midBnd, d+h1, h2)
	}
	scratch.PutFloats(mid)
	return out, outBnd
}

// halfStep advances the red segment [c0, bnd] at depth d by k steps, where
// the caller guarantees bnd-c0+1 >= r*k: the columns [c0, bnd-r*k] come from
// one FFT evolution (they are guaranteed red and their dependency cones are
// all red), the rest from a recursive trapezoid of height k anchored at the
// boundary. Below parCutoff the two halves run sequentially; above it they
// fork, matching the paper's span analysis (Theorem 2.8).
func (e *grEngine) halfStep(seg []float64, c0, bnd, d, k int) ([]float64, int) {
	cut := bnd - e.r*k // last FFT-exact column at depth d+k
	var left []float64
	var right []float64
	var rightBnd int
	if k <= parCutoff {
		if cut >= c0 {
			left, _ = linstencil.EvolveCone(seg[:bnd-c0+1], e.s, k)
			e.stats.addFFT(len(left))
		}
		right, rightBnd = e.solveTrap(seg[cut+1-c0:], cut+1, bnd, d, k)
	} else {
		left, right, rightBnd = e.halfStepPar(seg, c0, bnd, d, k, cut)
	}
	if rightBnd <= cut {
		// Boundary consumed the whole recursive part; red region is just
		// the FFT prefix (possibly trimmed if the boundary moved past cut,
		// which theory forbids — keep the exact cells we have).
		scratch.PutFloats(right) // at most a zero-length stub
		if cut < c0 {
			scratch.PutFloats(left)
			return nil, c0 - 1
		}
		return left, cut
	}
	merged := scratch.Floats(rightBnd - c0 + 1)
	copy(merged, left)
	copy(merged[cut+1-c0:], right)
	scratch.PutFloats(left)
	scratch.PutFloats(right)
	return merged, rightBnd
}

// halfStepPar is halfStep's fork: isolated in its own function so the serial
// path never pays for the closures' capture boxes.
func (e *grEngine) halfStepPar(seg []float64, c0, bnd, d, k, cut int) (left, right []float64, rightBnd int) {
	par.Do(
		func() {
			if cut >= c0 {
				left, _ = linstencil.EvolveCone(seg[:bnd-c0+1], e.s, k)
				e.stats.addFFT(len(left))
			}
		},
		func() {
			right, rightBnd = e.solveTrap(seg[cut+1-c0:], cut+1, bnd, d, k)
		},
	)
	return left, right, rightBnd
}

// ---------------------------------------------------------------------------
// Green-left, centered stencils (BSM American put).
// ---------------------------------------------------------------------------

// GreenLeft describes a free-boundary problem with a 3-point centered stencil
// (offsets -1, 0, +1) whose green region lies to the left of the red region,
// and whose boundary moves left by at most one column per step (the paper's
// Theorem 4.3). Green cells must equal Green exactly — this is what lets the
// solver extend any window leftward with closed-form values.
//
// Grid geometry: depth 0 holds the initial row on columns [Lo0, Hi0]; at
// depth d the valid columns are [Lo0+d, Hi0-d]. The answer is the apex cell
// (T, apex) with apex = Lo0+T = Hi0-T, so Hi0-Lo0 must equal 2*T.
type GreenLeft struct {
	Stencil  linstencil.Stencil // MinOff must be -1, span 2
	T        int
	Lo0, Hi0 int
	Init     func(col int) float64
	Green    GreenFunc
	// Bnd0 is the largest green column of the initial row (Lo0-1 if the
	// whole row is red, >= Hi0 if entirely green).
	Bnd0     int
	BaseCase int
	// Cancel, when non-nil, is polled at trapezoid granularity; see
	// GreenRight.Cancel.
	Cancel func() error
}

func (p *GreenLeft) validate() error {
	if err := p.Stencil.Validate(); err != nil {
		return err
	}
	if p.Stencil.MinOff != -1 || p.Stencil.Span() != 2 {
		return fmt.Errorf("fbstencil: GreenLeft requires a centered 3-point stencil (MinOff=-1, span=2)")
	}
	if p.T < 0 {
		return fmt.Errorf("fbstencil: negative step count %d", p.T)
	}
	if p.Hi0-p.Lo0 != 2*p.T {
		return fmt.Errorf("fbstencil: row width %d must be exactly 2*T=%d", p.Hi0-p.Lo0, 2*p.T)
	}
	if p.Init == nil || p.Green == nil {
		return fmt.Errorf("fbstencil: Init and Green must be set")
	}
	return nil
}

type glEngine struct {
	s      linstencil.Stencil
	lo0    int
	hi0    int
	green  GreenFunc
	base   int
	stats  *Stats
	cancel func() error
}

func (e *glEngine) lo(depth int) int { return e.lo0 + depth }
func (e *glEngine) hi(depth int) int { return e.hi0 - depth }

// SolveGreenLeft runs the fast solver and returns the apex value (depth T,
// column Lo0+T) and the final boundary column. Cancellation and health
// semantics match SolveGreenRight.
func SolveGreenLeft(p *GreenLeft, st *Stats) (price float64, boundary int, err error) {
	if err := p.validate(); err != nil {
		return 0, 0, err
	}
	defer recoverCancel(&err)
	e := &glEngine{s: p.Stencil, lo0: p.Lo0, hi0: p.Hi0, green: p.Green, base: p.BaseCase, stats: st, cancel: p.Cancel}
	if e.base <= 0 {
		e.base = DefaultBaseCase
	}
	apex := p.Lo0 + p.T

	bnd := p.Bnd0
	// seg stores red values for columns [bnd+1, hi(d)].
	var seg []float64
	if bnd < p.Hi0 {
		from := max(bnd+1, p.Lo0)
		bnd = from - 1
		seg = scratch.Floats(p.Hi0 - from + 1)
		for j := range seg {
			seg[j] = p.Init(from + j)
		}
	} else {
		bnd = p.Hi0
	}

	d := 0
	if p.T >= 1 {
		// As in SolveGreenRight, the monotone-boundary guarantee (Thm 4.3)
		// only covers interior rows: on the payoff row "green" means the
		// payoff dominates, and with Y > R the exercise boundary drops to
		// s ~ ln(R/Y) — arbitrarily many cells — at depth 1. One exact
		// full-width step establishes the true boundary.
		seg, bnd = e.exactFirstStep(seg, bnd)
		d = 1
	}
	for d < p.T {
		checkCancel(e.cancel)
		if bnd >= e.hi(d) {
			// Entire row green; stays green to the apex (boundary is
			// non-increasing while the right edge shrinks every step).
			scratch.PutFloats(seg)
			v := p.Green(p.T, apex)
			return v, bnd, checkFinite(v)
		}
		remaining := p.T - d
		if bnd < e.lo(d) {
			// Entire row red: a single FFT evolution reaches the apex.
			out, _ := linstencil.EvolveCone(seg, e.s, remaining)
			e.stats.addFFT(len(out))
			// out[0] is column (bnd+1)+remaining; the apex is lo(d)+remaining.
			v := out[e.lo(d)-(bnd+1)]
			scratch.PutFloats(out)
			scratch.PutFloats(seg)
			return v, bnd, checkFinite(v)
		}
		h := min(remaining/2, (e.hi(d)-bnd)/2)
		if h < e.base {
			old := seg
			seg, bnd = e.naiveStepC(seg, bnd, d)
			scratch.PutFloats(old)
			d++
			continue
		}
		read := e.readRowC(seg, bnd, d)
		var zoneVals []float64
		var newBnd int
		var rightVals []float64
		par.Do(
			func() { zoneVals, newBnd = e.zone(read, d, bnd, h) },
			func() {
				// Exact for columns >= bnd+h: base row [bnd, hi(d)]
				// (column bnd is green closed form, the rest stored red).
				in := scratch.Floats(e.hi(d) - bnd + 1)
				in[0] = e.green(d, bnd)
				copy(in[1:], seg)
				rightVals, _ = linstencil.EvolveCone(in, e.s, h)
				scratch.PutFloats(in)
				e.stats.addFFT(len(rightVals))
			},
		)
		// rightVals[0] is column bnd+h; zoneVals covers [bnd-h, bnd+h].
		newHi := e.hi(d + h)
		newSeg := scratch.Floats(newHi - newBnd)
		for j := newBnd + 1; j <= bnd+h; j++ {
			newSeg[j-newBnd-1] = zoneVals[j-(bnd-h)]
		}
		copy(newSeg[bnd+h+1-(newBnd+1):], rightVals[1:])
		scratch.PutFloats(zoneVals)
		scratch.PutFloats(rightVals)
		scratch.PutFloats(seg)
		seg, bnd = newSeg, newBnd
		d += h
	}
	if apex > bnd {
		v := seg[apex-(bnd+1)]
		scratch.PutFloats(seg)
		return v, bnd, checkFinite(v)
	}
	scratch.PutFloats(seg)
	v := p.Green(p.T, apex)
	return v, bnd, checkFinite(v)
}

// exactFirstStep advances the initial row to depth 1 across the full cone
// width, classifying every cell, and returns the depth-1 red segment
// (columns [newBnd+1, hi(1)]) with its exact boundary. Cost O(Hi0-Lo0),
// paid once per solve. It consumes (recycles) its input segment.
func (e *glEngine) exactFirstStep(seg []float64, bnd int) ([]float64, int) {
	defer scratch.PutFloats(seg)
	read := e.readRowC(seg, bnd, 0)
	lo1, hi1 := e.lo(1), e.hi(1)
	n := hi1 - lo1 + 1
	if n <= 0 {
		return nil, bnd
	}
	vals := scratch.Floats(n)
	isGreen := make([]bool, n)
	w := e.s.W
	par.For(n, 512, func(clo, chi int) {
		for idx := clo; idx < chi; idx++ {
			j := lo1 + idx
			lin := w[0]*read(j-1) + w[1]*read(j) + w[2]*read(j+1)
			g := e.green(1, j)
			if g > lin {
				vals[idx] = g
				isGreen[idx] = true
			} else {
				vals[idx] = lin
			}
		}
	})
	e.stats.addNaive(n)
	newBnd := lo1 - 1
	for idx := n - 1; idx >= 0; idx-- {
		if isGreen[idx] {
			newBnd = lo1 + idx
			break
		}
	}
	return vals[newBnd+1-lo1:], newBnd
}

// readRowC returns an accessor for a row at the given depth: red values
// [bnd+1, hi(depth)] come from seg, anything at or left of bnd is green
// closed form (exact, and well-defined arbitrarily far left).
func (e *glEngine) readRowC(seg []float64, bnd, depth int) func(col int) float64 {
	return func(col int) float64 {
		if col > bnd {
			return seg[col-bnd-1]
		}
		return e.green(depth, col)
	}
}

// at is readRowC without the closure, for the per-step direct loop.
func (e *glEngine) at(seg []float64, bnd, depth, col int) float64 {
	if col > bnd {
		return seg[col-bnd-1]
	}
	return e.green(depth, col)
}

// naiveStepC advances the stored red segment one step. Cost is O(hi-bnd),
// which the caller only pays when that gap (or the remaining depth) is small.
func (e *glEngine) naiveStepC(seg []float64, bnd, d int) ([]float64, int) {
	newHi := e.hi(d + 1)
	lo := max(bnd, e.lo(d+1)) // candidate columns: boundary moves left <= 1
	next := scratch.Floats(newHi - lo + 1)
	// By Theorem 4.3 the new boundary is bnd or bnd-1; if bnd lies left of
	// the cone it is unreachable and simply carried along.
	newBnd := bnd - 1
	if bnd < e.lo(d+1) {
		newBnd = bnd
	}
	for j := lo; j <= newHi; j++ {
		lin := e.s.W[0]*e.at(seg, bnd, d, j-1) + e.s.W[1]*e.at(seg, bnd, d, j) + e.s.W[2]*e.at(seg, bnd, d, j+1)
		g := e.green(d+1, j)
		if g > lin {
			next[j-lo] = g
			if j > newBnd {
				newBnd = j
			}
		} else {
			next[j-lo] = lin
		}
	}
	e.stats.addNaive(newHi - lo + 1)
	if trim := newBnd + 1 - lo; trim > 0 {
		next = next[trim:]
	}
	return next, newBnd
}

// zone resolves the uncertain band around the boundary: given read access to
// the row at depth d on columns [bnd-2h, bnd+2h] (green closed form left of
// bnd), it returns the values on columns [bnd-h, bnd+h] at depth d+h and the
// new boundary. This is the paper's trapezoid egjl recursion (Figure 4a).
func (e *glEngine) zone(read func(int) float64, d, bnd, h int) ([]float64, int) {
	checkCancel(e.cancel)
	e.stats.addTrap()
	if h <= e.base {
		return e.zoneNaive(read, d, bnd, h)
	}
	h1 := h / 2
	h2 := h - h1

	// First half: the zone recursion and, alongside it, columns
	// [bnd+h1, bnd+2h-h1] at depth d+h1 from one FFT over base columns
	// [bnd, bnd+2h].
	midZone, midBnd, midRight := e.zoneSplit(read, d, bnd, h, h1, bnd, 2*h+1)
	// Mid row accessor on columns [bnd-h1, bnd+2h-h1] (and green beyond the
	// left edge).
	midRead := func(col int) float64 {
		switch {
		case col <= midBnd:
			return e.green(d+h1, col)
		case col <= bnd+h1:
			return midZone[col-(bnd-h1)]
		default:
			return midRight[col-(bnd+h1)]
		}
	}

	// Second half: columns [midBnd+h2, bnd+h] at depth d+h from one FFT over
	// mid columns [midBnd, bnd+2h-h1].
	botZone, newBnd, botRight := e.zoneSplit(midRead, d+h1, midBnd, h, h2, midBnd, bnd+2*h-h1-midBnd+1)
	scratch.PutFloats(midZone)
	scratch.PutFloats(midRight)

	out := scratch.Floats(2*h + 1)
	for j := bnd - h; j <= bnd+h; j++ {
		switch {
		case j <= newBnd:
			out[j-(bnd-h)] = e.green(d+h, j)
		case j <= midBnd+h2:
			out[j-(bnd-h)] = botZone[j-(midBnd-h2)]
		default:
			out[j-(bnd-h)] = botRight[j-(midBnd+h2)]
		}
	}
	scratch.PutFloats(botZone)
	scratch.PutFloats(botRight)
	return out, newBnd
}

// zoneFFT evolves the closed-under-read window [base, base+count) by steps
// with one staged FFT call.
func (e *glEngine) zoneFFT(read func(int) float64, base, count, steps int) []float64 {
	in := scratch.Floats(count)
	for j := 0; j < count; j++ {
		in[j] = read(base + j)
	}
	out, _ := linstencil.EvolveCone(in, e.s, steps)
	scratch.PutFloats(in)
	e.stats.addFFT(len(out))
	return out
}

// zoneSplit runs one half of the zone recursion — the boundary-band subzone
// of height hh and the exact FFT strip beside it — sequentially below
// parCutoff, forked above it. h is the parent zone height (used only for the
// cutoff decision); base/count describe the FFT staging window.
func (e *glEngine) zoneSplit(read func(int) float64, d, bnd, h, hh, base, count int) ([]float64, int, []float64) {
	if h <= parCutoff {
		z, nb := e.zone(read, d, bnd, hh)
		return z, nb, e.zoneFFT(read, base, count, hh)
	}
	return e.zoneSplitPar(read, d, bnd, hh, base, count)
}

func (e *glEngine) zoneSplitPar(read func(int) float64, d, bnd, hh, base, count int) (z []float64, nb int, fftOut []float64) {
	par.Do(
		func() { z, nb = e.zone(read, d, bnd, hh) },
		func() { fftOut = e.zoneFFT(read, base, count, hh) },
	)
	return z, nb, fftOut
}

// zoneNaive is the direct base case of zone: evolve the shrinking window
// [bnd-2h+t, bnd+2h-t] step by step, tracking the boundary. The two window
// buffers ping-pong from the scratch pool; the one not returned goes back.
func (e *glEngine) zoneNaive(read func(int) float64, d, bnd, h int) ([]float64, int) {
	lo, hi := bnd-2*h, bnd+2*h
	cur := scratch.Floats(hi - lo + 1)
	for j := lo; j <= hi; j++ {
		cur[j-lo] = read(j)
	}
	spare := scratch.Floats(hi - lo + 1)
	b := bnd
	for t := 1; t <= h; t++ {
		nlo, nhi := lo+1, hi-1
		next := spare[:nhi-nlo+1]
		newB := b - 1 // boundary moves left at most one per step
		for j := nlo; j <= nhi; j++ {
			lin := e.s.W[0]*cur[j-1-lo] + e.s.W[1]*cur[j-lo] + e.s.W[2]*cur[j+1-lo]
			g := e.green(d+t, j)
			if g > lin {
				next[j-nlo] = g
				if j > newB {
					newB = j
				}
			} else {
				next[j-nlo] = lin
			}
		}
		e.stats.addNaive(nhi - nlo + 1)
		cur, spare, lo, hi, b = next, cur, nlo, nhi, newB
	}
	scratch.PutFloats(spare)
	return cur, b
}
