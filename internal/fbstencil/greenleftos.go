package fbstencil

import (
	"fmt"

	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
)

// This file extends the paper: a fast solver for one-sided stencils whose
// green region lies on the LEFT — the structure of American PUTS under the
// binomial and trinomial models, which the paper lists as future work. The
// stencil's dependencies (offsets 0..r) point right, *away* from the green
// zone, so every cell strictly right of the old boundary has an all-red
// dependency cone whenever the boundary never moves right; one FFT then
// covers everything beyond the old boundary and only a width-h band at the
// boundary needs recursion.
//
// The required structure (green-prefix contiguity; boundary non-increasing,
// dropping at most one column per interior step) is NOT proven in the paper
// for puts. GreenLeftOneSidedBoundaryTrace verifies it empirically on any
// instance, and the package tests exercise it across broad random
// parameters; the public API surfaces this solver as experimental.

// GreenLeftOneSided describes a free-boundary problem with stencil offsets
// 0..r and the green region on the left. Geometry matches GreenRight
// (columns [0, Hi0-d*r] at depth d; answer at (T, 0)); green cells must
// equal Green exactly, so boundary windows may extend leftward on the
// closed form.
type GreenLeftOneSided struct {
	Stencil linstencil.Stencil // MinOff must be 0
	T       int
	Hi0     int
	Init    func(col int) float64
	Green   GreenFunc
	// Bnd0 is the largest green column of the initial row (-1 if none).
	Bnd0     int
	BaseCase int
	// MaxDrop bounds how many columns the boundary can move left per
	// interior step (0 means 1). Binomial puts satisfy 1; trinomial puts 2
	// (one from the grid's per-step price drift plus the boundary's own).
	MaxDrop int
	// Cancel, when non-nil, is polled at trapezoid granularity; see
	// GreenRight.Cancel.
	Cancel func() error
}

func (p *GreenLeftOneSided) validate() error {
	if err := p.Stencil.Validate(); err != nil {
		return err
	}
	if p.Stencil.MinOff != 0 {
		return fmt.Errorf("fbstencil: GreenLeftOneSided requires MinOff 0, got %d", p.Stencil.MinOff)
	}
	if p.Stencil.Span() < 1 {
		return fmt.Errorf("fbstencil: stencil must have span >= 1")
	}
	if p.T < 0 {
		return fmt.Errorf("fbstencil: negative step count %d", p.T)
	}
	if p.Hi0 < p.T*p.Stencil.Span() {
		return fmt.Errorf("fbstencil: initial row too narrow: Hi0=%d < T*r=%d", p.Hi0, p.T*p.Stencil.Span())
	}
	if p.Init == nil || p.Green == nil {
		return fmt.Errorf("fbstencil: Init and Green must be set")
	}
	if p.Bnd0 > p.Hi0 {
		return fmt.Errorf("fbstencil: Bnd0=%d beyond row end %d", p.Bnd0, p.Hi0)
	}
	return nil
}

type glosEngine struct {
	s      linstencil.Stencil
	r      int
	drop   int // max boundary drop per interior step
	hi0    int
	green  GreenFunc
	base   int
	stats  *Stats
	cancel func() error
}

func (e *glosEngine) hi(depth int) int { return e.hi0 - depth*e.r }

// SolveGreenLeftOneSided runs the fast solver and returns the apex value
// (depth T, column 0) and the final boundary. Cancellation and health
// semantics match SolveGreenRight.
func SolveGreenLeftOneSided(p *GreenLeftOneSided, st *Stats) (price float64, boundary int, err error) {
	if err := p.validate(); err != nil {
		return 0, 0, err
	}
	defer recoverCancel(&err)
	e := &glosEngine{s: p.Stencil, r: p.Stencil.Span(), drop: max(p.MaxDrop, 1), hi0: p.Hi0, green: p.Green, base: p.BaseCase, stats: st, cancel: p.Cancel}
	if e.base <= 0 {
		e.base = DefaultBaseCase
	}

	bnd := max(p.Bnd0, -1)
	// seg stores red values, columns [bnd+1, hi(d)].
	var seg []float64
	if bnd < p.Hi0 {
		seg = scratch.Floats(p.Hi0 - bnd)
		for j := range seg {
			seg[j] = p.Init(bnd + 1 + j)
		}
	}

	d := 0
	if p.T >= 1 {
		// Same leaf-row exemption as the other solvers: the payoff-based
		// leaf boundary can jump at the first interior step; one exact
		// full-width step establishes the true one.
		seg, bnd = e.exactFirstStep(seg, bnd)
		d = 1
	}
	for d < p.T {
		checkCancel(e.cancel)
		if bnd >= e.hi(d) {
			// Entirely green; since the boundary never rises while the
			// right edge shrinks, every later row (and the apex) is green.
			scratch.PutFloats(seg)
			v := p.Green(p.T, 0)
			return v, bnd, checkFinite(v)
		}
		remaining := p.T - d
		if bnd < 0 {
			// Entirely red: one FFT evolution reaches the apex.
			out, _ := linstencil.EvolveCone(seg, e.s, remaining)
			e.stats.addFFT(len(out))
			v := out[0]
			scratch.PutFloats(out)
			scratch.PutFloats(seg)
			return v, bnd, checkFinite(v)
		}
		h := min(remaining, (e.hi(d)-bnd)/e.r)
		if h < e.base {
			old := seg
			seg, bnd = e.naiveStep(seg, bnd, d)
			scratch.PutFloats(old)
			d++
			continue
		}
		read := e.readRow(seg, bnd, d)
		var zoneVals []float64
		var newBnd int
		var rightVals []float64
		par.Do(
			func() { zoneVals, newBnd = e.zone(read, d, bnd, h) },
			func() {
				// Everything right of the old boundary comes from one FFT:
				// the one-sided cone never reaches left into the green.
				if len(seg)-e.r*h > 0 {
					rightVals, _ = linstencil.EvolveCone(seg, e.s, h)
					e.stats.addFFT(len(rightVals))
				}
			},
		)
		// zoneVals covers [bnd-drop*h, bnd] at depth d+h; rightVals covers
		// (bnd, hi(d)-r*h].
		newHi := e.hi(d + h)
		newSeg := scratch.Floats(newHi - newBnd)
		for j := newBnd + 1; j <= bnd; j++ {
			newSeg[j-newBnd-1] = zoneVals[j-(bnd-e.drop*h)]
		}
		copy(newSeg[bnd-newBnd:], rightVals)
		scratch.PutFloats(zoneVals)
		scratch.PutFloats(rightVals)
		scratch.PutFloats(seg)
		seg, bnd = newSeg, newBnd
		d += h
	}
	if bnd >= 0 {
		// Apex column 0 lies at or left of the boundary: green.
		scratch.PutFloats(seg)
		v := p.Green(p.T, 0)
		return v, bnd, checkFinite(v)
	}
	v := seg[0]
	scratch.PutFloats(seg)
	return v, bnd, checkFinite(v)
}

// readRow gives row access at the stated depth: stored red right of bnd,
// exact green closed form at or left of it (valid arbitrarily far left).
func (e *glosEngine) readRow(seg []float64, bnd, depth int) func(col int) float64 {
	return func(col int) float64 {
		if col > bnd {
			return seg[col-bnd-1]
		}
		return e.green(depth, col)
	}
}

// exactFirstStep computes the full depth-1 row and its exact boundary. It
// consumes (recycles) its input segment.
func (e *glosEngine) exactFirstStep(seg []float64, bnd int) ([]float64, int) {
	defer scratch.PutFloats(seg)
	read := e.readRow(seg, bnd, 0)
	hi1 := e.hi(1)
	if hi1 < 0 {
		return nil, -1
	}
	vals := scratch.Floats(hi1 + 1)
	isGreen := make([]bool, hi1+1)
	par.For(hi1+1, 512, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var lin float64
			for i, w := range e.s.W {
				lin += w * read(j+i)
			}
			g := e.green(1, j)
			if g > lin {
				vals[j] = g
				isGreen[j] = true
			} else {
				vals[j] = lin
			}
		}
	})
	e.stats.addNaive(hi1 + 1)
	newBnd := -1
	for j := hi1; j >= 0; j-- {
		if isGreen[j] {
			newBnd = j
			break
		}
	}
	return vals[newBnd+1:], newBnd
}

// at is readRow without the closure, for the per-step direct loop.
func (e *glosEngine) at(seg []float64, bnd, depth, col int) float64 {
	if col > bnd {
		return seg[col-bnd-1]
	}
	return e.green(depth, col)
}

// cellAt computes cell (d+1, j) from the depth-d row and reports whether the
// closed form won.
func (e *glosEngine) cellAt(seg []float64, bnd, d, j int) (float64, bool) {
	var lin float64
	for i, w := range e.s.W {
		lin += w * e.at(seg, bnd, d, j+i)
	}
	if g := e.green(d+1, j); g > lin {
		return g, true
	}
	return lin, false
}

// naiveStep advances the stored red segment one step. It relies only on
// green-prefix contiguity: the boundary is located by walking down from the
// previous one, so the cost is O(red width + boundary movement).
func (e *glosEngine) naiveStep(seg []float64, bnd, d int) ([]float64, int) {
	newHi := e.hi(d + 1)
	newBnd := min(bnd, newHi)
	cells := 0
	for newBnd >= 0 {
		cells++
		if _, green := e.cellAt(seg, bnd, d, newBnd); green {
			break
		}
		newBnd--
	}
	next := scratch.Floats(newHi - newBnd)
	for j := newBnd + 1; j <= newHi; j++ {
		v, _ := e.cellAt(seg, bnd, d, j)
		next[j-newBnd-1] = v
	}
	e.stats.addNaive(cells + len(next))
	return next, newBnd
}

// zone resolves the boundary band: given read access to the row at depth d
// on columns [bnd-drop*h, bnd+r*h], it returns values on [bnd-drop*h, bnd]
// at depth d+h and the new boundary.
func (e *glosEngine) zone(read func(int) float64, d, bnd, h int) ([]float64, int) {
	checkCancel(e.cancel)
	e.stats.addTrap()
	if bnd < 0 {
		// No green cells remain, so the whole band consists of virtual
		// columns; return closed-form filler (never read by any real cell)
		// and keep the boundary dead.
		out := scratch.Floats(e.drop*h + 1)
		for i := range out {
			out[i] = e.green(d+h, bnd-e.drop*h+i)
		}
		return out, -1
	}
	if h <= e.base {
		return e.zoneNaive(read, d, bnd, h)
	}
	h1 := (h + 1) / 2
	h2 := h - h1
	r := e.r

	// First half: the boundary subzone and cells (bnd, bnd+r*h2] at depth
	// d+h1 from base columns (bnd, bnd+r*h].
	zoneA, midBnd, midRight := e.zoneSplit(read, d, bnd, h, h1, bnd+1, r*h)
	midRead := func(col int) float64 {
		switch {
		case col <= midBnd:
			return e.green(d+h1, col)
		case col <= bnd:
			return zoneA[col-(bnd-e.drop*h1)]
		default:
			return midRight[col-(bnd+1)]
		}
	}

	// Second half: cells (midBnd, bnd] at depth d+h from mid columns
	// (midBnd, bnd+r*h2]. The FFT strip is empty when the boundary did not
	// move in the first half (midBnd == bnd).
	fftCount := 0
	if midBnd < bnd {
		fftCount = bnd + r*h2 - midBnd
	}
	zoneB, newBnd, botRight := e.zoneSplit(midRead, d+h1, midBnd, h, h2, midBnd+1, fftCount)
	scratch.PutFloats(zoneA)
	scratch.PutFloats(midRight)

	lo := bnd - e.drop*h
	out := scratch.Floats(e.drop*h + 1) // columns [bnd-drop*h, bnd]
	for j := lo; j <= bnd; j++ {
		switch {
		case j <= newBnd:
			out[j-lo] = e.green(d+h, j)
		case j <= midBnd:
			out[j-lo] = zoneB[j-(midBnd-e.drop*h2)]
		default:
			out[j-lo] = botRight[j-(midBnd+1)]
		}
	}
	scratch.PutFloats(zoneB)
	scratch.PutFloats(botRight)
	return out, newBnd
}

// zoneFFT evolves the window [base, base+count) by steps with one staged FFT
// call; a zero count returns nil (the strip is empty).
func (e *glosEngine) zoneFFT(read func(int) float64, base, count, steps int) []float64 {
	if count <= 0 {
		return nil
	}
	in := scratch.Floats(count)
	for j := 0; j < count; j++ {
		in[j] = read(base + j)
	}
	out, _ := linstencil.EvolveCone(in, e.s, steps)
	scratch.PutFloats(in)
	e.stats.addFFT(len(out))
	return out
}

// zoneSplit runs one half of the zone recursion — the boundary subzone of
// height hh and the exact FFT strip beside it — sequentially below parCutoff,
// forked above it. h is the parent zone height (cutoff decision only).
func (e *glosEngine) zoneSplit(read func(int) float64, d, bnd, h, hh, base, count int) ([]float64, int, []float64) {
	if h <= parCutoff {
		z, nb := e.zone(read, d, bnd, hh)
		return z, nb, e.zoneFFT(read, base, count, hh)
	}
	return e.zoneSplitPar(read, d, bnd, hh, base, count)
}

func (e *glosEngine) zoneSplitPar(read func(int) float64, d, bnd, hh, base, count int) (z []float64, nb int, fftOut []float64) {
	par.Do(
		func() { z, nb = e.zone(read, d, bnd, hh) },
		func() { fftOut = e.zoneFFT(read, base, count, hh) },
	)
	return z, nb, fftOut
}

// zoneNaive iterates the shrinking window [bnd-drop*h, bnd+r*(h-t)] directly.
// The two window buffers ping-pong from the scratch pool.
func (e *glosEngine) zoneNaive(read func(int) float64, d, bnd, h int) ([]float64, int) {
	lo, hi := bnd-e.drop*h, bnd+e.r*h
	cur := scratch.Floats(hi - lo + 1)
	for j := lo; j <= hi; j++ {
		cur[j-lo] = read(j)
	}
	spare := scratch.Floats(hi - lo + 1)
	b := bnd
	for t := 1; t <= h; t++ {
		nhi := bnd + e.r*(h-t)
		next := spare[:nhi-lo+1]
		// The boundary drops at most e.drop per interior step and is
		// clamped at -1: columns below 0 are virtual filler (no real cell
		// ever reads them, since dependencies point right) and must never
		// be counted as green.
		newB := b - e.drop
		if newB < -1 {
			newB = -1
		}
		for j := lo; j <= nhi; j++ {
			var lin float64
			for i, w := range e.s.W {
				lin += w * cur[j+i-lo]
			}
			g := e.green(d+t, j)
			if g > lin {
				next[j-lo] = g
				if j >= 0 && j > newB {
					newB = j
				}
			} else {
				next[j-lo] = lin
			}
		}
		e.stats.addNaive(nhi - lo + 1)
		cur, spare, b = next, cur, newB
	}
	scratch.PutFloats(spare)
	return cur[:e.drop*h+1], b
}

// SolveGreenLeftOneSidedNaive is the direct O(T * width) oracle.
func SolveGreenLeftOneSidedNaive(p *GreenLeftOneSided) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	row := make([]float64, p.Hi0+1)
	for j := range row {
		row[j] = p.Init(j)
	}
	r := p.Stencil.Span()
	w := p.Stencil.W
	for d := 1; d <= p.T; d++ {
		hi := p.Hi0 - d*r
		for j := 0; j <= hi; j++ {
			var lin float64
			for i, wi := range w {
				lin += wi * row[j+i]
			}
			if g := p.Green(d, j); g > lin {
				lin = g
			}
			row[j] = lin
		}
		row = row[:hi+1]
	}
	return row[0], nil
}

// GreenLeftOneSidedBoundaryTrace solves naively while checking the
// structure the fast solver assumes: green-prefix contiguity at every depth,
// no rightward boundary moves after depth 1, and drops of at most one per
// interior step. It returns the boundary per depth or the first violation.
func GreenLeftOneSidedBoundaryTrace(p *GreenLeftOneSided) ([]int, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	maxDrop := p.MaxDrop
	if maxDrop < 1 {
		maxDrop = 1
	}
	row := make([]float64, p.Hi0+1)
	for j := range row {
		row[j] = p.Init(j)
	}
	r := p.Stencil.Span()
	w := p.Stencil.W
	trace := make([]int, p.T+1)
	trace[0] = p.Bnd0
	isGreen := make([]bool, p.Hi0+1)
	for d := 1; d <= p.T; d++ {
		hi := p.Hi0 - d*r
		bnd := -1
		for j := 0; j <= hi; j++ {
			var lin float64
			for i, wi := range w {
				lin += wi * row[j+i]
			}
			g := p.Green(d, j)
			if g > lin {
				row[j] = g
				isGreen[j] = true
				bnd = j
			} else {
				row[j] = lin
				isGreen[j] = false
			}
		}
		for j := 0; j <= bnd; j++ {
			if !isGreen[j] {
				return nil, fmt.Errorf("fbstencil: green region not contiguous at depth %d: col %d red, col %d green", d, j, bnd)
			}
		}
		prev := trace[d-1]
		if prev > hi+r {
			prev = hi + r
		}
		if d > 1 {
			if bnd > prev {
				return nil, fmt.Errorf("fbstencil: boundary moved right at depth %d: %d -> %d", d, prev, bnd)
			}
			if prev >= 0 && bnd < prev-maxDrop {
				return nil, fmt.Errorf("fbstencil: boundary dropped by more than %d at depth %d: %d -> %d", maxDrop, d, prev, bnd)
			}
		}
		trace[d] = bnd
		row = row[:hi+1]
	}
	return trace, nil
}
