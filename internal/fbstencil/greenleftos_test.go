package fbstencil

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/par"
)

// putProblemGR builds a binomial-put-like green-left instance (span 1).
func putProblemBOPM(p optParams, T int) *GreenLeftOneSided {
	dt := p.E / float64(T)
	u := math.Exp(p.V * math.Sqrt(dt))
	d := 1 / u
	q := (math.Exp((p.R-p.Y)*dt) - d) / (u - d)
	disc := math.Exp(-p.R * dt)
	lnu := math.Log(u)
	green := func(depth, col int) float64 {
		return p.K - p.S*math.Exp(float64(2*col-T+depth)*lnu)
	}
	bnd0 := -1
	for j := 0; j <= T; j++ {
		if green(0, j) > 0 {
			bnd0 = j
		}
	}
	return &GreenLeftOneSided{
		Stencil: linstencil.Stencil{MinOff: 0, W: []float64{disc * (1 - q), disc * q}},
		T:       T,
		Hi0:     T,
		Init:    func(col int) float64 { return math.Max(0, green(0, col)) },
		Green:   green,
		Bnd0:    bnd0,
		MaxDrop: 1,
	}
}

// putProblemTOPM builds a trinomial-put-like instance (span 2, MaxDrop 2).
func putProblemTOPM(p optParams, T int) *GreenLeftOneSided {
	dt := p.E / float64(T)
	sqU := math.Exp(p.V * math.Sqrt(dt/2))
	sqD := 1 / sqU
	eh := math.Exp((p.R - p.Y) * dt / 2)
	pu := (eh - sqD) / (sqU - sqD)
	pu *= pu
	pd := (sqU - eh) / (sqU - sqD)
	pd *= pd
	po := 1 - pu - pd
	disc := math.Exp(-p.R * dt)
	lnu := 2 * math.Log(sqU)
	green := func(depth, col int) float64 {
		return p.K - p.S*math.Exp(float64(col-T+depth)*lnu)
	}
	bnd0 := -1
	for j := 0; j <= 2*T; j++ {
		if green(0, j) > 0 {
			bnd0 = j
		}
	}
	return &GreenLeftOneSided{
		Stencil: linstencil.Stencil{MinOff: 0, W: []float64{disc * pd, disc * po, disc * pu}},
		T:       T,
		Hi0:     2 * T,
		Init:    func(col int) float64 { return math.Max(0, green(0, col)) },
		Green:   green,
		Bnd0:    bnd0,
		MaxDrop: 2,
	}
}

func TestGreenLeftOneSidedMatchesNaiveSpan1(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		p := randOptParams(rng)
		if trial%3 == 0 {
			p.Y = 0
		}
		prob := putProblemBOPM(p, 16+rng.Intn(500))
		fast, _, err := SolveGreenLeftOneSided(prob, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		naive, err := SolveGreenLeftOneSidedNaive(prob)
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d, %+v): fast %.12g naive %.12g rel %g", trial, prob.T, p, fast, naive, d)
		}
	}
}

func TestGreenLeftOneSidedMatchesNaiveSpan2(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 25; trial++ {
		p := randOptParams(rng)
		prob := putProblemTOPM(p, 16+rng.Intn(300))
		fast, _, err := SolveGreenLeftOneSided(prob, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		naive, err := SolveGreenLeftOneSidedNaive(prob)
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d): fast %.12g naive %.12g rel %g", trial, prob.T, fast, naive, d)
		}
	}
}

// TestGreenLeftOneSidedUnderestimatedDrop: a span-2 instance solved with
// MaxDrop=1 violates the zone window assumption; the validator must flag the
// structure so users know MaxDrop=2 is required.
func TestGreenLeftOneSidedUnderestimatedDrop(t *testing.T) {
	p := optParams{S: 120, K: 110, R: 0.05, V: 0.25, Y: 0.02, E: 1}
	prob := putProblemTOPM(p, 300)
	prob.MaxDrop = 1
	if _, err := GreenLeftOneSidedBoundaryTrace(prob); err == nil {
		t.Error("validator accepted a span-2 put with MaxDrop=1")
	}
	prob.MaxDrop = 2
	if _, err := GreenLeftOneSidedBoundaryTrace(prob); err != nil {
		t.Errorf("validator rejected MaxDrop=2: %v", err)
	}
}

func TestGreenLeftOneSidedBoundaryStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 20; trial++ {
		prob := putProblemBOPM(randOptParams(rng), 16+rng.Intn(300))
		if _, err := GreenLeftOneSidedBoundaryTrace(prob); err != nil {
			t.Errorf("span1 trial %d: %v", trial, err)
		}
	}
	for trial := 0; trial < 12; trial++ {
		prob := putProblemTOPM(randOptParams(rng), 16+rng.Intn(200))
		if _, err := GreenLeftOneSidedBoundaryTrace(prob); err != nil {
			t.Errorf("span2 trial %d: %v", trial, err)
		}
	}
}

func TestGreenLeftOneSidedDeepCases(t *testing.T) {
	cases := []optParams{
		{S: 400, K: 40, R: 0.03, V: 0.2, Y: 0, E: 1},    // deep OTM put: all red
		{S: 10, K: 300, R: 0.03, V: 0.2, Y: 0, E: 1},    // deep ITM put: all green
		{S: 100, K: 100, R: 1e-4, V: 0.3, Y: 0.1, E: 2}, // boundary collapses fast
	}
	for i, p := range cases {
		prob := putProblemBOPM(p, 500)
		fast, _, err := SolveGreenLeftOneSided(prob, nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		naive, err := SolveGreenLeftOneSidedNaive(prob)
		if err != nil {
			t.Fatal(err)
		}
		// Deep-OTM true values sit below the FFT noise floor (eps * K);
		// compare with an absolute epsilon on that scale.
		if math.Abs(fast-naive) > 1e-10*(1+p.K) {
			t.Errorf("case %d: fast %.12g naive %.12g", i, fast, naive)
		}
	}
}

func TestGreenLeftOneSidedBaseCaseInvariance(t *testing.T) {
	p := optParams{S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1}
	prob := putProblemBOPM(p, 700)
	var ref float64
	for i, base := range []int{1, 4, 8, 32, 128, 10000} {
		prob.BaseCase = base
		v, _, err := SolveGreenLeftOneSided(prob, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = v
			continue
		}
		if d := relDiff(v, ref); d > 1e-10 {
			t.Errorf("base %d: %.14g vs %.14g", base, v, ref)
		}
	}
}

func TestGreenLeftOneSidedSerialParallelAgree(t *testing.T) {
	prob := putProblemBOPM(optParams{S: 110, K: 120, R: 0.02, V: 0.3, Y: 0.01, E: 1}, 1024)
	vPar, _, err := SolveGreenLeftOneSided(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := par.SetWorkers(1)
	vSer, _, err := SolveGreenLeftOneSided(prob, nil)
	par.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	if vPar != vSer {
		t.Errorf("parallel %.17g != serial %.17g", vPar, vSer)
	}
}

func TestGreenLeftOneSidedSubquadratic(t *testing.T) {
	p := optParams{S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1}
	prob := putProblemBOPM(p, 1<<13)
	var st Stats
	if _, _, err := SolveGreenLeftOneSided(prob, &st); err != nil {
		t.Fatal(err)
	}
	T := int64(prob.T)
	if st.NaiveCells.Load() > T*T/16 {
		t.Errorf("naive cells %d not subquadratic", st.NaiveCells.Load())
	}
	if st.FFTCalls.Load() == 0 {
		t.Error("no FFT calls on a large instance")
	}
}

func TestGreenLeftOneSidedValidation(t *testing.T) {
	good := func() *GreenLeftOneSided {
		return putProblemBOPM(optParams{S: 100, K: 100, R: 0.02, V: 0.2, Y: 0.02, E: 1}, 32)
	}
	for name, mutate := range map[string]func(*GreenLeftOneSided){
		"bad MinOff": func(p *GreenLeftOneSided) { p.Stencil.MinOff = -1 },
		"narrow row": func(p *GreenLeftOneSided) { p.Hi0 = p.T - 1 },
		"negative T": func(p *GreenLeftOneSided) { p.T = -1 },
		"nil Init":   func(p *GreenLeftOneSided) { p.Init = nil },
		"nil Green":  func(p *GreenLeftOneSided) { p.Green = nil },
		"big Bnd0":   func(p *GreenLeftOneSided) { p.Bnd0 = p.Hi0 + 1 },
	} {
		p := good()
		mutate(p)
		if _, _, err := SolveGreenLeftOneSided(p, nil); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestGreenLeftOneSidedTinyT(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for T := 1; T <= 10; T++ {
		for trial := 0; trial < 4; trial++ {
			prob := putProblemBOPM(randOptParams(rng), T)
			fast, _, err := SolveGreenLeftOneSided(prob, nil)
			if err != nil {
				t.Fatalf("T=%d: %v", T, err)
			}
			naive, err := SolveGreenLeftOneSidedNaive(prob)
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(fast, naive); d > 1e-12 {
				t.Errorf("T=%d trial %d: fast %.12g naive %.12g", T, trial, fast, naive)
			}
		}
	}
}
