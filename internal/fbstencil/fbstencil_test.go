package fbstencil

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/par"
)

// ---------------------------------------------------------------------------
// Synthetic instances with the paper's provable structure. These mirror the
// three pricing models (without depending on the model packages) so the
// engine is tested against the exact class of problems it was designed for.
// ---------------------------------------------------------------------------

type optParams struct {
	S, K, R, V, Y, E float64
}

func randOptParams(rng *rand.Rand) optParams {
	return optParams{
		S: 80 + 80*rng.Float64(),
		K: 80 + 80*rng.Float64(),
		R: 0.001 + 0.08*rng.Float64(),
		V: 0.1 + 0.4*rng.Float64(),
		Y: 0.005 + 0.08*rng.Float64(),
		E: 0.25 + 1.5*rng.Float64(),
	}
}

// bopmProblem builds the binomial American call instance (paper Section 2).
func bopmProblem(p optParams, T int) *GreenRight {
	dt := p.E / float64(T)
	u := math.Exp(p.V * math.Sqrt(dt))
	d := 1 / u
	q := (math.Exp((p.R-p.Y)*dt) - d) / (u - d)
	m := math.Exp(-p.R * dt)
	lnu := math.Log(u)
	green := func(depth, col int) float64 {
		return p.S*math.Exp(float64(2*col-T+depth)*lnu) - p.K
	}
	// Largest red leaf: exercise value <= 0.
	bnd0 := int(math.Floor((float64(T) + math.Log(p.K/p.S)/lnu) / 2))
	if bnd0 > T {
		bnd0 = T
	}
	if bnd0 < -1 {
		bnd0 = -1
	}
	return &GreenRight{
		Stencil: linstencil.Stencil{MinOff: 0, W: []float64{m * (1 - q), m * q}},
		T:       T,
		Hi0:     T,
		Init:    func(col int) float64 { return math.Max(0, green(0, col)) },
		Green:   green,
		Bnd0:    bnd0,
	}
}

// topmProblem builds the trinomial American call instance (paper Section 3
// and Appendix A).
func topmProblem(p optParams, T int) *GreenRight {
	dt := p.E / float64(T)
	sqU := math.Exp(p.V * math.Sqrt(dt/2)) // sqrt(u)
	sqD := 1 / sqU
	eh := math.Exp((p.R - p.Y) * dt / 2)
	pu := (eh - sqD) / (sqU - sqD)
	pu *= pu
	pd := (sqU - eh) / (sqU - sqD)
	pd *= pd
	po := 1 - pu - pd
	m := math.Exp(-p.R * dt)
	lnu := 2 * math.Log(sqU)
	green := func(depth, col int) float64 {
		return p.S*math.Exp(float64(col-T+depth)*lnu) - p.K
	}
	bnd0 := int(math.Floor(float64(T) + math.Log(p.K/p.S)/lnu))
	if bnd0 > 2*T {
		bnd0 = 2 * T
	}
	if bnd0 < -1 {
		bnd0 = -1
	}
	return &GreenRight{
		Stencil: linstencil.Stencil{MinOff: 0, W: []float64{m * pd, m * po, m * pu}},
		T:       T,
		Hi0:     2 * T,
		Init:    func(col int) float64 { return math.Max(0, green(0, col)) },
		Green:   green,
		Bnd0:    bnd0,
	}
}

// bsmProblem builds the Black-Scholes-Merton American put FD instance (paper
// Section 4) with lambda = dtau/ds^2 chosen to satisfy Theorem 4.3's
// positivity requirements.
func bsmProblem(p optParams, T int) *GreenLeft {
	sigma := p.V
	omega := 2 * p.R / (sigma * sigma)
	omegaD := 2 * (p.R - p.Y) / (sigma * sigma) // dividend-extended drift
	tauMax := sigma * sigma * p.E / 2
	dtau := tauMax / float64(T)
	lambda := 1.0 / 3
	ds := math.Sqrt(dtau / lambda)
	a := dtau/(ds*ds) + (omegaD-1)*dtau/(2*ds) // weight on k+1
	b := dtau/(ds*ds) - (omegaD-1)*dtau/(2*ds) // weight on k-1
	c := 1 - omega*dtau - 2*dtau/(ds*ds)
	s0 := math.Log(p.S / p.K)
	sAt := func(col int) float64 { return s0 + float64(col-T)*ds }
	green := func(depth, col int) float64 { return 1 - math.Exp(sAt(col)) }
	bnd0 := int(math.Floor(float64(T) - s0/ds))
	if bnd0 > 2*T {
		bnd0 = 2 * T
	}
	if bnd0 < -1 {
		bnd0 = -1
	}
	return &GreenLeft{
		Stencil: linstencil.Stencil{MinOff: -1, W: []float64{b, c, a}},
		T:       T,
		Lo0:     0,
		Hi0:     2 * T,
		Init:    func(col int) float64 { return math.Max(green(0, col), 0) },
		Green:   green,
		Bnd0:    bnd0,
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

// ---------------------------------------------------------------------------
// Fast solver vs naive oracle.
// ---------------------------------------------------------------------------

func TestGreenRightBOPMMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		p := randOptParams(rng)
		T := 16 + rng.Intn(500)
		prob := bopmProblem(p, T)
		fast, _, err := SolveGreenRight(prob, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		naive, err := SolveGreenRightNaive(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d, params %+v): fast %.12g naive %.12g rel %g",
				trial, T, p, fast, naive, d)
		}
	}
}

func TestGreenRightTOPMMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		p := randOptParams(rng)
		T := 16 + rng.Intn(300)
		prob := topmProblem(p, T)
		fast, _, err := SolveGreenRight(prob, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		naive, err := SolveGreenRightNaive(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d, params %+v): fast %.12g naive %.12g rel %g",
				trial, T, p, fast, naive, d)
		}
	}
}

func TestGreenLeftBSMMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		p := randOptParams(rng)
		T := 16 + rng.Intn(300)
		prob := bsmProblem(p, T)
		fast, _, err := SolveGreenLeft(prob, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		naive, err := SolveGreenLeftNaive(prob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d, params %+v): fast %.12g naive %.12g rel %g",
				trial, T, p, fast, naive, d)
		}
	}
}

// ---------------------------------------------------------------------------
// Structural lemmas verified empirically (Cor. 2.7, Cor. A.6, Thm 4.3).
// ---------------------------------------------------------------------------

func TestBOPMBoundaryStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		prob := bopmProblem(randOptParams(rng), 16+rng.Intn(250))
		if _, err := GreenRightBoundaryTrace(prob); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestTOPMBoundaryStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		prob := topmProblem(randOptParams(rng), 16+rng.Intn(200))
		if _, err := GreenRightBoundaryTrace(prob); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestBSMBoundaryStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 20; trial++ {
		prob := bsmProblem(randOptParams(rng), 16+rng.Intn(200))
		if _, err := GreenLeftBoundaryTrace(prob); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------------

// TestGreenRightAllRed: with zero dividend yield an American call is never
// exercised early — the whole grid is red and the solve is one long linear
// evolution.
func TestGreenRightAllRed(t *testing.T) {
	p := optParams{S: 100, K: 100, R: 0.05, V: 0.3, Y: 0, E: 1}
	T := 700
	prob := bopmProblem(p, T)
	// With Y=0 the continuation value always dominates from depth 1 onward,
	// so the grid becomes all-red after the first step.
	trace, err := GreenRightBoundaryTrace(prob)
	if err != nil {
		t.Fatal(err)
	}
	if trace[1] != T-1 {
		t.Fatalf("Y=0: depth-1 boundary %d, want all red (%d)", trace[1], T-1)
	}
	fast, bnd, err := SolveGreenRight(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveGreenRightNaive(prob)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(fast, naive); d > 1e-10 {
		t.Errorf("all-red: fast %.12g naive %.12g", fast, naive)
	}
	if bnd != 0 {
		t.Errorf("all-red final boundary = %d, want 0", bnd)
	}
}

// TestGreenRightAllGreen: if the exercise value dominates everywhere the
// apex is the closed form.
func TestGreenRightAllGreen(t *testing.T) {
	// Deep in-the-money with huge dividend yield: exercise immediately.
	p := optParams{S: 400, K: 10, R: 0.001, V: 0.1, Y: 0.5, E: 2}
	T := 300
	prob := bopmProblem(p, T)
	fast, _, err := SolveGreenRight(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveGreenRightNaive(prob)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(fast, naive); d > 1e-10 {
		t.Errorf("all-green: fast %.12g naive %.12g", fast, naive)
	}
	if want := p.S - p.K; relDiff(fast, want) > 1e-9 {
		t.Errorf("deep ITM immediate exercise: got %.12g want %.12g", fast, want)
	}
}

// TestGreenLeftDeepOTM: a put far out of the money has an all-red cone.
func TestGreenLeftDeepOTM(t *testing.T) {
	p := optParams{S: 300, K: 5, R: 0.05, V: 0.2, Y: 0, E: 0.5}
	T := 400
	prob := bsmProblem(p, T)
	if prob.Bnd0 >= 0 {
		t.Fatalf("expected boundary left of the cone, Bnd0=%d", prob.Bnd0)
	}
	fast, _, err := SolveGreenLeft(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveGreenLeftNaive(prob)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(fast, naive); d > 1e-10 {
		t.Errorf("deep OTM: fast %.12g naive %.12g", fast, naive)
	}
}

// TestGreenLeftDeepITM: a put far in the money is exercised immediately.
func TestGreenLeftDeepITM(t *testing.T) {
	p := optParams{S: 10, K: 300, R: 0.05, V: 0.2, Y: 0, E: 0.5}
	T := 400
	prob := bsmProblem(p, T)
	fast, _, err := SolveGreenLeft(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveGreenLeftNaive(prob)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(fast, naive); d > 1e-10 {
		t.Errorf("deep ITM: fast %.12g naive %.12g", fast, naive)
	}
	// Dimensionless value 1 - S/K.
	if want := 1 - p.S/p.K; relDiff(fast, want) > 1e-9 {
		t.Errorf("deep ITM put: got %.12g want %.12g", fast, want)
	}
}

func TestTinyT(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for T := 1; T <= 12; T++ {
		for trial := 0; trial < 5; trial++ {
			p := randOptParams(rng)
			prob := bopmProblem(p, T)
			fast, _, err := SolveGreenRight(prob, nil)
			if err != nil {
				t.Fatalf("T=%d: %v", T, err)
			}
			naive, err := SolveGreenRightNaive(prob)
			if err != nil {
				t.Fatalf("T=%d: %v", T, err)
			}
			if d := relDiff(fast, naive); d > 1e-12 {
				t.Errorf("T=%d trial=%d: fast %.12g naive %.12g", T, trial, fast, naive)
			}
		}
	}
	// T=0 returns the initial apex value directly.
	prob := bopmProblem(optParams{S: 150, K: 100, R: 0.02, V: 0.3, Y: 0.05, E: 1}, 1)
	prob.T = 0
	fast, _, err := SolveGreenRight(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveGreenRightNaive(prob)
	if err != nil {
		t.Fatal(err)
	}
	if fast != naive {
		t.Errorf("T=0: fast %.12g naive %.12g", fast, naive)
	}
}

// TestBaseCaseInvariance: the answer must not depend on the recursion cutoff.
func TestBaseCaseInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	p := randOptParams(rng)
	T := 333
	var ref float64
	for i, base := range []int{1, 4, 8, 23, 64, 1000} {
		prob := bopmProblem(p, T)
		prob.BaseCase = base
		v, _, err := SolveGreenRight(prob, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = v
			continue
		}
		if d := relDiff(v, ref); d > 1e-10 {
			t.Errorf("base=%d: %.12g differs from ref %.12g", base, v, ref)
		}
	}
	for i, base := range []int{1, 4, 8, 23, 64, 1000} {
		prob := bsmProblem(p, T)
		prob.BaseCase = base
		v, _, err := SolveGreenLeft(prob, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = v
			continue
		}
		if d := relDiff(v, ref); d > 1e-10 {
			t.Errorf("GreenLeft base=%d: %.12g differs from ref %.12g", base, v, ref)
		}
	}
}

// TestSerialParallelAgree: worker count must not change results.
func TestSerialParallelAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := randOptParams(rng)
	T := 1024

	prob := bopmProblem(p, T)
	vPar, _, err := SolveGreenRight(prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := par.SetWorkers(1)
	vSer, _, err := SolveGreenRight(prob, nil)
	par.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	if vPar != vSer {
		t.Errorf("parallel %.17g != serial %.17g", vPar, vSer)
	}

	probC := bsmProblem(p, T)
	cPar, _, err := SolveGreenLeft(probC, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev = par.SetWorkers(1)
	cSer, _, err := SolveGreenLeft(probC, nil)
	par.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	if cPar != cSer {
		t.Errorf("GreenLeft parallel %.17g != serial %.17g", cPar, cSer)
	}
}

// TestSubquadraticWork: the counters must show the fast solver touches far
// fewer cells directly than the Theta(T^2) sweep.
func TestSubquadraticWork(t *testing.T) {
	p := optParams{S: 127.62, K: 130, R: 0.05, V: 0.25, Y: 0.03, E: 1}
	T := 1 << 13
	var st Stats
	if _, _, err := SolveGreenRight(bopmProblem(p, T), &st); err != nil {
		t.Fatal(err)
	}
	naiveCells := st.NaiveCells.Load()
	quad := int64(T) * int64(T) / 2
	if naiveCells > quad/16 {
		t.Errorf("naive cells %d not subquadratic (T^2/2 = %d)", naiveCells, quad)
	}
	if st.FFTCalls.Load() == 0 {
		t.Error("fast solver made no FFT calls on a large instance")
	}

	var stC Stats
	if _, _, err := SolveGreenLeft(bsmProblem(p, T), &stC); err != nil {
		t.Fatal(err)
	}
	if stC.NaiveCells.Load() > 2*int64(T)*int64(T)/16 {
		t.Errorf("GreenLeft naive cells %d not subquadratic", stC.NaiveCells.Load())
	}
}

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

func TestValidation(t *testing.T) {
	good := bopmProblem(optParams{S: 100, K: 100, R: 0.02, V: 0.2, Y: 0.02, E: 1}, 32)
	cases := map[string]func(){
		"bad MinOff":   func() { good.Stencil.MinOff = 1 },
		"narrow row":   func() { good.Hi0 = good.T - 1 },
		"negative T":   func() { good.T = -1 },
		"nil Init":     func() { good.Init = nil },
		"nil Green":    func() { good.Green = nil },
		"Bnd0 too big": func() { good.Bnd0 = good.Hi0 + 1 },
	}
	for name, mutate := range cases {
		good = bopmProblem(optParams{S: 100, K: 100, R: 0.02, V: 0.2, Y: 0.02, E: 1}, 32)
		mutate()
		if _, _, err := SolveGreenRight(good, nil); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}

	gl := bsmProblem(optParams{S: 100, K: 100, R: 0.02, V: 0.2, Y: 0, E: 1}, 32)
	gl.Hi0++ // width no longer 2T
	if _, _, err := SolveGreenLeft(gl, nil); err == nil {
		t.Error("GreenLeft bad width: expected validation error")
	}
	gl = bsmProblem(optParams{S: 100, K: 100, R: 0.02, V: 0.2, Y: 0, E: 1}, 32)
	gl.Stencil.MinOff = 0
	if _, _, err := SolveGreenLeft(gl, nil); err == nil {
		t.Error("GreenLeft bad stencil: expected validation error")
	}
}

func BenchmarkGreenRightFast8K(b *testing.B) {
	p := optParams{S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1}
	prob := bopmProblem(p, 1<<13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveGreenRight(prob, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreenLeftFast8K(b *testing.B) {
	p := optParams{S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0, E: 1}
	prob := bsmProblem(p, 1<<13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveGreenLeft(prob, nil); err != nil {
			b.Fatal(err)
		}
	}
}
