package fbstencil

import "fmt"

// This file contains the direct O(T * width) reference solvers. They compute
// every cell of the space-time cone with the plain max-update and make no
// structural assumptions (no boundary contiguity or monotonicity), so they
// serve as the correctness oracle for the fast solvers, and their
// boundary-trace variants empirically verify the paper's structural lemmas
// (Cor. 2.7, Cor. A.6, Thm 4.3) on arbitrary instances.

// SolveGreenRightNaive solves a GreenRight problem by the direct sweep and
// returns the apex value.
func SolveGreenRightNaive(p *GreenRight) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	row := make([]float64, p.Hi0+1)
	for j := range row {
		row[j] = p.Init(j)
	}
	r := p.Stencil.Span()
	w := p.Stencil.W
	for d := 1; d <= p.T; d++ {
		hi := p.Hi0 - d*r
		for j := 0; j <= hi; j++ {
			var lin float64
			for i, wi := range w {
				lin += wi * row[j+i]
			}
			if g := p.Green(d, j); g > lin {
				row[j] = g
			} else {
				row[j] = lin
			}
		}
		row = row[:hi+1]
	}
	return row[0], nil
}

// GreenRightBoundaryTrace solves the problem naively while recording, for
// every depth, the largest red column (-1 if none). It returns an error if
// any row violates red-prefix contiguity or if the boundary ever moves right
// or drops by more than one — i.e., it checks Corollary 2.7 / A.6 on the
// instance. The no-right-move check deliberately skips the transition off
// the initial row: there "red" means 0 >= exercise, and the red region can
// legitimately widen once at depth 1 (see SolveGreenRight).
func GreenRightBoundaryTrace(p *GreenRight) ([]int, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	row := make([]float64, p.Hi0+1)
	red := make([]bool, p.Hi0+1)
	for j := range row {
		row[j] = p.Init(j)
		red[j] = p.Init(j) > p.Green(0, j) || j <= p.Bnd0
	}
	r := p.Stencil.Span()
	w := p.Stencil.W
	trace := make([]int, p.T+1)
	trace[0] = p.Bnd0
	for d := 1; d <= p.T; d++ {
		hi := p.Hi0 - d*r
		bnd := -1
		for j := 0; j <= hi; j++ {
			var lin float64
			for i, wi := range w {
				lin += wi * row[j+i]
			}
			g := p.Green(d, j)
			if lin >= g {
				row[j] = lin
				red[j] = true
				bnd = j
			} else {
				row[j] = g
				red[j] = false
			}
		}
		for j := 0; j <= bnd; j++ {
			if !red[j] {
				return nil, fmt.Errorf("fbstencil: red region not contiguous at depth %d: col %d green, col %d red", d, j, bnd)
			}
		}
		prev := trace[d-1]
		if prev > hi+r {
			prev = hi + r // previous row may simply have been wider
		}
		if bnd > prev && d > 1 {
			return nil, fmt.Errorf("fbstencil: boundary moved right at depth %d: %d -> %d", d, prev, bnd)
		}
		if prev >= 0 && bnd < prev-1 && bnd < min(prev, hi)-1 {
			return nil, fmt.Errorf("fbstencil: boundary dropped by more than one at depth %d: %d -> %d", d, prev, bnd)
		}
		trace[d] = bnd
		row = row[:hi+1]
	}
	return trace, nil
}

// SolveGreenLeftNaive solves a GreenLeft problem by the direct sweep and
// returns the apex value.
func SolveGreenLeftNaive(p *GreenLeft) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	width := p.Hi0 - p.Lo0 + 1
	row := make([]float64, width)
	for j := range row {
		row[j] = p.Init(p.Lo0 + j)
	}
	w := p.Stencil.W
	for d := 1; d <= p.T; d++ {
		lo, hi := p.Lo0+d, p.Hi0-d
		next := make([]float64, hi-lo+1)
		for j := lo; j <= hi; j++ {
			i := j - (p.Lo0 + d - 1) // index in previous row
			lin := w[0]*row[i-1] + w[1]*row[i] + w[2]*row[i+1]
			if g := p.Green(d, j); g > lin {
				next[j-lo] = g
			} else {
				next[j-lo] = lin
			}
		}
		row = next
	}
	return row[0], nil
}

// GreenLeftBoundaryTrace records the largest green column per depth (within
// the cone; Lo0+d-1 marks "no green cell in the cone") and checks Theorem
// 4.3 empirically: green-prefix contiguity and 0 <= k_n - k_{n+1} <= 1.
func GreenLeftBoundaryTrace(p *GreenLeft) ([]int, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	width := p.Hi0 - p.Lo0 + 1
	row := make([]float64, width)
	for j := range row {
		row[j] = p.Init(p.Lo0 + j)
	}
	w := p.Stencil.W
	trace := make([]int, p.T+1)
	trace[0] = p.Bnd0
	for d := 1; d <= p.T; d++ {
		lo, hi := p.Lo0+d, p.Hi0-d
		next := make([]float64, hi-lo+1)
		green := make([]bool, hi-lo+1)
		bnd := lo - 1
		lastGreen := lo - 1
		for j := lo; j <= hi; j++ {
			i := j - (p.Lo0 + d - 1)
			lin := w[0]*row[i-1] + w[1]*row[i] + w[2]*row[i+1]
			if g := p.Green(d, j); g > lin {
				next[j-lo] = g
				green[j-lo] = true
				lastGreen = j
			} else {
				next[j-lo] = lin
			}
		}
		bnd = lastGreen
		for j := lo; j <= bnd; j++ {
			if !green[j-lo] {
				return nil, fmt.Errorf("fbstencil: green region not contiguous at depth %d: col %d red, col %d green", d, j, bnd)
			}
		}
		prev := trace[d-1]
		if prev < lo-1 {
			prev = lo - 1
		}
		if bnd > prev {
			return nil, fmt.Errorf("fbstencil: boundary moved right at depth %d: %d -> %d", d, prev, bnd)
		}
		// The drop bound only holds between interior rows (see
		// SolveGreenLeft): off the payoff row the boundary can fall to
		// s ~ ln(R/Y) in one step when Y > R.
		if d > 1 && bnd < prev-1 && prev-1 >= lo-1 {
			return nil, fmt.Errorf("fbstencil: boundary dropped by more than one at depth %d: %d -> %d", d, prev, bnd)
		}
		trace[d] = bnd
		row = next
	}
	return trace, nil
}
