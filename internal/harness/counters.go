package harness

import (
	"fmt"
	"sync"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/cachesim"
	"github.com/nlstencil/amop/internal/energy"
	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/topm"
	"github.com/nlstencil/amop/internal/trace"
)

// Counter experiments: Figures 6 (total energy), 7 (L1/L2 misses) and 10
// (pkg/RAM energy split). One traced run per (model, algorithm, T) feeds all
// three; results are memoized for the life of the process. The fastpath
// experiment reads the production counters (spectrum cache, transform
// traffic) instead of the simulator.

func init() {
	register(Experiment{"fig6", "total energy consumption model (fig6a BOPM, fig6b TOPM, fig6c BSM)", fig6})
	register(Experiment{"fig7", "simulated L1 and L2 cache misses (fig7a-f)", fig7})
	register(Experiment{"fig10", "energy split by domain: package vs RAM", fig10})
	register(Experiment{"fastpath", "real-input FFT fast path vs legacy complex path: wall time, spectrum-cache hit rate, transform traffic", fastpath})
}

// fastpath A/Bs the real-input cached FFT stack against the legacy
// full-complex per-call-symbol stack on the same solver, model by model, and
// reads the production counters around single solves: spectrum-cache hit
// rate at steady state and bytes moved through FFT butterfly stages.
func fastpath(cfg Config) ([]*Table, error) {
	prm := option.Default()
	pricers := []struct {
		model string
		build func(T int) (func(), error)
	}{
		{"bopm", func(T int) (func(), error) {
			m, err := bopm.New(prm, T)
			if err != nil {
				return nil, err
			}
			return func() {
				if _, err := m.PriceFast(); err != nil {
					panic(err)
				}
			}, nil
		}},
		{"topm", func(T int) (func(), error) {
			m, err := topm.New(prm, T)
			if err != nil {
				return nil, err
			}
			return func() {
				if _, err := m.PriceFast(); err != nil {
					panic(err)
				}
			}, nil
		}},
		{"bsm", func(T int) (func(), error) {
			m, err := bsm.New(prm, T, 0)
			if err != nil {
				return nil, err
			}
			return func() {
				if _, err := m.PriceFast(); err != nil {
					panic(err)
				}
			}, nil
		}},
	}

	var tables []*Table
	for _, p := range pricers {
		t := &Table{
			ID:     "fastpath-" + p.model,
			Title:  fmt.Sprintf("%s fast solver: real-input cached FFT path vs legacy complex path", p.model),
			Note:   "hit_rate and MB are per steady-state solve (after one warm-up); legacy = full complex transforms, per-call symbol evaluation, no caching",
			Header: []string{"T", "real_s", "legacy_s", "speedup", "hit_rate", "real_MB", "legacy_MB"},
		}
		for _, T := range sweep(1<<11, cfg.MaxT) {
			solve, err := p.build(T)
			if err != nil {
				return nil, err
			}
			solve() // warm plans, scratch pools, and the spectrum cache

			h0, m0, _, _ := linstencil.SpectrumCacheStats()
			b0 := fft.TransformedBytes()
			solve()
			h1, m1, _, _ := linstencil.SpectrumCacheStats()
			b1 := fft.TransformedBytes()
			tReal := timeIt(solve)

			prev := linstencil.SetRealPath(false)
			solve()
			lb0 := fft.TransformedBytes()
			solve()
			lb1 := fft.TransformedBytes()
			tLegacy := timeIt(solve)
			linstencil.SetRealPath(prev)

			hitRate := "-"
			if lookups := (h1 - h0) + (m1 - m0); lookups > 0 {
				hitRate = fmt.Sprintf("%.4f", float64(h1-h0)/float64(lookups))
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(T),
				secs(tReal), secs(tLegacy), ratio(tLegacy, tReal),
				hitRate,
				fmt.Sprintf("%.1f", float64(b1-b0)/(1<<20)),
				fmt.Sprintf("%.1f", float64(lb1-lb0)/(1<<20)),
			})
		}
		tables = append(tables, t)
	}
	return tables, nil
}

type tracedPoint struct {
	counters cachesim.Counters
	seconds  float64 // production wall time at the same (model, alg, T)
}

var (
	tracedMu    sync.Mutex
	tracedCache = map[string]tracedPoint{}
)

// tracedRun replays the traced kernel for one (model, alg, T) and measures
// the production implementation's wall time.
func tracedRun(model, alg string, T int) (tracedPoint, error) {
	key := fmt.Sprintf("%s/%s/%d", model, alg, T)
	tracedMu.Lock()
	defer tracedMu.Unlock()
	if p, ok := tracedCache[key]; ok {
		return p, nil
	}
	prm := option.Default()
	h := cachesim.NewSKX()
	var seconds float64
	switch model {
	case "bopm":
		m, err := bopm.New(prm, T)
		if err != nil {
			return tracedPoint{}, err
		}
		spec := trace.BOPMSpec(m)
		switch alg {
		case "fft":
			trace.FastGR(h, spec)
			seconds = timeIt(func() { m.PriceFast() }) //nolint:errcheck
		case "ql":
			trace.NaiveGR(h, spec)
			seconds = timeIt(func() { m.PriceNaiveParallel(option.Call) })
		case "zb":
			trace.TiledGR(h, spec, 0, 0)
			seconds = timeIt(func() { m.PriceTiled(option.Call, 0, 0) })
		default:
			return tracedPoint{}, fmt.Errorf("unknown bopm algorithm %q", alg)
		}
	case "topm":
		m, err := topm.New(prm, T)
		if err != nil {
			return tracedPoint{}, err
		}
		spec := trace.TOPMSpec(m)
		switch alg {
		case "fft":
			trace.FastGR(h, spec)
			seconds = timeIt(func() { m.PriceFast() }) //nolint:errcheck
		case "vanilla":
			trace.NaiveGR(h, spec)
			seconds = timeIt(func() { m.PriceNaiveParallel(option.Call) })
		default:
			return tracedPoint{}, fmt.Errorf("unknown topm algorithm %q", alg)
		}
	case "bsm":
		m, err := bsm.New(prm, T, 0)
		if err != nil {
			return tracedPoint{}, err
		}
		spec := trace.BSMSpec(m)
		switch alg {
		case "fft":
			trace.FastGL(h, spec)
			seconds = timeIt(func() { m.PriceFast() }) //nolint:errcheck
		case "vanilla":
			trace.NaiveGL(h, spec)
			seconds = timeIt(func() { m.PriceNaiveParallel() })
		default:
			return tracedPoint{}, fmt.Errorf("unknown bsm algorithm %q", alg)
		}
	default:
		return tracedPoint{}, fmt.Errorf("unknown model %q", model)
	}
	p := tracedPoint{counters: h.Snapshot(), seconds: seconds}
	tracedCache[key] = p
	return p, nil
}

// counterModels maps each paper subfigure to its algorithm legend.
var counterModels = []struct {
	model string
	algs  []string
	sub   string
}{
	{"bopm", []string{"fft", "ql", "zb"}, "a"},
	{"topm", []string{"fft", "vanilla"}, "b"},
	{"bsm", []string{"fft", "vanilla"}, "c"},
}

func fig6(cfg Config) ([]*Table, error) {
	em := energy.Skylake()
	var tables []*Table
	for _, mm := range counterModels {
		t := &Table{
			ID:     "fig6" + mm.sub,
			Title:  fmt.Sprintf("%s total energy (modeled Joules)", mm.model),
			Note:   "linear event-cost model over simulated counters + static power x measured wall time; see internal/energy",
			Header: append([]string{"T"}, algCols(mm.algs, "")...),
		}
		for _, T := range sweep(1<<10, cfg.MaxTraceT) {
			row := []string{fmt.Sprint(T)}
			for _, alg := range mm.algs {
				p, err := tracedRun(mm.model, alg, T)
				if err != nil {
					return nil, err
				}
				row = append(row, num(em.Energy(p.counters, p.seconds).Total))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func fig7(cfg Config) ([]*Table, error) {
	var tables []*Table
	levels := []struct {
		name string
		sub  int // fig7a-c are L1, fig7d-f are L2
		get  func(cachesim.Counters) uint64
	}{
		{"L1", 0, func(c cachesim.Counters) uint64 { return c.L1Misses }},
		{"L2", 3, func(c cachesim.Counters) uint64 { return c.L2Misses }},
	}
	for _, lvl := range levels {
		for i, mm := range counterModels {
			t := &Table{
				ID:     fmt.Sprintf("fig7%c", 'a'+lvl.sub+i),
				Title:  fmt.Sprintf("%s %s cache misses (simulated SKX hierarchy)", mm.model, lvl.name),
				Note:   "set-associative LRU simulation; no prefetchers — see DESIGN.md substitution notes",
				Header: append([]string{"T"}, algCols(mm.algs, "")...),
			}
			for _, T := range sweep(1<<10, cfg.MaxTraceT) {
				row := []string{fmt.Sprint(T)}
				for _, alg := range mm.algs {
					p, err := tracedRun(mm.model, alg, T)
					if err != nil {
						return nil, err
					}
					row = append(row, count(lvl.get(p.counters)))
				}
				t.Rows = append(t.Rows, row)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

func fig10(cfg Config) ([]*Table, error) {
	em := energy.Skylake()
	var tables []*Table
	for _, mm := range counterModels {
		t := &Table{
			ID:     "fig10" + mm.sub,
			Title:  fmt.Sprintf("%s energy by domain (modeled Joules)", mm.model),
			Header: append([]string{"T"}, append(algCols(mm.algs, "-pkg"), algCols(mm.algs, "-ram")...)...),
		}
		for _, T := range sweep(1<<10, cfg.MaxTraceT) {
			row := []string{fmt.Sprint(T)}
			var pkgs, rams []string
			for _, alg := range mm.algs {
				p, err := tracedRun(mm.model, alg, T)
				if err != nil {
					return nil, err
				}
				b := em.Energy(p.counters, p.seconds)
				pkgs = append(pkgs, num(b.Pkg))
				rams = append(rams, num(b.RAM))
			}
			row = append(row, pkgs...)
			row = append(row, rams...)
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func algCols(algs []string, suffix string) []string {
	out := make([]string, len(algs))
	for i, a := range algs {
		out[i] = a + suffix
	}
	return out
}
