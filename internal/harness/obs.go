package harness

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/faultinject"
	"github.com/nlstencil/amop/internal/obs"
)

// The obs-overhead experiment prices the telemetry layer itself: the claim is
// that observability is near-free on the serving fast path — a cached quote
// stays at 0 allocs/op with telemetry on, and its p50 latency is within a few
// percent of telemetry off (quote timing is sampled one serve in 512, so the
// common path pays two atomic loads and a branch). The second table is a
// snapshot of the latency histograms after a realistic tick/quote replay,
// the same numbers /metrics exports as Prometheus summaries.

func init() {
	register(Experiment{"obs-overhead", "telemetry cost on the cached-quote fast path, on vs off", obsOverhead})
}

func obsOverhead(cfg Config) ([]*Table, error) {
	steps := 1000
	if steps > cfg.MaxT {
		steps = cfg.MaxT
	}
	book := sweepBook(steps)
	entries := make([]amop.BookEntry, len(book))
	for i, r := range book {
		entries[i] = amop.BookEntry{
			Symbol: "OBS",
			Option: r.Option, Model: r.Model, Config: r.Config,
		}
	}
	faultinject.Reset()
	srv, err := amop.NewServer(entries, amop.ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	if err != nil {
		return nil, err
	}
	if _, err := srv.Quote(0); err != nil {
		return nil, err
	}
	prevEnabled := obs.Enabled()
	defer obs.SetEnabled(prevEnabled)
	obs.Reset()

	// Interleave on/off trials so clock drift hits both modes equally, and
	// report the median of batched trials: one cached serve is tens of
	// nanoseconds, under the resolution of a per-call clock read.
	const trials = 21
	const perTrial = 20000
	run := func(enabled bool) (nsOp float64) {
		obs.SetEnabled(enabled)
		start := time.Now()
		for i := 0; i < perTrial; i++ {
			if _, err := srv.Quote(0); err != nil {
				panic(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / perTrial
	}
	run(true)
	run(false)
	on := make([]float64, 0, trials)
	off := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		on = append(on, run(true))
		off = append(off, run(false))
	}
	med := func(v []float64) float64 {
		sort.Float64s(v)
		return v[len(v)/2]
	}
	onP, offP := med(on), med(off)

	obs.SetEnabled(true)
	allocsOn := testing.AllocsPerRun(2000, func() { srv.Quote(0) })
	obs.SetEnabled(false)
	allocsOff := testing.AllocsPerRun(2000, func() { srv.Quote(0) })
	obs.SetEnabled(true)

	overhead := &Table{
		ID:    "obs-overhead",
		Title: fmt.Sprintf("cached-quote fast path with telemetry on vs off: %d contracts at T=%d", len(entries), steps),
		Note: "p50 over interleaved batched trials; the telemetry-on path must hold 0 allocs/op and stay within " +
			"5% of telemetry off (the bench-smoke gate TestObsOverheadSmoke enforces both)",
		Header: []string{"telemetry", "cached_quote_p50_ns", "allocs_op"},
		Rows: [][]string{
			{"off", fmt.Sprintf("%.1f", offP), fmt.Sprintf("%.0f", allocsOff)},
			{"on", fmt.Sprintf("%.1f", onP), fmt.Sprintf("%.0f", allocsOn)},
		},
	}

	// Replay ticks across spot buckets so repricing flights, solves and
	// sampled quote serves populate the histograms, then snapshot them —
	// the same data /metrics serves as Prometheus summary quantiles.
	obs.Reset()
	base := amop.Market{Spot: book[0].Option.S, Vol: book[0].Option.V, Rate: book[0].Option.R}
	m := base
	for round := 0; round < 4; round++ {
		m.Spot += 0.30
		if _, err := srv.Tick("OBS", m); err != nil {
			return nil, err
		}
		for id := 0; id < len(entries); id++ {
			if _, err := srv.Quote(id); err != nil {
				return nil, err
			}
		}
	}
	// Enough cached serves that the 1/512 sampler must fire.
	for i := 0; i < 2*512+2; i++ {
		if _, err := srv.Quote(0); err != nil {
			return nil, err
		}
	}

	hists := &Table{
		ID:     "obs-hist",
		Title:  "latency histogram snapshots after the replay (as exported on /metrics)",
		Note:   "quote latency is sampled 1/512 on the cached path; solve latency is recorded on every solve, split by tier",
		Header: []string{"histogram", "count", "p50_us", "p90_us", "p99_us", "max_us"},
	}
	us := func(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e3) }
	addRow := func(name string, s obs.Snapshot) {
		if s.Count == 0 {
			return
		}
		hists.Rows = append(hists.Rows, []string{
			name, fmt.Sprint(s.Count), us(s.P50), us(s.P90), us(s.P99), us(s.Max),
		})
	}
	for _, sym := range obs.QuoteLatency.Labels() {
		addRow("quote_latency{symbol="+sym+"}", obs.QuoteLatency.With(sym).Snapshot())
	}
	for _, tier := range obs.SolveLatency.Labels() {
		addRow("solve_latency{tier="+tier+"}", obs.SolveLatency.With(tier).Snapshot())
	}
	addRow("coalescer_wait", obs.CoalescerWait.Snapshot())
	addRow("budget_wait", obs.BudgetWait.Snapshot())
	addRow("staleness_age", obs.StalenessAge.Snapshot())
	addRow("fft_evolve", obs.FFTEvolve.Snapshot())
	return []*Table{overhead, hists}, nil
}
