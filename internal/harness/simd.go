package harness

import (
	"fmt"
	"math"

	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/linstencil"
)

// The simd-soa experiment A/Bs the split-plane (SoA) FFT kernel against the
// complex128 radix-4 kernel it replaces as the default: complex forward
// transforms and the plane-native real-input round trip across sizes
// spanning the serial and parallel regimes, and the end-to-end stencil
// evolution that the option-pricing recursion spends its time in. The note
// records which butterfly kernel the SoA path dispatched to, so a record
// generated on a machine without the assembly is legible as such.

func init() {
	register(Experiment{"simd-soa", "SoA split-plane FFT kernel vs complex radix-4, and stencil-evolution end-to-end", simdSoA})
}

func simdSoA(cfg Config) ([]*Table, error) {
	micro := &Table{
		ID:    "simd-fft",
		Title: "FFT kernel: SoA split-plane vs complex radix-4 (seconds per transform)",
		Note: fmt.Sprintf("kernel=%s accelerated=%v; fwd = complex in-place forward; rfft = plane-native real forward+inverse round trip vs complex-spectrum API; sizes above the parallel threshold exercise the stage-parallel paths",
			fft.KernelName(), fft.SoAAccelerated()),
		Header: []string{"n", "fwd_soa_s", "fwd_cpx_s", "fwd_speedup", "rfft_soa_s", "rfft_cpx_s", "rfft_speedup"},
	}
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 17} {
		if n > cfg.MaxT {
			break
		}
		src := make([]complex128, n)
		for i := range src {
			src[i] = complex(math.Cos(float64(i)), math.Sin(float64(i)))
		}
		buf := make([]complex128, n)
		p := fft.PlanFor(n)
		fwd := func() {
			copy(buf, src)
			p.Forward(buf)
		}

		rp := fft.RPlanFor(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Cos(float64(i))
		}
		spec := make([]complex128, rp.HalfLen())
		rfftCpx := func() {
			rp.Forward(x, spec)
			rp.Inverse(spec, x)
		}
		sr := make([]float64, rp.HalfLen())
		si := make([]float64, rp.HalfLen())
		rfftSoA := func() {
			rp.ForwardSoA(x, sr, si)
			rp.InverseSoA(sr, si, x)
		}

		prev := fft.SetSoA(true)
		fwdSoA, rfftSoAT := timeIt(fwd), timeIt(rfftSoA)
		fft.SetSoA(false)
		fwdCpx, rfftCpxT := timeIt(fwd), timeIt(rfftCpx)
		fft.SetSoA(prev)

		micro.Rows = append(micro.Rows, []string{
			fmt.Sprint(n),
			secs(fwdSoA), secs(fwdCpx), ratio(fwdCpx, fwdSoA),
			secs(rfftSoAT), secs(rfftCpxT), ratio(rfftCpxT, rfftSoAT),
		})
	}

	solve := &Table{
		ID:     "simd-evolve",
		Title:  "Stencil evolution (EvolveCone, 3-point stencil): SoA vs complex spectrum path (seconds per evolve)",
		Note:   "each evolve is forward rfft + spectrum multiply + inverse rfft at the padded size; k chosen so the kernel-spectrum cache is warm in both arms",
		Header: []string{"n", "k", "soa_s", "cpx_s", "speedup"},
	}
	s := linstencil.Stencil{MinOff: -1, W: []float64{0.25, 0.5, 0.25}}
	for _, n := range []int{1 << 14, 1 << 16, 1 << 17} {
		if n > cfg.MaxT {
			break
		}
		k := 64
		cur := make([]float64, n)
		for i := range cur {
			cur[i] = math.Sin(float64(i) / 64)
		}
		run := func() {
			vals, _ := linstencil.EvolveCone(cur, s, k)
			_ = vals
		}
		prev := fft.SetSoA(true)
		run() // warm plans, SoA tables, and the kernel-spectrum cache
		soaT := timeIt(run)
		fft.SetSoA(false)
		run()
		cpxT := timeIt(run)
		fft.SetSoA(prev)

		solve.Rows = append(solve.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(k),
			secs(soaT), secs(cpxT), ratio(cpxT, soaT),
		})
	}
	return []*Table{micro, solve}, nil
}
