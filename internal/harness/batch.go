package harness

import (
	"fmt"
	"sync"

	"github.com/nlstencil/amop"
)

// The batch experiment times the desk workload the paper's introduction
// motivates: repricing a whole option chain. It compares the bounded-pool
// batch engine against the ad-hoc goroutine-per-contract fan-out it
// replaced, at several chain sizes.

func init() {
	register(Experiment{"batch", "chain repricing: batch engine vs goroutine-per-contract fan-out", batch})
}

func batch(cfg Config) ([]*Table, error) {
	strikes := []float64{100, 110, 120, 125, 130, 135, 140, 150, 160}
	expiries := []float64{1.0 / 12, 0.25, 0.5, 1.0, 2.0}
	underlying := amop.Option{Type: amop.Call, S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163}

	t := &Table{
		ID:     "batch",
		Title:  "45-contract chain repricing time (seconds)",
		Note:   "9 strikes x 5 expiries, American calls, fast algorithm; engine = amop.PriceBatch (bounded pool), fanout = one goroutine per contract",
		Header: []string{"T", "engine_s", "fanout_s", "fanout/engine"},
	}
	for T := 1 << 12; T <= min(cfg.MaxT, 1<<15); T *= 2 {
		reqs := make([]amop.Request, 0, len(strikes)*len(expiries))
		for _, k := range strikes {
			for _, e := range expiries {
				o := underlying
				o.K, o.E = k, e
				reqs = append(reqs, amop.Request{Option: o, Model: amop.AutoModel, Config: amop.Config{Steps: T}})
			}
		}
		engine := timeIt(func() {
			for i, r := range amop.PriceBatch(reqs, amop.BatchOptions{}) {
				if r.Err != nil {
					panic(fmt.Sprintf("batch request %d: %v", i, r.Err))
				}
			}
		})
		fanout := timeIt(func() {
			var wg sync.WaitGroup
			for _, req := range reqs {
				wg.Add(1)
				go func(req amop.Request) {
					defer wg.Done()
					if _, err := amop.PriceAmerican(req.Option, req.Config.Steps); err != nil {
						panic(err)
					}
				}(req)
			}
			wg.Wait()
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", T), secs(engine), secs(fanout), ratio(fanout, engine),
		})
	}
	return []*Table{t}, nil
}
