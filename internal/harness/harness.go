// Package harness runs the reproduction experiments: one entry per table and
// figure of the paper's evaluation (Section 5 and the appendix), producing
// aligned-text tables and optional CSV files.
//
// Wall-clock experiments (Figure 5, Table 5) run the production pricers on
// the host's cores. Counter experiments (Figures 6, 7, 10) replay traced
// kernels through the cache simulator; their T sweeps default to smaller
// caps because simulation of the quadratic baselines is itself quadratic.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config controls experiment sweeps.
type Config struct {
	MaxT      int    // cap for fast-algorithm sweep sizes (default 1<<17)
	MaxQuadT  int    // cap for quadratic baselines' wall-clock runs (default 1<<15)
	MaxTraceT int    // cap for traced (simulated) runs (default 1<<13)
	OutDir    string // when non-empty, write <id>.csv files here
	JSONPath  string // when non-empty, write all tables as one JSON document here
	Out       io.Writer
}

func (c Config) withDefaults() Config {
	if c.MaxT == 0 {
		c.MaxT = 1 << 17
	}
	if c.MaxQuadT == 0 {
		c.MaxQuadT = 1 << 15
	}
	if c.MaxTraceT == 0 {
		c.MaxTraceT = 1 << 13
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	return c
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
}

// WriteCSV writes the table to dir/<id>.csv.
func (t *Table) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	write := func(cells []string) error {
		_, err := fmt.Fprintln(f, strings.Join(cells, ","))
		return err
	}
	if err := write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*Table, error)
}

var (
	registry   []Experiment
	registryMu sync.Mutex
)

func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = append(registry, e)
}

// Experiments lists all registered experiments in a stable order.
func Experiments() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunByID runs one experiment (or all when id == "all"), rendering tables
// and writing CSVs per the config.
func RunByID(id string, cfg Config) error {
	cfg = cfg.withDefaults()
	any := false
	var all []*Table
	for _, e := range Experiments() {
		if id != "all" && e.ID != id {
			continue
		}
		any = true
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		for _, t := range tables {
			t.Render(cfg.Out)
			if cfg.OutDir != "" {
				if err := t.WriteCSV(cfg.OutDir); err != nil {
					return err
				}
			}
		}
		all = append(all, tables...)
	}
	if !any {
		return fmt.Errorf("harness: unknown experiment %q (use 'all' or one of %s)", id, idList())
	}
	if cfg.JSONPath != "" {
		if err := WriteJSON(cfg.JSONPath, id, all); err != nil {
			return err
		}
	}
	return nil
}

// benchDoc is the machine-readable experiment record written by WriteJSON —
// one BENCH_*.json per run, so the repository's performance trajectory can
// be tracked across commits and machines.
type benchDoc struct {
	Experiment  string   `json:"experiment"`
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Tables      []*Table `json:"tables"`
}

// WriteJSON writes the tables of one harness run as a single JSON document
// with enough machine context to compare runs over time.
func WriteJSON(path, experiment string, tables []*Table) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	doc := benchDoc{
		Experiment:  experiment,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Tables:      tables,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func idList() string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ", ")
}

// timeIt measures fn's wall time, repeating short runs until the total
// exceeds ~50 ms so fast points are not pure noise.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	if elapsed >= 50*time.Millisecond {
		return elapsed.Seconds()
	}
	reps := int(50*time.Millisecond/(elapsed+time.Nanosecond)) + 1
	start = time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start).Seconds() / float64(reps+1)
}

// sweep returns powers of two from lo to hi inclusive.
func sweep(lo, hi int) []int {
	var ts []int
	for t := lo; t <= hi; t *= 2 {
		ts = append(ts, t)
	}
	return ts
}

func secs(s float64) string { return fmt.Sprintf("%.4g", s) }
func num(v float64) string  { return fmt.Sprintf("%.6g", v) }
func count(v uint64) string { return fmt.Sprintf("%d", v) }
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

// fitExponent least-squares fits log2(y) = a + e*log2(x) and returns e.
func fitExponent(xs []int, ys []float64) float64 {
	n := 0
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if ys[i] <= 0 {
			continue
		}
		lx := math.Log2(float64(xs[i]))
		ly := math.Log2(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}
