package harness

import (
	"fmt"
	"math"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/analytic"
	"github.com/nlstencil/amop/internal/option"
)

// The analytic-tier experiment measures the spectral-collocation fast path
// against the stencil lattice it shadows: per-contract accuracy and latency
// (cold boundary solve vs warm cache hit vs the lattice at production step
// counts), and the end-to-end batch speedup of TierAuto on an in-envelope
// vanilla chain. The accuracy column judges the analytic price against the
// Richardson-extrapolated lattice, the same referee cmd/amop-xval uses.

func init() {
	register(Experiment{"analytic-tier", "spectral-collocation fast path vs lattice: accuracy and latency", analyticTier})
}

// analyticContracts is the per-contract measurement set: both kinds across
// moneyness and expiry, all inside the analytic validity envelope.
func analyticContracts() []option.Params {
	var out []option.Params
	for _, e := range []float64{0.25, 1, 3} {
		for _, k := range []float64{85, 100, 115} {
			out = append(out, option.Params{S: 100, K: k, R: 0.045, V: 0.22, Y: 0.015, E: e})
		}
	}
	return out
}

func analyticTier(cfg Config) ([]*Table, error) {
	latticeT := min(cfg.MaxT, 4000)

	perContract := &Table{
		ID:    "analytic-accuracy",
		Title: "analytic tier vs lattice per contract",
		Note: fmt.Sprintf("rel-err is against the Richardson-extrapolated lattice 2 L(2n) - L(n) at n=%d (the obstacle projection makes shallow pairs oscillate); lattice-s times the fast stencil at T=%d",
			8*latticeT, latticeT),
		Header: []string{"kind", "K", "E", "analytic", "rel-err", "analytic-s", "lattice-s", "speedup"},
	}
	for _, kind := range []option.Kind{option.Put, option.Call} {
		for _, prm := range analyticContracts() {
			o := amop.Option{Type: amop.OptionType(kind), S: prm.S, K: prm.K, R: prm.R, V: prm.V, Y: prm.Y, E: prm.E}
			av, err := analytic.Price(prm, kind)
			if err != nil {
				return nil, fmt.Errorf("analytic %v %+v: %v", kind, prm, err)
			}
			l1, err := amop.PriceAmerican(o, 4*latticeT)
			if err != nil {
				return nil, err
			}
			l2, err := amop.PriceAmerican(o, 8*latticeT)
			if err != nil {
				return nil, err
			}
			ref := 2*l2 - l1
			rel := math.Abs(av-ref) / (1 + math.Max(math.Abs(av), math.Abs(ref)))
			ta := timeIt(func() { analytic.Price(prm, kind) })       //nolint:errcheck
			tl := timeIt(func() { amop.PriceAmerican(o, latticeT) }) //nolint:errcheck
			perContract.Rows = append(perContract.Rows, []string{
				kind.String(), num(prm.K), num(prm.E), fmt.Sprintf("%.8f", av),
				fmt.Sprintf("%.2e", rel), secs(ta), secs(tl), ratio(tl, ta),
			})
		}
	}

	// Cold vs warm: the boundary solve is the analytic tier's only expensive
	// step, and it is cached per (r, q, sigma, T) — a chain of strikes on one
	// expiry pays it once.
	prm := option.Params{S: 100, K: 100, R: 0.045, V: 0.22, Y: 0.015, E: 1}
	hits0, miss0 := analytic.BoundaryCacheStats()
	coldWarm := &Table{
		ID:     "analytic-boundary-cache",
		Title:  "cold boundary solve vs warm cache hit",
		Header: []string{"phase", "seconds", "boundary-hits", "boundary-misses"},
	}
	cold := timeIt(func() {
		p := prm
		// Perturb sigma per call so every solve misses the boundary cache.
		p.V += 1e-9 * float64(analyticMissCounter())
		analytic.Price(p, option.Put) //nolint:errcheck
	})
	hits1, miss1 := analytic.BoundaryCacheStats()
	warm := timeIt(func() { analytic.Price(prm, option.Put) }) //nolint:errcheck
	hits2, miss2 := analytic.BoundaryCacheStats()
	coldWarm.Rows = append(coldWarm.Rows,
		[]string{"cold", secs(cold), count(uint64(hits1 - hits0)), count(uint64(miss1 - miss0))},
		[]string{"warm", secs(warm), count(uint64(hits2 - hits1)), count(uint64(miss2 - miss1))},
		[]string{"cold/warm", ratio(cold, warm), "", ""},
	)

	// Batch: the same in-envelope vanilla chain through PriceBatch under
	// TierLattice and TierAuto — the end-to-end number the bench-smoke gate
	// (TestAnalyticNotSlowerSmoke) enforces at >= 10x.
	reqs := tierChain(latticeT)
	check := func(res []amop.Result) error {
		for i, r := range res {
			if r.Err != nil {
				return fmt.Errorf("chain request %d: %v", i, r.Err)
			}
		}
		return nil
	}
	// Warm both arms before timing.
	if err := check(amop.PriceBatch(reqs, amop.BatchOptions{Tier: amop.TierAuto})); err != nil {
		return nil, err
	}
	if err := check(amop.PriceBatch(reqs, amop.BatchOptions{})); err != nil {
		return nil, err
	}
	tAuto := timeIt(func() { amop.PriceBatch(reqs, amop.BatchOptions{Tier: amop.TierAuto}) })
	tLattice := timeIt(func() { amop.PriceBatch(reqs, amop.BatchOptions{}) })
	batch := &Table{
		ID:     "analytic-batch",
		Title:  fmt.Sprintf("PriceBatch on a %d-contract in-envelope vanilla chain", len(reqs)),
		Note:   fmt.Sprintf("lattice arm at T=%d; the CI bench-smoke gate requires >= 10x here", latticeT),
		Header: []string{"tier", "seconds", "speedup"},
	}
	batch.Rows = append(batch.Rows,
		[]string{"lattice", secs(tLattice), ""},
		[]string{"auto (analytic)", secs(tAuto), ratio(tLattice, tAuto)},
	)

	return []*Table{perContract, coldWarm, batch}, nil
}

// tierChain is the batch measurement book: puts and calls across strikes and
// expiries, every contract eligible for the analytic tier.
func tierChain(steps int) []amop.Request {
	var reqs []amop.Request
	for _, kind := range []amop.OptionType{amop.Put, amop.Call} {
		for _, k := range []float64{85, 95, 100, 105, 115} {
			for _, e := range []float64{0.25, 0.5, 1, 2} {
				reqs = append(reqs, amop.Request{
					Option: amop.Option{Type: kind, S: 100, K: k, R: 0.045, V: 0.22, Y: 0.015, E: e},
					Model:  amop.AutoModel,
					Config: amop.Config{Steps: steps},
				})
			}
		}
	}
	return reqs
}

// analyticMissCounter numbers the cold-phase solves so each one perturbs
// sigma to a fresh boundary-cache key.
var analyticMiss int

func analyticMissCounter() int {
	analyticMiss++
	return analyticMiss
}
