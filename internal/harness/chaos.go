package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/faultinject"
	"github.com/nlstencil/amop/internal/obs"
	"github.com/nlstencil/amop/internal/par"
)

// The serve-chaos experiment drives the live pricing server through a
// tick/quote replay while fault injection breaks part of the book: every
// solve for one symbol panics, and every solve for another is slowed 10x.
// The claim under test is the robustness stack's, end to end — panics are
// confined to their contract (quarantine + per-item recover), the panicking
// symbol's circuit breaker opens and its quotes degrade onto pinned
// last-good prices instead of erroring, the slow symbol stays correct and
// merely pays latency, the healthy symbol is untouched, and when the dust
// settles no spawn-budget token has leaked.

func init() {
	register(Experiment{"serve-chaos", "live server availability under injected solver panics and slowdowns", serveChaos})
}

// chaos symbols: one third of the book panics on every solve, one third is
// slowed, one third stays healthy. The names are the faultinject match keys.
const (
	chaosPanicSym = "CHAOS-PANIC"
	chaosSlowSym  = "CHAOS-SLOW"
	chaosGoodSym  = "CHAOS-GOOD"
)

func serveChaos(cfg Config) ([]*Table, error) {
	steps := 1000
	if steps > cfg.MaxT {
		steps = cfg.MaxT
	}
	const (
		rounds        = 10
		quotesPerTick = 48
		workers       = 8
		slowdown      = 10
	)
	book := sweepBook(steps)
	syms := []string{chaosGoodSym, chaosPanicSym, chaosSlowSym}
	entries := make([]amop.BookEntry, len(book))
	for i, r := range book {
		entries[i] = amop.BookEntry{
			Symbol: syms[i%len(syms)],
			Option: r.Option, Model: r.Model, Config: r.Config,
		}
	}

	// Warm the surface healthy first: degraded mode serves pinned last-good
	// prices, and there is no last-good to pin if the symbol was born broken.
	faultinject.Reset()
	defer faultinject.Reset()
	srv, err := amop.NewServer(entries, amop.ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	if err != nil {
		return nil, err
	}

	// Calibrate the slow symbol's delay off a real solve so "10x" tracks the
	// machine instead of a hardcoded sleep. The probe runs against the caches
	// NewServer just warmed — the steady-state tick-to-tick solve cost.
	probe := book[0]
	solveStart := time.Now()
	if res := amop.PriceBatch([]amop.Request{probe}, amop.BatchOptions{}); res[0].Err != nil {
		return nil, res[0].Err
	}
	delay := (slowdown - 1) * time.Since(solveStart)
	if delay < time.Millisecond {
		delay = time.Millisecond
	}

	faultinject.Inject(faultinject.Rule{Kind: faultinject.SolvePanic, Match: chaosPanicSym})
	faultinject.Inject(faultinject.Rule{Kind: faultinject.SolveDelay, Match: chaosSlowSym, Delay: delay})
	faultinject.Enable()

	// Arm the slow-solve tripwire at half the injected delay: every
	// CHAOS-SLOW repricing flight must cross it and land in the slow-trace
	// ring with its per-stage breakdown — the same capture /debug/slow
	// serves on a live daemon.
	obs.Reset()
	prevThresh := obs.SetSlowThreshold(delay / 2)
	defer obs.SetSlowThreshold(prevThresh)

	type symStats struct {
		quotes, degraded, stale int
		lat                     []time.Duration
	}
	stats := map[string]*symStats{}
	for _, s := range syms {
		stats[s] = &symStats{}
	}
	before := amop.ReadPerfCounters()

	rng := rand.New(rand.NewSource(7))
	base := amop.Market{Spot: book[0].Option.S, Vol: book[0].Option.V, Rate: book[0].Option.R}
	markets := map[string]amop.Market{}
	for _, s := range syms {
		markets[s] = base
	}
	var mu sync.Mutex
	for round := 0; round < rounds; round++ {
		// Move every symbol across a spot bucket each round, so each round
		// dirties the whole book and forces repricing flights into the armed
		// faults.
		for _, sym := range syms {
			m := markets[sym]
			m.Spot += 0.30 + 0.05*rng.Float64()
			markets[sym] = m
			if _, err := srv.Tick(sym, m); err != nil {
				return nil, fmt.Errorf("round %d: tick %s: %w", round, sym, err)
			}
		}
		ids := make([]int, quotesPerTick)
		for j := range ids {
			ids[j] = rng.Intn(len(entries))
		}
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		next := 0
		var nextMu sync.Mutex
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					nextMu.Lock()
					j := next
					next++
					nextMu.Unlock()
					if j >= len(ids) {
						return
					}
					id := ids[j]
					sym := entries[id].Symbol
					start := time.Now()
					q, err := srv.Quote(id)
					if err != nil {
						errs <- fmt.Errorf("round %d: quote %d (%s): %w", round, id, sym, err)
						return
					}
					mu.Lock()
					st := stats[sym]
					st.quotes++
					st.lat = append(st.lat, time.Since(start))
					if q.Degraded {
						st.degraded++
					} else if q.Stale {
						st.stale++
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		select {
		case err := <-errs:
			// Availability is the experiment's whole claim: any quote error
			// under chaos — panicking symbol included — is a failure.
			return nil, err
		default:
		}
	}

	faultinject.Reset()
	after := amop.ReadPerfCounters()
	quarantined := len(srv.Quarantined())
	if leaked := par.InUse(); leaked != 0 {
		return nil, fmt.Errorf("spawn budget leak: %d tokens still held after the replay", leaked)
	}

	// The telemetry claim riding along: the slowed symbol's flights crossed
	// the tripwire and were captured with stage attribution.
	// A flight's label lists every symbol it covered, so match by substring.
	slowCaptured := 0
	for _, tr := range obs.SlowTraces() {
		if strings.Contains(tr.Label, chaosSlowSym) {
			slowCaptured++
		}
	}
	if slowCaptured == 0 {
		return nil, fmt.Errorf("no %s flight crossed the %v slow-solve tripwire — slow-trace capture is broken", chaosSlowSym, delay/2)
	}

	avail := &Table{
		ID:    "serve-chaos",
		Title: fmt.Sprintf("quote availability under injected faults: %d contracts x 3 symbols, %d rounds x %d quotes at T=%d", len(entries), rounds, quotesPerTick, steps),
		Note: fmt.Sprintf("every %s solve panics and every %s solve sleeps +%v (~%dx); every quote must still be answered — "+
			"degraded = served from the pinned last-good price (panicking symbol after its breaker opens), "+
			"stale = healthy surface served past its cell under the retry cap", chaosPanicSym, chaosSlowSym, delay.Round(time.Millisecond), slowdown),
		Header: []string{"symbol", "quotes", "ok", "degraded", "stale", "p50_ms", "p99_ms"},
	}
	for _, sym := range syms {
		st := stats[sym]
		avail.Rows = append(avail.Rows, []string{
			sym, fmt.Sprint(st.quotes), fmt.Sprint(st.quotes - st.degraded - st.stale),
			fmt.Sprint(st.degraded), fmt.Sprint(st.stale),
			fmt.Sprintf("%.4g", percentile(st.lat, 0.50)), fmt.Sprintf("%.4g", percentile(st.lat, 0.99)),
		})
	}

	counters := &Table{
		ID:    "serve-chaos-counters",
		Title: "robustness counters over the chaos replay",
		Note: "panics_recovered = solver panics confined to their contract; circuit_opens = per-symbol breaker trips; " +
			"quarantined = contracts currently pulled from repricing flights (stacks preserved); budget_in_use = spawn " +
			"tokens still held at the end (must be 0); slow_traces = " + chaosSlowSym + " flights captured by the " +
			"slow-solve tripwire with per-stage breakdowns (what /debug/slow serves live; must be > 0)",
		Header: []string{"panics_recovered", "degraded_serves", "circuit_opens", "quarantined", "budget_in_use", "slow_traces"},
		Rows: [][]string{{
			fmt.Sprint(after.PanicsRecovered - before.PanicsRecovered),
			fmt.Sprint(after.DegradedServes - before.DegradedServes),
			fmt.Sprint(after.CircuitOpens - before.CircuitOpens),
			fmt.Sprint(quarantined),
			fmt.Sprint(par.InUse()),
			fmt.Sprint(slowCaptured),
		}},
	}
	return []*Table{avail, counters}, nil
}
