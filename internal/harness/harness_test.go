package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smokeCfg keeps every sweep tiny so the full suite runs in seconds.
func smokeCfg(out *bytes.Buffer, dir string) Config {
	return Config{MaxT: 1 << 11, MaxQuadT: 1 << 11, MaxTraceT: 1 << 10, Out: out, OutDir: dir}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := RunByID("all", smokeCfg(&out, dir)); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, id := range []string{"fig5a", "fig5b", "fig5c", "fig6a", "fig7a", "fig7f", "fig10c", "table5", "table2", "accuracy-agreement", "ablation-basecase"} {
		if !strings.Contains(text, id) {
			t.Errorf("output missing experiment %s", id)
		}
	}
	// CSVs written for every rendered table.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 15 {
		t.Errorf("expected >= 15 CSV files, found %d", len(files))
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig5a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "T,fft-bopm,ql-bopm") {
		t.Errorf("fig5a.csv header unexpected: %q", strings.SplitN(string(b), "\n", 2)[0])
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := RunByID("nope", smokeCfg(&out, "")); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentsRegistered(t *testing.T) {
	want := map[string]bool{
		"fig5a": false, "fig5b": false, "fig5c": false,
		"fig6": false, "fig7": false, "fig10": false,
		"table5": false, "table2": false, "accuracy": false, "ablation": false,
	}
	for _, e := range Experiments() {
		if _, ok := want[e.ID]; ok {
			want[e.ID] = true
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestFitExponent(t *testing.T) {
	// Perfect quadratic data fits exponent 2.
	xs := []int{256, 512, 1024, 2048}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = float64(x) * float64(x) * 3e-9
	}
	if e := fitExponent(xs, ys); e < 1.99 || e > 2.01 {
		t.Errorf("fitted exponent %v, want 2", e)
	}
}
