package harness

import (
	"fmt"
	"math"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/topm"
)

// Accuracy experiment: the paper's implicit claim that all algorithms price
// identically, plus convergence of the discretizations to the closed form.

func init() {
	register(Experiment{"accuracy", "fast-vs-naive agreement and convergence to Black-Scholes", accuracy})
}

func accuracy(cfg Config) ([]*Table, error) {
	prm := option.Default()
	agree := &Table{
		ID:     "accuracy-agreement",
		Title:  "relative |fast - naive| per model",
		Header: []string{"T", "bopm", "topm", "bsm"},
	}
	for _, T := range sweep(1<<10, min(cfg.MaxQuadT, 1<<14)) {
		row := []string{fmt.Sprint(T)}

		mb, err := bopm.New(prm, T)
		if err != nil {
			return nil, err
		}
		fb, err := mb.PriceFast()
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.2e", relErr(fb, mb.PriceNaive(option.Call))))

		mt, err := topm.New(prm, T)
		if err != nil {
			return nil, err
		}
		ft, err := mt.PriceFast()
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.2e", relErr(ft, mt.PriceNaive(option.Call))))

		ms, err := bsm.New(prm, T, 0)
		if err != nil {
			return nil, err
		}
		fs, err := ms.PriceFast()
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.2e", relErr(fs, ms.PriceNaive())))

		agree.Rows = append(agree.Rows, row)
	}

	conv := &Table{
		ID:     "accuracy-convergence",
		Title:  "European lattice/FD price vs Black-Scholes closed form (call for lattices, put for BSM)",
		Header: []string{"T", "bopm-err", "topm-err", "bsm-err"},
	}
	bsCall := option.BlackScholes(prm, option.Call)
	bsPut := option.BlackScholes(prm, option.Put)
	for _, T := range sweep(1<<8, min(cfg.MaxT, 1<<14)) {
		mb, err := bopm.New(prm, T)
		if err != nil {
			return nil, err
		}
		mt, err := topm.New(prm, T)
		if err != nil {
			return nil, err
		}
		ms, err := bsm.New(prm, T, 0)
		if err != nil {
			return nil, err
		}
		conv.Rows = append(conv.Rows, []string{
			fmt.Sprint(T),
			fmt.Sprintf("%.2e", math.Abs(mb.PriceEuropean(option.Call)-bsCall)),
			fmt.Sprintf("%.2e", math.Abs(mt.PriceEuropean(option.Call)-bsCall)),
			fmt.Sprintf("%.2e", math.Abs(ms.PriceEuropean()-bsPut)),
		})
	}
	return []*Table{agree, conv}, nil
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}
