package harness

import (
	"fmt"
	"math"

	"github.com/nlstencil/amop"
)

// The sweep-scenarios experiment measures the scenario-sweep engine against
// the naive fan-out it replaces: one independent PriceBatch per scenario,
// every repricing at full resolution. The sweep amortizes the grid three
// ways — plan-level dedup of the (contract, scenario) product, scenario
// repricings at half resolution control-variated against the full-resolution
// base, and cross-resolution sharing of the stencil symbol tables between
// the two step counts — and the table reports both the speedup and the P&L
// accuracy cost of the control variate (max absolute deviation from the
// naive full-resolution P&L across all cells).

func init() {
	register(Experiment{"sweep-scenarios", "scenario-sweep engine vs naive per-scenario PriceBatch fan-out", sweepScenarios})
}

// sweepBook builds the 45-contract book: 15 strikes x 3 expiries on one
// underlying, with every third strike an American put (BSM fast path) so the
// grid exercises both solver families.
func sweepBook(steps int) []amop.Request {
	base := amop.Option{S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163}
	var reqs []amop.Request
	for i := 0; i < 15; i++ {
		o := base
		o.K = 100 + 4*float64(i)
		if i%3 == 2 {
			o.Type = amop.Put
		}
		for _, e := range []float64{0.25, 0.5, 1.0} {
			o.E = e
			reqs = append(reqs, amop.Request{
				Option: o,
				Model:  amop.AutoModel,
				Config: amop.Config{Steps: steps},
			})
		}
	}
	return reqs
}

// sweepGrid is the 25-scenario risk grid: 5 spot x 5 vol bumps, including
// the unbumped point.
func sweepGrid() []amop.Scenario {
	return amop.ScenarioGrid{
		SpotBumps: []float64{-0.10, -0.05, 0, 0.05, 0.10},
		VolBumps:  []float64{-0.04, -0.02, 0, 0.02, 0.04},
	}.Scenarios()
}

// naiveFanout prices the grid the pre-sweep way: one PriceBatch per
// scenario, full resolution everywhere.
func naiveFanout(reqs []amop.Request, scenarios []amop.Scenario) ([][]amop.Result, error) {
	out := make([][]amop.Result, len(scenarios))
	for s, sc := range scenarios {
		bumped := make([]amop.Request, len(reqs))
		for c, req := range reqs {
			req.Option = sc.Apply(req.Option)
			bumped[c] = req
		}
		out[s] = amop.PriceBatch(bumped, amop.BatchOptions{})
		for c, r := range out[s] {
			if r.Err != nil {
				return nil, fmt.Errorf("naive fan-out scenario %d contract %d: %w", s, c, r.Err)
			}
		}
	}
	return out, nil
}

func sweepScenarios(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "sweep-scenarios",
		Title: "45-contract x 25-scenario risk grid: sweep engine vs naive per-scenario fan-out (seconds)",
		Note: "naive = one full-resolution PriceBatch per scenario; sweep = ScenarioSweep (deduplicated plan, " +
			"half-resolution scenarios control-variated against the full-resolution base); max_dpnl = worst " +
			"P&L deviation of the sweep from naive full resolution; crossres = cross-resolution symbol transfers in one cold sweep",
		Header: []string{"steps", "naive_s", "sweep_s", "speedup", "cells", "unique_repricings", "max_dpnl", "crossres_hits"},
	}
	scenarios := sweepGrid()
	sBase := -1
	for s, sc := range scenarios {
		if sc.IsBase() {
			sBase = s
		}
	}
	for _, steps := range []int{2000, 8000} {
		if steps > cfg.MaxT {
			break
		}
		reqs := sweepBook(steps)

		// Cold pass: counters around the first sweep attribute the
		// cross-resolution transfers, then the results feed the accuracy
		// column; it doubles as the warmup for the timed passes.
		before := amop.ReadPerfCounters()
		sw := amop.ScenarioSweep(reqs, scenarios, amop.SweepOptions{})
		after := amop.ReadPerfCounters()
		for i, r := range sw.Results {
			if r.Err != nil {
				return nil, fmt.Errorf("sweep cell %d: %w", i, r.Err)
			}
		}
		naive, err := naiveFanout(reqs, scenarios)
		if err != nil {
			return nil, err
		}
		maxDPnL := 0.0
		for c := range reqs {
			for s := range scenarios {
				naivePnL := naive[s][c].Price - naive[sBase][c].Price
				maxDPnL = math.Max(maxDPnL, math.Abs(sw.At(c, s).PnL-naivePnL))
			}
		}

		var runErr error
		sweepT := timeIt(func() {
			sw := amop.ScenarioSweep(reqs, scenarios, amop.SweepOptions{})
			for _, r := range sw.Results {
				if r.Err != nil && runErr == nil {
					runErr = r.Err
				}
			}
		})
		naiveT := timeIt(func() {
			if _, err := naiveFanout(reqs, scenarios); err != nil && runErr == nil {
				runErr = err
			}
		})
		if runErr != nil {
			return nil, runErr
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(steps),
			secs(naiveT), secs(sweepT), ratio(naiveT, sweepT),
			fmt.Sprint(sw.Stats.Cells), fmt.Sprint(sw.Stats.UniqueRepricings),
			fmt.Sprintf("%.3g", maxDPnL),
			fmt.Sprint(after.SpectrumCrossResHits - before.SpectrumCrossResHits),
		})
	}
	return []*Table{t}, nil
}
