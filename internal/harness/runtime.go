package harness

import (
	"fmt"
	"runtime"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/topm"
)

// Wall-clock experiments: Figure 5 (a,b,c), Table 5, and the empirical
// work-scaling check of Table 2.

func init() {
	register(Experiment{"fig5a", "parallel running time, BOPM American call (fft-bopm vs ql-bopm vs zb-bopm)", fig5a})
	register(Experiment{"fig5b", "parallel running time, TOPM American call (fft-topm vs vanilla-topm)", fig5b})
	register(Experiment{"fig5c", "parallel running time, BSM American put (fft-bsm vs vanilla-bsm)", fig5c})
	register(Experiment{"table5", "parallel run time vs worker count p at T=2^15 (fft-bopm vs ql-bopm)", table5})
	register(Experiment{"table2", "empirical work-scaling exponents vs Table 2 asymptotics", table2})
	register(Experiment{"ablation", "fast-solver base-case and tile-size sensitivity", ablation})
}

func fig5a(cfg Config) ([]*Table, error) {
	prm := option.Default()
	t := &Table{
		ID:     "fig5a",
		Title:  "BOPM parallel running time (seconds)",
		Note:   fmt.Sprintf("host: %d cores; quadratic baselines capped at T=%d", runtime.NumCPU(), cfg.MaxQuadT),
		Header: []string{"T", "fft-bopm", "ql-bopm", "zb-bopm", "speedup(ql/fft)"},
	}
	for _, T := range sweep(1<<11, cfg.MaxT) {
		m, err := bopm.New(prm, T)
		if err != nil {
			return nil, err
		}
		tf := timeIt(func() {
			if _, err := m.PriceFast(); err != nil {
				panic(err)
			}
		})
		ql, zb, spd := "-", "-", "-"
		if T <= cfg.MaxQuadT {
			tq := timeIt(func() { m.PriceNaiveParallel(option.Call) })
			tz := timeIt(func() { m.PriceTiled(option.Call, 0, 0) })
			ql, zb, spd = secs(tq), secs(tz), ratio(tq, tf)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(T), secs(tf), ql, zb, spd})
	}
	return []*Table{t}, nil
}

func fig5b(cfg Config) ([]*Table, error) {
	prm := option.Default()
	t := &Table{
		ID:     "fig5b",
		Title:  "TOPM parallel running time (seconds)",
		Note:   fmt.Sprintf("host: %d cores; vanilla baseline capped at T=%d", runtime.NumCPU(), cfg.MaxQuadT),
		Header: []string{"T", "fft-topm", "vanilla-topm", "speedup"},
	}
	for _, T := range sweep(1<<11, cfg.MaxT) {
		m, err := topm.New(prm, T)
		if err != nil {
			return nil, err
		}
		tf := timeIt(func() {
			if _, err := m.PriceFast(); err != nil {
				panic(err)
			}
		})
		van, spd := "-", "-"
		if T <= cfg.MaxQuadT {
			tv := timeIt(func() { m.PriceNaiveParallel(option.Call) })
			van, spd = secs(tv), ratio(tv, tf)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(T), secs(tf), van, spd})
	}
	return []*Table{t}, nil
}

func fig5c(cfg Config) ([]*Table, error) {
	prm := option.Default()
	t := &Table{
		ID:     "fig5c",
		Title:  "BSM parallel running time (seconds)",
		Note:   fmt.Sprintf("host: %d cores; vanilla baseline capped at T=%d", runtime.NumCPU(), cfg.MaxQuadT),
		Header: []string{"T", "fft-bsm", "vanilla-bsm", "speedup"},
	}
	for _, T := range sweep(1<<11, cfg.MaxT) {
		m, err := bsm.New(prm, T, 0)
		if err != nil {
			return nil, err
		}
		tf := timeIt(func() {
			if _, err := m.PriceFast(); err != nil {
				panic(err)
			}
		})
		van, spd := "-", "-"
		if T <= cfg.MaxQuadT {
			tv := timeIt(func() { m.PriceNaiveParallel() })
			van, spd = secs(tv), ratio(tv, tf)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(T), secs(tf), van, spd})
	}
	return []*Table{t}, nil
}

func table5(cfg Config) ([]*Table, error) {
	prm := option.Default()
	T := 1 << 15
	if T > cfg.MaxT {
		T = cfg.MaxT
	}
	m, err := bopm.New(prm, T)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table5",
		Title:  fmt.Sprintf("parallel run times (ms) for T=%d as p varies", T),
		Note:   fmt.Sprintf("host has %d cores; p beyond that oversubscribes", runtime.NumCPU()),
		Header: []string{"p", "fft-bopm", "ql-bopm"},
	}
	defer par.SetWorkers(0)
	for _, p := range []int{1, 2, 4, 8, 16, 32, 48} {
		if p > 2*runtime.NumCPU() {
			break
		}
		par.SetWorkers(p)
		tf := timeIt(func() {
			if _, err := m.PriceFast(); err != nil {
				panic(err)
			}
		})
		tq := timeIt(func() { m.PriceNaiveParallel(option.Call) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p),
			fmt.Sprintf("%.2f", tf*1e3),
			fmt.Sprintf("%.2f", tq*1e3),
		})
	}
	return []*Table{t}, nil
}

func table2(cfg Config) ([]*Table, error) {
	prm := option.Default()
	maxFit := cfg.MaxQuadT
	ts := sweep(1<<11, maxFit)
	series := map[string][]float64{}
	for _, T := range ts {
		m, err := bopm.New(prm, T)
		if err != nil {
			return nil, err
		}
		series["fft-bopm"] = append(series["fft-bopm"], timeIt(func() {
			if _, err := m.PriceFast(); err != nil {
				panic(err)
			}
		}))
		series["nested-loop(serial)"] = append(series["nested-loop(serial)"], timeIt(func() { m.PriceNaive(option.Call) }))
		series["tiled-loop"] = append(series["tiled-loop"], timeIt(func() { m.PriceTiled(option.Call, 0, 0) }))
		series["recursive-tiling"] = append(series["recursive-tiling"], timeIt(func() { m.PriceRecursive(option.Call) }))
	}
	t := &Table{
		ID:     "table2",
		Title:  "empirical runtime scaling exponents (serial work classes of Table 2)",
		Note:   fmt.Sprintf("fit of log2(time) vs log2(T) over T=2^11..%d; expect ~2 for the Theta(T^2) rows, ~1+o(1) for fft", maxFit),
		Header: []string{"algorithm", "paper work bound", "fitted exponent"},
	}
	expect := map[string]string{
		"nested-loop(serial)": "Theta(T^2)",
		"tiled-loop":          "Theta(T^2)",
		"recursive-tiling":    "Theta(T^2)",
		"fft-bopm":            "Theta(T log^2 T)",
	}
	for _, name := range []string{"nested-loop(serial)", "tiled-loop", "recursive-tiling", "fft-bopm"} {
		t.Rows = append(t.Rows, []string{name, expect[name], fmt.Sprintf("%.2f", fitExponent(ts, series[name]))})
	}
	return []*Table{t}, nil
}

func ablation(cfg Config) ([]*Table, error) {
	prm := option.Default()
	T := min(1<<15, cfg.MaxT)
	m, err := bopm.New(prm, T)
	if err != nil {
		return nil, err
	}
	base := &Table{
		ID:     "ablation-basecase",
		Title:  fmt.Sprintf("fast-solver recursion cutoff sweep at T=%d (paper: 8 is best)", T),
		Header: []string{"base case", "fft-bopm seconds"},
	}
	for _, b := range []int{2, 4, 8, 16, 32, 64, 128} {
		m.SetBaseCase(b)
		tf := timeIt(func() {
			if _, err := m.PriceFast(); err != nil {
				panic(err)
			}
		})
		base.Rows = append(base.Rows, []string{fmt.Sprint(b), secs(tf)})
	}
	m.SetBaseCase(0)

	Tq := min(1<<14, cfg.MaxQuadT)
	mq, err := bopm.New(prm, Tq)
	if err != nil {
		return nil, err
	}
	tiles := &Table{
		ID:     "ablation-tiles",
		Title:  fmt.Sprintf("tiled-loop tile-size sweep at T=%d", Tq),
		Header: []string{"tileW", "tileH", "zb-bopm seconds"},
	}
	for _, wh := range [][2]int{{256, 32}, {1024, 128}, {2048, 256}, {2048, 512}, {4096, 512}, {8192, 1024}} {
		tt := timeIt(func() { mq.PriceTiled(option.Call, wh[0], wh[1]) })
		tiles.Rows = append(tiles.Rows, []string{fmt.Sprint(wh[0]), fmt.Sprint(wh[1]), secs(tt)})
	}
	return []*Table{base, tiles}, nil
}
