package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nlstencil/amop"
)

// The serve-load experiment measures the live pricing server against the
// naive serving strategy it replaces — every quote prices its contract from
// scratch at the raw market — under a replayed tick/quote stream on the
// 45-contract book. The server's three levers are exactly the stream's
// redundancy: most ticks wander inside their quantization buckets (re-solve
// nothing), concurrent quotes after a real move coalesce into one repricing
// batch, and everything else is a cache serve. The table reports served QPS
// and latency percentiles per mode; a second table records the serving
// counters for the replay, pinning that the incremental path (TickSkips) and
// the coalescer (CoalescedRequests) actually carried the load.

func init() {
	register(Experiment{"serve-load", "live pricing server vs naive per-request pricing under a replayed tick/quote stream", serveLoad})
}

// serveStream is one deterministic replay: a spot random walk plus the quote
// fan-out after each tick. The walk's steps are small relative to the spot
// bucket, so most ticks stay inside their cell — the redundancy profile of a
// live feed, where consecutive ticks rarely move the repricing problem.
type serveStream struct {
	ticks    []amop.Market
	quoteIDs [][]int // per tick: contract ids to quote, fanned over workers
}

func newServeStream(base amop.Market, ticks, quotesPerTick, contracts int) serveStream {
	rng := rand.New(rand.NewSource(1))
	st := serveStream{
		ticks:    make([]amop.Market, ticks),
		quoteIDs: make([][]int, ticks),
	}
	m := base
	for i := range st.ticks {
		m.Spot += 0.12 * (2*rng.Float64() - 1)
		if i%25 == 24 {
			m.Vol += 0.012 * (2*rng.Float64() - 1)
		}
		st.ticks[i] = m
		ids := make([]int, quotesPerTick)
		for j := range ids {
			ids[j] = rng.Intn(contracts)
		}
		st.quoteIDs[i] = ids
	}
	return st
}

// replay runs the stream: one tick, then the tick's quotes fanned over
// workers goroutines, for every tick in order. quote is the per-request
// serving path under test; latencies for every quote are appended to lat.
func (st serveStream) replay(workers int, tick func(amop.Market) error, quote func(id int) error) (lat []time.Duration, err error) {
	lat = make([]time.Duration, 0, len(st.ticks)*len(st.quoteIDs[0]))
	var mu sync.Mutex
	var firstErr atomic.Value
	for i, m := range st.ticks {
		if err := tick(m); err != nil {
			return nil, fmt.Errorf("tick %d: %w", i, err)
		}
		ids := st.quoteIDs[i]
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]time.Duration, 0, len(ids))
				for {
					j := int(next.Add(1)) - 1
					if j >= len(ids) {
						break
					}
					start := time.Now()
					if err := quote(ids[j]); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					local = append(local, time.Since(start))
				}
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		if err := firstErr.Load(); err != nil {
			return nil, err.(error)
		}
	}
	return lat, nil
}

func percentile(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

func serveLoad(cfg Config) ([]*Table, error) {
	steps := 2000
	if steps > cfg.MaxT {
		steps = cfg.MaxT
	}
	const (
		ticks         = 120
		quotesPerTick = 64
		// workers is the quote fan-out concurrency — request handlers, not
		// CPU workers, so it is deliberately not tied to GOMAXPROCS: even on
		// one core, concurrent handlers are what the coalescer exists for.
		workers = 8
	)
	book := sweepBook(steps)
	base := amop.Market{Spot: book[0].Option.S, Vol: book[0].Option.V, Rate: book[0].Option.R}
	stream := newServeStream(base, ticks, quotesPerTick, len(book))

	load := &Table{
		ID:    "serve-load",
		Title: fmt.Sprintf("live pricing server vs naive per-request pricing: %d-contract book, %d ticks x %d quotes at T=%d", len(book), ticks, quotesPerTick, steps),
		Note: "naive = every quote solves its contract from scratch at the raw market; server = amop.Server with " +
			"spot/vol/rate buckets 0.25/0.01/0.0005, quotes served from the quantized surface with coalesced " +
			"repricing flights on bucket moves (MaxStaleness=0: dirty quotes block on the re-solve)",
		Header: []string{"mode", "quotes", "elapsed_s", "qps", "p50_ms", "p99_ms"},
	}

	// Naive mode: the market is a mutable raw state; every quote prices its
	// contract from scratch at that state (the process-wide spectrum cache
	// still applies, exactly as it would for any pre-server fan-out).
	var mu sync.Mutex
	raw := base
	naiveStart := time.Now()
	naiveLat, err := stream.replay(workers,
		func(m amop.Market) error { mu.Lock(); raw = m; mu.Unlock(); return nil },
		func(id int) error {
			mu.Lock()
			m := raw
			mu.Unlock()
			req := book[id]
			req.Option.S, req.Option.V, req.Option.R = m.Spot, m.Vol, m.Rate
			res := amop.PriceBatch([]amop.Request{req}, amop.BatchOptions{})
			return res[0].Err
		})
	if err != nil {
		return nil, fmt.Errorf("naive replay: %w", err)
	}
	naiveElapsed := time.Since(naiveStart).Seconds()
	naiveQPS := float64(len(naiveLat)) / naiveElapsed

	// Server mode: the same stream through the live surface.
	entries := make([]amop.BookEntry, len(book))
	for i, r := range book {
		entries[i] = amop.BookEntry{Option: r.Option, Model: r.Model, Config: r.Config}
	}
	srv, err := amop.NewServer(entries, amop.ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	if err != nil {
		return nil, err
	}
	before := amop.ReadPerfCounters()
	serverStart := time.Now()
	serverLat, err := stream.replay(workers,
		func(m amop.Market) error { _, err := srv.Tick("", m); return err },
		func(id int) error { _, err := srv.Quote(id); return err })
	if err != nil {
		return nil, fmt.Errorf("server replay: %w", err)
	}
	serverElapsed := time.Since(serverStart).Seconds()
	serverQPS := float64(len(serverLat)) / serverElapsed
	after := amop.ReadPerfCounters()

	row := func(mode string, lat []time.Duration, elapsed, qps float64) {
		load.Rows = append(load.Rows, []string{
			mode, fmt.Sprint(len(lat)), secs(elapsed), fmt.Sprintf("%.0f", qps),
			fmt.Sprintf("%.4g", percentile(lat, 0.50)), fmt.Sprintf("%.4g", percentile(lat, 0.99)),
		})
	}
	row("naive", naiveLat, naiveElapsed, naiveQPS)
	row("server", serverLat, serverElapsed, serverQPS)
	load.Rows = append(load.Rows, []string{"speedup", "", "", ratio(serverQPS, naiveQPS), "", ""})

	counters := &Table{
		ID:    "serve-counters",
		Title: "serving counters over the server replay",
		Note: "tick_skips = contracts ticks left inside their quantization cell (no re-solve); coalesced = quotes " +
			"that joined an in-flight repricing batch; cache_serves = quotes answered straight from the clean surface",
		Header: []string{"tick_reprices", "tick_skips", "coalesced", "stale_serves", "cache_serves"},
		Rows: [][]string{{
			fmt.Sprint(after.TickReprices - before.TickReprices),
			fmt.Sprint(after.TickSkips - before.TickSkips),
			fmt.Sprint(after.CoalescedRequests - before.CoalescedRequests),
			fmt.Sprint(after.StaleServes - before.StaleServes),
			fmt.Sprint(after.ServeCacheHits - before.ServeCacheHits),
		}},
	}
	return []*Table{load, counters}, nil
}
