package harness

import (
	"fmt"
	"math"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/fft"
)

// The radix4 experiment A/Bs the two levers of the PR that introduced it:
// the mixed radix-4/radix-2 FFT kernel against the plain radix-2 kernel it
// replaced (complex forward and real-input round trip, across sizes spanning
// the serial and parallel regimes), and the batch engine's repricing
// amortization on the end-to-end chain workload (Greeks + implied vols),
// where the radix switch and the memo switch are toggled independently.

func init() {
	register(Experiment{"radix4", "mixed radix-4/2 FFT kernel vs radix-2, and chain-level repricing amortization", radix4})
}

func radix4(cfg Config) ([]*Table, error) {
	micro := &Table{
		ID:     "radix4-fft",
		Title:  "FFT kernel: mixed radix-4/2 vs radix-2 (seconds per transform)",
		Note:   "fwd = complex in-place forward; rfft = real-input forward+inverse round trip; sizes above the parallel threshold exercise the stage-parallel paths; SoA pinned off in both arms so the radix toggle is live (SoA vs complex is the simd-soa experiment)",
		Header: []string{"n", "fwd_r4_s", "fwd_r2_s", "fwd_speedup", "rfft_r4_s", "rfft_r2_s", "rfft_speedup"},
	}
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		if n > 4*cfg.MaxT {
			break
		}
		src := make([]complex128, n)
		for i := range src {
			src[i] = complex(math.Cos(float64(i)), math.Sin(float64(i)))
		}
		buf := make([]complex128, n)
		p := fft.PlanFor(n)
		fwd := func() {
			copy(buf, src)
			p.Forward(buf)
		}

		rp := fft.RPlanFor(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Cos(float64(i))
		}
		spec := make([]complex128, rp.HalfLen())
		rfft := func() {
			rp.Forward(x, spec)
			rp.Inverse(spec, x)
		}

		// Pin SoA off for both arms: the radix toggle only reaches the
		// dispatch when the SoA path (which checks first) is disabled, so
		// this A/B times the complex kernels it names. The SoA-vs-complex
		// comparison lives in the simd-soa experiment.
		prevSoA := fft.SetSoA(false)
		fwd4, rfft4 := timeIt(fwd), timeIt(rfft)
		prev := fft.SetRadix4(false)
		fwd2, rfft2 := timeIt(fwd), timeIt(rfft)
		fft.SetRadix4(prev)
		fft.SetSoA(prevSoA)

		micro.Rows = append(micro.Rows, []string{
			fmt.Sprint(n),
			secs(fwd4), secs(fwd2), ratio(fwd2, fwd4),
			secs(rfft4), secs(rfft2), ratio(rfft2, rfft4),
		})
	}

	chain := &Table{
		ID:     "radix4-chain",
		Title:  "12-quote chain with Greeks + implied vols: radix and memo A/B (seconds)",
		Note:   "full = production path (SoA where accelerated) + repricing memo; r2 = complex radix-2 kernel (SoA pinned off); nomemo = memo disabled; memo hits/misses and hit rate from one full-path chain",
		Header: []string{"steps", "full_s", "r2_s", "r2/full", "nomemo_s", "nomemo/full", "memo_hits", "memo_misses", "hit_rate"},
	}
	underlying := amop.Option{Type: amop.Call, S: 127.62, R: 0.00163, V: 0.21, Y: 0.0163}
	strikes := []float64{110, 120, 125, 130, 135, 140}
	expiries := []float64{0.5, 1.0}
	runChain := func(opts amop.ChainOptions) error {
		for i, q := range amop.Chain(underlying, strikes, expiries, opts) {
			if q.Err != nil {
				return fmt.Errorf("quote %d: %w", i, q.Err)
			}
		}
		return nil
	}
	for _, steps := range []int{2000, 8000} {
		if steps > cfg.MaxT {
			break
		}
		opts := amop.ChainOptions{Steps: steps}
		if err := runChain(opts); err != nil { // warm plans, spectra, scratch
			return nil, err
		}
		before := amop.ReadPerfCounters()
		if err := runChain(opts); err != nil {
			return nil, err
		}
		after := amop.ReadPerfCounters()
		hits := after.RepricingMemoHits - before.RepricingMemoHits
		misses := after.RepricingMemoMisses - before.RepricingMemoMisses

		var runErr error
		time := func(o amop.ChainOptions) float64 {
			return timeIt(func() {
				if err := runChain(o); err != nil && runErr == nil {
					runErr = err
				}
			})
		}
		full := time(opts)
		// The r2 arm must pin SoA off too, or the radix toggle would be
		// ignored and this would re-time the production path.
		prevSoA := fft.SetSoA(false)
		prev := fft.SetRadix4(false)
		r2 := time(opts)
		fft.SetRadix4(prev)
		fft.SetSoA(prevSoA)
		nomemo := time(amop.ChainOptions{Steps: steps, DisableMemo: true})
		if runErr != nil {
			return nil, runErr
		}

		hitRate := "-"
		if lookups := hits + misses; lookups > 0 {
			hitRate = fmt.Sprintf("%.4f", float64(hits)/float64(lookups))
		}
		chain.Rows = append(chain.Rows, []string{
			fmt.Sprint(steps),
			secs(full), secs(r2), ratio(r2, full),
			secs(nomemo), ratio(nomemo, full),
			fmt.Sprint(hits), fmt.Sprint(misses), hitRate,
		})
	}
	return []*Table{micro, chain}, nil
}
