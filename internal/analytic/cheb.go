package analytic

import (
	"math"
	"sync"
	"sync/atomic"
)

// chebTable holds the size-n collocation tables shared by every boundary
// solve at that node count: the Chebyshev-Lobatto abscissae z_i = -cos(i
// pi/n) (ordered so i=0 is tau=0 and i=n is tau=T) and the cosine matrix
// cos(i k pi / n) the coefficient transform contracts nodal values against.
// Tables are immutable once published, so concurrent batch workers share
// them freely; ChebCacheStats exposes the hit rate for the race tests.
type chebTable struct {
	n     int
	z     []float64 // z_i = -cos(i pi / n), i = 0..n
	cosik []float64 // cos(i*k*pi/n) at [i*(n+1)+k]
}

var (
	chebMu     sync.RWMutex
	chebTables = make(map[int]*chebTable)
	chebHits   atomic.Int64
	chebMiss   atomic.Int64
)

// chebFor returns the shared collocation table for n+1 nodes.
func chebFor(n int) *chebTable {
	chebMu.RLock()
	t := chebTables[n]
	chebMu.RUnlock()
	if t != nil {
		chebHits.Add(1)
		return t
	}
	chebMiss.Add(1)
	fresh := &chebTable{
		n:     n,
		z:     make([]float64, n+1),
		cosik: make([]float64, (n+1)*(n+1)),
	}
	for i := 0; i <= n; i++ {
		fresh.z[i] = -math.Cos(float64(i) * math.Pi / float64(n))
		for k := 0; k <= n; k++ {
			fresh.cosik[i*(n+1)+k] = math.Cos(float64(i*k) * math.Pi / float64(n))
		}
	}
	chebMu.Lock()
	if prior, ok := chebTables[n]; ok {
		fresh = prior
	} else {
		chebTables[n] = fresh
	}
	chebMu.Unlock()
	return fresh
}

// ChebCacheStats reports the shared collocation-table cache's cumulative hit
// and miss counts (concurrency tests pin sharing through these).
func ChebCacheStats() (hits, misses int64) {
	return chebHits.Load(), chebMiss.Load()
}

// coeffs computes the Chebyshev interpolation coefficients c of the nodal
// values vals (at the table's abscissae), written into dst (len n+1). The
// interpolant is p(z) = sum_k c_k T_k(z) with the endpoint halving already
// folded into c_0 and c_n, so clenshaw can consume c directly.
//
// With nodes z_i = -cos(theta_i), T_k(z_i) = (-1)^k cos(k theta_i); the
// (-1)^k is folded in here.
func (t *chebTable) coeffs(vals, dst []float64) {
	n := t.n
	for k := 0; k <= n; k++ {
		// Trapezoid-style sum with halved endpoints: i=0 has cos term 1,
		// i=n has cos(k pi) = (-1)^k.
		s := 0.5 * (vals[0] + vals[n]*t.cosik[n*(n+1)+k])
		for i := 1; i < n; i++ {
			s += vals[i] * t.cosik[i*(n+1)+k]
		}
		a := 2 * s / float64(n)
		if k%2 == 1 {
			a = -a
		}
		dst[k] = a
	}
	dst[0] *= 0.5
	dst[n] *= 0.5
}

// clenshaw evaluates sum_k c_k T_k(z) for z in [-1, 1].
func clenshaw(c []float64, z float64) float64 {
	var b1, b2 float64
	for k := len(c) - 1; k >= 1; k-- {
		b1, b2 = c[k]+2*z*b1-b2, b1
	}
	return c[0] + z*b1 - b2
}
