package analytic

import (
	"math"
	"testing"

	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/option"
)

// latticePut prices an American put on the paper's FD lattice at the given
// step count.
func latticePut(t *testing.T, p option.Params, steps int) float64 {
	t.Helper()
	m, err := bsm.New(p, steps, 0)
	if err != nil {
		t.Fatalf("bsm.New: %v", err)
	}
	v, err := m.PriceFast()
	if err != nil {
		t.Fatalf("PriceFast: %v", err)
	}
	return v
}

// refPut is the lattice reference for the analytic price: Richardson
// extrapolation 2 P(2n) - P(n) of the O(1/n) discretization error, with n
// doubled until the last TWO extrapolant increments are both inside half the
// target tolerance (the obstacle projection makes convergence non-monotone,
// so a single small increment can be a coincidence of the oscillation, not
// convergence). Returns the reference and the residual lattice uncertainty,
// which the caller must fold into its acceptance budget.
func refPut(t *testing.T, p option.Params, tol float64) (ref, drift float64) {
	t.Helper()
	plain := make(map[int]float64)
	price := func(n int) float64 {
		v, ok := plain[n]
		if !ok {
			v = latticePut(t, p, n)
			plain[n] = v
		}
		return v
	}
	rich := func(n int) float64 { return 2*price(2*n) - price(n) }

	scale := 1 + math.Abs(price(500))
	r0, r1 := rich(1000), rich(2000)
	for n := 4000; ; n *= 2 {
		ref = rich(n)
		drift = math.Max(math.Abs(ref-r1), math.Abs(r1-r0))
		if drift <= 0.5*tol*scale || n >= 32000 {
			return ref, drift
		}
		r0, r1 = r1, ref
	}
}

// relErr is the symmetric relative disagreement metric the repo's
// cross-validation uses throughout.
func relErr(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

var accuracyGrid = []option.Params{
	{S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1}, // the paper's benchmark contract
	{S: 100, K: 100, R: 0.05, V: 0.2, Y: 0, E: 1},
	{S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.08, E: 1},
	{S: 90, K: 100, R: 0.02, V: 0.4, Y: 0.01, E: 2.5},
	{S: 150, K: 100, R: 0.1, V: 0.15, Y: 0.12, E: 0.5},
	{S: 60, K: 100, R: 0.08, V: 0.3, Y: 0, E: 0.25},
	{S: 100, K: 100, R: 0.001, V: 0.58, Y: 0.12, E: 2.4},
	{S: 200, K: 50, R: 0.05, V: 0.25, Y: 0.03, E: 1},
	{S: 100, K: 100, R: 0.03, V: 0.08, Y: 0.05, E: 0.1},
	{S: 80, K: 100, R: 0.07, V: 0.45, Y: 0.02, E: 5},
	{S: 120, K: 100, R: 0.04, V: 0.3, Y: 0.06, E: 0.75},
}

// TestPutVsLattice pins the headline accuracy claim: the analytic put is
// within 1e-6 relative of the converged lattice across the grid.
func TestPutVsLattice(t *testing.T) {
	const tol = 1e-6
	for _, p := range accuracyGrid {
		got, err := Price(p, option.Put)
		if err != nil {
			t.Fatalf("Price(%+v): %v", p, err)
		}
		ref, drift := refPut(t, p, tol)
		scale := 1 + math.Max(math.Abs(got), math.Abs(ref))
		if d := math.Abs(got - ref); d > tol*scale+drift {
			t.Errorf("put %+v: analytic %.10f vs lattice %.10f (diff %.3g, budget %.3g)",
				p, got, ref, d, tol*scale+drift)
		}
	}
}

// TestCallVsLattice checks the call path against an independently
// symmetrized lattice put: C(S, K, r, q) = P(spot=K, strike=S, rate=q,
// div=r). The swap here is applied by the test, not by the package, so a
// bug in the package's own symmetry mapping shows up as a disagreement.
func TestCallVsLattice(t *testing.T) {
	const tol = 1e-6
	for _, p := range accuracyGrid {
		got, err := Price(p, option.Call)
		if err != nil {
			t.Fatalf("Price(%+v): %v", p, err)
		}
		sym := option.Params{S: p.K, K: p.S, R: p.Y, V: p.V, Y: p.R, E: p.E}
		if sym.R == 0 {
			// r = 0 puts are European; compare against the closed form.
			if ref := option.BlackScholes(sym, option.Put); relErr(got, ref) > tol {
				t.Errorf("call %+v: analytic %.10f vs BSM %.10f", p, got, ref)
			}
			continue
		}
		ref, drift := refPut(t, sym, tol)
		scale := 1 + math.Max(math.Abs(got), math.Abs(ref))
		if d := math.Abs(got - ref); d > tol*scale+drift {
			t.Errorf("call %+v: analytic %.10f vs lattice %.10f (diff %.3g, budget %.3g)",
				p, got, ref, d, tol*scale+drift)
		}
	}
}
