// Package analytic prices vanilla American options by spectral collocation
// on the early-exercise boundary — the Andersen-Lake algorithm family — with
// no lattice at all: a QD+ approximation seeds the boundary, an FP-B fixed
// point refines it on Chebyshev nodes, and the early-exercise premium is
// recovered from Kim's integral representation with tanh-sinh quadrature.
// Calls are priced through McDonald-Schroder put-call symmetry, and Greeks
// come from the same boundary (delta/gamma by differentiating the premium
// integrand, theta via the Black-Scholes PDE identity, vega/rho by
// frozen-boundary bumps, exact to first order by the envelope theorem).
//
// The solve is strike-normalized, so an early-exercise boundary depends only
// on (r, q, sigma, T) and one cached solve serves every strike and spot of a
// chain at the same expiry; a whole price is a few microseconds against
// milliseconds for the lattice. The tier refuses contracts outside its
// validity envelope (Eligible) so callers can fall back to the lattice,
// which remains the accuracy reference: cmd/amop-xval cross-validates the
// two tiers on randomized grids in CI.
package analytic

import (
	"math"
	"time"

	"github.com/nlstencil/amop/internal/obs"
	"github.com/nlstencil/amop/internal/option"
)

// normalize maps the contract onto a strike-normalized American put: calls
// swap spot with strike and rate with yield (put-call symmetry), then both
// kinds divide through by the strike. The returned scale converts normalized
// values back to price units.
func normalize(p option.Params, kind option.Kind) (c contract, scale float64) {
	if kind == option.Call {
		c = contract{s: p.K, k: p.S, r: p.Y, q: p.R, sigma: p.V, T: p.E}
	} else {
		c = contract{s: p.S, k: p.K, r: p.R, q: p.Y, sigma: p.V, T: p.E}
	}
	scale = c.k
	c.s /= scale
	c.k = 1
	return c, scale
}

// Price returns the American option value, or an error when the contract is
// outside the analytic validity envelope. With telemetry enabled the solve is
// recorded into the tier-labelled latency histogram, split analytic_cold vs
// analytic_warm by whether the exercise-boundary solve hit its cache.
func Price(p option.Params, kind option.Kind) (float64, error) {
	if err := Eligible(p, kind); err != nil {
		return 0, err
	}
	c, scale := normalize(p, kind)
	if !obs.Enabled() {
		v, _ := putValue(&c)
		return scale * v, nil
	}
	start := time.Now()
	v, cold := putValue(&c)
	tier := "analytic_warm"
	if cold {
		tier = "analytic_cold"
	}
	obs.SolveLatency.With(tier).RecordSince(start)
	return scale * v, nil
}

// putValue prices the normalized American put. cold reports whether the
// exercise-boundary solve missed its cache (see boundaryFor). When a span
// trace is active the boundary solve and the premium quadrature are timed
// into their stages.
func putValue(c *contract) (v float64, cold bool) {
	if c.r == 0 {
		// With no interest to earn on the strike, early exercise is never
		// optimal and the American put collapses to the European.
		return c.europeanPut(c.s, c.T), false
	}
	tr := obs.Active()
	var stageStart time.Time
	if tr != nil {
		stageStart = time.Now()
	}
	var b *Boundary
	b, cold = boundaryFor(c)
	if tr != nil {
		tr.AddSince(obs.StageBoundarySolve, stageStart)
	}
	if c.s <= b.Value(c.T) {
		return c.k - c.s, cold // in the exercise region the value is intrinsic
	}
	if tr != nil {
		stageStart = time.Now()
	}
	v = c.europeanPut(c.s, c.T) + premium(c, b, c.s)
	if tr != nil {
		tr.AddSince(obs.StageQuadrature, stageStart)
	}
	if intr := c.k - c.s; v < intr {
		v = intr
	}
	return v, cold
}

// premium evaluates Kim's early-exercise premium at spot s against a frozen
// boundary b:
//
//	∫_0^T [ r K e^{-ru} Phi(-d-(u, s/B(T-u))) - q s e^{-qu} Phi(-d+(u, s/B(T-u))) ] du
//
// where u runs over calendar time from now, so the boundary is evaluated at
// remaining life T-u. c may carry bumped parameters (vega/rho bumps reuse
// the unbumped boundary; the envelope theorem makes that exact to first
// order, since the value is stationary in the boundary at the optimum).
func premium(c *contract, b *Boundary, s float64) float64 {
	rule := tanhSinh(tsStepPremium)
	halfT := 0.5 * c.T
	var sum float64
	for j := range rule.y {
		u := halfT * rule.op[j]
		rem := halfT * rule.om[j] // T - u, cancellation-free
		dp, dm := c.dpm(u, s/b.Value(rem))
		t := c.r * c.k * math.Exp(-c.r*u) * normCDF(-dm)
		if c.q != 0 {
			t -= c.q * s * math.Exp(-c.q*u) * normCDF(-dp)
		}
		sum += rule.w[j] * t
	}
	return sum * halfT
}
