package analytic

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/nlstencil/amop/internal/option"
)

// randInEnvelope draws parameters inside the validity envelope, rejecting
// draws the envelope would refuse (e.g. the stiffness cap).
func randInEnvelope(rng *rand.Rand) option.Params {
	for {
		p := option.Params{
			S: 50 + 150*rng.Float64(),
			K: 50 + 150*rng.Float64(),
			R: 0.001 + 0.4*rng.Float64(),
			V: 0.05 + 1.2*rng.Float64(),
			Y: 0.4 * rng.Float64(),
			E: 0.01 + 5*rng.Float64(),
		}
		if Eligible(p, option.Put) == nil {
			return p
		}
	}
}

// TestBoundaryMonotone: the put's early-exercise boundary is non-increasing
// in time-to-expiry and bounded by B(0+) = K min(1, r/q).
func TestBoundaryMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randInEnvelope(rng)
		if p.R == 0 {
			continue
		}
		c, _ := normalize(p, option.Put)
		b, _ := boundaryFor(&c)
		prev := b.Value(0)
		if math.Abs(prev-b.X) > 1e-12 {
			t.Fatalf("trial %d: B(0)=%g != X=%g", trial, prev, b.X)
		}
		for i := 1; i <= 200; i++ {
			tau := c.T * float64(i) / 200
			cur := b.Value(tau)
			if cur <= 0 || cur > b.X*(1+1e-12) {
				t.Fatalf("trial %d %+v: B(%g)=%g outside (0, X=%g]", trial, p, tau, cur, b.X)
			}
			// Allow a hair of interpolation wiggle, never real growth.
			if cur > prev*(1+1e-9) {
				t.Fatalf("trial %d %+v: boundary rises %.12g -> %.12g at tau=%g",
					trial, p, prev, cur, tau)
			}
			prev = cur
		}
	}
}

// TestLowerBounds: the American price dominates both the European value and
// the immediate-exercise payoff everywhere in the envelope.
func TestLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		p := randInEnvelope(rng)
		for _, kind := range []option.Kind{option.Put, option.Call} {
			v, err := Price(p, kind)
			if err != nil {
				t.Fatalf("trial %d Price(%+v, %v): %v", trial, p, kind, err)
			}
			scale := 1 + v
			if eur := option.BlackScholes(p, kind); v < eur-1e-9*scale {
				t.Errorf("trial %d %v %+v: price %.12g below European %.12g", trial, kind, p, v, eur)
			}
			if intr := p.Payoff(kind, p.S); v < intr-1e-9*scale {
				t.Errorf("trial %d %v %+v: price %.12g below intrinsic %.12g", trial, kind, p, v, intr)
			}
		}
	}
}

// TestPutCallSymmetryRoundTrip: applying the McDonald-Schroder swap twice
// must land exactly back on the original price, and the package's call price
// must equal the externally symmetrized put.
func TestPutCallSymmetryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		p := randInEnvelope(rng)
		sym := option.Params{S: p.K, K: p.S, R: p.Y, V: p.V, Y: p.R, E: p.E}

		call, err := Price(p, option.Call)
		if err != nil {
			t.Fatalf("call: %v", err)
		}
		symPut, err := Price(sym, option.Put)
		if err != nil {
			t.Fatalf("sym put: %v", err)
		}
		if relErr(call, symPut) > 1e-12 {
			t.Errorf("trial %d %+v: call %.15g != symmetrized put %.15g", trial, p, call, symPut)
		}

		put, err := Price(p, option.Put)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		roundTrip, err := Price(option.Params{S: sym.K, K: sym.S, R: sym.Y, V: sym.V, Y: sym.R, E: sym.E}, option.Put)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if put != roundTrip {
			t.Errorf("trial %d %+v: double swap drifted %.17g -> %.17g", trial, p, put, roundTrip)
		}
	}
}

// TestGreeksAgainstFiniteDifferences: the analytic Greeks must match central
// finite differences of Price itself (which never sees the Greeks code path).
func TestGreeksAgainstFiniteDifferences(t *testing.T) {
	cases := []option.Params{
		{S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.02, E: 1},
		{S: 90, K: 100, R: 0.03, V: 0.35, Y: 0.05, E: 2},
		{S: 120, K: 100, R: 0.08, V: 0.25, Y: 0, E: 0.5},
		{S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1},
	}
	price := func(p option.Params, kind option.Kind) float64 {
		v, err := Price(p, kind)
		if err != nil {
			t.Fatalf("Price(%+v): %v", p, err)
		}
		return v
	}
	for _, p := range cases {
		for _, kind := range []option.Kind{option.Put, option.Call} {
			v, g, err := PriceGreeks(p, kind)
			if err != nil {
				t.Fatalf("PriceGreeks(%+v): %v", p, err)
			}
			if pv := price(p, kind); relErr(v, pv) > 1e-12 {
				t.Errorf("%v %+v: PriceGreeks value %.12g != Price %.12g", kind, p, v, pv)
			}

			bump := func(f func(*option.Params, float64)) (up, dn option.Params) {
				up, dn = p, p
				f(&up, 1)
				f(&dn, -1)
				return
			}
			const hs, hv, hr, he = 1e-2, 1e-4, 1e-5, 1e-5
			up, dn := bump(func(q *option.Params, s float64) { q.S += s * hs })
			fdDelta := (price(up, kind) - price(dn, kind)) / (2 * hs)
			fdGamma := (price(up, kind) - 2*v + price(dn, kind)) / (hs * hs)
			up, dn = bump(func(q *option.Params, s float64) { q.V += s * hv })
			fdVega := (price(up, kind) - price(dn, kind)) / (2 * hv)
			up, dn = bump(func(q *option.Params, s float64) { q.R += s * hr })
			fdRho := (price(up, kind) - price(dn, kind)) / (2 * hr)
			up, dn = bump(func(q *option.Params, s float64) { q.E += s * he })
			fdTheta := -(price(up, kind) - price(dn, kind)) / (2 * he)

			check := func(name string, got, want, tol float64) {
				if math.Abs(got-want) > tol*(1+math.Abs(want)) {
					t.Errorf("%v %+v: %s analytic %.8g vs FD %.8g", kind, p, name, got, want)
				}
			}
			check("delta", g.Delta, fdDelta, 1e-5)
			check("gamma", g.Gamma, fdGamma, 1e-3)
			check("vega", g.Vega, fdVega, 1e-4)
			check("rho", g.Rho, fdRho, 1e-4)
			check("theta", g.Theta, fdTheta, 1e-4)
		}
	}
}

// TestEnvelope: out-of-envelope contracts are refused with ErrEnvelope and
// in-envelope ones are accepted.
func TestEnvelope(t *testing.T) {
	base := option.Params{S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.01, E: 1}
	if err := Eligible(base, option.Put); err != nil {
		t.Fatalf("base contract rejected: %v", err)
	}
	reject := []option.Params{
		{S: 100, K: 100, R: 0.05, V: 0.005, Y: 0.01, E: 1}, // vol too low
		{S: 100, K: 100, R: 0.05, V: 2.5, Y: 0.01, E: 1},   // vol too high
		{S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.01, E: 40},  // expiry too long
		{S: 100, K: 100, R: 0.51, V: 0.2, Y: 0.01, E: 1},   // rate too high
		{S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.51, E: 1},   // yield too high
		{S: 1, K: 100, R: 0.05, V: 0.2, Y: 0.01, E: 1},     // too deep OTM
	}
	for _, p := range reject {
		err := Eligible(p, option.Put)
		if err == nil {
			t.Errorf("contract %+v accepted; want envelope rejection", p)
			continue
		}
		if !errors.Is(err, ErrEnvelope) {
			t.Errorf("contract %+v rejected with %v; want ErrEnvelope", p, err)
		}
		if _, err := Price(p, option.Put); err == nil {
			t.Errorf("Price accepted out-of-envelope contract %+v", p)
		}
	}
	if err := Eligible(option.Params{S: -1, K: 100, R: 0.05, V: 0.2, E: 1}, option.Put); err == nil || errors.Is(err, ErrEnvelope) {
		t.Errorf("invalid params gave %v; want plain validation error", err)
	}
}

// TestConcurrentSharedCaches prices a book of fresh expiries from many
// goroutines at once — racing workers solve the same boundaries through the
// shared Chebyshev, tanh-sinh and boundary caches (first store wins) — then
// re-prices sequentially: the caches may only dedupe work, never change a
// price, so every concurrent result must be bit-identical to the sequential
// one. Run under -race this is the package's cache-coherence gate.
func TestConcurrentSharedCaches(t *testing.T) {
	const workers, expiries, strikes = 16, 8, 8
	base := option.Params{S: 100, R: 0.045, V: 0.22, Y: 0.015}
	contract := func(e, k int) option.Params {
		p := base
		// Expiries chosen so this test's boundary keys are its own.
		p.E = 1.25 + float64(e)*0.0625
		p.K = 84 + 4*float64(k)
		return p
	}

	chebHits0, _ := ChebCacheStats()
	bndHits0, _ := BoundaryCacheStats()
	got := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]float64, 0, expiries*strikes)
			for e := 0; e < expiries; e++ {
				for k := 0; k < strikes; k++ {
					v, err := Price(contract(e, k), option.Put)
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					vals = append(vals, v)
				}
			}
			got[w] = vals
		}(w)
	}
	wg.Wait()

	i := 0
	for e := 0; e < expiries; e++ {
		for k := 0; k < strikes; k++ {
			want, err := Price(contract(e, k), option.Put)
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < workers; w++ {
				if got[w] == nil {
					t.Fatalf("worker %d died", w)
				}
				if got[w][i] != want {
					t.Errorf("worker %d, E=%g K=%g: concurrent %.17g != sequential %.17g",
						w, contract(e, k).E, contract(e, k).K, got[w][i], want)
				}
			}
			i++
		}
	}
	if hits, _ := ChebCacheStats(); hits == chebHits0 {
		t.Error("concurrent pricing never hit the shared Chebyshev cache")
	}
	if hits, _ := BoundaryCacheStats(); hits == bndHits0 {
		t.Error("concurrent pricing never hit the shared boundary cache")
	}
}

func BenchmarkPricePut(b *testing.B) {
	p := option.Params{S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.02, E: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Price(p, option.Put); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriceChainColdBoundary(b *testing.B) {
	// Each iteration uses a fresh expiry so every price pays a boundary
	// solve: the worst case the tier can hit.
	p := option.Params{S: 100, K: 100, R: 0.05, V: 0.2, Y: 0.02}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.E = 1 + float64(i%1024)*1e-9
		if _, err := Price(p, option.Put); err != nil {
			b.Fatal(err)
		}
	}
}
