package analytic

import (
	"math"
	"sync"
	"sync/atomic"
)

// tsRule is a tanh-sinh (double-exponential) quadrature rule on (-1, 1):
// nodes y_k = tanh((pi/2) sinh(k h)) with weights decaying double
// exponentially toward the endpoints. The rule never places a node on an
// endpoint and its weights vanish fast enough there to integrate the
// square-root endpoint singularities of the boundary integrals (the
// 1/sqrt(tau-u) kernel of K2/K3) at full order.
//
// om and op store 1-y and 1+y computed from the exponential form directly
// (1 - tanh(a) = 2/(e^{2a}+1)), not by subtraction: near the endpoints y
// rounds to +-1 in float64 while the distance to the endpoint is still
// ~1e-30, and the singular integrands need that distance, not the rounded
// node.
type tsRule struct {
	y  []float64 // node position in (-1, 1)
	om []float64 // 1 - y, computed without cancellation
	op []float64 // 1 + y, computed without cancellation
	w  []float64 // weight (for the unmapped rule on (-1, 1))
}

// tsCutoff stops emitting node pairs once (pi/2)sinh(kh) passes this bound:
// the weight is ~4*(pi/2)cosh(kh)e^{-2a} there (~1e-30 at 35), and even
// against a 1/sqrt endpoint singularity amplifying by e^{a} the
// contribution is ~e^{-35}.
const tsCutoff = 35.0

func newTSRule(h float64) *tsRule {
	r := &tsRule{}
	for k := 0; ; k++ {
		t := float64(k) * h
		a := 0.5 * math.Pi * math.Sinh(t)
		if a > tsCutoff {
			break
		}
		// 1-y = 2/(e^{2a}+1), 1+y = 2e^{2a}/(e^{2a}+1), y = (e^{2a}-1)/(e^{2a}+1).
		e2a := math.Exp(2 * a)
		om := 2 / (e2a + 1)
		op := 2 * e2a / (e2a + 1)
		y := (e2a - 1) / (e2a + 1)
		// w = h*(pi/2)*cosh(t)/cosh^2(a); cosh(a) = (e^a + e^-a)/2.
		ea := math.Exp(a)
		ca := 0.5 * (ea + 1/ea)
		w := h * 0.5 * math.Pi * math.Cosh(t) / (ca * ca)
		r.y = append(r.y, y)
		r.om = append(r.om, om)
		r.op = append(r.op, op)
		r.w = append(r.w, w)
		if k > 0 {
			// Mirror node at -y: 1-(-y) = 1+y and vice versa.
			r.y = append(r.y, -y)
			r.om = append(r.om, op)
			r.op = append(r.op, om)
			r.w = append(r.w, w)
		}
	}
	return r
}

// tsCache shares generated rules across all boundary solves in the process;
// a rule is a few hundred bytes and there are only a couple of step sizes in
// use, so the cache is unbounded by construction.
var (
	tsMu    sync.RWMutex
	tsRules = make(map[float64]*tsRule)
	tsHits  atomic.Int64
	tsMiss  atomic.Int64
)

// tanhSinh returns the shared rule for step size h.
func tanhSinh(h float64) *tsRule {
	tsMu.RLock()
	r := tsRules[h]
	tsMu.RUnlock()
	if r != nil {
		tsHits.Add(1)
		return r
	}
	tsMiss.Add(1)
	fresh := newTSRule(h)
	tsMu.Lock()
	if prior, ok := tsRules[h]; ok {
		fresh = prior // a concurrent builder won; share its rule
	} else {
		tsRules[h] = fresh
	}
	tsMu.Unlock()
	return fresh
}
