package analytic

import "math"

// QD+ initial guess for the early-exercise boundary (Li 2009, refining the
// Ju-Zhong quadratic approximation). The American put near the boundary is
// approximated as p_eur + A (S/S*)^lambda; value matching plus smooth pasting
// collapse to a single nonlinear equation in the boundary spot S*:
//
//	f(S) = S (1 - e^{-q tau} Phi(-d+(tau, S/K))) + (lambda + c0)(K - S - p_eur(S, tau)) = 0
//
// with lambda the negative root of the quadratic lambda(lambda-1) +
// N lambda - M/h = 0 and c0 the QD+ refinement term. The root is bracketed in
// (0, X] and polished by bisection: the seed only has to land close enough
// for the FP-B fixed point to take over, so robustness beats order here.

// boundaryLimit is B(0+) = K min(1, r/q): the level the exercise boundary
// rises to as expiry approaches.
func (c *contract) boundaryLimit() float64 {
	if c.q > c.r {
		return c.k * c.r / c.q
	}
	return c.k
}

// qdSeed returns the QD+ boundary estimate at time-to-expiry tau.
func (c *contract) qdSeed(tau float64) float64 {
	x := c.boundaryLimit()
	if tau <= 0 || c.r <= 0 {
		// r == 0 puts never exercise early; callers special-case that
		// before any boundary work, so just pin the limit.
		return x
	}
	sig2 := c.sigma * c.sigma
	m := 2 * c.r / sig2
	nn := 2 * (c.r - c.q) / sig2
	h := 1 - math.Exp(-c.r*tau)
	disc := math.Sqrt((nn-1)*(nn-1) + 4*m/h)
	lam := 0.5 * (-(nn - 1) - disc)
	lamPrime := m / (h * h * disc) // d lambda / d h

	f := func(s float64) float64 {
		p := c.europeanPut(s, tau)
		prem := c.k - s - p
		c0 := 0.0
		// The c0 refinement divides by the premium and by r; skip it when
		// either is degenerate — the plain QD root is still a fine seed.
		if den := 2*lam + nn - 1; prem > 1e-12*c.k && math.Abs(den) > 1e-12 {
			theta := c.europeanPutTheta(s, tau)
			c0 = -((1 - h) * m / den) *
				(1/h - theta*math.Exp(c.r*tau)/(c.r*prem) + lamPrime/den)
			if math.IsNaN(c0) || math.IsInf(c0, 0) {
				c0 = 0
			}
		}
		dp, _ := c.dpm(tau, s/c.k)
		return s*(1-math.Exp(-c.q*tau)*normCDF(-dp)) + (lam+c0)*prem
	}

	lo, hi := 1e-6*x, x
	flo := f(lo)
	if fhi := f(hi); (flo < 0) == (fhi < 0) {
		// No sign change on (0, X]: start the fixed point from the limit.
		return x
	}
	for i := 0; i < 64; i++ {
		mid := 0.5 * (lo + hi)
		if fm := f(mid); (fm < 0) == (flo < 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}
