package analytic

import "math"

// Black-Scholes-Merton building blocks shared by the QD+ seed, the boundary
// fixed point and the premium quadrature. d±(tau, z) follow the convention
// d±(tau, z) = [ln z + (r - q ± sigma^2/2) tau] / (sigma sqrt(tau)) with z a
// moneyness ratio, so d+(tau, S/K) is the textbook d1 and d-(tau, S/K) is d2.

func normPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// dpm returns d+ and d- for moneyness z at time-to-expiry tau.
func (c *contract) dpm(tau, z float64) (dp, dm float64) {
	sq := c.sigma * math.Sqrt(tau)
	dp = (math.Log(z) + (c.r-c.q)*tau + 0.5*c.sigma*c.sigma*tau) / sq
	return dp, dp - sq
}

// contract is the put-normalized parameter set every internal routine works
// on: calls enter through the McDonald-Schroder symmetry (spot and strike,
// rate and yield swapped) before reaching this layer.
type contract struct {
	s, k, r, q, sigma, T float64
}

// europeanPut is the closed-form European put value at spot s and
// time-to-expiry tau.
func (c *contract) europeanPut(s, tau float64) float64 {
	if tau <= 0 {
		return math.Max(c.k-s, 0)
	}
	dp, dm := c.dpm(tau, s/c.k)
	return c.k*math.Exp(-c.r*tau)*normCDF(-dm) - s*math.Exp(-c.q*tau)*normCDF(-dp)
}

// europeanPutTheta is the closed-form calendar theta (dV/dt) of the European
// put, used by the QD+ correction term.
func (c *contract) europeanPutTheta(s, tau float64) float64 {
	dp, dm := c.dpm(tau, s/c.k)
	return -s*math.Exp(-c.q*tau)*normPDF(dp)*c.sigma/(2*math.Sqrt(tau)) +
		c.r*c.k*math.Exp(-c.r*tau)*normCDF(-dm) -
		c.q*s*math.Exp(-c.q*tau)*normCDF(-dp)
}
