package analytic

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/nlstencil/amop/internal/scratch"
)

// The early-exercise boundary B(tau) of the (strike-normalized) American put
// is represented as a Chebyshev interpolant in x = sqrt(tau) of the
// transformed variable H(x) = [ln(B/X)]^2, where X = B(0+) = K min(1, r/q).
// The square-root time change and the squared-log transform absorb the
// boundary's steep behavior near expiry, so a modest node count interpolates
// it to solver precision; B = X exp(-sqrt(H)) keeps every evaluation in
// (0, X] by construction.
//
// The nodal values are refined by the Andersen-Lake FP-B fixed point derived
// from smooth pasting:
//
//	B = K e^{-(r-q)tau} N/D
//	N = phi(d-(tau, B/K))/(sigma sqrt(tau)) + r K3
//	D = phi(d+(tau, B/K))/(sigma sqrt(tau)) + Phi(d+(tau, B/K)) + q (K1+K2)
//
// with the boundary integrals, after the substitution u = tau - s^2 that
// removes the 1/sqrt(tau-u) kernel singularity,
//
//	K1 = 2 ∫_0^{sqrt(tau)} e^{q(tau-s^2)} Phi(d+(s^2, B(tau)/B(tau-s^2))) s ds
//	K2 = (2/sigma) ∫_0^{sqrt(tau)} e^{q(tau-s^2)} phi(d+(s^2, B(tau)/B(tau-s^2))) ds
//	K3 = (2/sigma) ∫_0^{sqrt(tau)} e^{r(tau-s^2)} phi(d-(s^2, B(tau)/B(tau-s^2))) ds
//
// evaluated with the shared tanh-sinh rule against the previous sweep's
// interpolant.

const (
	// boundaryIters bounds the FP-B sweeps; the loop exits early once the
	// largest nodal update falls below boundaryTol relative. Heavily damped
	// stiff solves need well over a hundred sweeps, so the budget is sized
	// for them; easy contracts exit in a handful.
	boundaryIters = 200
	boundaryTol   = 1e-12

	// boundaryDamp is the first geometric damping factor applied once a
	// sweep grows instead of contracting. The plain FP-B map is a
	// contraction for moderate 2r/sigma^2 but turns oscillatory-divergent
	// (multiplier near -2 and beyond) as that ratio climbs; damping by eta
	// moves a multiplier f' to (1-eta) + eta f'. Stiff contracts can defeat
	// a single fixed eta (node-to-node coupling through the interpolant
	// keeps amplifying), so each further growing sweep halves eta down to
	// boundaryDampMin, which has stabilized every in-envelope contract
	// found by fuzzing. Easy cases never trip the switch and pay nothing.
	boundaryDamp    = 0.35
	boundaryDampMin = 0.02

	// tsStepBoundary / tsStepPremium are the tanh-sinh step sizes for the
	// boundary-integral and premium quadratures (~31 and ~39 nodes).
	tsStepBoundary = 0.25
	tsStepPremium  = 0.1
)

// Boundary is an immutable early-exercise boundary for a strike-normalized
// put; concurrent pricers share one instance freely.
type Boundary struct {
	X float64   // B(0+) limit
	T float64   // expiry the interpolant covers, tau in [0, T]
	c []float64 // Chebyshev coefficients of H(x) on z = 2 sqrt(tau/T) - 1
}

// Value returns B(tau), clamping tau into [0, T].
func (b *Boundary) Value(tau float64) float64 {
	if tau <= 0 {
		return b.X
	}
	if tau > b.T {
		tau = b.T
	}
	z := 2*math.Sqrt(tau/b.T) - 1
	h := clenshaw(b.c, z)
	if h < 0 {
		h = 0
	}
	return b.X * math.Exp(-math.Sqrt(h))
}

// solveBoundary seeds the nodal boundary values with QD+ and refines them
// with FP-B sweeps on n+1 collocation nodes. c must be strike-normalized
// (k == 1) with r > 0.
func solveBoundary(c *contract, n int) *Boundary {
	tab := chebFor(n)
	x := c.boundaryLimit()
	out := &Boundary{X: x, T: c.T, c: make([]float64, n+1)}

	tau := scratch.Floats(n + 1)
	bv := scratch.Floats(n + 1)
	hv := scratch.Floats(n + 1)
	cf := scratch.Floats(n + 1)
	defer scratch.PutFloats(tau)
	defer scratch.PutFloats(bv)
	defer scratch.PutFloats(hv)
	defer scratch.PutFloats(cf)

	tau[0], bv[0], hv[0] = 0, x, 0
	for i := 1; i <= n; i++ {
		half := 0.5 * (1 + tab.z[i])
		tau[i] = c.T * half * half
		s := c.qdSeed(tau[i])
		if !(s > 0) || s > x {
			s = x
		}
		bv[i] = s
		l := math.Log(s / x)
		hv[i] = l * l
	}

	rule := tanhSinh(tsStepBoundary)
	eta := 1.0
	prevRel := math.Inf(1)
	for it := 0; it < boundaryIters; it++ {
		tab.coeffs(hv, cf)
		maxRel := 0.0
		for i := 1; i <= n; i++ {
			ti, bi := tau[i], bv[i]
			sqTau := math.Sqrt(ti)
			var k1, k2, k3 float64
			for j := range rule.y {
				s := sqTau * 0.5 * rule.op[j]
				// tau - s^2 = tau (1-y)(3+y)/4, cancellation-free via om.
				tu := ti * rule.om[j] * (2 + rule.op[j]) * 0.25
				zu := 2*math.Sqrt(tu/c.T) - 1
				if zu > 1 {
					zu = 1
				} else if zu < -1 {
					zu = -1
				}
				hu := clenshaw(cf, zu)
				if hu < 0 {
					hu = 0
				}
				bu := x * math.Exp(-math.Sqrt(hu))
				ss := c.sigma * s
				if ss <= 0 {
					continue
				}
				dp := (math.Log(bi/bu)+(c.r-c.q)*s*s)/ss + 0.5*ss
				dm := dp - ss
				w := rule.w[j]
				eq := math.Exp(c.q * tu)
				k1 += w * eq * normCDF(dp) * 2 * s
				k2 += w * eq * normPDF(dp)
				k3 += w * math.Exp(c.r*tu) * normPDF(dm)
			}
			jac := 0.5 * sqTau // ds/dy for s = sqrt(tau)(1+y)/2
			k1 *= jac
			k2 *= jac * 2 / c.sigma
			k3 *= jac * 2 / c.sigma

			dpk, dmk := c.dpm(ti, bi/c.k)
			sq := c.sigma * sqTau
			num := normPDF(dmk)/sq + c.r*k3
			den := normPDF(dpk)/sq + normCDF(dpk) + c.q*(k1+k2)
			bn := c.k * math.Exp(-(c.r-c.q)*ti) * num / den
			if !(bn > 0) || math.IsInf(bn, 0) {
				bn = bi // degenerate update; keep the previous iterate
			} else if bn > x {
				bn = x
			}
			if eta < 1 {
				bn = math.Exp((1-eta)*math.Log(bi) + eta*math.Log(bn))
			}
			if rel := math.Abs(bn-bi) / bi; rel > maxRel {
				maxRel = rel
			}
			bv[i] = bn
		}
		for i := 1; i <= n; i++ {
			l := math.Log(bv[i] / x)
			hv[i] = l * l
		}
		if maxRel < boundaryTol {
			break
		}
		// A growing sweep means the map is not contracting at the current
		// damping: engage damping, then keep halving it while growth
		// persists (see boundaryDamp above).
		if maxRel > prevRel && maxRel > 1e-9 {
			if eta == 1 {
				eta = boundaryDamp
			} else if eta > boundaryDampMin {
				eta *= 0.5
			}
		}
		prevRel = maxRel
	}
	tab.coeffs(hv, out.c)
	return out
}

// nodesFor picks the collocation resolution from the stiffness ratio
// 2 max(r, q)/sigma^2: the higher it is, the faster the boundary falls away
// from X near expiry and the more nodes the transformed interpolant needs.
func nodesFor(c *contract) int {
	stiff := 2 * math.Max(c.r, c.q) / (c.sigma * c.sigma)
	switch {
	case stiff <= 15:
		return 16
	case stiff <= 30:
		return 24
	default:
		return 32
	}
}

// Boundaries depend on (r, q, sigma, T) but not on spot or strike (the solve
// is strike-normalized), so one solve serves a whole chain of strikes and
// spots at the same expiry. The cache is cleared wholesale when it fills:
// entries are cheap to rebuild and serving traffic clusters on few keys.
type boundaryKey struct {
	r, q, sigma, T float64
}

const boundaryCacheCap = 512

var (
	bMu    sync.RWMutex
	bCache = make(map[boundaryKey]*Boundary)
	bHits  atomic.Int64
	bMiss  atomic.Int64
)

// boundaryFor returns the shared boundary for the normalized contract,
// solving it outside any lock on a miss (concurrent misses may both solve;
// the first store wins and the loser adopts it). cold reports whether this
// call paid for a boundary solve — the cold/warm split the tier-labelled
// solve-latency histograms key on — and is true even for a losing concurrent
// solver: the caller experienced cold-path latency regardless of whose
// boundary was kept.
func boundaryFor(c *contract) (b *Boundary, cold bool) {
	key := boundaryKey{c.r, c.q, c.sigma, c.T}
	bMu.RLock()
	b = bCache[key]
	bMu.RUnlock()
	if b != nil {
		bHits.Add(1)
		return b, false
	}
	bMiss.Add(1)
	fresh := solveBoundary(c, nodesFor(c))
	bMu.Lock()
	if prior, ok := bCache[key]; ok {
		fresh = prior
	} else {
		if len(bCache) >= boundaryCacheCap {
			clear(bCache)
		}
		bCache[key] = fresh
	}
	bMu.Unlock()
	return fresh, true
}

// BoundaryCacheStats reports the boundary cache's cumulative hit and miss
// counts (concurrency tests pin cross-contract sharing through these).
func BoundaryCacheStats() (hits, misses int64) {
	return bHits.Load(), bMiss.Load()
}
