package analytic

import (
	"math"

	"github.com/nlstencil/amop/internal/option"
)

// Greeks are the first- and second-order sensitivities of the analytic
// price, matching the root package's conventions: Theta is the calendar
// derivative dV/dt (= -dV/dE), Vega and Rho are per unit of vol and rate.
type Greeks struct {
	Delta float64
	Gamma float64
	Theta float64
	Vega  float64
	Rho   float64
}

// Bump widths for the vega/rho central differences. The bumps re-solve the
// exercise boundary: Kim's representation is not stationary in the boundary,
// so freezing it would bias vega and rho by several percent. Bumped solves
// hit the boundary cache on repeated Greeks calls over a chain, so the
// steady-state cost is two extra premium quadratures per sensitivity.
const (
	bumpVol  = 1e-4
	bumpRate = 1e-5
)

// PriceGreeks returns the American option value and its Greeks from one
// boundary solve, or an error when the contract is outside the envelope.
func PriceGreeks(p option.Params, kind option.Kind) (float64, Greeks, error) {
	if err := Eligible(p, kind); err != nil {
		return 0, Greeks{}, err
	}
	c, scale := normalize(p, kind)
	// For calls the normalized contract is the symmetric put, whose
	// dividend yield is the call's rate: Rho must bump q, not r.
	g := putGreeks(&c, kind == option.Call)

	if kind == option.Put {
		return scale * g.v, Greeks{
			Delta: g.delta,
			Gamma: g.gamma / scale,
			Theta: scale * g.theta,
			Vega:  scale * g.vega,
			Rho:   scale * g.rate,
		}, nil
	}
	// C(S, K) = P(K, S) is homogeneous of degree one in (spot, strike), so
	// Euler's relation converts the symmetric put's spot-delta into the
	// call's: Delta_C = (C - K Delta_P)/S, and degree -1 homogeneity of the
	// second derivatives gives Gamma_C = K^2 Gamma_P / S^2. Theta, vega and
	// the rate sensitivity carry over unchanged (same clock, same vol, and
	// the call's rate is the symmetric put's yield).
	price := scale * g.v
	gammaSym := g.gamma / scale
	return price, Greeks{
		Delta: (price - p.K*g.delta) / p.S,
		Gamma: p.K * p.K * gammaSym / (p.S * p.S),
		Theta: scale * g.theta,
		Vega:  scale * g.vega,
		Rho:   scale * g.rate,
	}, nil
}

// normGreeks are sensitivities of the normalized put; rate is dV/dr, or
// dV/dq when bumpQ was requested (the call path).
type normGreeks struct {
	v, delta, gamma, theta, vega, rate float64
}

// putGreeks prices the normalized put and differentiates it. Delta and gamma
// come from differentiating the premium integrand in the spot (the boundary
// does not depend on the spot, so these are full derivatives); theta then
// follows from the Black-Scholes PDE identity dV/dt = rV - (r-q)S Delta -
// sigma^2 S^2 Gamma / 2, which the American value satisfies in the
// continuation region. Vega and the rate sensitivity are frozen-boundary
// central bumps.
func putGreeks(c *contract, bumpQ bool) normGreeks {
	if c.r == 0 {
		return europeanPutGreeks(c, bumpQ)
	}
	b, _ := boundaryFor(c)
	if c.s <= b.Value(c.T) {
		// Exercised immediately: V = K - S identically in every parameter.
		return normGreeks{v: c.k - c.s, delta: -1}
	}

	pv, pd, pg := premiumDG(c, b, c.s)
	dp, _ := c.dpm(c.T, c.s/c.k)
	eq := math.Exp(-c.q * c.T)
	sqT := c.sigma * math.Sqrt(c.T)

	g := normGreeks{
		v:     c.europeanPut(c.s, c.T) + pv,
		delta: -eq*normCDF(-dp) + pd,
		gamma: eq*normPDF(dp)/(c.s*sqT) + pg,
	}
	if intr := c.k - c.s; g.v < intr {
		g.v = intr
	}
	g.theta = c.r*g.v - (c.r-c.q)*c.s*g.delta - 0.5*c.sigma*c.sigma*c.s*c.s*g.gamma

	up, dn := *c, *c
	up.sigma += bumpVol
	dn.sigma -= bumpVol
	vu, _ := putValue(&up)
	vd, _ := putValue(&dn)
	g.vega = (vu - vd) / (2 * bumpVol)

	// The rate bumps fall back to a forward difference when the central stencil
	// would cross zero: a negative rate flips the boundary-limit formula
	// X = K min(1, r/q) into nonsense, and the unbumped value is already known.
	up, dn = *c, *c
	rate := c.r
	if bumpQ {
		rate = c.q
		up.q += bumpRate
		dn.q -= bumpRate
	} else {
		up.r += bumpRate
		dn.r -= bumpRate
	}
	vu, _ = putValue(&up)
	if rate < 2*bumpRate {
		g.rate = (vu - g.v) / bumpRate
	} else {
		vd, _ = putValue(&dn)
		g.rate = (vu - vd) / (2 * bumpRate)
	}
	return g
}

// premiumDG evaluates the early-exercise premium together with its first and
// second spot derivatives in a single quadrature pass. With a = 1/(sigma
// sqrt(u)), differentiating the integrand of premium in s gives
//
//	d/ds:   -r K e^{-ru} phi(d-) a/s - q e^{-qu} [Phi(-d+) - phi(d+) a]
//	d2/ds2:  r K e^{-ru} a phi(d-)(d- a + 1)/s^2 + q e^{-qu} (a/s) phi(d+)(1 - d+ a)
func premiumDG(c *contract, b *Boundary, s float64) (v, d, g float64) {
	rule := tanhSinh(tsStepPremium)
	halfT := 0.5 * c.T
	for j := range rule.y {
		u := halfT * rule.op[j]
		rem := halfT * rule.om[j]
		dp, dm := c.dpm(u, s/b.Value(rem))
		a := 1 / (c.sigma * math.Sqrt(u))
		er := c.r * c.k * math.Exp(-c.r*u)
		eqd := c.q * math.Exp(-c.q*u)
		phiP, phiM := normPDF(dp), normPDF(dm)

		w := rule.w[j]
		v += w * (er*normCDF(-dm) - eqd*s*normCDF(-dp))
		d += w * (-er*phiM*a/s - eqd*(normCDF(-dp)-phiP*a))
		g += w * (er*a*phiM*(dm*a+1)/(s*s) + eqd*(a/s)*phiP*(1-dp*a))
	}
	return v * halfT, d * halfT, g * halfT
}

// europeanPutGreeks is the closed-form sensitivity set for the r == 0 case,
// where the American put equals the European.
func europeanPutGreeks(c *contract, bumpQ bool) normGreeks {
	dp, dm := c.dpm(c.T, c.s/c.k)
	eq := math.Exp(-c.q * c.T)
	er := math.Exp(-c.r * c.T)
	sqT := math.Sqrt(c.T)
	g := normGreeks{
		v:     c.europeanPut(c.s, c.T),
		delta: -eq * normCDF(-dp),
		gamma: eq * normPDF(dp) / (c.s * c.sigma * sqT),
		theta: c.europeanPutTheta(c.s, c.T),
		vega:  c.s * eq * normPDF(dp) * sqT,
	}
	if bumpQ {
		g.rate = c.T * c.s * eq * normCDF(-dp)
	} else {
		g.rate = -c.T * c.k * er * normCDF(-dm)
	}
	return g
}
