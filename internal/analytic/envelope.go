package analytic

import (
	"errors"
	"fmt"
	"math"

	"github.com/nlstencil/amop/internal/option"
)

// ErrEnvelope marks contracts the analytic tier declines to price: the
// spectral solve converges and cross-validates against the lattice inside
// these parameter ranges, and the tier refuses anything outside them rather
// than return an unvalidated number. Callers dispatch on it with errors.Is
// and fall back to the lattice.
var ErrEnvelope = errors.New("outside analytic validity envelope")

// The validity envelope. The bounds are deliberately generous around the
// cross-validation grid (see cmd/amop-xval) — everything inside has been
// fuzzed against the extrapolated lattice — while cutting off the regimes
// where the boundary iteration or the quadratures degrade: near-zero vol or
// expiry (boundary collapses toward a step), extreme rates (QD+ seed
// bracketing fails), and extreme moneyness (nothing left to resolve).
const (
	envMinVol   = 0.01
	envMaxVol   = 2.0
	envMinTau   = 1e-3
	envMaxTau   = 30.0
	envMaxRate  = 0.5
	envMinMoney = 0.05
	envMaxMoney = 20.0

	// envMaxStiff caps the stiffness ratio 2 max(r, q)/sigma^2. Beyond it
	// the exercise boundary hugs its limit X so tightly that the damped
	// fixed point stalls against the X clamp and the premium quadrature
	// loses the boundary layer — the solve converges but to garbage, which
	// is exactly what an envelope must keep out.
	envMaxStiff = 50.0
)

// Eligible reports whether the contract is inside the analytic tier's
// validity envelope. A nil return is the tier's promise that Price will
// produce a value cross-validated against the lattice; every non-nil return
// except a parameter-validation failure wraps ErrEnvelope.
func Eligible(p option.Params, kind option.Kind) error {
	if err := p.Validate(); err != nil {
		return err
	}
	switch {
	case p.V < envMinVol || p.V > envMaxVol:
		return fmt.Errorf("analytic: vol %g not in [%g, %g]: %w", p.V, envMinVol, envMaxVol, ErrEnvelope)
	case p.E < envMinTau || p.E > envMaxTau:
		return fmt.Errorf("analytic: expiry %g not in [%g, %g]: %w", p.E, envMinTau, envMaxTau, ErrEnvelope)
	case p.R > envMaxRate:
		return fmt.Errorf("analytic: rate %g above %g: %w", p.R, envMaxRate, ErrEnvelope)
	case p.Y > envMaxRate:
		return fmt.Errorf("analytic: dividend yield %g above %g: %w", p.Y, envMaxRate, ErrEnvelope)
	case p.S/p.K < envMinMoney || p.S/p.K > envMaxMoney:
		return fmt.Errorf("analytic: moneyness %g not in [%g, %g]: %w", p.S/p.K, envMinMoney, envMaxMoney, ErrEnvelope)
	}
	if stiff := 2 * math.Max(p.R, p.Y) / (p.V * p.V); stiff > envMaxStiff {
		return fmt.Errorf("analytic: stiffness 2*max(r,q)/sigma^2 = %.3g above %g: %w", stiff, envMaxStiff, ErrEnvelope)
	}
	return nil
}
