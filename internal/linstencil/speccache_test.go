package linstencil

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/nlstencil/amop/internal/fft"
)

// TestRealMatchesComplexPath is the golden parity test of the tentpole: the
// real-input cached path and the legacy full-complex path must agree within
// 1e-9 relative error across sizes, including size 1, 2, and odd lengths
// (which EvolveCone pads up internally).
func TestRealMatchesComplexPath(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{2, 3, 5, 17, 64, 100, 257, 1000, 4096, 4097} {
		for trial := 0; trial < 4; trial++ {
			s := randStencil(rng)
			maxK := (n - 1) / s.Span()
			if maxK == 0 {
				continue
			}
			k := 1 + rng.Intn(maxK)
			row := randRow(rng, n)

			real1, fp1 := EvolveCone(row, s, k)
			cplx, fp2 := EvolveConeComplex(row, s, k)
			if fp1 != fp2 || len(real1) != len(cplx) {
				t.Fatalf("n=%d k=%d: shape mismatch (%d,%d) vs (%d,%d)", n, k, fp1, len(real1), fp2, len(cplx))
			}
			for i := range real1 {
				scale := 1 + absf(cplx[i])
				if d := absf(real1[i] - cplx[i]); d > 1e-9*scale {
					t.Fatalf("n=%d k=%d: real vs complex diff %g at %d", n, k, d, i)
				}
			}
		}
	}
}

// TestRealPathToggle verifies SetRealPath actually switches implementations
// and that both agree with the naive oracle.
func TestRealPathToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := Stencil{MinOff: 0, W: []float64{0.48, 0.51}}
	n, k := 2048, 512
	row := randRow(rng, n)
	naive, _ := EvolveConeNaive(row, s, k)

	prev := SetRealPath(false)
	defer SetRealPath(prev)
	legacy, _ := EvolveCone(row, s, k)
	SetRealPath(true)
	fast, _ := EvolveCone(row, s, k)

	if d := maxDiff(legacy, naive); d > 1e-9 {
		t.Fatalf("legacy path off naive by %g", d)
	}
	if d := maxDiff(fast, naive); d > 1e-9 {
		t.Fatalf("real path off naive by %g", d)
	}
}

// TestEvolvePeriodicSize1 covers the degenerate one-cell ring on both paths.
func TestEvolvePeriodicSize1(t *testing.T) {
	s := Stencil{MinOff: -1, W: []float64{0.25, 0.5, 0.2}}
	row := []float64{1.5}
	want := EvolvePeriodicNaive(row, s, 7)
	if d := maxDiff(EvolvePeriodic(row, s, 7), want); d > 1e-12 {
		t.Fatalf("real ring path off naive by %g", d)
	}
	prev := SetRealPath(false)
	defer SetRealPath(prev)
	if d := maxDiff(EvolvePeriodic(row, s, 7), want); d > 1e-12 {
		t.Fatalf("legacy ring path off naive by %g", d)
	}
}

func TestSpectrumCacheHitsAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := Stencil{MinOff: 0, W: []float64{0.47, 0.52}}
	row := randRow(rng, 4096)

	h0, m0, _, _ := SpectrumCacheStats()
	EvolveCone(row, s, 1024)
	h1, m1, bytes, entries := SpectrumCacheStats()
	if m1 == m0 {
		t.Error("first evolution did not record a cache miss")
	}
	if entries == 0 || bytes <= 0 {
		t.Errorf("cache empty after a solve: %d entries, %d bytes", entries, bytes)
	}
	EvolveCone(row, s, 1024)
	h2, m2, _, _ := SpectrumCacheStats()
	if h2 <= h1 {
		t.Errorf("repeat evolution did not hit the cache (hits %d -> %d)", h1, h2)
	}
	if m2 != m1 {
		t.Errorf("repeat evolution recomputed the spectrum (misses %d -> %d)", m1, m2)
	}
	_ = h0

	// Shrinking the limit must evict down to the bound; restoring must leave
	// a working cache.
	SetSpectrumCacheLimit(1)
	_, _, bytes, _ = SpectrumCacheStats()
	if bytes > 1 {
		t.Errorf("cache holds %d bytes after limit 1", bytes)
	}
	SetSpectrumCacheLimit(DefaultSpectrumCacheLimit)
	out, _ := EvolveCone(row, s, 1024)
	naive, _ := EvolveConeNaive(row, s, 1024)
	if d := maxDiff(out, naive); d > 1e-9 {
		t.Fatalf("post-eviction evolution off naive by %g", d)
	}
}

// TestSpectrumCacheConcurrent hammers one key from many goroutines; run with
// -race. All callers must see identical, correct multipliers.
func TestSpectrumCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := Stencil{MinOff: -1, W: []float64{0.3, 0.35, 0.3}}
	row := randRow(rng, 1024)
	want, _ := EvolveConeNaive(row, s, 128)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, _ := EvolveCone(row, s, 128)
				if d := maxDiff(got, want); d > 1e-9 {
					t.Errorf("concurrent evolution off naive by %g", d)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMakeKeyDistinguishes ensures distinct stencils, shifts, sizes and step
// counts never collide.
func TestMakeKeyDistinguishes(t *testing.T) {
	base := Stencil{MinOff: 0, W: []float64{0.5, 0.4}}
	keys := map[symKey]bool{
		makeKey(base, 0, 64, 8):  true,
		makeKey(base, 0, 64, 9):  true,
		makeKey(base, 0, 128, 8): true,
		makeKey(base, -1, 64, 8): true,
		makeKey(Stencil{MinOff: 0, W: []float64{0.4, 0.5}}, 0, 64, 8):            true,
		makeKey(Stencil{MinOff: 0, W: []float64{0.5, 0.4, 0}}, 0, 64, 8):         true,
		makeKey(Stencil{MinOff: 0, W: []float64{0.5, 0.4, 0, 0, 0.1}}, 0, 64, 8): true,
		makeKey(Stencil{MinOff: 0, W: []float64{0.5, 0.4, 0, 0, 0.2}}, 0, 64, 8): true,
	}
	if len(keys) != 8 {
		t.Errorf("key collisions: %d distinct keys, want 8", len(keys))
	}
}

// TestComputeSpectrumUsesTwiddles cross-checks the table-driven symbol
// evaluation against a directly computed spectrum on a spilled (5-weight)
// stencil, covering the long-stencil key path too.
func TestComputeSpectrumUsesTwiddles(t *testing.T) {
	s := Stencil{MinOff: -2, W: []float64{0.1, 0.2, 0.3, 0.2, 0.15}}
	n := 64
	rp := fft.RPlanFor(n)
	got := computeSpectrum(s, s.MinOff, n, 3, rp)
	row := make([]float64, n)
	row[5] = 1
	fast := EvolvePeriodic(row, s, 3)
	naive := EvolvePeriodicNaive(row, s, 3)
	if d := maxDiff(fast, naive); d > 1e-12 {
		t.Fatalf("5-weight ring evolution off naive by %g", d)
	}
	if len(got) != n/2+1 {
		t.Fatalf("spectrum length %d", len(got))
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
