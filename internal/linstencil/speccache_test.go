package linstencil

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/nlstencil/amop/internal/fft"
)

// TestRealMatchesComplexPath is the golden parity test of the tentpole: the
// real-input cached path and the legacy full-complex path must agree within
// 1e-9 relative error across sizes, including size 1, 2, and odd lengths
// (which EvolveCone pads up internally).
func TestRealMatchesComplexPath(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{2, 3, 5, 17, 64, 100, 257, 1000, 4096, 4097} {
		for trial := 0; trial < 4; trial++ {
			s := randStencil(rng)
			maxK := (n - 1) / s.Span()
			if maxK == 0 {
				continue
			}
			k := 1 + rng.Intn(maxK)
			row := randRow(rng, n)

			real1, fp1 := EvolveCone(row, s, k)
			cplx, fp2 := EvolveConeComplex(row, s, k)
			if fp1 != fp2 || len(real1) != len(cplx) {
				t.Fatalf("n=%d k=%d: shape mismatch (%d,%d) vs (%d,%d)", n, k, fp1, len(real1), fp2, len(cplx))
			}
			for i := range real1 {
				scale := 1 + absf(cplx[i])
				if d := absf(real1[i] - cplx[i]); d > 1e-9*scale {
					t.Fatalf("n=%d k=%d: real vs complex diff %g at %d", n, k, d, i)
				}
			}
		}
	}
}

// TestRealPathToggle verifies SetRealPath actually switches implementations
// and that both agree with the naive oracle.
func TestRealPathToggle(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := Stencil{MinOff: 0, W: []float64{0.48, 0.51}}
	n, k := 2048, 512
	row := randRow(rng, n)
	naive, _ := EvolveConeNaive(row, s, k)

	prev := SetRealPath(false)
	defer SetRealPath(prev)
	legacy, _ := EvolveCone(row, s, k)
	SetRealPath(true)
	fast, _ := EvolveCone(row, s, k)

	if d := maxDiff(legacy, naive); d > 1e-9 {
		t.Fatalf("legacy path off naive by %g", d)
	}
	if d := maxDiff(fast, naive); d > 1e-9 {
		t.Fatalf("real path off naive by %g", d)
	}
}

// TestEvolvePeriodicSize1 covers the degenerate one-cell ring on both paths.
func TestEvolvePeriodicSize1(t *testing.T) {
	s := Stencil{MinOff: -1, W: []float64{0.25, 0.5, 0.2}}
	row := []float64{1.5}
	want := EvolvePeriodicNaive(row, s, 7)
	if d := maxDiff(EvolvePeriodic(row, s, 7), want); d > 1e-12 {
		t.Fatalf("real ring path off naive by %g", d)
	}
	prev := SetRealPath(false)
	defer SetRealPath(prev)
	if d := maxDiff(EvolvePeriodic(row, s, 7), want); d > 1e-12 {
		t.Fatalf("legacy ring path off naive by %g", d)
	}
}

func TestSpectrumCacheHitsAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := Stencil{MinOff: 0, W: []float64{0.47, 0.52}}
	row := randRow(rng, 4096)

	h0, m0, _, _ := SpectrumCacheStats()
	EvolveCone(row, s, 1024)
	h1, m1, bytes, entries := SpectrumCacheStats()
	if m1 == m0 {
		t.Error("first evolution did not record a cache miss")
	}
	if entries == 0 || bytes <= 0 {
		t.Errorf("cache empty after a solve: %d entries, %d bytes", entries, bytes)
	}
	EvolveCone(row, s, 1024)
	h2, m2, _, _ := SpectrumCacheStats()
	if h2 <= h1 {
		t.Errorf("repeat evolution did not hit the cache (hits %d -> %d)", h1, h2)
	}
	if m2 != m1 {
		t.Errorf("repeat evolution recomputed the spectrum (misses %d -> %d)", m1, m2)
	}
	_ = h0

	// Shrinking the limit must evict down to the bound; restoring must leave
	// a working cache.
	SetSpectrumCacheLimit(1)
	_, _, bytes, _ = SpectrumCacheStats()
	if bytes > 1 {
		t.Errorf("cache holds %d bytes after limit 1", bytes)
	}
	SetSpectrumCacheLimit(DefaultSpectrumCacheLimit)
	out, _ := EvolveCone(row, s, 1024)
	naive, _ := EvolveConeNaive(row, s, 1024)
	if d := maxDiff(out, naive); d > 1e-9 {
		t.Fatalf("post-eviction evolution off naive by %g", d)
	}
}

// TestSpectrumCacheConcurrent hammers one key from many goroutines; run with
// -race. All callers must see identical, correct multipliers.
func TestSpectrumCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := Stencil{MinOff: -1, W: []float64{0.3, 0.35, 0.3}}
	row := randRow(rng, 1024)
	want, _ := EvolveConeNaive(row, s, 128)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got, _ := EvolveCone(row, s, 128)
				if d := maxDiff(got, want); d > 1e-9 {
					t.Errorf("concurrent evolution off naive by %g", d)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMakeKeyDistinguishes ensures distinct stencils, shifts, sizes and step
// counts never collide.
func TestMakeKeyDistinguishes(t *testing.T) {
	base := Stencil{MinOff: 0, W: []float64{0.5, 0.4}}
	keys := map[symKey]bool{
		makeKey(base, 0, 64, 8):  true,
		makeKey(base, 0, 64, 9):  true,
		makeKey(base, 0, 128, 8): true,
		makeKey(base, -1, 64, 8): true,
		makeKey(Stencil{MinOff: 0, W: []float64{0.4, 0.5}}, 0, 64, 8):            true,
		makeKey(Stencil{MinOff: 0, W: []float64{0.5, 0.4, 0}}, 0, 64, 8):         true,
		makeKey(Stencil{MinOff: 0, W: []float64{0.5, 0.4, 0, 0, 0.1}}, 0, 64, 8): true,
		makeKey(Stencil{MinOff: 0, W: []float64{0.5, 0.4, 0, 0, 0.2}}, 0, 64, 8): true,
	}
	if len(keys) != 8 {
		t.Errorf("key collisions: %d distinct keys, want 8", len(keys))
	}
}

// TestComputeSpectrumUsesTwiddles cross-checks the table-driven symbol
// evaluation against a directly computed spectrum on a spilled (5-weight)
// stencil, covering the long-stencil key path too.
func TestComputeSpectrumUsesTwiddles(t *testing.T) {
	s := Stencil{MinOff: -2, W: []float64{0.1, 0.2, 0.3, 0.2, 0.15}}
	n := 64
	rp := fft.RPlanFor(n)
	got := computeSpectrum(s, s.MinOff, n, 3, rp)
	row := make([]float64, n)
	row[5] = 1
	fast := EvolvePeriodic(row, s, 3)
	naive := EvolvePeriodicNaive(row, s, 3)
	if d := maxDiff(fast, naive); d > 1e-12 {
		t.Fatalf("5-weight ring evolution off naive by %g", d)
	}
	if len(got) != n/2+1 {
		t.Fatalf("spectrum length %d", len(got))
	}
}

// resetSpecCache flushes both cache layers so a test observes its own
// hits/misses/transfers regardless of what ran before it.
func resetSpecCache() {
	SetSpectrumCacheLimit(0)
	SetSpectrumCacheLimit(DefaultSpectrumCacheLimit)
	specCache.mu.Lock()
	specCache.maxSymN = 0
	specCache.mu.Unlock()
}

// TestSymbolSubsampleBitwise pins the invariant the cross-resolution
// transfer rests on: the half-spectrum frequencies of size n are exactly the
// even frequencies of size 2n, bitwise — so a table subsampled from a larger
// donor is indistinguishable from one evaluated fresh.
func TestSymbolSubsampleBitwise(t *testing.T) {
	s := Stencil{MinOff: -1, W: []float64{0.27, 0.5, 0.22}}
	for _, n := range []int{4, 64, 1024} {
		big := computeSymbol(s, s.MinOff, 4*n, fft.RPlanFor(4*n))
		fresh := computeSymbol(s, s.MinOff, n, fft.RPlanFor(n))
		sub := subsampleSymbol(big, 4*n, n)
		for f := range fresh {
			if sub[f] != fresh[f] {
				t.Fatalf("n=%d f=%d: subsampled %v != fresh %v", n, f, sub[f], fresh[f])
			}
		}
		seeded := seedSymbol(fresh, n, s, s.MinOff, 4*n, fft.RPlanFor(4*n))
		for f := range big {
			if seeded[f] != big[f] {
				t.Fatalf("n=%d f=%d: seeded %v != fresh %v", 4*n, f, seeded[f], big[f])
			}
		}
	}
}

// TestSymbolCacheCrossResolution drives the cache through both transfer
// directions end to end: an evolution at one padded size must derive its
// symbol tables from tables cached at other sizes rather than re-evaluating,
// and the results must stay on the naive oracle.
func TestSymbolCacheCrossResolution(t *testing.T) {
	resetSpecCache()
	rng := rand.New(rand.NewSource(35))
	s := Stencil{MinOff: 0, W: []float64{0.46, 0.53}}

	h0, m0, x0 := SymbolCacheStats()
	bigRow := randRow(rng, 8192)
	want, _ := EvolveConeNaive(bigRow, s, 512)
	got, _ := EvolveCone(bigRow, s, 512)
	if d := maxDiff(got, want); d > 1e-9 {
		t.Fatalf("big evolution off naive by %g", d)
	}
	_, m1, _ := SymbolCacheStats()
	if m1 == m0 {
		t.Fatal("big evolution built no symbol tables")
	}

	// A smaller padded size of the same stencil must subsample the cached
	// table (cross-res), not evaluate from scratch.
	smallRow := randRow(rng, 4096)
	want, _ = EvolveConeNaive(smallRow, s, 256)
	got, _ = EvolveCone(smallRow, s, 256)
	if d := maxDiff(got, want); d > 1e-9 {
		t.Fatalf("small evolution off naive by %g", d)
	}
	_, _, x1 := SymbolCacheStats()
	if x1 == x0 {
		t.Error("smaller-size evolution did not subsample from the cached larger table")
	}

	// And a larger padded size must seed from below.
	hugeRow := randRow(rng, 16384)
	want, _ = EvolveConeNaive(hugeRow, s, 128)
	got, _ = EvolveCone(hugeRow, s, 128)
	if d := maxDiff(got, want); d > 1e-9 {
		t.Fatalf("huge evolution off naive by %g", d)
	}
	_, _, x2 := SymbolCacheStats()
	if x2 == x1 {
		t.Error("larger-size evolution did not seed from the cached smaller table")
	}

	// Repeating a size is an exact-table hit, not another transfer.
	h1, m2, _ := SymbolCacheStats()
	EvolveCone(smallRow, s, 256)
	h2, m3, x3 := SymbolCacheStats()
	if m3 != m2 || x3 != x2 {
		t.Errorf("repeat evolution rebuilt symbol tables (misses %d->%d, crossRes %d->%d)", m2, m3, x2, x3)
	}
	_, _ = h0, h1
	if h2 < h1 {
		t.Errorf("symbol hits went backwards: %d -> %d", h1, h2)
	}
}

// TestSymbolCachePoweredParity checks that a multiplier derived through the
// symbol layer (possibly via a cross-resolution transfer) matches the
// from-scratch computeSpectrum reference bitwise.
func TestSymbolCachePoweredParity(t *testing.T) {
	resetSpecCache()
	s := Stencil{MinOff: -2, W: []float64{0.1, 0.2, 0.3, 0.2, 0.15}}
	// Populate a large table first so the small size below transfers.
	kernelSpectrum(s, s.MinOff, 512, 3, fft.RPlanFor(512))
	for _, nk := range [][2]int{{64, 3}, {64, 17}, {2048, 9}} {
		n, k := nk[0], nk[1]
		got := kernelSpectrum(s, s.MinOff, n, k, fft.RPlanFor(n))
		want := computeSpectrum(s, s.MinOff, n, k, fft.RPlanFor(n))
		for f := range want {
			if got[f] != want[f] {
				t.Fatalf("n=%d k=%d f=%d: cached %v != reference %v", n, k, f, got[f], want[f])
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
