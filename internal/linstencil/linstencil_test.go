package linstencil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randStencil(rng *rand.Rand) Stencil {
	span := 1 + rng.Intn(2) // polynomial degree 1 or 2, like the paper's models
	w := make([]float64, span+1)
	sum := 0.0
	for i := range w {
		w[i] = rng.Float64()
		sum += w[i]
	}
	// Normalize to sum just under 1, matching the sub-stochastic discounted
	// weights of the pricing models; keeps k-step values O(1).
	for i := range w {
		w[i] *= 0.999 / sum
	}
	return Stencil{MinOff: -rng.Intn(2), W: w}
}

func randRow(rng *rand.Rand, n int) []float64 {
	row := make([]float64, n)
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	return row
}

func maxDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestEvolveConeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		s := randStencil(rng)
		n := 8 + rng.Intn(300)
		maxK := (n - 1) / s.Span()
		if maxK == 0 {
			continue
		}
		k := 1 + rng.Intn(maxK)
		row := randRow(rng, n)

		fast, fpFast := EvolveCone(row, s, k)
		naive, fpNaive := EvolveConeNaive(row, s, k)
		if fpFast != fpNaive {
			t.Fatalf("firstPos mismatch: fast %d naive %d", fpFast, fpNaive)
		}
		if len(fast) != len(naive) {
			t.Fatalf("length mismatch: fast %d naive %d", len(fast), len(naive))
		}
		if d := maxDiff(fast, naive); d > 1e-9 {
			t.Fatalf("trial %d (n=%d k=%d span=%d): max diff %g", trial, n, k, s.Span(), d)
		}
	}
}

// TestEvolveConeForcesFFTPath uses sizes above the naive cutoff so the FFT
// path is definitely exercised.
func TestEvolveConeForcesFFTPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Stencil{MinOff: 0, W: []float64{0.48, 0.51}}
	n := 4096
	k := 1024
	row := randRow(rng, n)
	fast, _ := EvolveCone(row, s, k)
	naive, _ := EvolveConeNaive(row, s, k)
	if d := maxDiff(fast, naive); d > 1e-9 {
		t.Fatalf("max diff %g", d)
	}
}

// TestEvolveConeCentered exercises the BSM-like centered stencil.
func TestEvolveConeCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Stencil{MinOff: -1, W: []float64{0.3, 0.35, 0.3}}
	n := 2048
	k := 500
	row := randRow(rng, n)
	fast, fp := EvolveCone(row, s, k)
	naive, fpn := EvolveConeNaive(row, s, k)
	if fp != k || fpn != k {
		t.Fatalf("firstPos = %d/%d, want %d", fp, fpn, k)
	}
	if d := maxDiff(fast, naive); d > 1e-9 {
		t.Fatalf("max diff %g", d)
	}
}

// TestEvolveComposition checks k1+k2 steps equals k2 steps applied to the
// result of k1 steps (semigroup property).
func TestEvolveComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := Stencil{MinOff: 0, W: []float64{0.4, 0.55}}
	n := 600
	k1, k2 := 130, 170
	row := randRow(rng, n)

	oneShot, _ := EvolveCone(row, s, k1+k2)
	mid, _ := EvolveCone(row, s, k1)
	twoShot, _ := EvolveCone(mid, s, k2)
	if d := maxDiff(oneShot, twoShot); d > 1e-9 {
		t.Fatalf("composition violated: max diff %g", d)
	}
}

// TestEvolveConeZeroSteps returns the input unchanged.
func TestEvolveConeZeroSteps(t *testing.T) {
	row := []float64{1, 2, 3}
	out, fp := EvolveCone(row, Stencil{MinOff: 0, W: []float64{0.5, 0.5}}, 0)
	if fp != 0 || maxDiff(out, row) != 0 {
		t.Fatalf("zero-step evolve changed the row: %v", out)
	}
	out[0] = 99
	if row[0] == 99 {
		t.Fatal("zero-step evolve aliased the input")
	}
}

// TestImpulseGivesBinomialKernel evolves a unit impulse and checks the result
// against the analytically known binomial kernel of a 2-point stencil.
func TestImpulseGivesBinomialKernel(t *testing.T) {
	s0, s1 := 0.47, 0.52
	s := Stencil{MinOff: 0, W: []float64{s0, s1}}
	k := 40
	n := 2 * k
	row := make([]float64, n)
	// Correlation form: out[j] = sum_m C[m] row[j+m]; an impulse at p makes
	// out[j] = C[p-j].
	p := n - 1
	row[p] = 1
	out, _ := EvolveCone(row, s, k)

	binom := func(k, m int) float64 {
		lg, _ := math.Lgamma(float64(k + 1))
		lg1, _ := math.Lgamma(float64(m + 1))
		lg2, _ := math.Lgamma(float64(k - m + 1))
		return math.Exp(lg - lg1 - lg2)
	}
	for j := range out {
		m := p - j
		want := 0.0
		if m >= 0 && m <= k {
			want = binom(k, m) * math.Pow(s0, float64(k-m)) * math.Pow(s1, float64(m))
		}
		if math.Abs(out[j]-want) > 1e-10 {
			t.Fatalf("kernel coefficient %d: got %g want %g", m, out[j], want)
		}
	}
}

func TestKernelCoefficients(t *testing.T) {
	s := Stencil{MinOff: 0, W: []float64{0.5, 0.25}}
	c := KernelCoefficients(s, 2)
	want := []float64{0.25, 0.25, 0.0625}
	if len(c) != len(want) {
		t.Fatalf("kernel length %d, want %d", len(c), len(want))
	}
	if d := maxDiff(c, want); d > 1e-15 {
		t.Fatalf("kernel %v, want %v", c, want)
	}
}

func TestEvolvePeriodicMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 8, 64, 256} {
		for trial := 0; trial < 10; trial++ {
			s := randStencil(rng)
			k := rng.Intn(3 * n)
			row := randRow(rng, n)
			fast := EvolvePeriodic(row, s, k)
			naive := EvolvePeriodicNaive(row, s, k)
			if d := maxDiff(fast, naive); d > 1e-8 {
				t.Fatalf("n=%d k=%d minOff=%d: max diff %g", n, k, s.MinOff, d)
			}
		}
	}
}

// TestEvolvePeriodicConservation: a stencil whose weights sum to 1 conserves
// the row sum on a ring.
func TestEvolvePeriodicConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := Stencil{MinOff: -1, W: []float64{0.25, 0.5, 0.25}}
	row := randRow(rng, 128)
	var before float64
	for _, v := range row {
		before += v
	}
	out := EvolvePeriodic(row, s, 200)
	var after float64
	for _, v := range out {
		after += v
	}
	if math.Abs(before-after) > 1e-8*(1+math.Abs(before)) {
		t.Fatalf("row sum not conserved: %g -> %g", before, after)
	}
}

// TestEvolveLinearity (property): evolution is linear in the input row.
func TestEvolveLinearity(t *testing.T) {
	s := Stencil{MinOff: 0, W: []float64{0.45, 0.5}}
	k := 16
	prop := func(xa, ya [96]float64, alpha float64) bool {
		if math.IsNaN(alpha) || math.Abs(alpha) > 1e3 {
			alpha = 1.5
		}
		x, y := xa[:], ya[:]
		comb := make([]float64, len(x))
		for i := range comb {
			comb[i] = alpha*x[i] + y[i]
		}
		ec, _ := EvolveCone(comb, s, k)
		ex, _ := EvolveCone(x, s, k)
		ey, _ := EvolveCone(y, s, k)
		for i := range ec {
			want := alpha*ex[i] + ey[i]
			if math.Abs(ec[i]-want) > 1e-7*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (Stencil{MinOff: 0, W: []float64{0.5}}).Validate(); err != nil {
		t.Errorf("valid stencil rejected: %v", err)
	}
	if err := (Stencil{}).Validate(); err == nil {
		t.Error("empty stencil accepted")
	}
	if err := (Stencil{W: []float64{math.NaN()}}).Validate(); err == nil {
		t.Error("NaN weight accepted")
	}
	if err := (Stencil{W: []float64{math.Inf(1)}}).Validate(); err == nil {
		t.Error("Inf weight accepted")
	}
}

func TestEvolveConePanics(t *testing.T) {
	s := Stencil{MinOff: 0, W: []float64{0.5, 0.5}}
	row := make([]float64, 4)
	for name, fn := range map[string]func(){
		"negative steps": func() { EvolveCone(row, s, -1) },
		"empty cone":     func() { EvolveCone(row, s, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkEvolveCone64K(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	s := Stencil{MinOff: 0, W: []float64{0.48, 0.51}}
	n := 1 << 16
	row := randRow(rng, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvolveCone(row, s, n/4)
	}
}
