package linstencil

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/par"
)

// The free-boundary recursion asks EvolveCone for the same handful of
// (stencil, transform size, step count) combinations over and over: every
// trapezoid of height h needs the stencil symbol raised to the powers h,
// h/2, h/4, ... at the same padded sizes, thousands of times per solve and —
// because a batch reprices the same lattices across strikes and expiries —
// millions of times per chain. The kernel-spectrum cache memoizes the
// pointwise multiplier
//
//	mult[f] = conj( (P(w_f) * w_f^shift)^k ),  w_f = exp(-2*pi*i*f/N)
//
// on the half spectrum f in [0, N/2], with symbol evaluation done once per
// key from the real plan's twiddle table instead of per-call math.Sincos.
// The cache is process-wide and safe for concurrent use, so every worker of
// a PriceBatch pool shares one copy of each spectrum.
//
// The cache is layered. Below the powered multipliers sits a symbol-table
// layer holding sym[f] = P(w_f) * w_f^shift — the modulated symbol before
// the k-th power — keyed by (stencil, shift, N) only. Every step count k at
// one transform size derives its multiplier from the same table with one
// fft.Pow per frequency, so the Horner evaluation of the symbol is paid once
// per size instead of once per (size, k) pair. And because the half-spectrum
// frequencies of size N are exactly the even frequencies of size 2N
// (w_f^(N) = w_2f^(2N), bitwise: both twiddle tables round the same real
// number), tables transfer across resolutions: a table at a larger size
// subsamples exactly to any smaller power of two, and a table at a smaller
// size seeds the even entries of a larger one so only the odd frequencies
// need fresh evaluation. A scenario sweep that reprices the same stencil at
// several step counts — full resolution for the base book, reduced
// resolution for the bump grid — therefore evaluates each symbol once per
// resolution family rather than once per padded size. SymbolCacheStats and
// amop.ReadPerfCounters expose the cross-resolution transfer counters.

// DefaultSpectrumCacheLimit bounds the bytes of cached multiplier spectra
// (64 MiB ~ enough for every level of a T=2^20 solve many times over). Use
// SetSpectrumCacheLimit to resize; entries are evicted arbitrarily once the
// bound is exceeded, which at worst costs a recompute.
const DefaultSpectrumCacheLimit = 64 << 20

// symKey identifies one cached multiplier spectrum. The first four stencil
// weights are inlined so key construction allocates nothing for the 2- and
// 3-point stencils of the pricing models; longer stencils spill into a
// string.
type symKey struct {
	w0, w1, w2, w3 float64
	nw             int
	spill          string
	shift          int // w_f^shift modulation: 0 for cone, MinOff for ring
	n, k           int
}

func makeKey(s Stencil, shift, n, k int) symKey {
	key := symKey{nw: len(s.W), shift: shift, n: n, k: k}
	w := s.W
	switch {
	case len(w) > 4:
		key.spill = weightsString(w[4:])
		w = w[:4]
		fallthrough
	case len(w) == 4:
		key.w3 = w[3]
		fallthrough
	case len(w) == 3:
		key.w2 = w[2]
		fallthrough
	case len(w) == 2:
		key.w1 = w[1]
		fallthrough
	default:
		key.w0 = w[0]
	}
	return key
}

func weightsString(w []float64) string {
	b := make([]byte, 0, 8*len(w))
	for _, v := range w {
		// NaN/Inf are rejected by Validate; raw bits are a faithful key.
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b = append(b, byte(bits>>(8*i)))
		}
	}
	return string(b)
}

// tabKey identifies one cached symbol table: a symKey without the step
// count. Tables are shared by every power k requested at one transform size,
// and are the unit of cross-resolution transfer.
type tabKey struct {
	w0, w1, w2, w3 float64
	nw             int
	spill          string
	shift          int
	n              int
}

// tab projects the powered-spectrum key onto its symbol-table key.
func (k symKey) tab() tabKey {
	return tabKey{w0: k.w0, w1: k.w1, w2: k.w2, w3: k.w3, nw: k.nw, spill: k.spill, shift: k.shift, n: k.n}
}

// at returns the same stencil/shift key at a different transform size.
func (k tabKey) at(n int) tabKey {
	k.n = n
	return k
}

var specCache = struct {
	mu      sync.Mutex
	entries map[symKey][]complex128
	symbols map[tabKey][]complex128
	// maxSymN is the largest transform size a symbol table was ever cached
	// at: the upper bound of the cross-resolution donor scan. It is never
	// lowered on eviction — a stale bound only costs a few empty map lookups
	// on the miss path.
	maxSymN int
	bytes   int64
	limit   int64
}{
	entries: make(map[symKey][]complex128),
	symbols: make(map[tabKey][]complex128),
	limit:   DefaultSpectrumCacheLimit,
}

var (
	specHits     atomic.Int64
	specMisses   atomic.Int64
	symbolHits   atomic.Int64
	symbolMisses atomic.Int64
	crossResHits atomic.Int64
)

// SpectrumCacheStats reports the cumulative hit/miss counters and the current
// footprint of the kernel-spectrum cache. bytes and entries cover both layers
// (powered multipliers and symbol tables); they share one budget.
func SpectrumCacheStats() (hits, misses, bytes int64, entries int) {
	specCache.mu.Lock()
	bytes, entries = specCache.bytes, len(specCache.entries)+len(specCache.symbols)
	specCache.mu.Unlock()
	return specHits.Load(), specMisses.Load(), bytes, entries
}

// SymbolCacheStats reports the symbol-table layer's cumulative counters:
// exact-size table reuse (hits), tables that had to be built (misses), and —
// of those builds — how many were derived from a table cached at a different
// transform size (crossRes: an exact subsample from a larger table, or a
// build seeded with the even frequencies of a smaller one) instead of
// evaluated from scratch.
func SymbolCacheStats() (hits, misses, crossRes int64) {
	return symbolHits.Load(), symbolMisses.Load(), crossResHits.Load()
}

// SetSpectrumCacheLimit resizes the cache's byte bound and evicts down to it.
// A non-positive limit disables caching entirely.
func SetSpectrumCacheLimit(bytes int64) {
	specCache.mu.Lock()
	specCache.limit = bytes
	evictLocked()
	specCache.mu.Unlock()
}

// evictLocked drops arbitrary entries until the cache fits its limit. Map
// iteration order is effectively random, which is eviction policy enough:
// the working set of a solve is tiny compared to the default bound, and a
// wrong eviction costs one recompute. Powered multipliers go first — they
// rebuild from a symbol table with one Pow per frequency, while a symbol
// table eviction may cost a fresh Horner sweep.
func evictLocked() {
	for k, v := range specCache.entries {
		if specCache.bytes <= specCache.limit {
			return
		}
		specCache.bytes -= int64(16 * len(v))
		delete(specCache.entries, k)
	}
	for k, v := range specCache.symbols {
		if specCache.bytes <= specCache.limit {
			return
		}
		specCache.bytes -= int64(16 * len(v))
		delete(specCache.symbols, k)
	}
}

// kernelSpectrum returns the half-spectrum multiplier for k steps of s on a
// size-n ring, with the symbol additionally modulated by w_f^shift (shift 0
// for the cone geometry, MinOff for the periodic one). The returned slice is
// shared and must not be written.
func kernelSpectrum(s Stencil, shift, n, k int, rp *fft.RPlan) []complex128 {
	key := makeKey(s, shift, n, k)
	specCache.mu.Lock()
	if m, ok := specCache.entries[key]; ok {
		specCache.mu.Unlock()
		specHits.Add(1)
		return m
	}
	specCache.mu.Unlock()
	specMisses.Add(1)

	m := powerSpectrum(symbolTable(key.tab(), s, rp), k)
	checkSpectrumHealth(m, s, n, k)

	specCache.mu.Lock()
	if specCache.limit > 0 {
		if prior, ok := specCache.entries[key]; ok {
			m = prior // concurrent computation won; share one copy
		} else {
			specCache.entries[key] = m
			specCache.bytes += int64(16 * len(m))
			evictLocked()
		}
	}
	specCache.mu.Unlock()
	return m
}

// symbolTable returns the cached modulated-symbol table sym[f] for the key's
// (stencil, shift, n), building it on a miss. The build prefers deriving from
// a table of the same stencil cached at another resolution: a larger table
// subsamples exactly (w_f at size n is w_{f*r} at size n*r, bitwise), a
// smaller one seeds every r-th entry so only the remaining frequencies pay
// the Horner evaluation. The returned slice is shared and must not be
// written.
func symbolTable(tk tabKey, s Stencil, rp *fft.RPlan) []complex128 {
	n := tk.n
	specCache.mu.Lock()
	if tab, ok := specCache.symbols[tk]; ok {
		specCache.mu.Unlock()
		symbolHits.Add(1)
		return tab
	}
	// Scan for a donor at another power-of-two size while still holding the
	// lock; published tables are immutable, so only the map lookups need it.
	var src []complex128
	srcN := 0
	for nn := n << 1; nn > 0 && nn <= specCache.maxSymN; nn <<= 1 {
		if t, ok := specCache.symbols[tk.at(nn)]; ok {
			src, srcN = t, nn
			break
		}
	}
	if src == nil {
		for nn := n >> 1; nn >= 2; nn >>= 1 {
			if t, ok := specCache.symbols[tk.at(nn)]; ok {
				src, srcN = t, nn
				break
			}
		}
	}
	specCache.mu.Unlock()
	symbolMisses.Add(1)

	var tab []complex128
	switch {
	case srcN > n:
		tab = subsampleSymbol(src, srcN, n)
		crossResHits.Add(1)
	case srcN > 0:
		tab = seedSymbol(src, srcN, s, tk.shift, n, rp)
		crossResHits.Add(1)
	default:
		tab = computeSymbol(s, tk.shift, n, rp)
	}

	specCache.mu.Lock()
	if specCache.limit > 0 {
		if prior, ok := specCache.symbols[tk]; ok {
			tab = prior // concurrent build won; share one copy
		} else {
			specCache.symbols[tk] = tab
			specCache.bytes += int64(16 * len(tab))
			if n > specCache.maxSymN {
				specCache.maxSymN = n
			}
			evictLocked()
		}
	}
	specCache.mu.Unlock()
	return tab
}

// subsampleSymbol projects a symbol table at size srcN down to size n < srcN:
// frequency f of the size-n circle is frequency f*(srcN/n) of the size-srcN
// circle, so the smaller table is an exact stride copy of the larger one.
func subsampleSymbol(src []complex128, srcN, n int) []complex128 {
	r := srcN / n
	tab := make([]complex128, n/2+1)
	for f := range tab {
		tab[f] = src[f*r]
	}
	return tab
}

// seedSymbol builds a symbol table at size n > srcN with every (n/srcN)-th
// entry copied from the smaller table (those frequencies coincide on the unit
// circle) and only the remaining frequencies evaluated fresh — half the
// Horner work when the donor is one octave down.
func seedSymbol(src []complex128, srcN int, s Stencil, shift, n int, rp *fft.RPlan) []complex128 {
	r := n / srcN
	half := n / 2
	tab := make([]complex128, half+1)
	par.For(half+1, 1024, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			if f%r == 0 {
				tab[f] = src[f/r]
				continue
			}
			tab[f] = symbolAt(s, shift, rp.Twiddle(f))
		}
	})
	return tab
}

// computeSymbol evaluates the modulated symbol sym[f] = P(w_f) * w_f^shift on
// the half spectrum from the real plan's twiddle table.
func computeSymbol(s Stencil, shift, n int, rp *fft.RPlan) []complex128 {
	half := n / 2
	tab := make([]complex128, half+1)
	par.For(half+1, 1024, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			tab[f] = symbolAt(s, shift, rp.Twiddle(f))
		}
	})
	return tab
}

// symbolAt evaluates P at omega using Horner on the shifted polynomial and
// applies the w^shift modulation.
func symbolAt(s Stencil, shift int, omega complex128) complex128 {
	sym := complex(s.W[len(s.W)-1], 0)
	for i := len(s.W) - 2; i >= 0; i-- {
		sym = sym*omega + complex(s.W[i], 0)
	}
	if shift != 0 {
		mod := fft.Pow(omega, abs(shift))
		if shift < 0 {
			mod = complex(real(mod), -imag(mod))
		}
		sym *= mod
	}
	return sym
}

// checkSpectrumHealth refuses to publish a multiplier spectrum containing
// NaN or Inf. The cache is process-wide: a poisoned entry (a pathological
// stencil whose symbol overflows under the k-th power, or corrupted weights)
// would silently contaminate every future solve sharing the key, across all
// contracts and requests. Panicking instead keeps the damage confined to the
// requesting solve — the batch engine's per-item recover turns it into one
// contract's error — and leaves the cache clean. Cost: one O(n) scan per
// cache build; the hit path is untouched.
func checkSpectrumHealth(m []complex128, s Stencil, n, k int) {
	for f, v := range m {
		re, im := real(v), imag(v)
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			panic(fmt.Sprintf("linstencil: non-finite kernel spectrum at f=%d (n=%d, k=%d, weights=%v): %v", f, n, k, s.W, v))
		}
	}
}

// powerSpectrum raises a symbol table to the k-th power pointwise (binary
// exponentiation, fft.Pow) and conjugates, producing the multiplier the
// evolution hot path applies — O(n log k), paid once per (size, k) cache key
// while the O(n * span) symbol evaluation is amortized across all k.
func powerSpectrum(tab []complex128, k int) []complex128 {
	m := make([]complex128, len(tab))
	par.For(len(tab), 1024, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			kp := fft.Pow(tab[f], k)
			m[f] = complex(real(kp), -imag(kp))
		}
	})
	return m
}

// computeSpectrum evaluates the full symbol power on the half spectrum
// without touching either cache layer. Kept as the from-scratch reference for
// tests; the production path is kernelSpectrum.
func computeSpectrum(s Stencil, shift, n, k int, rp *fft.RPlan) []complex128 {
	return powerSpectrum(computeSymbol(s, shift, n, rp), k)
}
