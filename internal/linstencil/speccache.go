package linstencil

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/par"
)

// The free-boundary recursion asks EvolveCone for the same handful of
// (stencil, transform size, step count) combinations over and over: every
// trapezoid of height h needs the stencil symbol raised to the powers h,
// h/2, h/4, ... at the same padded sizes, thousands of times per solve and —
// because a batch reprices the same lattices across strikes and expiries —
// millions of times per chain. The kernel-spectrum cache memoizes the
// pointwise multiplier
//
//	mult[f] = conj( (P(w_f) * w_f^shift)^k ),  w_f = exp(-2*pi*i*f/N)
//
// on the half spectrum f in [0, N/2], with symbol evaluation done once per
// key from the real plan's twiddle table instead of per-call math.Sincos.
// The cache is process-wide and safe for concurrent use, so every worker of
// a PriceBatch pool shares one copy of each spectrum.

// DefaultSpectrumCacheLimit bounds the bytes of cached multiplier spectra
// (64 MiB ~ enough for every level of a T=2^20 solve many times over). Use
// SetSpectrumCacheLimit to resize; entries are evicted arbitrarily once the
// bound is exceeded, which at worst costs a recompute.
const DefaultSpectrumCacheLimit = 64 << 20

// symKey identifies one cached multiplier spectrum. The first four stencil
// weights are inlined so key construction allocates nothing for the 2- and
// 3-point stencils of the pricing models; longer stencils spill into a
// string.
type symKey struct {
	w0, w1, w2, w3 float64
	nw             int
	spill          string
	shift          int // w_f^shift modulation: 0 for cone, MinOff for ring
	n, k           int
}

func makeKey(s Stencil, shift, n, k int) symKey {
	key := symKey{nw: len(s.W), shift: shift, n: n, k: k}
	w := s.W
	switch {
	case len(w) > 4:
		key.spill = weightsString(w[4:])
		w = w[:4]
		fallthrough
	case len(w) == 4:
		key.w3 = w[3]
		fallthrough
	case len(w) == 3:
		key.w2 = w[2]
		fallthrough
	case len(w) == 2:
		key.w1 = w[1]
		fallthrough
	default:
		key.w0 = w[0]
	}
	return key
}

func weightsString(w []float64) string {
	b := make([]byte, 0, 8*len(w))
	for _, v := range w {
		// NaN/Inf are rejected by Validate; raw bits are a faithful key.
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b = append(b, byte(bits>>(8*i)))
		}
	}
	return string(b)
}

var specCache = struct {
	mu      sync.Mutex
	entries map[symKey][]complex128
	bytes   int64
	limit   int64
}{entries: make(map[symKey][]complex128), limit: DefaultSpectrumCacheLimit}

var (
	specHits   atomic.Int64
	specMisses atomic.Int64
)

// SpectrumCacheStats reports the cumulative hit/miss counters and the current
// footprint of the kernel-spectrum cache.
func SpectrumCacheStats() (hits, misses, bytes int64, entries int) {
	specCache.mu.Lock()
	bytes, entries = specCache.bytes, len(specCache.entries)
	specCache.mu.Unlock()
	return specHits.Load(), specMisses.Load(), bytes, entries
}

// SetSpectrumCacheLimit resizes the cache's byte bound and evicts down to it.
// A non-positive limit disables caching entirely.
func SetSpectrumCacheLimit(bytes int64) {
	specCache.mu.Lock()
	specCache.limit = bytes
	evictLocked()
	specCache.mu.Unlock()
}

// evictLocked drops arbitrary entries until the cache fits its limit. Map
// iteration order is effectively random, which is eviction policy enough:
// the working set of a solve is tiny compared to the default bound, and a
// wrong eviction costs one recompute.
func evictLocked() {
	for k, v := range specCache.entries {
		if specCache.bytes <= specCache.limit {
			break
		}
		specCache.bytes -= int64(16 * len(v))
		delete(specCache.entries, k)
	}
}

// kernelSpectrum returns the half-spectrum multiplier for k steps of s on a
// size-n ring, with the symbol additionally modulated by w_f^shift (shift 0
// for the cone geometry, MinOff for the periodic one). The returned slice is
// shared and must not be written.
func kernelSpectrum(s Stencil, shift, n, k int, rp *fft.RPlan) []complex128 {
	key := makeKey(s, shift, n, k)
	specCache.mu.Lock()
	if m, ok := specCache.entries[key]; ok {
		specCache.mu.Unlock()
		specHits.Add(1)
		return m
	}
	specCache.mu.Unlock()
	specMisses.Add(1)

	m := computeSpectrum(s, shift, n, k, rp)

	specCache.mu.Lock()
	if specCache.limit > 0 {
		if prior, ok := specCache.entries[key]; ok {
			m = prior // concurrent computation won; share one copy
		} else {
			specCache.entries[key] = m
			specCache.bytes += int64(16 * len(m))
			evictLocked()
		}
	}
	specCache.mu.Unlock()
	return m
}

// computeSpectrum evaluates the symbol power on the half spectrum. Symbol
// evaluation reads the plan's precomputed twiddle table; the k-th power uses
// binary exponentiation (fft.Pow), so the whole spectrum costs
// O(n (span + log k)) — paid once per cache key.
func computeSpectrum(s Stencil, shift, n, k int, rp *fft.RPlan) []complex128 {
	half := n / 2
	m := make([]complex128, half+1)
	par.For(half+1, 1024, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			omega := rp.Twiddle(f)
			// Evaluate P at w_f using Horner on the shifted polynomial.
			sym := complex(s.W[len(s.W)-1], 0)
			for i := len(s.W) - 2; i >= 0; i-- {
				sym = sym*omega + complex(s.W[i], 0)
			}
			if shift != 0 {
				mod := fft.Pow(omega, abs(shift))
				if shift < 0 {
					mod = complex(real(mod), -imag(mod))
				}
				sym *= mod
			}
			kp := fft.Pow(sym, k)
			m[f] = complex(real(kp), -imag(kp))
		}
	})
	return m
}
