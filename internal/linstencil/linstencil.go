// Package linstencil implements fast evolution of linear 1D stencils using
// the FFT, the machinery of Ahmad et al. (SPAA 2021) that the option-pricing
// paper invokes as its reference [1].
//
// A linear stencil with weight w[o] on offset o updates a row as
//
//	next[j] = sum_{o=MinOff..MaxOff} w[o] * cur[j+o].
//
// Applying it k times is cross-correlation with the coefficients of the k-th
// power of the stencil polynomial P(x) = sum_o w[o] x^(o-MinOff). Instead of
// materializing those coefficients, the symbol P is evaluated at the N-th
// roots of unity and raised to the k-th power pointwise (binary
// exponentiation), so k steps cost one forward FFT, O(N log k) scalar work,
// and one inverse FFT — O(N (log N + log k)) total instead of O(N*k).
//
// Two variants are provided:
//
//   - EvolveCone: aperiodic evolution on a finite segment. Only positions
//     whose k-step dependency cone lies inside the input are returned.
//   - EvolvePeriodic: evolution on a power-of-two ring.
package linstencil

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/obs"
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
)

// obsEvolveDone records one kernel evolution into the telemetry layer: the
// process-wide evolve-latency histogram plus the fft_evolve stage of the
// active span trace, when a repricing flight has one installed. Callers gate
// on obs.Enabled() so the disabled path costs one atomic load and no
// time.Now.
func obsEvolveDone(start time.Time) {
	obs.FFTEvolve.RecordSince(start)
	obs.Active().AddSince(obs.StageFFTEvolve, start)
}

// Stencil is a linear 1D stencil. W[i] is the weight of offset MinOff+i; the
// last weight corresponds to MaxOff = MinOff + len(W) - 1.
type Stencil struct {
	MinOff int
	W      []float64
}

// MaxOff returns the largest offset of the stencil.
func (s Stencil) MaxOff() int { return s.MinOff + len(s.W) - 1 }

// Span returns MaxOff - MinOff, the degree of the stencil polynomial.
func (s Stencil) Span() int { return len(s.W) - 1 }

// Validate reports whether the stencil is well formed.
func (s Stencil) Validate() error {
	if len(s.W) == 0 {
		return fmt.Errorf("linstencil: stencil has no weights")
	}
	for _, w := range s.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("linstencil: stencil weight %v is not finite", w)
		}
	}
	return nil
}

// naiveCutoff is the work bound (cells touched, roughly n*k*span) below which
// EvolveCone uses the direct loop instead of the FFT path. Both paths are
// exact; this is purely a constant-factor optimization for tiny subproblems.
const naiveCutoff = 1 << 11

// realPath selects the real-input FFT fast path (the default). Disabling it
// routes EvolveCone and EvolvePeriodic through the original full-complex,
// uncached implementation, which the harness uses to A/B the two stacks on
// identical inputs.
var realPath atomic.Bool

func init() { realPath.Store(true) }

// SetRealPath enables or disables the real-input fast path and returns the
// previous setting. It exists for benchmarking and cross-validation; leave it
// enabled in production.
func SetRealPath(enabled bool) bool { return realPath.Swap(enabled) }

// EvolveCone advances cur (positions 0..n-1 at some time t) by k steps and
// returns the exactly computable positions at time t+k: vals[i] is the value
// at position firstPos+i, where firstPos = -k*MinOff and
// len(vals) = n - k*Span(). It panics if no position is computable
// (k*Span() >= n) or k < 0.
//
// The returned slice is freshly owned by the caller; callers that drop it on
// a hot path may recycle it with scratch.PutFloats.
func EvolveCone(cur []float64, s Stencil, k int) (vals []float64, firstPos int) {
	if obs.Enabled() {
		defer obsEvolveDone(time.Now())
	}
	n := len(cur)
	span := s.Span()
	if k < 0 {
		panic("linstencil: negative step count")
	}
	outN := n - k*span
	if outN <= 0 {
		panic(fmt.Sprintf("linstencil: cone empty: n=%d steps=%d span=%d", n, k, span))
	}
	firstPos = -k * s.MinOff
	if k == 0 {
		vals = scratch.Floats(n)
		copy(vals, cur)
		return vals, 0
	}
	if n*k*(span+1) <= naiveCutoff {
		return evolveConeNaive(cur, s, k), firstPos
	}
	if !realPath.Load() {
		return evolveConeComplex(cur, s, k, outN), firstPos
	}

	// Real-input fast path: pad into pooled scratch, transform the real row
	// to its half spectrum, multiply by the cached kernel spectrum, and
	// transform back — half the butterfly work of the complex path and zero
	// steady-state allocations beyond the result row.
	N := fft.NextPow2(n)
	rp := fft.RPlanFor(N)
	x := scratch.Floats(N)
	copy(x, cur)
	clear(x[n:])
	if fft.SoA() && N >= 8 {
		// SoA plane path: the spectrum never materializes as complex128 —
		// forward, pointwise multiply, and inverse all run on split planes.
		evolveSpectrumSoA(rp, x, kernelSpectrum(s, 0, N, k, rp))
	} else {
		spec := scratch.Complexes(rp.HalfLen())
		rp.Forward(x, spec)
		mulSpectrum(spec, kernelSpectrum(s, 0, N, k, rp))
		rp.Inverse(spec, x)
		scratch.PutComplexes(spec)
	}

	// x[t] now holds corr[t] = sum_m C[m] cur[t+m] for the kernel C of
	// P(x)^k; position j at time t+k corresponds to t = j + k*MinOff, and
	// valid t runs over [0, outN).
	vals = scratch.Floats(outN)
	copy(vals, x[:outN])
	scratch.PutFloats(x)
	return vals, firstPos
}

// evolveSpectrumSoA runs forward transform, kernel multiply, and inverse
// transform of x in place over split spectrum planes. The multiplier stays
// complex128 (it comes from the kernel-spectrum cache); only the per-solve
// spectrum data is carried as planes.
func evolveSpectrumSoA(rp *fft.RPlan, x []float64, mult []complex128) {
	hl := rp.HalfLen()
	sr := scratch.Floats(hl)
	si := scratch.Floats(hl)
	rp.ForwardSoA(x, sr, si)
	mulSpectrumSoA(sr, si, mult)
	rp.InverseSoA(sr, si, x)
	scratch.PutFloats(sr)
	scratch.PutFloats(si)
}

// mulSpectrum multiplies the half spectrum pointwise by the cached kernel
// multiplier. The small case runs a plain loop so the call allocates nothing
// (the parallel variant's closure would box both slice headers per call).
// The cutover follows the FFT substrate's parallel-stage threshold so the
// harness's fork-join A/B experiments cover this stage too.
func mulSpectrum(spec, mult []complex128) {
	if len(spec) >= fft.ParThreshold() {
		mulSpectrumPar(spec, mult)
		return
	}
	for f := range spec {
		spec[f] *= mult[f]
	}
}

func mulSpectrumPar(spec, mult []complex128) {
	par.For(len(spec), 4096, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			spec[f] *= mult[f]
		}
	})
}

// mulSpectrumSoA is mulSpectrum over split spectrum planes: one complex
// multiply per bin, expanded into float64 lane arithmetic.
func mulSpectrumSoA(sr, si []float64, mult []complex128) {
	if len(sr) >= fft.ParThreshold() {
		mulSpectrumSoAPar(sr, si, mult)
		return
	}
	mulSpectrumSoARange(sr, si, mult, 0, len(sr))
}

func mulSpectrumSoARange(sr, si []float64, mult []complex128, lo, hi int) {
	for f := lo; f < hi; f++ {
		mr, mi := real(mult[f]), imag(mult[f])
		r, i := sr[f], si[f]
		sr[f], si[f] = r*mr-i*mi, r*mi+i*mr
	}
}

func mulSpectrumSoAPar(sr, si []float64, mult []complex128) {
	par.For(len(sr), 4096, func(lo, hi int) { mulSpectrumSoARange(sr, si, mult, lo, hi) })
}

// evolveConeComplex is the pre-real-path implementation: full complex128
// transform with per-call symbol evaluation and no caching. Kept verbatim as
// the A/B reference for parity tests and the harness's fastpath experiment.
func evolveConeComplex(cur []float64, s Stencil, k, outN int) []float64 {
	n := len(cur)
	N := fft.NextPow2(n)
	plan := fft.PlanFor(N)
	a := make([]complex128, N)
	for i, v := range cur {
		a[i] = complex(v, 0)
	}
	plan.Forward(a)
	mulSymbolPow(a, s, k, N)
	plan.Inverse(a)
	vals := make([]float64, outN)
	for i := range vals {
		vals[i] = real(a[i])
	}
	return vals
}

// EvolveConeComplex runs EvolveCone's legacy full-complex path regardless of
// the SetRealPath setting. Exposed for parity tests and benchmarks.
func EvolveConeComplex(cur []float64, s Stencil, k int) (vals []float64, firstPos int) {
	n := len(cur)
	outN := n - k*s.Span()
	if k < 0 || outN <= 0 {
		panic("linstencil: cone empty")
	}
	if k == 0 {
		return append([]float64(nil), cur...), 0
	}
	return evolveConeComplex(cur, s, k, outN), -k * s.MinOff
}

// mulSymbolPow multiplies the spectrum a (size N) pointwise by the conjugate
// of symbol(s)^k, which converts the product into a correlation with the
// k-step kernel after the inverse transform.
func mulSymbolPow(a []complex128, s Stencil, k, N int) {
	par.For(N, 1024, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			sin, cos := math.Sincos(-2 * math.Pi * float64(f) / float64(N))
			omega := complex(cos, sin)
			// Evaluate P at omega^f using Horner on the shifted polynomial.
			sym := complex(s.W[len(s.W)-1], 0)
			for i := len(s.W) - 2; i >= 0; i-- {
				sym = sym*omega + complex(s.W[i], 0)
			}
			kp := fft.Pow(sym, k)
			a[f] *= complex(real(kp), -imag(kp))
		}
	})
}

// EvolvePeriodic advances cur, interpreted as a ring of power-of-two size, by
// k steps: next[j] = sum_o w[o]*cur[(j+o) mod n]. The result has the same
// length as the input.
//
// On the ring the correlation index never leaves the grid, but the kernel
// offsets must be taken relative to the true offsets, not the shifted
// polynomial: position j pulls from j+MinOff+m. The MinOff shift is folded
// into the cached kernel spectrum as a w_f^MinOff modulation.
func EvolvePeriodic(cur []float64, s Stencil, k int) []float64 {
	if obs.Enabled() {
		defer obsEvolveDone(time.Now())
	}
	n := len(cur)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("linstencil: EvolvePeriodic requires power-of-two length, got %d", n))
	}
	if k < 0 {
		panic("linstencil: negative step count")
	}
	if !realPath.Load() {
		return evolvePeriodicComplex(cur, s, k)
	}
	rp := fft.RPlanFor(n)
	x := scratch.Floats(n)
	copy(x, cur)
	if fft.SoA() && n >= 8 {
		evolveSpectrumSoA(rp, x, kernelSpectrum(s, s.MinOff, n, k, rp))
		return x
	}
	spec := scratch.Complexes(rp.HalfLen())
	rp.Forward(x, spec)
	mulSpectrum(spec, kernelSpectrum(s, s.MinOff, n, k, rp))
	rp.Inverse(spec, x)
	scratch.PutComplexes(spec)
	return x
}

// evolvePeriodicComplex is the pre-real-path ring evolution: full complex
// transform with the symbol re-derived per frequency via math.Sincos. Kept as
// the A/B reference.
func evolvePeriodicComplex(cur []float64, s Stencil, k int) []float64 {
	n := len(cur)
	plan := fft.PlanFor(n)
	a := make([]complex128, n)
	for i, v := range cur {
		a[i] = complex(v, 0)
	}
	plan.Forward(a)
	par.For(n, 1024, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			sin, cos := math.Sincos(-2 * math.Pi * float64(f) / float64(n))
			omega := complex(cos, sin)
			sym := complex(s.W[len(s.W)-1], 0)
			for i := len(s.W) - 2; i >= 0; i-- {
				sym = sym*omega + complex(s.W[i], 0)
			}
			shift := fft.Pow(omega, abs(s.MinOff))
			if s.MinOff < 0 {
				shift = complex(real(shift), -imag(shift))
			}
			sym *= shift
			kp := fft.Pow(sym, k)
			a[f] *= complex(real(kp), -imag(kp))
		}
	})
	plan.Inverse(a)
	out := make([]float64, n)
	for i := range out {
		out[i] = real(a[i])
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// evolveConeNaive is the direct O(n*k*span) evolution used both as the small
// base case and as the testing reference (see EvolveConeNaive).
func evolveConeNaive(cur []float64, s Stencil, k int) []float64 {
	span := s.Span()
	row := scratch.Floats(len(cur))
	copy(row, cur)
	for step := 0; step < k; step++ {
		m := len(row) - span
		next := row[:m]
		for j := 0; j < m; j++ {
			var acc float64
			for i, w := range s.W {
				acc += w * row[j+i]
			}
			next[j] = acc
		}
		row = next
	}
	return row
}

// EvolveConeNaive exposes the direct evolution for tests and
// cross-validation. Semantics match EvolveCone exactly.
func EvolveConeNaive(cur []float64, s Stencil, k int) (vals []float64, firstPos int) {
	n := len(cur)
	if k < 0 || n-k*s.Span() <= 0 {
		panic("linstencil: cone empty")
	}
	return evolveConeNaive(cur, s, k), -k * s.MinOff
}

// EvolvePeriodicNaive is the direct ring evolution used as a testing
// reference for EvolvePeriodic. It accepts any positive length.
func EvolvePeriodicNaive(cur []float64, s Stencil, k int) []float64 {
	n := len(cur)
	row := append([]float64(nil), cur...)
	next := make([]float64, n)
	for step := 0; step < k; step++ {
		for j := 0; j < n; j++ {
			var acc float64
			for i, w := range s.W {
				idx := j + s.MinOff + i
				idx = ((idx % n) + n) % n
				acc += w * row[idx]
			}
			next[j] = acc
		}
		row, next = next, row
	}
	return row
}

// KernelCoefficients returns the k-step kernel C (coefficients of P(x)^k) by
// repeated convolution. Exposed for tests and for callers that want to
// inspect the effective multi-step stencil; O(k^2 * span^2) — not for the
// hot path.
func KernelCoefficients(s Stencil, k int) []float64 {
	c := []float64{1}
	for step := 0; step < k; step++ {
		nc := make([]float64, len(c)+s.Span())
		for i, ci := range c {
			for j, w := range s.W {
				nc[i+j] += ci * w
			}
		}
		c = nc
	}
	return c
}
