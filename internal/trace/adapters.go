package trace

import (
	"math"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/topm"
)

// BOPMSpec adapts a binomial model (American call) to the traced kernels.
func BOPMSpec(m *bopm.Model) *GRSpec {
	return &GRSpec{
		W:     m.Stencil().W,
		T:     m.T,
		Hi0:   m.T,
		Init:  func(col int) float64 { return math.Max(0, m.Exercise(option.Call, 0, col)) },
		Green: func(depth, col int) float64 { return m.Exercise(option.Call, depth, col) },
		Bnd0:  m.LeafBoundary(),
	}
}

// TOPMSpec adapts a trinomial model (American call) to the traced kernels.
func TOPMSpec(m *topm.Model) *GRSpec {
	return &GRSpec{
		W:     m.Stencil().W,
		T:     m.T,
		Hi0:   2 * m.T,
		Init:  func(col int) float64 { return math.Max(0, m.Exercise(option.Call, 0, col)) },
		Green: func(depth, col int) float64 { return m.Exercise(option.Call, depth, col) },
		Bnd0:  m.LeafBoundary(),
	}
}

// BSMSpec adapts a Black-Scholes FD model (American put) to the traced
// kernels. The traced result is in dimensionless units; multiply by K to
// compare with bsm prices.
func BSMSpec(m *bsm.Model) *GLSpec {
	return &GLSpec{
		W:     m.Stencil().W,
		T:     m.T,
		Lo0:   0,
		Hi0:   2 * m.T,
		Init:  func(col int) float64 { return math.Max(m.Green(col), 0) },
		Green: func(depth, col int) float64 { return m.Green(col) },
		Bnd0:  m.LeafBoundary(),
	}
}
