// Package trace contains instrumented ("traced") variants of every pricing
// kernel the paper profiles with PAPI (Figure 7) and RAPL (Figures 6 and
// 10). Each traced kernel performs the same arithmetic as its production
// counterpart — tests assert the prices agree — but routes every array
// access through a cachesim.Hierarchy and accrues approximate flop counts,
// so cache-miss and energy experiments can be reproduced in software.
//
// Traced kernels are deliberately serial: hardware-counter runs in the paper
// measure total traffic, which is schedule-independent for these algorithms,
// and a serial replay keeps the simulator deterministic.
package trace

import (
	"math"
	"math/bits"

	"github.com/nlstencil/amop/internal/cachesim"
	"github.com/nlstencil/amop/internal/fft"
)

// Approximate flop weights for the energy model. These are coarse event
// weights, not an instruction-level model: transcendental calls are scored
// as a fixed multiple of a multiply-add.
const (
	flopsPerCell      = 4  // multiply-add pairs + compare in a stencil cell
	flopsPerExp       = 16 // exp/log in a green/exercise evaluation
	flopsPerButterfly = 10
)

// ---------------------------------------------------------------------------
// Traced FFT and multi-step linear evolution.
// ---------------------------------------------------------------------------

// tracedPlan mirrors fft.Plan with its twiddle and bit-reversal tables
// resident in simulated memory.
type tracedPlan struct {
	n       int
	rev     []int32
	tw      []complex128
	revBase uint64
	twBase  uint64
}

type planCache map[int]*tracedPlan

func (pc planCache) get(h *cachesim.Hierarchy, n int) *tracedPlan {
	if p, ok := pc[n]; ok {
		return p
	}
	p := &tracedPlan{n: n}
	p.rev = make([]int32, n)
	shift := bits.UintSize - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse(uint(i)) >> shift)
	}
	p.tw = make([]complex128, n/2)
	for k := range p.tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.tw[k] = complex(c, s)
	}
	p.revBase = h.Alloc(4 * n)
	p.twBase = h.Alloc(16 * (n / 2))
	// Table construction writes once, as in the real plan cache.
	for i := 0; i < n; i++ {
		h.Access(p.revBase + 4*uint64(i))
	}
	for k := range p.tw {
		h.Access(p.twBase + 16*uint64(k))
	}
	pc[n] = p
	return p
}

func (p *tracedPlan) transform(h *cachesim.Hierarchy, a cachesim.C128, inverse bool) {
	n := p.n
	for i, r := range p.rev {
		h.Access(p.revBase + 4*uint64(i))
		if int32(i) < r {
			x, y := a.Get(i), a.Get(int(r))
			a.Set(i, y)
			a.Set(int(r), x)
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for b := 0; b < n; b += size {
			for j := 0; j < half; j++ {
				h.Access(p.twBase + 16*uint64(j*step))
				w := p.tw[j*step]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				lo, hi := b+j, b+j+half
				x, y := a.Get(lo), a.Get(hi)
				t := y * w
				a.Set(hi, x-t)
				a.Set(lo, x+t)
				h.AddFlops(flopsPerButterfly)
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := 0; i < n; i++ {
			a.Set(i, a.Get(i)*inv)
		}
		h.AddFlops(uint64(2 * n))
	}
}

// engine carries the hierarchy and plan cache through a traced solve.
type engine struct {
	h     *cachesim.Hierarchy
	plans planCache
}

func newEngine(h *cachesim.Hierarchy) *engine {
	return &engine{h: h, plans: planCache{}}
}

// evolveCone mirrors linstencil.EvolveCone on traced memory: k steps of the
// stencil with offsets minOff..minOff+len(w)-1 applied to in, returning the
// in-cone outputs (first position -k*minOff relative to in's origin).
func (e *engine) evolveCone(in cachesim.F64, minOff int, w []float64, k int) cachesim.F64 {
	n := in.Len()
	span := len(w) - 1
	outN := n - k*span
	if outN <= 0 {
		panic("trace: cone empty")
	}
	if k == 0 {
		out := e.h.NewF64(n)
		for i := 0; i < n; i++ {
			out.Set(i, in.Get(i))
		}
		return out
	}
	if n*k*(span+1) <= 1<<11 {
		// Mirror the production naive cutoff so traffic patterns match.
		buf := e.h.NewF64(n)
		for i := 0; i < n; i++ {
			buf.Set(i, in.Get(i))
		}
		m := n
		for step := 0; step < k; step++ {
			m -= span
			for j := 0; j < m; j++ {
				var acc float64
				for i, wi := range w {
					acc += wi * buf.Get(j+i)
				}
				buf.Set(j, acc)
				e.h.AddFlops(flopsPerCell)
			}
		}
		return buf.Slice(0, outN)
	}

	N := fft.NextPow2(n)
	p := e.plans.get(e.h, N)
	a := e.h.NewC128(N)
	for i := 0; i < n; i++ {
		a.Set(i, complex(in.Get(i), 0))
	}
	for i := n; i < N; i++ {
		a.Set(i, 0)
	}
	p.transform(e.h, a, false)
	logK := uint64(bits.Len(uint(k)))
	for f := 0; f < N; f++ {
		sin, cos := math.Sincos(-2 * math.Pi * float64(f) / float64(N))
		omega := complex(cos, sin)
		sym := complex(w[len(w)-1], 0)
		for i := len(w) - 2; i >= 0; i-- {
			sym = sym*omega + complex(w[i], 0)
		}
		kp := fft.Pow(sym, k)
		a.Set(f, a.Get(f)*complex(real(kp), -imag(kp)))
		e.h.AddFlops(flopsPerExp + 8*logK + 8)
	}
	p.transform(e.h, a, true)
	out := e.h.NewF64(outN)
	for i := 0; i < outN; i++ {
		out.Set(i, real(a.Get(i)))
	}
	return out
}
