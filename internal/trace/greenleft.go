package trace

import "github.com/nlstencil/amop/internal/cachesim"

// GLSpec describes a centered green-left nonlinear stencil instance for the
// traced kernels; it mirrors fbstencil.GreenLeft.
type GLSpec struct {
	W        []float64 // offsets -1, 0, +1
	T        int
	Lo0, Hi0 int
	Init     func(col int) float64
	Green    func(depth, col int) float64
	Bnd0     int
	Base     int
}

// NaiveGL replays the projected explicit FD sweep over the full cone (the
// vanilla-bsm baseline): ping-pong row buffers, every cell touched.
func NaiveGL(h *cachesim.Hierarchy, s *GLSpec) float64 {
	width := s.Hi0 - s.Lo0 + 1
	cur := h.NewF64(width)
	next := h.NewF64(width)
	for k := 0; k < width; k++ {
		v := s.Init(s.Lo0 + k)
		cur.Set(k, v)
		h.AddFlops(flopsPerExp)
	}
	for d := 1; d <= s.T; d++ {
		lo, hi := s.Lo0+d, s.Hi0-d
		for k := lo; k <= hi; k++ {
			i := k - (s.Lo0 + d - 1)
			lin := s.W[0]*cur.Get(i-1) + s.W[1]*cur.Get(i) + s.W[2]*cur.Get(i+1)
			if g := s.Green(d, k); g > lin {
				lin = g
			}
			next.Set(k-lo, lin)
			h.AddFlops(flopsPerCell + 2)
		}
		cur, next = next, cur
	}
	return cur.Get(0)
}

// FastGL replays the paper's FFT-based BSM solver (a serial mirror of
// fbstencil.SolveGreenLeft) on traced memory.
func FastGL(h *cachesim.Hierarchy, s *GLSpec) float64 {
	e := &glTrace{engine: newEngine(h), s: s, base: s.Base}
	if e.base <= 0 {
		e.base = 8
	}
	apex := s.Lo0 + s.T

	bnd := s.Bnd0
	var seg cachesim.F64
	if bnd < s.Hi0 {
		from := max(bnd+1, s.Lo0)
		bnd = from - 1
		seg = h.NewF64(s.Hi0 - from + 1)
		for j := 0; j < seg.Len(); j++ {
			seg.Set(j, s.Init(from+j))
			h.AddFlops(flopsPerExp)
		}
	} else {
		bnd = s.Hi0
	}

	d := 0
	if s.T >= 1 {
		seg, bnd = e.exactFirstStep(seg, bnd)
		d = 1
	}
	for d < s.T {
		if bnd >= e.hi(d) {
			return s.Green(s.T, apex)
		}
		remaining := s.T - d
		if bnd < e.lo(d) {
			out := e.evolveCone(seg, -1, s.W, remaining)
			return out.Get(e.lo(d) - (bnd + 1))
		}
		hh := min(remaining/2, (e.hi(d)-bnd)/2)
		if hh < e.base {
			seg, bnd = e.naiveStep(seg, bnd, d)
			d++
			continue
		}
		read := e.read(seg, bnd, d)
		zoneVals, newBnd := e.zone(read, d, bnd, hh)
		in := e.h.NewF64(e.hi(d) - bnd + 1)
		in.Set(0, s.Green(d, bnd))
		e.h.AddFlops(flopsPerExp)
		for i := 0; i < seg.Len(); i++ {
			in.Set(1+i, seg.Get(i))
		}
		rightVals := e.evolveCone(in, -1, s.W, hh)
		newHi := e.hi(d + hh)
		newSeg := e.h.NewF64(newHi - newBnd)
		for j := newBnd + 1; j <= bnd+hh; j++ {
			newSeg.Set(j-newBnd-1, zoneVals.Get(j-(bnd-hh)))
		}
		for i := 1; i < rightVals.Len(); i++ {
			newSeg.Set(bnd+hh+i-(newBnd+1), rightVals.Get(i))
		}
		seg, bnd = newSeg, newBnd
		d += hh
	}
	if apex > bnd {
		return seg.Get(apex - (bnd + 1))
	}
	return s.Green(s.T, apex)
}

type glTrace struct {
	*engine
	s    *GLSpec
	base int
}

func (e *glTrace) lo(depth int) int { return e.s.Lo0 + depth }
func (e *glTrace) hi(depth int) int { return e.s.Hi0 - depth }

func (e *glTrace) read(seg cachesim.F64, bnd, depth int) func(col int) float64 {
	return func(col int) float64 {
		if col > bnd {
			return seg.Get(col - bnd - 1)
		}
		e.h.AddFlops(flopsPerExp)
		return e.s.Green(depth, col)
	}
}

func (e *glTrace) exactFirstStep(seg cachesim.F64, bnd int) (cachesim.F64, int) {
	read := e.read(seg, bnd, 0)
	lo1, hi1 := e.lo(1), e.hi(1)
	n := hi1 - lo1 + 1
	if n <= 0 {
		return seg, bnd
	}
	vals := e.h.NewF64(n)
	newBnd := lo1 - 1
	for idx := 0; idx < n; idx++ {
		j := lo1 + idx
		lin := e.s.W[0]*read(j-1) + e.s.W[1]*read(j) + e.s.W[2]*read(j+1)
		g := e.s.Green(1, j)
		if g > lin {
			vals.Set(idx, g)
			newBnd = j
		} else {
			vals.Set(idx, lin)
		}
		e.h.AddFlops(flopsPerCell + flopsPerExp)
	}
	return vals.Slice(newBnd+1-lo1, n), newBnd
}

func (e *glTrace) naiveStep(seg cachesim.F64, bnd, d int) (cachesim.F64, int) {
	read := e.read(seg, bnd, d)
	newHi := e.hi(d + 1)
	lo := max(bnd, e.lo(d+1))
	next := e.h.NewF64(newHi - lo + 1)
	newBnd := bnd - 1
	if bnd < e.lo(d+1) {
		newBnd = bnd
	}
	for j := lo; j <= newHi; j++ {
		lin := e.s.W[0]*read(j-1) + e.s.W[1]*read(j) + e.s.W[2]*read(j+1)
		g := e.s.Green(d+1, j)
		if g > lin {
			next.Set(j-lo, g)
			if j > newBnd {
				newBnd = j
			}
		} else {
			next.Set(j-lo, lin)
		}
		e.h.AddFlops(flopsPerCell + flopsPerExp)
	}
	if trim := newBnd + 1 - lo; trim > 0 {
		next = next.Slice(trim, next.Len())
	}
	return next, newBnd
}

func (e *glTrace) zone(read func(int) float64, d, bnd, hh int) (cachesim.F64, int) {
	if hh <= e.base {
		return e.zoneNaive(read, d, bnd, hh)
	}
	h1 := hh / 2
	h2 := hh - h1

	midZone, midBnd := e.zone(read, d, bnd, h1)
	in := e.h.NewF64(2*hh + 1)
	for j := 0; j <= 2*hh; j++ {
		in.Set(j, read(bnd+j))
	}
	midRight := e.evolveCone(in, -1, e.s.W, h1)

	midRead := func(col int) float64 {
		switch {
		case col <= midBnd:
			e.h.AddFlops(flopsPerExp)
			return e.s.Green(d+h1, col)
		case col <= bnd+h1:
			return midZone.Get(col - (bnd - h1))
		default:
			return midRight.Get(col - (bnd + h1))
		}
	}

	botZone, newBnd := e.zone(midRead, d+h1, midBnd, h2)
	n := bnd + 2*hh - h1 - midBnd + 1
	in2 := e.h.NewF64(n)
	for j := 0; j < n; j++ {
		in2.Set(j, midRead(midBnd+j))
	}
	botRight := e.evolveCone(in2, -1, e.s.W, h2)

	out := e.h.NewF64(2*hh + 1)
	for j := bnd - hh; j <= bnd+hh; j++ {
		switch {
		case j <= newBnd:
			e.h.AddFlops(flopsPerExp)
			out.Set(j-(bnd-hh), e.s.Green(d+hh, j))
		case j <= midBnd+h2:
			out.Set(j-(bnd-hh), botZone.Get(j-(midBnd-h2)))
		default:
			out.Set(j-(bnd-hh), botRight.Get(j-(midBnd+h2)))
		}
	}
	return out, newBnd
}

func (e *glTrace) zoneNaive(read func(int) float64, d, bnd, hh int) (cachesim.F64, int) {
	lo, hi := bnd-2*hh, bnd+2*hh
	cur := e.h.NewF64(hi - lo + 1)
	for j := lo; j <= hi; j++ {
		cur.Set(j-lo, read(j))
	}
	b := bnd
	for t := 1; t <= hh; t++ {
		nlo, nhi := lo+1, hi-1
		next := e.h.NewF64(nhi - nlo + 1)
		newB := b - 1
		for j := nlo; j <= nhi; j++ {
			lin := e.s.W[0]*cur.Get(j-1-lo) + e.s.W[1]*cur.Get(j-lo) + e.s.W[2]*cur.Get(j+1-lo)
			g := e.s.Green(d+t, j)
			if g > lin {
				next.Set(j-nlo, g)
				if j > newB {
					newB = j
				}
			} else {
				next.Set(j-nlo, lin)
			}
			e.h.AddFlops(flopsPerCell + flopsPerExp)
		}
		cur, lo, hi, b = next, nlo, nhi, newB
	}
	return cur, b
}
