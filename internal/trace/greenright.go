package trace

import "github.com/nlstencil/amop/internal/cachesim"

// GRSpec describes a one-sided (green-right) nonlinear stencil instance for
// the traced kernels; it mirrors fbstencil.GreenRight.
type GRSpec struct {
	W     []float64
	T     int
	Hi0   int
	Init  func(col int) float64
	Green func(depth, col int) float64
	Bnd0  int
	Base  int // fast-solver recursion cutoff (0 = 8)
}

func (s *GRSpec) span() int { return len(s.W) - 1 }

// NaiveGR replays the standard nested loop (Figure 1 / ql-style baseline):
// a single row buffer updated in place, every cell of the triangle touched.
func NaiveGR(h *cachesim.Hierarchy, s *GRSpec) float64 {
	r := s.span()
	row := h.NewF64(s.Hi0 + 1)
	for j := 0; j <= s.Hi0; j++ {
		row.Set(j, s.Init(j))
		h.AddFlops(flopsPerExp)
	}
	for d := 1; d <= s.T; d++ {
		hi := s.Hi0 - d*r
		for j := 0; j <= hi; j++ {
			var lin float64
			for i, w := range s.W {
				lin += w * row.Get(j+i)
			}
			if g := s.Green(d, j); g > lin {
				lin = g
			}
			row.Set(j, lin)
			h.AddFlops(flopsPerCell + 2) // incremental exercise: one mul
		}
	}
	return row.Get(0)
}

// TiledGR replays the cache-aware split-tiled sweep (zb-style baseline),
// mirroring sweep.Tiled's buffers and halos.
func TiledGR(h *cachesim.Hierarchy, s *GRSpec, tileW, tileH int) float64 {
	r := s.span()
	if tileW <= 0 {
		tileW = 2048
	}
	if tileW <= 2*r {
		tileW = 2*r + 1
	}
	if tileH <= 0 {
		tileH = tileW / (4 * r)
		if tileH < 1 {
			tileH = 1
		}
	}
	if tileH*r >= tileW {
		tileH = (tileW - 1) / r
	}

	row := h.NewF64(s.Hi0 + 1)
	for j := 0; j <= s.Hi0; j++ {
		row.Set(j, s.Init(j))
		h.AddFlops(flopsPerExp)
	}
	depth := 0
	for depth < s.T {
		hh := min(tileH, s.T-depth)
		row = tiledBandGR(h, s, row, depth, hh, tileW, r)
		depth += hh
	}
	return row.Get(0)
}

func tiledBandGR(h *cachesim.Hierarchy, s *GRSpec, row cachesim.F64, depth, hh, w, r int) cachesim.F64 {
	topHi := row.Len() - 1
	botHi := topHi - hh*r
	out := h.NewF64(botHi + 1)
	numTiles := max((topHi+1)/w, 1)
	tileLo := func(k int) int { return k * w }
	tileHi := func(k int) int {
		if k == numTiles-1 {
			return topHi
		}
		return (k+1)*w - 1
	}

	haloL := make([]cachesim.F64, numTiles)
	haloR := make([]cachesim.F64, numTiles)
	for k := 0; k < numTiles; k++ {
		a, b := tileLo(k), tileHi(k)
		n := b - a + 1
		buf := h.NewF64(n)
		for j := 0; j < n; j++ {
			buf.Set(j, row.Get(a+j))
		}
		hl := h.NewF64(hh * r)
		hr := h.NewF64(hh * r)
		for t := 1; t <= hh; t++ {
			for i := 0; i < r; i++ {
				hl.Set((t-1)*r+i, buf.Get(i))
				hr.Set((t-1)*r+i, buf.Get(n-r+i))
			}
			n -= r
			for j := 0; j < n; j++ {
				var lin float64
				for i, wi := range s.W {
					lin += wi * buf.Get(j+i)
				}
				if g := s.Green(depth+t, a+j); g > lin {
					lin = g
				}
				buf.Set(j, lin)
				h.AddFlops(flopsPerCell + 2)
			}
			buf = buf.Slice(0, n)
		}
		haloL[k], haloR[k] = hl, hr
		for j := 0; j < n; j++ {
			out.Set(a+j, buf.Get(j))
		}
	}

	for k := 0; k < numTiles-1; k++ {
		b := tileHi(k)
		var tri cachesim.F64
		for t := 1; t <= hh; t++ {
			width := r * t
			src := h.NewF64(width + r)
			for i := 0; i < r; i++ {
				src.Set(i, haloR[k].Get((t-1)*r+i))
			}
			for i := 0; i < width-r; i++ {
				src.Set(r+i, tri.Get(i))
			}
			for i := 0; i < r; i++ {
				src.Set(width+i, haloL[k+1].Get((t-1)*r+i))
			}
			next := h.NewF64(width)
			lo := b - width + 1
			for j := 0; j < width; j++ {
				var lin float64
				for i, wi := range s.W {
					lin += wi * src.Get(j+i)
				}
				if g := s.Green(depth+t, lo+j); g > lin {
					lin = g
				}
				next.Set(j, lin)
				h.AddFlops(flopsPerCell + 2)
			}
			tri = next
		}
		for j := 0; j < hh*r; j++ {
			out.Set(b-hh*r+1+j, tri.Get(j))
		}
	}
	return out
}

// FastGR replays the paper's FFT-based solver (a serial mirror of
// fbstencil.SolveGreenRight) on traced memory.
func FastGR(h *cachesim.Hierarchy, s *GRSpec) float64 {
	e := &grTrace{engine: newEngine(h), s: s, base: s.Base}
	if e.base <= 0 {
		e.base = 8
	}
	r := s.span()
	bnd := min(s.Bnd0, s.Hi0)
	var seg cachesim.F64
	if bnd >= 0 {
		seg = h.NewF64(bnd + 1)
		for j := 0; j <= bnd; j++ {
			seg.Set(j, s.Init(j))
			h.AddFlops(flopsPerExp)
		}
	}
	d := 0
	if s.T >= 1 {
		seg, bnd = e.exactFirstStep(seg, bnd)
		d = 1
	}
	for d < s.T {
		if bnd < 0 {
			return s.Green(s.T, 0)
		}
		remaining := s.T - d
		hh := min((bnd+1)/r, remaining)
		if hh >= e.base {
			seg, bnd = e.solveTrap(seg, 0, bnd, d, hh)
			d += hh
			continue
		}
		seg, bnd = e.naiveStep(seg, 0, bnd, d)
		d++
	}
	if bnd < 0 {
		return s.Green(s.T, 0)
	}
	return seg.Get(0)
}

type grTrace struct {
	*engine
	s    *GRSpec
	base int
}

func (e *grTrace) hi(depth int) int { return e.s.Hi0 - depth*e.s.span() }

func (e *grTrace) read(seg cachesim.F64, c0, bnd, depth int) func(col int) float64 {
	return func(col int) float64 {
		if col <= bnd {
			return seg.Get(col - c0)
		}
		e.h.AddFlops(flopsPerExp)
		return e.s.Green(depth, col)
	}
}

func (e *grTrace) exactFirstStep(seg cachesim.F64, bnd int) (cachesim.F64, int) {
	read := e.read(seg, 0, bnd, 0)
	hi1 := e.hi(1)
	if hi1 < 0 {
		return cachesim.F64{}, -1
	}
	vals := e.h.NewF64(hi1 + 1)
	newBnd := -1
	for j := 0; j <= hi1; j++ {
		var lin float64
		for i, w := range e.s.W {
			lin += w * read(j+i)
		}
		g := e.s.Green(1, j)
		if lin >= g {
			vals.Set(j, lin)
			newBnd = j // ascending scan: ends at the largest red column
		} else {
			vals.Set(j, g)
		}
		e.h.AddFlops(flopsPerCell + flopsPerExp)
	}
	if newBnd < 0 {
		return cachesim.F64{}, -1
	}
	return vals.Slice(0, newBnd+1), newBnd
}

func (e *grTrace) naiveStep(seg cachesim.F64, c0, bnd, d int) (cachesim.F64, int) {
	read := e.read(seg, c0, bnd, d)
	cap1 := min(bnd, e.hi(d+1))
	if cap1 < c0 {
		return cachesim.F64{}, c0 - 1
	}
	next := e.h.NewF64(cap1 - c0 + 1)
	newBnd := c0 - 1
	for j := c0; j <= cap1; j++ {
		var lin float64
		for i, w := range e.s.W {
			lin += w * read(j+i)
		}
		g := e.s.Green(d+1, j)
		if lin >= g {
			next.Set(j-c0, lin)
			newBnd = j
		} else {
			next.Set(j-c0, g)
		}
		e.h.AddFlops(flopsPerCell + flopsPerExp)
	}
	if newBnd < cap1 {
		next = next.Slice(0, max(newBnd-c0+1, 0))
	}
	return next, newBnd
}

func (e *grTrace) naiveBlock(seg cachesim.F64, c0, bnd, d, hh int) (cachesim.F64, int) {
	for t := 0; t < hh; t++ {
		seg, bnd = e.naiveStep(seg, c0, bnd, d+t)
		if bnd < c0 {
			return cachesim.F64{}, bnd
		}
	}
	return seg, bnd
}

func (e *grTrace) solveTrap(seg cachesim.F64, c0, bnd, d, hh int) (cachesim.F64, int) {
	if hh <= e.base {
		return e.naiveBlock(seg, c0, bnd, d, hh)
	}
	h1 := (hh + 1) / 2
	h2 := hh - h1
	mid, midBnd := e.halfStep(seg, c0, bnd, d, h1)
	if midBnd < c0 {
		return cachesim.F64{}, midBnd
	}
	if midBnd-c0+1 < e.s.span()*h2 {
		return e.naiveBlock(mid, c0, midBnd, d+h1, h2)
	}
	return e.halfStep(mid, c0, midBnd, d+h1, h2)
}

func (e *grTrace) halfStep(seg cachesim.F64, c0, bnd, d, k int) (cachesim.F64, int) {
	r := e.s.span()
	cut := bnd - r*k
	var left cachesim.F64
	if cut >= c0 {
		left = e.evolveCone(seg.Slice(0, bnd-c0+1), 0, e.s.W, k)
	}
	right, rightBnd := e.solveTrap(seg.Slice(cut+1-c0, bnd-c0+1), cut+1, bnd, d, k)
	if rightBnd <= cut {
		if cut < c0 {
			return cachesim.F64{}, c0 - 1
		}
		return left, cut
	}
	merged := e.h.NewF64(rightBnd - c0 + 1)
	for i := 0; i < left.Len(); i++ {
		merged.Set(i, left.Get(i))
	}
	for i := 0; i < right.Len(); i++ {
		merged.Set(cut+1-c0+i, right.Get(i))
	}
	return merged, rightBnd
}
