package trace

import (
	"math"
	"testing"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/cachesim"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/topm"
)

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

// The traced kernels must compute the same prices as the production
// implementations — that is what makes their traffic counts meaningful.

func TestTracedBOPMKernelsMatchProduction(t *testing.T) {
	for _, T := range []int{64, 333, 1024} {
		m, err := bopm.New(option.Default(), T)
		if err != nil {
			t.Fatal(err)
		}
		want := m.PriceNaive(option.Call)
		spec := BOPMSpec(m)

		if got := NaiveGR(cachesim.NewSKX(), spec); relDiff(got, want) > 1e-10 {
			t.Errorf("T=%d NaiveGR: %.12g want %.12g", T, got, want)
		}
		if got := TiledGR(cachesim.NewSKX(), spec, 128, 16); relDiff(got, want) > 1e-10 {
			t.Errorf("T=%d TiledGR: %.12g want %.12g", T, got, want)
		}
		if got := FastGR(cachesim.NewSKX(), spec); relDiff(got, want) > 1e-10 {
			t.Errorf("T=%d FastGR: %.12g want %.12g", T, got, want)
		}
	}
}

func TestTracedTOPMKernelsMatchProduction(t *testing.T) {
	m, err := topm.New(option.Default(), 300)
	if err != nil {
		t.Fatal(err)
	}
	want := m.PriceNaive(option.Call)
	spec := TOPMSpec(m)
	if got := NaiveGR(cachesim.NewSKX(), spec); relDiff(got, want) > 1e-10 {
		t.Errorf("NaiveGR: %.12g want %.12g", got, want)
	}
	if got := FastGR(cachesim.NewSKX(), spec); relDiff(got, want) > 1e-10 {
		t.Errorf("FastGR: %.12g want %.12g", got, want)
	}
}

func TestTracedBSMKernelsMatchProduction(t *testing.T) {
	for _, T := range []int{64, 333, 1024} {
		m, err := bsm.New(option.Default(), T, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := m.PriceNaive()
		spec := BSMSpec(m)
		K := option.Default().K
		if got := K * NaiveGL(cachesim.NewSKX(), spec); relDiff(got, want) > 1e-10 {
			t.Errorf("T=%d NaiveGL: %.12g want %.12g", T, got, want)
		}
		if got := K * FastGL(cachesim.NewSKX(), spec); relDiff(got, want) > 1e-10 {
			t.Errorf("T=%d FastGL: %.12g want %.12g", T, got, want)
		}
	}
}

// TestMissShape reproduces the qualitative claim of Figure 7: once the row
// no longer fits in L1 (T > 4096 at 8 bytes/cell against a 32 KB L1), the
// quadratic sweep misses far more than the FFT algorithm. Below that size
// the naive sweep's whole working set is L1-resident and the relation flips
// — the same crossover visible at the left edge of the paper's plots.
func TestMissShape(t *testing.T) {
	T := 1 << 14
	m, err := bopm.New(option.Default(), T)
	if err != nil {
		t.Fatal(err)
	}
	spec := BOPMSpec(m)

	hNaive := cachesim.NewSKX()
	NaiveGR(hNaive, spec)
	hFast := cachesim.NewSKX()
	FastGR(hFast, spec)

	nm := hNaive.Snapshot().L1Misses
	fm := hFast.Snapshot().L1Misses
	if fm*4 > nm {
		t.Errorf("fast L1 misses %d not well below naive %d at T=%d", fm, nm, T)
	}

	// And below the L1 capacity the naive sweep barely misses at all.
	small, err := bopm.New(option.Default(), 1<<11)
	if err != nil {
		t.Fatal(err)
	}
	hSmall := cachesim.NewSKX()
	NaiveGR(hSmall, BOPMSpec(small))
	if mm := hSmall.Snapshot().L1Misses; mm > 1<<12 {
		t.Errorf("naive at T=2^11 missed %d times; its row should be L1-resident", mm)
	}
}

// TestTiledImprovesOnNaiveL2: the cache-aware tiling's point is fewer deep
// misses than the row-streaming loop once the grid exceeds L1.
func TestTiledImprovesOnNaiveL2(t *testing.T) {
	T := 1 << 13 // row = 64 KB > L1
	m, err := bopm.New(option.Default(), T)
	if err != nil {
		t.Fatal(err)
	}
	spec := BOPMSpec(m)

	hNaive := cachesim.NewSKX()
	NaiveGR(hNaive, spec)
	hTiled := cachesim.NewSKX()
	TiledGR(hTiled, spec, 0, 0)

	nl1 := hNaive.Snapshot().L1Misses
	tl1 := hTiled.Snapshot().L1Misses
	if tl1 >= nl1 {
		t.Errorf("tiled L1 misses %d not below naive %d", tl1, nl1)
	}
}

func TestFlopsAccrue(t *testing.T) {
	m, err := bopm.New(option.Default(), 256)
	if err != nil {
		t.Fatal(err)
	}
	h := cachesim.NewSKX()
	FastGR(h, BOPMSpec(m))
	if h.Snapshot().Flops == 0 {
		t.Error("no flops recorded")
	}
}
