package sweep

import (
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
)

// Tiled is the cache-aware split-tiled sweep (the paper's zb-bopm analogue,
// after Zubair & Mukkamala). The grid is processed in horizontal bands of
// tileH steps. Within a band, phase A advances vertical tiles of width tileW
// independently in parallel — each tile shrinks from the right by r columns
// per step, so it only touches its own cache-resident buffer — while
// recording r-column halos along its edges. Phase B then fills the inverted
// triangles between adjacent tiles from those halos, again in parallel.
//
// tileW/tileH <= 0 select defaults sized so a tile's working set fits in a
// 32 KB L1 cache.
func Tiled(p *Problem, tileW, tileH int) float64 {
	r := len(p.W) - 1
	if tileW <= 0 {
		tileW = 2048 // 16 KB of float64: half of a 32 KB L1
	}
	if tileW <= 2*r {
		tileW = 2*r + 1
	}
	if tileH <= 0 {
		tileH = max(tileW/(4*r), 1)
	}
	// A tile must stay wider than it shrinks over a band.
	if tileH*r >= tileW {
		tileH = (tileW - 1) / r
	}

	row := p.leafRow()
	depth := 0
	for depth < p.T {
		h := min(tileH, p.T-depth)
		old := row
		row = p.tiledBand(row, depth, h, tileW, r)
		scratch.PutFloats(old)
		depth += h
	}
	v := row[0]
	scratch.PutFloats(row)
	return v
}

// tiledBand advances row (columns [0, len(row)-1] at the given depth) by h
// steps and returns the new row. Band rows, per-tile working buffers, and
// the halo strips all cycle through the scratch pools, so a full sweep
// reaches steady state after its first band.
func (p *Problem) tiledBand(row []float64, depth, h, w, r int) []float64 {
	topHi := len(row) - 1
	botHi := topHi - h*r
	out := scratch.Floats(botHi + 1)

	numTiles := max((topHi+1)/w, 1)
	tileLo := func(k int) int { return k * w }
	tileHi := func(k int) int { // last tile absorbs the remainder
		if k == numTiles-1 {
			return topHi
		}
		return (k+1)*w - 1
	}

	// haloL[k]/haloR[k] hold the leftmost/rightmost r columns of tile k's
	// region at each depth offset t in [0, h), i.e. the values consumed by
	// the phase-B triangles at the tile boundaries.
	haloL := make([][]float64, numTiles)
	haloR := make([][]float64, numTiles)

	// Phase A: independent shrinking tiles.
	par.For(numTiles, 1, func(klo, khi int) {
		var ex [exChunk]float64
		for k := klo; k < khi; k++ {
			a, b := tileLo(k), tileHi(k)
			buf := scratch.Floats(b - a + 1)
			copy(buf, row[a:b+1])
			hl := scratch.Floats(h * r)
			hr := scratch.Floats(h * r)
			for t := 1; t <= h; t++ {
				copy(hl[(t-1)*r:t*r], buf[:r])
				copy(hr[(t-1)*r:t*r], buf[len(buf)-r:])
				newLen := len(buf) - r
				for c := 0; c < newLen; c += exChunk {
					ce := min(c+exChunk, newLen) - 1
					if p.FillExercise != nil {
						p.FillExercise(depth+t, a+c, a+ce, ex[:ce-c+1])
					}
					for j := c; j <= ce; j++ {
						var lin float64
						for o := 0; o <= r; o++ {
							lin += p.W[o] * buf[j+o]
						}
						if p.FillExercise != nil && ex[j-c] > lin {
							lin = ex[j-c]
						}
						buf[j] = lin
					}
				}
				buf = buf[:newLen]
			}
			haloL[k], haloR[k] = hl, hr
			copy(out[a:], buf) // bottom columns [a, b-h*r]
			scratch.PutFloats(buf)
		}
	})

	// Phase B: inverted triangles across interior tile boundaries. The
	// triangle at boundary b = tileHi(k) covers columns [b-r*t+1, b] at
	// depth offset t; its dependencies are the previous triangle row plus
	// tile k's right halo and tile k+1's left halo.
	par.For(numTiles-1, 1, func(klo, khi int) {
		var ex [exChunk]float64
		src := make([]float64, 0, (h+1)*r)
		tri := make([]float64, 0, h*r)
		for k := klo; k < khi; k++ {
			b := tileHi(k)
			tri = tri[:0]
			for t := 1; t <= h; t++ {
				// src covers columns [b-r*t+1, b+r] at depth offset t-1.
				src = src[:0]
				src = append(src, haloR[k][(t-1)*r:t*r]...)
				src = append(src, tri...)
				src = append(src, haloL[k+1][(t-1)*r:t*r]...)
				width := r * t
				lo := b - width + 1
				tri = tri[:width]
				for c := 0; c < width; c += exChunk {
					ce := min(c+exChunk, width) - 1
					if p.FillExercise != nil {
						p.FillExercise(depth+t, lo+c, lo+ce, ex[:ce-c+1])
					}
					for j := c; j <= ce; j++ {
						var lin float64
						for o := 0; o <= r; o++ {
							lin += p.W[o] * src[j+o]
						}
						if p.FillExercise != nil && ex[j-c] > lin {
							lin = ex[j-c]
						}
						tri[j] = lin
					}
				}
			}
			copy(out[b-h*r+1:], tri)
		}
	})
	for k := range haloL {
		scratch.PutFloats(haloL[k])
		scratch.PutFloats(haloR[k])
	}
	return out
}
