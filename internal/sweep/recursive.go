package sweep

// Recursive is the cache-oblivious trapezoidal-decomposition sweep of Frigo &
// Strumpen (the "recursive tiling" baseline of the paper's Table 2), adapted
// to the right-leaning dependency cone of the pricing grids and to the
// nonlinear max-update.
//
// The space-time region is walked recursively on a single row buffer. A
// region is described by depths (t0, t1] and column lines: at depth t it
// covers [cl - sl*t, cr - r*t], where the left-edge slope sl is 0 (vertical)
// or r (parallel to the dependency cone). Wide regions are split by a cut
// line of slope -r through the bottom midpoint — the left piece is walked
// first, after which the buffer columns under the cut hold exactly the
// per-depth freshest values the right piece's leftmost cells need. Tall
// regions are split in time. The recursion keeps the working set of each
// base-case block small at every cache level simultaneously, without knowing
// cache sizes — that is what "cache-oblivious" buys.
func Recursive(p *Problem) float64 {
	row := p.leafRow()
	r := len(p.W) - 1
	w := &rwalk{p: p, r: r, row: row}
	w.walk(0, p.T, 0, 0, p.Hi0)
	return row[0]
}

// recursiveBaseHeight is the height below which a region is swept row by
// row. It bounds recursion overhead; correctness never depends on it.
const recursiveBaseHeight = 24

type rwalk struct {
	p   *Problem
	r   int
	row []float64
}

// walk processes depths (t0, t1] of the region [cl - sl*t, cr - r*t].
func (w *rwalk) walk(t0, t1, cl, sl, cr int) {
	h := t1 - t0
	if h <= 0 {
		return
	}
	if h <= recursiveBaseHeight {
		for t := t0 + 1; t <= t1; t++ {
			lo := cl - sl*t
			hi := cr - w.r*t
			if lo <= hi {
				w.p.updateRowInPlace(w.row, t, lo, hi)
			}
		}
		return
	}
	bottomLo := cl - sl*t1
	bottomHi := cr - w.r*t1
	if bottomHi-bottomLo+1 >= 4*w.r*h {
		// Space cut through the bottom midpoint with slope -r.
		mid := (bottomLo + bottomHi) / 2
		ccut := mid + w.r*t1
		w.walk(t0, t1, cl, sl, ccut)    // left piece first
		w.walk(t0, t1, ccut+1, w.r, cr) // right piece reads the left's frozen columns
		return
	}
	tm := t0 + h/2
	w.walk(t0, tm, cl, sl, cr)
	w.walk(tm, t1, cl, sl, cr)
}
