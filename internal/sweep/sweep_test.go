package sweep

import (
	"math"
	"math/rand"
	"testing"
)

// randProblem builds a synthetic nonlinear instance with sub-stochastic
// weights and a smooth synthetic obstacle; the sweeps make no structural
// assumptions, so any instance is a valid cross-check.
func randProblem(rng *rand.Rand, r, T int) *Problem {
	w := make([]float64, r+1)
	sum := 0.0
	for i := range w {
		w[i] = 0.1 + rng.Float64()
		sum += w[i]
	}
	for i := range w {
		w[i] *= 0.995 / sum
	}
	scale := 1 + 4*rng.Float64()
	off := rng.NormFloat64()
	return &Problem{
		W:    w,
		T:    T,
		Hi0:  T * r,
		Leaf: func(col int) float64 { return math.Abs(math.Sin(float64(col)*0.01)) * scale },
		FillExercise: func(depth, lo, hi int, out []float64) {
			for i := range out {
				x := float64(lo+i)*0.004 - float64(depth)*0.002 + off
				out[i] = scale * math.Exp(-x*x)
			}
		},
	}
}

func maxRel(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func TestAllSweepsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 25; trial++ {
		r := 1 + rng.Intn(2)
		T := 20 + rng.Intn(400)
		p := randProblem(rng, r, T)
		ref := Naive(p)
		if v := NaiveParallel(p); maxRel(v, ref) > 1e-12 {
			t.Errorf("trial %d (r=%d T=%d) parallel: %.15g vs %.15g", trial, r, T, v, ref)
		}
		if v := Recursive(p); maxRel(v, ref) > 1e-12 {
			t.Errorf("trial %d (r=%d T=%d) recursive: %.15g vs %.15g", trial, r, T, v, ref)
		}
		for _, wh := range [][2]int{{0, 0}, {64, 8}, {17, 3}, {2*r + 1, 1}} {
			if v := Tiled(p, wh[0], wh[1]); maxRel(v, ref) > 1e-12 {
				t.Errorf("trial %d (r=%d T=%d) tiled %v: %.15g vs %.15g", trial, r, T, wh, v, ref)
			}
		}
	}
}

func TestEuropeanSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 10; trial++ {
		r := 1 + rng.Intn(2)
		p := randProblem(rng, r, 150)
		p.FillExercise = nil // linear (European) mode
		ref := Naive(p)
		if v := NaiveParallel(p); maxRel(v, ref) > 1e-12 {
			t.Errorf("trial %d parallel: %.15g vs %.15g", trial, v, ref)
		}
		if v := Recursive(p); maxRel(v, ref) > 1e-12 {
			t.Errorf("trial %d recursive: %.15g vs %.15g", trial, v, ref)
		}
		if v := Tiled(p, 0, 0); maxRel(v, ref) > 1e-12 {
			t.Errorf("trial %d tiled: %.15g vs %.15g", trial, v, ref)
		}
	}
}

func TestTinyProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, T := range []int{1, 2, 3, 5, 8} {
		for r := 1; r <= 2; r++ {
			p := randProblem(rng, r, T)
			ref := Naive(p)
			if v := Tiled(p, 0, 0); maxRel(v, ref) > 1e-13 {
				t.Errorf("T=%d r=%d tiled: %.15g vs %.15g", T, r, v, ref)
			}
			if v := Recursive(p); maxRel(v, ref) > 1e-13 {
				t.Errorf("T=%d r=%d recursive: %.15g vs %.15g", T, r, v, ref)
			}
			if v := NaiveParallel(p); maxRel(v, ref) > 1e-13 {
				t.Errorf("T=%d r=%d parallel: %.15g vs %.15g", T, r, v, ref)
			}
		}
	}
}

// TestWideGrid exercises Hi0 > T*r (a grid wider than the answer cone
// strictly needs, as in TOPM where Hi0 = 2T with r = 2... here with r = 1).
func TestWideGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	p := randProblem(rng, 1, 100)
	p.Hi0 = 250
	ref := Naive(p)
	if v := Tiled(p, 32, 4); maxRel(v, ref) > 1e-13 {
		t.Errorf("tiled: %.15g vs %.15g", v, ref)
	}
	if v := Recursive(p); maxRel(v, ref) > 1e-13 {
		t.Errorf("recursive: %.15g vs %.15g", v, ref)
	}
}
