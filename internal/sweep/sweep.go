// Package sweep implements the Theta(T^2)-work baseline algorithms the paper
// compares against, for one-sided nonlinear stencils on the triangular
// option-pricing grid:
//
//   - Naive / NaiveParallel: the standard nested loop of Figure 1 (the
//     QuantLib-style baseline, "ql-bopm" in the paper's legend);
//   - Tiled: a cache-aware split-tiled sweep in the spirit of Zubair &
//     Mukkamala's cache-optimized binomial pricing ("zb-bopm");
//   - Recursive: the cache-oblivious trapezoidal decomposition of Frigo &
//     Strumpen (the "recursive tiling" row of the paper's Table 2).
//
// All four compute every cell of the grid with the max-update, so they make
// no use of the red/green boundary structure. The grid convention matches
// internal/fbstencil: depth 0 is the initial (expiry) row on columns
// [0, Hi0]; at depth d the valid columns are [0, Hi0-d*r]; the answer is the
// apex cell (T, 0).
package sweep

import (
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/scratch"
)

// Problem describes one instance for the baseline sweeps.
type Problem struct {
	W   []float64 // stencil weights on offsets 0..r of the previous depth
	T   int       // number of steps
	Hi0 int       // last column of the initial row (Hi0 >= T*r)
	// Leaf returns the initial row value at the given column.
	Leaf func(col int) float64
	// FillExercise writes the exercise (obstacle) values of cells
	// (depth, lo..hi) into out[0..hi-lo]. A nil FillExercise selects the
	// purely linear (European) sweep with no max.
	FillExercise func(depth, lo, hi int, out []float64)
}

// exChunk is the column-chunk granularity used to amortize FillExercise
// calls while keeping scratch buffers stack-friendly.
const exChunk = 512

// leafRow materializes the initial row into a pooled buffer; callers recycle
// it when the sweep is done.
func (p *Problem) leafRow() []float64 {
	row := scratch.Floats(p.Hi0 + 1)
	for j := range row {
		row[j] = p.Leaf(j)
	}
	return row
}

// updateRowInPlace advances columns [lo, hi] of row from depth-1 to depth,
// in place. In-place ascending order is safe because dependencies point
// right: cell j reads columns j..j+r, none of which have been overwritten
// yet.
func (p *Problem) updateRowInPlace(row []float64, depth, lo, hi int) {
	r := len(p.W) - 1
	if p.FillExercise == nil {
		for j := lo; j <= hi; j++ {
			var lin float64
			for o := 0; o <= r; o++ {
				lin += p.W[o] * row[j+o]
			}
			row[j] = lin
		}
		return
	}
	var ex [exChunk]float64
	for c := lo; c <= hi; c += exChunk {
		ce := min(c+exChunk-1, hi)
		p.FillExercise(depth, c, ce, ex[:ce-c+1])
		for j := c; j <= ce; j++ {
			var lin float64
			for o := 0; o <= r; o++ {
				lin += p.W[o] * row[j+o]
			}
			if e := ex[j-c]; e > lin {
				lin = e
			}
			row[j] = lin
		}
	}
}

// Naive is the serial nested loop (Figure 1 of the paper): one row buffer,
// updated in place from the expiry row down to the apex.
func Naive(p *Problem) float64 {
	r := len(p.W) - 1
	row := p.leafRow()
	for d := 1; d <= p.T; d++ {
		p.updateRowInPlace(row, d, 0, p.Hi0-d*r)
	}
	v := row[0]
	scratch.PutFloats(row)
	return v
}

// NaiveParallel is the row-parallel nested loop: each row is computed from
// the previous across persistent workers, giving Theta(T^2/p + T log T)
// time — the structure of the paper's ql-bopm baseline.
func NaiveParallel(p *Problem) float64 {
	r := len(p.W) - 1
	rows := make([][]float64, 2)
	rows[0] = p.leafRow()
	rows[1] = scratch.Floats(len(rows[0]))
	par.RowSweep(p.T,
		func(row int) int { return p.Hi0 - (row+1)*r + 1 },
		func(row, lo, hiEx int) {
			d := row + 1
			cur := rows[row&1]
			next := rows[1-row&1]
			var ex [exChunk]float64
			for c := lo; c < hiEx; c += exChunk {
				ce := min(c+exChunk, hiEx) - 1
				if p.FillExercise != nil {
					p.FillExercise(d, c, ce, ex[:ce-c+1])
				}
				for j := c; j <= ce; j++ {
					var lin float64
					for o := 0; o <= r; o++ {
						lin += p.W[o] * cur[j+o]
					}
					if p.FillExercise != nil && ex[j-c] > lin {
						lin = ex[j-c]
					}
					next[j] = lin
				}
			}
		})
	v := rows[p.T&1][0]
	scratch.PutFloats(rows[0])
	scratch.PutFloats(rows[1])
	return v
}
