// Package bsm implements American put pricing under the
// Black-Scholes-Merton model by an explicit projected finite-difference
// scheme on the log-price-transformed PDE (Section 4 of the paper), plus the
// paper's FFT-based fast solver for it ("fft-bsm").
//
// Nondimensionalization follows Section 4.2: with s = ln(x/K),
// tau = sigma^2 (T-t)/2 and vtilde = v/K, the American put satisfies the
// obstacle problem whose explicit discretization (Equation 5) is the
// centered 3-point nonlinear stencil
//
//	v[n+1][k] = max( b*v[n][k-1] + c*v[n][k] + a*v[n][k+1],  1 - e^(s_k) )
//
// with a = lam + (omega'-1)*dtau/(2*ds), b = lam - (omega'-1)*dtau/(2*ds),
// c = 1 - omega*dtau - 2*lam, lam = dtau/ds^2, omega = 2R/sigma^2 and
// omega' = 2(R-Y)/sigma^2 (the paper's omega, extended with a continuous
// dividend yield; Y=0 recovers Equation 5 exactly).
//
// The grid is T x (2T+1) as in the paper (Figure 4b): the initial (expiry)
// row spans 2T+1 nodes centered on s0 = ln(S/K) and the dependency cone
// narrows to the apex after T steps, where the answer K*v[T][center] is
// read. Theorem 4.3 (monotone exercise boundary, which the fast solver
// relies on) requires a, b, c >= 0; New enforces it by construction and
// reports an error otherwise.
package bsm

import (
	"fmt"
	"math"

	"github.com/nlstencil/amop/internal/fbstencil"
	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/par"
)

// MaxSteps bounds T to keep grid allocations sane.
const MaxSteps = 1 << 21

// DefaultLambda is the default ratio dtau/ds^2. Stability and Theorem 4.3
// need c = 1 - omega*dtau - 2*lambda >= 0, so any lambda <= ~1/2 works for
// small dtau; 1/3 leaves comfortable margin.
const DefaultLambda = 1.0 / 3

// Model holds the discretized BSM put problem.
type Model struct {
	Prm     option.Params
	T       int
	Omega   float64 // 2R/sigma^2
	DTau    float64
	Ds      float64
	A, B, C float64 // stencil weights: A on k+1, B on k-1, C on k
	s0      float64 // ln(S/K), the log-moneyness at the apex
	baseC   int
}

// New validates parameters and builds the discretization with ratio
// lambda = dtau/ds^2 (0 selects DefaultLambda).
func New(p option.Params, steps int, lambda float64) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if steps < 1 {
		return nil, fmt.Errorf("bsm: steps = %d must be >= 1", steps)
	}
	if steps > MaxSteps {
		return nil, fmt.Errorf("bsm: steps = %d exceeds the supported maximum %d", steps, MaxSteps)
	}
	if lambda == 0 {
		lambda = DefaultLambda
	}
	if lambda <= 0 || lambda > 0.5 {
		return nil, fmt.Errorf("bsm: lambda = %v outside (0, 0.5]", lambda)
	}
	sigma := p.V
	omega := 2 * p.R / (sigma * sigma)
	omegaD := 2 * (p.R - p.Y) / (sigma * sigma)
	tauMax := sigma * sigma * p.E / 2
	dtau := tauMax / float64(steps)
	ds := math.Sqrt(dtau / lambda)
	drift := (omegaD - 1) * dtau / (2 * ds)
	a := lambda + drift
	b := lambda - drift
	c := 1 - omega*dtau - 2*lambda
	if a < 0 || b < 0 || c < 0 {
		return nil, fmt.Errorf("bsm: scheme coefficients (a=%v, b=%v, c=%v) must be non-negative for Theorem 4.3; decrease lambda or increase steps", a, b, c)
	}
	return &Model{
		Prm: p, T: steps, Omega: omega, DTau: dtau, Ds: ds,
		A: a, B: b, C: c, s0: math.Log(p.S / p.K),
	}, nil
}

// SetBaseCase overrides the fast solver's recursion cutoff (ablations).
func (m *Model) SetBaseCase(h int) { m.baseC = h }

// logPrice returns s_k for grid column k in [0, 2T] (apex at k = T).
func (m *Model) logPrice(col int) float64 {
	return m.s0 + float64(col-m.T)*m.Ds
}

// green returns the dimensionless exercise value 1 - e^(s_k); it does not
// depend on the depth.
func (m *Model) green(col int) float64 {
	return 1 - math.Exp(m.logPrice(col))
}

// Stencil returns the one-step linear continuation stencil.
func (m *Model) Stencil() linstencil.Stencil {
	return linstencil.Stencil{MinOff: -1, W: []float64{m.B, m.C, m.A}}
}

// leafBoundary returns the largest initial-row column in the green
// (exercise) zone, i.e. with s_k <= 0; Lo0-1 = -1 if none.
func (m *Model) leafBoundary() int {
	guess := int(math.Floor(float64(m.T) - m.s0/m.Ds))
	if guess > 2*m.T {
		guess = 2 * m.T
	}
	if guess < -1 {
		guess = -1
	}
	for guess < 2*m.T && m.logPrice(guess+1) <= 0 {
		guess++
	}
	for guess >= 0 && m.logPrice(guess) > 0 {
		guess--
	}
	return guess
}

// PriceFast prices the American put with the paper's FFT-based algorithm
// ("fft-bsm"): O(T log^2 T) work, O(T) span.
func (m *Model) PriceFast() (float64, error) {
	return m.PriceFastStats(nil)
}

// PriceFastStats is PriceFast with work-counter collection.
func (m *Model) PriceFastStats(st *fbstencil.Stats) (float64, error) {
	return m.priceFast(st, nil)
}

// PriceFastCancel is PriceFast with a cancellation hook, polled at trapezoid
// granularity.
func (m *Model) PriceFastCancel(cancel func() error) (float64, error) {
	return m.priceFast(nil, cancel)
}

func (m *Model) priceFast(st *fbstencil.Stats, cancel func() error) (float64, error) {
	prob := &fbstencil.GreenLeft{
		Stencil:  m.Stencil(),
		T:        m.T,
		Lo0:      0,
		Hi0:      2 * m.T,
		Init:     func(col int) float64 { return math.Max(m.green(col), 0) },
		Green:    func(depth, col int) float64 { return m.green(col) },
		Bnd0:     m.leafBoundary(),
		BaseCase: m.baseC,
		Cancel:   cancel,
	}
	v, _, err := fbstencil.SolveGreenLeft(prob, st)
	return m.Prm.K * v, err
}

// PriceNaive is the serial projected explicit sweep over the full cone —
// the direct implementation of Equation 5.
func (m *Model) PriceNaive() float64 {
	width := 2*m.T + 1
	cur := make([]float64, width)
	for k := range cur {
		cur[k] = math.Max(m.green(k), 0)
	}
	next := make([]float64, width)
	eds := math.Exp(m.Ds)
	for d := 1; d <= m.T; d++ {
		lo, hi := d, 2*m.T-d
		gv := math.Exp(m.logPrice(lo)) // e^(s_k), advanced multiplicatively
		for k := lo; k <= hi; k++ {
			lin := m.B*cur[k-1] + m.C*cur[k] + m.A*cur[k+1]
			if exv := 1 - gv; exv > lin {
				lin = exv
			}
			next[k] = lin
			gv *= eds
		}
		cur, next = next, cur
	}
	return m.Prm.K * cur[m.T]
}

// PriceNaiveParallel is the row-parallel projected explicit sweep — the
// paper's vanilla-bsm baseline.
func (m *Model) PriceNaiveParallel() float64 {
	width := 2*m.T + 1
	cur := make([]float64, width)
	for k := range cur {
		cur[k] = math.Max(m.green(k), 0)
	}
	rows := [2][]float64{cur, make([]float64, width)}
	eds := math.Exp(m.Ds)
	par.RowSweep(m.T,
		func(row int) int { return 2*(m.T-row-1) + 1 },
		func(row, clo, chi int) {
			d := row + 1
			lo := d
			src := rows[row&1]
			dst := rows[1-row&1]
			gv := math.Exp(m.logPrice(lo + clo))
			for k := lo + clo; k < lo+chi; k++ {
				lin := m.B*src[k-1] + m.C*src[k] + m.A*src[k+1]
				if exv := 1 - gv; exv > lin {
					lin = exv
				}
				dst[k] = lin
				gv *= eds
			}
		})
	return m.Prm.K * rows[m.T&1][m.T]
}

// PriceEuropean prices the European put on the same grid with one T-step
// FFT evolution (no obstacle).
func (m *Model) PriceEuropean() float64 {
	row := make([]float64, 2*m.T+1)
	for k := range row {
		row[k] = math.Max(m.green(k), 0)
	}
	out, _ := linstencil.EvolveCone(row, m.Stencil(), m.T)
	// out[0] is column T after T steps of a centered stencil.
	return m.Prm.K * out[0]
}

// PriceEuropeanNaive is the serial sweep without the obstacle.
func (m *Model) PriceEuropeanNaive() float64 {
	width := 2*m.T + 1
	cur := make([]float64, width)
	for k := range cur {
		cur[k] = math.Max(m.green(k), 0)
	}
	next := make([]float64, width)
	for d := 1; d <= m.T; d++ {
		lo, hi := d, 2*m.T-d
		for k := lo; k <= hi; k++ {
			next[k] = m.B*cur[k-1] + m.C*cur[k] + m.A*cur[k+1]
		}
		cur, next = next, cur
	}
	return m.Prm.K * cur[m.T]
}

// LeafBoundary exposes the initial green-zone boundary for the traced
// kernels and diagnostics.
func (m *Model) LeafBoundary() int { return m.leafBoundary() }

// Green exposes the dimensionless exercise value 1 - e^(s_col) for the
// traced kernels and diagnostics.
func (m *Model) Green(col int) float64 { return m.green(col) }
