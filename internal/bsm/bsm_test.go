package bsm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/option"
)

func randParams(rng *rand.Rand) option.Params {
	return option.Params{
		S: 80 + 80*rng.Float64(),
		K: 80 + 80*rng.Float64(),
		R: 0.001 + 0.08*rng.Float64(),
		V: 0.1 + 0.4*rng.Float64(),
		Y: 0, // the paper's BSM formulation; Y>0 covered separately
		E: 0.25 + 1.5*rng.Float64(),
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(option.Default(), 100, 0); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	for name, c := range map[string]struct {
		prm    option.Params
		steps  int
		lambda float64
	}{
		"zero steps":     {option.Default(), 0, 0},
		"too many steps": {option.Default(), MaxSteps + 1, 0},
		"bad lambda":     {option.Default(), 100, 0.9},
		"neg lambda":     {option.Default(), 100, -0.1},
		"bad vol":        {option.Params{S: 100, K: 100, R: 0.01, V: 0, Y: 0, E: 1}, 100, 0},
		// Huge omega*dtau makes c negative at few steps.
		"unstable": {option.Params{S: 100, K: 100, R: 8, V: 0.1, Y: 0, E: 1}, 2, 0.5},
	} {
		if _, err := New(c.prm, c.steps, c.lambda); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWeightsSubStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		m, err := New(randParams(rng), 16+rng.Intn(400), 0)
		if err != nil {
			t.Fatal(err)
		}
		if m.A < 0 || m.B < 0 || m.C < 0 {
			t.Fatalf("negative weight: a=%v b=%v c=%v", m.A, m.B, m.C)
		}
		if s := m.A + m.B + m.C; s > 1+1e-12 {
			t.Errorf("weights sum %v > 1", s)
		}
	}
}

func TestFastMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		m, err := New(randParams(rng), 16+rng.Intn(400), 0)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive()
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d (T=%d): fast %.12g naive %.12g rel %g", trial, m.T, fast, naive, d)
		}
	}
}

func TestFastMatchesNaiveWithDividends(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		p := randParams(rng)
		p.Y = 0.01 + 0.05*rng.Float64()
		m, err := New(p, 16+rng.Intn(300), 0)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive()
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("trial %d: fast %.12g naive %.12g", trial, fast, naive)
		}
	}
}

// TestFastMatchesNaivePaperParams pins the paper's default parameters, which
// have Y > R — the regime where the exercise boundary drops ~ln(R/Y)/ds
// cells at the first step off the payoff row (the case that motivated the
// solver's exact first step).
func TestFastMatchesNaivePaperParams(t *testing.T) {
	for _, T := range []int{64, 256, 1024, 4096} {
		m, err := New(option.Default(), T, 0)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		naive := m.PriceNaive()
		if d := relDiff(fast, naive); d > 1e-10 {
			t.Errorf("T=%d: fast %.12g naive %.12g rel %g", T, fast, naive, d)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 8; trial++ {
		m, err := New(randParams(rng), 30+rng.Intn(400), 0)
		if err != nil {
			t.Fatal(err)
		}
		a, b := m.PriceNaive(), m.PriceNaiveParallel()
		if d := relDiff(a, b); d > 1e-11 {
			t.Errorf("trial %d: serial %.12g parallel %.12g", trial, a, b)
		}
	}
}

// TestEuropeanMatchesBlackScholes: the FD European put converges to the
// closed form.
func TestEuropeanMatchesBlackScholes(t *testing.T) {
	p := option.Params{S: 100, K: 110, R: 0.03, V: 0.25, Y: 0, E: 1}
	bs := option.BlackScholes(p, option.Put)
	m, err := New(p, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(m.PriceEuropean() - bs); e > 0.02 {
		t.Errorf("FD European put %.6f vs Black-Scholes %.6f (err %g)", m.PriceEuropean(), bs, e)
	}
	if e := math.Abs(m.PriceEuropeanNaive() - bs); e > 0.02 {
		t.Errorf("naive FD European put off by %g", e)
	}
}

// TestAgreesWithBinomialAmericanPut: the FD American put and the binomial
// American put converge to the same value.
func TestAgreesWithBinomialAmericanPut(t *testing.T) {
	p := option.Params{S: 100, K: 110, R: 0.04, V: 0.25, Y: 0, E: 1}
	m, err := New(p, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := m.PriceFast()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := bopm.New(p, 8000)
	if err != nil {
		t.Fatal(err)
	}
	bin := bm.PriceNaive(option.Put)
	if math.Abs(fd-bin) > 0.05 {
		t.Errorf("BSM FD put %.6f vs binomial put %.6f", fd, bin)
	}
}

// TestAmericanDominates: American put >= European put >= 0, and >= intrinsic.
func TestAmericanDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 10; trial++ {
		p := randParams(rng)
		m, err := New(p, 300, 0)
		if err != nil {
			t.Fatal(err)
		}
		am, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		if eu := m.PriceEuropean(); am < eu-1e-9 {
			t.Errorf("trial %d: American %.12g < European %.12g", trial, am, eu)
		}
		if intrinsic := math.Max(p.K-p.S, 0); am < intrinsic-1e-7*p.K {
			t.Errorf("trial %d: American put %.12g below intrinsic %.12g", trial, am, intrinsic)
		}
	}
}

func TestBaseCaseAblation(t *testing.T) {
	m, err := New(option.Default(), 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.PriceFast()
	if err != nil {
		t.Fatal(err)
	}
	for _, base := range []int{1, 4, 16, 64} {
		m.SetBaseCase(base)
		v, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(v, ref); d > 1e-11 {
			t.Errorf("base %d: %.14g vs %.14g", base, v, ref)
		}
	}
}

// TestLambdaInsensitivity: different stable ratios discretize the same PDE,
// so prices agree to discretization error.
func TestLambdaInsensitivity(t *testing.T) {
	p := option.Params{S: 100, K: 105, R: 0.03, V: 0.3, Y: 0, E: 1}
	var prices []float64
	for _, lam := range []float64{0.25, 1.0 / 3, 0.45} {
		m, err := New(p, 2048, lam)
		if err != nil {
			t.Fatal(err)
		}
		v, err := m.PriceFast()
		if err != nil {
			t.Fatal(err)
		}
		prices = append(prices, v)
	}
	for i := 1; i < len(prices); i++ {
		if math.Abs(prices[i]-prices[0]) > 0.05 {
			t.Errorf("lambda sensitivity too high: %v", prices)
		}
	}
}

func TestLeafBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 20; trial++ {
		m, err := New(randParams(rng), 10+rng.Intn(300), 0)
		if err != nil {
			t.Fatal(err)
		}
		b := m.leafBoundary()
		if b >= 0 && b <= 2*m.T && m.logPrice(b) > 0 {
			t.Errorf("trial %d: boundary col %d has s > 0", trial, b)
		}
		if b < 2*m.T && m.logPrice(b+1) <= 0 {
			t.Errorf("trial %d: col %d right of boundary has s <= 0", trial, b+1)
		}
	}
}
