package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Every response must carry a request id; an incoming id must be echoed
// verbatim, and the access log must record one JSON line per request.
func TestAccessLogRequestIDs(t *testing.T) {
	var sb strings.Builder
	h := AccessLog(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}), &sb)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/quote?id=1", nil))
	minted := rec.Header().Get(RequestIDHeader)
	if minted == "" {
		t.Fatal("no X-Amop-Request-Id minted")
	}

	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/quote?id=2", nil)
	req.Header.Set(RequestIDHeader, "upstream-7")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "upstream-7" {
		t.Fatalf("incoming id not echoed: got %q", got)
	}

	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 access-log lines, got %d: %q", len(lines), sb.String())
	}
	var rec1 accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec1); err != nil {
		t.Fatalf("access-log line is not JSON: %v", err)
	}
	if rec1.ID != minted || rec1.Status != http.StatusTeapot || rec1.Bytes != int64(len("short and stout")) || rec1.Path != "/quote" {
		t.Fatalf("access record = %+v", rec1)
	}
}

// A nil sink keeps the id plumbing but writes nothing.
func TestAccessLogNilSink(t *testing.T) {
	h := AccessLog(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Fatal("nil-sink AccessLog dropped the request id")
	}
}

func TestNextRequestIDUnique(t *testing.T) {
	a, b := NextRequestID(), NextRequestID()
	if a == b {
		t.Fatalf("consecutive ids collide: %q", a)
	}
}

// The debug handlers must serve NDJSON with the right content type.
func TestDebugHandlers(t *testing.T) {
	resetEvents()
	resetTraces()
	defer resetEvents()
	defer resetTraces()
	RecordEvent(EvDegradedServe, "AAA", 1, "")
	StartTrace("flight", "h").Finish()
	for _, tc := range []struct {
		name string
		h    http.Handler
	}{{"events", EventsHandler()}, {"traces", TracesHandler()}, {"slow", SlowHandler()}} {
		rec := httptest.NewRecorder()
		tc.h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/"+tc.name, nil))
		if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("%s: Content-Type = %q", tc.name, ct)
		}
	}
}
