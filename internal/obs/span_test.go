package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// Nil traces must absorb every method silently: call sites are written
// without nil checks.
func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Add(StageMemo, time.Millisecond)
	tr.AddSince(StageTier, time.Now())
	tr.SetItems(7)
	if snap := tr.Finish(); snap.Kind != "" || len(snap.Stages) != 0 {
		t.Fatalf("nil Finish = %+v, want zero snapshot", snap)
	}
	tr.Add(Stage(-1), time.Second) // out-of-range stages too
	tr.Add(numStages, time.Second)
}

// The recent-trace ring must hold exactly the last recentTraceCap traces,
// oldest first, after wrapping.
func TestTraceRingWraparound(t *testing.T) {
	resetTraces()
	defer resetTraces()
	total := recentTraceCap + 13
	for i := 0; i < total; i++ {
		StartTrace("flight", fmt.Sprintf("t%03d", i)).Finish()
	}
	got := RecentTraces()
	if len(got) != recentTraceCap {
		t.Fatalf("ring holds %d traces, want %d", len(got), recentTraceCap)
	}
	for i, snap := range got {
		want := fmt.Sprintf("t%03d", total-recentTraceCap+i)
		if snap.Label != want {
			t.Fatalf("ring[%d].Label = %q, want %q (oldest-first order broken)", i, snap.Label, want)
		}
	}
}

// Traces over the threshold must land in the slow ring with their per-stage
// breakdown, and leave a slow_solve event in the flight recorder.
func TestSlowCapture(t *testing.T) {
	resetTraces()
	resetEvents()
	defer resetTraces()
	defer resetEvents()
	prev := SetSlowThreshold(0) // everything is slow
	defer SetSlowThreshold(prev)

	tr := StartTrace("flight", "SLOW")
	tr.SetItems(3)
	tr.Add(StageSolveLattice, 5*time.Millisecond)
	tr.Add(StageSolveLattice, 7*time.Millisecond)
	tr.Add(StagePublish, time.Millisecond)
	snap := tr.Finish()
	if !snap.Slow {
		t.Fatal("snapshot not marked slow at threshold 0")
	}
	slow := SlowTraces()
	if len(slow) != 1 || slow[0].Label != "SLOW" || slow[0].Items != 3 {
		t.Fatalf("SlowTraces() = %+v", slow)
	}
	var lattice *StageTiming
	for i := range slow[0].Stages {
		if slow[0].Stages[i].Stage == "solve_lattice" {
			lattice = &slow[0].Stages[i]
		}
	}
	if lattice == nil || lattice.Count != 2 || lattice.Ms < 11.9 {
		t.Fatalf("solve_lattice stage = %+v, want count 2, ~12ms", lattice)
	}
	found := false
	for _, ev := range Events() {
		if ev.Kind == EvSlowSolve && ev.Symbol == "SLOW" && ev.N == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow_solve event recorded; events = %+v", Events())
	}

	// Under the threshold: recent ring only.
	SetSlowThreshold(time.Hour)
	StartTrace("flight", "FAST").Finish()
	if got := SlowTraces(); len(got) != 1 {
		t.Fatalf("fast trace leaked into slow ring: %+v", got)
	}
}

// Concurrent workers accumulating into one trace (the batch pool's shape)
// must not lose adds; run with -race.
func TestTraceConcurrentAdd(t *testing.T) {
	tr := StartTrace("flight", "conc")
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Add(StageMemo, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := tr.Finish()
	for _, st := range snap.Stages {
		if st.Stage == "memo" {
			if st.Count != workers*per {
				t.Fatalf("memo count = %d, want %d", st.Count, workers*per)
			}
			return
		}
	}
	t.Fatal("memo stage missing from snapshot")
}

func TestContextThreadingAndActiveHook(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare context should be nil")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) should be nil")
	}
	tr := StartTrace("flight", "ctx")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost through context")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil trace) should return ctx unchanged")
	}

	prev := SetActive(tr)
	if Active() != tr {
		t.Fatal("Active() lost the installed trace")
	}
	if SetActive(prev) != tr {
		t.Fatal("SetActive should return the displaced trace")
	}
}

func TestWriteTracesNDJSON(t *testing.T) {
	tr := StartTrace("flight", "ndjson")
	tr.Add(StageQuadrature, time.Millisecond)
	snap := tr.Finish()
	var b strings.Builder
	if err := WriteTracesNDJSON(&b, []TraceSnapshot{snap}); err != nil {
		t.Fatal(err)
	}
	line := b.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one newline-terminated JSON line, got %q", line)
	}
	for _, want := range []string{`"kind":"flight"`, `"label":"ndjson"`, `"stage":"quadrature"`} {
		if !strings.Contains(line, want) {
			t.Errorf("NDJSON line missing %s: %s", want, line)
		}
	}
}
