package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The flight recorder: a fixed-size ring of serving events — ticks that
// moved contracts, repricing flights, breaker transitions, quarantines,
// degraded serves, tier fallbacks, slow solves — kept in memory at all
// times and dumped when someone needs the story: /debug/events on demand,
// SIGQUIT and shutdown in amop-serve. Like an aircraft flight recorder it
// answers "what happened in the last N events before things went wrong"
// without any log pipeline in the loop.
//
// Events are deliberately small (a kind, a symbol, one int64, an optional
// detail string) and appends take one short mutex hold; the ring is sized so
// even a busy server keeps minutes of breaker/quarantine history. The
// zero-alloc serving paths never append — events fire on state transitions
// (a tick that moved contracts, a breaker trip), not per quote.

// EventKind classifies a flight-recorder event.
type EventKind string

const (
	// EvTick is a market tick that moved at least one contract to a new
	// quantization cell (N = contracts moved).
	EvTick EventKind = "tick"
	// EvReprice is a completed repricing flight (N = contracts solved).
	EvReprice EventKind = "reprice"
	// EvBreakerOpen / EvBreakerClose are circuit-breaker transitions.
	EvBreakerOpen  EventKind = "breaker_open"
	EvBreakerClose EventKind = "breaker_close"
	// EvQuarantine is a contract pulled from repricing flights after a
	// solver panic (N = contract id).
	EvQuarantine EventKind = "quarantine"
	// EvDegradedServe is a quote answered from the pinned last-good price.
	EvDegradedServe EventKind = "degraded_serve"
	// EvTierFallback is a TierAuto request that fell back to the lattice.
	EvTierFallback EventKind = "tier_fallback"
	// EvSlowSolve is a finished trace captured over the slow threshold
	// (N = items; the trace itself is at /debug/slow).
	EvSlowSolve EventKind = "slow_solve"
	// EvServerStart / EvServerStop bracket the daemon's lifetime in the ring.
	EvServerStart EventKind = "server_start"
	EvServerStop  EventKind = "server_stop"
)

// Event is one flight-recorder entry. Seq is a process-wide total order:
// concurrent recorders receive distinct, strictly increasing sequence
// numbers, and Events() returns entries sorted by it.
type Event struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Kind   EventKind `json:"kind"`
	Symbol string    `json:"symbol,omitempty"`
	N      int64     `json:"n,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

const eventRingCap = 1024

var (
	evMu   sync.Mutex
	evBuf  [eventRingCap]Event
	evNext int
	evLen  int
	evSeq  uint64
)

// RecordEvent appends an event to the flight recorder. The sequence number
// and timestamp are assigned under the ring's lock, so the ring order, the
// Seq order and (per Go's monotonic clock) the At order all agree. A nil-op
// when telemetry is disabled.
func RecordEvent(kind EventKind, symbol string, n int64, detail string) {
	if !enabled.Load() {
		return
	}
	evMu.Lock()
	evSeq++
	evBuf[evNext] = Event{Seq: evSeq, At: time.Now(), Kind: kind, Symbol: symbol, N: n, Detail: detail}
	evNext = (evNext + 1) % eventRingCap
	if evLen < eventRingCap {
		evLen++
	}
	evMu.Unlock()
}

// Events returns the recorder's contents, oldest first (ascending Seq).
func Events() []Event {
	evMu.Lock()
	defer evMu.Unlock()
	out := make([]Event, 0, evLen)
	start := evNext - evLen
	if start < 0 {
		start += eventRingCap
	}
	for i := 0; i < evLen; i++ {
		out = append(out, evBuf[(start+i)%eventRingCap])
	}
	return out
}

// WriteEventsNDJSON dumps the flight recorder as one JSON object per line,
// oldest first — the format of /debug/events and the SIGQUIT/shutdown dumps.
func WriteEventsNDJSON(w io.Writer) error {
	events := Events()
	enc := json.NewEncoder(w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

func resetEvents() {
	evMu.Lock()
	evNext, evLen, evSeq = 0, 0, 0
	evMu.Unlock()
}
