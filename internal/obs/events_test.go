package obs

import (
	"strings"
	"sync"
	"testing"
)

// Concurrent recorders (the serve layer's ticks, breaker transitions and
// quarantines all fire from different goroutines) must produce a strictly
// increasing, gap-free sequence; run with -race.
func TestEventOrderingUnderConcurrency(t *testing.T) {
	resetEvents()
	defer resetEvents()
	const workers = 8
	const per = 100 // workers*per < eventRingCap so nothing is evicted
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sym string) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				RecordEvent(EvTick, sym, int64(i), "")
			}
		}(string(rune('A' + w)))
	}
	wg.Wait()
	evs := Events()
	if len(evs) != workers*per {
		t.Fatalf("got %d events, want %d", len(evs), workers*per)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("events[%d].Seq = %d, want %d (strictly increasing, gap-free)", i, ev.Seq, i+1)
		}
		if i > 0 && evs[i].At.Before(evs[i-1].At) {
			t.Fatalf("events[%d] timestamp precedes events[%d]", i, i-1)
		}
	}
}

// The ring must keep the newest eventRingCap events when it wraps.
func TestEventRingWraparound(t *testing.T) {
	resetEvents()
	defer resetEvents()
	total := eventRingCap + 57
	for i := 0; i < total; i++ {
		RecordEvent(EvReprice, "X", int64(i), "")
	}
	evs := Events()
	if len(evs) != eventRingCap {
		t.Fatalf("ring holds %d, want %d", len(evs), eventRingCap)
	}
	if evs[0].Seq != uint64(total-eventRingCap+1) || evs[len(evs)-1].Seq != uint64(total) {
		t.Fatalf("ring span [%d, %d], want [%d, %d]", evs[0].Seq, evs[len(evs)-1].Seq, total-eventRingCap+1, total)
	}
}

// Disabled telemetry must drop events entirely.
func TestEventsRespectEnableGate(t *testing.T) {
	resetEvents()
	defer resetEvents()
	prev := SetEnabled(false)
	RecordEvent(EvQuarantine, "GONE", 1, "dropped")
	SetEnabled(prev)
	if evs := Events(); len(evs) != 0 {
		t.Fatalf("disabled RecordEvent still recorded: %+v", evs)
	}
}

func TestWriteEventsNDJSON(t *testing.T) {
	resetEvents()
	defer resetEvents()
	RecordEvent(EvBreakerOpen, "AAA", 0, "3 consecutive failures")
	RecordEvent(EvBreakerClose, "AAA", 0, "")
	var b strings.Builder
	if err := WriteEventsNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d: %q", len(lines), b.String())
	}
	if !strings.Contains(lines[0], `"kind":"breaker_open"`) || !strings.Contains(lines[1], `"kind":"breaker_close"`) {
		t.Fatalf("NDJSON order or content wrong:\n%s", b.String())
	}
}
