package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// Every bucket index must be in range and monotone in the value, and the
// bucket midpoint must stay within the advertised 12.5% relative error.
func TestBucketIndexBoundsAndError(t *testing.T) {
	prev := 0
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1 << 40, 1 << 62, 1<<63 - 1} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0, %d)", v, idx, histBuckets)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone: v=%d idx=%d < prev %d", v, idx, prev)
		}
		prev = idx
		if v >= histSub && idx < histBuckets-1 {
			mid := bucketMid(idx)
			rel := float64(mid-v) / float64(v)
			if rel < 0 {
				rel = -rel
			}
			if rel > 1.0/histSub {
				t.Errorf("bucketMid(%d)=%d for v=%d: relative error %.3f > %.3f", idx, mid, v, rel, 1.0/histSub)
			}
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Errorf("negative values must clamp to bucket 0, got %d", got)
	}
}

// Histogram quantiles must agree with a sorted-sample oracle to within the
// bucketing's quantization error.
func TestQuantilesVsSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := newBareHistogram("test")
	n := 20000
	samples := make([]int64, n)
	for i := range samples {
		// Log-uniform over ~6 decades, the shape of real latency data.
		v := int64(float64(time.Microsecond) * (1 + 1e6*rng.Float64()*rng.Float64()*rng.Float64()))
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.Snapshot()
	if s.Count != int64(n) {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Max != samples[n-1] {
		t.Errorf("max = %d, want %d", s.Max, samples[n-1])
	}
	for _, tc := range []struct {
		q    float64
		got  int64
		name string
	}{{0.50, s.P50, "p50"}, {0.90, s.P90, "p90"}, {0.99, s.P99, "p99"}} {
		oracle := samples[int(tc.q*float64(n))]
		// The histogram answer must land within one bucket of the oracle:
		// its bucket's midpoint error is <= half the bucket width, and ties
		// at the rank boundary can shift one bucket more.
		rel := float64(tc.got-oracle) / float64(oracle)
		if rel < 0 {
			rel = -rel
		}
		if rel > 2.0/histSub {
			t.Errorf("%s = %d vs oracle %d: relative error %.3f > %.3f", tc.name, tc.got, oracle, rel, 2.0/histSub)
		}
	}
}

// Concurrent recorders and snapshotters must not race (run with -race) and
// the final snapshot must account for every record.
func TestConcurrentRecordSnapshot(t *testing.T) {
	h := newBareHistogram("race")
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot()
			}
		}
	}()
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(seed int64) {
			defer rec.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
}

func TestHistVecLabelsAndProm(t *testing.T) {
	v := &HistVec{name: "amop_test_seconds", labelName: "tier", help: "test", m: make(map[string]*Histogram)}
	v.Record("lattice", int64(time.Millisecond))
	v.Record("analytic_warm", int64(50*time.Microsecond))
	v.With("idle") // created but never recorded: must not be exported
	if got := v.Labels(); len(got) != 3 || got[0] != "analytic_warm" || got[1] != "idle" || got[2] != "lattice" {
		t.Fatalf("Labels() = %v, want sorted [analytic_warm idle lattice]", got)
	}
	var b strings.Builder
	v.writeProm(&b)
	out := b.String()
	for _, want := range []string{
		`amop_test_seconds{tier="lattice",quantile="0.5"}`,
		`amop_test_seconds{tier="analytic_warm",quantile="0.99"}`,
		`amop_test_seconds_count{tier="lattice"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("writeProm output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "idle") {
		t.Errorf("zero-count child exported:\n%s", out)
	}
}

// The disabled gate and RecordSince round-trip.
func TestEnableGateAndRecordSince(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if Enabled() {
		t.Fatal("Enabled() true after SetEnabled(false)")
	}
	SetEnabled(true)
	h := newBareHistogram("since")
	h.RecordSince(time.Now().Add(-time.Millisecond))
	if s := h.Snapshot(); s.Count != 1 || s.Max < int64(time.Millisecond) {
		t.Fatalf("RecordSince snapshot = %+v", s)
	}
	// A start time in the future (fake clocks in tests) must clamp, not
	// corrupt the histogram.
	h.RecordSince(time.Now().Add(time.Hour))
	if s := h.Snapshot(); s.Count != 2 {
		t.Fatalf("clamped record lost: %+v", s)
	}
}
