package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Log-linear bucketing, HdrHistogram style: values below histSub are their
// own buckets, and every further octave is split into histSub sub-buckets by
// the mantissa's top bits. With histSub = 8 the relative quantization error
// is bounded by 1/8 = 12.5% anywhere in the 64-bit range — ample for latency
// quantiles — while keeping the whole histogram at histBuckets fixed atomic
// cells: recording is one bit-scan, one shift and one atomic add, with no
// allocation and no lock.
const (
	histSub     = 8 // sub-buckets per octave; must be a power of two
	histSubLog  = 3 // log2(histSub)
	histBuckets = (64 - histSubLog) * histSub
)

// bucketIndex maps a non-negative value to its bucket. Values are clamped at
// zero; the top bucket absorbs everything beyond ~2^63.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - histSubLog
	idx := exp*histSub + int(u>>uint(exp))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketMid returns a representative value for the bucket: the midpoint of
// its [lower, upper) range, which bounds quantile error by half the bucket
// width.
func bucketMid(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := idx/histSub - 1
	mant := int64(idx - exp*histSub)
	lo := mant << uint(exp)
	return lo + (int64(1)<<uint(exp))/2
}

// Histogram is a lock-free log-bucketed histogram of int64 values
// (nanoseconds, by convention: every standing instrument records durations).
// Record is wait-free and allocation-free; Snapshot walks the buckets on the
// monitoring path. The zero value is NOT ready — use NewHistogram, which
// also registers the instrument for WriteProm.
type Histogram struct {
	name string
	help string

	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram creates and registers a named histogram. name is the
// Prometheus metric name (unit: seconds — values are recorded in
// nanoseconds and scaled on export).
func NewHistogram(name, help string) *Histogram {
	h := &Histogram{name: name, help: help}
	register(h)
	return h
}

// newBareHistogram creates a histogram that is not registered — HistVec
// children render through their vector, not individually.
func newBareHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Record adds one value. It does not consult Enabled — call sites gate
// before doing the work of producing the value (usually a time.Now pair).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordSince records the duration elapsed since start. The idiomatic call
// site is a gated defer — `defer h.RecordSince(time.Now())` evaluates
// time.Now at defer time and records at return.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(int64(time.Since(start)))
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count int64
	Sum   int64 // total of recorded values (ns)
	Max   int64 // largest recorded value (ns)
	P50   int64 // quantiles, bucket-midpoint resolution (ns)
	P90   int64
	P99   int64
}

// Snapshot summarizes the histogram. Concurrent Records may land between
// bucket loads; the summary is consistent to within those in-flight counts,
// which is the standard contract for lock-free telemetry.
func (h *Histogram) Snapshot() Snapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s := Snapshot{Count: total, Sum: h.sum.Load(), Max: h.max.Load()}
	if total == 0 {
		return s
	}
	quantile := func(q float64) int64 {
		rank := int64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var seen int64
		for i := range counts {
			seen += counts[i]
			if seen > rank {
				return bucketMid(i)
			}
		}
		return bucketMid(histBuckets - 1)
	}
	s.P50 = quantile(0.50)
	s.P90 = quantile(0.90)
	s.P99 = quantile(0.99)
	return s
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

func (h *Histogram) writeProm(w io.Writer) {
	s := h.Snapshot()
	if s.Count == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", h.name, h.help, h.name)
	writePromSeries(w, h.name, "", s)
}

// writePromSeries emits one label-set's quantile/sum/count/max series.
// labels is either empty or a rendered `name="value"` pair.
func writePromSeries(w io.Writer, name, labels string, s Snapshot) {
	sep := func(q string) string {
		if labels == "" {
			return fmt.Sprintf("{quantile=%q}", q)
		}
		return fmt.Sprintf("{%s,quantile=%q}", labels, q)
	}
	brace := ""
	if labels != "" {
		brace = "{" + labels + "}"
	}
	for _, qv := range []struct {
		q string
		v int64
	}{{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}} {
		fmt.Fprintf(w, "%s%s ", name, sep(qv.q))
		fprintSeconds(w, qv.v)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s_sum%s ", name, brace)
	fprintSeconds(w, s.Sum)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s_count%s %d\n", name, brace, s.Count)
	fmt.Fprintf(w, "%s_max%s ", name, brace)
	fprintSeconds(w, s.Max)
	fmt.Fprintln(w)
}

// HistVec is a labeled family of histograms — one child per label value
// (symbol, tier). The steady-state Record path is a read-locked map hit plus
// the child's lock-free record: no allocation once a label has been seen.
// Label cardinality is expected to be book-bounded (symbols, tiers); the
// vector grows one child per distinct label and never evicts.
type HistVec struct {
	name      string
	labelName string
	help      string

	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewHistVec creates and registers a labeled histogram family.
func NewHistVec(name, labelName, help string) *HistVec {
	v := &HistVec{name: name, labelName: labelName, help: help, m: make(map[string]*Histogram)}
	register(v)
	return v
}

// With returns the child histogram for a label value, creating it on first
// use. The hit path takes only the read lock and allocates nothing.
func (v *HistVec) With(label string) *Histogram {
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[label]; h == nil {
		h = newBareHistogram(v.name)
		v.m[label] = h
	}
	return h
}

// Record adds one value to the label's child.
func (v *HistVec) Record(label string, val int64) { v.With(label).Record(val) }

// RecordSince records the elapsed duration into the label's child.
func (v *HistVec) RecordSince(label string, start time.Time) {
	v.With(label).Record(int64(time.Since(start)))
}

// Labels returns the label values seen so far, sorted.
func (v *HistVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func (v *HistVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, h := range v.m {
		h.reset()
	}
}

func (v *HistVec) writeProm(w io.Writer) {
	type child struct {
		label string
		h     *Histogram
	}
	v.mu.RLock()
	children := make([]child, 0, len(v.m))
	for l, h := range v.m {
		children = append(children, child{l, h})
	}
	v.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool { return children[i].label < children[j].label })
	wroteHeader := false
	for _, c := range children {
		s := c.h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if !wroteHeader {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", v.name, v.help, v.name)
			wroteHeader = true
		}
		writePromSeries(w, v.name, fmt.Sprintf("%s=%q", v.labelName, c.label), s)
	}
}
