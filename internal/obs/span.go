package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Lightweight span tracing of the pricing path. A Trace is started per
// repricing flight and threaded two ways: through the context plumbing into
// the batch engine (obs.NewContext -> PriceBatchCtx -> engine), and through
// the process-wide active-trace hook (SetActive) for the layers the context
// does not reach — the analytic boundary solver and the linstencil FFT
// kernels sit many calls below any context parameter, and the coalescer
// already guarantees at most one flight runs at a time, so a single active
// pointer attributes their stage time correctly.
//
// Stages are a fixed enum and accumulation is an atomic add per (stage,
// trace): concurrent batch workers record into one flight's trace without
// locks or allocation. Finish snapshots the trace into a bounded ring of
// recent traces and, when the total exceeds the slow threshold, into the
// slow-trace ring exported as NDJSON at /debug/slow.

// Stage identifies one instrumented segment of the pricing path.
type Stage int

const (
	// StageSnapshot is the flight's dirty-set snapshot under the server lock.
	StageSnapshot Stage = iota
	// StageTier is the tier-eligibility decision (envelope check).
	StageTier
	// StageMemo is the repricing-memo lookup in the batch engine.
	StageMemo
	// StageBudgetWait is time spent acquiring spawn-budget tokens.
	StageBudgetWait
	// StageSolveLattice is a lattice solve (FFT evolution included).
	StageSolveLattice
	// StageSolveAnalytic is an analytic-tier solve end to end.
	StageSolveAnalytic
	// StageBoundarySolve is the analytic tier's cold boundary fixed point.
	StageBoundarySolve
	// StageQuadrature is the analytic tier's premium quadrature.
	StageQuadrature
	// StageFFTEvolve is one linstencil FFT evolution inside a lattice solve.
	StageFFTEvolve
	// StagePublish is the flight's surface write-back under the server lock.
	StagePublish
	numStages
)

var stageNames = [numStages]string{
	"snapshot", "tier", "memo", "budget_wait", "solve_lattice",
	"solve_analytic", "boundary_solve", "quadrature", "fft_evolve", "publish",
}

// String names the stage as /debug/slow spells it.
func (s Stage) String() string {
	if s >= 0 && s < numStages {
		return stageNames[s]
	}
	return "stage(?)"
}

// Trace accumulates per-stage time for one unit of pricing work (one
// repricing flight). All methods are safe for concurrent use and nil-safe,
// so call sites never need a nil check of their own.
type Trace struct {
	kind  string
	label string
	start time.Time

	items atomic.Int64
	ns    [numStages]atomic.Int64
	count [numStages]atomic.Int64
}

// StartTrace begins a trace. kind classifies the work ("flight"); label
// carries a human hint (the symbols being repriced). Callers gate on
// Enabled — StartTrace allocates, which is fine at flight granularity and
// wrong at quote granularity.
func StartTrace(kind, label string) *Trace {
	return &Trace{kind: kind, label: label, start: time.Now()}
}

// Add accumulates d into a stage. Nil traces and out-of-range stages are
// ignored.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || s < 0 || s >= numStages {
		return
	}
	t.ns[s].Add(int64(d))
	t.count[s].Add(1)
}

// AddSince accumulates the time elapsed since start into a stage.
func (t *Trace) AddSince(s Stage, start time.Time) { t.Add(s, time.Since(start)) }

// SetItems records how many work items (contracts) the trace covers.
func (t *Trace) SetItems(n int) {
	if t != nil {
		t.items.Store(int64(n))
	}
}

// StageTiming is one stage's accumulated time within a finished trace.
type StageTiming struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
	Count int64   `json:"count"`
}

// TraceSnapshot is a finished, immutable trace as exported at /debug/slow
// and /debug/traces: total wall time plus the per-stage breakdown. Stage
// times are summed across workers, so stages of a parallel solve may add up
// to more than TotalMs — that surplus is the parallelism.
type TraceSnapshot struct {
	Kind    string        `json:"kind"`
	Label   string        `json:"label,omitempty"`
	Start   time.Time     `json:"start"`
	TotalMs float64       `json:"total_ms"`
	Items   int64         `json:"items,omitempty"`
	Slow    bool          `json:"slow,omitempty"`
	Stages  []StageTiming `json:"stages"`
}

// Finish seals the trace: the snapshot is pushed into the recent-trace ring
// and, when total wall time meets the slow threshold, into the slow ring
// (with a slow_solve event in the flight recorder). It returns the snapshot
// so callers can log it; a nil trace finishes to a zero snapshot.
func (t *Trace) Finish() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	total := time.Since(t.start)
	snap := TraceSnapshot{
		Kind:    t.kind,
		Label:   t.label,
		Start:   t.start,
		TotalMs: float64(total) / 1e6,
		Items:   t.items.Load(),
	}
	for s := Stage(0); s < numStages; s++ {
		if c := t.count[s].Load(); c > 0 {
			snap.Stages = append(snap.Stages, StageTiming{
				Stage: s.String(),
				Ms:    float64(t.ns[s].Load()) / 1e6,
				Count: c,
			})
		}
	}
	snap.Slow = total >= SlowThreshold()
	recentRing.push(snap)
	if snap.Slow {
		slowRing.push(snap)
		RecordEvent(EvSlowSolve, t.label, t.items.Load(), "")
	}
	return snap
}

// slowThresholdNs is the wall-time threshold beyond which a finished trace
// is captured into the slow ring. Default 100ms.
var slowThresholdNs atomic.Int64

func init() { slowThresholdNs.Store(int64(100 * time.Millisecond)) }

// SlowThreshold returns the current slow-trace capture threshold.
func SlowThreshold() time.Duration { return time.Duration(slowThresholdNs.Load()) }

// SetSlowThreshold sets the slow-trace capture threshold and returns the
// previous value. amop-serve exposes it as -slow-threshold.
func SetSlowThreshold(d time.Duration) time.Duration {
	return time.Duration(slowThresholdNs.Swap(int64(d)))
}

// --- active-trace hook ------------------------------------------------------

// activeTrace is the process-wide current trace, set around each repricing
// flight. Layers with no context parameter (linstencil's FFT kernels, the
// analytic boundary solver) attribute their stage time to it. At most one
// flight runs at a time (the coalescer serializes them), so the single slot
// is sufficient; bulk work that runs with no active trace records only into
// the histograms.
var activeTrace atomic.Pointer[Trace]

// SetActive installs t as the process-wide active trace and returns the
// previous one (restore it when the scope ends).
func SetActive(t *Trace) *Trace { return activeTrace.Swap(t) }

// Active returns the process-wide active trace, or nil.
func Active() *Trace { return activeTrace.Load() }

// --- context threading ------------------------------------------------------

type ctxKey struct{}

// NewContext returns a context carrying the trace, for the plumbing that
// already passes contexts (QuoteCtx -> flight -> PriceBatchCtx -> engine).
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the trace threaded by NewContext, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// --- trace rings ------------------------------------------------------------

const (
	recentTraceCap = 64
	slowTraceCap   = 32
)

// traceRing is a bounded ring of finished traces. Pushes are rare (one per
// flight), so a mutex is the right tool; the serving path never touches it.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceSnapshot
	next int
	n    int
}

func newTraceRing(cap int) *traceRing { return &traceRing{buf: make([]TraceSnapshot, cap)} }

func (r *traceRing) push(s TraceSnapshot) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// list returns the ring's contents, oldest first.
func (r *traceRing) list() []TraceSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSnapshot, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

func (r *traceRing) reset() {
	r.mu.Lock()
	r.next, r.n = 0, 0
	r.mu.Unlock()
}

var (
	recentRing = newTraceRing(recentTraceCap)
	slowRing   = newTraceRing(slowTraceCap)
)

// RecentTraces returns the bounded ring of recently finished traces, oldest
// first.
func RecentTraces() []TraceSnapshot { return recentRing.list() }

// SlowTraces returns the captured slow traces (total wall time over the
// threshold at finish), oldest first.
func SlowTraces() []TraceSnapshot { return slowRing.list() }

// WriteTracesNDJSON writes one JSON object per trace, newline-delimited.
func WriteTracesNDJSON(w io.Writer, traces []TraceSnapshot) error {
	enc := json.NewEncoder(w)
	for i := range traces {
		if err := enc.Encode(&traces[i]); err != nil {
			return err
		}
	}
	return nil
}

func resetTraces() {
	recentRing.reset()
	slowRing.reset()
}
