package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// HTTP surface of the telemetry layer: the /debug handlers amop-serve mounts
// and the NDJSON access-log middleware with request-id propagation.

// SlowHandler serves the captured slow traces as NDJSON — the per-stage
// breakdown of every solve that crossed the slow threshold.
func SlowHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		WriteTracesNDJSON(w, SlowTraces())
	})
}

// TracesHandler serves the bounded ring of recent traces as NDJSON.
func TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		WriteTracesNDJSON(w, RecentTraces())
	})
}

// EventsHandler serves the flight recorder as NDJSON, oldest first.
func EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		WriteEventsNDJSON(w)
	})
}

// --- request ids ------------------------------------------------------------

// Request ids are a boot-scoped prefix plus a monotonic counter — unique
// within and across restarts (the prefix changes), cheap to mint (one
// atomic add), and greppable from the access log straight into client
// reports, because every response echoes its id as X-Amop-Request-Id.
var (
	reqSeq    atomic.Uint64
	reqPrefix = fmt.Sprintf("%08x", uint32(time.Now().UnixNano()))
)

// RequestIDHeader is the response header carrying the request id.
const RequestIDHeader = "X-Amop-Request-Id"

// NextRequestID mints a fresh request id.
func NextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqSeq.Add(1))
}

// statusWriter captures the status code and byte count an handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// accessRecord is one NDJSON access-log line.
type accessRecord struct {
	TS     time.Time `json:"ts"`
	ID     string    `json:"id"`
	Method string    `json:"method"`
	Path   string    `json:"path"`
	Status int       `json:"status"`
	DurMs  float64   `json:"dur_ms"`
	Bytes  int64     `json:"bytes"`
	Remote string    `json:"remote,omitempty"`
}

// AccessLog wraps an HTTP handler with a structured NDJSON access log. Every
// request is assigned a request id (an incoming X-Amop-Request-Id is honored
// so ids propagate through proxies and retries), the id is echoed on the
// response, and one JSON line — timestamp, id, method, path, status,
// duration, bytes — is written to out per request. Writes are serialized so
// concurrent requests never interleave partial lines. A nil out keeps the
// request-id assignment and echo but skips the log line entirely.
func AccessLog(next http.Handler, out io.Writer) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NextRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		if out == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		rec := accessRecord{
			TS: start, ID: id, Method: r.Method, Path: r.URL.Path,
			Status: sw.status, DurMs: float64(time.Since(start)) / 1e6,
			Bytes: sw.bytes, Remote: r.RemoteAddr,
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return
		}
		mu.Lock()
		out.Write(append(line, '\n'))
		mu.Unlock()
	})
}
