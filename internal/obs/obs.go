// Package obs is the telemetry layer of the pricing stack: lock-free
// log-bucketed latency histograms, lightweight span traces of the pricing
// path, and a fixed-size flight recorder of serving events. It is the
// production equivalent of the paper's per-stage cost breakdowns — where the
// paper instruments the stencil pipeline to explain where a solve spends its
// time, obs instruments the serving pipeline so a live deployment can answer
// "what is quote p99, where does a slow solve spend its time, and which
// tier or symbol is degrading it".
//
// The layer is built to be near-free on the paths that matter:
//
//   - the disabled path costs one atomic load (Enabled) per instrumentation
//     point and nothing else;
//   - recording is zero-alloc: histograms bump a fixed atomic bucket, spans
//     accumulate into fixed atomic stage slots, and the cached-quote serving
//     path stays at 0 allocs/op with telemetry enabled (pinned by
//     TestObsOverheadSmoke);
//   - snapshots (Prometheus quantiles, NDJSON trace export) do the work, on
//     the monitoring path, never the serving path.
//
// Telemetry is ON by default; SetEnabled(false) reduces every
// instrumentation point to the single gate load.
package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// enabled gates every instrumentation point. Histogram records, span stage
// accumulation and flight-recorder appends all check it first, so disabling
// telemetry reduces each point to this one atomic load.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether telemetry is on. Instrumentation call sites that
// need any setup beyond the record itself (a time.Now, a label lookup) must
// check it first so the disabled path stays a single atomic load.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns telemetry on or off process-wide and returns the previous
// setting. It exists for A/B overhead measurement (the obs-overhead harness
// experiment and TestObsOverheadSmoke) and for operators who want the
// absolute floor; leave it on in production — that is the configuration the
// overhead gate pins.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// The pricing stack's standing instruments. Every latency the ROADMAP's
// sharding router needs to steer around a slow shard lives here: quote serve
// latency by symbol, solve latency by tier (with the analytic tier split by
// cold/warm boundary cache), the two queueing delays (coalescer wait, spawn
// budget wait), staleness age at serve time, and the FFT evolution kernel
// underneath it all.
var (
	// QuoteLatency is the end-to-end Server.Quote latency, labeled by the
	// contract's symbol: cache serves land in the nanosecond buckets,
	// flight-blocked quotes wherever their solve puts them.
	QuoteLatency = NewHistVec("amop_quote_latency_seconds", "symbol",
		"end-to-end quote serve latency by symbol")
	// SolveLatency is the per-contract solve latency labeled by the tier
	// that priced it: "lattice", "analytic_warm" (boundary-cache hit) or
	// "analytic_cold" (boundary solved from scratch).
	SolveLatency = NewHistVec("amop_solve_latency_seconds", "tier",
		"per-contract solve latency by pricing tier (analytic split by boundary-cache cold/warm)")
	// CoalescerWait is the time a quote spent blocked on a repricing flight
	// it joined (leaders' solve time is SolveLatency's to report).
	CoalescerWait = NewHistogram("amop_coalescer_wait_seconds",
		"time quote requests spent waiting on a joined repricing flight")
	// BudgetWait is the time spent acquiring spawn-budget tokens in
	// par.AcquireCtx — the queueing delay bulk work sees when the machine is
	// saturated.
	BudgetWait = NewHistogram("amop_budget_wait_seconds",
		"time spent blocked acquiring spawn-budget tokens (par.AcquireCtx)")
	// StalenessAge is the age of the surface entry each quote was answered
	// from, at serve time — the distribution MaxStaleness trades against.
	StalenessAge = NewHistogram("amop_staleness_age_seconds",
		"age of the served surface price at serve time")
	// FFTEvolve is the latency of one linstencil FFT evolution (the
	// EvolveCone/EvolvePeriodic hot kernel of every lattice solve).
	FFTEvolve = NewHistogram("amop_fft_evolve_seconds",
		"latency of one FFT stencil evolution (forward transform, kernel multiply, inverse)")
)

// instrument is anything the registry can render to Prometheus text and
// reset; Histogram and HistVec implement it.
type instrument interface {
	writeProm(w io.Writer)
	reset()
}

var (
	regMu    sync.Mutex
	registry []instrument
)

func register(in instrument) {
	regMu.Lock()
	registry = append(registry, in)
	regMu.Unlock()
}

func instruments() []instrument {
	regMu.Lock()
	defer regMu.Unlock()
	return append([]instrument(nil), registry...)
}

// WriteProm renders every registered histogram as a Prometheus summary:
// per-label p50/p90/p99 quantile series plus _sum, _count and _max. Series
// with zero observations are omitted, so an idle instrument costs nothing on
// the scrape.
func WriteProm(w io.Writer) {
	for _, in := range instruments() {
		in.writeProm(w)
	}
}

// Reset zeroes every registered histogram, the trace rings and the flight
// recorder. It exists for tests and A/B harness experiments that need a
// clean slate inside one process; production monitoring wants the cumulative
// counters and never calls it.
func Reset() {
	for _, in := range instruments() {
		in.reset()
	}
	resetTraces()
	resetEvents()
}

// fprintSeconds writes v nanoseconds as seconds in compact scientific
// notation, the way Prometheus clients format durations.
func fprintSeconds(w io.Writer, v int64) {
	fmt.Fprintf(w, "%g", float64(v)/1e9)
}
