// Live pricing server: a continuously-maintained price surface over a
// registered contract book, driven by market-data ticks and queried by
// quote requests. This is the serving layer the ROADMAP's "heavy traffic"
// north star asks for, one level above PriceBatch and ScenarioSweep: where
// the batch engine amortizes one call's redundancy and the sweep engine one
// grid's, the server amortizes redundancy *across a request stream* —
//
//   - incremental repricing: each contract's market inputs (spot, vol, rate)
//     are quantized into buckets (internal/serve.Quantizer), and a tick only
//     marks a contract for re-solve when its quantized inputs actually move
//     to a new cell. Ticks that wander inside a cell re-solve nothing
//     (TickSkips); prices are solved at the cell's representative point, so
//     every tick in a cell is by construction the same pricing problem.
//   - request coalescing: quotes for dirty contracts do not each run their
//     own solve. The first becomes the leader of a repricing flight that
//     collects the entire dirty set into one PriceBatch (sharing the batch
//     engine's dedup plan, lattice-model cache and the process-wide
//     kernel-spectrum cache underneath); concurrent quotes join that flight
//     and wait for its result (CoalescedRequests). The flight's waiter queue
//     is bounded — beyond MaxPending the server sheds load with
//     ErrServerBusy — and the batch itself draws its workers from
//     internal/par's global spawn budget, so a saturated server degrades to
//     serial solves instead of oversubscribing the machine.
//   - bounded staleness: with MaxStaleness > 0, a quote for a dirty contract
//     whose last solve is fresher than the bound is answered immediately from
//     the stale surface (StaleServes) instead of blocking on the flight;
//     MaxStaleness = 0 always blocks until the surface is current.
//   - fault isolation and graceful degradation: every fresh solve passes a
//     surface-health gate (finite, non-negative price) before it is
//     published; a solve that errors, panics, or fails the gate leaves the
//     contract's last-good price pinned and is served from it with
//     ServedQuote.Degraded set. A panicking contract is quarantined — pulled
//     out of repricing flights, its stack kept in a QuarantineRecord — until
//     a tick moves it to a new cell, so one broken contract cannot take its
//     symbol's flights down with it. Per-symbol circuit breakers stop
//     re-solving a symbol whose flights keep failing (N consecutive failures
//     open the breaker; after a backoff one probe flight is admitted), so a
//     persistently failing symbol costs a bounded number of doomed solves
//     instead of one per quote.
//
// The serving counters are process-wide and surface through
// ReadPerfCounters; cmd/amop-serve wraps the server in an HTTP daemon with a
// /metrics endpoint.
package amop

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"github.com/nlstencil/amop/internal/obs"
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/serve"
)

// ErrServerBusy is returned by Server.Quote when the repricing flight's
// bounded waiter queue (ServerOptions.MaxPending) is full: the request is
// shed immediately instead of queueing without bound. It is the server's
// backpressure signal; HTTP layers should map it to 503.
var ErrServerBusy = serve.ErrOverloaded

// Market is the live market state of one underlying symbol: the three inputs
// ticks move. Contract terms (strike, expiry, dividend yield, type) are fixed
// at registration; spot, vol and rate are overridden per tick.
type Market struct {
	Spot float64 `json:"spot"`
	Vol  float64 `json:"vol"`
	Rate float64 `json:"rate"`
}

// BookEntry registers one contract with the live pricing server.
type BookEntry struct {
	// Symbol names the underlying; ticks address contracts by symbol. The
	// empty string is a valid symbol (a single-underlying book needs no
	// names). The first entry of each symbol seeds the symbol's market from
	// its Option's S, V and R; later entries on the same symbol share that
	// market state.
	Symbol string
	// Option carries the contract terms. S, V and R serve only as the
	// symbol's market seed (see Symbol); they are overridden by the live
	// market on every solve.
	Option Option
	// Model is the discretization; AutoModel picks the natural model, as in
	// PriceBatch.
	Model Model
	// Config carries steps and algorithm, as in Price. Config.Steps is
	// required (>= 1).
	Config Config
}

// ServerOptions configures NewServer.
type ServerOptions struct {
	// SpotBucket, VolBucket and RateBucket are the quantization bucket
	// widths for the three market inputs (absolute units: price, vol points,
	// rate). A tick is a no-op for every contract whose bucketed inputs do
	// not move; prices are solved at bucket centers, so the worst-case input
	// error is half a bucket per axis. Zero disables quantization on that
	// axis — every change, however small, triggers a re-solve.
	SpotBucket, VolBucket, RateBucket float64
	// MaxStaleness bounds how stale a served quote may be: a quote for a
	// contract marked dirty by a tick is still answered from the old surface
	// if that price is younger than MaxStaleness. Zero (the default) always
	// blocks dirty quotes on a re-solve.
	MaxStaleness time.Duration
	// MaxPending bounds how many quote requests may queue behind an
	// in-flight repricing batch; beyond it Quote fails fast with
	// ErrServerBusy. Zero means unbounded.
	MaxPending int
	// Workers bounds each repricing batch's worker pool, as in BatchOptions.
	Workers int
	// ColdStart skips the initial synchronous pricing of the book. The first
	// quotes then pay the first solve; by default NewServer returns with the
	// whole surface priced.
	ColdStart bool
	// BreakerThreshold is the consecutive-failure count that opens a
	// symbol's circuit breaker; zero selects the default
	// (serve.DefaultBreakerThreshold, 3).
	BreakerThreshold int
	// BreakerBackoff is the initial open interval before a breaker admits a
	// probe flight; each consecutive re-open doubles it up to
	// BreakerMaxBackoff. Zeros select the defaults (100ms, 5s).
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// Tier selects the pricing tier for every repricing flight, as in
	// BatchOptions: TierAuto serves in-envelope vanilla American contracts
	// from the analytic fast path (ReadPerfCounters.AnalyticServes counts
	// them) and keeps the rest on the lattice.
	Tier TierMode
}

// TickResult summarizes one tick's effect on the book.
type TickResult struct {
	// Moved counts contracts whose quantized inputs changed cell — they are
	// now dirty and will be re-solved by the next repricing flight.
	Moved int
	// Skipped counts contracts whose quantized inputs stayed in their cell —
	// their surface prices remain exactly valid and no work is queued.
	Skipped int
	// Market is the symbol's full market state after the tick applied.
	Market Market
}

// ServedQuote is one answered quote: the price and the exact market point it
// was solved at (the quantization cell's representative), with its solve time
// and freshness flags.
type ServedQuote struct {
	Price float64
	// Market is the representative market point the price was solved at.
	Market Market
	// At is when the price was solved.
	At time.Time
	// Stale reports that the quote was served from a previous surface entry
	// rather than a solve at the live market's cell — under the MaxStaleness
	// bound, after the quoteRounds retry cap, or in degraded mode.
	Stale bool
	// Degraded reports that the quote was served from the contract's pinned
	// last-good price because the fresh solve failed — it errored, panicked
	// (the contract is quarantined), failed the surface-health gate, or its
	// symbol's circuit breaker is open. Degraded implies Stale.
	Degraded bool
}

// QuarantineRecord describes a contract pulled out of repricing flights
// after its solver panicked. The quarantine lasts until a tick moves the
// contract to a new quantization cell (a new pricing problem is worth
// retrying); while it holds, quotes for the contract are served from its
// pinned last-good price with Degraded set, or fail with Err if no good
// price was ever solved.
type QuarantineRecord struct {
	// Contract is the book id (the Quote id) of the quarantined contract.
	Contract int
	// Symbol is the contract's underlying.
	Symbol string
	// At is when the panic was recovered.
	At time.Time
	// Err is the recovered panic as an error (a *SolvePanicError).
	Err error
	// Stack is the goroutine stack captured at the panic site.
	Stack []byte
}

// bookContract is one registered contract plus its surface slot. cur is the
// quantization cell of the live market; priced is the cell the stored price
// was solved in. The contract is dirty when they differ (or nothing has been
// solved yet).
//
// valid/price/pricedRep/at always describe the last solve that passed the
// health gate — the pinned last-good entry degraded serves answer from. A
// failed solve attempt sets err (and quar, when it panicked) and leaves the
// last-good fields untouched, so one bad solve can never overwrite a good
// price with garbage.
type bookContract struct {
	entry BookEntry

	cur    serve.Key
	curRep Market

	valid     bool
	priced    serve.Key
	pricedRep Market
	price     float64
	at        time.Time

	// err is the error of the most recent failed solve attempt for the
	// current cell (nil after a healthy solve). quar is set when that
	// failure was a panic; the contract is then excluded from repricing
	// flights until its cell moves.
	err  error
	quar *QuarantineRecord
}

// Server maintains a live price surface over a contract book. Methods are
// safe for concurrent use: ticks and quotes may race freely.
type Server struct {
	quant        serve.Quantizer
	maxStaleness time.Duration
	workers      int
	tier         TierMode

	mu      sync.Mutex
	book    []bookContract
	markets map[string]Market
	// bySymbol indexes the book by symbol (built once in NewServer), so a
	// tick touches only its own symbol's contracts instead of scanning the
	// whole book under the lock.
	bySymbol map[string][]int
	// breakers holds one circuit breaker per symbol (built once in
	// NewServer; each Breaker has its own lock and is also read outside mu).
	breakers map[string]*serve.Breaker

	flights serve.Coalescer

	// now and flightBarrier are test seams: now supplies timestamps
	// (staleness tests inject a fake clock), flightBarrier — when non-nil —
	// runs after a repricing batch solves and before its write-back, outside
	// the server lock (the mid-batch-tick tests stand in this gap).
	now           func() time.Time
	flightBarrier func()
}

// NewServer registers the book and returns a serving surface. Unless
// ServerOptions.ColdStart is set, the whole book is priced synchronously
// before NewServer returns, so the first quotes are already cache serves.
// Per-contract pricing failures (a put under a call-only model, say) are
// stored in the surface and surfaced by Quote for that contract only.
func NewServer(book []BookEntry, opts ServerOptions) (*Server, error) {
	if len(book) == 0 {
		return nil, errors.New("amop: NewServer needs a non-empty contract book")
	}
	s := &Server{
		quant: serve.Quantizer{
			SpotBucket: opts.SpotBucket,
			VolBucket:  opts.VolBucket,
			RateBucket: opts.RateBucket,
		},
		maxStaleness: max(opts.MaxStaleness, 0),
		workers:      opts.Workers,
		tier:         opts.Tier,
		book:         make([]bookContract, len(book)),
		markets:      make(map[string]Market),
		bySymbol:     make(map[string][]int),
		breakers:     make(map[string]*serve.Breaker),
		now:          time.Now,
	}
	s.flights.MaxWaiters = opts.MaxPending
	for i, e := range book {
		// Forced-analytic entries have no lattice and need no step count;
		// everything else prices on a lattice somewhere (even TierAuto falls
		// back to one), so Steps stays mandatory for them.
		if e.Config.Steps < 1 && e.Config.Algorithm != Analytic {
			return nil, fmt.Errorf("amop: book entry %d: Config.Steps = %d must be >= 1", i, e.Config.Steps)
		}
		m, ok := s.markets[e.Symbol]
		if !ok {
			m = Market{Spot: e.Option.S, Vol: e.Option.V, Rate: e.Option.R}
			s.markets[e.Symbol] = m
			s.breakers[e.Symbol] = &serve.Breaker{
				Threshold:  opts.BreakerThreshold,
				Backoff:    opts.BreakerBackoff,
				MaxBackoff: opts.BreakerMaxBackoff,
			}
		}
		c := bookContract{entry: e}
		c.cur = s.quant.Key(m.Spot, m.Vol, m.Rate)
		c.curRep = s.rep(m)
		s.book[i] = c
		s.bySymbol[e.Symbol] = append(s.bySymbol[e.Symbol], i)
	}
	// A live server makes interactive quote traffic a distinct class from
	// bulk analytics: reserve one spawn token that non-interactive batches,
	// chains and sweeps cannot take, so a machine saturated by a sweep still
	// has parallelism left for repricing flights (which run Interactive).
	par.SetBulkReserve(1)
	if !opts.ColdStart {
		if err := s.Flush(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Server) rep(m Market) Market {
	sp, vo, ra := s.quant.Rep(m.Spot, m.Vol, m.Rate)
	return Market{Spot: sp, Vol: vo, Rate: ra}
}

// Contracts reports the size of the registered book. Quote ids are
// [0, Contracts()).
func (s *Server) Contracts() int { return len(s.book) }

// Market returns the live market state of a symbol.
func (s *Server) Market(symbol string) (Market, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.markets[symbol]
	return m, ok
}

// Quarantined returns the quarantine records of every currently quarantined
// contract (panicking solves pulled out of repricing flights), in book
// order. Records drop off as ticks move their contracts to new cells.
func (s *Server) Quarantined() []QuarantineRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	var recs []QuarantineRecord
	for i := range s.book {
		if q := s.book[i].quar; q != nil {
			recs = append(recs, *q)
		}
	}
	return recs
}

// BreakerState reports a symbol's circuit-breaker state, for monitoring.
func (s *Server) BreakerState(symbol string) (serve.BreakerState, bool) {
	s.mu.Lock()
	b := s.breakers[symbol]
	s.mu.Unlock()
	if b == nil {
		return serve.BreakerClosed, false
	}
	return b.State(), true
}

// Tick ingests a market-data update for one symbol: the symbol's market
// becomes m, and every contract on the symbol whose quantized inputs moved
// to a new cell is marked dirty. Contracts whose inputs stayed in their cell
// keep their surface prices — that skip is the incremental path's entire
// point, and both counts feed the process-wide TickReprices/TickSkips
// counters. Tick never solves anything itself; dirty contracts are re-solved
// by the next quote's repricing flight (or an explicit Flush).
func (s *Server) Tick(symbol string, m Market) (TickResult, error) {
	return s.tick(symbol, func(Market) Market { return m })
}

// TickPartial applies a partial market update: non-nil fields replace the
// symbol's current values, nil fields keep them. The read-modify-write runs
// atomically under the server's lock, so concurrent partial ticks for one
// symbol compose instead of losing each other's fields — this is the merge
// an HTTP tick endpoint with optional fields needs.
func (s *Server) TickPartial(symbol string, spot, vol, rate *float64) (TickResult, error) {
	return s.tick(symbol, func(cur Market) Market {
		if spot != nil {
			cur.Spot = *spot
		}
		if vol != nil {
			cur.Vol = *vol
		}
		if rate != nil {
			cur.Rate = *rate
		}
		return cur
	})
}

// tick applies update to the symbol's market under the lock and re-keys the
// symbol's contracts against the new state.
func (s *Server) tick(symbol string, update func(Market) Market) (TickResult, error) {
	s.mu.Lock()
	cur, ok := s.markets[symbol]
	if !ok {
		s.mu.Unlock()
		return TickResult{}, fmt.Errorf("amop: no contracts registered for symbol %q", symbol)
	}
	m := update(cur)
	s.markets[symbol] = m
	k := s.quant.Key(m.Spot, m.Vol, m.Rate)
	rep := s.rep(m)
	res := TickResult{Market: m}
	for _, i := range s.bySymbol[symbol] {
		c := &s.book[i]
		if c.cur == k {
			res.Skipped++
			continue
		}
		c.cur = k
		c.curRep = rep
		// A new cell is a new pricing problem: release the quarantine and
		// clear the stale failure so the next flight retries this contract.
		c.err = nil
		c.quar = nil
		res.Moved++
	}
	s.mu.Unlock()
	serve.AddTickReprices(int64(res.Moved))
	serve.AddTickSkips(int64(res.Skipped))
	if res.Moved > 0 && obs.Enabled() {
		// Only cell-crossing ticks reach the flight recorder: they are the
		// state transitions worth replaying, and the within-bucket skip path
		// stays free of ring traffic.
		obs.RecordEvent(obs.EvTick, symbol, int64(res.Moved), "")
	}
	return res, nil
}

// quoteRounds bounds how many repricing flights one Quote call will run or
// wait on before it stops chasing the market: a symbol ticking across cells
// faster than its book can be solved would otherwise starve every quote (and
// burn solves that are obsolete on arrival). After quoteRounds flights the
// freshest solved surface is served, flagged stale, regardless of
// MaxStaleness.
const quoteRounds = 3

// quoteSampleEvery is the quote-latency sampling interval: one cached serve
// in quoteSampleEvery is timed into obs.QuoteLatency / obs.StalenessAge.
// Must be a power of two (the sample check is a mask). At 1/512 the
// amortized clock-read cost of the sampled calls is well under a nanosecond
// per serve, which is what keeps the telemetry-on fast path inside its 5%
// latency budget (TestObsOverheadSmoke).
const quoteSampleEvery = 512

// Quote answers one contract from the surface; it is QuoteCtx without a
// deadline.
func (s *Server) Quote(id int) (ServedQuote, error) {
	return s.QuoteCtx(context.Background(), id)
}

// QuoteCtx answers one contract from the surface. Clean contracts are served
// directly (the fast path). A dirty contract is either served stale — if its
// last solve is within MaxStaleness — or resolved through a coalesced
// repricing flight that re-solves the whole dirty set in one PriceBatch;
// concurrent quotes share that flight. QuoteCtx retries until the contract's
// surface entry matches the live market, so a tick landing mid-flight simply
// costs one more round — but at most quoteRounds rounds: a market outrunning
// the solver yields the freshest available price, marked Stale, rather than
// blocking forever. With a full waiter queue QuoteCtx fails fast with
// ErrServerBusy.
//
// When the fresh solve cannot be used — it failed the health gate, errored,
// the contract is quarantined after a panic, or the symbol's circuit breaker
// is open — the contract's pinned last-good price is served with Degraded
// set; if no good price was ever solved, the solve's error is returned. A
// canceled ctx stops the wait and returns ctx.Err(); the shared repricing
// flight keeps running for the other quotes waiting on it.
//
// Successful serves are recorded into the per-symbol quote-latency
// histogram and the staleness-age histogram (obs.QuoteLatency,
// obs.StalenessAge) on a sampled basis: every quoteSampleEvery-th cached
// serve is timed, using the cache-serve counter the fast path already pays
// for as the sampling tick. A cached serve is tens of nanoseconds — cheaper
// than a single clock read — so timing every call would cost more than the
// operation being measured; sampling keeps the telemetry-on fast path to two
// atomic loads and 0 allocs while the histogram still sees an unbiased draw
// from the same distribution. Slow serves are captured independently by the
// repricing-flight traces and the solve-latency histograms, which are timed
// on every flight.
func (s *Server) QuoteCtx(ctx context.Context, id int) (ServedQuote, error) {
	if !obs.Enabled() {
		return s.quoteCtx(ctx, id)
	}
	if serve.CacheServes()&(quoteSampleEvery-1) != 0 {
		return s.quoteCtx(ctx, id)
	}
	start := time.Now()
	q, err := s.quoteCtx(ctx, id)
	if err == nil && id >= 0 && id < len(s.book) {
		// The book and its symbols are immutable after NewServer, so the
		// label read needs no lock. Age is clamped at zero: fake-clock test
		// servers can serve entries stamped "in the future".
		now := time.Now()
		obs.QuoteLatency.With(s.book[id].entry.Symbol).Record(int64(now.Sub(start)))
		obs.StalenessAge.Record(int64(now.Sub(q.At)))
	}
	return q, err
}

// quoteCtx is QuoteCtx's uninstrumented body.
func (s *Server) quoteCtx(ctx context.Context, id int) (ServedQuote, error) {
	if id < 0 || id >= len(s.book) {
		return ServedQuote{}, fmt.Errorf("amop: quote id %d out of range [0, %d)", id, len(s.book))
	}
	counted := false
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			serve.AddCtxCancel()
			return ServedQuote{}, err
		}
		s.mu.Lock()
		c := &s.book[id]
		if c.valid && c.priced == c.cur && c.err == nil {
			q := c.snapshot(false, false)
			s.mu.Unlock()
			// Only a first-round serve is the fast path; a quote that ran
			// or waited on a flight must not inflate the cache-hit rate.
			if round == 0 {
				serve.AddCacheServes(1)
			}
			return q, nil
		}
		// No fresh solve will run for this contract right now: it is
		// quarantined, or its symbol's breaker is open (and no probe is
		// due). Serve the pinned last-good price degraded instead of
		// queueing on a flight that would skip it.
		if c.quar != nil || s.breakers[c.entry.Symbol].Blocked(s.now()) {
			if c.valid {
				q := c.snapshot(true, true)
				sym := c.entry.Symbol
				s.mu.Unlock()
				serve.AddDegradedServes(1)
				obs.RecordEvent(obs.EvDegradedServe, sym, int64(id), "")
				return q, nil
			}
			err := c.err
			s.mu.Unlock()
			if err == nil {
				err = fmt.Errorf("amop: quote %d: circuit open for symbol %q and no last-good price", id, s.book[id].entry.Symbol)
			}
			return ServedQuote{}, err
		}
		if c.valid && c.err == nil &&
			(round >= quoteRounds || (s.maxStaleness > 0 && s.now().Sub(c.at) <= s.maxStaleness)) {
			q := c.snapshot(true, false)
			s.mu.Unlock()
			serve.AddStaleServes(1)
			return q, nil
		}
		if round >= quoteRounds && c.err != nil {
			// The retries are spent and the latest solve attempt failed:
			// degrade onto the last-good price, or surface the failure.
			if c.valid {
				q := c.snapshot(true, true)
				sym := c.entry.Symbol
				s.mu.Unlock()
				serve.AddDegradedServes(1)
				obs.RecordEvent(obs.EvDegradedServe, sym, int64(id), "")
				return q, nil
			}
			err := c.err
			s.mu.Unlock()
			return ServedQuote{}, err
		}
		s.mu.Unlock()
		var waitStart time.Time
		if obs.Enabled() {
			waitStart = time.Now()
		}
		joined, err := s.flights.DoCtx(ctx, s.repriceDirty)
		if joined && !waitStart.IsZero() {
			// Only joiners waited on someone else's flight; the leader's
			// time is the solve itself, reported by SolveLatency.
			obs.CoalescerWait.RecordSince(waitStart)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				serve.AddCtxCancel()
			}
			var pe *serve.PanicError
			if !joined && errors.As(err, &pe) {
				// A panic escaped the flight body itself (not a per-item
				// solver panic — the batch engine confines those); it was
				// recovered by the coalescer, stack attached.
				serve.AddPanicRecovered()
			}
			return ServedQuote{}, err
		}
		if joined && !counted {
			// Once per request, however many flights the retries span.
			counted = true
			serve.AddCoalescedRequests(1)
		}
	}
}

// snapshot copies the contract's pinned surface entry; the caller holds
// s.mu.
func (c *bookContract) snapshot(stale, degraded bool) ServedQuote {
	return ServedQuote{Price: c.price, Market: c.pricedRep, At: c.at, Stale: stale, Degraded: degraded}
}

// Flush synchronously re-solves every dirty contract, coalescing with any
// in-flight repricing, and returns once no contract has actionable work
// left: the whole surface matches the live market, except contracts that are
// quarantined or gated by an open circuit breaker (those serve degraded
// until their cell moves or a probe succeeds). Per-contract pricing errors
// are stored in the surface (and reported by Quote); Flush itself only fails
// on backpressure.
func (s *Server) Flush() error {
	for {
		now := s.now()
		s.mu.Lock()
		dirty := false
		for i := range s.book {
			c := &s.book[i]
			if c.actionable(s, now) {
				dirty = true
				break
			}
		}
		s.mu.Unlock()
		if !dirty {
			return nil
		}
		if _, err := s.flights.Do(s.repriceDirty); err != nil {
			return err
		}
	}
}

// Drain blocks until no repricing flight is in progress, or until ctx is
// done. It is the graceful-shutdown hook: stop admitting quotes and ticks
// first, then Drain, and the surface write-backs of in-flight work complete
// before the process exits.
func (s *Server) Drain(ctx context.Context) error {
	return s.flights.Drain(ctx)
}

// actionable reports whether a repricing flight could make progress on this
// contract right now: it needs a solve (dirty, or its last attempt failed)
// and nothing excludes it (quarantine, open breaker). The caller holds
// s.mu. Flight snapshotting uses Breaker.Allow, never this — Allow is the
// one that consumes the half-open probe slot.
func (c *bookContract) actionable(s *Server, now time.Time) bool {
	if c.valid && c.priced == c.cur && c.err == nil {
		return false
	}
	if c.quar != nil {
		return false
	}
	return !s.breakers[c.entry.Symbol].Blocked(now)
}

// repriceDirty is the flight body: snapshot the dirty set, solve it as one
// PriceBatch at the cells' representative market points, write the surface
// back. The batch shares the engine's dedup plan and lattice-model cache —
// identical contracts collapse to one solve — and, underneath, the
// process-wide kernel-spectrum cache, so a tick-to-tick re-solve at an
// already-seen step count runs at steady-state cache hit rates. A tick
// landing between snapshot and write-back moves cur ahead of the solved key;
// the write-back then leaves the contract dirty (priced != cur) and the next
// flight picks it up — stale solves are never published as current.
//
// The flight is deliberately not bound to any single caller's context: it is
// a shared resource whose result every coalesced waiter needs, so one
// impatient quote abandoning the wait (DoCtx) must not cancel the solve for
// the rest. The batch runs Interactive — exempt from the bulk spawn reserve —
// because quote latency is the traffic class the reserve protects.
//
// Every result passes the surface-health gate before it is published: an
// errored, panicked, non-finite or negative price leaves the contract's
// last-good entry pinned and records the failure instead. Panics quarantine
// the contract (stack preserved); per-symbol failures feed the symbol's
// circuit breaker.
func (s *Server) repriceDirty() error {
	now := s.now()
	var snapStart time.Time
	if obs.Enabled() {
		snapStart = time.Now()
	}
	s.mu.Lock()
	var (
		ids  []int
		keys []serve.Key
		reps []Market
		reqs []Request
	)
	// Allow consumes the half-open probe slot, so ask once per symbol per
	// flight: either the symbol's whole dirty set rides the probe, or none
	// of it runs.
	allowed := make(map[string]bool)
	for i := range s.book {
		c := &s.book[i]
		if c.valid && c.priced == c.cur && c.err == nil {
			continue
		}
		if c.quar != nil {
			continue
		}
		sym := c.entry.Symbol
		ok, asked := allowed[sym]
		if !asked {
			ok = s.breakers[sym].Allow(now)
			allowed[sym] = ok
		}
		if !ok {
			continue
		}
		o := c.entry.Option
		o.S, o.V, o.R = c.curRep.Spot, c.curRep.Vol, c.curRep.Rate
		ids = append(ids, i)
		keys = append(keys, c.cur)
		reps = append(reps, c.curRep)
		reqs = append(reqs, Request{Option: o, Model: c.entry.Model, Config: c.entry.Config, Tag: sym})
	}
	s.mu.Unlock()
	if len(ids) == 0 {
		return nil
	}
	// The flight is the span-traced unit of pricing work: the trace rides
	// the context into the batch engine (stage times for tier decisions,
	// memo lookups, budget waits and solves accumulate from every worker)
	// and is installed as the process-wide active trace for the layers below
	// any context parameter (the FFT kernels, the analytic boundary solver).
	// Finish captures it into the recent ring — and the slow ring, when the
	// flight crossed the slow threshold.
	var tr *obs.Trace
	ctx := context.Background()
	if !snapStart.IsZero() {
		tr = obs.StartTrace("flight", flightLabel(reqs))
		tr.SetItems(len(ids))
		tr.AddSince(obs.StageSnapshot, snapStart)
		ctx = obs.NewContext(ctx, tr)
		defer obs.SetActive(obs.SetActive(tr))
		defer func() {
			snap := tr.Finish()
			obs.RecordEvent(obs.EvReprice, snap.Label, int64(len(ids)), "")
		}()
	}
	res := PriceBatchCtx(ctx, reqs, BatchOptions{Workers: s.workers, Interactive: true, Tier: s.tier})
	if s.flightBarrier != nil {
		s.flightBarrier()
	}
	at := s.now()
	var pubStart time.Time
	if tr != nil {
		pubStart = time.Now()
		defer func() { tr.AddSince(obs.StagePublish, pubStart) }()
	}
	symFailed := make(map[string]bool)
	s.mu.Lock()
	for j, i := range ids {
		c := &s.book[i]
		sym := c.entry.Symbol
		if _, ok := symFailed[sym]; !ok {
			symFailed[sym] = false
		}
		price, err := res[j].Price, res[j].Err
		if err == nil && (math.IsNaN(price) || math.IsInf(price, 0) || price < 0) {
			err = fmt.Errorf("amop: health gate rejected solve for contract %d (symbol %q): price %v is not a finite non-negative value", i, sym, price)
		}
		if err != nil {
			symFailed[sym] = true
			c.err = err
			var spe *SolvePanicError
			if errors.As(err, &spe) {
				c.quar = &QuarantineRecord{Contract: i, Symbol: sym, At: at, Err: err, Stack: spe.Stack}
				obs.RecordEvent(obs.EvQuarantine, sym, int64(i), err.Error())
			}
			continue
		}
		c.price = price
		c.err = nil
		c.quar = nil
		c.valid = true
		c.priced = keys[j]
		c.pricedRep = reps[j]
		c.at = at
	}
	s.mu.Unlock()
	for sym, failed := range symFailed {
		b := s.breakers[sym]
		if !failed {
			if b.Success() {
				obs.RecordEvent(obs.EvBreakerClose, sym, 0, "")
			}
			continue
		}
		if b.Failure(at) {
			serve.AddCircuitOpen()
			obs.RecordEvent(obs.EvBreakerOpen, sym, 0, "")
		}
	}
	return nil
}

// flightLabel names a repricing flight after the symbols it covers, for the
// trace rings and the flight recorder: distinct symbols in request order,
// capped so a wide book cannot bloat the label.
func flightLabel(reqs []Request) string {
	const maxSyms = 4
	var syms []string
	for i := range reqs {
		sym := reqs[i].Tag
		if len(syms) > 0 && syms[len(syms)-1] == sym {
			continue
		}
		dup := false
		for _, s := range syms {
			if s == sym {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if len(syms) == maxSyms {
			return strings.Join(syms, ",") + ",…"
		}
		syms = append(syms, sym)
	}
	return strings.Join(syms, ",")
}
