package amop

import (
	"fmt"
	"io"
	"reflect"

	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/linstencil"
	"github.com/nlstencil/amop/internal/serve"
)

// PerfCounters is a snapshot of the process-wide fast-path performance
// counters: the kernel-spectrum cache that every solver and every PriceBatch
// worker shares, and the byte traffic through the FFT substrate. Counters are
// cumulative since process start; sample before and after a workload and
// subtract to attribute activity to it.
//
// Every field carries a prom struct tag naming its Prometheus series;
// WriteProm walks the tags by reflection, so /metrics, the shutdown snapshot
// and any future exporter stay exhaustive by construction — a new counter
// added here is exported everywhere at once, and a reflection test fails
// when a tag is missing.
type PerfCounters struct {
	// SpectrumCacheHits / SpectrumCacheMisses count lookups of the
	// precomputed kernel spectra (stencil symbol raised to the step count) by
	// the FFT evolution hot path. A healthy steady-state workload — a chain
	// repriced every tick, a batch sweeping strikes on one lattice — runs at
	// a hit rate near 1.
	SpectrumCacheHits   int64 `prom:"amop_spectrum_cache_hits_total"`
	SpectrumCacheMisses int64 `prom:"amop_spectrum_cache_misses_total"`
	// SpectrumCacheBytes / SpectrumCacheEntries describe the cache's current
	// footprint, bounded by linstencil.SetSpectrumCacheLimit (64 MiB by
	// default).
	SpectrumCacheBytes   int64 `prom:"amop_spectrum_cache_bytes"`
	SpectrumCacheEntries int   `prom:"amop_spectrum_cache_entries"`
	// SpectrumSymbolHits / SpectrumSymbolMisses count lookups in the cache's
	// symbol-table layer: the modulated stencil symbol evaluated once per
	// transform size and shared by every step-count power derived at that
	// size.
	SpectrumSymbolHits   int64 `prom:"amop_spectrum_symbol_hits_total"`
	SpectrumSymbolMisses int64 `prom:"amop_spectrum_symbol_misses_total"`
	// SpectrumCrossResHits counts symbol tables derived from a table cached
	// at a different transform size — subsampled exactly from a larger one,
	// or seeded with the even frequencies of a smaller one — instead of
	// evaluated from scratch. A scenario sweep that prices its base book at
	// full resolution and its bump grid at reduced resolution shares symbol
	// work across the two step counts through exactly this path.
	SpectrumCrossResHits int64 `prom:"amop_spectrum_cross_res_hits_total"`
	// FFTBytesTransformed counts sample bytes pushed through FFT butterfly
	// stages (8 per real sample, 16 per complex sample, per direction). The
	// real-input path moves half the bytes of the complex path it replaced.
	FFTBytesTransformed int64 `prom:"amop_fft_bytes_transformed_total"`
	// FFTSoATransforms counts transforms executed by the SoA split-plane
	// kernel (per direction). With the SoA path enabled — the default on
	// machines with the accelerated butterfly kernel — a healthy workload
	// shows this tracking the transform count, and its bytes are included in
	// FFTBytesTransformed.
	FFTSoATransforms int64 `prom:"amop_fft_soa_transforms_total"`
	// RepricingMemoHits / RepricingMemoMisses count how often a batch
	// engine served a repricing from its per-batch memo versus priced it
	// fresh. A chain with Greeks and implied vols enabled reprices shared
	// points by construction — the IV solver's seed and first slope reuse
	// the Greeks' base price and vega bumps — so a healthy run shows a
	// strictly positive hit count.
	RepricingMemoHits   int64 `prom:"amop_repricing_memo_hits_total"`
	RepricingMemoMisses int64 `prom:"amop_repricing_memo_misses_total"`
	// TickReprices / TickSkips count, across every live pricing Server in
	// the process, contracts a market tick marked for re-solve (their
	// quantized inputs moved to a new cell) versus left untouched (inputs
	// wandered inside their cell). A healthy tick stream over a sensibly
	// bucketed book shows TickSkips well above TickReprices — that gap is
	// the work the incremental path never does.
	TickReprices int64 `prom:"amop_serve_tick_reprices_total"`
	TickSkips    int64 `prom:"amop_serve_tick_skips_total"`
	// CoalescedRequests counts quote requests that joined an in-flight
	// repricing batch instead of starting their own; StaleServes counts
	// quotes answered from a dirty-but-fresh surface under the server's
	// MaxStaleness bound; ServeCacheHits counts quotes answered straight
	// from a clean surface entry (the serving fast path).
	CoalescedRequests int64 `prom:"amop_serve_coalesced_requests_total"`
	StaleServes       int64 `prom:"amop_serve_stale_serves_total"`
	ServeCacheHits    int64 `prom:"amop_serve_cache_hits_total"`
	// AnalyticServes counts prices served by the analytic fast path — forced
	// through Algorithm Analytic or promoted by TierAuto; TierFallbacks
	// counts TierAuto candidates that fell back to the lattice (Bermudan
	// schedules never reach the tier seam, so the usual cause is an
	// out-of-envelope contract); XvalChecks counts analytic-vs-lattice
	// cross-validation pairs priced through XvalCheck. On an in-envelope
	// vanilla book served under TierAuto, AnalyticServes tracks the quote
	// count and TierFallbacks stays flat.
	AnalyticServes int64 `prom:"amop_tier_analytic_serves_total"`
	TierFallbacks  int64 `prom:"amop_tier_fallbacks_total"`
	XvalChecks     int64 `prom:"amop_tier_xval_checks_total"`
	// PanicsRecovered counts pricer panics captured and confined to a single
	// contract (the batch engine's per-item recover, or a coalesced flight's
	// recover); DegradedServes counts quotes answered from a pinned last-good
	// price because the fresh solve failed its health gate, errored, or the
	// symbol's circuit breaker was open; CircuitOpens counts per-symbol
	// breakers tripping open on consecutive solve failures; CtxCancels counts
	// solves and batch items abandoned on context cancellation or deadline
	// expiry. On a healthy serving process all four stay flat.
	PanicsRecovered int64 `prom:"amop_serve_panics_recovered_total"`
	DegradedServes  int64 `prom:"amop_serve_degraded_serves_total"`
	CircuitOpens    int64 `prom:"amop_serve_circuit_opens_total"`
	CtxCancels      int64 `prom:"amop_serve_ctx_cancels_total"`
}

// ReadPerfCounters returns the current counter snapshot.
func ReadPerfCounters() PerfCounters {
	hits, misses, bytes, entries := linstencil.SpectrumCacheStats()
	symHits, symMisses, crossRes := linstencil.SymbolCacheStats()
	memoHits, memoMisses := RepricingMemoStats()
	tierAnalytic, tierFall, tierXval := TierStats()
	srv := serve.ReadStats()
	return PerfCounters{
		SpectrumCacheHits:    hits,
		SpectrumCacheMisses:  misses,
		SpectrumCacheBytes:   bytes,
		SpectrumCacheEntries: entries,
		SpectrumSymbolHits:   symHits,
		SpectrumSymbolMisses: symMisses,
		SpectrumCrossResHits: crossRes,
		FFTBytesTransformed:  fft.TransformedBytes(),
		FFTSoATransforms:     fft.SoATransforms(),
		RepricingMemoHits:    memoHits,
		RepricingMemoMisses:  memoMisses,
		AnalyticServes:       tierAnalytic,
		TierFallbacks:        tierFall,
		XvalChecks:           tierXval,
		TickReprices:         srv.TickReprices,
		TickSkips:            srv.TickSkips,
		CoalescedRequests:    srv.CoalescedRequests,
		StaleServes:          srv.StaleServes,
		ServeCacheHits:       srv.CacheServes,
		PanicsRecovered:      srv.PanicsRecovered,
		DegradedServes:       srv.DegradedServes,
		CircuitOpens:         srv.CircuitOpens,
		CtxCancels:           srv.CtxCancels,
	}
}

// WriteProm writes the snapshot in Prometheus text exposition format, one
// series per field, named by the fields' prom struct tags. amop-serve's
// /metrics endpoint and its shutdown counter dump both go through this one
// writer, so the two can never drift apart field-by-field.
func (c PerfCounters) WriteProm(w io.Writer) {
	v := reflect.ValueOf(c)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		name := t.Field(i).Tag.Get("prom")
		if name == "" {
			continue
		}
		fmt.Fprintf(w, "%s %d\n", name, v.Field(i).Int())
	}
}
