// Command amop-sweep reprices a portfolio under a grid of market scenarios
// through the scenario-sweep engine, streaming one NDJSON line per
// (contract, scenario) cell as it completes. It is the risk-ladder entry
// point: feed it the desk's book and bump grid and it amortizes the shared
// structure — deduplicated repricing points, reduced-resolution scenario
// lattices control-variated against the full-resolution base, and
// cross-resolution sharing of the FFT kernel spectra underneath.
//
// Usage:
//
//	amop-sweep -in sweep.json            # spec file
//	cat sweep.json | amop-sweep          # read stdin
//	amop-sweep -in sweep.json -greeks    # add per-scenario Greeks
//
// The input is one JSON object:
//
//	{
//	  "contracts": [
//	    {"type": "call", "S": 127.62, "K": 130, "R": 0.00163, "V": 0.2,
//	     "Y": 0.0163, "E": 1.0, "steps": 10000}
//	  ],
//	  "grid": {
//	    "spot_bumps": [-0.05, 0, 0.05],
//	    "vol_bumps":  [-0.02, 0, 0.02],
//	    "rate_bumps": [0],
//	    "stress": [{"name": "crash", "spot": -0.3, "vol": 0.15}]
//	  },
//	  "scenarios":      [{"name": "vol-up", "vol": 0.05}],
//	  "steps":          10000,
//	  "scenario_steps": 0
//	}
//
// A non-empty "grid" expands to the cartesian product of its bump axes plus
// its stress list, with "scenarios" appended after it; a spec with only
// "scenarios" sweeps exactly those (the output's scenario indices match the
// list), and a spec with neither sweeps the single base scenario. Contract
// fields steps/model/algorithm/european are optional; "steps" sets the
// default resolution and "scenario_steps" is passed through to the engine
// (0: half resolution with control-variate correction; negative: full
// resolution). Output is NDJSON in completion order:
//
//	{"contract":0,"scenario":3,"name":"spot+5%","price":7.51,"pnl":0.62,"ms":1.3}
//
// followed by one {"base":...} line per contract. price/pnl are meaningful
// only on lines without "error"; "ms" is the spacing since the previous
// streamed line. A summary with the dedup and cross-resolution amortization
// counters goes to stderr.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/cliutil"
)

// out buffers the NDJSON stream. Buffering makes the per-cell Encode calls
// cheap, but it means every exit path — including early failures — must
// flush, or the tail of the stream is silently truncated; fail() and main's
// exits all route through flushOut.
var out = bufio.NewWriter(os.Stdout)

func flushOut() {
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "amop-sweep: flushing output:", err)
	}
}

// spec is the JSON input document. Contract rows are the shared CLI format
// (internal/cliutil), so the sweep accepts exactly the rows amop-chain does.
type spec struct {
	Contracts     []cliutil.Contract `json:"contracts"`
	Grid          amop.ScenarioGrid  `json:"grid"`
	Scenarios     []amop.Scenario    `json:"scenarios"`
	Steps         int                `json:"steps"`
	ScenarioSteps int                `json:"scenario_steps"`
	Greeks        bool               `json:"greeks"`
}

// cellLine is one NDJSON output record. price and pnl are meaningful only
// when error is absent; ms is the stream spacing — milliseconds since the
// previous streamed line, not the cell's own pricing time (cells complete
// concurrently), matching amop-chain's field.
type cellLine struct {
	Contract int          `json:"contract"`
	Scenario int          `json:"scenario"`
	Name     string       `json:"name"`
	Price    float64      `json:"price"`
	PnL      float64      `json:"pnl"`
	Greeks   *amop.Greeks `json:"greeks,omitempty"`
	Error    string       `json:"error,omitempty"`
	Ms       float64      `json:"ms"`
}

// baseLine reports one contract's full-resolution base price (meaningful
// only when error is absent).
type baseLine struct {
	Base  int     `json:"base"`
	Price float64 `json:"price"`
	Error string  `json:"error,omitempty"`
}

func main() {
	var (
		in        = flag.String("in", "-", "sweep spec file (JSON); '-' reads stdin")
		workers   = flag.Int("workers", 0, "worker pool bound (0: one per core)")
		scenSteps = flag.Int("scenario-steps", 0, "override the spec's scenario_steps (0: keep spec value)")
		greeks    = flag.Bool("greeks", false, "compute per-scenario Greeks (or set \"greeks\" in the spec)")
		quiet     = flag.Bool("q", false, "suppress the stderr summary line")
	)
	flag.Parse()

	sp, err := readSpec(*in)
	if err != nil {
		fail(err)
	}
	if len(sp.Contracts) == 0 {
		fail(fmt.Errorf("no contracts in %s", *in))
	}
	// A non-empty grid expands first, then the explicit scenarios append. A
	// spec carrying only explicit scenarios gets exactly those (no injected
	// base point — indices in the output match the spec's list), and a spec
	// with neither still expands to the single base scenario so the sweep
	// never silently prices nothing.
	scenarios := sp.Scenarios
	if !sp.Grid.IsEmpty() || len(scenarios) == 0 {
		scenarios = append(sp.Grid.Scenarios(), sp.Scenarios...)
	}

	defaultSteps := sp.Steps
	if defaultSteps == 0 {
		defaultSteps = 10_000
	}
	reqs := make([]amop.Request, len(sp.Contracts))
	for i, c := range sp.Contracts {
		req, err := c.Request(defaultSteps)
		if err != nil {
			fail(fmt.Errorf("contract %d: %w", i, err))
		}
		reqs[i] = req
	}

	opts := amop.SweepOptions{
		Workers:       *workers,
		ScenarioSteps: sp.ScenarioSteps,
		Greeks:        sp.Greeks || *greeks,
	}
	if *scenSteps != 0 {
		opts.ScenarioSteps = *scenSteps
	}

	enc := json.NewEncoder(out)
	var encErr error
	emit := func(v any) {
		// OnResult deliveries are serialized by the engine, and the base
		// lines are written after the sweep returns, so encErr needs no
		// lock. The first write error stops the stream; it is reported
		// after the (already paid-for) sweep completes.
		if encErr == nil {
			encErr = enc.Encode(v)
		}
	}
	before := amop.ReadPerfCounters()
	start := time.Now()
	last := start
	opts.OnResult = func(c, s int, r amop.ScenarioResult) {
		now := time.Now()
		line := cellLine{
			Contract: c, Scenario: s, Name: scenarios[s].Label(),
			Ms: float64(now.Sub(last).Microseconds()) / 1e3,
		}
		last = now
		if r.Err != nil {
			line.Error = r.Err.Error()
		} else {
			line.Price, line.PnL = r.Price, r.PnL
			if opts.Greeks {
				g := r.Greeks
				line.Greeks = &g
			}
		}
		emit(line)
	}
	// ^C cancels the sweep at trapezoid granularity instead of killing the
	// process: cells already solved have streamed, unsolved cells report the
	// cancellation per item, and the summary still flushes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sw := amop.ScenarioSweepCtx(ctx, reqs, scenarios, opts)
	elapsed := time.Since(start)
	after := amop.ReadPerfCounters()

	failed := 0
	for c, b := range sw.Base {
		line := baseLine{Base: c}
		if b.Err != nil {
			line.Error = b.Err.Error()
		} else {
			line.Price = b.Price
		}
		emit(line)
	}
	for _, r := range sw.Results {
		if r.Err != nil {
			failed++
		}
	}
	for _, b := range sw.Base {
		if b.Err != nil {
			failed++
		}
	}

	flushOut()
	if encErr != nil {
		fmt.Fprintln(os.Stderr, "amop-sweep: writing output:", encErr)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"amop-sweep: %d contracts x %d scenarios = %d cells in %v (%d failed); %d unique repricings (%.1fx dedup), %d cross-resolution spectrum transfers\n",
			len(reqs), len(scenarios), sw.Stats.Cells, elapsed.Round(time.Millisecond), failed,
			sw.Stats.UniqueRepricings,
			float64(sw.Stats.Cells+len(reqs))/float64(max(sw.Stats.UniqueRepricings, 1)),
			after.SpectrumCrossResHits-before.SpectrumCrossResHits)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func readSpec(path string) (spec, error) {
	var sp spec
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return sp, err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return sp, fmt.Errorf("parsing sweep spec: %w", err)
	}
	return sp, nil
}

// fail flushes whatever portion of the stream was already produced before
// exiting: a consumer of partial output sees every completed line plus the
// error on stderr, never a silently truncated stream.
func fail(err error) {
	flushOut()
	fmt.Fprintln(os.Stderr, "amop-sweep:", err)
	os.Exit(1)
}
