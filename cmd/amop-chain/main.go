// Command amop-chain prices a whole contract list — an option chain or an
// arbitrary portfolio — through the batch pricing engine, streaming results
// as they complete. It is the serve-traffic entry point: feed it the desk's
// contract file and it keeps every core busy with a bounded worker pool,
// reporting errors per contract instead of aborting the batch.
//
// Usage:
//
//	amop-chain -in contracts.json                 # JSON array of contracts
//	amop-chain -in contracts.csv                  # CSV with a header row
//	cat contracts.json | amop-chain -format json  # read stdin
//	amop-chain -in contracts.csv -output table    # aligned table, request order
//
// JSON input is an array of objects:
//
//	[{"type": "call", "S": 127.62, "K": 130, "R": 0.00163, "V": 0.2,
//	  "Y": 0.0163, "E": 1.0, "steps": 10000, "model": "auto",
//	  "algorithm": "fast", "european": false}]
//
// CSV input has a header naming any subset of the same fields:
//
//	type,S,K,R,V,Y,E,steps
//	call,127.62,130,0.00163,0.2,0.0163,1.0,10000
//
// steps, model and algorithm are optional everywhere; the -steps flag sets
// the default resolution. The default output is NDJSON, one line per
// contract in completion order, so downstream consumers see quotes the
// moment they are ready.
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/cliutil"
)

// out buffers both output modes (NDJSON stream and table). Every exit path —
// including early failures — must flush it, or the tail of the output is
// silently truncated; fail() and main's exits all route through flushOut.
var out = bufio.NewWriter(os.Stdout)

func flushOut() {
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "amop-chain: flushing output:", err)
	}
}

// quoteLine is one NDJSON output record.
type quoteLine struct {
	I     int     `json:"i"`
	Type  string  `json:"type"`
	K     float64 `json:"K"`
	E     float64 `json:"E"`
	Price float64 `json:"price,omitempty"`
	Error string  `json:"error,omitempty"`
	Ms    float64 `json:"ms"`
}

func main() {
	var (
		in       = flag.String("in", "-", "contract list file (JSON array or CSV); '-' reads stdin")
		format   = flag.String("format", "auto", "input format: json, csv or auto (by extension, else json)")
		output   = flag.String("output", "ndjson", "output format: ndjson (streamed, completion order) or table (request order)")
		steps    = flag.Int("steps", 10_000, "default time steps T for contracts that do not set steps")
		workers  = flag.Int("workers", 0, "worker pool bound (0: one per core)")
		failFast = flag.Bool("q", false, "suppress the stderr summary line")
	)
	flag.Parse()

	if *output != "ndjson" && *output != "table" {
		fail(fmt.Errorf("unknown output format %q (want ndjson or table)", *output))
	}

	contracts, err := readContracts(*in, *format)
	if err != nil {
		fail(err)
	}
	if len(contracts) == 0 {
		fail(fmt.Errorf("no contracts in %s", *in))
	}

	// Translate rows to requests. A row that fails to parse (unknown model,
	// bad type, ...) becomes a per-item error, like a contract that fails to
	// price: it never aborts the rest of the batch.
	results := make([]amop.Result, len(contracts))
	var reqs []amop.Request
	var origIdx []int
	for i, c := range contracts {
		req, err := c.Request(*steps)
		if err != nil {
			results[i] = amop.Result{Err: err}
			continue
		}
		reqs = append(reqs, req)
		origIdx = append(origIdx, i)
	}

	enc := json.NewEncoder(out)
	var encErr error
	start := time.Now()
	last := start
	stream := func(i int, r amop.Result) {
		now := time.Now()
		line := quoteLine{
			I: i, Type: contracts[i].Type, K: contracts[i].K, E: contracts[i].E,
			Ms: float64(now.Sub(last).Microseconds()) / 1e3,
		}
		last = now
		if r.Err != nil {
			line.Error = r.Err.Error()
		} else {
			line.Price = r.Price
		}
		// Deliveries are serialized by the engine (and the parse-error rows
		// stream before the batch starts), so encErr needs no lock. The
		// first write error stops the stream and is reported at exit.
		if encErr == nil {
			encErr = enc.Encode(line)
		}
	}
	opts := amop.BatchOptions{Workers: *workers}
	if *output == "ndjson" {
		for i, r := range results {
			if r.Err != nil {
				stream(i, r)
			}
		}
		opts.OnResult = func(i int, r amop.Result) { stream(origIdx[i], r) }
	}
	// ^C cancels the batch instead of killing the process mid-write: solved
	// contracts have already streamed, the remainder report the cancellation
	// as their per-item error, and the summary still flushes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for i, r := range amop.PriceBatchCtx(ctx, reqs, opts) {
		results[origIdx[i]] = r
	}
	elapsed := time.Since(start)

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}

	if *output == "table" {
		fmt.Fprintf(out, "%4s  %-5s  %10s  %8s  %12s  %s\n", "#", "type", "K", "E", "price", "error")
		for i, r := range results {
			c := contracts[i]
			if r.Err != nil {
				fmt.Fprintf(out, "%4d  %-5s  %10.4f  %8.4f  %12s  %v\n", i, c.Type, c.K, c.E, "-", r.Err)
				continue
			}
			fmt.Fprintf(out, "%4d  %-5s  %10.4f  %8.4f  %12.6f\n", i, c.Type, c.K, c.E, r.Price)
		}
	}
	flushOut()
	if encErr != nil {
		fmt.Fprintln(os.Stderr, "amop-chain: writing output:", encErr)
		os.Exit(1)
	}
	if !*failFast {
		fmt.Fprintf(os.Stderr, "amop-chain: %d contracts in %v (%d failed)\n",
			len(results), elapsed.Round(time.Millisecond), failed)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func readContracts(path, format string) ([]cliutil.Contract, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if format == "auto" {
		switch {
		case strings.HasSuffix(path, ".csv"):
			format = "csv"
		default:
			format = "json"
		}
	}
	switch format {
	case "json":
		var cs []cliutil.Contract
		dec := json.NewDecoder(r)
		if err := dec.Decode(&cs); err != nil {
			return nil, fmt.Errorf("parsing JSON contract list: %w", err)
		}
		return cs, nil
	case "csv":
		return readCSV(r)
	default:
		return nil, fmt.Errorf("unknown input format %q", format)
	}
}

func readCSV(r io.Reader) ([]cliutil.Contract, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading CSV header: %w", err)
	}
	var cs []cliutil.Contract
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return cs, nil
		}
		if err != nil {
			return nil, err
		}
		var c cliutil.Contract
		for i, col := range header {
			if i >= len(rec) {
				break
			}
			val := strings.TrimSpace(rec[i])
			if val == "" {
				continue
			}
			if err := c.Set(strings.TrimSpace(col), val); err != nil {
				return nil, fmt.Errorf("csv line %d: %w", line, err)
			}
		}
		cs = append(cs, c)
	}
}

// fail flushes whatever output was already produced before exiting, so a
// consumer of partial output sees every completed line plus the error on
// stderr, never a silently truncated stream.
func fail(err error) {
	flushOut()
	fmt.Fprintln(os.Stderr, "amop-chain:", err)
	os.Exit(1)
}
