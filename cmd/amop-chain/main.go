// Command amop-chain prices a whole contract list — an option chain or an
// arbitrary portfolio — through the batch pricing engine, streaming results
// as they complete. It is the serve-traffic entry point: feed it the desk's
// contract file and it keeps every core busy with a bounded worker pool,
// reporting errors per contract instead of aborting the batch.
//
// Usage:
//
//	amop-chain -in contracts.json                 # JSON array of contracts
//	amop-chain -in contracts.csv                  # CSV with a header row
//	cat contracts.json | amop-chain -format json  # read stdin
//	amop-chain -in contracts.csv -output table    # aligned table, request order
//
// JSON input is an array of objects:
//
//	[{"type": "call", "S": 127.62, "K": 130, "R": 0.00163, "V": 0.2,
//	  "Y": 0.0163, "E": 1.0, "steps": 10000, "model": "auto",
//	  "algorithm": "fast", "european": false}]
//
// CSV input has a header naming any subset of the same fields:
//
//	type,S,K,R,V,Y,E,steps
//	call,127.62,130,0.00163,0.2,0.0163,1.0,10000
//
// steps, model and algorithm are optional everywhere; the -steps flag sets
// the default resolution. The default output is NDJSON, one line per
// contract in completion order, so downstream consumers see quotes the
// moment they are ready.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/nlstencil/amop"
)

// contract is one row of the input file.
type contract struct {
	Type      string  `json:"type"`
	S         float64 `json:"S"`
	K         float64 `json:"K"`
	R         float64 `json:"R"`
	V         float64 `json:"V"`
	Y         float64 `json:"Y"`
	E         float64 `json:"E"`
	Steps     int     `json:"steps"`
	Model     string  `json:"model"`
	Algorithm string  `json:"algorithm"`
	European  bool    `json:"european"`
}

// quoteLine is one NDJSON output record.
type quoteLine struct {
	I     int     `json:"i"`
	Type  string  `json:"type"`
	K     float64 `json:"K"`
	E     float64 `json:"E"`
	Price float64 `json:"price,omitempty"`
	Error string  `json:"error,omitempty"`
	Ms    float64 `json:"ms"`
}

func main() {
	var (
		in       = flag.String("in", "-", "contract list file (JSON array or CSV); '-' reads stdin")
		format   = flag.String("format", "auto", "input format: json, csv or auto (by extension, else json)")
		output   = flag.String("output", "ndjson", "output format: ndjson (streamed, completion order) or table (request order)")
		steps    = flag.Int("steps", 10_000, "default time steps T for contracts that do not set steps")
		workers  = flag.Int("workers", 0, "worker pool bound (0: one per core)")
		failFast = flag.Bool("q", false, "suppress the stderr summary line")
	)
	flag.Parse()

	if *output != "ndjson" && *output != "table" {
		fail(fmt.Errorf("unknown output format %q (want ndjson or table)", *output))
	}

	contracts, err := readContracts(*in, *format)
	if err != nil {
		fail(err)
	}
	if len(contracts) == 0 {
		fail(fmt.Errorf("no contracts in %s", *in))
	}

	// Translate rows to requests. A row that fails to parse (unknown model,
	// bad type, ...) becomes a per-item error, like a contract that fails to
	// price: it never aborts the rest of the batch.
	results := make([]amop.Result, len(contracts))
	var reqs []amop.Request
	var origIdx []int
	for i, c := range contracts {
		req, err := c.request(*steps)
		if err != nil {
			results[i] = amop.Result{Err: err}
			continue
		}
		reqs = append(reqs, req)
		origIdx = append(origIdx, i)
	}

	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	last := start
	stream := func(i int, r amop.Result) {
		now := time.Now()
		line := quoteLine{
			I: i, Type: contracts[i].Type, K: contracts[i].K, E: contracts[i].E,
			Ms: float64(now.Sub(last).Microseconds()) / 1e3,
		}
		last = now
		if r.Err != nil {
			line.Error = r.Err.Error()
		} else {
			line.Price = r.Price
		}
		enc.Encode(line)
	}
	opts := amop.BatchOptions{Workers: *workers}
	if *output == "ndjson" {
		for i, r := range results {
			if r.Err != nil {
				stream(i, r)
			}
		}
		opts.OnResult = func(i int, r amop.Result) { stream(origIdx[i], r) }
	}
	for i, r := range amop.PriceBatch(reqs, opts) {
		results[origIdx[i]] = r
	}
	elapsed := time.Since(start)

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}

	if *output == "table" {
		fmt.Printf("%4s  %-5s  %10s  %8s  %12s  %s\n", "#", "type", "K", "E", "price", "error")
		for i, r := range results {
			c := contracts[i]
			if r.Err != nil {
				fmt.Printf("%4d  %-5s  %10.4f  %8.4f  %12s  %v\n", i, c.Type, c.K, c.E, "-", r.Err)
				continue
			}
			fmt.Printf("%4d  %-5s  %10.4f  %8.4f  %12.6f\n", i, c.Type, c.K, c.E, r.Price)
		}
	}
	if !*failFast {
		fmt.Fprintf(os.Stderr, "amop-chain: %d contracts in %v (%d failed)\n",
			len(results), elapsed.Round(time.Millisecond), failed)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// request translates one input row into an engine request.
func (c contract) request(defaultSteps int) (amop.Request, error) {
	req := amop.Request{
		Option: amop.Option{S: c.S, K: c.K, R: c.R, V: c.V, Y: c.Y, E: c.E},
		Config: amop.Config{Steps: c.Steps, European: c.European},
	}
	switch strings.ToLower(c.Type) {
	case "call", "c", "":
		req.Option.Type = amop.Call
	case "put", "p":
		req.Option.Type = amop.Put
	default:
		return req, fmt.Errorf("unknown option type %q", c.Type)
	}
	if req.Config.Steps == 0 {
		req.Config.Steps = defaultSteps
	}
	switch strings.ToLower(c.Model) {
	case "", "auto":
		req.Model = amop.AutoModel
	case "bopm", "binomial":
		req.Model = amop.Binomial
	case "topm", "trinomial":
		req.Model = amop.Trinomial
	case "bsm", "blackscholesfd":
		req.Model = amop.BlackScholesFD
	default:
		return req, fmt.Errorf("unknown model %q", c.Model)
	}
	switch strings.ToLower(c.Algorithm) {
	case "", "fast":
		req.Config.Algorithm = amop.Fast
	case "naive":
		req.Config.Algorithm = amop.Naive
	case "naive-parallel":
		req.Config.Algorithm = amop.NaiveParallel
	case "tiled":
		req.Config.Algorithm = amop.Tiled
	case "recursive":
		req.Config.Algorithm = amop.Recursive
	default:
		return req, fmt.Errorf("unknown algorithm %q", c.Algorithm)
	}
	return req, nil
}

func readContracts(path, format string) ([]contract, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if format == "auto" {
		switch {
		case strings.HasSuffix(path, ".csv"):
			format = "csv"
		default:
			format = "json"
		}
	}
	switch format {
	case "json":
		var cs []contract
		dec := json.NewDecoder(r)
		if err := dec.Decode(&cs); err != nil {
			return nil, fmt.Errorf("parsing JSON contract list: %w", err)
		}
		return cs, nil
	case "csv":
		return readCSV(r)
	default:
		return nil, fmt.Errorf("unknown input format %q", format)
	}
}

func readCSV(r io.Reader) ([]contract, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading CSV header: %w", err)
	}
	var cs []contract
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return cs, nil
		}
		if err != nil {
			return nil, err
		}
		var c contract
		for i, col := range header {
			if i >= len(rec) {
				break
			}
			val := strings.TrimSpace(rec[i])
			if val == "" {
				continue
			}
			if err := c.set(strings.TrimSpace(col), val); err != nil {
				return nil, fmt.Errorf("csv line %d: %w", line, err)
			}
		}
		cs = append(cs, c)
	}
}

// set assigns one CSV cell by header name.
func (c *contract) set(col, val string) error {
	num := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("column %s: %w", col, err)
		}
		*dst = v
		return nil
	}
	switch col {
	case "type":
		c.Type = val
	case "S", "spot":
		return num(&c.S)
	case "K", "strike":
		return num(&c.K)
	case "R", "rate":
		return num(&c.R)
	case "V", "vol", "volatility":
		return num(&c.V)
	case "Y", "yield", "dividend":
		return num(&c.Y)
	case "E", "expiry":
		return num(&c.E)
	case "steps":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("column steps: %w", err)
		}
		c.Steps = v
	case "model":
		c.Model = val
	case "algorithm":
		c.Algorithm = val
	case "european":
		v, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("column european: %w", err)
		}
		c.European = v
	default:
		return fmt.Errorf("unknown column %q", col)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "amop-chain:", err)
	os.Exit(1)
}
