package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/obs"
)

// Every PerfCounters field must carry a prom tag and show up on /metrics:
// this is the reflection gate that keeps the exporter exhaustive when a
// counter is added.
func TestMetricsExportAllPerfCounters(t *testing.T) {
	ts := startTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)

	typ := reflect.TypeOf(amop.PerfCounters{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		name := f.Tag.Get("prom")
		if name == "" {
			t.Errorf("PerfCounters.%s has no prom tag — it would silently vanish from /metrics", f.Name)
			continue
		}
		if !strings.Contains(metrics, name+" ") {
			t.Errorf("/metrics missing %s (PerfCounters.%s)", name, f.Name)
		}
	}
}

// /metrics must also carry the telemetry layer's latency histograms, with
// per-symbol and per-tier labels, once quotes have flowed.
func TestMetricsLatencyHistograms(t *testing.T) {
	obs.Reset()
	ts := startTestServer(t)
	// Quote latency is sampled one serve in 512 (keyed off the global
	// cache-serve counter), so drive enough cached serves that the counter
	// must cross a sampling tick no matter where it started.
	for i := 0; i < 1030; i++ {
		getJSON(t, ts.URL+"/quote?id=0", http.StatusOK, nil)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	metrics := string(body)
	for _, want := range []string{
		`amop_quote_latency_seconds{symbol="AAA",quantile="0.5"}`,
		`amop_quote_latency_seconds_count{symbol="AAA"}`,
		`amop_solve_latency_seconds{tier="lattice",quantile="0.99"}`,
		`amop_staleness_age_seconds_count`,
		`amop_fft_evolve_seconds_count`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// /healthz stays pure liveness; /readyz reports the serving-health JSON the
// sharding router consumes.
func TestReadyz(t *testing.T) {
	ts := startTestServer(t)
	var h amop.ServerHealth
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &h)
	if !h.Ready || len(h.OpenBreakers) != 0 || h.QuarantinedContracts != 0 {
		t.Fatalf("healthy server not ready: %+v", h)
	}
	if len(h.Symbols) != 2 { // AAA (2 contracts) and BBB (1)
		t.Fatalf("readyz symbols = %+v", h.Symbols)
	}
	for _, sh := range h.Symbols {
		if sh.Breaker != "closed" {
			t.Fatalf("symbol %s breaker %q, want closed", sh.Symbol, sh.Breaker)
		}
	}
	if h.Symbols[0].Symbol != "AAA" || h.Symbols[0].Contracts != 2 {
		t.Fatalf("readyz per-symbol breakdown: %+v", h.Symbols)
	}
}

// A repricing flight must leave a trace at /debug/traces, events in the
// flight recorder, and — when it crosses the slow threshold — a per-stage
// breakdown at /debug/slow.
func TestDebugEndpointsCaptureFlight(t *testing.T) {
	obs.Reset()
	prev := obs.SetSlowThreshold(0) // every flight is "slow"
	defer obs.SetSlowThreshold(prev)

	ts := startTestServer(t)
	postJSON(t, ts.URL+"/tick", `{"symbol":"AAA","spot":131.0}`, http.StatusOK, nil)
	getJSON(t, ts.URL+"/quote?id=0", http.StatusOK, nil) // leads the repricing flight

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("%s Content-Type = %q", path, ct)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	slow := get("/debug/slow")
	if !strings.Contains(slow, `"kind":"flight"`) || !strings.Contains(slow, `"label":"AAA"`) {
		t.Fatalf("/debug/slow missing the flight trace: %q", slow)
	}
	for _, stage := range []string{"snapshot", "solve_lattice", "publish"} {
		if !strings.Contains(slow, `"stage":"`+stage+`"`) {
			t.Errorf("/debug/slow trace missing stage %q: %s", stage, slow)
		}
	}
	if traces := get("/debug/traces"); !strings.Contains(traces, `"kind":"flight"`) {
		t.Fatalf("/debug/traces empty after a flight: %q", traces)
	}
	events := get("/debug/events")
	for _, kind := range []string{`"kind":"tick"`, `"kind":"reprice"`, `"kind":"slow_solve"`} {
		if !strings.Contains(events, kind) {
			t.Errorf("/debug/events missing %s:\n%s", kind, events)
		}
	}
}

// The daemon's handler stack echoes request ids end to end.
func TestRequestIDEcho(t *testing.T) {
	path := filepath.Join(t.TempDir(), "book.json")
	if err := os.WriteFile(path, []byte(testBook), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, entries, err := loadBook(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := amop.NewServer(entries, amop.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var logged strings.Builder
	ts := httptest.NewServer(obs.AccessLog(newMux(s, rows), &logged))
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/quote?id=1", nil)
	req.Header.Set(obs.RequestIDHeader, "client-abc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "client-abc" {
		t.Fatalf("request id not echoed: %q", got)
	}
	if !strings.Contains(logged.String(), `"id":"client-abc"`) {
		t.Fatalf("access log missing the request id: %q", logged.String())
	}
}
