package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/cliutil"
)

// FuzzTickMerge drives POST /tick with arbitrary request bodies. The
// handler faces raw market-data feeds, so the bar is: never panic, always
// answer valid JSON with a deliberate status, and keep the partial-tick
// merge idempotent — replaying the exact tick that just succeeded must move
// nothing, because every bucketed input is already in its cell.
func FuzzTickMerge(f *testing.F) {
	entries := []amop.BookEntry{
		{Symbol: "AAA", Option: amop.Option{Type: amop.Call, S: 127.62, K: 130, R: 0.00163, V: 0.21, E: 1}, Model: amop.AutoModel, Config: amop.Config{Steps: 64}},
		{Symbol: "BBB", Option: amop.Option{Type: amop.Put, S: 54.10, K: 55, R: 0.00163, V: 0.33, E: 0.5}, Model: amop.AutoModel, Config: amop.Config{Steps: 64}},
	}
	// ColdStart: the fuzz target exercises the tick parse/merge path, not
	// the solver; skipping the initial surface solve keeps iterations fast.
	s, err := amop.NewServer(entries, amop.ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005, ColdStart: true,
	})
	if err != nil {
		f.Fatal(err)
	}
	rows := []cliutil.Contract{
		{Symbol: "AAA", Type: "call", K: 130, E: 1},
		{Symbol: "BBB", Type: "put", K: 55, E: 0.5},
	}
	mux := newMux(s, rows)

	f.Add([]byte(`{"symbol":"AAA","spot":128.1}`))
	f.Add([]byte(`{"symbol":"AAA","vol":0.25,"rate":0.002}`))
	f.Add([]byte(`{"symbol":"BBB","spot":54.4,"vol":0.3,"rate":0.001}`))
	f.Add([]byte(`{"symbol":"ZZZ","spot":1}`))
	f.Add([]byte(`{"spot":"not a number"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"symbol":"AAA","spot":-1e308,"vol":1e308,"rate":-0.5}`))

	post := func(body []byte) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/tick", bytes.NewReader(body)))
		return rec
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		rec := post(body)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Errorf("tick %q: unexpected status %d", body, rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Errorf("tick %q: invalid JSON response %q", body, rec.Body.Bytes())
		}
		if rec.Code != http.StatusOK {
			return
		}
		// Replay: the same tick against the market it just produced must
		// leave every contract in its quantization cell.
		replay := post(body)
		if replay.Code != http.StatusOK {
			t.Fatalf("replaying accepted tick %q failed with status %d", body, replay.Code)
		}
		var res struct {
			Moved int `json:"moved"`
		}
		if err := json.Unmarshal(replay.Body.Bytes(), &res); err != nil {
			t.Fatalf("replay response: %v", err)
		}
		if res.Moved != 0 {
			t.Errorf("replayed tick %q moved %d contracts; the merge is not idempotent", body, res.Moved)
		}
	})
}
