package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/nlstencil/amop"
)

const testBook = `[
  {"symbol": "AAA", "type": "call", "S": 127.62, "K": 130, "R": 0.00163,
   "V": 0.21, "Y": 0.0163, "E": 1.0, "steps": 256},
  {"symbol": "AAA", "type": "put", "S": 127.62, "K": 120, "R": 0.00163,
   "V": 0.21, "Y": 0.0163, "E": 1.0, "steps": 256},
  {"symbol": "BBB", "type": "call", "S": 54.10, "K": 55, "R": 0.00163,
   "V": 0.33, "E": 0.5, "steps": 256}
]`

func startTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "book.json")
	if err := os.WriteFile(path, []byte(testBook), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, entries, err := loadBook(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := amop.NewServer(entries, amop.ServerOptions{
		SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(s, rows))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url, body string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	ts := startTestServer(t)

	var health struct {
		OK        bool `json:"ok"`
		Contracts int  `json:"contracts"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if !health.OK || health.Contracts != 3 {
		t.Fatalf("healthz: %+v", health)
	}

	var q quoteBody
	getJSON(t, ts.URL+"/quote?id=0", http.StatusOK, &q)
	if q.Error != "" || q.Price <= 0 || q.Stale {
		t.Fatalf("initial quote: %+v", q)
	}
	first := q.Price

	// A within-bucket tick moves nothing; the quote is byte-identical.
	var tick struct {
		Moved   int `json:"moved"`
		Skipped int `json:"skipped"`
	}
	postJSON(t, ts.URL+"/tick", `{"symbol":"AAA","spot":127.70}`, http.StatusOK, &tick)
	if tick.Moved != 0 || tick.Skipped != 2 {
		t.Fatalf("within-bucket tick: %+v", tick)
	}
	getJSON(t, ts.URL+"/quote?id=0", http.StatusOK, &q)
	if q.Price != first {
		t.Fatalf("within-bucket tick changed the price: %v -> %v", first, q.Price)
	}

	// A cross-bucket tick dirties both AAA contracts; the next quote
	// re-solves at the new cell center. Omitted vol/rate keep their values.
	postJSON(t, ts.URL+"/tick", `{"symbol":"AAA","spot":131.0}`, http.StatusOK, &tick)
	if tick.Moved != 2 || tick.Skipped != 0 {
		t.Fatalf("cross-bucket tick: %+v", tick)
	}
	getJSON(t, ts.URL+"/quote?id=0", http.StatusOK, &q)
	if q.Spot != 131.125 || q.Price == first {
		t.Fatalf("post-tick quote not re-solved at the new cell: %+v", q)
	}
	if q.Vol != 0.215 { // vol 0.21 in the [0.21, 0.22) bucket, center 0.215
		t.Fatalf("omitted vol did not keep its bucket: %+v", q)
	}

	var quotes []quoteBody
	getJSON(t, ts.URL+"/quotes", http.StatusOK, &quotes)
	if len(quotes) != 3 {
		t.Fatalf("quotes: got %d rows", len(quotes))
	}
	for _, row := range quotes {
		if row.Error != "" || row.Price <= 0 {
			t.Fatalf("quotes row: %+v", row)
		}
	}

	// Error paths.
	getJSON(t, ts.URL+"/quote?id=zzz", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/quote?id=99", http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/tick", `{"symbol":"ZZZ","spot":1}`, http.StatusNotFound, nil)
	postJSON(t, ts.URL+"/tick", `not json`, http.StatusBadRequest, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"amop_serve_tick_reprices_total",
		"amop_serve_tick_skips_total",
		"amop_serve_coalesced_requests_total",
		"amop_serve_stale_serves_total",
		"amop_serve_cache_hits_total",
		"amop_spectrum_cache_hits_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestLoadBookErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, _, err := loadBook(write("empty.json", `[]`), 100); err == nil {
		t.Error("empty book should fail")
	}
	if _, _, err := loadBook(write("badtype.json", `[{"type":"swaption","S":1,"K":1,"V":0.2,"E":1}]`), 100); err == nil {
		t.Error("unknown type should fail")
	}
	if _, _, err := loadBook(write("badmodel.json", `[{"type":"call","S":1,"K":1,"V":0.2,"E":1,"model":"heston"}]`), 100); err == nil {
		t.Error("unknown model should fail")
	}
	if _, _, err := loadBook(filepath.Join(dir, "missing.json"), 100); err == nil {
		t.Error("missing file should fail")
	}
}
