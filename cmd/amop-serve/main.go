// Command amop-serve runs the live pricing server as an HTTP daemon: it
// registers a contract book at startup, ingests market-data ticks, and
// answers quotes from the continuously-maintained price surface — serving
// repeated and near-identical requests from cache, coalescing concurrent
// quotes for moved contracts into one repricing batch, and shedding load
// with 503 when the pending queue fills.
//
// Usage:
//
//	amop-serve -book book.json -addr :8321 \
//	    -spot-bucket 0.25 -vol-bucket 0.01 -rate-bucket 0.0005 \
//	    -max-staleness 250ms
//
// The book file is a JSON array of contracts in amop-chain's row format plus
// an optional per-row "symbol" (ticks address contracts by symbol; omitted
// symbols form one anonymous underlying):
//
//	[{"symbol": "AAA", "type": "call", "S": 127.62, "K": 130,
//	  "R": 0.00163, "V": 0.2, "Y": 0.0163, "E": 1.0, "steps": 10000}]
//
// Endpoints:
//
//	GET  /healthz           liveness + book size (process is up; nothing more)
//	GET  /readyz            readiness JSON: open breakers, quarantined
//	                        contracts, degraded symbols per symbol — 503 when
//	                        not ready, for load balancers and the sharding
//	                        router
//	POST /tick              {"symbol":"AAA","spot":128.1,"vol":0.22,"rate":0.002}
//	                        omitted fields keep their current value; the
//	                        response reports how many contracts the tick
//	                        moved vs skipped (quantization at work)
//	GET  /quote?id=3        one contract's quote: price, the exact market
//	                        point it was solved at, its age, staleness and
//	                        degradation flags
//	GET  /quotes            the whole surface
//	GET  /metrics           Prometheus text: every PerfCounters field (via
//	                        its prom struct tags) plus the telemetry layer's
//	                        latency histograms — quote latency per symbol,
//	                        solve latency per tier, coalescer and budget
//	                        waits, staleness age — as quantile summaries
//	GET  /debug/slow        slow-solve traces (NDJSON): per-stage timings of
//	                        every repricing flight over -slow-threshold
//	GET  /debug/traces      the bounded ring of recent flight traces (NDJSON)
//	GET  /debug/events      the flight recorder (NDJSON): ticks, reprices,
//	                        breaker transitions, quarantines, degraded
//	                        serves, tier fallbacks, slow solves
//
// With -debug-addr a second HTTP server exposes net/http/pprof (and the same
// /debug endpoints) on a separate listener, so profilers never share a port
// with quote traffic. -access-log writes one NDJSON line per request, with
// request ids minted (or propagated) and echoed as X-Amop-Request-Id.
// SIGQUIT dumps the flight recorder to stderr without stopping the daemon;
// shutdown dumps it alongside the full counter snapshot.
//
// Quotes for contracts whose market moved block on a coalesced re-solve
// unless the surface entry is younger than -max-staleness, in which case the
// stale price is served immediately with "stale": true. Quotes answered in
// degraded mode — the fresh solve failed its health gate, panicked (the
// contract is quarantined), or the symbol's circuit breaker is open — carry
// "degraded": true and the X-Amop-Degraded response header; shed requests
// (503) carry Retry-After. Each quote observes its request's context, so a
// client disconnect stops the wait (the shared repricing flight keeps
// running for other waiters).
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: it stops accepting
// connections, lets in-flight requests finish (http.Server.Shutdown), drains
// the in-flight repricing flight so its surface write-back completes, and
// logs a final counter snapshot.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux (the -debug-addr server)
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/cliutil"
	"github.com/nlstencil/amop/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":8321", "listen address")
		bookPath     = flag.String("book", "", "contract book file (JSON array; required)")
		steps        = flag.Int("steps", 10_000, "default time steps T for contracts that do not set steps")
		spotBucket   = flag.Float64("spot-bucket", 0.25, "spot quantization bucket width (0: exact)")
		volBucket    = flag.Float64("vol-bucket", 0.01, "volatility quantization bucket width (0: exact)")
		rateBucket   = flag.Float64("rate-bucket", 0.0005, "rate quantization bucket width (0: exact)")
		maxStaleness = flag.Duration("max-staleness", 0, "serve a moved contract's previous price if younger than this (0: always re-solve)")
		maxPending   = flag.Int("max-pending", 1024, "bound on quote requests queued behind one repricing batch (0: unbounded)")
		workers      = flag.Int("workers", 0, "repricing batch worker bound (0: one per core)")
		brkFails     = flag.Int("breaker-threshold", 0, "consecutive solve failures that open a symbol's circuit breaker (0: default 3)")
		brkBackoff   = flag.Duration("breaker-backoff", 0, "initial circuit-breaker backoff before a probe solve (0: default 100ms)")
		drainWait    = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound for in-flight requests and repricing")
		tierFlag     = flag.String("tier", "lattice", "pricing tier: lattice (always the stencil lattice), auto (analytic fast path when eligible, lattice fallback), analytic (forced; ineligible contracts error)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and the /debug telemetry endpoints on this separate address (empty: disabled)")
		slowThresh   = flag.Duration("slow-threshold", 0, "capture a repricing flight's per-stage trace at /debug/slow when it runs at least this long (0: default 100ms)")
		accessPath   = flag.String("access-log", "", "write an NDJSON access log to this file (\"-\": stderr; empty: request ids only, no log)")
	)
	flag.Parse()
	if *bookPath == "" {
		fail(fmt.Errorf("-book is required"))
	}
	tier, err := cliutil.ParseTier(*tierFlag)
	if err != nil {
		fail(err)
	}
	rows, entries, err := loadBook(*bookPath, *steps)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	s, err := amop.NewServer(entries, amop.ServerOptions{
		SpotBucket: *spotBucket, VolBucket: *volBucket, RateBucket: *rateBucket,
		MaxStaleness: *maxStaleness, MaxPending: *maxPending, Workers: *workers,
		BreakerThreshold: *brkFails, BreakerBackoff: *brkBackoff,
		Tier: tier,
	})
	if err != nil {
		fail(err)
	}
	log.Printf("amop-serve: priced %d contracts in %v; listening on %s",
		s.Contracts(), time.Since(start).Round(time.Millisecond), *addr)
	if *slowThresh > 0 {
		obs.SetSlowThreshold(*slowThresh)
	}
	obs.RecordEvent(obs.EvServerStart, "", int64(s.Contracts()), *addr)

	var accessOut io.Writer
	switch *accessPath {
	case "":
	case "-":
		accessOut = os.Stderr
	default:
		f, err := os.OpenFile(*accessPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(fmt.Errorf("opening access log: %w", err))
		}
		defer f.Close()
		accessOut = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: obs.AccessLog(newMux(s, rows), accessOut)}
	errc := make(chan error, 1)
	//amop:allow-go HTTP accept loop: one goroutine for the daemon's lifetime, joined through errc on ListenAndServe's return
	go func() { errc <- srv.ListenAndServe() }()

	if *debugAddr != "" {
		// The pprof import registered its handlers on DefaultServeMux; the
		// quote mux above is its own ServeMux, so profiling stays off the
		// serving port. The telemetry endpoints ride along for tooling that
		// only reaches the debug listener.
		http.Handle("/debug/slow", obs.SlowHandler())
		http.Handle("/debug/traces", obs.TracesHandler())
		http.Handle("/debug/events", obs.EventsHandler())
		dbg := &http.Server{Addr: *debugAddr}
		//amop:allow-go pprof listener: one goroutine for the daemon's lifetime; errors are logged, not joined — losing pprof must not kill serving
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("amop-serve: debug listener: %v", err)
			}
		}()
		defer dbg.Close()
		log.Printf("amop-serve: pprof and /debug telemetry on %s", *debugAddr)
	}

	// SIGQUIT dumps the flight recorder without stopping the daemon — the
	// classic "what just happened" signal. Installing the handler replaces
	// the Go runtime's stack-dump-and-die default for SIGQUIT.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	//amop:allow-go signal pump: one goroutine for the daemon's lifetime, exits with the process
	go func() {
		for range quit {
			log.Printf("amop-serve: SIGQUIT: dumping flight recorder")
			obs.WriteEventsNDJSON(os.Stderr)
		}
	}()

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills the drain
	log.Printf("amop-serve: shutdown signal received; draining (bound %v)", *drainWait)
	sctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Order matters: Shutdown stops admitting requests and waits the
	// in-flight ones out, then Drain waits for the repricing flight those
	// requests may have led so its surface write-back completes cleanly.
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("amop-serve: shutdown: %v", err)
	}
	if err := s.Drain(sctx); err != nil {
		log.Printf("amop-serve: flight drain: %v", err)
	}
	obs.RecordEvent(obs.EvServerStop, "", 0, "")
	// The final snapshot is the same tagged PerfCounters struct /metrics
	// serves — JSON here, Prometheus text there, one field set by
	// construction (TestMetricsExportAllPerfCounters pins the tags).
	c := amop.ReadPerfCounters()
	if blob, err := json.Marshal(c); err == nil {
		log.Printf("amop-serve: final counters: %s", blob)
	}
	log.Printf("amop-serve: flight recorder at shutdown:")
	obs.WriteEventsNDJSON(os.Stderr)
}

// loadBook reads the -book file: a JSON array of contracts in the shared
// CLI row format (internal/cliutil), with the optional per-row "symbol"
// naming the underlying each contract serves under.
func loadBook(path string, defaultSteps int) ([]cliutil.Contract, []amop.BookEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var rows []cliutil.Contract
	if err := json.NewDecoder(f).Decode(&rows); err != nil {
		return nil, nil, fmt.Errorf("parsing book %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("no contracts in %s", path)
	}
	entries := make([]amop.BookEntry, len(rows))
	for i, row := range rows {
		req, err := row.Request(defaultSteps)
		if err != nil {
			return nil, nil, fmt.Errorf("book contract %d: %w", i, err)
		}
		entries[i] = amop.BookEntry{
			Symbol: row.Symbol, Option: req.Option, Model: req.Model, Config: req.Config,
		}
	}
	return rows, entries, nil
}

// tickBody is the POST /tick request; pointer fields distinguish "omitted —
// keep the current value" from an explicit zero.
type tickBody struct {
	Symbol string   `json:"symbol"`
	Spot   *float64 `json:"spot"`
	Vol    *float64 `json:"vol"`
	Rate   *float64 `json:"rate"`
}

// quoteBody is one GET /quote(s) response row.
type quoteBody struct {
	ID     int     `json:"id"`
	Symbol string  `json:"symbol"`
	Type   string  `json:"type"`
	K      float64 `json:"K"`
	E      float64 `json:"E"`
	Price  float64 `json:"price"`
	// Spot/Vol/Rate are the representative market point the price was
	// solved at (the quantization cell center, not the raw tick).
	Spot  float64 `json:"spot"`
	Vol   float64 `json:"vol"`
	Rate  float64 `json:"rate"`
	AgeMs float64 `json:"age_ms"`
	Stale bool    `json:"stale"`
	// Degraded marks a quote served from the contract's pinned last-good
	// price because the fresh solve failed or its symbol's circuit breaker
	// is open.
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
}

// newMux builds the daemon's HTTP surface over a running server. It is
// split from main so tests can drive it through net/http/httptest.
func newMux(s *amop.Server, rows []cliutil.Contract) *http.ServeMux {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(v)
	}
	httpErr := func(w http.ResponseWriter, status int, err error) {
		writeJSON(w, status, map[string]string{"error": err.Error()})
	}

	// /healthz is pure liveness — the process is up and holds a book. The
	// serving-health detail lives on /readyz so orchestrators can probe the
	// two separately: restart on a dead /healthz, shed traffic on a 503
	// /readyz.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "contracts": s.Contracts()})
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		status := http.StatusOK
		if !h.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	})

	mux.Handle("/debug/slow", obs.SlowHandler())
	mux.Handle("/debug/traces", obs.TracesHandler())
	mux.Handle("/debug/events", obs.EventsHandler())

	mux.HandleFunc("/tick", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST /tick"))
			return
		}
		var body tickBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("parsing tick: %w", err))
			return
		}
		// The omitted-fields merge happens inside TickPartial, under the
		// server's lock: concurrent partial ticks for one symbol compose
		// instead of overwriting each other with stale reads.
		res, err := s.TickPartial(body.Symbol, body.Spot, body.Vol, body.Rate)
		if err != nil {
			httpErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"symbol": body.Symbol, "market": res.Market,
			"moved": res.Moved, "skipped": res.Skipped,
		})
	})

	quoteOf := func(ctx context.Context, id int) (quoteBody, error) {
		row := rows[id]
		out := quoteBody{ID: id, Symbol: row.Symbol, Type: row.Type, K: row.K, E: row.E}
		q, err := s.QuoteCtx(ctx, id)
		if err != nil {
			out.Error = err.Error()
			return out, err
		}
		out.Price = q.Price
		out.Spot, out.Vol, out.Rate = q.Market.Spot, q.Market.Vol, q.Market.Rate
		out.AgeMs = float64(time.Since(q.At).Microseconds()) / 1e3
		out.Stale = q.Stale
		out.Degraded = q.Degraded
		return out, nil
	}

	mux.HandleFunc("/quote", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("quote needs an integer ?id: %w", err))
			return
		}
		if id < 0 || id >= s.Contracts() {
			httpErr(w, http.StatusNotFound, fmt.Errorf("quote id %d out of range [0, %d)", id, s.Contracts()))
			return
		}
		q, qErr := quoteOf(r.Context(), id)
		status := http.StatusOK
		switch {
		case errors.Is(qErr, amop.ErrServerBusy),
			errors.Is(qErr, context.Canceled),
			errors.Is(qErr, context.DeadlineExceeded):
			// Shed or abandoned: the surface is fine, the caller should just
			// come back — tell it when.
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		case qErr != nil:
			status = http.StatusInternalServerError
		}
		if q.Degraded {
			w.Header().Set("X-Amop-Degraded", "true")
		}
		writeJSON(w, status, q)
	})

	mux.HandleFunc("/quotes", func(w http.ResponseWriter, r *http.Request) {
		out := make([]quoteBody, s.Contracts())
		for id := range out {
			out[id], _ = quoteOf(r.Context(), id) // per-row errors are reported in the row
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		// Every PerfCounters field, by reflection over the prom tags, then
		// the telemetry layer's latency histograms (quote latency per
		// symbol, solve latency per tier, waits, staleness) as quantile
		// summaries.
		amop.ReadPerfCounters().WriteProm(w)
		obs.WriteProm(w)
	})

	return mux
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "amop-serve:", err)
	os.Exit(1)
}
