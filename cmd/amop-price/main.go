// Command amop-price prices a single option from the command line.
//
// Usage:
//
//	amop-price -type call -S 127.62 -K 130 -R 0.00163 -V 0.2 -Y 0.0163 -E 1 -steps 10000
//	amop-price -type put -model bsm -steps 50000 -greeks
//	amop-price -type call -european -algorithm naive
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nlstencil/amop"
)

func main() {
	var (
		typ      = flag.String("type", "call", "option type: call or put")
		s        = flag.Float64("S", 127.62, "spot price")
		k        = flag.Float64("K", 130, "strike price")
		r        = flag.Float64("R", 0.00163, "risk-free rate (annualized)")
		v        = flag.Float64("V", 0.2, "volatility (annualized)")
		y        = flag.Float64("Y", 0.0163, "dividend yield (annualized)")
		e        = flag.Float64("E", 1.0, "time to expiry in years")
		steps    = flag.Int("steps", 10000, "time steps T")
		model    = flag.String("model", "", "bopm, topm or bsm (default: bopm for calls, bsm for American puts)")
		algo     = flag.String("algorithm", "fast", "fast, naive, naive-parallel, tiled or recursive")
		european = flag.Bool("european", false, "price the European style instead of American")
		greeks   = flag.Bool("greeks", false, "also print Greeks (American, fast pricer)")
		bermudan = flag.Int("bermudan", 0, "if > 0, price Bermudan with this exercise interval (binomial lattice)")
	)
	flag.Parse()

	opt := amop.Option{S: *s, K: *k, R: *r, V: *v, Y: *y, E: *e}
	switch *typ {
	case "call":
		opt.Type = amop.Call
	case "put":
		opt.Type = amop.Put
	default:
		fail(fmt.Errorf("unknown option type %q", *typ))
	}

	mdl := amop.Binomial
	switch *model {
	case "bopm":
	case "topm":
		mdl = amop.Trinomial
	case "bsm":
		mdl = amop.BlackScholesFD
	case "":
		if opt.Type == amop.Put && !*european {
			mdl = amop.BlackScholesFD
		}
	default:
		fail(fmt.Errorf("unknown model %q", *model))
	}

	alg := map[string]amop.Algorithm{
		"fast": amop.Fast, "naive": amop.Naive, "naive-parallel": amop.NaiveParallel,
		"tiled": amop.Tiled, "recursive": amop.Recursive,
	}[*algo]

	if *bermudan > 0 {
		price, err := amop.PriceBermudan(opt, *steps, *bermudan)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Bermudan %s (every %d steps of %d): %.6f\n", opt.Type, *bermudan, *steps, price)
		return
	}

	price, err := amop.Price(opt, mdl, amop.Config{Steps: *steps, Algorithm: alg, European: *european})
	if err != nil {
		fail(err)
	}
	style := "American"
	if *european {
		style = "European"
	}
	fmt.Printf("%s %s under %s (%s, T=%d): %.6f\n", style, opt.Type, mdl, alg, *steps, price)

	if bs, err := amop.BlackScholes(opt); err == nil {
		fmt.Printf("Black-Scholes closed form (European reference): %.6f\n", bs)
	}

	if *greeks {
		g, err := amop.GreeksAmerican(opt, *steps)
		if err != nil {
			fail(err)
		}
		fmt.Printf("delta %.4f  gamma %.6f  theta %.4f  vega %.4f  rho %.4f\n",
			g.Delta, g.Gamma, g.Theta, g.Vega, g.Rho)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "amop-price:", err)
	os.Exit(1)
}
