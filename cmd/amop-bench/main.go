// Command amop-bench regenerates the paper's tables and figures as text
// tables and CSV files.
//
// Usage:
//
//	amop-bench -experiment all                    # everything, default caps
//	amop-bench -experiment fig5a -maxT 524288     # one figure, bigger sweep
//	amop-bench -experiment fig7 -maxTraceT 16384  # deeper cache simulation
//	amop-bench -list
//
// Experiment IDs map one-to-one onto the paper: fig5a/fig5b/fig5c (running
// time), fig6 (energy), fig7 (cache misses), fig10 (energy by domain),
// table5 (scaling with p), table2 (work exponents), accuracy, ablation —
// plus batch, the chain-repricing workload of the batch engine; fastpath,
// the A/B of the real-input cached FFT stack against the legacy complex one
// (wall time, spectrum-cache hit rate, transform traffic); radix4, the
// A/B of the mixed radix-4/radix-2 FFT kernel against plain radix-2 plus the
// chain-level repricing-memo amortization (Greeks + implied vols); and
// sweep-scenarios, the scenario-sweep engine against the naive per-scenario
// PriceBatch fan-out on a 45-contract x 25-scenario risk grid.
//
// Every run also writes a machine-readable BENCH_<experiment>.json record
// (override the path with -json, disable with -json -), so the repository's
// performance trajectory is tracked commit over commit.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/nlstencil/amop/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID or 'all'")
		maxT       = flag.Int("maxT", 1<<17, "largest T for fast-algorithm sweeps")
		maxQuadT   = flag.Int("maxQuadT", 1<<15, "largest T for quadratic baselines (wall clock)")
		maxTraceT  = flag.Int("maxTraceT", 1<<13, "largest T for traced (simulated) runs")
		outDir     = flag.String("out", "", "directory for CSV output (empty: stdout only)")
		jsonOut    = flag.String("json", "", "path for a machine-readable run record (empty: BENCH_<experiment>.json; '-' disables)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	jsonPath := *jsonOut
	switch jsonPath {
	case "":
		jsonPath = fmt.Sprintf("BENCH_%s.json", *experiment)
	case "-":
		jsonPath = ""
	}
	cfg := harness.Config{
		MaxT:      *maxT,
		MaxQuadT:  *maxQuadT,
		MaxTraceT: *maxTraceT,
		OutDir:    *outDir,
		JSONPath:  jsonPath,
	}
	if err := harness.RunByID(*experiment, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "amop-bench:", err)
		os.Exit(1)
	}
}
