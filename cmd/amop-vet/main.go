// Command amop-vet is the project's static-analysis gate: a multichecker
// over the custom analyzers in internal/analyzers that mechanically
// enforce the codebase's concurrency and resource invariants —
//
//	budgetpair     par.TryAcquire tokens always reach par.Release
//	scratchpair    scratch buffers reach scratch.Put* or escape ownership
//	atomiccounter  process-wide perf counters only touched via sync/atomic
//	nakedgo        no raw go statements outside the par spawn budget
//	lockedsolve    no lattice solves or blocking serving calls under a mutex
//
// Usage:
//
//	amop-vet [packages]              # standalone; defaults to ./...
//	go vet -vettool=$(command -v amop-vet) ./...
//
// `make vet` runs the standalone form over ./...; CI fails on any finding.
// Findings are suppressed — one reviewed case at a time — with an inline
// directive on the flagged line or the line above:
//
//	//amop:ignore <analyzer> -- <reason>
//	//amop:allow-go <reason>         (nakedgo's spelling, at go statements)
package main

import (
	"github.com/nlstencil/amop/internal/analyzers/atomiccounter"
	"github.com/nlstencil/amop/internal/analyzers/budgetpair"
	"github.com/nlstencil/amop/internal/analyzers/framework"
	"github.com/nlstencil/amop/internal/analyzers/lockedsolve"
	"github.com/nlstencil/amop/internal/analyzers/nakedgo"
	"github.com/nlstencil/amop/internal/analyzers/scratchpair"
)

func main() {
	framework.Main(
		budgetpair.Analyzer,
		scratchpair.Analyzer,
		atomiccounter.Analyzer,
		nakedgo.Analyzer,
		lockedsolve.Analyzer,
	)
}
