// Command amop-xval cross-validates the pricing tiers against each other on
// randomized parameters: the fast FFT-based pricers against the direct
// Theta(T^2) sweeps (per lattice model), and the analytic spectral-collocation
// tier against the Richardson-extrapolated lattice (puts and calls, inside
// the analytic validity envelope). It is the standalone soak test behind the
// CI xval job.
//
// Every new per-model worst disagreement is streamed as one NDJSON line (to
// stdout, and to -report when set) as it is found, so a failing run leaves a
// machine-readable trail of offenders even if it is cut short. Each model has
// a failure budget (-budget, default 0): the run exits non-zero the moment
// any model exhausts its budget, rather than soaking on after the verdict is
// already in.
//
// Usage:
//
//	amop-xval -trials 200 -maxT 2000 -seed 7 -tol 1e-9 \
//	          -analytic-trials 40 -analytic-tol 1e-6 \
//	          -budget 0 -report xval-report.ndjson
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"github.com/nlstencil/amop"
	"github.com/nlstencil/amop/internal/analytic"
	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/topm"
)

// line is one NDJSON report record: a new per-model worst disagreement.
type line struct {
	Model string `json:"model"`
	// Kind is "call" or "put" for the analytic pairs; empty for the
	// fast-vs-naive lattice pairs (those always price calls).
	Kind string  `json:"kind,omitempty"`
	T    int     `json:"T,omitempty"`
	Rel  float64 `json:"rel"`
	// Allowed is the acceptance threshold this pair was judged against: the
	// flat tolerance for lattice pairs, tolerance plus residual lattice
	// drift for analytic pairs.
	Allowed float64       `json:"allowed"`
	Fail    bool          `json:"fail"`
	A       float64       `json:"a"` // fast / analytic leg
	B       float64       `json:"b"` // naive / extrapolated-lattice leg
	Params  option.Params `json:"params"`
}

// tracker accumulates per-model state: the worst disagreement seen and the
// failure count against the budget.
type tracker struct {
	out      io.Writer
	budget   int
	worst    map[string]line
	failures map[string]int
}

// record notes one cross-validation pair. A new per-model worst is streamed
// immediately as NDJSON. It returns false once the model's failure budget is
// exhausted — the caller must stop and exit non-zero.
func (t *tracker) record(l line) bool {
	l.Fail = l.Rel > l.Allowed
	if l.Rel > t.worst[l.Model].Rel {
		t.worst[l.Model] = l
		enc := json.NewEncoder(t.out)
		if err := enc.Encode(l); err != nil {
			fmt.Fprintln(os.Stderr, "amop-xval: writing report:", err)
		}
	}
	if l.Fail {
		t.failures[l.Model]++
		if t.failures[l.Model] > t.budget {
			fmt.Fprintf(os.Stderr, "amop-xval: model %s exhausted its failure budget (%d > %d): rel %.3e > allowed %.3e at T=%d params=%+v\n",
				l.Model, t.failures[l.Model], t.budget, l.Rel, l.Allowed, l.T, l.Params)
			return false
		}
	}
	return true
}

func relErr(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func main() {
	var (
		trials   = flag.Int("trials", 100, "random parameter sets per lattice model")
		maxT     = flag.Int("maxT", 1500, "largest random step count for the lattice pairs")
		seed     = flag.Int64("seed", 1, "PRNG seed")
		tol      = flag.Float64("tol", 1e-9, "failure threshold on fast-vs-naive relative error")
		aTrials  = flag.Int("analytic-trials", 25, "random in-envelope contracts for the analytic-vs-lattice gate (0 disables)")
		aTol     = flag.Float64("analytic-tol", 1e-6, "failure threshold on analytic-vs-lattice relative disagreement (plus residual lattice drift)")
		budget   = flag.Int("budget", 0, "per-model failure budget; the run exits non-zero as soon as any model exceeds it")
		report   = flag.String("report", "", "also append NDJSON disagreement lines to this file (for CI artifacts)")
		exitFail = func() { os.Exit(1) }
	)
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amop-xval:", err)
			exitFail()
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}
	trk := &tracker{out: out, budget: *budget, worst: map[string]line{}, failures: map[string]int{}}

	rng := rand.New(rand.NewSource(*seed))
	randParams := func() option.Params {
		return option.Params{
			S: 50 + 150*rng.Float64(),
			K: 50 + 150*rng.Float64(),
			R: 0.001 + 0.1*rng.Float64(),
			V: 0.08 + 0.5*rng.Float64(),
			Y: 0.12 * rng.Float64(),
			E: 0.1 + 2.4*rng.Float64(),
		}
	}
	randT := func() int { return 16 + rng.Intn(*maxT-15) }

	for i := 0; i < *trials; i++ {
		prm, T := randParams(), randT()
		if m, err := bopm.New(prm, T); err == nil {
			if fast, err := m.PriceFast(); err == nil {
				naive := m.PriceNaive(option.Call)
				if !trk.record(line{Model: "bopm", T: T, Rel: relErr(fast, naive), Allowed: *tol, A: fast, B: naive, Params: prm}) {
					exitFail()
				}
			}
		}
		prm, T = randParams(), randT()
		if m, err := topm.New(prm, T); err == nil {
			if fast, err := m.PriceFast(); err == nil {
				naive := m.PriceNaive(option.Call)
				if !trk.record(line{Model: "topm", T: T, Rel: relErr(fast, naive), Allowed: *tol, A: fast, B: naive, Params: prm}) {
					exitFail()
				}
			}
		}
		prm, T = randParams(), randT()
		if m, err := bsm.New(prm, T, 0); err == nil {
			if fast, err := m.PriceFast(); err == nil {
				naive := m.PriceNaive()
				if !trk.record(line{Model: "bsm", T: T, Rel: relErr(fast, naive), Allowed: *tol, A: fast, B: naive, Params: prm}) {
					exitFail()
				}
			}
		}
	}

	// The analytic gate: in-envelope vanilla Americans, both kinds, against
	// the Richardson-extrapolated lattice. The lattice's own residual
	// uncertainty (drift) is folded into each pair's acceptance threshold —
	// the obstacle projection makes lattice convergence non-monotone, so a
	// flat tolerance would charge the analytic tier for lattice noise.
	for i := 0; i < *aTrials; i++ {
		prm := randParams()
		kind := option.Kind(i % 2)
		if analytic.Eligible(prm, kind) != nil {
			i-- // redraw: the gate only judges in-envelope contracts
			continue
		}
		o := amop.Option{Type: amop.OptionType(kind), S: prm.S, K: prm.K, R: prm.R, V: prm.V, Y: prm.Y, E: prm.E}
		l, err := analyticPair(o, *aTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amop-xval: analytic pair %+v: %v\n", prm, err)
			exitFail()
		}
		l.Kind = kind.String()
		l.Params = prm
		if !trk.record(l) {
			exitFail()
		}
	}

	models := []string{"bopm", "topm", "bsm"}
	if *aTrials > 0 {
		models = append(models, "analytic")
	}
	failed := false
	for _, model := range models {
		w := trk.worst[model]
		status := "ok"
		if trk.failures[model] > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-8s worst relative error %.3e (allowed %.3e)  [%s]\n", model, w.Rel, w.Allowed, status)
		if status == "FAIL" {
			fmt.Printf("         at T=%d params=%+v a=%.10g b=%.10g\n", w.T, w.Params, w.A, w.B)
		}
	}
	if failed {
		exitFail()
	}
}

// analyticPair prices one contract through amop.XvalCheck at doubling step
// counts and Richardson-extrapolates the lattice legs, rich(n) = 2 L(2n) -
// L(n), until the last two extrapolant increments both fall inside half the
// tolerance (a single small increment can be a coincidence of the obstacle
// projection's oscillation, not convergence). The returned line carries the
// analytic value, the extrapolated reference, and an acceptance threshold of
// tol (scaled) plus the residual drift.
func analyticPair(o amop.Option, tol float64) (line, error) {
	lat := make(map[int]float64)
	var analyticV float64
	leg := func(n int) (float64, error) {
		if v, ok := lat[n]; ok {
			return v, nil
		}
		pair, err := amop.XvalCheck(o, n)
		if err != nil {
			return 0, err
		}
		lat[n] = pair.Lattice
		analyticV = pair.Analytic
		return pair.Lattice, nil
	}
	rich := func(n int) (float64, error) {
		a, err := leg(n)
		if err != nil {
			return 0, err
		}
		b, err := leg(2 * n)
		if err != nil {
			return 0, err
		}
		return 2*b - a, nil
	}

	base, err := leg(500)
	if err != nil {
		return line{}, err
	}
	scale := 1 + math.Abs(base)
	r0, err := rich(1000)
	if err != nil {
		return line{}, err
	}
	r1, err := rich(2000)
	if err != nil {
		return line{}, err
	}
	var ref, drift float64
	for n := 4000; ; n *= 2 {
		ref, err = rich(n)
		if err != nil {
			return line{}, err
		}
		drift = math.Max(math.Abs(ref-r1), math.Abs(r1-r0))
		if drift <= 0.5*tol*scale || n >= 16000 {
			break
		}
		r0, r1 = r1, ref
	}
	d := math.Abs(analyticV - ref)
	relScale := 1 + math.Max(math.Abs(analyticV), math.Abs(ref))
	return line{
		Model:   "analytic",
		Rel:     d / relScale,
		Allowed: tol + drift/relScale,
		A:       analyticV,
		B:       ref,
	}, nil
}
