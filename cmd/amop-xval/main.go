// Command amop-xval cross-validates the fast FFT-based pricers against the
// direct Theta(T^2) sweeps on randomized parameters, reporting the worst
// relative disagreement per model. Exit status is non-zero if any pair
// disagrees beyond the tolerance — useful as a standalone soak test.
//
// Usage:
//
//	amop-xval -trials 200 -maxT 2000 -seed 7 -tol 1e-9
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/topm"
)

func main() {
	var (
		trials = flag.Int("trials", 100, "random parameter sets per model")
		maxT   = flag.Int("maxT", 1500, "largest random step count")
		seed   = flag.Int64("seed", 1, "PRNG seed")
		tol    = flag.Float64("tol", 1e-9, "failure threshold on relative error")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	randParams := func() option.Params {
		return option.Params{
			S: 50 + 150*rng.Float64(),
			K: 50 + 150*rng.Float64(),
			R: 0.001 + 0.1*rng.Float64(),
			V: 0.08 + 0.5*rng.Float64(),
			Y: 0.12 * rng.Float64(),
			E: 0.1 + 2.4*rng.Float64(),
		}
	}
	randT := func() int { return 16 + rng.Intn(*maxT-15) }

	worst := map[string]float64{}
	note := map[string]string{}
	record := func(model string, prm option.Params, T int, fast, naive float64) {
		rel := math.Abs(fast-naive) / (1 + math.Max(math.Abs(fast), math.Abs(naive)))
		if rel > worst[model] {
			worst[model] = rel
			note[model] = fmt.Sprintf("T=%d params=%+v fast=%.10g naive=%.10g", T, prm, fast, naive)
		}
	}

	for i := 0; i < *trials; i++ {
		prm, T := randParams(), randT()
		if m, err := bopm.New(prm, T); err == nil {
			if fast, err := m.PriceFast(); err == nil {
				record("bopm", prm, T, fast, m.PriceNaive(option.Call))
			}
		}
		prm, T = randParams(), randT()
		if m, err := topm.New(prm, T); err == nil {
			if fast, err := m.PriceFast(); err == nil {
				record("topm", prm, T, fast, m.PriceNaive(option.Call))
			}
		}
		prm, T = randParams(), randT()
		if m, err := bsm.New(prm, T, 0); err == nil {
			if fast, err := m.PriceFast(); err == nil {
				record("bsm", prm, T, fast, m.PriceNaive())
			}
		}
	}

	failed := false
	for _, model := range []string{"bopm", "topm", "bsm"} {
		status := "ok"
		if worst[model] > *tol {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-5s worst relative error %.3e  [%s]\n", model, worst[model], status)
		if status == "FAIL" {
			fmt.Printf("      at %s\n", note[model])
		}
	}
	if failed {
		os.Exit(1)
	}
}
