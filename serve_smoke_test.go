package amop

import (
	"os"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestServeLoadSmoke is the CI bench-smoke gate for the serving path: start
// a live server over the 45-contract book, drive it with ticks and quotes,
// and assert the three serving mechanisms actually engage — a within-bucket
// tick skips the whole book, concurrent quotes for a moved book coalesce
// into one repricing flight, and the p50 served-from-cache quote is cheaper
// than pricing a contract cold. Opt-in via AMOP_BENCH_SMOKE=1 — wall-clock
// assertions do not belong in the default tier-1 run.
func TestServeLoadSmoke(t *testing.T) {
	if os.Getenv("AMOP_BENCH_SMOKE") == "" {
		t.Skip("set AMOP_BENCH_SMOKE=1 to run the serve-path smoke gate")
	}
	steps := 1000
	reqs := sweepBook(steps)
	entries := make([]BookEntry, len(reqs))
	for i, r := range reqs {
		entries[i] = BookEntry{Option: r.Option, Model: r.Model, Config: r.Config}
	}
	before := ReadPerfCounters()
	s, err := NewServer(entries, ServerOptions{SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005})
	if err != nil {
		t.Fatal(err)
	}

	// Incremental path: a within-bucket wander re-solves nothing.
	res, err := s.Tick("", Market{Spot: 127.70, Vol: 0.2, Rate: 0.00163})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved != 0 || res.Skipped != len(entries) {
		t.Fatalf("within-bucket tick: moved %d skipped %d, want 0/%d", res.Moved, res.Skipped, len(entries))
	}

	// Served-from-cache latency: p50 of quotes on the clean surface must
	// beat pricing one contract cold (median of several solves).
	lat := make([]time.Duration, 0, 101)
	for i := 0; i < cap(lat); i++ {
		start := time.Now()
		if _, err := s.Quote(i % s.Contracts()); err != nil {
			t.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := lat[len(lat)/2]
	cold := make([]time.Duration, 0, 5)
	for i := 0; i < cap(cold); i++ {
		start := time.Now()
		if r := PriceBatch(reqs[:1], BatchOptions{}); r[0].Err != nil {
			t.Fatal(r[0].Err)
		}
		cold = append(cold, time.Since(start))
	}
	sort.Slice(cold, func(i, j int) bool { return cold[i] < cold[j] })
	coldP50 := cold[len(cold)/2]
	t.Logf("p50 cache serve %v vs cold pricing %v at T=%d", p50, coldP50, steps)
	if p50 >= coldP50 {
		t.Errorf("cache-served quote p50 (%v) not faster than cold pricing (%v)", p50, coldP50)
	}

	// Coalescing: park the repricing flight in the barrier so a concurrent
	// quote demonstrably joins it instead of solving on its own.
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.flightBarrier = func() {
		once.Do(func() { close(inFlight) })
		<-release // closed after the joiner queues; later flights pass through
	}
	if _, err := s.Tick("", Market{Spot: 131.00, Vol: 0.2, Rate: 0.00163}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	quote := func() {
		defer wg.Done()
		if _, err := s.Quote(0); err != nil {
			t.Errorf("quote: %v", err)
		}
	}
	wg.Add(2)
	go quote() // leader: solves, then parks in the barrier
	<-inFlight
	go quote() // joiner: finds the flight pending and waits on it
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	after := ReadPerfCounters()
	for _, c := range []struct {
		name           string
		before, after  int64
		wantAtLeastOne bool
	}{
		{"TickSkips", before.TickSkips, after.TickSkips, true},
		{"TickReprices", before.TickReprices, after.TickReprices, true},
		{"CoalescedRequests", before.CoalescedRequests, after.CoalescedRequests, true},
		{"ServeCacheHits", before.ServeCacheHits, after.ServeCacheHits, true},
	} {
		if c.wantAtLeastOne && c.after-c.before < 1 {
			t.Errorf("%s did not move (%d -> %d)", c.name, c.before, c.after)
		}
	}
}
