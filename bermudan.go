package amop

import (
	"fmt"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/option"
)

// PriceBermudan prices a Bermudan option (exercisable only on a discrete
// schedule) on the binomial lattice with steps time steps, allowing exercise
// at every `every`-th step counted from expiry. The valuation date itself is
// exercisable iff steps is a multiple of every, so every=1 recovers the
// American price and large values approach the European price.
//
// Between exercise dates the value evolves linearly and is advanced by one
// multi-step FFT per block — O((steps/every) * steps * log steps) work, the
// paper's Bermudan future-work item. Both calls and puts are supported.
//
// Numerical range: the FFT's absolute error scales with the largest value in
// the row. Put rows are bounded by K, so puts are well conditioned at any
// supported steps; call rows grow like S*e^(V*sqrt(E*steps)) toward the
// deep-ITM edge, so Bermudan calls lose roughly
// log10(S*e^(V*sqrt(E*steps)))-16 digits — keep V*sqrt(E*steps) under ~25
// (steps up to ~10^4 at 20% vol) for full precision.
func PriceBermudan(o Option, steps, every int) (float64, error) {
	if steps < 1 {
		return 0, fmt.Errorf("amop: steps = %d must be >= 1", steps)
	}
	m, err := bopm.New(o.params(), steps)
	if err != nil {
		return 0, err
	}
	return m.PriceBermudan(option.Kind(o.Type), every)
}
