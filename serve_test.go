package amop

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// serveTestBook builds a small two-symbol book: calls and a put on "AAA",
// one call on "BBB", all at the given resolution.
func serveTestBook(steps int) []BookEntry {
	aaa := Option{Type: Call, S: 127.62, K: 130, R: 0.00163, V: 0.21, Y: 0.0163, E: 1.0}
	put := aaa
	put.Type, put.K = Put, 120
	bbb := Option{Type: Call, S: 54.10, K: 55, R: 0.00163, V: 0.33, Y: 0, E: 0.5}
	k125 := aaa
	k125.K = 125
	return []BookEntry{
		{Symbol: "AAA", Option: aaa, Model: AutoModel, Config: Config{Steps: steps}},
		{Symbol: "AAA", Option: k125, Model: AutoModel, Config: Config{Steps: steps}},
		{Symbol: "AAA", Option: put, Model: AutoModel, Config: Config{Steps: steps}},
		{Symbol: "BBB", Option: bbb, Model: AutoModel, Config: Config{Steps: steps}},
	}
}

// priceEntryAt prices a book entry directly (no server) at a market point.
func priceEntryAt(t *testing.T, e BookEntry, m Market) float64 {
	t.Helper()
	o := e.Option
	o.S, o.V, o.R = m.Spot, m.Vol, m.Rate
	p, err := Price(o, resolveModel(o, e.Model, e.Config), e.Config)
	if err != nil {
		t.Fatalf("direct price: %v", err)
	}
	return p
}

func TestServerQuotesMatchDirectPricing(t *testing.T) {
	book := serveTestBook(512)
	before := ReadPerfCounters()
	s, err := NewServer(book, ServerOptions{SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < s.Contracts(); id++ {
		q, err := s.Quote(id)
		if err != nil {
			t.Fatalf("quote %d: %v", id, err)
		}
		if q.Stale {
			t.Errorf("quote %d stale on a freshly priced surface", id)
		}
		if want := priceEntryAt(t, book[id], q.Market); q.Price != want {
			t.Errorf("quote %d: price %v, want %v (solved at %+v)", id, q.Price, want, q.Market)
		}
	}
	after := ReadPerfCounters()
	if got := after.ServeCacheHits - before.ServeCacheHits; got < int64(s.Contracts()) {
		t.Errorf("cache serves advanced by %d, want >= %d", got, s.Contracts())
	}
}

func TestServerTickSkipsInsideBucketRepricesAcross(t *testing.T) {
	book := serveTestBook(512)
	s, err := NewServer(book, ServerOptions{SpotBucket: 0.25, VolBucket: 0.01, RateBucket: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	q0, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}

	// Within-bucket wander: 127.62 -> 127.70 stays in the [127.50, 127.75)
	// spot cell, and vol/rate are untouched — nothing moves, nothing dirties.
	before := ReadPerfCounters()
	res, err := s.Tick("AAA", Market{Spot: 127.70, Vol: 0.21, Rate: 0.00163})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved != 0 || res.Skipped != 3 {
		t.Fatalf("within-bucket tick: moved %d skipped %d, want 0/3", res.Moved, res.Skipped)
	}
	q1, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Price != q0.Price || q1.Market != q0.Market || q1.At != q0.At {
		t.Errorf("within-bucket tick disturbed the surface: %+v vs %+v", q1, q0)
	}
	after := ReadPerfCounters()
	if d := after.TickSkips - before.TickSkips; d != 3 {
		t.Errorf("TickSkips advanced by %d, want 3", d)
	}
	if d := after.TickReprices - before.TickReprices; d != 0 {
		t.Errorf("TickReprices advanced by %d, want 0", d)
	}

	// Cross-bucket move: every AAA contract dirties; BBB is untouched.
	res, err = s.Tick("AAA", Market{Spot: 131.00, Vol: 0.21, Rate: 0.00163})
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved != 3 || res.Skipped != 0 {
		t.Fatalf("cross-bucket tick: moved %d skipped %d, want 3/0", res.Moved, res.Skipped)
	}
	q2, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Market.Spot != 131.125 { // floor(131.00/0.25) = 524 -> center 131.125
		t.Errorf("re-solved at spot %v, want the new cell center 131.125", q2.Market.Spot)
	}
	if want := priceEntryAt(t, book[0], q2.Market); q2.Price != want {
		t.Errorf("re-solved price %v, want %v", q2.Price, want)
	}

	if _, err := s.Tick("ZZZ", Market{Spot: 1}); err == nil {
		t.Error("tick for an unregistered symbol should fail")
	}
}

func TestServerTickPartialComposes(t *testing.T) {
	book := serveTestBook(64)
	s, err := NewServer(book, ServerOptions{SpotBucket: 0.25, VolBucket: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	spot, vol := 131.0, 0.26
	res, err := s.TickPartial("AAA", &spot, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Market != (Market{Spot: 131.0, Vol: 0.21, Rate: 0.00163}) {
		t.Fatalf("spot-only tick: market %+v", res.Market)
	}
	res, err = s.TickPartial("AAA", nil, &vol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Market != (Market{Spot: 131.0, Vol: 0.26, Rate: 0.00163}) {
		t.Fatalf("vol-only tick did not keep the spot: market %+v", res.Market)
	}

	// Concurrent partial ticks for one symbol must compose: whichever order
	// they land in, the final market carries both updates.
	spot2, vol2 := 140.0, 0.31
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := s.TickPartial("AAA", &spot2, nil, nil); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := s.TickPartial("AAA", nil, &vol2, nil); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if m, _ := s.Market("AAA"); m != (Market{Spot: 140.0, Vol: 0.31, Rate: 0.00163}) {
		t.Errorf("concurrent partial ticks lost a field: market %+v", m)
	}

	if _, err := s.TickPartial("ZZZ", &spot, nil, nil); err == nil {
		t.Error("partial tick for an unregistered symbol should fail")
	}
}

func TestServerMaxStalenessZeroAlwaysResolves(t *testing.T) {
	book := serveTestBook(512)
	s, err := NewServer(book, ServerOptions{SpotBucket: 0.25}) // MaxStaleness = 0
	if err != nil {
		t.Fatal(err)
	}
	before := ReadPerfCounters()
	if _, err := s.Tick("AAA", Market{Spot: 133.00, Vol: 0.21, Rate: 0.00163}); err != nil {
		t.Fatal(err)
	}
	q, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Stale {
		t.Error("MaxStaleness=0 must block on a re-solve, not serve stale")
	}
	if q.Market.Spot != 133.125 {
		t.Errorf("served spot %v, want the fresh cell center 133.125", q.Market.Spot)
	}
	after := ReadPerfCounters()
	if d := after.StaleServes - before.StaleServes; d != 0 {
		t.Errorf("StaleServes advanced by %d under MaxStaleness=0", d)
	}
}

func TestServerStalenessBound(t *testing.T) {
	book := serveTestBook(512)
	s, err := NewServer(book, ServerOptions{
		SpotBucket: 0.25, MaxStaleness: time.Hour, ColdStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	s.now = func() time.Time { return now }
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	old, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}

	before := ReadPerfCounters()
	if _, err := s.Tick("AAA", Market{Spot: 133.00, Vol: 0.21, Rate: 0.00163}); err != nil {
		t.Fatal(err)
	}
	// Within the bound: the dirty contract serves its previous price, marked
	// stale, with no blocking re-solve.
	now = now.Add(30 * time.Minute)
	q, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Stale || q.Price != old.Price || q.Market != old.Market {
		t.Errorf("want the old surface served stale, got %+v (old %+v)", q, old)
	}
	if d := ReadPerfCounters().StaleServes - before.StaleServes; d != 1 {
		t.Errorf("StaleServes advanced by %d, want 1", d)
	}

	// Beyond the bound: the quote blocks on the re-solve.
	now = now.Add(time.Hour)
	q2, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Stale {
		t.Error("beyond MaxStaleness the quote must re-solve")
	}
	if q2.Market.Spot != 133.125 || !q2.At.Equal(now) {
		t.Errorf("re-solve at %+v / %v, want spot 133.125 at the fake clock", q2.Market, q2.At)
	}
}

// TestServerTickMidFlight pins the write-back rule: a tick landing between a
// flight's solve and its write-back must leave the contract dirty, so the
// stale solve is never published as current and the quote's retry loop picks
// up the newest market.
func TestServerTickMidFlight(t *testing.T) {
	book := serveTestBook(256)[:1]
	s, err := NewServer(book, ServerOptions{SpotBucket: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var flights atomic.Int32
	var once sync.Once
	s.flightBarrier = func() {
		flights.Add(1)
		once.Do(func() {
			// First flight solved for spot 135.10; move the market again
			// before it writes back.
			if _, err := s.Tick("AAA", Market{Spot: 140.10, Vol: 0.21, Rate: 0.00163}); err != nil {
				t.Errorf("mid-flight tick: %v", err)
			}
		})
	}
	if _, err := s.Tick("AAA", Market{Spot: 135.10, Vol: 0.21, Rate: 0.00163}); err != nil {
		t.Fatal(err)
	}
	q, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Market.Spot != 140.125 { // floor(140.10/0.25) = 560 -> center 140.125
		t.Errorf("served spot %v, want the post-tick cell center 140.125", q.Market.Spot)
	}
	if want := priceEntryAt(t, book[0], q.Market); q.Price != want {
		t.Errorf("served price %v, want %v", q.Price, want)
	}
	if got := flights.Load(); got != 2 {
		t.Errorf("ran %d flights, want 2 (stale solve plus the retry)", got)
	}
}

// TestServerQuoteBoundedWhenMarketOutrunsSolver pins the retry bound: when
// every repricing flight is obsoleted by another cross-bucket tick before it
// lands, Quote must stop after quoteRounds flights and serve the freshest
// solved price marked stale instead of chasing the market forever.
func TestServerQuoteBoundedWhenMarketOutrunsSolver(t *testing.T) {
	book := serveTestBook(256)[:1]
	s, err := NewServer(book, ServerOptions{SpotBucket: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var flights atomic.Int32
	s.flightBarrier = func() {
		n := flights.Add(1)
		if _, err := s.Tick("AAA", Market{Spot: 131 + float64(n), Vol: 0.21, Rate: 0.00163}); err != nil {
			t.Errorf("runaway tick: %v", err)
		}
	}
	if _, err := s.Tick("AAA", Market{Spot: 131, Vol: 0.21, Rate: 0.00163}); err != nil {
		t.Fatal(err)
	}
	q, err := s.Quote(0)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Stale {
		t.Error("quote chasing a runaway market must be served stale")
	}
	if got := flights.Load(); got != quoteRounds {
		t.Errorf("ran %d flights, want exactly quoteRounds=%d", got, quoteRounds)
	}
}

func TestServerBackpressure(t *testing.T) {
	book := serveTestBook(256)[:1]
	s, err := NewServer(book, ServerOptions{SpotBucket: 0.25, MaxPending: 1, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	inFlight := make(chan struct{})
	release := make(chan struct{})
	s.flightBarrier = func() {
		close(inFlight)
		<-release
	}
	errs := make(chan error, 2)
	go func() { _, err := s.Quote(0); errs <- err }() // leader, parked in the barrier
	<-inFlight
	go func() { _, err := s.Quote(0); errs <- err }()
	go func() { _, err := s.Quote(0); errs <- err }()
	// One of the two joins the flight (the MaxPending=1 queue slot), the
	// other is shed immediately.
	select {
	case err := <-errs:
		if !errors.Is(err, ErrServerBusy) {
			t.Fatalf("shed request: got %v, want ErrServerBusy", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no request was shed under a full waiter queue")
	}
	s.flightBarrier = nil
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Errorf("surviving request %d: %v", i, err)
		}
	}
}

func TestServerPerContractErrors(t *testing.T) {
	book := serveTestBook(256)
	// An American call under the BSM grid is unpriceable (puts only); the
	// error must be confined to its own surface slot.
	bad := book[0]
	bad.Model = BlackScholesFD
	book = append(book, bad)
	s, err := NewServer(book, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quote(len(book) - 1); err == nil || !strings.Contains(err.Error(), "puts only") {
		t.Errorf("bad contract: got %v, want the puts-only error", err)
	}
	if _, err := s.Quote(0); err != nil {
		t.Errorf("good contract poisoned by its neighbor: %v", err)
	}
	if _, err := s.Quote(-1); err == nil {
		t.Error("negative id should fail")
	}
	if _, err := s.Quote(len(book)); err == nil {
		t.Error("out-of-range id should fail")
	}

	if _, err := NewServer(nil, ServerOptions{}); err == nil {
		t.Error("empty book should fail")
	}
	if _, err := NewServer([]BookEntry{{Option: book[0].Option}}, ServerOptions{}); err == nil {
		t.Error("zero Steps should fail")
	}
}

// TestServerConcurrentTickQuoteRace hammers one server with concurrent tick
// ingestion racing quote requests on the same contracts — the dirty set and
// the coalescing map under contention. Run under -race (the root package is
// part of the CI race job's list).
func TestServerConcurrentTickQuoteRace(t *testing.T) {
	book := serveTestBook(64)
	s, err := NewServer(book, ServerOptions{SpotBucket: 0.25, VolBucket: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	const (
		tickers  = 2
		quoters  = 4
		perG     = 150
		spotStep = 0.11
	)
	var wg sync.WaitGroup
	for g := 0; g < tickers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			symbols := []string{"AAA", "BBB"}
			for i := 0; i < perG; i++ {
				sym := symbols[rng.Intn(len(symbols))]
				m, _ := s.Market(sym)
				m.Spot += spotStep * (2*rng.Float64() - 1)
				if _, err := s.Tick(sym, m); err != nil {
					t.Errorf("tick: %v", err)
					return
				}
			}
		}(int64(g + 1))
	}
	for g := 0; g < quoters; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				if _, err := s.Quote(rng.Intn(s.Contracts())); err != nil {
					t.Errorf("quote: %v", err)
					return
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()

	// Quiesced: flush and verify the surface against direct pricing at each
	// contract's current representative point.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < s.Contracts(); id++ {
		q, err := s.Quote(id)
		if err != nil {
			t.Fatalf("final quote %d: %v", id, err)
		}
		if want := priceEntryAt(t, book[id], q.Market); q.Price != want {
			t.Errorf("final quote %d: price %v, want %v at %+v", id, q.Price, want, q.Market)
		}
	}
}
