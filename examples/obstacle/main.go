// Obstacle demonstrates the nonlinear-stencil engine outside finance (the
// paper's closing remark: these stencils are "of independent interest with
// potential applications beyond quantitative finance").
//
// We solve a parabolic obstacle problem: heat diffusing through a rod that
// sits on a rigid, temperature-clamped support
//
//	u_t = u_xx - decay*u,   u(x, t) >= phi(x) = 1 - e^x,
//
// discretized explicitly, so each step is max(3-point stencil, phi). The
// contact set {u = phi} plays the role of the paper's "green" region and its
// free boundary moves monotonically — exactly the structure the fast solver
// exploits. We verify structure and agreement with the direct sweep, then
// compare running times.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"github.com/nlstencil/amop/stencil"
)

func buildProblem(T int) *stencil.ObstacleLeft {
	lam := 1.0 / 3
	dt := 1e-4
	dx := math.Sqrt(dt / lam)
	decay := 0.4
	a := lam - dt/(2*dx) // drift-adjusted right weight
	b := lam + dt/(2*dx)
	c := 1 - decay*dt - 2*lam

	x := func(col int) float64 { return 0.15 + float64(col-T)*dx }
	phi := func(col int) float64 { return 1 - math.Exp(x(col)) }

	bnd0 := T
	for bnd0 < 2*T && x(bnd0+1) <= 0 {
		bnd0++
	}
	for bnd0 >= 0 && x(bnd0) > 0 {
		bnd0--
	}
	return &stencil.ObstacleLeft{
		Stencil:  stencil.Linear{MinOffset: -1, Weights: []float64{b, c, a}},
		Steps:    T,
		Lo0:      0,
		Hi0:      2 * T,
		Init:     func(col int) float64 { return math.Max(phi(col), 0) },
		Obstacle: func(depth, col int) float64 { return phi(col) },
		Bnd0:     bnd0,
	}
}

func main() {
	// 1. Validate the free-boundary structure on a moderate instance.
	p := buildProblem(2000)
	trace, err := p.BoundaryTrace()
	if err != nil {
		log.Fatalf("structure check failed: %v", err)
	}
	fmt.Printf("contact-set boundary: starts at column %d, ends at column %d after %d steps\n",
		trace[0], trace[len(trace)-1], p.Steps)

	// 2. Fast vs direct agreement.
	fast, err := p.Solve(nil)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := p.SolveNaive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apex temperature: fast %.12f, direct %.12f (diff %.1e)\n\n",
		fast, naive, math.Abs(fast-naive))

	// 3. Scaling comparison.
	fmt.Printf("%9s  %12s  %12s  %8s\n", "steps", "fast", "direct", "speedup")
	for _, T := range []int{4000, 16000, 64000} {
		p := buildProblem(T)
		start := time.Now()
		var st stencil.Stats
		if _, err := p.Solve(&st); err != nil {
			log.Fatal(err)
		}
		tf := time.Since(start)
		start = time.Now()
		if _, err := p.SolveNaive(); err != nil {
			log.Fatal(err)
		}
		tn := time.Since(start)
		fmt.Printf("%9d  %12v  %12v  %7.1fx   (%d FFT evolutions, %d direct cells)\n",
			T, tf.Round(time.Microsecond), tn.Round(time.Microsecond),
			float64(tn)/float64(tf), st.FFTCalls.Load(), st.NaiveCells.Load())
	}
}
