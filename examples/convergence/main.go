// Convergence studies how the three discretizations approach their
// continuous limits as the step count grows, and how the fast algorithm's
// running time scales along the way — the practical payoff of the paper: at
// accuracy-driven step counts (10^5-10^6), only the O(T log^2 T) algorithm
// is interactive.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"github.com/nlstencil/amop"
)

func main() {
	o := amop.Option{Type: amop.Call, S: 127.62, K: 130, R: 0.00163, V: 0.2, Y: 0.0163, E: 1}
	put := o
	put.Type = amop.Put

	bs, err := amop.BlackScholes(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("European call closed form: %.8f\n\n", bs)
	fmt.Printf("%9s  %12s  %12s  %12s  %12s  %10s\n",
		"T", "BOPM-eur-err", "TOPM-eur-err", "AM-call", "AM-put(BSM)", "fast time")

	var prevCall, prevPut float64
	for _, T := range []int{512, 2048, 8192, 32768, 131072} {
		eb, err := amop.Price(o, amop.Binomial, amop.Config{Steps: T, European: true})
		if err != nil {
			log.Fatal(err)
		}
		et, err := amop.Price(o, amop.Trinomial, amop.Config{Steps: T, European: true})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ac, err := amop.PriceAmerican(o, T)
		if err != nil {
			log.Fatal(err)
		}
		ap, err := amop.PriceAmerican(put, T)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%9d  %12.2e  %12.2e  %12.8f  %12.8f  %10v\n",
			T, math.Abs(eb-bs), math.Abs(et-bs), ac, ap, elapsed.Round(time.Microsecond))
		if prevCall != 0 {
			fmt.Printf("%9s  (American price moved %.2e / %.2e from previous T)\n",
				"", math.Abs(ac-prevCall), math.Abs(ap-prevPut))
		}
		prevCall, prevPut = ac, ap
	}

	fmt.Println("\nThe trinomial error at T is comparable to the binomial error at 2T")
	fmt.Println("(Langat et al., cited in Section 3), and both fall like O(1/T);")
	fmt.Println("American prices self-converge at the same rate.")
}
