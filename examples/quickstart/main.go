// Quickstart: price the paper's benchmark option (Section 5 parameters)
// under every model and compare the fast algorithm against the classical
// baselines and the Black-Scholes closed form.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/nlstencil/amop"
)

func main() {
	call := amop.Option{
		Type: amop.Call,
		S:    127.62, K: 130, // spot and strike
		R: 0.00163, // risk-free rate
		V: 0.2,     // volatility
		Y: 0.0163,  // dividend yield
		E: 1.0,     // one year (252 trading days)
	}
	const steps = 100_000

	fmt.Println("American call, binomial model, T =", steps)
	start := time.Now()
	fast, err := amop.PriceAmerican(call, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fast (FFT nonlinear stencil): %.6f   [%v]\n", fast, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	naive, err := amop.Price(call, amop.Binomial, amop.Config{Steps: steps, Algorithm: amop.NaiveParallel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  nested loop (ql-bopm style):  %.6f   [%v]\n", naive, time.Since(start).Round(time.Millisecond))

	put := call
	put.Type = amop.Put
	fastPut, err := amop.PriceAmerican(put, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAmerican put, Black-Scholes-Merton finite differences: %.6f\n", fastPut)

	euro, err := amop.PriceEuropean(call, steps)
	if err != nil {
		log.Fatal(err)
	}
	bs, err := amop.BlackScholes(call)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEuropean call: lattice %.6f vs closed form %.6f (early exercise premium %.6f)\n",
		euro, bs, fast-euro)
}
