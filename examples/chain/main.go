// Chain prices a realistic option chain — a grid of strikes and expiries on
// one underlying — with Greeks, and then backs implied volatilities out of
// the computed prices. This is the workload the paper's introduction
// motivates: a desk repricing a whole surface fast enough to follow the
// market, where the O(T log^2 T) pricer turns a coffee-break batch into an
// interactive one.
//
// The heavy lifting is amop.Chain: it schedules the grid over a bounded
// worker pool (no goroutine-per-contract oversubscription), shares lattice
// models between cells, and reports errors per cell — one bad contract never
// discards the quotes that already finished.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/nlstencil/amop"
)

func main() {
	underlying := amop.Option{
		Type: amop.Call,
		S:    127.62,
		R:    0.00163,
		V:    0.21, // the desk's current vol mark
		Y:    0.0163,
	}
	strikes := []float64{100, 110, 120, 125, 130, 135, 140, 150, 160}
	expiries := []float64{1.0 / 12, 0.25, 0.5, 1.0, 2.0}
	const steps = 20_000

	start := time.Now()
	quotes := amop.Chain(underlying, strikes, expiries, amop.ChainOptions{Steps: steps})
	elapsed := time.Since(start)

	failed := 0
	for idx, q := range quotes {
		if q.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "quote %d (K=%.0f, E=%.2fy): %v\n", idx, q.Strike, q.Expiry, q.Err)
		}
	}

	fmt.Printf("American call chain  S=%.2f  vol=%.0f%%  (T=%d per price)\n\n", underlying.S, underlying.V*100, steps)
	fmt.Printf("%8s", "K\\E")
	for _, e := range expiries {
		fmt.Printf("  %8.2fy", e)
	}
	fmt.Println()
	for i, k := range strikes {
		fmt.Printf("%8.0f", k)
		for j := range expiries {
			q := quotes[i*len(expiries)+j]
			if q.Err != nil {
				fmt.Printf("  %9s", "ERR")
				continue
			}
			fmt.Printf("  %9.4f", q.Price)
		}
		fmt.Println()
	}

	fmt.Printf("\ndeltas (1y column): ")
	for i, k := range strikes {
		q := quotes[i*len(expiries)+3]
		fmt.Printf("%.0f:%.2f ", k, q.Greeks.Delta)
	}
	fmt.Printf("\nimplied vols round-trip (1y column): ")
	for i := range strikes {
		fmt.Printf("%.4f ", quotes[i*len(expiries)+3].ImpliedVol)
	}
	fmt.Printf("\n\n%d options with Greeks and implied vols in %v (%d failed)\n",
		len(quotes), elapsed.Round(time.Millisecond), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
