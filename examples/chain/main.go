// Chain prices a realistic option chain — a grid of strikes and expiries on
// one underlying — with Greeks, and then backs implied volatilities out of
// the computed prices. This is the workload the paper's introduction
// motivates: a desk repricing a whole surface fast enough to follow the
// market, where the O(T log^2 T) pricer turns a coffee-break batch into an
// interactive one.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/nlstencil/amop"
)

func main() {
	underlying := amop.Option{
		Type: amop.Call,
		S:    127.62,
		R:    0.00163,
		V:    0.21, // the desk's current vol mark
		Y:    0.0163,
	}
	strikes := []float64{100, 110, 120, 125, 130, 135, 140, 150, 160}
	expiries := []float64{1.0 / 12, 0.25, 0.5, 1.0, 2.0}
	const steps = 20_000

	type quote struct {
		k, e         float64
		price, delta float64
		iv           float64
	}
	quotes := make([]quote, len(strikes)*len(expiries))

	start := time.Now()
	var wg sync.WaitGroup
	for i, k := range strikes {
		for j, e := range expiries {
			wg.Add(1)
			go func(idx int, k, e float64) {
				defer wg.Done()
				o := underlying
				o.K, o.E = k, e
				price, err := amop.PriceAmerican(o, steps)
				if err != nil {
					log.Fatal(err)
				}
				g, err := amop.GreeksAmerican(o, steps/4)
				if err != nil {
					log.Fatal(err)
				}
				// Round-trip the implied vol as a desk sanity check.
				iv, err := amop.ImpliedVol(o, steps/4, price)
				if err != nil {
					log.Fatal(err)
				}
				quotes[idx] = quote{k: k, e: e, price: price, delta: g.Delta, iv: iv}
			}(i*len(expiries)+j, k, e)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("American call chain  S=%.2f  vol=%.0f%%  (T=%d per price)\n\n", underlying.S, underlying.V*100, steps)
	fmt.Printf("%8s", "K\\E")
	for _, e := range expiries {
		fmt.Printf("  %8.2fy", e)
	}
	fmt.Println()
	for i, k := range strikes {
		fmt.Printf("%8.0f", k)
		for j := range expiries {
			fmt.Printf("  %9.4f", quotes[i*len(expiries)+j].price)
		}
		fmt.Println()
	}

	fmt.Printf("\ndeltas (1y column): ")
	for i, k := range strikes {
		q := quotes[i*len(expiries)+3]
		fmt.Printf("%.0f:%.2f ", k, q.delta)
	}
	fmt.Printf("\nimplied vols round-trip (1y column): ")
	for i := range strikes {
		fmt.Printf("%.4f ", quotes[i*len(expiries)+3].iv)
	}
	fmt.Printf("\n\n%d options with Greeks and implied vols in %v\n",
		len(quotes), elapsed.Round(time.Millisecond))
}
