// Batch pricing engine: prices many option contracts concurrently over a
// bounded worker pool, with per-item error isolation, memoization of
// repeated contracts, and reuse of constructed lattice models across
// requests that share lattice parameters.
//
// This is the workload the paper's introduction motivates — a desk
// repricing a whole option surface fast enough to follow the market — made
// first-class: PriceBatch for arbitrary portfolios, Chain for the classic
// strikes x expiries grid with Greeks and round-trip implied vols.
package amop

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nlstencil/amop/internal/bopm"
	"github.com/nlstencil/amop/internal/bsm"
	"github.com/nlstencil/amop/internal/faultinject"
	"github.com/nlstencil/amop/internal/fft"
	"github.com/nlstencil/amop/internal/obs"
	"github.com/nlstencil/amop/internal/option"
	"github.com/nlstencil/amop/internal/par"
	"github.com/nlstencil/amop/internal/serve"
	"github.com/nlstencil/amop/internal/topm"
)

// AutoModel selects the natural model for the option type, as PriceAmerican
// does: binomial for calls, Black-Scholes-Merton finite differences for
// American puts (European puts stay on the binomial lattice).
const AutoModel Model = -1

// Request is one contract to price in a batch.
type Request struct {
	Option Option
	// Model is the discretization; AutoModel picks the natural model for
	// the option type. The zero value is Binomial, matching Price.
	Model Model
	// Config carries the per-request steps and algorithm, exactly as in
	// Price. Config.Steps is required (>= 1).
	Config Config
	// Tag is an opaque label carried for observability and fault injection
	// (the live server tags each request with its symbol). It is NOT part
	// of the pricing identity: requests differing only in Tag share one
	// memo entry.
	Tag string
}

// Result is the outcome of one Request. Err is set per item: one bad
// contract never aborts the rest of the batch.
type Result struct {
	Price float64
	Err   error
}

// BatchOptions controls PriceBatch and Chain scheduling.
type BatchOptions struct {
	// Workers bounds the number of requests priced concurrently; zero
	// selects par.Workers() (GOMAXPROCS unless overridden). The engine
	// claims its workers from the same spawn budget the pricers' inner
	// parallel loops draw on, so a saturated batch runs each pricer
	// serially instead of oversubscribing the machine.
	Workers int
	// OnResult, when non-nil, is invoked once per request as its result
	// completes (in completion order, serialized, concurrent with the rest
	// of the batch) — e.g. to stream quotes as they become available.
	OnResult func(i int, r Result)
	// DisableMemo turns off the engine's repricing memo, so every request
	// prices from scratch. It exists for A/B measurement of the
	// amortization (the harness's radix4 experiment); leave it off in
	// production.
	DisableMemo bool
	// Interactive marks the batch as quote-path work: its pool workers are
	// exempt from the bulk-reserve headroom (par.SetBulkReserve). Plain
	// batches and scenario sweeps are bulk class — under budget pressure
	// they degrade to serial execution first, so interactive repricing
	// flights (the live server sets Interactive) keep forking. Leave it
	// unset for desk analytics.
	Interactive bool
	// Tier selects the pricing tier: the zero value (TierLattice) keeps
	// every request on the stencil lattice; TierAuto promotes eligible
	// vanilla American contracts to the analytic fast path with silent
	// lattice fallback; TierAnalytic forces the analytic tier. See TierMode.
	Tier TierMode
}

// SolvePanicError is the per-item error produced when a pricer panics. It
// carries the panic value and the stack captured at the panic site (for
// panics raised inside a par fork, the forked worker's stack), so quarantine
// records and logs stay diagnosable. Match with errors.As.
type SolvePanicError struct {
	Value any
	Stack []byte
}

func (e *SolvePanicError) Error() string {
	return fmt.Sprintf("amop: panic while pricing: %v", e.Value)
}

// newSolvePanicError wraps a recovered panic value, preferring the
// panic-site stack a par.PanicError already carries over the (post-unwind)
// stack at the recovery site.
func newSolvePanicError(r any) *SolvePanicError {
	if pe, ok := r.(*par.PanicError); ok {
		return &SolvePanicError{Value: pe.Value, Stack: pe.Stack}
	}
	return &SolvePanicError{Value: r, Stack: debug.Stack()}
}

// PriceBatch prices every request over a bounded worker pool and returns one
// Result per request, in request order. Errors are reported per item;
// panics in a pricer are captured into that item's Err. Requests that repeat
// a contract (same option, model and config) are priced once and shared, and
// constructed lattice models are reused across requests with identical
// lattice parameters.
//
// Below the engine's own caches, all workers share the process-wide
// kernel-spectrum cache of the FFT fast path: requests that agree on lattice
// parameters and step count (a chain's strikes on one expiry, a surface
// repriced every tick) derive each stencil-symbol power spectrum once and
// amortize it across the whole pool. ReadPerfCounters exposes the hit rate.
func PriceBatch(reqs []Request, opts BatchOptions) []Result {
	return PriceBatchCtx(context.Background(), reqs, opts)
}

// PriceBatchCtx is PriceBatch with a context. Cancellation is observed at
// two granularities: items not yet started fail immediately with ctx.Err()
// (admission control — an expired deadline sheds the rest of the batch
// without solving anything), and items already solving stop within one
// trapezoid of work. Partial results priced before the cancellation are
// kept; the returned slice always has one Result per request.
func PriceBatchCtx(ctx context.Context, reqs []Request, opts BatchOptions) []Result {
	res := make([]Result, len(reqs))
	if len(reqs) == 0 {
		return res
	}
	eng := newEngine()
	eng.memoOff = opts.DisableMemo
	eng.cancel = ctxCancel(ctx)
	eng.tier = opts.Tier
	eng.trace = obs.FromContext(ctx)
	maxSteps := 0
	for i := range reqs {
		maxSteps = max(maxSteps, reqs[i].Config.Steps)
	}
	eng.prewarm(maxSteps)
	var deliverMu sync.Mutex
	runPool(len(reqs), opts.Workers, !opts.Interactive, eng.trace, func(i int) {
		r := eng.run(reqs[i])
		res[i] = r
		if opts.OnResult != nil {
			deliverMu.Lock()
			defer deliverMu.Unlock()
			opts.OnResult(i, r)
		}
	})
	return res
}

// ctxCancel projects a context onto the solvers' polling hook; the
// background context (never done) maps to nil so the hot path skips the
// poll entirely.
func ctxCancel(ctx context.Context) func() error {
	if ctx == nil || ctx == context.Background() || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

// runPool executes job(0..n-1) on up to workers goroutines (bounded by n and
// by the global par spawn budget), pulling indices dynamically so
// heterogeneous jobs — mixed step counts, mixed algorithms — balance across
// the pool. The calling goroutine is one of the workers. Bulk pools leave
// the par.SetBulkReserve headroom untouched. When tr is non-nil the budget
// acquisition is timed into its budget_wait stage.
func runPool(n, workers int, bulk bool, tr *obs.Trace, job func(i int)) {
	w := workers
	if w <= 0 {
		w = par.Workers()
	}
	if w > n {
		w = n
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			job(i)
		}
	}
	spawn := 0
	if w > 1 {
		var budgetStart time.Time
		if tr != nil {
			budgetStart = time.Now()
		}
		if bulk {
			spawn = par.TryAcquireBulk(w - 1)
		} else {
			spawn = par.TryAcquire(w - 1)
		}
		if tr != nil {
			tr.AddSince(obs.StageBudgetWait, budgetStart)
		}
	}
	// Release via defer: a panic escaping the inline worker (e.g. from a
	// user OnResult callback) must not leak the process-wide spawn budget.
	defer par.Release(spawn)
	var wg sync.WaitGroup
	for k := 0; k < spawn; k++ {
		wg.Add(1)
		//amop:allow-go budgeted spawn: exactly one goroutine per token claimed from par.TryAcquire above
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// resolveModel maps AutoModel to the natural model for the request.
func resolveModel(o Option, m Model, cfg Config) Model {
	if m != AutoModel {
		return m
	}
	if o.Type == Put && !cfg.European {
		return BlackScholesFD
	}
	return Binomial
}

// --- engine -----------------------------------------------------------------

// engine is the per-batch reuse context threaded through PriceBatch and
// Chain: the lattice-model cache and the per-contract repricing memo that
// every worker of one batch shares. One quote's Greeks bumps, implied-vol
// iterations, and headline price all route through it, so no (option, model,
// config) point is ever priced twice within a batch. It is safe for
// concurrent use.
type engine struct {
	models  modelCache
	memoOff bool         // set before the pool starts; read-only afterwards
	cancel  func() error // batch-wide cancellation hook; nil means never
	tier    TierMode     // tier routing policy; set before the pool starts
	trace   *obs.Trace   // span trace from the batch context; nil when untraced

	mu   sync.Mutex
	memo map[priceKey]*priceEntry
}

func newEngine() *engine {
	return &engine{memo: make(map[priceKey]*priceEntry)}
}

// repricingMemo{Hits,Misses} count, process-wide, how often an engine served
// a repricing from its memo versus priced it fresh. A chain computing Greeks
// and implied vols reprices shared points constantly (the IV solver's seed
// and first slope reuse the vega bumps); these counters make that
// amortization observable through ReadPerfCounters.
var (
	repricingMemoHits   atomic.Int64
	repricingMemoMisses atomic.Int64
)

// RepricingMemoStats returns the cumulative process-wide repricing-memo hit
// and miss counts.
func RepricingMemoStats() (hits, misses int64) {
	return repricingMemoHits.Load(), repricingMemoMisses.Load()
}

// prewarm builds the FFT plan ladder every solve in the batch can request —
// a T-step lattice transforms rows of up to ~2T+1 samples, padded to the next
// power of two — so twiddle-table construction happens once, up front,
// instead of redundantly across the first wave of workers.
func (e *engine) prewarm(maxSteps int) {
	if maxSteps > 0 {
		fft.Prewarm(2*maxSteps + 2)
	}
}

type priceKey struct {
	o   Option
	m   Model
	cfg Config
}

type priceEntry struct {
	once  sync.Once
	price float64
	err   error
}

// run prices one request with panic isolation.
func (e *engine) run(req Request) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			serve.AddPanicRecovered()
			res = Result{Err: newSolvePanicError(r)}
		}
	}()
	// Admission: an item whose batch is already canceled fails before any
	// model construction or solving. This is what lets an expired deadline
	// shed a half-finished sweep in microseconds.
	if e.cancel != nil {
		if err := e.cancel(); err != nil {
			serve.AddCtxCancel()
			return Result{Err: err}
		}
	}
	if faultinject.Enabled() {
		if act := faultinject.OnSolve(req.Tag); act != (faultinject.Action{}) {
			if act.Delay > 0 {
				time.Sleep(act.Delay)
			}
			if act.Panic {
				panic(fmt.Sprintf("faultinject: injected solver panic (tag %q)", req.Tag))
			}
			if act.NaN {
				// Simulate numerical poison escaping a solver: a NaN price
				// with no error, exactly what the surface-health gate must
				// catch downstream.
				return Result{Price: math.NaN()}
			}
		}
	}
	p, err := e.price(req.Option, resolveModel(req.Option, req.Model, req.Config), req.Config)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		serve.AddCtxCancel()
	}
	return Result{Price: p, Err: err}
}

// dispatch routes one priced point through the engine's tier policy:
// TierAnalytic forces the analytic tier (envelope refusals surface as
// errors), TierAuto promotes eligible vanilla American contracts and counts
// the lattice fallbacks, TierLattice — the zero value — is a straight pass
// to the lattice solvers. The routing is a pure function of (option, config,
// tier), so it composes with the engine's memo: one key always takes one
// route.
func (e *engine) dispatch(o Option, m Model, cfg Config) (float64, error) {
	switch e.tier {
	case TierAnalytic:
		return e.analytic(o, cfg)
	case TierAuto:
		if cfg.Algorithm == Fast && !cfg.European {
			var tierStart time.Time
			if e.trace != nil {
				tierStart = time.Now()
			}
			eligible := analyticEligible(o, cfg)
			if e.trace != nil {
				e.trace.AddSince(obs.StageTier, tierStart)
			}
			if eligible {
				return e.analytic(o, cfg)
			}
			tierFallbacks.Add(1)
			if obs.Enabled() {
				obs.RecordEvent(obs.EvTierFallback, "", 0, "auto tier fell back to lattice")
			}
		}
	}
	if !obs.Enabled() {
		return priceModel(o, m, cfg, &e.models, e.cancel)
	}
	start := time.Now()
	p, err := priceModel(o, m, cfg, &e.models, e.cancel)
	obs.SolveLatency.With("lattice").RecordSince(start)
	e.trace.AddSince(obs.StageSolveLattice, start)
	return p, err
}

// analytic routes one request to the analytic tier, timing the solve into the
// batch trace when one is attached. The tier-labelled solve-latency histogram
// (analytic_cold vs analytic_warm) is recorded inside internal/analytic,
// which knows whether the boundary solve hit its cache.
func (e *engine) analytic(o Option, cfg Config) (float64, error) {
	if e.trace == nil {
		return priceAnalytic(o, cfg)
	}
	start := time.Now()
	p, err := priceAnalytic(o, cfg)
	e.trace.AddSince(obs.StageSolveAnalytic, start)
	return p, err
}

// price is the memoized pricer: identical (option, model, config) requests
// are priced exactly once; concurrent duplicates wait for the first.
func (e *engine) price(o Option, m Model, cfg Config) (float64, error) {
	if e.memoOff {
		return e.dispatch(o, m, cfg)
	}
	var memoStart time.Time
	if e.trace != nil {
		memoStart = time.Now()
	}
	k := priceKey{o: o, m: m, cfg: cfg}
	e.mu.Lock()
	ent := e.memo[k]
	if ent == nil {
		ent = &priceEntry{}
		e.memo[k] = ent
		repricingMemoMisses.Add(1)
	} else {
		repricingMemoHits.Add(1)
	}
	e.mu.Unlock()
	if e.trace != nil {
		e.trace.AddSince(obs.StageMemo, memoStart)
	}
	ent.once.Do(func() {
		// Capture panics here, inside the Once, not just in run: the Once
		// is consumed even when its function panics, so a later duplicate
		// would otherwise read a silent (0, nil) from the poisoned entry.
		defer func() {
			if r := recover(); r != nil {
				serve.AddPanicRecovered()
				ent.err = newSolvePanicError(r)
			}
		}()
		ent.price, ent.err = e.dispatch(o, m, cfg)
	})
	return ent.price, ent.err
}

// priceAmerican mirrors PriceAmerican through the engine's caches.
func (e *engine) priceAmerican(o Option, steps int) (float64, error) {
	cfg := Config{Steps: steps}
	return e.price(o, resolveModel(o, AutoModel, cfg), cfg)
}

// --- model cache ------------------------------------------------------------

// latticeKey identifies a constructed model: every input New consumes.
type latticeKey struct {
	prm      option.Params
	steps    int
	lambda   float64
	baseCase int
}

// modelCache shares constructed bopm/topm/bsm models between requests with
// identical lattice parameters. Models are immutable once built (SetBaseCase
// is applied before publication), so cached instances are safe to price from
// concurrently. The zero value is ready to use; a nil *modelCache disables
// caching (every lookup constructs).
type modelCache struct {
	mu    sync.Mutex
	bopms map[latticeKey]*bopm.Model
	topms map[latticeKey]*topm.Model
	bsms  map[latticeKey]*bsm.Model
	hits  int
}

// Hits reports how many lookups were served from the cache (for tests).
func (c *modelCache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *modelCache) bopm(p option.Params, cfg Config) (*bopm.Model, error) {
	if c == nil {
		m, err := bopm.New(p, cfg.Steps)
		if err != nil {
			return nil, err
		}
		m.SetBaseCase(cfg.BaseCase)
		return m, nil
	}
	k := latticeKey{prm: p, steps: cfg.Steps, baseCase: cfg.BaseCase}
	c.mu.Lock()
	if m, ok := c.bopms[k]; ok {
		c.hits++
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	m, err := bopm.New(p, cfg.Steps)
	if err != nil {
		return nil, err
	}
	m.SetBaseCase(cfg.BaseCase)
	c.mu.Lock()
	if c.bopms == nil {
		c.bopms = make(map[latticeKey]*bopm.Model)
	}
	if prior, ok := c.bopms[k]; ok {
		m = prior // a concurrent builder won; share its instance
	} else {
		c.bopms[k] = m
	}
	c.mu.Unlock()
	return m, nil
}

func (c *modelCache) topm(p option.Params, cfg Config) (*topm.Model, error) {
	if c == nil {
		m, err := topm.New(p, cfg.Steps)
		if err != nil {
			return nil, err
		}
		m.SetBaseCase(cfg.BaseCase)
		return m, nil
	}
	k := latticeKey{prm: p, steps: cfg.Steps, baseCase: cfg.BaseCase}
	c.mu.Lock()
	if m, ok := c.topms[k]; ok {
		c.hits++
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	m, err := topm.New(p, cfg.Steps)
	if err != nil {
		return nil, err
	}
	m.SetBaseCase(cfg.BaseCase)
	c.mu.Lock()
	if c.topms == nil {
		c.topms = make(map[latticeKey]*topm.Model)
	}
	if prior, ok := c.topms[k]; ok {
		m = prior
	} else {
		c.topms[k] = m
	}
	c.mu.Unlock()
	return m, nil
}

func (c *modelCache) bsm(p option.Params, cfg Config) (*bsm.Model, error) {
	if c == nil {
		m, err := bsm.New(p, cfg.Steps, cfg.Lambda)
		if err != nil {
			return nil, err
		}
		m.SetBaseCase(cfg.BaseCase)
		return m, nil
	}
	k := latticeKey{prm: p, steps: cfg.Steps, lambda: cfg.Lambda, baseCase: cfg.BaseCase}
	c.mu.Lock()
	if m, ok := c.bsms[k]; ok {
		c.hits++
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	m, err := bsm.New(p, cfg.Steps, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	m.SetBaseCase(cfg.BaseCase)
	c.mu.Lock()
	if c.bsms == nil {
		c.bsms = make(map[latticeKey]*bsm.Model)
	}
	if prior, ok := c.bsms[k]; ok {
		m = prior
	} else {
		c.bsms[k] = m
	}
	c.mu.Unlock()
	return m, nil
}

// --- chain ------------------------------------------------------------------

// Quote is one cell of a Chain surface.
type Quote struct {
	Strike, Expiry float64
	Price          float64
	Greeks         Greeks  // zero when ChainOptions.SkipGreeks
	ImpliedVol     float64 // zero when ChainOptions.SkipImpliedVol
	Err            error   // per-cell; other cells are unaffected
}

// ChainOptions controls Chain.
type ChainOptions struct {
	// Steps is the lattice resolution for the headline price (default 10000).
	Steps int
	// GreeksSteps and IVSteps are the resolutions for the bump-and-reprice
	// Greeks and the implied-vol round trip; zero selects Steps/4 — the
	// bisection and the five Greek bumps reprice the contract dozens of
	// times, and O(1/T) lattice bias cancels in the differences.
	GreeksSteps, IVSteps int
	// SkipGreeks / SkipImpliedVol drop those columns for a price-only chain.
	SkipGreeks, SkipImpliedVol bool
	// Workers bounds the pool as in BatchOptions.
	Workers int
	// DisableMemo turns off the repricing memo, as in BatchOptions.
	DisableMemo bool
	// Tier selects the pricing tier, as in BatchOptions: under TierAuto the
	// headline prices, the Greeks bumps and the implied-vol iterations of
	// every in-envelope cell all run on the analytic fast path, which turns
	// a full chain from seconds of lattice work into microseconds per cell.
	Tier TierMode
}

func (o ChainOptions) withDefaults() ChainOptions {
	if o.Steps <= 0 {
		o.Steps = 10_000
	}
	if o.GreeksSteps <= 0 {
		o.GreeksSteps = max(o.Steps/4, 1)
	}
	if o.IVSteps <= 0 {
		o.IVSteps = max(o.Steps/4, 1)
	}
	return o
}

// Chain prices an American option chain — the strikes x expiries grid on one
// underlying — with Greeks and round-trip implied vols, in one batched call.
// The underlying option supplies Type, S, R, V and Y; K and E are overridden
// per cell. Quotes are returned in row-major order: cell (i, j) of the grid
// is Quotes[i*len(expiries)+j]. Each cell prices under its natural model
// (see AutoModel), errors are reported per cell, and the whole grid shares
// one bounded worker pool and one model/price cache.
func Chain(underlying Option, strikes, expiries []float64, opts ChainOptions) []Quote {
	return ChainCtx(context.Background(), underlying, strikes, expiries, opts)
}

// ChainCtx is Chain with a context: cells not yet started fail immediately
// with ctx.Err() once the context is done, and in-flight solves stop within
// one trapezoid of work. Chains are bulk-class work — see
// BatchOptions.Interactive.
func ChainCtx(ctx context.Context, underlying Option, strikes, expiries []float64, opts ChainOptions) []Quote {
	o := opts.withDefaults()
	quotes := make([]Quote, len(strikes)*len(expiries))
	if len(quotes) == 0 {
		return quotes
	}
	eng := newEngine()
	eng.memoOff = o.DisableMemo
	eng.cancel = ctxCancel(ctx)
	eng.tier = o.Tier
	eng.trace = obs.FromContext(ctx)
	eng.prewarm(max(o.Steps, max(o.GreeksSteps, o.IVSteps)))
	runPool(len(quotes), o.Workers, true, eng.trace, func(idx int) {
		i, j := idx/len(expiries), idx%len(expiries)
		quotes[idx] = eng.quote(underlying, strikes[i], expiries[j], o)
	})
	return quotes
}

// quote prices one chain cell with panic isolation.
func (e *engine) quote(underlying Option, strike, expiry float64, opts ChainOptions) (q Quote) {
	q = Quote{Strike: strike, Expiry: expiry}
	defer func() {
		if r := recover(); r != nil {
			serve.AddPanicRecovered()
			q.Err = fmt.Errorf("amop: panic while quoting K=%v E=%v: %w", strike, expiry, newSolvePanicError(r))
		}
	}()
	if e.cancel != nil {
		if err := e.cancel(); err != nil {
			serve.AddCtxCancel()
			q.Err = err
			return q
		}
	}
	o := underlying
	o.K, o.E = strike, expiry

	price, err := e.priceAmerican(o, opts.Steps)
	if err != nil {
		q.Err = err
		return q
	}
	q.Price = price

	if !opts.SkipGreeks {
		g, err := greeks(o, func(oo Option) (float64, error) {
			return e.priceAmerican(oo, opts.GreeksSteps)
		})
		if err != nil {
			q.Err = err
			return q
		}
		q.Greeks = g
	}

	if !opts.SkipImpliedVol {
		// Round-trip the implied vol from the computed price as the desk
		// sanity check: solving at IVSteps should recover the vol mark.
		iv, err := impliedVolWith(o, price, func(oo Option) (float64, error) {
			return e.priceAmerican(oo, opts.IVSteps)
		})
		if err != nil {
			q.Err = err
			return q
		}
		q.ImpliedVol = iv
	}
	return q
}
